// Ablation B: dead-zone glitch width vs peak-detector integrity. The
// sampling latch in the Figure 7 circuit is clocked from the PFD dead-zone
// glitches; section 4.2 notes the glitches can be widened with delay
// elements if clocking from them is marginal. Here the PFD delays are
// scaled over two orders of magnitude and a single-point BIST measurement
// at fn is taken each time.

#include <cstdio>

#include "bist/controller.hpp"
#include "common/units.hpp"
#include "pll/config.hpp"
#include "pll/faults.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Ablation B - PFD delay (dead-zone glitch width) scaling");

  const pll::PllConfig golden = pll::referenceConfig();
  bist::SweepOptions opt;
  opt.stimulus = bist::StimulusKind::MultiToneFsk;
  opt.deviation_hz = 10.0;
  opt.master_clock_hz = 1e6;
  opt.modulation_frequencies_hz = {4.0, 8.0, 16.0};

  std::printf("\n%10s %14s | %12s %12s %10s\n", "delay x", "glitch width", "dev@8Hz (Hz)",
              "phase@8Hz", "timeouts");
  for (double scale : {0.25, 1.0, 4.0, 16.0, 64.0, 256.0}) {
    const pll::PllConfig cfg =
        pll::applyFault(golden, {pll::FaultSpec::Kind::PfdDeadZone, scale});
    bist::BistController controller(cfg, opt);
    const bist::MeasuredResponse r = controller.run();
    int timeouts = 0;
    for (const auto& p : r.points) timeouts += p.timed_out ? 1 : 0;
    const auto& mid = r.points[1];  // fm = 8 Hz
    std::printf("%10.2f %11.1f ns | %12.1f %11.1f deg %9d\n", scale,
                cfg.pfd.glitchWidth() * 1e9, mid.deviation_hz, mid.phase_deg, timeouts);
  }

  std::printf(
      "\nExpectation: the measurement is insensitive over a wide range (the sampling\n"
      "latch's inverter-delay trick keeps the sample clean), degrading only when the\n"
      "glitch width becomes comparable to the phase errors being resolved — the\n"
      "dead-zone fault then also injects real pump disturbance each cycle.\n");
  return 0;
}
