// Ablation C: parametric fault coverage of the transfer-function signature
// test (the paper's DfT motivation: "errors in the PLL circuitry" shift
// fn, damping and bandwidth). Builds a TestPlan from the golden device and
// screens one faulty device per fault class.
//
// Runs on the fast-scaled PLL (fn = 200 Hz) so the whole campaign stays in
// seconds; the signature logic is scale-free.

#include <cstdio>

#include "core/testplan.hpp"
#include "pll/faults.hpp"
#include "support/bench_util.hpp"
#include "support/fast_config.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Ablation C - fault coverage of the transfer-function signature");

  const pll::PllConfig golden = benchutil::fastConfig();
  const bist::SweepOptions sweep = benchutil::fastSweep(bist::StimulusKind::MultiToneFsk, 8);

  std::printf("\nderiving limits from the golden device (tolerance +/-20%%)...\n");
  const core::TestPlan plan(golden, sweep, 0.20);
  const auto& gp = plan.goldenParameters();
  std::printf("golden: peak %.2f Hz, peaking %.2f dB, zeta %.3f, fn %.1f Hz, f3dB %.1f Hz\n",
              gp.peak_frequency_hz, gp.peaking_db, gp.zeta.value_or(0.0),
              gp.natural_frequency_hz.value_or(0.0), gp.bandwidth_3db_hz.value_or(0.0));

  std::vector<pll::FaultSpec> faults = pll::standardFaultSet();
  faults.push_back({pll::FaultSpec::Kind::FilterLeak, 2e6});
  faults.push_back({pll::FaultSpec::Kind::VcoCenterDrift, 1.3});
  faults.push_back({pll::FaultSpec::Kind::PfdDeadZone, 64.0});
  faults.push_back({pll::FaultSpec::Kind::DividerWrongN, 11.0});

  std::printf("\n%-24s %10s %10s %10s  %s\n", "fault", "fn (Hz)", "zeta", "detected",
              "first violated limit");
  const auto report = plan.faultCoverage(faults);
  for (const auto& row : report.rows) {
    // Re-screen to show the measured parameters (screen() already did this
    // once; re-measuring keeps CoverageRow small).
    const auto r = plan.screen(pll::applyFault(golden, row.fault));
    std::printf("%-24s %10.1f %10.3f %10s  %s\n", row.fault.describe().c_str(),
                r.parameters.natural_frequency_hz.value_or(0.0), r.parameters.zeta.value_or(0.0),
                row.detected ? "YES" : "no",
                row.failures.empty() ? "-" : row.failures.front().c_str());
  }
  std::printf("\ngolden passes: %s\ncoverage: %.0f%% of %zu parametric faults\n",
              report.golden_passes ? "yes" : "NO", report.coverage() * 100.0,
              report.rows.size());
  std::printf(
      "\nExpectation: filter/VCO-gain faults shift fn or zeta far outside the 20%%\n"
      "band and are caught; mild pump asymmetries move the response least and are\n"
      "the hardest class for any transfer-function signature.\n");
  return 0;
}
