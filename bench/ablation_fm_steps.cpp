// Ablation A: how many FSK steps does the discrete FM need? Sweeps the
// multi-tone step count and reports the RMS magnitude/phase error of the
// BIST measurement against the pure-sine reference sweep. Backs the
// paper's choice of 10 steps (and its observation that the 10-step FSK
// curve matches the sinusoidal one).

#include <cmath>
#include <cstdio>

#include "bist/controller.hpp"
#include "common/units.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Ablation A - multi-tone FSK step count vs measurement fidelity");

  const pll::PllConfig cfg = pll::referenceConfig();
  bist::SweepOptions base;
  base.deviation_hz = 10.0;
  base.master_clock_hz = 1e6;
  base.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(8.0, 9);

  // Reference: ideal sinusoidal FM.
  bist::SweepOptions sine_opt = base;
  sine_opt.stimulus = bist::StimulusKind::PureSineFm;
  std::printf("\nrunning pure-sine reference sweep...\n");
  const control::BodeResponse reference = bist::BistController(cfg, sine_opt).run().toBode();

  std::printf("\n%8s %14s %16s %10s\n", "steps", "mag RMS (dB)", "phase RMS (deg)", "points");
  for (int steps : {2, 4, 6, 10, 20, 40}) {
    bist::SweepOptions opt = base;
    opt.stimulus = bist::StimulusKind::MultiToneFsk;
    opt.fm_steps = steps;
    const control::BodeResponse measured = bist::BistController(cfg, opt).run().toBode();

    double mag_ss = 0.0, ph_ss = 0.0;
    int n = 0;
    for (size_t i = 0; i < measured.size() && i < reference.size(); ++i) {
      const double dm = measured.points()[i].magnitude_db - reference.points()[i].magnitude_db;
      double dp = measured.points()[i].phase_deg - reference.points()[i].phase_deg;
      while (dp > 180.0) dp -= 360.0;
      while (dp <= -180.0) dp += 360.0;
      mag_ss += dm * dm;
      ph_ss += dp * dp;
      ++n;
    }
    if (n == 0) {
      std::printf("%8d %14s %16s %10d  (all points timed out: stimulus unusable)\n", steps,
                  "-", "-", n);
    } else {
      std::printf("%8d %14.2f %16.1f %10d\n", steps, std::sqrt(mag_ss / n), std::sqrt(ph_ss / n),
                  n);
    }
  }

  std::printf(
      "\nExpectation: error drops steeply up to ~10 steps, then flattens — the loop's\n"
      "low-pass action (paper section 3) filters the staircase, so finer steps stop\n"
      "paying once the slot rate is far above the loop bandwidth. Two steps is the\n"
      "degenerate two-tone square case.\n");
  return 0;
}
