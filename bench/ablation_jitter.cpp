// Ablation F: measurement robustness against reference-clock edge jitter.
// The phase counter latches single edges, so jitter attacks it directly;
// per-period captures are averaged (circular mean), which is the BIST's
// only defence. Sweeps the injected Gaussian edge jitter and reports the
// measured point at fn against the clean measurement.

#include <cmath>
#include <cstdio>

#include "bist/peak_detector.hpp"
#include "bist/sequencer.hpp"
#include "pll/config.hpp"
#include "pll/cppll.hpp"
#include "pll/sources.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace pllbist;

bist::TestSequencer::PointResult measure(double jitter_rms_s, unsigned seed, int averages) {
  const pll::PllConfig cfg = pll::scaledTestConfig();
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  const auto marker = c.addSignal("marker");
  pll::SineFmSource::Config scfg;
  scfg.nominal_hz = cfg.ref_frequency_hz;
  scfg.edge_jitter_rms_s = jitter_rms_s;
  scfg.jitter_seed = seed;
  pll::SineFmSource src(c, stim, marker, scfg);
  pll::CpPll pll(c, ext, stim, cfg);
  pll.setTestMode(true);
  bist::PeakDetector det(c, pll.ref(), pll.feedback(), cfg.pfd, bist::PeakDetectorDelays{});
  bist::TestSequencer::Options opt;
  opt.freq_gate_s = 0.05;
  opt.hold_to_gate_delay_s = 2e-4;
  opt.average_periods = averages;
  bist::TestSequencer seq(c, pll,
                          bist::StimulusHooks{[&](double fm) { src.setModulation(fm, 100.0); },
                                              [&] { src.setModulation(0.0, 0.0); },
                                              [&] {
                                                src.setModulation(0.0, 0.0);
                                                src.setCarrier(cfg.ref_frequency_hz + 100.0);
                                              }},
                          det, marker, pll.vcoOut(), 10e6, opt);
  c.run(0.05);
  bool done = false;
  bist::TestSequencer::PointResult result;
  seq.measurePoint(200.0, [&](bist::TestSequencer::PointResult r) {
    result = std::move(r);
    done = true;
  });
  while (!done) c.step();
  return result;
}

}  // namespace

int main() {
  benchutil::printHeader("Ablation F - reference edge jitter vs BIST point accuracy (fm = fn)");

  const auto clean = measure(0.0, 1, 4);
  std::printf("\nclean measurement at fn: phase %.2f deg, held deviation %.1f Hz\n",
              clean.phase_deg, clean.held_frequency_hz - 100e3);

  std::printf("\n%14s | %16s %16s | %16s\n", "jitter RMS", "phase err (4 avg)",
              "phase err (16 avg)", "dev err (16 avg)");
  for (double ppm_of_period : {0.0005, 0.002, 0.005, 0.01, 0.02}) {
    const double rms = ppm_of_period / 10e3;  // fraction of Tref at fref = 10 kHz
    // Average the absolute error over a few seeds.
    double e4 = 0.0, e16 = 0.0, ed = 0.0;
    const int seeds = 3;
    for (unsigned s = 1; s <= seeds; ++s) {
      const auto r4 = measure(rms, s, 4);
      const auto r16 = measure(rms, s + 100, 16);
      e4 += std::abs(r4.phase_deg - clean.phase_deg);
      e16 += std::abs(r16.phase_deg - clean.phase_deg);
      ed += std::abs(r16.held_frequency_hz - clean.held_frequency_hz);
    }
    std::printf("%9.2f%% Tref | %12.2f deg %12.2f deg | %13.1f Hz\n",
                ppm_of_period * 100.0, e4 / seeds, e16 / seeds, ed / seeds);
  }
  std::printf(
      "\nExpectation: both captures degrade gracefully — errors stay below a few\n"
      "degrees / <10%% of the deviation even at 2%% Tref RMS jitter. The residual is\n"
      "dominated by where the jittered edges land around the phase-error zero\n"
      "crossing (systematic per tone), so extra averaging helps only modestly; the\n"
      "held-frequency count is inherently robust because it integrates over the\n"
      "whole gate.\n");
  return 0;
}
