// Ablation E: delay-line phase modulation vs DCO frequency modulation —
// the stimulus alternative the paper defers to further work (section 3).
// Runs both on the paper-scale reference device and compares the measured
// responses and their practical trade-offs.

#include <cmath>
#include <cstdio>

#include "bist/controller.hpp"
#include "common/units.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Ablation E - delay-line PM vs DCO FM stimulus");

  const pll::PllConfig cfg = pll::referenceConfig();

  bist::SweepOptions base;
  base.deviation_hz = 10.0;
  base.master_clock_hz = 1e6;
  base.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(8.0, 10);

  bist::SweepOptions fm_opt = base;
  fm_opt.stimulus = bist::StimulusKind::MultiToneFsk;
  std::printf("\nrunning multi-tone FM sweep...\n");
  const bist::MeasuredResponse fm = bist::BistController(cfg, fm_opt).run();

  bist::SweepOptions pm_opt = base;
  pm_opt.stimulus = bist::StimulusKind::DelayLinePm;
  pm_opt.pm_taps = 16;  // auto tap delay: line span Tref/8 -> theta_dev = pi/8
  std::printf("running delay-line PM sweep...\n");
  const bist::MeasuredResponse pm = bist::BistController(cfg, pm_opt).run();

  const control::BodeResponse fm_bode = fm.toBode();
  const control::BodeResponse pm_bode = pm.toBode();
  const control::TransferFunction cap = cfg.capacitorNodeTf();

  std::printf("\n%9s | %9s %9s %9s | %10s %10s %10s\n", "f (Hz)", "FM dB", "PM dB", "thry dB",
              "FM deg", "PM deg", "thry deg");
  for (size_t i = 0; i < fm_bode.size(); ++i) {
    const double w = fm_bode.points()[i].omega_rad_per_s;
    const double pm_mag = i < pm_bode.size() ? pm_bode.points()[i].magnitude_db : -999.0;
    const double pm_ph = i < pm_bode.size() ? pm_bode.points()[i].phase_deg : 0.0;
    std::printf("%9.3f | %9.2f %9.2f %9.2f | %10.1f %10.1f %10.1f\n", radPerSecToHz(w),
                fm_bode.points()[i].magnitude_db, pm_mag, cap.magnitudeDbAt(w),
                fm_bode.points()[i].phase_deg, pm_ph, cap.phaseDegAt(w));
  }

  benchutil::printSubHeader("trade-offs observed");
  // Where does each stimulus give the better (smaller) error vs theory?
  double fm_err_lo = 0.0, pm_err_lo = 0.0, fm_err_hi = 0.0, pm_err_hi = 0.0;
  int n_lo = 0, n_hi = 0;
  for (size_t i = 0; i < fm_bode.size() && i < pm_bode.size(); ++i) {
    const double w = fm_bode.points()[i].omega_rad_per_s;
    const double f = radPerSecToHz(w);
    const double fe = std::abs(fm_bode.points()[i].magnitude_db - cap.magnitudeDbAt(w));
    const double pe = std::abs(pm_bode.points()[i].magnitude_db - cap.magnitudeDbAt(w));
    if (f <= 8.0) {
      fm_err_lo += fe;
      pm_err_lo += pe;
      ++n_lo;
    } else {
      fm_err_hi += fe;
      pm_err_hi += pe;
      ++n_hi;
    }
  }
  std::printf("mean |mag error| below fn: FM %.2f dB, PM %.2f dB\n", fm_err_lo / n_lo,
              pm_err_lo / n_lo);
  std::printf("mean |mag error| above fn: FM %.2f dB, PM %.2f dB\n", fm_err_hi / n_hi,
              pm_err_hi / n_hi);
  std::printf(
      "\nStructural differences:\n"
      "  - FM needs the high-frequency DCO master (resolution eqn 2); PM needs only\n"
      "    a calibrated delay line — no fast clock (the paper's stated motivation).\n"
      "  - FM has a DC reference (parked offset, eqn 7); PM magnitudes must be\n"
      "    normalised against the known tap span, inheriting its calibration error.\n"
      "  - PM's equivalent input deviation grows with fm (theta_dev*fm), so its\n"
      "    count SNR is poorest in-band and best above fn — complementary to FM,\n"
      "    whose quantisation floor bites above ~4*fn.\n");
  return 0;
}
