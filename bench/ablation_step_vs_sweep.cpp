// Ablation D: transfer-function sweep vs single-transient step test.
// The same peak-detect/hold/count hardware supports both the paper's
// frequency sweep and the companion step-response test (reference [12]'s
// "ramp based" direction). This bench compares extraction accuracy and
// test time across a range of designed dampings, on the fast-scaled
// device (the trade-off is scale-free).

#include <cstdio>

#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "bist/step_test.hpp"
#include "common/units.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Ablation D - sweep-based vs step-based loop characterisation");

  std::printf("\n%6s | %9s %9s %10s | %9s %9s %10s\n", "zeta", "swp zeta", "swp fn",
              "swp time*", "step zeta", "step fn", "step time*");
  std::printf("%6s | %32s | %32s\n", "", "(12-point transfer-function sweep)",
              "(single reference step)");

  for (double zeta : {0.35, 0.43, 0.55, 0.65}) {
    const pll::PllConfig cfg = pll::scaledTestConfig(200.0, zeta);

    // Sweep method.
    bist::SweepOptions sopt = bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 12);
    bist::BistController controller(cfg, sopt);
    const bist::MeasuredResponse sweep = controller.run();
    const bist::ExtractedParameters sp = bist::extractParameters(sweep.toBode());
    // Simulated test time: lock + static ref + per-point (settle+avg+gate).
    double sweep_time = sopt.lock_wait_s + sopt.static_settle_s + sopt.sequencer.freq_gate_s;
    for (double fm : sopt.modulation_frequencies_hz)
      sweep_time += (sopt.sequencer.settle_periods + sopt.sequencer.average_periods + 1) / fm +
                    sopt.sequencer.freq_gate_s;

    // Step method.
    bist::StepTestOptions topt;
    topt.lock_wait_s = 10.0 / 200.0;
    topt.freq_gate_s = 10.0 / 200.0;
    topt.hold_to_gate_delay_s = 2e-4;
    const bist::StepTestResult st = bist::runStepTest(cfg, topt);
    const double step_time = topt.lock_wait_s + 2.0 * topt.freq_gate_s + st.peak_time_s +
                             st.relock_time_s + topt.freq_gate_s;

    std::printf("%6.2f | %9.3f %9.1f %9.2fs | %9.3f %9.1f %9.2fs\n", zeta,
                sp.zeta.value_or(0.0), sp.natural_frequency_hz.value_or(0.0), sweep_time,
                st.zeta.value_or(0.0), st.natural_frequency_hz.value_or(0.0), step_time);
  }
  std::printf("\n* simulated on-chip test time, not CPU time\n");
  std::printf(
      "\nExpectation: the sweep wins on accuracy (it averages many periods and\n"
      "reconstructs the whole curve); the step test is an order of magnitude faster\n"
      "and needs no DCO frequency set, at the cost of a low-biased zeta (the sampled\n"
      "PFD adds overshoot) and sensitivity to a single transient. Both use identical\n"
      "capture hardware, so a production flow can run the step test as a fast screen\n"
      "and the sweep as the characterisation/diagnosis mode.\n");
  return 0;
}
