// Chaos-runtime cost bench: what the crash-tolerance layer actually costs.
//
//   1. Journaling overhead — the same campaign run with and without the
//      fsync'd checkpoint journal, reported as wall-clock delta (%) plus
//      the per-record append latency p50/p95 straight from the
//      campaign.journal_append_wall_s histogram.
//   2. Resume latency — a fully committed journal replayed R times (zero
//      points re-simulated), end-to-end run() wall p50/p95 plus the
//      journal-load slice from campaign.resume_load_wall_s.
//
//   campaign_chaos [--points N] [--resumes R] [--device reference|fast]
//
// Exit code 1 only on a correctness violation (a resumed campaign that
// re-simulates points, or a journaled result that differs from the plain
// one); timing is reported but never gates, so the binary stays usable on
// loaded CI hosts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/campaign.hpp"
#include "obs/metrics.hpp"
#include "pll/config.hpp"

namespace {

using namespace pllbist;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double sampleQuantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  return xs[lo] + (pos - static_cast<double>(lo)) * (xs[hi] - xs[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  int points = 12;
  int resumes = 20;
  std::string device = "fast";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      points = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--resumes") == 0 && i + 1 < argc) {
      resumes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      device = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--points N] [--resumes R] [--device reference|fast]\n",
                   argv[0]);
      return 2;
    }
  }
  if (points < 2) points = 2;
  if (resumes < 1) resumes = 1;

  const pll::PllConfig cfg =
      device == "reference" ? pll::referenceConfig() : pll::scaledTestConfig(200.0, 0.43);
  const bist::SweepOptions sweep =
      bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, points);
  const std::string journal = std::string("/tmp/pllbist_campaign_chaos_") +
                              std::to_string(static_cast<long>(::getpid())) + ".jsonl";

  std::printf("campaign_chaos: %d points on the '%s' device, %d resume reps\n\n", points,
              device.c_str(), resumes);

  // --- 1. Journaling overhead -------------------------------------------
  // Warm-up run absorbs one-time costs (metric registration, allocator).
  {
    core::Campaign warm(cfg, sweep, {});
    (void)warm.run();
  }
  // Best-of-3 per variant: a campaign is one shot, so scheduler noise on a
  // single run easily dwarfs the journaling cost being measured.
  double plain_s = 0.0, journaled_s = 0.0;
  core::CampaignResult plain_result, journaled_result;
  obs::MetricsRegistry::global().reset();  // scope append stats to this bench
  for (int rep = 0; rep < 3; ++rep) {
    const auto t_plain = Clock::now();
    core::Campaign plain(cfg, sweep, {});
    plain_result = plain.run();
    const double p = secondsSince(t_plain);
    plain_s = rep == 0 ? p : std::min(plain_s, p);

    core::CampaignOptions jopt;
    jopt.journal_path = journal;
    const auto t_journaled = Clock::now();
    core::Campaign journaled(cfg, sweep, jopt);
    journaled_result = journaled.run();
    const double j = secondsSince(t_journaled);
    journaled_s = rep == 0 ? j : std::min(journaled_s, j);
  }

  if (!plain_result.status.ok() || !journaled_result.status.ok()) {
    std::fprintf(stderr, "campaign failed: %s / %s\n", plain_result.status.toString().c_str(),
                 journaled_result.status.toString().c_str());
    return 1;
  }
  bool identical = plain_result.merged.response.points.size() ==
                   journaled_result.merged.response.points.size();
  for (std::size_t i = 0; identical && i < plain_result.merged.response.points.size(); ++i) {
    identical = std::memcmp(&plain_result.merged.response.points[i].deviation_hz,
                            &journaled_result.merged.response.points[i].deviation_hz,
                            sizeof(double)) == 0;
  }
  if (!identical) {
    std::fprintf(stderr, "MISMATCH: journaling changed the measured response\n");
    return 1;
  }

  const double overhead_pct = 100.0 * (journaled_s - plain_s) / plain_s;
  std::printf("journal off : %8.3f s\n", plain_s);
  std::printf("journal on  : %8.3f s  (overhead %+.2f%%)\n", journaled_s, overhead_pct);
  {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    if (const obs::HistogramValue* h = snap.findHistogram("campaign.journal_append_wall_s")) {
      std::printf("append      : %llu records, p50 %.1f us, p95 %.1f us, max %.1f us\n",
                  static_cast<unsigned long long>(h->count), 1e6 * h->quantile(0.50),
                  1e6 * h->quantile(0.95), 1e6 * h->max);
    }
  }

  // --- 2. Resume latency ------------------------------------------------
  // The journal now holds every point; each rep must replay it without
  // simulating anything.
  obs::MetricsRegistry::global().reset();
  std::vector<double> resume_wall_s;
  resume_wall_s.reserve(static_cast<std::size_t>(resumes));
  for (int r = 0; r < resumes; ++r) {
    core::CampaignOptions ropt;
    ropt.resume_path = journal;
    const auto t0 = Clock::now();
    core::Campaign campaign(cfg, sweep, ropt);
    const core::CampaignResult result = campaign.run();
    resume_wall_s.push_back(secondsSince(t0));
    if (!result.status.ok() || result.points_executed != 0 ||
        result.points_resumed != points) {
      std::fprintf(stderr,
                   "RESUME VIOLATION: rep %d executed %d / resumed %d of %d points (%s)\n", r,
                   result.points_executed, result.points_resumed, points,
                   result.status.toString().c_str());
      return 1;
    }
  }
  std::printf("\nresume (%d points, %d reps): p50 %.2f ms, p95 %.2f ms end-to-end\n", points,
              resumes, 1e3 * sampleQuantile(resume_wall_s, 0.50),
              1e3 * sampleQuantile(resume_wall_s, 0.95));
  {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    if (const obs::HistogramValue* h = snap.findHistogram("campaign.resume_load_wall_s")) {
      std::printf("journal load: p50 %.2f ms, p95 %.2f ms\n", 1e3 * h->quantile(0.50),
                  1e3 * h->quantile(0.95));
    }
  }

  std::remove(journal.c_str());
  return 0;
}
