// Resilience campaign: how much simultaneous reference jitter and
// response-capture fault injection can the sweep engine absorb before it
// starts losing points?
//
// Grid: reference edge jitter (RMS, as a fraction of Tref) x per-attempt
// detector deafness probability — with probability p, a measurement
// attempt runs with the peak detector's MFREQ output stuck (every edge
// swallowed by the sim-level fault injector), so that attempt can only end
// in the watchdog. The retry layer should convert first-attempt deafness
// into Retried points; a point is lost only when all attempts draw deaf
// (probability p^3). Each cell runs a full resilient sweep and reports
//
//   survival  usable points / total (Ok + Retried + Degraded)
//   flagged   points the quality layer marked non-Ok — interference the
//             report *surfaces* rather than silently absorbs
//
// plus the retry accounting. The campaign is deterministic: every cell
// seeds its own jitter stream and deafness draws.
//
// (Why stuck-at rather than per-edge drops: the MFREQ sampler re-drives
// its net every reference cycle, so an occasional dropped edge is healed
// ~100 us later and perturbs nothing. Whole-attempt deafness is the
// fault mode the paper's serial capture path is actually exposed to.)

#include <cstdint>
#include <cstdio>
#include <random>

#include "bist/resilient_sweep.hpp"
#include "bist/testbench.hpp"
#include "pll/config.hpp"
#include "sim/fault_injector.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace pllbist;

bist::SweepQualityReport runCell(double jitter_fraction_of_tref, double deaf_p, unsigned seed) {
  const pll::PllConfig cfg = pll::scaledTestConfig();
  bist::SweepOptions opt = bist::quickSweepOptions(cfg, bist::StimulusKind::PureSineFm, 3);
  opt.modulation_frequencies_hz = {100.0, 200.0, 400.0};
  opt.ref_edge_jitter_rms_s = jitter_fraction_of_tref / cfg.ref_frequency_hz;
  opt.jitter_seed = seed;

  bist::ResilientSweepOptions rs;
  rs.max_attempts = 3;
  rs.settle_backoff = 1.5;

  bist::ResilientSweep engine(cfg, opt, rs);
  std::mt19937_64 deaf_rng(seed * 7919u + 17u);
  engine.onAttemptStart([&](std::size_t, int, bist::SweepTestbench& tb) {
    sim::FaultInjector& inj = tb.faultInjector(seed);
    inj.clearRules();
    const double u = static_cast<double>(deaf_rng() >> 11) * 0x1.0p-53;
    if (u < deaf_p) inj.stickSignal(tb.mfreq(), tb.circuit().now());
  });
  return engine.run().report;
}

}  // namespace

int main() {
  benchutil::printHeader(
      "Campaign - sweep resilience vs reference jitter x detector deafness rate");

  const double jitters[] = {0.0, 0.005, 0.02};  // fraction of Tref, RMS
  const double deaf_rates[] = {0.0, 0.3, 0.7};  // per-attempt deaf probability

  std::printf("\n%11s %8s | %9s %8s | %3s %4s %4s %4s | %8s %7s\n", "jitter RMS", "deaf p",
              "survival", "flagged", "ok", "retr", "degr", "drop", "attempts", "relocks");
  for (double jitter : jitters) {
    for (double p : deaf_rates) {
      const bist::SweepQualityReport r = runCell(jitter, p, 1);
      const double survival = r.points_total > 0 ? 100.0 * r.usable() / r.points_total : 0.0;
      const int flagged = r.retried + r.degraded + r.dropped;
      const double flagged_pct = r.points_total > 0 ? 100.0 * flagged / r.points_total : 0.0;
      std::printf("%9.1f%% %8.1f | %8.1f%% %7.1f%% | %3d %4d %4d %4d | %8d %7d\n",
                  jitter * 100.0, p, survival, flagged_pct, r.ok, r.retried, r.degraded,
                  r.dropped, r.attempts_total, r.relocks);
    }
  }

  std::printf(
      "\nExpectation: the clean column is 100%% survival with nothing flagged, at any\n"
      "jitter level (the counters average jitter out; it degrades accuracy, not\n"
      "completion). At deaf p = 0.3 the retry budget should rescue nearly every\n"
      "affected point (flagged ~ p, survival ~ 100%%). At p = 0.7 some points burn\n"
      "all three attempts (p^3 ~ 34%%) — those must come back labelled Dropped with\n"
      "a structured retry-exhausted reason, never as a hang or a throw.\n");
  return 0;
}
