// Figure 1: phase and magnitude plots of a generic unity-gain second-order
// closed-loop system, with the paper's annotated features (0 dB asymptote,
// omega_p, omega_3dB) computed explicitly.

#include <cstdio>

#include "common/units.hpp"
#include "control/bode.hpp"
#include "control/grid.hpp"
#include "control/second_order.hpp"
#include "control/transfer_function.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Figure 1 - generic second-order closed-loop magnitude/phase");

  const double wn = 1.0;     // normalised
  const double zeta = 0.43;  // the paper's reference damping

  const control::TransferFunction h = control::TransferFunction::secondOrderLowPass(wn, zeta);
  const auto omegas = control::logspace(0.01, 100.0, 61);
  const control::BodeResponse bode = control::BodeResponse::compute(h, omegas);

  std::printf("\n%14s %14s %14s\n", "w/wn", "|H| (dB)", "phase (deg)");
  for (size_t i = 0; i < bode.size(); i += 4) {
    const auto& p = bode.points()[i];
    std::printf("%14.4f %14.3f %14.2f\n", p.omega_rad_per_s, p.magnitude_db, p.phase_deg);
  }

  benchutil::printSubHeader("annotated features (closed form vs sampled curve)");
  const double wp = control::peakFrequency(wn, zeta);
  const double w3 = control::bandwidth3Db(wn, zeta);
  std::printf("0 dB asymptote:   |H| -> %.4f dB as w -> 0 (sampled %.4f dB)\n", 0.0,
              bode.points().front().magnitude_db);
  std::printf("omega_p:          %.4f wn closed-form, %.4f wn from curve peak\n", wp,
              bode.peak().omega_rad_per_s);
  std::printf("peaking:          %.3f dB closed-form, %.3f dB from curve\n",
              control::peakingDb(zeta), bode.peakingDb());
  std::printf("omega_3dB:        %.4f wn closed-form, %.4f wn from curve\n", w3,
              bode.bandwidth3Db().value_or(-1.0));
  std::printf("damping back-out: zeta = %.4f from peaking (true %.2f)\n",
              control::dampingFromPeakingDb(bode.peakingDb()), zeta);

  benchutil::printSubHeader("magnitude (dB) and phase (deg/10) vs w/wn");
  benchutil::Series mag{"|H| dB", '*', {}, {}};
  benchutil::Series ph{"phase/10 deg", '+', {}, {}};
  for (const auto& p : bode.points()) {
    mag.x.push_back(p.omega_rad_per_s);
    mag.y.push_back(p.magnitude_db);
    ph.x.push_back(p.omega_rad_per_s);
    ph.y.push_back(p.phase_deg / 10.0);
  }
  std::printf("%s", benchutil::asciiPlot({mag, ph}).c_str());
  return 0;
}
