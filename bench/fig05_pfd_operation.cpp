// Figure 5: graphical illustration of the PFD/charge-pump operation —
// reproduced as measured waveform statistics from the structural PFD model
// for the three cases the paper annotates:
//   (1) feedback leads  -> DN pulses, LF voltage falls
//   (2) reference leads -> UP pulses, LF voltage rises
//   (3) coincident      -> dead-zone glitches only, LF voltage held

#include <cstdio>

#include "pll/pfd.hpp"
#include "pll/pump_filter.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"
#include "support/bench_util.hpp"

namespace {

using namespace pllbist;

struct CaseResult {
  double up_width_us = 0.0;
  double dn_width_us = 0.0;
  size_t up_pulses = 0;
  size_t dn_pulses = 0;
  double dv_mv = 0.0;
};

CaseResult runCase(double skew_s) {
  sim::Circuit c;
  const auto ref = c.addSignal("ref");
  const auto fb = c.addSignal("fb");
  pll::Pfd pfd(c, ref, fb, pll::PfdDelays{});
  pll::PumpFilterConfig fcfg;
  fcfg.r1_ohm = 10e3;
  fcfg.r2_ohm = 1e3;
  fcfg.c_farad = 1e-6;
  pll::PumpFilter filter(c, pfd.up(), pfd.dn(), fcfg);
  sim::EdgeRecorder up(c, pfd.up());
  sim::EdgeRecorder dn(c, pfd.dn());

  const double period = 100e-6;
  const int cycles = 50;
  for (int k = 0; k < cycles; ++k) {
    const double t = 1e-5 + k * period;
    c.scheduleSet(ref, t, true);
    c.scheduleSet(ref, t + period / 2, false);
    c.scheduleSet(fb, t + skew_s, true);
    c.scheduleSet(fb, t + skew_s + period / 2, false);
  }
  const double t_end = 1e-5 + (cycles + 1) * period;
  c.run(t_end);

  CaseResult r;
  auto widest = [](const sim::EdgeRecorder& rec, size_t& pulse_count) {
    double w = 0.0;
    const size_t n = std::min(rec.risingEdges().size(), rec.fallingEdges().size());
    for (size_t i = 0; i < n; ++i) {
      const double width = rec.fallingEdges()[i] - rec.risingEdges()[i];
      if (width > 1e-7) ++pulse_count;
      w = std::max(w, width);
    }
    return w;
  };
  r.up_width_us = widest(up, r.up_pulses) * 1e6;
  r.dn_width_us = widest(dn, r.dn_pulses) * 1e6;
  r.dv_mv = (filter.capVoltage(t_end) - fcfg.initial_vc_v) * 1e3;
  return r;
}

}  // namespace

int main() {
  benchutil::printHeader("Figure 5 - CP-PFD operation (lead / lag / coincident)");
  std::printf("\n%-26s %12s %12s %10s %10s %12s\n", "case", "UP width", "DN width", "UP pulses",
              "DN pulses", "dVcap (50 cyc)");
  struct Case {
    const char* name;
    double skew;
  };
  for (const Case& cs : {Case{"(2) reference leads 5us", 5e-6}, Case{"(1) feedback leads 5us", -5e-6},
                         Case{"(3) coincident", 0.0}}) {
    const CaseResult r = runCase(cs.skew);
    std::printf("%-26s %9.2f us %9.2f us %10zu %10zu %9.2f mV\n", cs.name, r.up_width_us,
                r.dn_width_us, r.up_pulses, r.dn_pulses, r.dv_mv);
  }
  std::printf(
      "\nExpected (paper Fig. 5): reference leading -> wide UP pulses, LF voltage\n"
      "rises; feedback leading -> wide DN pulses, LF voltage falls; coincident ->\n"
      "both outputs carry only ~ns dead-zone glitches (from the D-latch and AND\n"
      "propagation delays) and the filter voltage holds. These glitches are what\n"
      "clock the Figure 7 sampling latch.\n");
  return 0;
}
