// Figure 8: transient waveforms of the output-frequency peak detector.
// The reference PLL is driven with sinusoidal FM; the loop-filter node,
// the monitor-PFD UP/DN activity and the MFREQ (peak-detect) output are
// recorded. MFREQ's falling edges must land on the crests of the filter
// voltage — the frequency maxima. Also writes fig08_waveforms.csv.

#include <cstdio>
#include <fstream>

#include "bist/peak_detector.hpp"
#include "pll/config.hpp"
#include "pll/cppll.hpp"
#include "pll/probes.hpp"
#include "pll/sources.hpp"
#include "sim/trace.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Figure 8 - peak detector transient waveforms");

  const pll::PllConfig cfg = pll::referenceConfig();
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  const auto marker = c.addSignal("marker");
  pll::SineFmSource::Config scfg;
  scfg.nominal_hz = cfg.ref_frequency_hz;
  pll::SineFmSource src(c, stim, marker, scfg);
  pll::CpPll pll(c, ext, stim, cfg);
  pll.setTestMode(true);
  bist::PeakDetector det(c, pll.ref(), pll.feedback(), cfg.pfd, bist::PeakDetectorDelays{});

  c.run(1.0);  // lock
  const double fm = 8.0;
  src.setModulation(fm, 10.0);
  c.run(c.now() + 4.0 / fm);  // settle into sinusoidal steady state

  // Record two modulation periods.
  sim::Trace vcap("vcap");
  pll::AnalogProbe probe(c, [&] { return pll.filter().capVoltage(c.now()); }, vcap, 2.5e-4,
                         c.now());
  sim::EdgeRecorder up(c, det.monitorUp());
  sim::EdgeRecorder dn(c, det.monitorDn());
  sim::EdgeRecorder mfreq(c, det.mfreq());
  const double t0 = c.now();
  c.run(t0 + 2.0 / fm);
  probe.stop();

  benchutil::printSubHeader("loop-filter capacitor voltage with MFREQ peak marks");
  benchutil::Series vc_series{"vcap (V)", '*', {}, {}};
  for (size_t i = 0; i < vcap.size(); ++i) {
    vc_series.x.push_back(vcap.times()[i] - t0);
    vc_series.y.push_back(vcap.values()[i]);
  }
  benchutil::Series peaks{"MFREQ fall = max-frequency event", 'V', {}, {}};
  for (double t : mfreq.fallingEdges()) {
    peaks.x.push_back(t - t0);
    peaks.y.push_back(vcap.at(t));
  }
  benchutil::Series valleys{"MFREQ rise = min-frequency event", 'A', {}, {}};
  for (double t : mfreq.risingEdges()) {
    valleys.x.push_back(t - t0);
    valleys.y.push_back(vcap.at(t));
  }
  std::printf("%s", benchutil::asciiPlot({vc_series, peaks, valleys}, 96, 20, false).c_str());

  benchutil::printSubHeader("pulse statistics over the captured window");
  auto widthStats = [](const sim::EdgeRecorder& rec, const char* name) {
    const size_t n = std::min(rec.risingEdges().size(), rec.fallingEdges().size());
    size_t wide = 0, glitch = 0;
    double widest = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double rise = rec.risingEdges()[i];
      double fall = rec.fallingEdges()[i];
      if (fall < rise && i + 1 < rec.fallingEdges().size()) fall = rec.fallingEdges()[i + 1];
      const double w = fall - rise;
      if (w > 1e-7)
        ++wide;
      else
        ++glitch;
      widest = std::max(widest, w);
    }
    std::printf("%-10s %5zu pulses, %5zu dead-zone glitches, widest %.2f us\n", name, wide,
                glitch, widest * 1e6);
  };
  widthStats(up, "PFD UP");
  widthStats(dn, "PFD DN");
  std::printf("MFREQ transitions: %zu max-frequency marks, %zu min-frequency marks in %.2f s\n",
              mfreq.fallingEdges().size(), mfreq.risingEdges().size(), 2.0 / fm);
  std::printf("(expected: one of each per %.3f s modulation period)\n", 1.0 / fm);

  // CSV dump for external plotting.
  {
    std::ofstream csv("fig08_waveforms.csv");
    std::vector<const sim::Trace*> traces{&vcap};
    sim::writeTracesCsv(csv, traces);
    std::printf("\nwrote fig08_waveforms.csv (%zu samples)\n", vcap.size());
  }
  return 0;
}
