// Figure 10: theoretical magnitude and phase plots for the reference PLL,
// from the closed-loop transfer function of eqn (4) with the Table 3
// values. Also prints the capacitor-node response (what the peak-detect-
// and-hold BIST physically captures) for comparison with Figures 11/12.
//
// Exits nonzero if the golden analytical oracle (closed-form second-order
// evaluation, derived independently from the raw R/C/Ip/Ko/N values)
// disagrees with the polynomial TransferFunction evaluation anywhere on
// the plotted grid — the two derivations must match to numerical noise.

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "control/bode.hpp"
#include "control/grid.hpp"
#include "golden/linear_model.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Figure 10 - theoretical response of the reference PLL (eqn 4)");

  const pll::PllConfig cfg = pll::referenceConfig();
  const control::TransferFunction eqn4 = cfg.closedLoopDividedTf();
  const control::TransferFunction cap = cfg.capacitorNodeTf();

  std::vector<double> freqs = control::logspace(0.5, 100.0, 41);
  std::printf("\n%10s | %12s %12s | %12s %12s\n", "f (Hz)", "eqn4 (dB)", "eqn4 (deg)", "cap (dB)",
              "cap (deg)");
  for (double f : freqs) {
    const double w = hzToRadPerSec(f);
    std::printf("%10.3f | %12.3f %12.2f | %12.3f %12.2f\n", f, eqn4.magnitudeDbAt(w),
                eqn4.phaseDegAt(w), cap.magnitudeDbAt(w), cap.phaseDegAt(w));
  }

  benchutil::printSubHeader("features");
  std::vector<double> ws = control::logspace(hzToRadPerSec(0.2), hzToRadPerSec(200.0), 400);
  const auto eqn4_bode = control::BodeResponse::compute(eqn4, ws);
  const auto cap_bode = control::BodeResponse::compute(cap, ws);
  std::printf("eqn4: peak %.3f dB at %.3f Hz, phase there %.1f deg, f3dB %.3f Hz\n",
              eqn4_bode.peakingDb(), radPerSecToHz(eqn4_bode.peak().omega_rad_per_s),
              eqn4_bode.phaseDegAt(eqn4_bode.peak().omega_rad_per_s),
              radPerSecToHz(eqn4_bode.bandwidth3Db().value_or(0.0)));
  std::printf("      phase at fn = 8 Hz: %.1f deg   <- the paper's -46 deg anchor\n",
              eqn4.phaseDegAt(hzToRadPerSec(8.0)));
  std::printf("cap : peak %.3f dB at %.3f Hz, phase there %.1f deg, f3dB %.3f Hz\n",
              cap_bode.peakingDb(), radPerSecToHz(cap_bode.peak().omega_rad_per_s),
              cap_bode.phaseDegAt(cap_bode.peak().omega_rad_per_s),
              radPerSecToHz(cap_bode.bandwidth3Db().value_or(0.0)));
  std::printf("      phase at fn = 8 Hz: %.1f deg\n", cap.phaseDegAt(hzToRadPerSec(8.0)));

  benchutil::printSubHeader("magnitude (dB)");
  benchutil::Series m1{"eqn4 |H|", '*', {}, {}}, m2{"capacitor node", 'o', {}, {}};
  for (const auto& p : eqn4_bode.points()) {
    m1.x.push_back(radPerSecToHz(p.omega_rad_per_s));
    m1.y.push_back(p.magnitude_db);
  }
  for (const auto& p : cap_bode.points()) {
    m2.x.push_back(radPerSecToHz(p.omega_rad_per_s));
    m2.y.push_back(p.magnitude_db);
  }
  std::printf("%s", benchutil::asciiPlot({m1, m2}).c_str());

  benchutil::printSubHeader("phase (deg)");
  benchutil::Series p1{"eqn4 arg H", '*', {}, {}}, p2{"capacitor node", 'o', {}, {}};
  for (const auto& p : eqn4_bode.points()) {
    p1.x.push_back(radPerSecToHz(p.omega_rad_per_s));
    p1.y.push_back(p.phase_deg);
  }
  for (const auto& p : cap_bode.points()) {
    p2.x.push_back(radPerSecToHz(p.omega_rad_per_s));
    p2.y.push_back(p.phase_deg);
  }
  std::printf("%s", benchutil::asciiPlot({p1, p2}).c_str());

  benchutil::printSubHeader("golden-model cross-check");
  const golden::GoldenModel model(cfg);
  double max_db = 0.0, max_deg = 0.0;
  for (double f : control::logspace(0.5, 100.0, 101)) {
    const double w = hzToRadPerSec(f);
    max_db = std::max(max_db, std::abs(model.magnitudeDb(f, golden::ResponseKind::CapacitorNode) -
                                       cap.magnitudeDbAt(w)));
    max_deg = std::max(max_deg, std::abs(model.phaseDeg(f, golden::ResponseKind::CapacitorNode) -
                                         cap.phaseDegAt(w)));
    max_db = std::max(max_db, std::abs(model.magnitudeDb(f, golden::ResponseKind::DividedOutput) -
                                       eqn4.magnitudeDbAt(w)));
    max_deg = std::max(max_deg, std::abs(model.phaseDeg(f, golden::ResponseKind::DividedOutput) -
                                         eqn4.phaseDegAt(w)));
  }
  constexpr double kAnalyticTolDb = 1e-6, kAnalyticTolDeg = 1e-6;
  std::printf("golden oracle vs TransferFunction over 0.5..100 Hz (both response kinds):\n"
              "  max |delta| = %.3e dB, %.3e deg  (gate: %.0e dB / %.0e deg)\n",
              max_db, max_deg, kAnalyticTolDb, kAnalyticTolDeg);
  if (max_db > kAnalyticTolDb || max_deg > kAnalyticTolDeg) {
    std::fprintf(stderr, "fig10: FAIL - golden oracle disagrees with the transfer function\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
