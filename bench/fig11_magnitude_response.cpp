// Figure 11: measured magnitude response of the reference PLL via the
// on-chip BIST, for pure sinusoidal FM, two-tone FSK, and ten-step
// multi-tone FSK, against theory.
//
// Paper anchors reproduced:
//  - peak near fn = 8 Hz,
//  - the ten-step multi-tone FSK curve closely follows the pure-sine one,
//  - the two-tone FSK curve deviates (square modulation),
//  - measured magnitudes referenced to the in-band (0 dB) measurement.
//
// Note on theory columns: the hold-at-PFD-reversal capture physically
// measures the *capacitor node* response H/(1+s*tau2); eqn (4) is also
// printed. See DESIGN.md and EXPERIMENTS.md for the discussion.

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "control/bode.hpp"
#include "golden/differential.hpp"
#include "golden/linear_model.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"
#include "support/reference_sweeps.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Figure 11 - measured magnitude response (BIST)");

  const pll::PllConfig cfg = pll::referenceConfig();
  benchutil::SweepSet sweeps = benchutil::runReferenceSweeps();

  const control::BodeResponse sine = sweeps.pure_sine.toBode();
  const control::BodeResponse two = sweeps.two_tone.toBode();
  const control::BodeResponse multi = sweeps.multi_tone.toBode();
  const control::TransferFunction cap = cfg.capacitorNodeTf();
  const control::TransferFunction eqn4 = cfg.closedLoopDividedTf();

  std::printf("\n%9s | %10s %10s %10s | %9s %9s\n", "f (Hz)", "pure sine", "two-tone",
              "multi-10", "cap thry", "eqn4");
  for (size_t i = 0; i < sine.size(); ++i) {
    const double w = sine.points()[i].omega_rad_per_s;
    auto at = [&](const control::BodeResponse& r) {
      return i < r.size() ? r.points()[i].magnitude_db : -999.0;
    };
    std::printf("%9.3f | %10.2f %10.2f %10.2f | %9.2f %9.2f\n", radPerSecToHz(w), at(sine),
                at(two), at(multi), cap.magnitudeDbAt(w), eqn4.magnitudeDbAt(w));
  }

  benchutil::printSubHeader("anchors");
  const auto peak = multi.peak();
  std::printf("multi-tone peak: %.2f dB at %.2f Hz  (paper: peak near fn = 8 Hz)\n",
              multi.peakingDb(), radPerSecToHz(peak.omega_rad_per_s));
  std::printf("in-band reference deviations: sine %.1f Hz, two-tone %.1f Hz, multi %.1f Hz\n",
              sweeps.pure_sine.static_reference_deviation_hz,
              sweeps.two_tone.static_reference_deviation_hz,
              sweeps.multi_tone.static_reference_deviation_hz);

  // RMS deviation from the pure-sine curve, split at 2*fn: the paper's
  // plotted comparison region is around/below the peak, where the stimulus
  // quality dominates; above it counter quantisation takes over.
  for (double fmax : {16.0, 1e9}) {
    double rms_multi = 0.0, rms_two = 0.0;
    int n = 0;
    for (size_t i = 0; i < sine.size() && i < two.size() && i < multi.size(); ++i) {
      if (radPerSecToHz(sine.points()[i].omega_rad_per_s) > fmax) break;
      const double s = sine.points()[i].magnitude_db;
      rms_multi += (multi.points()[i].magnitude_db - s) * (multi.points()[i].magnitude_db - s);
      rms_two += (two.points()[i].magnitude_db - s) * (two.points()[i].magnitude_db - s);
      ++n;
    }
    std::printf("RMS deviation from pure sine (%s): multi-tone %.2f dB, two-tone %.2f dB\n",
                fmax < 1e8 ? "fm <= 2*fn" : "full sweep", std::sqrt(rms_multi / n),
                std::sqrt(rms_two / n));
  }
  std::printf("(paper: \"the ideal sinusoidal FM plot closely corresponds to the ten-step\n"
              " FS plot\" while the two-tone comparison deviates)\n");

  benchutil::printSubHeader("magnitude plot (dB)");
  auto toSeries = [](const control::BodeResponse& r, const char* label, char sym) {
    benchutil::Series s{label, sym, {}, {}};
    for (const auto& p : r.points()) {
      s.x.push_back(radPerSecToHz(p.omega_rad_per_s));
      s.y.push_back(p.magnitude_db);
    }
    return s;
  };
  std::printf("%s", benchutil::asciiPlot({toSeries(sine, "pure sine", 's'),
                                          toSeries(two, "two-tone FSK", '2'),
                                          toSeries(multi, "multi-tone FSK", 'm')})
                        .c_str());

  // Differential gate against the analytical oracle: the multi-tone curve
  // (the BIST's production stimulus) must sit inside the documented band
  // tolerances of the golden capacitor-node magnitude. The two-tone curve
  // is reported but not gated — the paper itself shows it deviating.
  benchutil::printSubHeader("golden-model differential gate");
  const golden::GoldenModel model(cfg);
  const double fn = model.naturalFrequencyHz();
  const golden::ToleranceBands bands = golden::ToleranceBands::defaults();
  double max_delta = 0.0, max_two = 0.0;
  bool pass = true;
  int gated = 0;
  for (const auto& p : multi.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    const golden::ToleranceBand* band = bands.bandFor(f / fn);
    if (band == nullptr) continue;  // counter-resolution floor: excluded
    const double delta = p.magnitude_db - model.magnitudeDb(f);
    max_delta = std::max(max_delta, std::abs(delta));
    ++gated;
    if (std::abs(delta) > band->magnitude_db) {
      std::printf("  VIOLATION at %.2f Hz (%s): |%.2f| dB > %.2f dB\n", f, band->label, delta,
                  band->magnitude_db);
      pass = false;
    }
  }
  for (const auto& p : two.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    if (bands.bandFor(f / fn) == nullptr) continue;
    max_two = std::max(max_two, std::abs(p.magnitude_db - model.magnitudeDb(f)));
  }
  std::printf("multi-tone vs oracle: max |delta| = %.2f dB over %d banded points\n", max_delta,
              gated);
  std::printf("two-tone  vs oracle: max |delta| = %.2f dB (reported, not gated)\n", max_two);
  if (!pass || gated == 0) {
    std::fprintf(stderr, "fig11: FAIL - measured magnitude outside the golden tolerance bands\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
