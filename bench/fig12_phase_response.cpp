// Figure 12: measured phase response of the reference PLL via the on-chip
// BIST for the three stimulus kinds, with theory columns. The paper's
// anchor is ~-46 deg at fn = 8 Hz for the eqn (4) response; the physical
// peak-detect capture measures the capacitor-node response whose phase at
// fn is -90 deg (see EXPERIMENTS.md for the systematic-difference note).

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "control/bode.hpp"
#include "golden/differential.hpp"
#include "golden/linear_model.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"
#include "support/reference_sweeps.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Figure 12 - measured phase response (BIST)");

  const pll::PllConfig cfg = pll::referenceConfig();
  benchutil::SweepSet sweeps = benchutil::runReferenceSweeps();

  const control::BodeResponse sine = sweeps.pure_sine.toBode();
  const control::BodeResponse two = sweeps.two_tone.toBode();
  const control::BodeResponse multi = sweeps.multi_tone.toBode();
  const control::TransferFunction cap = cfg.capacitorNodeTf();
  const control::TransferFunction eqn4 = cfg.closedLoopDividedTf();

  std::printf("\n%9s | %10s %10s %10s | %9s %9s\n", "f (Hz)", "pure sine", "two-tone",
              "multi-10", "cap thry", "eqn4");
  for (size_t i = 0; i < sine.size(); ++i) {
    const double w = sine.points()[i].omega_rad_per_s;
    auto at = [&](const control::BodeResponse& r) {
      return i < r.size() ? r.points()[i].phase_deg : 0.0;
    };
    std::printf("%9.3f | %10.1f %10.1f %10.1f | %9.1f %9.1f\n", radPerSecToHz(w), at(sine),
                at(two), at(multi), cap.phaseDegAt(w), eqn4.phaseDegAt(w));
  }

  benchutil::printSubHeader("anchors");
  const double w_fn = hzToRadPerSec(8.0);
  std::printf("phase at fn = 8 Hz: pure sine %.1f deg, multi-tone %.1f deg\n",
              sine.phaseDegAt(w_fn), multi.phaseDegAt(w_fn));
  std::printf("theory at fn:       capacitor node %.1f deg, eqn (4) %.1f deg\n",
              cap.phaseDegAt(w_fn), eqn4.phaseDegAt(w_fn));
  std::printf("(the paper plots -46 deg at fn, i.e. the eqn (4) curve; the physical\n"
              " hold-at-PFD-reversal capture tracks the capacitor-node curve)\n");

  for (double fmax : {16.0, 1e9}) {
    double rms_multi = 0.0, rms_two = 0.0;
    int n = 0;
    for (size_t i = 0; i < sine.size() && i < two.size() && i < multi.size(); ++i) {
      if (radPerSecToHz(sine.points()[i].omega_rad_per_s) > fmax) break;
      const double s = sine.points()[i].phase_deg;
      rms_multi += (multi.points()[i].phase_deg - s) * (multi.points()[i].phase_deg - s);
      rms_two += (two.points()[i].phase_deg - s) * (two.points()[i].phase_deg - s);
      ++n;
    }
    std::printf("RMS deviation from pure sine (%s): multi-tone %.1f deg, two-tone %.1f deg\n",
                fmax < 1e8 ? "fm <= 2*fn" : "full sweep", std::sqrt(rms_multi / n),
                std::sqrt(rms_two / n));
  }

  benchutil::printSubHeader("phase plot (deg)");
  auto toSeries = [](const control::BodeResponse& r, const char* label, char sym) {
    benchutil::Series s{label, sym, {}, {}};
    for (const auto& p : r.points()) {
      s.x.push_back(radPerSecToHz(p.omega_rad_per_s));
      s.y.push_back(p.phase_deg);
    }
    return s;
  };
  std::printf("%s", benchutil::asciiPlot({toSeries(sine, "pure sine", 's'),
                                          toSeries(two, "two-tone FSK", '2'),
                                          toSeries(multi, "multi-tone FSK", 'm')})
                        .c_str());

  // Differential gate against the analytical oracle: multi-tone phase vs
  // the golden capacitor-node curve, after removing the ~1-Tref transport
  // delay of the sampled BIST path (see DESIGN.md section 9). Two-tone is
  // reported but not gated.
  benchutil::printSubHeader("golden-model differential gate");
  const golden::GoldenModel model(cfg);
  const double fn = model.naturalFrequencyHz();
  const golden::ToleranceBands bands = golden::ToleranceBands::defaults();
  const double delay_tref = 1.0;  // same correction the differential suite applies
  // The figures reproduce the paper's ten-step FSK stimulus; the golden
  // differential suite runs 20 steps precisely because 10 leaves a few
  // degrees of staircase distortion in the extracted phase. Widen each
  // band by that documented stimulus penalty instead of hiding it.
  const double coarse_stimulus_slack_deg = 5.0;
  auto delta_of = [&](const control::BodePoint& p) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    double d = p.phase_deg - model.phaseDeg(f) + 360.0 * f * delay_tref / cfg.ref_frequency_hz;
    while (d <= -180.0) d += 360.0;
    while (d > 180.0) d -= 360.0;
    return d;
  };
  double max_delta = 0.0, max_two = 0.0;
  bool pass = true;
  int gated = 0;
  for (const auto& p : multi.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    const golden::ToleranceBand* band = bands.bandFor(f / fn);
    if (band == nullptr) continue;  // counter-resolution floor: excluded
    const double delta = delta_of(p);
    const double tol = band->phase_deg + coarse_stimulus_slack_deg;
    max_delta = std::max(max_delta, std::abs(delta));
    ++gated;
    if (std::abs(delta) > tol) {
      std::printf("  VIOLATION at %.2f Hz (%s): |%.1f| deg > %.1f deg\n", f, band->label, delta,
                  tol);
      pass = false;
    }
  }
  for (const auto& p : two.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    if (bands.bandFor(f / fn) == nullptr) continue;
    max_two = std::max(max_two, std::abs(delta_of(p)));
  }
  std::printf("multi-tone vs oracle: max |delta| = %.1f deg over %d banded points "
              "(delay-corrected, %.1f Tref)\n",
              max_delta, gated, delay_tref);
  std::printf("two-tone  vs oracle: max |delta| = %.1f deg (reported, not gated)\n", max_two);
  if (!pass || gated == 0) {
    std::fprintf(stderr, "fig12: FAIL - measured phase outside the golden tolerance bands\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
