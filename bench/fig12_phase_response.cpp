// Figure 12: measured phase response of the reference PLL via the on-chip
// BIST for the three stimulus kinds, with theory columns. The paper's
// anchor is ~-46 deg at fn = 8 Hz for the eqn (4) response; the physical
// peak-detect capture measures the capacitor-node response whose phase at
// fn is -90 deg (see EXPERIMENTS.md for the systematic-difference note).

#include <cstdio>

#include "common/units.hpp"
#include "control/bode.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"
#include "support/reference_sweeps.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Figure 12 - measured phase response (BIST)");

  const pll::PllConfig cfg = pll::referenceConfig();
  benchutil::SweepSet sweeps = benchutil::runReferenceSweeps();

  const control::BodeResponse sine = sweeps.pure_sine.toBode();
  const control::BodeResponse two = sweeps.two_tone.toBode();
  const control::BodeResponse multi = sweeps.multi_tone.toBode();
  const control::TransferFunction cap = cfg.capacitorNodeTf();
  const control::TransferFunction eqn4 = cfg.closedLoopDividedTf();

  std::printf("\n%9s | %10s %10s %10s | %9s %9s\n", "f (Hz)", "pure sine", "two-tone",
              "multi-10", "cap thry", "eqn4");
  for (size_t i = 0; i < sine.size(); ++i) {
    const double w = sine.points()[i].omega_rad_per_s;
    auto at = [&](const control::BodeResponse& r) {
      return i < r.size() ? r.points()[i].phase_deg : 0.0;
    };
    std::printf("%9.3f | %10.1f %10.1f %10.1f | %9.1f %9.1f\n", radPerSecToHz(w), at(sine),
                at(two), at(multi), cap.phaseDegAt(w), eqn4.phaseDegAt(w));
  }

  benchutil::printSubHeader("anchors");
  const double w_fn = hzToRadPerSec(8.0);
  std::printf("phase at fn = 8 Hz: pure sine %.1f deg, multi-tone %.1f deg\n",
              sine.phaseDegAt(w_fn), multi.phaseDegAt(w_fn));
  std::printf("theory at fn:       capacitor node %.1f deg, eqn (4) %.1f deg\n",
              cap.phaseDegAt(w_fn), eqn4.phaseDegAt(w_fn));
  std::printf("(the paper plots -46 deg at fn, i.e. the eqn (4) curve; the physical\n"
              " hold-at-PFD-reversal capture tracks the capacitor-node curve)\n");

  for (double fmax : {16.0, 1e9}) {
    double rms_multi = 0.0, rms_two = 0.0;
    int n = 0;
    for (size_t i = 0; i < sine.size() && i < two.size() && i < multi.size(); ++i) {
      if (radPerSecToHz(sine.points()[i].omega_rad_per_s) > fmax) break;
      const double s = sine.points()[i].phase_deg;
      rms_multi += (multi.points()[i].phase_deg - s) * (multi.points()[i].phase_deg - s);
      rms_two += (two.points()[i].phase_deg - s) * (two.points()[i].phase_deg - s);
      ++n;
    }
    std::printf("RMS deviation from pure sine (%s): multi-tone %.1f deg, two-tone %.1f deg\n",
                fmax < 1e8 ? "fm <= 2*fn" : "full sweep", std::sqrt(rms_multi / n),
                std::sqrt(rms_two / n));
  }

  benchutil::printSubHeader("phase plot (deg)");
  auto toSeries = [](const control::BodeResponse& r, const char* label, char sym) {
    benchutil::Series s{label, sym, {}, {}};
    for (const auto& p : r.points()) {
      s.x.push_back(radPerSecToHz(p.omega_rad_per_s));
      s.y.push_back(p.phase_deg);
    }
    return s;
  };
  std::printf("%s", benchutil::asciiPlot({toSeries(sine, "pure sine", 's'),
                                          toSeries(two, "two-tone FSK", '2'),
                                          toSeries(multi, "multi-tone FSK", 'm')})
                        .c_str());
  return 0;
}
