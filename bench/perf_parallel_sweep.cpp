// Serial vs parallel point-farm sweep: runs the same Fig. 11 reference
// sweep through bist::ParallelSweep at --jobs 1 (the serial reference
// execution) and at --jobs N, prints the wall-clock times and speedup, and
// checks the determinism contract — every Bode point, counter and status
// must be bit-identical between the two runs.
//
//   perf_parallel_sweep [--jobs N] [--points N] [--device reference|fast]
//
// Exit code is 1 only when the determinism check fails (a wrong result);
// timing is reported but never gates, so the binary stays usable on
// loaded or single-core CI hosts.

#include <cstdio>
#include <cstring>
#include <string>

#include "bist/parallel_sweep.hpp"
#include "obs/metrics.hpp"
#include "pll/config.hpp"

namespace {

using namespace pllbist;

bist::SweepOptions referenceSweepOptions(int points) {
  const pll::ReferenceStimulus stim = pll::referenceStimulus();
  bist::SweepOptions opt;
  opt.stimulus = bist::StimulusKind::MultiToneFsk;
  opt.fm_steps = stim.fm_steps;
  opt.deviation_hz = stim.max_deviation_hz;
  opt.master_clock_hz = stim.master_clock_hz;
  opt.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(8.0, points);
  return opt;
}

bist::ResilientResponse runFarm(const pll::PllConfig& cfg, const bist::SweepOptions& sweep,
                                int jobs) {
  bist::ParallelSweepOptions popt;
  popt.jobs = jobs;
  bist::ParallelSweep engine(cfg, sweep, popt);
  return engine.run();
}

bool bitIdentical(const bist::ResilientResponse& a, const bist::ResilientResponse& b) {
  bool same = true;
  auto mismatch = [&](const char* what) {
    std::printf("MISMATCH: %s differs between jobs=1 and jobs=N\n", what);
    same = false;
  };
  if (a.response.points.size() != b.response.points.size()) {
    mismatch("point count");
    return false;
  }
  // memcmp-grade equality on every double: the contract is bit-identical,
  // not approximately equal.
  for (std::size_t i = 0; i < a.response.points.size(); ++i) {
    const bist::MeasuredPoint& pa = a.response.points[i];
    const bist::MeasuredPoint& pb = b.response.points[i];
    if (std::memcmp(&pa.modulation_hz, &pb.modulation_hz, sizeof(double)) != 0 ||
        std::memcmp(&pa.deviation_hz, &pb.deviation_hz, sizeof(double)) != 0 ||
        std::memcmp(&pa.phase_deg, &pb.phase_deg, sizeof(double)) != 0)
      mismatch("point values");
  }
  if (std::memcmp(&a.response.nominal_vco_hz, &b.response.nominal_vco_hz, sizeof(double)) != 0)
    mismatch("nominal VCO frequency");
  if (std::memcmp(&a.response.static_reference_deviation_hz,
                  &b.response.static_reference_deviation_hz, sizeof(double)) != 0)
    mismatch("static reference deviation");
  if (a.report.ok != b.report.ok || a.report.retried != b.report.retried ||
      a.report.degraded != b.report.degraded || a.report.dropped != b.report.dropped ||
      a.report.attempts_total != b.report.attempts_total || a.report.relocks != b.report.relocks)
    mismatch("quality report counters");
  if (a.status.kind() != b.status.kind()) mismatch("sweep status");
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 4;
  int points = 8;
  std::string device = "reference";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--jobs N] [--points N] [--device reference|fast]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") jobs = std::stoi(next());
    else if (arg == "--points") points = std::stoi(next());
    else if (arg == "--device") device = next();
    else next();  // unknown flag: print usage and exit
  }
  if (jobs < 1) jobs = 1;
  if (points < 2) points = 2;

  pll::PllConfig cfg;
  bist::SweepOptions sweep;
  if (device == "reference") {
    cfg = pll::referenceConfig();
    sweep = referenceSweepOptions(points);
  } else {
    cfg = pll::scaledTestConfig();
    sweep = bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, points);
  }

  std::printf("parallel point-farm bench: %s device, %d points\n", device.c_str(), points);

  const bist::ResilientResponse serial = runFarm(cfg, sweep, 1);
  std::printf("  jobs=1: %6.2f s wall  (%.1f s simulated, %zu points, %s)\n",
              serial.report.wall_time_s, serial.report.sim_time_s, serial.response.points.size(),
              serial.report.summary().c_str());

  const bist::ResilientResponse parallel = runFarm(cfg, sweep, jobs);
  std::printf("  jobs=%d: %6.2f s wall  (%.1f s simulated, %zu points, %s)\n", jobs,
              parallel.report.wall_time_s, parallel.report.sim_time_s,
              parallel.response.points.size(), parallel.report.summary().c_str());

  const double speedup = parallel.report.wall_time_s > 0.0
                             ? serial.report.wall_time_s / parallel.report.wall_time_s
                             : 0.0;
  std::printf("speedup at --jobs %d: %.2fx\n", jobs, speedup);

  // Per-point latency distribution, read back from the telemetry histogram
  // the engines populate (both runs land in the same process-wide metric).
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  if (const obs::HistogramValue* h = snap.findHistogram("bist.sweep.point_wall_s");
      h != nullptr && h->count > 0) {
    std::printf("point latency (%llu points, both runs): p50 %.1f ms  p95 %.1f ms  max %.1f ms\n",
                static_cast<unsigned long long>(h->count), h->quantile(0.50) * 1e3,
                h->quantile(0.95) * 1e3, h->max * 1e3);
  }

  if (!bitIdentical(serial, parallel)) {
    std::printf("FAIL: determinism contract violated\n");
    return 1;
  }
  std::printf("determinism: all %zu points bit-identical across job counts [ok]\n",
              serial.response.points.size());
  return 0;
}
