// Microbenchmarks (google-benchmark): event-kernel throughput, closed-loop
// CP-PLL simulation rate, and the cost of one complete BIST point
// measurement. These quantify the claim that the event-driven analytic
// substrate simulates seconds of loop time in milliseconds of wall time.

#include <benchmark/benchmark.h>

#include "bist/controller.hpp"
#include "pll/config.hpp"
#include "pll/cppll.hpp"
#include "pll/sources.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace {

using namespace pllbist;

/// Raw kernel: a clock fanned out through a chain of gates.
void BM_EventKernel(benchmark::State& state) {
  int64_t delivered = 0;
  for (auto _ : state) {
    sim::Circuit c;
    const auto clk = c.addSignal("clk");
    sim::ClockSource src(c, clk, 1e-6);
    std::vector<sim::SignalId> nets{clk};
    std::vector<std::unique_ptr<sim::Inverter>> chain;
    for (int i = 0; i < 8; ++i) {
      const auto out = c.addSignal("n" + std::to_string(i));
      chain.push_back(std::make_unique<sim::Inverter>(c, nets.back(), out, 1e-9));
      nets.push_back(out);
    }
    c.run(10e-3);  // 10k clock edges through 8 gates
    // Throughput counts delivered events only; dropped/delayed/swallowed
    // ones never reach a consumer, so they would inflate items/s.
    delivered += static_cast<int64_t>(c.deliveredEventCount());
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(delivered);
}
BENCHMARK(BM_EventKernel)->Unit(benchmark::kMillisecond);

/// Closed-loop PLL: simulated seconds per wall second.
void BM_ClosedLoopSecond(benchmark::State& state) {
  for (auto _ : state) {
    const pll::PllConfig cfg = pll::scaledTestConfig();
    sim::Circuit c;
    const auto ext = c.addSignal("ext");
    const auto stim = c.addSignal("stim");
    const auto mk = c.addSignal("mk");
    pll::SineFmSource::Config scfg;
    scfg.nominal_hz = cfg.ref_frequency_hz;
    pll::SineFmSource src(c, stim, mk, scfg);
    pll::CpPll pll(c, ext, stim, cfg);
    pll.setTestMode(true);
    c.run(1.0);  // one simulated second at 100 kHz VCO
    benchmark::DoNotOptimize(pll.controlVoltageNow());
  }
}
BENCHMARK(BM_ClosedLoopSecond)->Unit(benchmark::kMillisecond);

/// One complete BIST point (settle, phase count, hold, gate).
void BM_BistPoint(benchmark::State& state) {
  for (auto _ : state) {
    const pll::PllConfig cfg = pll::scaledTestConfig();
    bist::SweepOptions opt = bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 10);
    opt.modulation_frequencies_hz = {200.0};
    bist::BistController controller(cfg, opt);
    benchmark::DoNotOptimize(controller.run().points.size());
  }
}
BENCHMARK(BM_BistPoint)->Unit(benchmark::kMillisecond);

/// Full reference sweep at paper scale, multi-tone.
void BM_ReferenceSweep(benchmark::State& state) {
  for (auto _ : state) {
    const pll::PllConfig cfg = pll::referenceConfig();
    bist::SweepOptions opt;
    opt.stimulus = bist::StimulusKind::MultiToneFsk;
    opt.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(8.0, 6);
    bist::BistController controller(cfg, opt);
    benchmark::DoNotOptimize(controller.run().points.size());
  }
}
BENCHMARK(BM_ReferenceSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
