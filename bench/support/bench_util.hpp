#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace pllbist::benchutil {

/// One plotted series: (x, y) points drawn with `symbol`.
struct Series {
  std::string label;
  char symbol = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Render multiple series into an ASCII grid, log-scaled in x when
/// `log_x` is set. Marks overlapping points with the later series' symbol.
inline std::string asciiPlot(const std::vector<Series>& series, int width = 96, int height = 22,
                             bool log_x = true) {
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (const Series& s : series) {
    for (size_t i = 0; i < s.x.size(); ++i) {
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
    }
  }
  if (xmin > xmax) return "(no data)\n";
  if (ymax == ymin) ymax = ymin + 1.0;
  const double ypad = 0.05 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  auto xpos = [&](double x) {
    const double t = log_x ? (std::log(x) - std::log(xmin)) / (std::log(xmax) - std::log(xmin))
                           : (x - xmin) / (xmax - xmin);
    return std::clamp(static_cast<int>(std::lround(t * (width - 1))), 0, width - 1);
  };
  auto ypos = [&](double y) {
    const double t = (ymax - y) / (ymax - ymin);
    return std::clamp(static_cast<int>(std::lround(t * (height - 1))), 0, height - 1);
  };

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (const Series& s : series)
    for (size_t i = 0; i < s.x.size(); ++i)
      grid[static_cast<size_t>(ypos(s.y[i]))][static_cast<size_t>(xpos(s.x[i]))] = s.symbol;

  std::string out;
  char buf[160];
  for (int row = 0; row < height; ++row) {
    const double yv = ymax - (ymax - ymin) * row / (height - 1);
    std::snprintf(buf, sizeof buf, "%9.2f |%s|\n", yv, grid[static_cast<size_t>(row)].c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%9s +%s+\n%9s  x: %.4g .. %.4g%s\n", "",
                std::string(static_cast<size_t>(width), '-').c_str(), "", xmin, xmax,
                log_x ? " (log)" : "");
  out += buf;
  for (const Series& s : series) {
    std::snprintf(buf, sizeof buf, "%9s  '%c' %s\n", "", s.symbol, s.label.c_str());
    out += buf;
  }
  return out;
}

/// Print a horizontal rule and a centered title.
inline void printHeader(const std::string& title) {
  std::string rule(78, '=');
  std::printf("%s\n%s\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

inline void printSubHeader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

}  // namespace pllbist::benchutil
