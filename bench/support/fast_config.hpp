#pragma once

#include "bist/controller.hpp"
#include "pll/config.hpp"

namespace pllbist::benchutil {

/// Fast-simulating device for ablations where absolute paper scale is not
/// needed (the BIST logic is scale-free).
inline pll::PllConfig fastConfig(double fn_hz = 200.0, double zeta = 0.43) {
  return pll::scaledTestConfig(fn_hz, zeta);
}

inline bist::SweepOptions fastSweep(bist::StimulusKind stimulus, int points = 8) {
  return bist::quickSweepOptions(fastConfig(), stimulus, points);
}

}  // namespace pllbist::benchutil
