#pragma once

#include <cstdio>
#include <vector>

#include "bist/controller.hpp"
#include "pll/config.hpp"

namespace pllbist::benchutil {

struct SweepSet {
  bist::MeasuredResponse pure_sine;
  bist::MeasuredResponse two_tone;
  bist::MeasuredResponse multi_tone;
  std::vector<double> frequencies_hz;
};

/// Run the Figures 11/12 measurement campaign on the reference PLL: the
/// same log sweep with pure sinusoidal FM, two-tone FSK, and ten-step
/// multi-tone FSK (Table 3 stimulus parameters).
inline SweepSet runReferenceSweeps(int points = 13) {
  const pll::PllConfig cfg = pll::referenceConfig();
  const pll::ReferenceStimulus stim = pll::referenceStimulus();

  bist::SweepOptions base;
  base.fm_steps = stim.fm_steps;
  base.deviation_hz = stim.max_deviation_hz;
  base.master_clock_hz = stim.master_clock_hz;
  base.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(8.0, points);

  SweepSet out;
  out.frequencies_hz = base.modulation_frequencies_hz;
  for (auto kind : {bist::StimulusKind::PureSineFm, bist::StimulusKind::TwoToneFsk,
                    bist::StimulusKind::MultiToneFsk}) {
    bist::SweepOptions opt = base;
    opt.stimulus = kind;
    std::printf("running %s sweep (%d points)...\n", to_string(kind), points);
    std::fflush(stdout);
    bist::BistController controller(cfg, opt);
    bist::MeasuredResponse r = controller.run();
    switch (kind) {
      case bist::StimulusKind::PureSineFm: out.pure_sine = std::move(r); break;
      case bist::StimulusKind::TwoToneFsk: out.two_tone = std::move(r); break;
      case bist::StimulusKind::MultiToneFsk: out.multi_tone = std::move(r); break;
      case bist::StimulusKind::DelayLinePm: break;  // not part of Figs 11/12
    }
  }
  return out;
}

}  // namespace pllbist::benchutil
