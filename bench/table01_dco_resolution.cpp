// Table 1: relationship between the nominal input frequency Fin_nom, the
// DCO master reference Fref, the required maximum deviation Fmax, and the
// achievable frequency resolution Fres (eqn (2)):
//
//   Fres = Fin_nom^2 / (Fref + Fin_nom)
//
// The paper's point: at high input frequencies the resolution collapses —
// for the second case below no quantisation of the FM is possible at all
// without raising Fref.

#include <cstdio>

#include "bist/dco.hpp"
#include "sim/circuit.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Table 1 - DCO frequency resolution vs Fin_nom and Fref (eqn 2)");

  struct Row {
    double fin_nom_hz;
    double fref_hz;
    double fmax_required_hz;  // deviation the test wants (1% of Fin_nom)
  };
  const Row rows[] = {
      {1e3, 1e6, 10.0},     // the paper's reference set-up
      {10e3, 1e6, 100.0},   // faster PLL, same master
      {10e3, 10e6, 100.0},  // faster PLL, faster master
      {100e3, 10e6, 1e3},
      {1e6, 10e6, 10e3},
      {10e6, 100e6, 100e3},  // the paper's infeasible case
  };

  std::printf("\n%12s %12s %14s %14s %10s %12s\n", "Fin_nom", "Fref", "Fmax req.", "Fres (eqn2)",
              "steps", "feasible?");
  for (const Row& r : rows) {
    const double fres = bist::Dco::resolutionEq2(r.fin_nom_hz, r.fref_hz);
    const double steps = r.fmax_required_hz / fres;
    std::printf("%10.4g Hz %10.4g Hz %11.4g Hz %11.4g Hz %10.1f %12s\n", r.fin_nom_hz, r.fref_hz,
                r.fmax_required_hz, fres, steps, steps >= 1.0 ? "yes" : "NO");
  }

  benchutil::printSubHeader("eqn (2) vs simulated divider granularity");
  std::printf("%12s %12s %16s %16s\n", "Fin_nom", "Fref", "Fres eqn(2)", "Fres simulated");
  for (const Row& r : rows) {
    if (r.fin_nom_hz >= r.fref_hz / 2.0) continue;  // divider cannot reach
    sim::Circuit c;
    const auto out = c.addSignal("dco");
    bist::Dco dco(c, out,
                  bist::Dco::Config{r.fref_hz,
                                    std::max(2, static_cast<int>(r.fref_hz / r.fin_nom_hz)), 0.0});
    std::printf("%10.4g Hz %10.4g Hz %13.4g Hz %13.4g Hz\n", r.fin_nom_hz, r.fref_hz,
                bist::Dco::resolutionEq2(r.fin_nom_hz, r.fref_hz), dco.resolutionAt(r.fin_nom_hz));
  }

  std::printf(
      "\nConclusion (paper section 3): Fres scales as Fin^2/Fref, so the only ways to\n"
      "refine the stimulus are lowering Fin_nom or raising the DCO master clock -- the\n"
      "\"high reference frequency\" drawback noted in the paper's conclusion.\n");
  return 0;
}
