// Table 2: the basic test sequence. Runs one complete single-frequency
// measurement on the reference PLL and prints the observed stage timeline
// against the paper's stage/mux description, plus the captured results.

#include <cstdio>
#include <vector>

#include "bist/dco.hpp"
#include "bist/modulator.hpp"
#include "bist/peak_detector.hpp"
#include "bist/sequencer.hpp"
#include "pll/config.hpp"
#include "pll/cppll.hpp"
#include "support/bench_util.hpp"

namespace {

const char* stageName(pllbist::bist::TestSequencer::Stage s) {
  using Stage = pllbist::bist::TestSequencer::Stage;
  switch (s) {
    case Stage::Idle: return "idle";
    case Stage::Settle: return "1: apply modulation, settle";
    case Stage::PhaseMeasure: return "2: phase-count stim->output peaks";
    case Stage::AwaitPeakForHold: return "3: await peak, assert hold";
    case Stage::HoldCount: return "4: count held output frequency";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace pllbist;
  benchutil::printHeader("Table 2 - basic test sequence (observed on the reference PLL)");

  std::printf("\nPaper stages and mux states:\n");
  std::printf("  (1) M1: A=C B=D   apply digital modulation at FN, loop closed\n");
  std::printf("  (2) M1: A=C B=D   start phase counter at stimulus peak, monitor MFREQ\n");
  std::printf("  (3) M2: A=C A=D   peak occurred -> hold loop, stop phase counter\n");
  std::printf("  (4) M2: A=C A=D   count held output frequency and store\n");
  std::printf("  (5)               next modulation frequency, repeat\n");

  const pll::PllConfig cfg = pll::referenceConfig();
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  const auto marker = c.addSignal("marker");
  bist::Dco dco(c, stim, bist::Dco::Config{1e6, 1000, 0.0});
  bist::FskModulator::Config mcfg;
  mcfg.steps = 10;
  mcfg.nominal_hz = cfg.ref_frequency_hz;
  mcfg.deviation_hz = 10.0;
  bist::FskModulator modulator(c, dco, marker, mcfg);
  pll::CpPll pll(c, ext, stim, cfg);
  pll.setTestMode(true);
  bist::PeakDetector detector(c, pll.ref(), pll.feedback(), cfg.pfd, bist::PeakDetectorDelays{});
  bist::TestSequencer::Options opt;
  opt.freq_gate_s = 1.0;
  bist::TestSequencer sequencer(
      c, pll,
      bist::StimulusHooks{[&](double fm) { modulator.start(fm); }, [&] { modulator.stop(); },
                          [&] { modulator.park(); }},
      detector, marker, pll.vcoOut(), 1e6, opt);

  c.run(1.0);  // lock

  // Poll the sequencer stage and record transitions.
  struct Transition {
    double t;
    bist::TestSequencer::Stage stage;
  };
  std::vector<Transition> timeline;
  auto poll = [&](auto&& self, double t) -> void {
    if (timeline.empty() || timeline.back().stage != sequencer.stage())
      timeline.push_back({t, sequencer.stage()});
    c.scheduleCallback(t + 2e-3, [&, self](double now) { self(self, now); });
  };
  c.scheduleCallback(c.now(), [&](double now) { poll(poll, now); });

  const double fm = 8.0;  // at the natural frequency
  bool done = false;
  bist::TestSequencer::PointResult result;
  sequencer.measurePoint(fm, [&](bist::TestSequencer::PointResult r) {
    result = std::move(r);
    done = true;
  });
  while (!done) c.step();

  benchutil::printSubHeader("observed stage timeline (FN = 8 Hz)");
  std::printf("%12s  %s\n", "t (s)", "stage");
  for (const Transition& tr : timeline) std::printf("%12.4f  %s\n", tr.t, stageName(tr.stage));

  benchutil::printSubHeader("captured measurements");
  std::printf("phase counter captures (1 MHz test clock): ");
  for (long n : result.phase_counts) std::printf("%ld ", n);
  std::printf("\nphase via eqn (8), circular mean:          %.2f deg\n", result.phase_deg);
  std::printf("hold engaged at:                           t = %.4f s\n", result.hold_time_s);
  std::printf("held output frequency (gate %.2f s):       %.2f Hz (count %ld)\n", result.gate_s,
              result.held_frequency_hz, result.held_count);
  std::printf("deviation from 50 kHz nominal:             %+.2f Hz\n",
              result.held_frequency_hz - cfg.nominalVcoHz());
  std::printf("timed out: %s\n", result.timed_out ? "YES" : "no");
  return 0;
}
