// Table 3: parameters of the reference test set-up, re-derived so that the
// loop lands exactly on the paper's measured anchors (fn = 8 Hz,
// zeta = 0.43). Prints both the electrical values and the derived
// second-order parameters via eqns (5) and (6).

#include <cstdio>

#include "common/units.hpp"
#include "control/cppll_model.hpp"
#include "pll/config.hpp"
#include "support/bench_util.hpp"

int main() {
  using namespace pllbist;
  benchutil::printHeader("Table 3 - parameters for the reference test set-up");

  const pll::PllConfig cfg = pll::referenceConfig();
  const pll::ReferenceStimulus stim = pll::referenceStimulus();
  const control::LoopParameters lp = cfg.linearized();
  const control::SecondOrderParams exact = control::exactSecondOrder(lp);
  const control::SecondOrderParams approx = control::approximateSecondOrder(lp);

  std::printf("\n%-44s %s\n", "Parameter", "Value");
  std::printf("%-44s %.0f Hz\n", "PLL reference nominal frequency", cfg.ref_frequency_hz);
  std::printf("%-44s %.0f Hz\n", "Maximum frequency deviation of reference", stim.max_deviation_hz);
  std::printf("%-44s %d\n", "Number of discrete FM steps used", stim.fm_steps);
  std::printf("%-44s %.0f MHz\n", "FM (DCO master) reference frequency",
              stim.master_clock_hz / 1e6);
  std::printf("%-44s %.4f Mrad/s/V  (%.1f kHz/V)\n", "Ko -> VCO gain",
              cfg.koRadPerSecPerV() / 1e6, cfg.vco.gain_hz_per_v / 1e3);
  std::printf("%-44s %.3f V/rad  (= Vdd/4pi, Vdd = %.1f V)\n", "Kpd -> phase detector gain",
              cfg.kpdVPerRad(), cfg.pump.vdd_v);
  std::printf("%-44s %d\n", "N (feedback divider)", cfg.divider_n);
  std::printf("%-44s %.0f kHz\n", "VCO nominal frequency (N x fref)", cfg.nominalVcoHz() / 1e3);
  std::printf("%-44s %.3f Mohm\n", "R1 (Figure 9)", cfg.pump.r1_ohm / 1e6);
  std::printf("%-44s %.2f kohm\n", "R2 (Figure 9)", cfg.pump.r2_ohm / 1e3);
  std::printf("%-44s %.0f nF\n", "C (Figure 9)", cfg.pump.c_farad * 1e9);
  std::printf("%-44s tau1 = %.4f s, tau2 = %.5f s\n", "Filter time constants", lp.tau1(),
              lp.tau2());

  benchutil::printSubHeader("derived response (eqns 5 and 6)");
  std::printf("%-44s %.2f rad/s  (%.3f Hz)\n", "Natural frequency wn (exact)",
              exact.omega_n_rad_per_s, radPerSecToHz(exact.omega_n_rad_per_s));
  std::printf("%-44s %.4f\n", "Damping zeta (exact denominator)", exact.zeta);
  std::printf("%-44s %.2f rad/s  (%.3f Hz)\n", "wn via eqn (5) high-gain approximation",
              approx.omega_n_rad_per_s, radPerSecToHz(approx.omega_n_rad_per_s));
  std::printf("%-44s %.4f  (approximation drops the +N term)\n", "zeta via eqn (6)", approx.zeta);
  std::printf("%-44s %.3f Hz\n", "-3 dB bandwidth (capacitor-node response)",
              radPerSecToHz(control::bandwidth3Db(exact.omega_n_rad_per_s, exact.zeta)));
  std::printf("%-44s %s\n", "Closed loop stable",
              cfg.closedLoopDividedTf().isStable() ? "yes" : "NO");

  std::printf(
      "\nNote: the published Table 3 is OCR-damaged; R1/R2 here are solved from the\n"
      "unambiguous anchors (Kpd = 0.4 V/rad, 1 kHz reference, fn = 8 Hz, zeta = 0.43)\n"
      "using control::designForResponse. See DESIGN.md section 2.\n");
  return 0;
}
