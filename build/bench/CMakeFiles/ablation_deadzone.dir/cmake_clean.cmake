file(REMOVE_RECURSE
  "CMakeFiles/ablation_deadzone.dir/ablation_deadzone.cpp.o"
  "CMakeFiles/ablation_deadzone.dir/ablation_deadzone.cpp.o.d"
  "ablation_deadzone"
  "ablation_deadzone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadzone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
