# Empty dependencies file for ablation_deadzone.
# This may be replaced when dependencies are built.
