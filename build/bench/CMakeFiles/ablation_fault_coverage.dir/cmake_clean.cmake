file(REMOVE_RECURSE
  "CMakeFiles/ablation_fault_coverage.dir/ablation_fault_coverage.cpp.o"
  "CMakeFiles/ablation_fault_coverage.dir/ablation_fault_coverage.cpp.o.d"
  "ablation_fault_coverage"
  "ablation_fault_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
