# Empty compiler generated dependencies file for ablation_fault_coverage.
# This may be replaced when dependencies are built.
