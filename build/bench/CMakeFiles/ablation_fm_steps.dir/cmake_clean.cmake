file(REMOVE_RECURSE
  "CMakeFiles/ablation_fm_steps.dir/ablation_fm_steps.cpp.o"
  "CMakeFiles/ablation_fm_steps.dir/ablation_fm_steps.cpp.o.d"
  "ablation_fm_steps"
  "ablation_fm_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fm_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
