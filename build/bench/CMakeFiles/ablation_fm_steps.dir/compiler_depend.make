# Empty compiler generated dependencies file for ablation_fm_steps.
# This may be replaced when dependencies are built.
