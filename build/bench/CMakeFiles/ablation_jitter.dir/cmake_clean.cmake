file(REMOVE_RECURSE
  "CMakeFiles/ablation_jitter.dir/ablation_jitter.cpp.o"
  "CMakeFiles/ablation_jitter.dir/ablation_jitter.cpp.o.d"
  "ablation_jitter"
  "ablation_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
