file(REMOVE_RECURSE
  "CMakeFiles/ablation_pm_stimulus.dir/ablation_pm_stimulus.cpp.o"
  "CMakeFiles/ablation_pm_stimulus.dir/ablation_pm_stimulus.cpp.o.d"
  "ablation_pm_stimulus"
  "ablation_pm_stimulus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pm_stimulus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
