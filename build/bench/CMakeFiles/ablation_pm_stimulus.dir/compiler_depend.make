# Empty compiler generated dependencies file for ablation_pm_stimulus.
# This may be replaced when dependencies are built.
