file(REMOVE_RECURSE
  "CMakeFiles/ablation_step_vs_sweep.dir/ablation_step_vs_sweep.cpp.o"
  "CMakeFiles/ablation_step_vs_sweep.dir/ablation_step_vs_sweep.cpp.o.d"
  "ablation_step_vs_sweep"
  "ablation_step_vs_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_step_vs_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
