# Empty compiler generated dependencies file for ablation_step_vs_sweep.
# This may be replaced when dependencies are built.
