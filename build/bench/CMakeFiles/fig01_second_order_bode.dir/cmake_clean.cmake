file(REMOVE_RECURSE
  "CMakeFiles/fig01_second_order_bode.dir/fig01_second_order_bode.cpp.o"
  "CMakeFiles/fig01_second_order_bode.dir/fig01_second_order_bode.cpp.o.d"
  "fig01_second_order_bode"
  "fig01_second_order_bode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_second_order_bode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
