# Empty dependencies file for fig01_second_order_bode.
# This may be replaced when dependencies are built.
