file(REMOVE_RECURSE
  "CMakeFiles/fig05_pfd_operation.dir/fig05_pfd_operation.cpp.o"
  "CMakeFiles/fig05_pfd_operation.dir/fig05_pfd_operation.cpp.o.d"
  "fig05_pfd_operation"
  "fig05_pfd_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_pfd_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
