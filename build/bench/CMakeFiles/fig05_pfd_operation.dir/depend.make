# Empty dependencies file for fig05_pfd_operation.
# This may be replaced when dependencies are built.
