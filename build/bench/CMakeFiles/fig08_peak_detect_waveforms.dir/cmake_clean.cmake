file(REMOVE_RECURSE
  "CMakeFiles/fig08_peak_detect_waveforms.dir/fig08_peak_detect_waveforms.cpp.o"
  "CMakeFiles/fig08_peak_detect_waveforms.dir/fig08_peak_detect_waveforms.cpp.o.d"
  "fig08_peak_detect_waveforms"
  "fig08_peak_detect_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_peak_detect_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
