# Empty compiler generated dependencies file for fig08_peak_detect_waveforms.
# This may be replaced when dependencies are built.
