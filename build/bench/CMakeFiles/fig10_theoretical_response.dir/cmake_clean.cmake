file(REMOVE_RECURSE
  "CMakeFiles/fig10_theoretical_response.dir/fig10_theoretical_response.cpp.o"
  "CMakeFiles/fig10_theoretical_response.dir/fig10_theoretical_response.cpp.o.d"
  "fig10_theoretical_response"
  "fig10_theoretical_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_theoretical_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
