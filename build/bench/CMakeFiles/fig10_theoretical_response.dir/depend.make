# Empty dependencies file for fig10_theoretical_response.
# This may be replaced when dependencies are built.
