file(REMOVE_RECURSE
  "CMakeFiles/fig11_magnitude_response.dir/fig11_magnitude_response.cpp.o"
  "CMakeFiles/fig11_magnitude_response.dir/fig11_magnitude_response.cpp.o.d"
  "fig11_magnitude_response"
  "fig11_magnitude_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_magnitude_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
