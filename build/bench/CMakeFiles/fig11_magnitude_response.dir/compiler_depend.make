# Empty compiler generated dependencies file for fig11_magnitude_response.
# This may be replaced when dependencies are built.
