file(REMOVE_RECURSE
  "CMakeFiles/fig12_phase_response.dir/fig12_phase_response.cpp.o"
  "CMakeFiles/fig12_phase_response.dir/fig12_phase_response.cpp.o.d"
  "fig12_phase_response"
  "fig12_phase_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_phase_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
