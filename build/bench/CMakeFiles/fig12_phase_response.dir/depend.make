# Empty dependencies file for fig12_phase_response.
# This may be replaced when dependencies are built.
