file(REMOVE_RECURSE
  "CMakeFiles/perf_simulation.dir/perf_simulation.cpp.o"
  "CMakeFiles/perf_simulation.dir/perf_simulation.cpp.o.d"
  "perf_simulation"
  "perf_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
