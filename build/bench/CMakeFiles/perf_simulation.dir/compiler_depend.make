# Empty compiler generated dependencies file for perf_simulation.
# This may be replaced when dependencies are built.
