file(REMOVE_RECURSE
  "CMakeFiles/table01_dco_resolution.dir/table01_dco_resolution.cpp.o"
  "CMakeFiles/table01_dco_resolution.dir/table01_dco_resolution.cpp.o.d"
  "table01_dco_resolution"
  "table01_dco_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_dco_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
