# Empty compiler generated dependencies file for table01_dco_resolution.
# This may be replaced when dependencies are built.
