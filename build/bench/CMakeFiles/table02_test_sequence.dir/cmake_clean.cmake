file(REMOVE_RECURSE
  "CMakeFiles/table02_test_sequence.dir/table02_test_sequence.cpp.o"
  "CMakeFiles/table02_test_sequence.dir/table02_test_sequence.cpp.o.d"
  "table02_test_sequence"
  "table02_test_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_test_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
