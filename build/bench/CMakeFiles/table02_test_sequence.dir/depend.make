# Empty dependencies file for table02_test_sequence.
# This may be replaced when dependencies are built.
