file(REMOVE_RECURSE
  "CMakeFiles/table03_reference_config.dir/table03_reference_config.cpp.o"
  "CMakeFiles/table03_reference_config.dir/table03_reference_config.cpp.o.d"
  "table03_reference_config"
  "table03_reference_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_reference_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
