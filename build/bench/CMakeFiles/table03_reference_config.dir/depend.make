# Empty dependencies file for table03_reference_config.
# This may be replaced when dependencies are built.
