file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_bist.dir/bench_vs_bist.cpp.o"
  "CMakeFiles/bench_vs_bist.dir/bench_vs_bist.cpp.o.d"
  "bench_vs_bist"
  "bench_vs_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
