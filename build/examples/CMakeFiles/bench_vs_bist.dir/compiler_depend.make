# Empty compiler generated dependencies file for bench_vs_bist.
# This may be replaced when dependencies are built.
