file(REMOVE_RECURSE
  "CMakeFiles/loop_design_workshop.dir/loop_design_workshop.cpp.o"
  "CMakeFiles/loop_design_workshop.dir/loop_design_workshop.cpp.o.d"
  "loop_design_workshop"
  "loop_design_workshop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_design_workshop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
