# Empty compiler generated dependencies file for loop_design_workshop.
# This may be replaced when dependencies are built.
