file(REMOVE_RECURSE
  "CMakeFiles/poweron_selftest.dir/poweron_selftest.cpp.o"
  "CMakeFiles/poweron_selftest.dir/poweron_selftest.cpp.o.d"
  "poweron_selftest"
  "poweron_selftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poweron_selftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
