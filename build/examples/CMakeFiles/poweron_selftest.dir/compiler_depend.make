# Empty compiler generated dependencies file for poweron_selftest.
# This may be replaced when dependencies are built.
