file(REMOVE_RECURSE
  "CMakeFiles/production_screening.dir/production_screening.cpp.o"
  "CMakeFiles/production_screening.dir/production_screening.cpp.o.d"
  "production_screening"
  "production_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
