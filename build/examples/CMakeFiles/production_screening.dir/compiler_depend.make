# Empty compiler generated dependencies file for production_screening.
# This may be replaced when dependencies are built.
