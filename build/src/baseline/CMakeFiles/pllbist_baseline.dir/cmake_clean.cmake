file(REMOVE_RECURSE
  "CMakeFiles/pllbist_baseline.dir/bench_measurement.cpp.o"
  "CMakeFiles/pllbist_baseline.dir/bench_measurement.cpp.o.d"
  "libpllbist_baseline.a"
  "libpllbist_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pllbist_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
