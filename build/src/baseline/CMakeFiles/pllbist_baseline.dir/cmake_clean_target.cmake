file(REMOVE_RECURSE
  "libpllbist_baseline.a"
)
