# Empty dependencies file for pllbist_baseline.
# This may be replaced when dependencies are built.
