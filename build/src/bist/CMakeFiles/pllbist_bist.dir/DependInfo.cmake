
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/analysis.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/analysis.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/analysis.cpp.o.d"
  "/root/repo/src/bist/controller.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/controller.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/controller.cpp.o.d"
  "/root/repo/src/bist/counters.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/counters.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/counters.cpp.o.d"
  "/root/repo/src/bist/dco.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/dco.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/dco.cpp.o.d"
  "/root/repo/src/bist/delay_line.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/delay_line.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/delay_line.cpp.o.d"
  "/root/repo/src/bist/modulator.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/modulator.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/modulator.cpp.o.d"
  "/root/repo/src/bist/peak_detector.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/peak_detector.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/peak_detector.cpp.o.d"
  "/root/repo/src/bist/sequencer.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/sequencer.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/sequencer.cpp.o.d"
  "/root/repo/src/bist/step_test.cpp" "src/bist/CMakeFiles/pllbist_bist.dir/step_test.cpp.o" "gcc" "src/bist/CMakeFiles/pllbist_bist.dir/step_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pll/CMakeFiles/pllbist_pll.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pllbist_control.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pllbist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pllbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
