file(REMOVE_RECURSE
  "CMakeFiles/pllbist_bist.dir/analysis.cpp.o"
  "CMakeFiles/pllbist_bist.dir/analysis.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/controller.cpp.o"
  "CMakeFiles/pllbist_bist.dir/controller.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/counters.cpp.o"
  "CMakeFiles/pllbist_bist.dir/counters.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/dco.cpp.o"
  "CMakeFiles/pllbist_bist.dir/dco.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/delay_line.cpp.o"
  "CMakeFiles/pllbist_bist.dir/delay_line.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/modulator.cpp.o"
  "CMakeFiles/pllbist_bist.dir/modulator.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/peak_detector.cpp.o"
  "CMakeFiles/pllbist_bist.dir/peak_detector.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/sequencer.cpp.o"
  "CMakeFiles/pllbist_bist.dir/sequencer.cpp.o.d"
  "CMakeFiles/pllbist_bist.dir/step_test.cpp.o"
  "CMakeFiles/pllbist_bist.dir/step_test.cpp.o.d"
  "libpllbist_bist.a"
  "libpllbist_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pllbist_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
