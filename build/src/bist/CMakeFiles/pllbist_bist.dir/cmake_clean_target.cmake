file(REMOVE_RECURSE
  "libpllbist_bist.a"
)
