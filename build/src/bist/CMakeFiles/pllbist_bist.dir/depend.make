# Empty dependencies file for pllbist_bist.
# This may be replaced when dependencies are built.
