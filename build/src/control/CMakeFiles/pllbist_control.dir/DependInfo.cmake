
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/bode.cpp" "src/control/CMakeFiles/pllbist_control.dir/bode.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/bode.cpp.o.d"
  "/root/repo/src/control/cppll_model.cpp" "src/control/CMakeFiles/pllbist_control.dir/cppll_model.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/cppll_model.cpp.o.d"
  "/root/repo/src/control/grid.cpp" "src/control/CMakeFiles/pllbist_control.dir/grid.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/grid.cpp.o.d"
  "/root/repo/src/control/margins.cpp" "src/control/CMakeFiles/pllbist_control.dir/margins.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/margins.cpp.o.d"
  "/root/repo/src/control/polynomial.cpp" "src/control/CMakeFiles/pllbist_control.dir/polynomial.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/polynomial.cpp.o.d"
  "/root/repo/src/control/second_order.cpp" "src/control/CMakeFiles/pllbist_control.dir/second_order.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/second_order.cpp.o.d"
  "/root/repo/src/control/state_space.cpp" "src/control/CMakeFiles/pllbist_control.dir/state_space.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/state_space.cpp.o.d"
  "/root/repo/src/control/transfer_function.cpp" "src/control/CMakeFiles/pllbist_control.dir/transfer_function.cpp.o" "gcc" "src/control/CMakeFiles/pllbist_control.dir/transfer_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
