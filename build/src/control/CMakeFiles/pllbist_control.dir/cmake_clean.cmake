file(REMOVE_RECURSE
  "CMakeFiles/pllbist_control.dir/bode.cpp.o"
  "CMakeFiles/pllbist_control.dir/bode.cpp.o.d"
  "CMakeFiles/pllbist_control.dir/cppll_model.cpp.o"
  "CMakeFiles/pllbist_control.dir/cppll_model.cpp.o.d"
  "CMakeFiles/pllbist_control.dir/grid.cpp.o"
  "CMakeFiles/pllbist_control.dir/grid.cpp.o.d"
  "CMakeFiles/pllbist_control.dir/margins.cpp.o"
  "CMakeFiles/pllbist_control.dir/margins.cpp.o.d"
  "CMakeFiles/pllbist_control.dir/polynomial.cpp.o"
  "CMakeFiles/pllbist_control.dir/polynomial.cpp.o.d"
  "CMakeFiles/pllbist_control.dir/second_order.cpp.o"
  "CMakeFiles/pllbist_control.dir/second_order.cpp.o.d"
  "CMakeFiles/pllbist_control.dir/state_space.cpp.o"
  "CMakeFiles/pllbist_control.dir/state_space.cpp.o.d"
  "CMakeFiles/pllbist_control.dir/transfer_function.cpp.o"
  "CMakeFiles/pllbist_control.dir/transfer_function.cpp.o.d"
  "libpllbist_control.a"
  "libpllbist_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pllbist_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
