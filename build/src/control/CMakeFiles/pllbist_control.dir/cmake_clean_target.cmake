file(REMOVE_RECURSE
  "libpllbist_control.a"
)
