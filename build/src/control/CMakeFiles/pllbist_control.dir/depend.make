# Empty dependencies file for pllbist_control.
# This may be replaced when dependencies are built.
