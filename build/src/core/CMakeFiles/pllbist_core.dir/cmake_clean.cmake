file(REMOVE_RECURSE
  "CMakeFiles/pllbist_core.dir/characterization.cpp.o"
  "CMakeFiles/pllbist_core.dir/characterization.cpp.o.d"
  "CMakeFiles/pllbist_core.dir/measurement.cpp.o"
  "CMakeFiles/pllbist_core.dir/measurement.cpp.o.d"
  "CMakeFiles/pllbist_core.dir/testplan.cpp.o"
  "CMakeFiles/pllbist_core.dir/testplan.cpp.o.d"
  "libpllbist_core.a"
  "libpllbist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pllbist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
