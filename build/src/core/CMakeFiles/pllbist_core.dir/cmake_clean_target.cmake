file(REMOVE_RECURSE
  "libpllbist_core.a"
)
