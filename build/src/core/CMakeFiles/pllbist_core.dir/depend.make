# Empty dependencies file for pllbist_core.
# This may be replaced when dependencies are built.
