file(REMOVE_RECURSE
  "CMakeFiles/pllbist_dsp.dir/fft.cpp.o"
  "CMakeFiles/pllbist_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/pllbist_dsp.dir/resample.cpp.o"
  "CMakeFiles/pllbist_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/pllbist_dsp.dir/statistics.cpp.o"
  "CMakeFiles/pllbist_dsp.dir/statistics.cpp.o.d"
  "CMakeFiles/pllbist_dsp.dir/tone.cpp.o"
  "CMakeFiles/pllbist_dsp.dir/tone.cpp.o.d"
  "CMakeFiles/pllbist_dsp.dir/window.cpp.o"
  "CMakeFiles/pllbist_dsp.dir/window.cpp.o.d"
  "libpllbist_dsp.a"
  "libpllbist_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pllbist_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
