file(REMOVE_RECURSE
  "libpllbist_dsp.a"
)
