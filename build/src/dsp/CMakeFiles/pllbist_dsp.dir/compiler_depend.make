# Empty compiler generated dependencies file for pllbist_dsp.
# This may be replaced when dependencies are built.
