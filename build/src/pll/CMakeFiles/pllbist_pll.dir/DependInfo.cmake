
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pll/config.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/config.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/config.cpp.o.d"
  "/root/repo/src/pll/cppll.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/cppll.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/cppll.cpp.o.d"
  "/root/repo/src/pll/faults.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/faults.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/faults.cpp.o.d"
  "/root/repo/src/pll/pfd.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/pfd.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/pfd.cpp.o.d"
  "/root/repo/src/pll/probes.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/probes.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/probes.cpp.o.d"
  "/root/repo/src/pll/pump_filter.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/pump_filter.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/pump_filter.cpp.o.d"
  "/root/repo/src/pll/sources.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/sources.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/sources.cpp.o.d"
  "/root/repo/src/pll/vco.cpp" "src/pll/CMakeFiles/pllbist_pll.dir/vco.cpp.o" "gcc" "src/pll/CMakeFiles/pllbist_pll.dir/vco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pllbist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pllbist_control.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pllbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
