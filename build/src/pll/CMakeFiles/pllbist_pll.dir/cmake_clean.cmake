file(REMOVE_RECURSE
  "CMakeFiles/pllbist_pll.dir/config.cpp.o"
  "CMakeFiles/pllbist_pll.dir/config.cpp.o.d"
  "CMakeFiles/pllbist_pll.dir/cppll.cpp.o"
  "CMakeFiles/pllbist_pll.dir/cppll.cpp.o.d"
  "CMakeFiles/pllbist_pll.dir/faults.cpp.o"
  "CMakeFiles/pllbist_pll.dir/faults.cpp.o.d"
  "CMakeFiles/pllbist_pll.dir/pfd.cpp.o"
  "CMakeFiles/pllbist_pll.dir/pfd.cpp.o.d"
  "CMakeFiles/pllbist_pll.dir/probes.cpp.o"
  "CMakeFiles/pllbist_pll.dir/probes.cpp.o.d"
  "CMakeFiles/pllbist_pll.dir/pump_filter.cpp.o"
  "CMakeFiles/pllbist_pll.dir/pump_filter.cpp.o.d"
  "CMakeFiles/pllbist_pll.dir/sources.cpp.o"
  "CMakeFiles/pllbist_pll.dir/sources.cpp.o.d"
  "CMakeFiles/pllbist_pll.dir/vco.cpp.o"
  "CMakeFiles/pllbist_pll.dir/vco.cpp.o.d"
  "libpllbist_pll.a"
  "libpllbist_pll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pllbist_pll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
