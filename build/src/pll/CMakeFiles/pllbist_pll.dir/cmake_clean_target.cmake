file(REMOVE_RECURSE
  "libpllbist_pll.a"
)
