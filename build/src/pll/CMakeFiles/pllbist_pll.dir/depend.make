# Empty dependencies file for pllbist_pll.
# This may be replaced when dependencies are built.
