file(REMOVE_RECURSE
  "CMakeFiles/pllbist_sim.dir/circuit.cpp.o"
  "CMakeFiles/pllbist_sim.dir/circuit.cpp.o.d"
  "CMakeFiles/pllbist_sim.dir/primitives.cpp.o"
  "CMakeFiles/pllbist_sim.dir/primitives.cpp.o.d"
  "CMakeFiles/pllbist_sim.dir/trace.cpp.o"
  "CMakeFiles/pllbist_sim.dir/trace.cpp.o.d"
  "libpllbist_sim.a"
  "libpllbist_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pllbist_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
