file(REMOVE_RECURSE
  "libpllbist_sim.a"
)
