# Empty compiler generated dependencies file for pllbist_sim.
# This may be replaced when dependencies are built.
