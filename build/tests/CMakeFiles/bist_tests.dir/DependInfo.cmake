
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bist/analysis_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/analysis_test.cpp.o.d"
  "/root/repo/tests/bist/controller_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/controller_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/controller_test.cpp.o.d"
  "/root/repo/tests/bist/counters_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/counters_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/counters_test.cpp.o.d"
  "/root/repo/tests/bist/dco_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/dco_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/dco_test.cpp.o.d"
  "/root/repo/tests/bist/delay_line_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/delay_line_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/delay_line_test.cpp.o.d"
  "/root/repo/tests/bist/modulator_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/modulator_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/modulator_test.cpp.o.d"
  "/root/repo/tests/bist/peak_detector_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/peak_detector_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/peak_detector_test.cpp.o.d"
  "/root/repo/tests/bist/robustness_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/robustness_test.cpp.o.d"
  "/root/repo/tests/bist/sequencer_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/sequencer_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/sequencer_test.cpp.o.d"
  "/root/repo/tests/bist/step_test_test.cpp" "tests/CMakeFiles/bist_tests.dir/bist/step_test_test.cpp.o" "gcc" "tests/CMakeFiles/bist_tests.dir/bist/step_test_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pllbist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/pllbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pllbist_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/pll/CMakeFiles/pllbist_pll.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pllbist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pllbist_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pllbist_control.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
