file(REMOVE_RECURSE
  "CMakeFiles/bist_tests.dir/bist/analysis_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/analysis_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/controller_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/controller_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/counters_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/counters_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/dco_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/dco_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/delay_line_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/delay_line_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/modulator_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/modulator_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/peak_detector_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/peak_detector_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/robustness_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/robustness_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/sequencer_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/sequencer_test.cpp.o.d"
  "CMakeFiles/bist_tests.dir/bist/step_test_test.cpp.o"
  "CMakeFiles/bist_tests.dir/bist/step_test_test.cpp.o.d"
  "bist_tests"
  "bist_tests.pdb"
  "bist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
