# Empty dependencies file for bist_tests.
# This may be replaced when dependencies are built.
