file(REMOVE_RECURSE
  "CMakeFiles/control_tests.dir/control/bode_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/bode_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/cppll_model_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/cppll_model_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/grid_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/grid_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/margins_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/margins_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/polynomial_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/polynomial_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/second_order_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/second_order_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/state_space_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/state_space_test.cpp.o.d"
  "CMakeFiles/control_tests.dir/control/transfer_function_test.cpp.o"
  "CMakeFiles/control_tests.dir/control/transfer_function_test.cpp.o.d"
  "control_tests"
  "control_tests.pdb"
  "control_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
