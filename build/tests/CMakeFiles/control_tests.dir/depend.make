# Empty dependencies file for control_tests.
# This may be replaced when dependencies are built.
