
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/measurement_test.cpp" "tests/CMakeFiles/core_tests.dir/core/measurement_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/measurement_test.cpp.o.d"
  "/root/repo/tests/core/testplan_test.cpp" "tests/CMakeFiles/core_tests.dir/core/testplan_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/testplan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pllbist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/pllbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pllbist_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/pll/CMakeFiles/pllbist_pll.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pllbist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pllbist_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pllbist_control.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
