file(REMOVE_RECURSE
  "CMakeFiles/dsp_tests.dir/dsp/fft_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/fft_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/resample_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/resample_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/statistics_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/statistics_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/tone_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/tone_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/window_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/window_test.cpp.o.d"
  "dsp_tests"
  "dsp_tests.pdb"
  "dsp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
