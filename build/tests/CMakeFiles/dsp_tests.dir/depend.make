# Empty dependencies file for dsp_tests.
# This may be replaced when dependencies are built.
