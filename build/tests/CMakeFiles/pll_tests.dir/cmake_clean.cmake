file(REMOVE_RECURSE
  "CMakeFiles/pll_tests.dir/pll/config_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/config_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/cppll_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/cppll_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/current_pump_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/current_pump_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/faults_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/faults_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/pfd_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/pfd_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/probes_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/probes_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/pump_filter_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/pump_filter_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/sources_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/sources_test.cpp.o.d"
  "CMakeFiles/pll_tests.dir/pll/vco_test.cpp.o"
  "CMakeFiles/pll_tests.dir/pll/vco_test.cpp.o.d"
  "pll_tests"
  "pll_tests.pdb"
  "pll_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pll_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
