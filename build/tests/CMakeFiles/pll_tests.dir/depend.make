# Empty dependencies file for pll_tests.
# This may be replaced when dependencies are built.
