// Bench-vs-BIST comparison: the conventional closed-loop transfer-function
// measurement (ideal sinusoidal FM, direct analog probe, absolutely
// calibrated — Figure 3 of the paper) against the digital-only on-chip
// BIST, on the same simulated device.
//
// The comparison surfaces the one systematic difference analysed in
// DESIGN.md: the bench sees the true H(jw) including the loop-filter zero,
// while the peak-detect-and-hold BIST captures the capacitor-node response
// H/(1+s*tau2); below the natural frequency the two coincide.

#include <cmath>
#include <cstdio>

#include "baseline/bench_measurement.hpp"
#include "bist/controller.hpp"
#include "common/units.hpp"
#include "pll/config.hpp"

int main() {
  using namespace pllbist;

  const pll::PllConfig cfg = pll::scaledTestConfig(200.0, 0.43);
  std::printf("device: fref = %.0f Hz, N = %d, fn = 200 Hz, zeta = 0.43\n\n",
              cfg.ref_frequency_hz, cfg.divider_n);

  // Digital-only BIST sweep.
  bist::SweepOptions bopt = bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 9);
  std::printf("running on-chip BIST sweep (%zu points, multi-tone FSK)...\n",
              bopt.modulation_frequencies_hz.size());
  bist::BistController controller(cfg, bopt);
  const bist::MeasuredResponse bist_result = controller.run();
  const control::BodeResponse bist_bode = bist_result.toBode();

  // Conventional bench sweep over the same frequencies.
  baseline::BenchOptions benchopt;
  benchopt.deviation_hz = bopt.deviation_hz;
  benchopt.modulation_frequencies_hz = bopt.modulation_frequencies_hz;
  benchopt.lock_wait_s = 0.05;
  std::printf("running conventional bench sweep (analog access)...\n\n");
  const baseline::BenchResult bench_result = baseline::measureBench(cfg, benchopt);
  const control::BodeResponse bench_bode = bench_result.toBode();

  const control::TransferFunction eqn4 = cfg.closedLoopDividedTf();
  const control::TransferFunction cap = cfg.capacitorNodeTf();

  std::printf("%9s | %10s %10s | %10s %10s | %11s %11s\n", "fm (Hz)", "bench dB", "BIST dB",
              "bench deg", "BIST deg", "H thry dB", "cap thry dB");
  for (size_t i = 0; i < bist_bode.size() && i < bench_bode.size(); ++i) {
    const double w = bist_bode.points()[i].omega_rad_per_s;
    std::printf("%9.1f | %10.2f %10.2f | %10.1f %10.1f | %11.2f %11.2f\n", radPerSecToHz(w),
                bench_bode.points()[i].magnitude_db, bist_bode.points()[i].magnitude_db,
                bench_bode.points()[i].phase_deg, bist_bode.points()[i].phase_deg,
                eqn4.magnitudeDbAt(w), cap.magnitudeDbAt(w));
  }

  // Where do the two methods diverge? Quantify the zero's phase lead.
  std::printf("\nmethod difference vs theory difference (phase at each point):\n");
  std::printf("%9s %18s %22s\n", "fm (Hz)", "bench-BIST (deg)", "argH - argHcap (deg)");
  for (size_t i = 0; i < bist_bode.size() && i < bench_bode.size(); ++i) {
    const double w = bist_bode.points()[i].omega_rad_per_s;
    double d_meas = bench_bode.points()[i].phase_deg - bist_bode.points()[i].phase_deg;
    while (d_meas <= -180.0) d_meas += 360.0;
    while (d_meas > 180.0) d_meas -= 360.0;
    const double d_theory = eqn4.phaseDegAt(w) - cap.phaseDegAt(w);
    std::printf("%9.1f %18.1f %22.1f\n", radPerSecToHz(w), d_meas, d_theory);
  }
  std::printf("\nThe measured method-to-method difference tracks atan(w*tau2) — the filter\n"
              "zero — confirming the two instruments disagree for a structural reason, not\n"
              "an implementation artefact. Below fn both agree with both theory curves.\n");
  return 0;
}
