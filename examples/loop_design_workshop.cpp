// Loop-design workshop: a designer sizes the passive loop filter for a
// family of response targets with control::designForResponse, then uses the
// BIST to verify each silicon-like device actually exhibits the designed
// natural frequency and damping — the closed loop from specification to
// measured confirmation.

#include <cstdio>

#include "common/units.hpp"
#include "control/cppll_model.hpp"
#include "control/margins.hpp"
#include "core/characterization.hpp"
#include "pll/config.hpp"

int main() {
  using namespace pllbist;

  struct Target {
    const char* use_case;
    double fn_hz;
    double zeta;
  };
  const Target targets[] = {
      {"narrow jitter filter", 100.0, 0.7},
      {"reference design", 200.0, 0.43},
      {"fast-settling hopper", 400.0, 0.5},
      {"wideband tracker", 600.0, 0.6},
  };

  std::printf("%-22s | %8s %6s | %10s %10s | %9s %9s %9s\n", "use case", "fn tgt", "zeta",
              "R1 (kohm)", "R2 (kohm)", "fn meas", "zeta meas", "f3dB meas");
  for (const Target& t : targets) {
    pll::PllConfig cfg;
    try {
      cfg = pll::scaledTestConfig(t.fn_hz, t.zeta);
    } catch (const std::exception& e) {
      std::printf("%-22s | %8.0f %6.2f | unreachable: %s\n", t.use_case, t.fn_hz, t.zeta,
                  e.what());
      continue;
    }

    const bist::SweepOptions sweep =
        bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 9);
    const core::CharacterizationReport report = core::characterize(cfg, sweep);

    // Classical stability margin of the designed open loop (broken at the
    // comparator, divider folded in).
    const control::LoopParameters lp = cfg.linearized();
    const control::TransferFunction open_loop =
        control::openLoopTf(lp) * (1.0 / lp.divider_n);
    const control::LoopMargins margins = control::computeMargins(open_loop, 1.0, 1e6);

    std::printf("%-22s | %8.0f %6.2f | %10.1f %10.2f | %9.1f %9.3f %9.1f | PM %5.1f deg\n",
                t.use_case, t.fn_hz, t.zeta, cfg.pump.r1_ohm / 1e3, cfg.pump.r2_ohm / 1e3,
                report.measured_fn_hz, report.measured_zeta, report.measured_f3db_hz,
                margins.phase_margin_deg.value_or(0.0));
  }

  std::printf("\nFull report for the reference design:\n\n");
  const pll::PllConfig cfg = pll::scaledTestConfig(200.0, 0.43);
  const core::CharacterizationReport report =
      core::characterize(cfg, bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 10));
  std::printf("%s", report.render().c_str());
  std::printf("\nDesign notes: overdamped targets (zeta > ~0.7) have no magnitude peak, so the\n"
              "BIST falls back to bandwidth-based checks — visible above as missing zeta\n"
              "estimates when peaking is below the extraction threshold.\n");
  return 0;
}
