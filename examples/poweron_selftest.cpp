// Power-on self-test scenario: at boot, firmware runs a two-tier BIST on
// the clock-synthesis PLL using the same on-chip capture hardware —
//
//   tier 1: single-transient step test (fast screen: lock, overshoot,
//           settle time, absolute frequency),
//   tier 2: full transfer-function sweep, only when tier 1 is marginal,
//           for diagnosis-grade fn/zeta/f3dB extraction.
//
// Run on a healthy device and on one with a damping defect.
//
// SIGINT/SIGTERM abort the self-test cooperatively between devices and
// between tiers; the process exits with code 130
// (exitCode(Status::Kind::Cancelled)). Exit codes: 0 = all devices
// tested, 130 = interrupted.

#include <cmath>
#include <cstdio>

#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "bist/step_test.hpp"
#include "common/status.hpp"
#include "common/stop_token.hpp"
#include "common/units.hpp"
#include "core/measurement.hpp"
#include "pll/config.hpp"
#include "pll/faults.hpp"

namespace {

using namespace pllbist;

struct SelfTestPolicy {
  double min_overshoot = 0.10;  // zeta upper bound proxy
  double max_overshoot = 0.45;  // zeta lower bound proxy
  double max_relock_s = 0.08;
  double nominal_tolerance = 0.01;
};

void runSelfTest(const char* name, const pll::PllConfig& cfg, const SelfTestPolicy& policy) {
  std::printf("=== %s ===\n", name);

  bist::StepTestOptions step_opt;
  step_opt.lock_wait_s = 0.05;
  step_opt.freq_gate_s = 0.05;
  step_opt.hold_to_gate_delay_s = 2e-4;
  const bist::StepTestResult step = bist::runStepTest(cfg, step_opt);

  std::printf("tier 1 (step screen): nominal %.0f Hz, overshoot %.1f%%, relock %.1f ms%s\n",
              step.nominal_hz, step.overshoot_fraction * 100.0, step.relock_time_s * 1e3,
              step.timed_out ? " [TIMEOUT]" : "");

  const double expected_nominal = cfg.ref_frequency_hz * 10.0;  // design intent: N = 10
  bool marginal = step.timed_out || !step.peak_detected ||
                  step.overshoot_fraction < policy.min_overshoot ||
                  step.overshoot_fraction > policy.max_overshoot ||
                  step.relock_time_s > policy.max_relock_s ||
                  std::abs(step.nominal_hz - expected_nominal) >
                      policy.nominal_tolerance * expected_nominal;
  if (!marginal) {
    std::printf("tier 1 verdict: PASS (no tier 2 needed)\n\n");
    return;
  }
  std::printf("tier 1 verdict: MARGINAL -> running tier 2 sweep for diagnosis\n");
  if (globalStopSource().stopRequested()) {
    std::printf("tier 2 skipped: stop requested\n\n");
    return;
  }

  // Tier 2 runs through the resilient engine: on a sick device a point may
  // need retries or fail outright, and a boot-time self-test must report
  // that rather than hang or crash the diagnosis.
  core::TransferFunctionMeasurement meas(cfg);
  const core::MeasurementResult diag =
      meas.runResilient(bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 9));
  std::printf("tier 2 quality: %s\n", diag.quality.summary().c_str());
  if (!diag.status.ok()) {
    std::printf("tier 2 verdict: FAIL (%s)\n\n", diag.status.toString().c_str());
    return;
  }
  const bist::ExtractedParameters& p = diag.parameters;
  std::printf("tier 2 (sweep): peaking %.2f dB at %.1f Hz", p.peaking_db, p.peak_frequency_hz);
  if (p.zeta) std::printf(", zeta %.3f", *p.zeta);
  if (p.natural_frequency_hz) std::printf(", fn %.1f Hz", *p.natural_frequency_hz);
  if (p.bandwidth_3db_hz) std::printf(", f3dB %.1f Hz", *p.bandwidth_3db_hz);
  std::printf("\ndiagnosis: %s\n\n",
              p.peaking_db < 0.5 ? "overdamped response -> suspect R2/damping path"
              : p.zeta && *p.zeta < 0.25
                  ? "underdamped response -> suspect filter C or pump strength"
                  : "response shifted -> compare against golden signature");
}

}  // namespace

int main() {
  installStopSignalHandlers();
  const SelfTestPolicy policy;
  struct Device {
    const char* name;
    pll::FaultSpec fault;
  };
  const Device devices[] = {
      {"healthy device", {pll::FaultSpec::Kind::None, 0.0}},
      {"damping defect (R2 x3)", {pll::FaultSpec::Kind::FilterR2Drift, 3.0}},
      {"divider defect (N = 11)", {pll::FaultSpec::Kind::DividerWrongN, 11.0}},
  };
  for (const Device& d : devices) {
    if (globalStopSource().stopRequested()) {
      std::printf("self-test interrupted: remaining devices skipped.\n");
      return exitCode(Status::Kind::Cancelled);
    }
    runSelfTest(d.name, pll::applyFault(pll::scaledTestConfig(200.0, 0.43), d.fault), policy);
  }
  if (globalStopSource().stopRequested()) return exitCode(Status::Kind::Cancelled);
  return 0;
}
