// Production screening scenario: an embedded clock-synthesis PLL on a
// digital SoC must be screened with no analog test access. A TestPlan is
// characterised once on a golden device, then each DUT runs the on-chip
// BIST and its transfer-function signature is compared against limits —
// exactly the "comparison against on-chip limits" flow the paper proposes.
//
//   production_screening [--jobs N] [--report lot.json]
//
// --jobs N screens the lot on N worker threads (0 = one per hardware
// thread; default 1 = serial). Each DUT's screen builds its own simulated
// testbench, so the lot is embarrassingly parallel; verdicts are printed
// in lot order either way.
//
// --report writes a lot-level JSON report: one verdict row per DUT plus
// the full telemetry snapshot (kernel event counters, per-point latency
// histogram) accumulated across every screen in the lot.
//
// SIGINT/SIGTERM stop the lot cooperatively: the in-flight DUT screens
// drain, unscreened DUTs are reported as skipped, and the process exits
// with code 130 (exitCode(Status::Kind::Cancelled)). A second signal
// force-kills. Exit codes: 0 = lot screened, 2 = bad usage,
// 130 = interrupted.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/stop_token.hpp"
#include "core/testplan.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "pll/config.hpp"
#include "pll/faults.hpp"

int main(int argc, char** argv) {
  using namespace pllbist;

  installStopSignalHandlers();
  int jobs = 1;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 0) jobs = 0;
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N] [--report lot.json]\n", argv[0]);
      return 2;
    }
  }

  // Scope the telemetry snapshot in the lot report to this process's work
  // (golden characterisation included — it is part of the screening cost).
  obs::MetricsRegistry::global().reset();

  const pll::PllConfig golden = pll::scaledTestConfig(200.0, 0.43);
  const bist::SweepOptions sweep =
      bist::quickSweepOptions(golden, bist::StimulusKind::MultiToneFsk, 8);

  std::printf("Characterising golden device (fn = 200 Hz, zeta = 0.43)...\n");
  const core::TestPlan plan(golden, sweep, /*tolerance=*/0.2);
  const auto& gp = plan.goldenParameters();
  std::printf("golden signature: fn = %.1f Hz, zeta = %.3f, f3dB = %.1f Hz, peaking %.2f dB\n\n",
              gp.natural_frequency_hz.value_or(0.0), gp.zeta.value_or(0.0),
              gp.bandwidth_3db_hz.value_or(0.0), gp.peaking_db);

  // A small "lot": one good device plus a spread of process escapes.
  struct Dut {
    const char* name;
    pll::FaultSpec fault;
  };
  const Dut lot[] = {
      {"DUT-01 (good)", {pll::FaultSpec::Kind::None, 0.0}},
      {"DUT-02 (VCO gain -50%)", {pll::FaultSpec::Kind::VcoGainDrift, 0.5}},
      {"DUT-03 (filter C +100%)", {pll::FaultSpec::Kind::FilterCDrift, 2.0}},
      {"DUT-04 (R2 open-ish, x3)", {pll::FaultSpec::Kind::FilterR2Drift, 3.0}},
      {"DUT-05 (weak up pump)", {pll::FaultSpec::Kind::PumpUpWeak, 0.4}},
      {"DUT-06 (2 Mohm filter leak)", {pll::FaultSpec::Kind::FilterLeak, 2e6}},
      {"DUT-07 (good, slow corner -5%)", {pll::FaultSpec::Kind::VcoGainDrift, 0.95}},
  };
  const std::size_t lot_size = std::size(lot);

  // Screen the lot. TestPlan::screen is const and each call builds a fresh
  // simulated testbench, so DUTs can be farmed out to worker threads; the
  // results vector keeps lot order regardless of completion order.
  std::vector<core::TestPlan::DutResult> results(lot_size);
  if (jobs == 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  if (jobs > static_cast<int>(lot_size)) jobs = static_cast<int>(lot_size);
  std::vector<char> screened(lot_size, 0);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    // Stop is checked before each claim: Ctrl-C lets in-flight screens
    // drain but leaves the rest of the lot unscreened (reported below).
    while (!globalStopSource().stopRequested()) {
      const std::size_t i = next.fetch_add(1);
      if (i >= lot_size) return;
      results[i] = plan.screen(pll::applyFault(golden, lot[i].fault));
      screened[i] = 1;
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    std::printf("screened %zu DUTs on %d worker threads\n\n", lot_size, jobs);
  }

  const bool stopped = globalStopSource().stopRequested();
  std::printf("%-28s %9s %8s %9s  %s\n", "device", "fn (Hz)", "zeta", "verdict", "reason");
  int passed = 0, failed = 0, skipped = 0;
  for (std::size_t i = 0; i < lot_size; ++i) {
    if (!screened[i]) {
      ++skipped;
      std::printf("%-28s %9s %8s %9s  %s\n", lot[i].name, "-", "-", "SKIPPED", "stop requested");
      continue;
    }
    const core::TestPlan::DutResult& r = results[i];
    (r.verdict.pass ? passed : failed)++;
    std::printf("%-28s %9.1f %8.3f %9s  %s\n", lot[i].name,
                r.parameters.natural_frequency_hz.value_or(0.0), r.parameters.zeta.value_or(0.0),
                r.verdict.pass ? "PASS" : "FAIL",
                r.verdict.failures.empty() ? "-" : r.verdict.failures.front().c_str());
  }
  if (skipped > 0)
    std::printf("\nlot summary: %d passed, %d failed, %d skipped (interrupted)\n", passed, failed,
                skipped);
  else
    std::printf("\nlot summary: %d passed, %d failed\n", passed, failed);

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    obs::JsonWriter w(out);
    w.beginObject();
    w.key("schema").value("pllbist.lot_report/1");
    w.key("tool").value("production_screening");
    w.key("jobs").value(jobs);
    w.key("duts").beginArray();
    for (std::size_t i = 0; i < lot_size; ++i) {
      const core::TestPlan::DutResult& r = results[i];
      w.beginObject();
      w.key("name").value(lot[i].name);
      if (screened[i]) {
        w.key("fn_hz").value(r.parameters.natural_frequency_hz.value_or(0.0));
        w.key("zeta").value(r.parameters.zeta.value_or(0.0));
        w.key("pass").value(r.verdict.pass);
        w.key("failures").beginArray();
        for (const std::string& f : r.verdict.failures) w.value(f);
        w.endArray();
      } else {
        w.key("skipped").value(true);
      }
      w.endObject();
    }
    w.endArray();
    w.key("summary").beginObject();
    w.key("passed").value(passed);
    w.key("failed").value(failed);
    w.key("skipped").value(skipped);
    w.endObject();
    w.key("metrics");
    obs::writeMetricsJson(w, obs::MetricsRegistry::global().snapshot());
    w.endObject();
    out << '\n';
    std::printf("wrote %s (lot report, %zu DUTs)\n", report_path.c_str(), lot_size);
  }

  if (stopped) {
    std::printf("lot interrupted: %d of %zu DUTs not screened.\n", skipped, lot_size);
    return exitCode(Status::Kind::Cancelled);
  }
  std::printf("expected: DUT-01 and DUT-07 pass (the -5%% corner sits inside the 20%% band),\n"
              "all genuinely defective devices fail.\n");
  return 0;
}
