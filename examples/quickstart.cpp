// Quickstart: measure the closed-loop transfer function of the paper's
// reference CP-PLL with the on-chip BIST (DCO multi-tone FSK stimulus,
// modified-PFD peak detection, loop-hold frequency counting), then extract
// the loop parameters and compare with the linearised theory.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "common/units.hpp"
#include "control/bode.hpp"
#include "pll/config.hpp"

int main() {
  using namespace pllbist;

  // 1. The device under test: Table 3 reference configuration (fn = 8 Hz,
  //    zeta = 0.43, 1 kHz reference, N = 50).
  const pll::PllConfig cfg = pll::referenceConfig();
  const control::SecondOrderParams so = cfg.secondOrder();
  std::printf("Device under test: fref = %.0f Hz, N = %d, VCO nominal = %.0f Hz\n",
              cfg.ref_frequency_hz, cfg.divider_n, cfg.nominalVcoHz());
  std::printf("Designed response: fn = %.2f Hz, zeta = %.3f\n\n",
              radPerSecToHz(so.omega_n_rad_per_s), so.zeta);

  // 2. Configure the sweep: 12 log-spaced modulation frequencies, 10-step
  //    multi-tone FSK from a 1 MHz DCO, +/-10 Hz reference deviation.
  bist::SweepOptions opt;
  opt.stimulus = bist::StimulusKind::MultiToneFsk;
  opt.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(8.0, 12);
  std::printf("Measuring %zu points (%s stimulus)...\n", opt.modulation_frequencies_hz.size(),
              to_string(opt.stimulus));

  bist::BistController controller(cfg, opt);
  controller.onPointMeasured([](const bist::MeasuredPoint& p) {
    std::printf("  fm = %7.3f Hz   deviation = %8.2f Hz   phase = %8.2f deg%s\n",
                p.modulation_hz, p.deviation_hz, p.phase_deg, p.timed_out ? "  TIMEOUT" : "");
  });
  const bist::MeasuredResponse measured = controller.run();
  std::printf("Nominal VCO output: %.2f Hz, DC reference deviation: %.2f Hz\n\n",
              measured.nominal_vco_hz, measured.static_reference_deviation_hz);

  // 3. Convert to a Bode response (eqn (7) referencing) and extract the
  //    loop parameters from the *measured* curve.
  const control::BodeResponse bode = measured.toBode();
  const bist::ExtractedParameters params = bist::extractParameters(bode);
  std::printf("Extracted from measurement:\n");
  std::printf("  peak at %.2f Hz, peaking %.2f dB\n", params.peak_frequency_hz, params.peaking_db);
  if (params.zeta) std::printf("  zeta  = %.3f\n", *params.zeta);
  if (params.natural_frequency_hz) std::printf("  fn    = %.2f Hz\n", *params.natural_frequency_hz);
  if (params.bandwidth_3db_hz) std::printf("  f3dB  = %.2f Hz\n", *params.bandwidth_3db_hz);

  // 4. Side-by-side with theory. The peak-detect-and-hold capture measures
  //    the capacitor-node response (the filter zero's lead is invisible to
  //    it), so that is the apples-to-apples theory column; eqn (4) is shown
  //    for reference.
  const control::TransferFunction eqn4 = cfg.closedLoopDividedTf();
  const control::TransferFunction captured = cfg.capacitorNodeTf();
  std::printf("\n%10s | %9s %9s %9s | %10s %10s %10s\n", "fm (Hz)", "meas dB", "cap dB",
              "eqn4 dB", "meas deg", "cap deg", "eqn4 deg");
  for (const control::BodePoint& p : bode.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    std::printf("%10.3f | %9.2f %9.2f %9.2f | %10.1f %10.1f %10.1f\n", f, p.magnitude_db,
                captured.magnitudeDbAt(p.omega_rad_per_s), eqn4.magnitudeDbAt(p.omega_rad_per_s),
                p.phase_deg, captured.phaseDegAt(p.omega_rad_per_s),
                eqn4.phaseDegAt(p.omega_rad_per_s));
  }
  return 0;
}
