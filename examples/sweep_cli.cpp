// Command-line front end: run a BIST sweep or step test on a preset device
// (optionally with an injected fault) and print or export the results.
//
//   sweep_cli [--device reference|fast|current] [--stimulus multi|two|sine|pm]
//             [--points N] [--jobs N] [--fault kind:magnitude] [--step] [--csv file]
//             [--report out.json] [--trace out.trace.json]
//             [--journal j.jsonl] [--resume j.jsonl] [--deadline S]
//             [--point-budget S] [--breaker K]
//
// Examples:
//   sweep_cli --device fast --stimulus multi --points 10
//   sweep_cli --device fast --fault filter-c-drift:0.5 --csv out.csv
//   sweep_cli --device reference --points 12 --jobs 4
//   sweep_cli --device fast --jobs 4 --report r.json --trace t.trace.json
//   sweep_cli --device fast --points 12 --journal run.jsonl --report r.json
//   sweep_cli --device fast --points 12 --journal run.jsonl --resume run.jsonl --report r.json
//   sweep_cli --device current --step
//
// --jobs N runs the sweep on the parallel point farm (one independent
// testbench per frequency point, N worker threads; 0 = one per hardware
// thread). Results are bit-identical for every job count.
//
// --report writes the consolidated RunReport JSON (config digest, per-point
// quality + timing, kernel/fault statistics, full metrics snapshot).
// --trace enables the span tracer and writes a Chrome trace_event file —
// open it in Perfetto (https://ui.perfetto.dev) or chrome://tracing for a
// flame view of the sweep.
//
// Any of --journal/--resume/--deadline/--point-budget/--breaker selects the
// supervised campaign runtime (core::Campaign): a crash-tolerant execution
// with a durable checkpoint journal, digest-verified resume, wall-clock
// budgets and a relock circuit breaker. A killed campaign resumed with
// `--journal j --resume j` re-runs only the missing points and produces a
// report byte-identical (modulo timing fields) to an uninterrupted run.
//
// SIGINT/SIGTERM request a cooperative stop: the run drains, flushes the
// journal, emits the partial report, and exits 130. The process exit code
// maps the final pllbist::Status (see README "Exit codes"): 0 ok,
// 2 invalid-argument, 3 timeout, 4 lock-lost, 5 relock-failed,
// 6 retry-exhausted, 7 simulation-stall, 8 no-valid-points, 9 degraded,
// 10 internal, 11 deadline-exceeded, 130 cancelled.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "core/pllbist.hpp"

namespace {

using namespace pllbist;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--device reference|fast|current] [--stimulus multi|two|sine|pm]\n"
               "          [--points N] [--jobs N] [--fault kind:magnitude] [--step] [--csv file]\n"
               "          [--report out.json] [--trace out.trace.json]\n"
               "          [--journal j.jsonl] [--resume j.jsonl] [--deadline seconds]\n"
               "          [--point-budget seconds] [--breaker K]\n"
               "fault kinds: vco-gain-drift vco-center-drift pump-up-weak pump-down-weak\n"
               "             filter-r2-drift filter-c-drift filter-leak pfd-dead-zone\n"
               "             divider-wrong-n\n",
               argv0);
  std::exit(2);
}

pll::FaultSpec parseFault(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) throw std::invalid_argument("fault needs kind:magnitude");
  const std::string kind = text.substr(0, colon);
  const double magnitude = std::stod(text.substr(colon + 1));
  using K = pll::FaultSpec::Kind;
  for (K k : {K::VcoGainDrift, K::VcoCenterDrift, K::PumpUpWeak, K::PumpDownWeak,
              K::FilterR2Drift, K::FilterCDrift, K::FilterLeak, K::PfdDeadZone,
              K::DividerWrongN}) {
    if (to_string(k) == kind) return {k, magnitude};
  }
  throw std::invalid_argument("unknown fault kind: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  std::string device = "fast";
  std::string stimulus = "multi";
  std::string csv_path;
  std::string report_path;
  std::string trace_path;
  std::string fault_text;
  std::string journal_path;
  std::string resume_path;
  double deadline_s = 0.0;
  double point_budget_s = 0.0;
  int breaker = 0;
  int points = 10;
  int jobs = -1;  // -1 = serial shared-bench sweep; >= 0 = parallel point farm
  bool step_mode = false;

  installStopSignalHandlers();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--device") device = next();
    else if (arg == "--stimulus") stimulus = next();
    else if (arg == "--points") {
      points = std::stoi(next());
      if (points < 1) usage(argv[0]);
    }
    else if (arg == "--jobs") {
      jobs = std::stoi(next());
      if (jobs < 0) usage(argv[0]);
    }
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--report") report_path = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--fault") fault_text = next();
    else if (arg == "--journal") journal_path = next();
    else if (arg == "--resume") resume_path = next();
    else if (arg == "--deadline") {
      deadline_s = std::stod(next());
      if (deadline_s <= 0.0) usage(argv[0]);
    }
    else if (arg == "--point-budget") {
      point_budget_s = std::stod(next());
      if (point_budget_s <= 0.0) usage(argv[0]);
    }
    else if (arg == "--breaker") {
      breaker = std::stoi(next());
      if (breaker < 1) usage(argv[0]);
    }
    else if (arg == "--step") step_mode = true;
    else usage(argv[0]);
  }

  pll::PllConfig cfg;
  if (device == "reference") cfg = pll::referenceConfig();
  else if (device == "fast") cfg = pll::scaledTestConfig();
  else if (device == "current") cfg = pll::scaledCurrentPumpConfig();
  else usage(argv[0]);

  if (!fault_text.empty()) {
    const pll::FaultSpec fault = parseFault(fault_text);
    cfg = pll::applyFault(cfg, fault);
    std::printf("injected fault: %s\n", fault.describe().c_str());
  }

  const control::SecondOrderParams so = cfg.secondOrder();
  std::printf("device %s: fref %.0f Hz, N %d, fn %.2f Hz, zeta %.3f\n", device.c_str(),
              cfg.ref_frequency_hz, cfg.divider_n, radPerSecToHz(so.omega_n_rad_per_s), so.zeta);

  if (step_mode) {
    bist::StepTestOptions opt;
    const double fn = radPerSecToHz(so.omega_n_rad_per_s);
    opt.lock_wait_s = 10.0 / fn;
    opt.freq_gate_s = 10.0 / fn;
    opt.hold_to_gate_delay_s = 2.0 / cfg.ref_frequency_hz;
    const bist::StepTestResult r = bist::runStepTest(cfg, opt);
    std::printf("step test: nominal %.1f Hz, target %.1f Hz, peak %.1f Hz\n", r.nominal_hz,
                r.target_hz, r.peak_hz);
    std::printf("overshoot %.1f%%, peak time %.2f ms, relock %.2f ms%s\n",
                r.overshoot_fraction * 100.0, r.peak_time_s * 1e3, r.relock_time_s * 1e3,
                r.timed_out ? " [TIMEOUT]" : "");
    if (r.zeta) std::printf("extracted zeta %.3f", *r.zeta);
    if (r.natural_frequency_hz) std::printf(", fn %.1f Hz", *r.natural_frequency_hz);
    std::printf("\n");
    return r.timed_out ? exitCode(Status::Kind::Timeout) : 0;
  }

  bist::StimulusKind kind;
  if (stimulus == "multi") kind = bist::StimulusKind::MultiToneFsk;
  else if (stimulus == "two") kind = bist::StimulusKind::TwoToneFsk;
  else if (stimulus == "sine") kind = bist::StimulusKind::PureSineFm;
  else if (stimulus == "pm") kind = bist::StimulusKind::DelayLinePm;
  else usage(argv[0]);

  // Telemetry: metrics are always on (the registry is cheap); the span
  // tracer records only when a trace file was requested. Resetting the
  // registry scopes the RunReport to this run alone.
  obs::MetricsRegistry::global().reset();
  if (!trace_path.empty()) obs::Tracer::global().setEnabled(true);

  // Sweep through the resilient engine: an injected catastrophic fault (or a
  // genuinely broken preset) drops points instead of hanging or throwing.
  // With --jobs the same sweep runs on the parallel point farm instead.
  const bist::SweepOptions sweep_opt = bist::quickSweepOptions(cfg, kind, points);
  const bool campaign_mode = !journal_path.empty() || !resume_path.empty() || deadline_s > 0.0 ||
                             point_budget_s > 0.0 || breaker > 0;
  bist::ResilientResponse result;
  std::optional<obs::RunReport> campaign_report;
  if (campaign_mode) {
    core::CampaignOptions copt;
    copt.jobs = jobs >= 0 ? jobs : 1;
    copt.resilience.point_budget_s = point_budget_s;
    copt.deadline_s = deadline_s;
    copt.relock_breaker = breaker;
    copt.journal_path = journal_path;
    copt.resume_path = resume_path;
    copt.tool = "sweep_cli";
    copt.device = device;
    core::Campaign campaign(cfg, sweep_opt, copt);
    campaign.chainStop(&globalStopSource());
    campaign.onPointMeasured([](std::size_t index, const bist::MeasuredPoint& p) {
      std::printf("  [%2zu] fm %8.3f Hz  deviation %9.2f Hz  phase %8.2f deg  [%s]\n", index,
                  p.modulation_hz, p.deviation_hz, p.phase_deg, bist::to_string(p.quality));
    });
    core::CampaignResult cres = campaign.run();
    if (cres.status.kind() == Status::Kind::InvalidArgument) {
      std::fprintf(stderr, "campaign rejected: %s\n", cres.status.toString().c_str());
      return exitCode(cres.status);
    }
    std::printf("campaign: %d executed, %d resumed%s%s%s%s\n", cres.points_executed,
                cres.points_resumed, cres.torn_tail_repaired ? ", torn journal tail repaired" : "",
                cres.deadline_hit ? ", deadline hit" : "",
                cres.breaker_opened ? ", relock breaker open" : "",
                cres.stop_requested && !cres.deadline_hit ? ", stopped" : "");
    result = std::move(cres.merged);
    campaign_report = std::move(cres.report);
  } else if (jobs >= 0) {
    bist::ParallelSweepOptions popt;
    popt.jobs = jobs;
    bist::ParallelSweep engine(cfg, sweep_opt, popt);
    engine.chainStop(&globalStopSource());
    engine.onPointMeasured([](std::size_t index, const bist::MeasuredPoint& p) {
      std::printf("  [%2zu] fm %8.3f Hz  deviation %9.2f Hz  phase %8.2f deg  [%s]\n", index,
                  p.modulation_hz, p.deviation_hz, p.phase_deg, bist::to_string(p.quality));
    });
    result = engine.run();
    std::printf("parallel farm: %d requested jobs, %.2f s simulated in %.2f s wall\n", jobs,
                result.report.sim_time_s, result.report.wall_time_s);
  } else {
    bist::ResilientSweep engine(cfg, sweep_opt);
    engine.attachStop(&globalStopSource());
    engine.onPointMeasured([](const bist::MeasuredPoint& p) {
      std::printf("  fm %8.3f Hz  deviation %9.2f Hz  phase %8.2f deg  [%s]\n", p.modulation_hz,
                  p.deviation_hz, p.phase_deg, bist::to_string(p.quality));
    });
    result = engine.run();
  }
  const bist::MeasuredResponse& measured = result.response;

  std::printf("sweep quality: %s\n", result.report.summary().c_str());

  // Export telemetry before the pass/fail verdict so a failed sweep still
  // leaves its report and trace behind for diagnosis.
  if (!report_path.empty()) {
    // Campaign reports come from the deterministic campaign builder (so a
    // resumed run's report matches an uninterrupted one); engine runs keep
    // the registry-backed builder.
    const obs::RunReport report =
        campaign_report ? *campaign_report
                        : core::buildRunReport("sweep_cli", device, cfg, sweep_opt, jobs, result);
    std::ofstream out(report_path);
    report.writeJson(out);
    std::printf("wrote %s (RunReport %s, digest 0x%016llx)\n", report_path.c_str(),
                obs::kRunReportSchema, static_cast<unsigned long long>(report.config_digest));
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    obs::Tracer::global().writeChromeTrace(out);
    std::printf("wrote %s (%zu spans; open in Perfetto or chrome://tracing)\n", trace_path.c_str(),
                obs::Tracer::global().records().size());
  }

  if (!result.status.ok() || result.report.usable() == 0) {
    std::printf("sweep failed: %s\n",
                result.status.ok() ? "no usable points" : result.status.toString().c_str());
    return exitCode(result.status.ok() ? Status::Kind::NoValidPoints : result.status.kind());
  }
  const control::BodeResponse bode = measured.toBode();
  const bist::ExtractedParameters p = bist::extractParameters(bode);

  std::printf("nominal %.2f Hz, DC reference deviation %.2f Hz\n", measured.nominal_vco_hz,
              measured.static_reference_deviation_hz);
  std::printf("peak %.2f dB at %.2f Hz", p.peaking_db, p.peak_frequency_hz);
  if (p.zeta) std::printf(", zeta %.3f", *p.zeta);
  if (p.natural_frequency_hz) std::printf(", fn %.2f Hz", *p.natural_frequency_hz);
  if (p.natural_frequency_from_phase_hz)
    std::printf(" (phase-based %.2f Hz)", *p.natural_frequency_from_phase_hz);
  if (p.bandwidth_3db_hz) std::printf(", f3dB %.2f Hz", *p.bandwidth_3db_hz);
  std::printf("\n");

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    csv << "fm_hz,magnitude_db,phase_deg\n";
    for (const control::BodePoint& bp : bode.points())
      csv << radPerSecToHz(bp.omega_rad_per_s) << ',' << bp.magnitude_db << ',' << bp.phase_deg
          << '\n';
    std::printf("wrote %s (%zu points)\n", csv_path.c_str(), bode.size());
  }
  return 0;
}
