#include "baseline/bench_measurement.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "dsp/resample.hpp"
#include "dsp/tone.hpp"
#include "pll/cppll.hpp"
#include "pll/probes.hpp"
#include "pll/sources.hpp"
#include "sim/circuit.hpp"
#include "sim/trace.hpp"

namespace pllbist::baseline {

void BenchOptions::validate() const {
  if (deviation_hz <= 0.0) throw std::invalid_argument("BenchOptions: deviation must be positive");
  if (modulation_frequencies_hz.empty())
    throw std::invalid_argument("BenchOptions: need at least one modulation frequency");
  for (size_t i = 0; i < modulation_frequencies_hz.size(); ++i) {
    if (modulation_frequencies_hz[i] <= 0.0)
      throw std::invalid_argument("BenchOptions: modulation frequencies must be positive");
    if (i > 0 && modulation_frequencies_hz[i] <= modulation_frequencies_hz[i - 1])
      throw std::invalid_argument("BenchOptions: modulation frequencies must be ascending");
  }
  if (settle_periods < 1 || measure_periods < 1)
    throw std::invalid_argument("BenchOptions: settle/measure periods must be >= 1");
  if (samples_per_period < 8)
    throw std::invalid_argument("BenchOptions: need at least 8 samples per period");
  if (lock_wait_s < 0.0) throw std::invalid_argument("BenchOptions: lock wait must be >= 0");
}

control::BodeResponse BenchResult::toBode() const {
  std::vector<control::BodePoint> pts;
  pts.reserve(points.size());
  for (const BenchPoint& p : points)
    pts.push_back({hzToRadPerSec(p.modulation_hz), amplitudeToDb(p.gain), p.phase_deg});
  return control::BodeResponse::fromPoints(std::move(pts));
}

BenchResult measureBench(const pll::PllConfig& config, const BenchOptions& options) {
  config.validate();
  options.validate();

  sim::Circuit c;
  const sim::SignalId ext_ref = c.addSignal("ext_ref");
  const sim::SignalId stim = c.addSignal("stimulus");
  const sim::SignalId marker = c.addSignal("stim_peak");

  pll::SineFmSource::Config scfg;
  scfg.nominal_hz = config.ref_frequency_hz;
  scfg.deviation_hz = 0.0;
  scfg.modulation_hz = 0.0;
  pll::SineFmSource source(c, stim, marker, scfg);

  pll::CpPll pll(c, ext_ref, stim, config);
  pll.setTestMode(true);
  c.run(options.lock_wait_s);

  // Instruments are hoisted out of the sweep loop: they register circuit
  // callbacks, so they must outlive all circuit activity.
  sim::EdgeRecorder edges(c, pll.vcoOut());
  sim::Trace trace("probe");
  pll::AnalogProbe probe(c, [&]() { return pll.controlVoltageNow(); }, trace, 1.0, c.now());
  probe.stop();

  BenchResult result;
  for (double fm : options.modulation_frequencies_hz) {
    const double period = 1.0 / fm;
    source.setModulation(fm, options.deviation_hz);
    const double epoch = c.now();  // stimulus modulation phase zero
    c.run(c.now() + options.settle_periods * period);

    // Acquire the response over the measurement window.
    //  - VcoFrequency: per-cycle frequency from VCO edge timestamps (what a
    //    frequency discriminator measures). Each sample is the *average*
    //    frequency over one VCO cycle, so sub-cycle pump-pulse ripple is
    //    integrated rather than aliased.
    //  - LoopFilterVoltage: point-sampled control node, several samples per
    //    reference cycle so the pump pulses are resolved rather than
    //    aliased into the fit.
    std::vector<double> times;
    std::vector<double> values;
    if (options.probe == ProbeNode::VcoFrequency) {
      edges.clear();
      c.run(c.now() + options.measure_periods * period);
      for (const auto& s : dsp::frequencyFromEdges(edges.risingEdges())) {
        times.push_back(s.time_s);
        values.push_back(s.value);
      }
    } else {
      trace.clear();
      probe.setInterval(std::min(period / static_cast<double>(options.samples_per_period),
                                 1.0 / (12.0 * config.ref_frequency_hz)));
      probe.restart(c.now());
      c.run(c.now() + options.measure_periods * period);
      probe.stop();
      times = trace.times();
      values = trace.values();
    }

    const dsp::ToneFit fit = dsp::fitSine(times, values, fm);

    // Convert fitted amplitude to |H| at the divided output: the input
    // frequency deviation is options.deviation_hz, the VCO deviation is N
    // times larger for the same |H|.
    double gain = 0.0;
    if (options.probe == ProbeNode::VcoFrequency) {
      gain = fit.amplitude / (options.deviation_hz * static_cast<double>(config.divider_n));
    } else {
      const double vco_dev_hz = fit.amplitude * config.vco.gain_hz_per_v;
      gain = vco_dev_hz / (options.deviation_hz * static_cast<double>(config.divider_n));
    }

    // Stimulus deviation is dev*sin(2*pi*fm*(t - epoch)); the fit reports
    // x(t) = A*sin(2*pi*fm*t + phi). Relative phase = phi + 2*pi*fm*epoch.
    double rel_deg = radToDeg(fit.phase_rad + kTwoPi * fm * epoch);
    rel_deg = std::fmod(rel_deg, 360.0);
    if (rel_deg > 0.0) rel_deg -= 360.0;

    result.points.push_back({fm, gain, rel_deg, fit.residual_rms});
    source.setModulation(0.0, 0.0);
  }
  return result;
}

}  // namespace pllbist::baseline
