#pragma once

#include <vector>

#include "control/bode.hpp"
#include "pll/config.hpp"

namespace pllbist::baseline {

/// Which analog node the "bench equipment" probes (paper Figure 3: "the
/// output response can be measured at the loop filter node or the VCO
/// output").
enum class ProbeNode {
  LoopFilterVoltage,  ///< control-node voltage, converted to Hz via Kv
  VcoFrequency,       ///< ground-truth instantaneous VCO frequency
};

/// Conventional bench-style closed-loop transfer-function measurement: an
/// ideal sinusoidal FM generator drives the reference, and the response is
/// probed *directly at an analog node* — exactly the test the paper's BIST
/// exists to replace (it needs the analog access an embedded PLL lacks).
///
/// Amplitude and phase are extracted with a least-squares sine fit at the
/// known modulation frequency, and the response is absolutely calibrated
/// (bench gear knows the stimulus amplitude), so this measures the true
/// closed-loop H(j*omega) including the filter zero — the reference curve
/// the BIST results are judged against.
struct BenchOptions {
  double deviation_hz = 10.0;
  std::vector<double> modulation_frequencies_hz;  ///< ascending, positive
  ProbeNode probe = ProbeNode::VcoFrequency;
  int settle_periods = 4;      ///< modulation periods discarded before fitting
  int measure_periods = 6;     ///< modulation periods fitted
  int samples_per_period = 64; ///< probe sampling density
  double lock_wait_s = 1.0;

  void validate() const;
};

struct BenchPoint {
  double modulation_hz = 0.0;
  double gain = 0.0;         ///< |H| (absolute, unity in-band)
  double phase_deg = 0.0;    ///< relative to the stimulus modulation, in (-360, 0]
  double fit_residual_rms = 0.0;
};

struct BenchResult {
  std::vector<BenchPoint> points;
  [[nodiscard]] control::BodeResponse toBode() const;
};

/// Run the full bench sweep on a simulated DUT. Synchronous; builds its own
/// circuit.
BenchResult measureBench(const pll::PllConfig& config, const BenchOptions& options);

}  // namespace pllbist::baseline
