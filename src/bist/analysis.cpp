#include "bist/analysis.hpp"

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "control/second_order.hpp"

namespace pllbist::bist {

ExtractedParameters extractParameters(const control::BodeResponse& response) {
  ExtractedParameters out;
  const control::ResponsePeak peak = response.peak();
  out.peak_frequency_hz = radPerSecToHz(peak.omega_rad_per_s);
  out.peaking_db = peak.magnitude_db - response.inBandMagnitudeDb();
  out.phase_at_peak_deg = response.phaseDegAt(peak.omega_rad_per_s);

  if (out.peaking_db > 0.05) {  // below ~0.05 dB the inversion is numeric noise
    const double z = control::dampingFromPeakingDb(out.peaking_db);
    out.zeta = z;
    if (z < 0.7071)
      out.natural_frequency_hz =
          radPerSecToHz(control::naturalFrequencyFromPeak(peak.omega_rad_per_s, z));
  }
  if (auto w3 = response.bandwidth3Db()) out.bandwidth_3db_hz = radPerSecToHz(*w3);
  // Reference the phase to the in-band point (the paper's convention: the
  // first measurement's lag is approximated to zero), then find -90.
  const double phase_ref = response.points().front().phase_deg;
  for (size_t i = 1; i < response.size(); ++i) {
    const double a = response.points()[i - 1].phase_deg - phase_ref;
    const double b = response.points()[i].phase_deg - phase_ref;
    if (a > -90.0 && b <= -90.0) {
      const double t = (-90.0 - a) / (b - a);
      const double lw = std::log(response.points()[i - 1].omega_rad_per_s) +
                        t * (std::log(response.points()[i].omega_rad_per_s) -
                             std::log(response.points()[i - 1].omega_rad_per_s));
      out.natural_frequency_from_phase_hz = radPerSecToHz(std::exp(lw));
      break;
    }
  }
  return out;
}

namespace {

void checkRange(TestVerdict& verdict, const char* name, std::optional<double> value,
                std::optional<double> lo, std::optional<double> hi) {
  if (!lo && !hi) return;
  char buf[160];
  if (!value) {
    std::snprintf(buf, sizeof buf, "%s: not extractable from response", name);
    verdict.pass = false;
    verdict.failures.emplace_back(buf);
    return;
  }
  if (lo && *value < *lo) {
    std::snprintf(buf, sizeof buf, "%s: %.4g below limit %.4g", name, *value, *lo);
    verdict.pass = false;
    verdict.failures.emplace_back(buf);
  }
  if (hi && *value > *hi) {
    std::snprintf(buf, sizeof buf, "%s: %.4g above limit %.4g", name, *value, *hi);
    verdict.pass = false;
    verdict.failures.emplace_back(buf);
  }
}

}  // namespace

TestVerdict checkLimits(const ExtractedParameters& p, const TestLimits& limits) {
  TestVerdict verdict;
  checkRange(verdict, "natural_frequency_hz", p.natural_frequency_hz,
             limits.min_natural_frequency_hz, limits.max_natural_frequency_hz);
  checkRange(verdict, "zeta", p.zeta, limits.min_zeta, limits.max_zeta);
  checkRange(verdict, "peaking_db", p.peaking_db, std::nullopt, limits.max_peaking_db);
  checkRange(verdict, "bandwidth_3db_hz", p.bandwidth_3db_hz, limits.min_bandwidth_3db_hz,
             limits.max_bandwidth_3db_hz);
  return verdict;
}

TestLimits limitsFromGolden(const ExtractedParameters& golden, double tolerance) {
  TestLimits limits;
  if (golden.natural_frequency_hz) {
    limits.min_natural_frequency_hz = *golden.natural_frequency_hz * (1.0 - tolerance);
    limits.max_natural_frequency_hz = *golden.natural_frequency_hz * (1.0 + tolerance);
  }
  if (golden.zeta) {
    limits.min_zeta = *golden.zeta * (1.0 - tolerance);
    limits.max_zeta = *golden.zeta * (1.0 + tolerance);
  }
  if (golden.bandwidth_3db_hz) {
    limits.min_bandwidth_3db_hz = *golden.bandwidth_3db_hz * (1.0 - tolerance);
    limits.max_bandwidth_3db_hz = *golden.bandwidth_3db_hz * (1.0 + tolerance);
  }
  limits.max_peaking_db = golden.peaking_db + 20.0 * std::log10(1.0 + tolerance);
  return limits;
}

}  // namespace pllbist::bist
