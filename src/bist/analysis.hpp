#pragma once

#include <optional>
#include <string>
#include <vector>

#include "control/bode.hpp"

namespace pllbist::bist {

/// Loop parameters extracted from a (measured or theoretical) closed-loop
/// magnitude/phase response — the quantities the paper says the test gives
/// access to: natural frequency, damping and the one-sided -3 dB bandwidth
/// (section 1 and section 2).
struct ExtractedParameters {
  double peak_frequency_hz = 0.0;   ///< omega_p location (~ fn for light damping)
  double peaking_db = 0.0;          ///< peak above the in-band reference
  std::optional<double> zeta;       ///< from peaking (absent if no peaking)
  std::optional<double> natural_frequency_hz;  ///< fn corrected from omega_p and zeta
  /// Independent fn estimate from the -90 degree phase crossing (exact for
  /// the two-pole capacitor-node response regardless of damping, and
  /// available even when the curve doesn't peak). Comparing the two
  /// estimates is a built-in measurement consistency check.
  std::optional<double> natural_frequency_from_phase_hz;
  std::optional<double> bandwidth_3db_hz;
  double phase_at_peak_deg = 0.0;
};

/// Extract parameters from a response sampled densely enough to resolve the
/// peak. Throws std::domain_error on an empty response.
ExtractedParameters extractParameters(const control::BodeResponse& response);

/// Pass/fail limits for an on-chip comparison (the "comparison against on
/// chip limits" use the paper proposes). Any unset optional is not checked.
struct TestLimits {
  std::optional<double> min_natural_frequency_hz;
  std::optional<double> max_natural_frequency_hz;
  std::optional<double> min_zeta;
  std::optional<double> max_zeta;
  std::optional<double> max_peaking_db;
  std::optional<double> min_bandwidth_3db_hz;
  std::optional<double> max_bandwidth_3db_hz;
};

struct TestVerdict {
  bool pass = true;
  std::vector<std::string> failures;  ///< human-readable limit violations
};

/// Compare extracted parameters against limits. Parameters that could not
/// be extracted (empty optionals) fail any limit set on them.
TestVerdict checkLimits(const ExtractedParameters& params, const TestLimits& limits);

/// Limits derived from a golden (fault-free) device with symmetric
/// tolerance bands: e.g. tolerance = 0.25 allows +/-25% on fn, zeta and
/// bandwidth.
TestLimits limitsFromGolden(const ExtractedParameters& golden, double tolerance);

}  // namespace pllbist::bist
