#include "bist/controller.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "bist/telemetry.hpp"
#include "bist/testbench.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "control/grid.hpp"
#include "obs/tracer.hpp"

namespace pllbist::bist {

const char* to_string(StimulusKind kind) {
  switch (kind) {
    case StimulusKind::MultiToneFsk: return "multi-tone-fsk";
    case StimulusKind::TwoToneFsk: return "two-tone-fsk";
    case StimulusKind::PureSineFm: return "pure-sine-fm";
    case StimulusKind::DelayLinePm: return "delay-line-pm";
  }
  return "unknown";
}

const char* to_string(PointQuality quality) {
  switch (quality) {
    case PointQuality::Ok: return "ok";
    case PointQuality::Retried: return "retried";
    case PointQuality::Degraded: return "degraded";
    case PointQuality::Dropped: return "dropped";
  }
  return "unknown";
}

Status SweepOptions::check() const {
  using K = Status::Kind;
  if (fm_steps < 2)
    return Status::makef(K::InvalidArgument, "SweepOptions: fm_steps = %d, must be >= 2", fm_steps);
  if (deviation_hz <= 0.0)
    return Status::makef(K::InvalidArgument, "SweepOptions: deviation_hz = %g, must be positive",
                         deviation_hz);
  if (modulation_frequencies_hz.empty())
    return Status::make(K::InvalidArgument,
                        "SweepOptions: modulation_frequencies_hz is empty, need >= 1 frequency");
  for (size_t i = 0; i < modulation_frequencies_hz.size(); ++i) {
    if (!(modulation_frequencies_hz[i] > 0.0))
      return Status::makef(K::InvalidArgument,
                           "SweepOptions: modulation_frequencies_hz[%zu] = %g, must be positive",
                           i, modulation_frequencies_hz[i]);
    if (i > 0 && modulation_frequencies_hz[i] <= modulation_frequencies_hz[i - 1])
      return Status::makef(
          K::InvalidArgument,
          "SweepOptions: modulation_frequencies_hz[%zu] = %g <= [%zu] = %g, must be strictly "
          "ascending",
          i, modulation_frequencies_hz[i], i - 1, modulation_frequencies_hz[i - 1]);
  }
  if (!(master_clock_hz > 0.0))
    return Status::makef(K::InvalidArgument, "SweepOptions: master_clock_hz = %g, must be positive",
                         master_clock_hz);
  if (pm_taps < 2)
    return Status::makef(K::InvalidArgument, "SweepOptions: pm_taps = %d, must be >= 2", pm_taps);
  if (pm_tap_delay_s < 0.0)
    return Status::makef(K::InvalidArgument, "SweepOptions: pm_tap_delay_s = %g, must be >= 0",
                         pm_tap_delay_s);
  if (lock_wait_s < 0.0)
    return Status::makef(K::InvalidArgument, "SweepOptions: lock_wait_s = %g, must be >= 0",
                         lock_wait_s);
  if (static_settle_s <= 0.0)
    return Status::makef(K::InvalidArgument, "SweepOptions: static_settle_s = %g, must be positive",
                         static_settle_s);
  if (ref_edge_jitter_rms_s < 0.0)
    return Status::makef(K::InvalidArgument,
                         "SweepOptions: ref_edge_jitter_rms_s = %g, must be >= 0",
                         ref_edge_jitter_rms_s);
  return sequencer.check();
}

Status SweepOptions::check(const pll::PllConfig& config) const {
  const Status own = check();
  if (!own.ok()) return own;
  using K = Status::Kind;
  // An FM deviation at or above the reference frequency would swing the
  // DCO program through 0 Hz — physically meaningless and a guaranteed
  // dead sweep.
  if (stimulus != StimulusKind::DelayLinePm && deviation_hz >= config.ref_frequency_hz)
    return Status::makef(K::InvalidArgument,
                         "SweepOptions: deviation_hz = %g must be below the reference frequency "
                         "(%g Hz)",
                         deviation_hz, config.ref_frequency_hz);
  if (stimulus == StimulusKind::MultiToneFsk || stimulus == StimulusKind::TwoToneFsk) {
    if (master_clock_hz <= 2.0 * config.ref_frequency_hz)
      return Status::makef(K::InvalidArgument,
                           "SweepOptions: master_clock_hz = %g too slow for a %g Hz reference "
                           "(DCO needs >= 2x)",
                           master_clock_hz, config.ref_frequency_hz);
  }
  return Status();
}

void SweepOptions::validate() const { check().throwIfError(); }

std::vector<double> SweepOptions::defaultSweep(double fn_hz, int points) {
  if (fn_hz <= 0.0) throw std::invalid_argument("defaultSweep: fn must be positive");
  // fn/4 to 5x fn: below ~fn/4 the FSK slot rate drops under the loop
  // bandwidth and the loop tracks individual steps (the stimulus stops
  // looking sinusoidal); the DC parked-offset reference anchors the 0 dB
  // asymptote instead.
  return control::logspace(fn_hz / 4.0, fn_hz * 5.0, points);
}

control::BodeResponse MeasuredResponse::toBode() const {
  if (points.empty()) throw std::domain_error("MeasuredResponse: no points");
  const double eqn7_ref = static_reference_deviation_hz > 0.0 ? static_reference_deviation_hz
                                                              : points.front().deviation_hz;
  std::vector<control::BodePoint> pts;
  pts.reserve(points.size());
  for (const MeasuredPoint& p : points) {
    if (p.timed_out) continue;  // dead points excluded from the plot
    // Per-point absolute normalisation when available (PM); otherwise the
    // eqn (7) common reference (FM).
    const double ref = p.unity_gain_deviation_hz > 0.0 ? p.unity_gain_deviation_hz : eqn7_ref;
    if (ref <= 0.0)
      throw std::domain_error("MeasuredResponse: no usable reference deviation");
    const double dev = std::max(p.deviation_hz, 1e-12);
    pts.push_back({hzToRadPerSec(p.modulation_hz), amplitudeToDb(dev / ref), p.phase_deg});
  }
  // The raw per-point lag lives in (-360, 0], which is ambiguous by a full
  // turn: a point whose true lag is a few degrees but jitters slightly
  // *ahead* of the marker reads as ~-360. Anchor the first (most in-band)
  // point into (-180, 180]; BodeResponse unwraps the rest relative to it.
  if (!pts.empty()) {
    while (pts.front().phase_deg <= -180.0) pts.front().phase_deg += 360.0;
  }
  return control::BodeResponse::fromPoints(std::move(pts));
}

SweepOptions quickSweepOptions(const pll::PllConfig& config, StimulusKind stimulus, int points) {
  config.validate();
  SweepOptions opt;
  opt.stimulus = stimulus;
  opt.deviation_hz = config.ref_frequency_hz * 0.01;
  opt.master_clock_hz = config.ref_frequency_hz * 1000.0;
  const double fn_hz = radPerSecToHz(config.secondOrder().omega_n_rad_per_s);
  opt.modulation_frequencies_hz = SweepOptions::defaultSweep(fn_hz, points);
  // ~10 natural periods of lock/settle margin, gate sized for ~0.5% count
  // resolution on a 1% deviation at the VCO.
  opt.lock_wait_s = 10.0 / fn_hz;
  opt.static_settle_s = 10.0 / fn_hz;
  opt.sequencer.freq_gate_s = 10.0 / fn_hz;
  opt.sequencer.hold_to_gate_delay_s = 2.0 / config.ref_frequency_hz;
  return opt;
}

std::vector<double> MeasuredResponse::modulationFrequencies() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const MeasuredPoint& p : points) out.push_back(p.modulation_hz);
  return out;
}

BistController::BistController(const pll::PllConfig& pll_config, SweepOptions options)
    : pll_config_(pll_config), options_(std::move(options)) {
  pll_config_.validate();
  options_.check(pll_config_).throwIfError();
}

MeasuredResponse BistController::run() {
  if (used_) throw std::logic_error("BistController::run: controller already used");
  used_ = true;
  PLLBIST_SPAN("sweep.run");

  SweepTestbench bench(pll_config_, options_);
  if (on_testbench_) on_testbench_(bench);
  sim::Circuit& c = bench.circuit();
  TestSequencer& sequencer = bench.sequencer();

  // Let the loop acquire lock before measuring anything.
  c.run(options_.lock_wait_s);

  auto waitFor = [&bench](bool& flag) {
    const Status s = bench.runUntil(flag);
    if (!s.ok()) throw AssertionError("BistController: " + s.toString());
  };

  MeasuredResponse result;
  bool nominal_done = false;
  sequencer.measureNominal([&](double hz) {
    result.nominal_vco_hz = hz;
    nominal_done = true;
  });
  waitFor(nominal_done);

  // PM has no DC reference (a parked phase offset yields no steady output
  // deviation); its points are normalised absolutely instead.
  if (options_.stimulus != StimulusKind::DelayLinePm) {
    bool ref_done = false;
    sequencer.measureStaticReference(options_.static_settle_s, [&](double hz) {
      result.static_reference_deviation_hz = hz - result.nominal_vco_hz;
      ref_done = true;
    });
    waitFor(ref_done);
  }

  for (double fm : options_.modulation_frequencies_hz) {
    obs::ScopedSpan point_span("point.measure");
    const auto point_start = std::chrono::steady_clock::now();
    bool point_done = false;
    sequencer.measurePoint(fm, [&](TestSequencer::PointResult r) {
      MeasuredPoint p;
      p.modulation_hz = r.modulation_hz;
      p.deviation_hz = r.held_frequency_hz - result.nominal_vco_hz;
      p.phase_deg = r.phase_deg;
      p.timed_out = r.timed_out;
      p.quality = r.timed_out ? PointQuality::Dropped : PointQuality::Ok;
      p.status = r.status;
      if (options_.stimulus == StimulusKind::DelayLinePm) {
        // Input frequency deviation of PM: theta_dev * fm (Hz).
        p.unity_gain_deviation_hz =
            bench.pmThetaDevRad() * fm * static_cast<double>(pll_config_.divider_n);
      }
      result.points.push_back(p);
      result.raw.push_back(std::move(r));
      point_done = true;
    });
    waitFor(point_done);
    MeasuredPoint& p = result.points.back();
    p.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - point_start).count();
    SweepTelemetry& t = sweepTelemetry();
    t.attempts.increment();
    (p.timed_out ? t.points_dropped : t.points_ok).increment();
    t.point_wall.observe(p.wall_time_s);
    if (progress_) progress_(p);
  }
  publishBenchCounters(bench);
  return result;
}

}  // namespace pllbist::bist
