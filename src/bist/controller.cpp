#include "bist/controller.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "bist/dco.hpp"
#include "bist/delay_line.hpp"
#include "bist/modulator.hpp"
#include "bist/peak_detector.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "control/grid.hpp"
#include "pll/cppll.hpp"
#include "pll/sources.hpp"
#include "sim/circuit.hpp"

namespace pllbist::bist {

const char* to_string(StimulusKind kind) {
  switch (kind) {
    case StimulusKind::MultiToneFsk: return "multi-tone-fsk";
    case StimulusKind::TwoToneFsk: return "two-tone-fsk";
    case StimulusKind::PureSineFm: return "pure-sine-fm";
    case StimulusKind::DelayLinePm: return "delay-line-pm";
  }
  return "unknown";
}

void SweepOptions::validate() const {
  if (fm_steps < 2) throw std::invalid_argument("SweepOptions: fm_steps must be >= 2");
  if (deviation_hz <= 0.0) throw std::invalid_argument("SweepOptions: deviation must be positive");
  if (modulation_frequencies_hz.empty())
    throw std::invalid_argument("SweepOptions: need at least one modulation frequency");
  for (size_t i = 0; i < modulation_frequencies_hz.size(); ++i) {
    if (modulation_frequencies_hz[i] <= 0.0)
      throw std::invalid_argument("SweepOptions: modulation frequencies must be positive");
    if (i > 0 && modulation_frequencies_hz[i] <= modulation_frequencies_hz[i - 1])
      throw std::invalid_argument("SweepOptions: modulation frequencies must be ascending");
  }
  if (master_clock_hz <= 0.0) throw std::invalid_argument("SweepOptions: master clock must be positive");
  if (pm_taps < 2) throw std::invalid_argument("SweepOptions: pm_taps must be >= 2");
  if (pm_tap_delay_s < 0.0) throw std::invalid_argument("SweepOptions: pm_tap_delay must be >= 0");
  if (lock_wait_s < 0.0) throw std::invalid_argument("SweepOptions: lock wait must be >= 0");
  if (static_settle_s <= 0.0)
    throw std::invalid_argument("SweepOptions: static settle must be positive");
  sequencer.validate();
}

std::vector<double> SweepOptions::defaultSweep(double fn_hz, int points) {
  if (fn_hz <= 0.0) throw std::invalid_argument("defaultSweep: fn must be positive");
  // fn/4 to 5x fn: below ~fn/4 the FSK slot rate drops under the loop
  // bandwidth and the loop tracks individual steps (the stimulus stops
  // looking sinusoidal); the DC parked-offset reference anchors the 0 dB
  // asymptote instead.
  return control::logspace(fn_hz / 4.0, fn_hz * 5.0, points);
}

control::BodeResponse MeasuredResponse::toBode() const {
  if (points.empty()) throw std::domain_error("MeasuredResponse: no points");
  const double eqn7_ref = static_reference_deviation_hz > 0.0 ? static_reference_deviation_hz
                                                              : points.front().deviation_hz;
  std::vector<control::BodePoint> pts;
  pts.reserve(points.size());
  for (const MeasuredPoint& p : points) {
    if (p.timed_out) continue;  // dead points excluded from the plot
    // Per-point absolute normalisation when available (PM); otherwise the
    // eqn (7) common reference (FM).
    const double ref = p.unity_gain_deviation_hz > 0.0 ? p.unity_gain_deviation_hz : eqn7_ref;
    if (ref <= 0.0)
      throw std::domain_error("MeasuredResponse: no usable reference deviation");
    const double dev = std::max(p.deviation_hz, 1e-12);
    pts.push_back({hzToRadPerSec(p.modulation_hz), amplitudeToDb(dev / ref), p.phase_deg});
  }
  // The raw per-point lag lives in (-360, 0], which is ambiguous by a full
  // turn: a point whose true lag is a few degrees but jitters slightly
  // *ahead* of the marker reads as ~-360. Anchor the first (most in-band)
  // point into (-180, 180]; BodeResponse unwraps the rest relative to it.
  if (!pts.empty()) {
    while (pts.front().phase_deg <= -180.0) pts.front().phase_deg += 360.0;
  }
  return control::BodeResponse::fromPoints(std::move(pts));
}

SweepOptions quickSweepOptions(const pll::PllConfig& config, StimulusKind stimulus, int points) {
  config.validate();
  SweepOptions opt;
  opt.stimulus = stimulus;
  opt.deviation_hz = config.ref_frequency_hz * 0.01;
  opt.master_clock_hz = config.ref_frequency_hz * 1000.0;
  const double fn_hz = radPerSecToHz(config.secondOrder().omega_n_rad_per_s);
  opt.modulation_frequencies_hz = SweepOptions::defaultSweep(fn_hz, points);
  // ~10 natural periods of lock/settle margin, gate sized for ~0.5% count
  // resolution on a 1% deviation at the VCO.
  opt.lock_wait_s = 10.0 / fn_hz;
  opt.static_settle_s = 10.0 / fn_hz;
  opt.sequencer.freq_gate_s = 10.0 / fn_hz;
  opt.sequencer.hold_to_gate_delay_s = 2.0 / config.ref_frequency_hz;
  return opt;
}

std::vector<double> MeasuredResponse::modulationFrequencies() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const MeasuredPoint& p : points) out.push_back(p.modulation_hz);
  return out;
}

BistController::BistController(const pll::PllConfig& pll_config, SweepOptions options)
    : pll_config_(pll_config), options_(std::move(options)) {
  pll_config_.validate();
  options_.validate();
}

MeasuredResponse BistController::run() {
  if (used_) throw std::logic_error("BistController::run: controller already used");
  used_ = true;

  sim::Circuit c;
  const sim::SignalId ext_ref = c.addSignal("ext_ref");  // unused normal-mode input
  const sim::SignalId stim_out = c.addSignal("stimulus");
  const sim::SignalId stim_marker = c.addSignal("stim_peak");

  // Stimulus path (Figure 4 / section 3, or the delay line of the
  // further-work discussion).
  std::unique_ptr<Dco> dco;
  std::unique_ptr<FskModulator> modulator;
  std::unique_ptr<pll::SineFmSource> sine_source;
  std::unique_ptr<sim::ClockSource> pm_clock;
  std::unique_ptr<DelayLineModulator> delay_line;
  double pm_theta_dev_rad = 0.0;
  StimulusHooks hooks;
  if (options_.stimulus == StimulusKind::DelayLinePm) {
    const auto raw_ref = c.addSignal("pm_raw_ref");
    pm_clock = std::make_unique<sim::ClockSource>(c, raw_ref, 1.0 / pll_config_.ref_frequency_hz);
    DelayLineModulator::Config dl;
    dl.taps = options_.pm_taps;
    dl.tap_delay_s = options_.pm_tap_delay_s > 0.0
                         ? options_.pm_tap_delay_s
                         : 1.0 / (8.0 * pll_config_.ref_frequency_hz *
                                  static_cast<double>(options_.pm_taps - 1));
    dl.steps = options_.fm_steps;
    dl.nominal_hz = pll_config_.ref_frequency_hz;
    delay_line = std::make_unique<DelayLineModulator>(c, raw_ref, stim_out, stim_marker, dl);
    pm_theta_dev_rad = delay_line->phaseDeviationRad();
    hooks.start = [&dl_mod = *delay_line](double fm) { dl_mod.start(fm); };
    hooks.stop = [&dl_mod = *delay_line] { dl_mod.stop(); };
    hooks.park = [&dl_mod = *delay_line] { dl_mod.stop(); };  // PM has no DC offset
  } else if (options_.stimulus == StimulusKind::PureSineFm) {
    pll::SineFmSource::Config scfg;
    scfg.nominal_hz = pll_config_.ref_frequency_hz;
    scfg.deviation_hz = 0.0;  // CW until a point starts
    scfg.modulation_hz = 0.0;
    sine_source = std::make_unique<pll::SineFmSource>(c, stim_out, stim_marker, scfg);
    const double carrier = pll_config_.ref_frequency_hz;
    hooks.start = [this, &src = *sine_source, carrier](double fm) {
      src.setCarrier(carrier);
      src.setModulation(fm, options_.deviation_hz);
    };
    hooks.stop = [&src = *sine_source, carrier] {
      src.setModulation(0.0, 0.0);
      src.setCarrier(carrier);
    };
    hooks.park = [this, &src = *sine_source, carrier] {
      src.setModulation(0.0, 0.0);
      src.setCarrier(carrier + options_.deviation_hz);
    };
  } else {
    Dco::Config dcfg;
    dcfg.master_clock_hz = options_.master_clock_hz;
    dcfg.initial_modulus = std::max(
        2, static_cast<int>(std::lround(options_.master_clock_hz / pll_config_.ref_frequency_hz)));
    dco = std::make_unique<Dco>(c, stim_out, dcfg);
    FskModulator::Config mcfg;
    mcfg.waveform = options_.stimulus == StimulusKind::TwoToneFsk ? StimulusWaveform::TwoToneFsk
                                                                  : StimulusWaveform::MultiToneFsk;
    mcfg.steps = options_.fm_steps;
    mcfg.nominal_hz = pll_config_.ref_frequency_hz;
    mcfg.deviation_hz = options_.deviation_hz;
    modulator = std::make_unique<FskModulator>(c, *dco, stim_marker, mcfg);
    hooks.start = [&mod = *modulator](double fm) { mod.start(fm); };
    hooks.stop = [&mod = *modulator] { mod.stop(); };
    hooks.park = [&mod = *modulator] { mod.park(); };
  }

  // Device under test with the M1/M2 test muxes.
  pll::CpPll pll(c, ext_ref, stim_out, pll_config_);
  pll.setTestMode(true);

  // Response capture (Figure 6/7).
  PeakDetector peak_detector(c, pll.ref(), pll.feedback(), pll_config_.pfd, PeakDetectorDelays{});
  TestSequencer sequencer(c, pll, hooks, peak_detector, stim_marker, pll.vcoOut(),
                          options_.master_clock_hz, options_.sequencer);

  // Let the loop acquire lock before measuring anything.
  c.run(options_.lock_wait_s);

  auto waitFor = [&c](bool& flag) {
    while (!flag) {
      if (!c.step()) throw AssertionError("BistController: event queue ran dry mid-measurement");
    }
  };

  MeasuredResponse result;
  bool nominal_done = false;
  sequencer.measureNominal([&](double hz) {
    result.nominal_vco_hz = hz;
    nominal_done = true;
  });
  waitFor(nominal_done);

  // PM has no DC reference (a parked phase offset yields no steady output
  // deviation); its points are normalised absolutely instead.
  if (options_.stimulus != StimulusKind::DelayLinePm) {
    bool ref_done = false;
    sequencer.measureStaticReference(options_.static_settle_s, [&](double hz) {
      result.static_reference_deviation_hz = hz - result.nominal_vco_hz;
      ref_done = true;
    });
    waitFor(ref_done);
  }

  for (double fm : options_.modulation_frequencies_hz) {
    bool point_done = false;
    sequencer.measurePoint(fm, [&](TestSequencer::PointResult r) {
      MeasuredPoint p;
      p.modulation_hz = r.modulation_hz;
      p.deviation_hz = r.held_frequency_hz - result.nominal_vco_hz;
      p.phase_deg = r.phase_deg;
      p.timed_out = r.timed_out;
      if (options_.stimulus == StimulusKind::DelayLinePm) {
        // Input frequency deviation of PM: theta_dev * fm (Hz).
        p.unity_gain_deviation_hz =
            pm_theta_dev_rad * fm * static_cast<double>(pll_config_.divider_n);
      }
      result.points.push_back(p);
      result.raw.push_back(std::move(r));
      point_done = true;
    });
    waitFor(point_done);
    if (progress_) progress_(result.points.back());
  }
  return result;
}

}  // namespace pllbist::bist
