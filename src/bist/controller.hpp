#pragma once

#include <functional>
#include <vector>

#include "bist/sequencer.hpp"
#include "common/status.hpp"
#include "control/bode.hpp"
#include "pll/config.hpp"

namespace pllbist::bist {

class SweepTestbench;

/// How the reference modulation is produced.
enum class StimulusKind {
  MultiToneFsk,  ///< DCO + M-step sampled-sine program (the on-chip method)
  TwoToneFsk,    ///< DCO + square +/-deviation program
  PureSineFm,    ///< ideal sinusoidal FM (bench-equipment reference case)
  DelayLinePm,   ///< tapped-delay-line phase modulation (paper further work)
};

[[nodiscard]] const char* to_string(StimulusKind kind);

/// Everything that parameterises one transfer-function sweep.
struct SweepOptions {
  StimulusKind stimulus = StimulusKind::MultiToneFsk;
  int fm_steps = 10;                ///< FSK/PM slots per modulation period
  double deviation_hz = 10.0;       ///< peak reference deviation (FM kinds)
  int pm_taps = 16;                 ///< delay-line taps (DelayLinePm)
  double pm_tap_delay_s = 0.0;      ///< per-tap delay; 0 = auto (span Tref/8)
  std::vector<double> modulation_frequencies_hz;  ///< ascending; first = in-band ref
  double master_clock_hz = 1e6;     ///< DCO master / test clock
  double lock_wait_s = 1.0;         ///< initial lock acquisition time
  double static_settle_s = 1.0;     ///< settle before the DC reference count
  /// RMS Gaussian edge jitter injected on the reference stimulus
  /// (PureSineFm only; the DCO paths are noiseless digital dividers).
  /// 0 disables. Deterministic per jitter_seed.
  double ref_edge_jitter_rms_s = 0.0;
  unsigned jitter_seed = 1;
  TestSequencer::Options sequencer;

  /// Structured check of the options alone. Every rejection names the
  /// offending field and value.
  [[nodiscard]] Status check() const;
  /// Cross-checks against the device as well (e.g. the stimulus deviation
  /// must stay below the reference frequency or the DCO program wraps
  /// through 0 Hz).
  [[nodiscard]] Status check(const pll::PllConfig& config) const;
  /// check().throwIfError() — kept for the exception-based API.
  void validate() const;

  /// Log-spaced default sweep for a loop with natural frequency fn_hz.
  static std::vector<double> defaultSweep(double fn_hz, int points = 15);
};

/// Sweep options auto-scaled to a device: 1% reference deviation, a DCO
/// master clock 1000x the reference, gates and settle times proportional
/// to the loop's natural period. Suitable defaults for tests and quick
/// experiments on any configuration.
SweepOptions quickSweepOptions(const pll::PllConfig& config, StimulusKind stimulus,
                               int points = 10);

/// Per-point outcome classification of the reliability layer. A plain
/// BistController sweep only produces Ok and Dropped (its points get one
/// attempt); ResilientSweep fills in the full ladder.
enum class PointQuality {
  Ok,       ///< measured cleanly on the first attempt
  Retried,  ///< failed at least once, then measured successfully
  Degraded, ///< measured, but under abnormal conditions (relock needed, or
            ///  only after heavy settle/timeout escalation)
  Dropped,  ///< retry budget exhausted with no usable measurement
};

[[nodiscard]] const char* to_string(PointQuality quality);

/// One point of the measured closed-loop response.
struct MeasuredPoint {
  double modulation_hz = 0.0;
  double deviation_hz = 0.0;  ///< held peak output deviation (Fmax of eqn (7))
  double phase_deg = 0.0;
  /// Expected output deviation at unity gain (N * input deviation). For FM
  /// this is constant; for delay-line PM it scales with the modulation
  /// frequency (input frequency deviation = theta_dev * fm).
  double unity_gain_deviation_hz = 0.0;
  bool timed_out = false;
  PointQuality quality = PointQuality::Ok;
  int attempts = 1;  ///< measurement attempts consumed (1 = no retries)
  Status status;     ///< failure reason of the *last* attempt; ok() if measured
  /// Host wall-clock seconds spent measuring this point, all attempts and
  /// relock waits included. A timing field: excluded from the bit-identical
  /// determinism contract and stripped from RunReport comparisons.
  double wall_time_s = 0.0;
};

/// Result of a sweep, convertible to a BodeResponse: magnitudes referenced
/// to the DC (parked-offset) in-band measurement per eqn (7) for FM
/// stimuli, or normalised absolutely against the known per-point input
/// deviation for PM (a static phase offset produces no output deviation,
/// so PM has no DC reference).
struct MeasuredResponse {
  double nominal_vco_hz = 0.0;      ///< unmodulated carrier count
  double static_reference_deviation_hz = 0.0;  ///< eqn (7) Frefmax (DC method); 0 for PM
  std::vector<MeasuredPoint> points;
  std::vector<TestSequencer::PointResult> raw;

  /// Uses the static reference if positive, else the per-point unity-gain
  /// deviation, else the first sweep point. Throws std::domain_error if no
  /// usable reference exists.
  [[nodiscard]] control::BodeResponse toBode() const;

  /// The swept modulation frequencies, in order.
  [[nodiscard]] std::vector<double> modulationFrequencies() const;
};

/// Builds the full testbench (PLL + Figure 6 BIST blocks) in a private
/// Circuit and runs a complete transfer-function sweep synchronously.
/// This is the top-level entry point the core library wraps.
class BistController {
 public:
  BistController(const pll::PllConfig& pll_config, SweepOptions options);

  /// Optional progress hook, called after each completed point.
  void onPointMeasured(std::function<void(const MeasuredPoint&)> cb) { progress_ = std::move(cb); }

  /// Optional hook fired once the testbench is assembled, before the lock
  /// wait. Tests and campaigns use it to attach sim-level fault injection
  /// (testbench.faultInjector()) or extra probes to the private circuit.
  void onTestbench(std::function<void(SweepTestbench&)> cb) { on_testbench_ = std::move(cb); }

  /// Run the sweep. May be called once per controller instance.
  MeasuredResponse run();

 private:
  pll::PllConfig pll_config_;
  SweepOptions options_;
  std::function<void(const MeasuredPoint&)> progress_;
  std::function<void(SweepTestbench&)> on_testbench_;
  bool used_ = false;
};

}  // namespace pllbist::bist
