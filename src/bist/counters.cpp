#include "bist/counters.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::bist {

FrequencyCounter::FrequencyCounter(sim::Circuit& c, sim::SignalId in)
    : circuit_(c), counter_(c, in) {}

void FrequencyCounter::measure(double gate_s, std::function<void(Result)> done) {
  if (gate_s <= 0.0) throw std::invalid_argument("FrequencyCounter: gate must be positive");
  if (busy_) throw std::logic_error("FrequencyCounter: measurement already in flight");
  busy_ = true;
  counter_.start();
  circuit_.scheduleCallback(circuit_.now() + gate_s,
                            [this, gate_s, done = std::move(done)](double) {
                              counter_.stop();
                              busy_ = false;
                              done(Result{counter_.count(), gate_s});
                            });
}

PhaseCounter::PhaseCounter(double test_clock_hz) : test_clock_hz_(test_clock_hz) {
  if (test_clock_hz <= 0.0) throw std::invalid_argument("PhaseCounter: clock must be positive");
}

void PhaseCounter::arm(double now_s) {
  arm_time_ = now_s;
  armed_ = true;
}

long PhaseCounter::capture(double now_s) {
  if (!armed_) throw std::logic_error("PhaseCounter: capture without arm");
  armed_ = false;
  PLLBIST_ASSERT(now_s >= arm_time_);
  // Whole test-clock periods elapsed — the register value of a counter
  // clocked at test_clock_hz and gated between the two events.
  return static_cast<long>(std::floor((now_s - arm_time_) * test_clock_hz_));
}

double PhaseCounter::phaseDelayDeg(long count, double test_clock_hz, double modulation_hz) {
  if (test_clock_hz <= 0.0 || modulation_hz <= 0.0)
    throw std::invalid_argument("phaseDelayDeg: rates must be positive");
  return -360.0 * (static_cast<double>(count) / test_clock_hz) * modulation_hz;
}

}  // namespace pllbist::bist
