#pragma once

#include <functional>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::bist {

/// Gated frequency counter (Figure 6): counts rising edges of the monitored
/// signal over a fixed gate interval and reports count / gate. The +/-1
/// count quantisation of the hardware is inherent in the integer count.
class FrequencyCounter : public sim::Component {
 public:
  FrequencyCounter(sim::Circuit& c, sim::SignalId in);

  struct Result {
    long count = 0;
    double gate_s = 0.0;
    [[nodiscard]] double frequencyHz() const { return static_cast<double>(count) / gate_s; }
  };

  /// Open the gate now for `gate_s` seconds; `done` fires when it closes.
  /// Only one measurement may be in flight.
  void measure(double gate_s, std::function<void(Result)> done);

  [[nodiscard]] bool busy() const { return busy_; }

 private:
  sim::Circuit& circuit_;
  sim::GatedCounter counter_;
  bool busy_ = false;
};

/// Phase counter (Figure 6 / eqn (8)): measures the time from the stimulus
/// peak to the detected output peak in units of the test clock. Models a
/// binary counter clocked at `test_clock_hz`; the count returned is the
/// number of whole clock periods elapsed between arm() and capture(), which
/// is what the hardware register would hold.
class PhaseCounter {
 public:
  explicit PhaseCounter(double test_clock_hz);

  void arm(double now_s);
  [[nodiscard]] bool armed() const { return armed_; }

  /// Stop counting; returns the held count.
  long capture(double now_s);

  /// eqn (8): PhaseDelay(deg) = 360 * (T * N) / Tmod, negated because the
  /// output peak trails the stimulus peak (phase lag).
  [[nodiscard]] static double phaseDelayDeg(long count, double test_clock_hz,
                                            double modulation_hz);

  [[nodiscard]] double testClockHz() const { return test_clock_hz_; }

 private:
  double test_clock_hz_;
  double arm_time_ = 0.0;
  bool armed_ = false;
};

}  // namespace pllbist::bist
