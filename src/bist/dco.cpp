#include "bist/dco.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::bist {

void Dco::Config::validate() const {
  if (master_clock_hz <= 0.0) throw std::invalid_argument("Dco: master clock must be positive");
  if (initial_modulus < 2) throw std::invalid_argument("Dco: modulus must be >= 2");
  if (start_time_s < 0.0) throw std::invalid_argument("Dco: start time must be >= 0");
}

Dco::Dco(sim::Circuit& c, sim::SignalId out, const Config& cfg)
    : circuit_(c), out_(out), cfg_(cfg) {
  cfg_.validate();
  tick_s_ = 1.0 / cfg_.master_clock_hz;
  modulus_ = pending_modulus_ = cfg_.initial_modulus;
  tick_ = static_cast<std::int64_t>(std::ceil(cfg_.start_time_s / tick_s_));
  const double t0 = static_cast<double>(tick_) * tick_s_;
  PLLBIST_ASSERT(t0 >= c.now());
  circuit_.scheduleCallback(t0, [this](double now) { rise(now); });
}

void Dco::rise(double now) {
  modulus_ = pending_modulus_;  // hop frequencies only at rising edges
  circuit_.scheduleSet(out_, now, true);
  const double fall = static_cast<double>(tick_ + modulus_ / 2) * tick_s_;
  circuit_.scheduleSet(out_, fall, false);
  tick_ += modulus_;
  const double next = static_cast<double>(tick_) * tick_s_;
  circuit_.scheduleCallback(next, [this](double t) { rise(t); });
}

int Dco::modulusFor(double hz) const {
  if (hz <= 0.0 || hz > cfg_.master_clock_hz / 2.0)
    throw std::invalid_argument("Dco: frequency outside (0, master/2]");
  const int m = static_cast<int>(std::lround(cfg_.master_clock_hz / hz));
  return std::max(2, m);
}

double Dco::frequencyOf(int modulus) const {
  if (modulus < 2) throw std::invalid_argument("Dco: modulus must be >= 2");
  return cfg_.master_clock_hz / static_cast<double>(modulus);
}

double Dco::quantize(double hz) const { return frequencyOf(modulusFor(hz)); }

double Dco::setFrequency(double hz) {
  pending_modulus_ = modulusFor(hz);
  return frequencyOf(pending_modulus_);
}

void Dco::setModulus(int modulus) {
  if (modulus < 2) throw std::invalid_argument("Dco: modulus must be >= 2");
  pending_modulus_ = modulus;
}

double Dco::pendingFrequency() const { return frequencyOf(pending_modulus_); }

double Dco::resolutionAt(double hz) const {
  const int m = modulusFor(hz);
  return frequencyOf(m) - frequencyOf(m + 1);
}

double Dco::resolutionEq2(double fin_nominal_hz, double fref_master_hz) {
  if (fin_nominal_hz <= 0.0 || fref_master_hz <= 0.0)
    throw std::invalid_argument("resolutionEq2: frequencies must be positive");
  return fin_nominal_hz * fin_nominal_hz / (fref_master_hz + fin_nominal_hz);
}

}  // namespace pllbist::bist
