#pragma once

#include <cstdint>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::bist {

/// Digitally-controlled oscillator for on-chip stimulus generation
/// (paper section 3, Figure 4): a ring counter divides a fast master clock
/// down to a set of discrete frequencies centred on the nominal PLL
/// reference; hopping between set members produces discrete FM.
///
/// Output rising edges land exactly on master-clock ticks (rising edge
/// every `modulus` ticks, falling edge floor(modulus/2) ticks later), and a
/// new modulus is latched only at an output rising edge — the synchronous
/// mux switching that avoids runt pulses. The implementation schedules the
/// edges arithmetically instead of simulating 10^6 master transitions per
/// second; the emitted waveform is tick-for-tick identical to the counter
/// it models.
class Dco : public sim::Component {
 public:
  struct Config {
    double master_clock_hz = 1e6;
    int initial_modulus = 1000;
    double start_time_s = 0.0;
    void validate() const;
  };

  Dco(sim::Circuit& c, sim::SignalId out, const Config& cfg);

  /// Request an output frequency; the nearest achievable modulus is latched
  /// at the next output rising edge. Returns the frequency that will
  /// actually be produced. Throws std::invalid_argument for frequencies
  /// outside (0, master/2].
  double setFrequency(double hz);

  /// Program a modulus directly.
  void setModulus(int modulus);

  /// Frequency corresponding to the currently *pending* modulus.
  [[nodiscard]] double pendingFrequency() const;

  /// Nearest achievable frequency to `hz` (the set-member quantisation).
  [[nodiscard]] double quantize(double hz) const;
  [[nodiscard]] int modulusFor(double hz) const;
  [[nodiscard]] double frequencyOf(int modulus) const;

  /// Local frequency resolution |f(m) - f(m+1)| around output frequency f.
  [[nodiscard]] double resolutionAt(double hz) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Paper eqn (2): achievable resolution at a nominal input frequency
  /// given the master reference:  Fres = Fin^2 / (Fref + Fin).
  static double resolutionEq2(double fin_nominal_hz, double fref_master_hz);

 private:
  void rise(double now);

  sim::Circuit& circuit_;
  sim::SignalId out_;
  Config cfg_;
  double tick_s_ = 0.0;
  std::int64_t tick_ = 0;  ///< master-clock tick index of the next rising edge
  int modulus_ = 0;
  int pending_modulus_ = 0;
};

}  // namespace pllbist::bist
