#include "bist/delay_line.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace pllbist::bist {

void DelayLineModulator::Config::validate() const {
  if (taps < 2) throw std::invalid_argument("DelayLineModulator: need at least 2 taps");
  if (tap_delay_s <= 0.0) throw std::invalid_argument("DelayLineModulator: tap delay must be positive");
  if (steps < 2) throw std::invalid_argument("DelayLineModulator: need at least 2 steps");
  if (nominal_hz <= 0.0) throw std::invalid_argument("DelayLineModulator: nominal must be positive");
  if (marker_pulse_s <= 0.0) throw std::invalid_argument("DelayLineModulator: marker width must be positive");
  // The whole line must stay well inside half a reference period or edges
  // would reorder when hopping taps.
  const double span = static_cast<double>(taps - 1) * tap_delay_s;
  if (span >= 0.25 / nominal_hz)
    throw std::invalid_argument("DelayLineModulator: delay span must be < Tref/4");
}

DelayLineModulator::DelayLineModulator(sim::Circuit& c, sim::SignalId in, sim::SignalId out,
                                       sim::SignalId peak_marker, const Config& cfg)
    : circuit_(c), out_(out), peak_marker_(peak_marker), cfg_(cfg) {
  cfg_.validate();
  current_tap_ = (cfg_.taps - 1) / 2;  // idle mid-line
  // Retime every input edge through the currently selected tap. The base
  // (tap-0) delay models the line's fixed insertion delay.
  c.onChange(in, [this](double now, bool v) {
    const double delay = (1.0 + static_cast<double>(current_tap_)) * cfg_.tap_delay_s;
    circuit_.scheduleSet(out_, now + delay, v);
  });
}

int DelayLineModulator::tapForSlot(int slot) const {
  const int k = ((slot % cfg_.steps) + cfg_.steps) % cfg_.steps;
  const double phase = kTwoPi * static_cast<double>(k) / static_cast<double>(cfg_.steps);
  const double mid = static_cast<double>(cfg_.taps - 1) / 2.0;
  // Inverted: a *larger* delay retards the reference phase, so the tap
  // program is -sin for the output phase (and hence its derivative, the
  // equivalent input frequency deviation) to follow +sin/+cos with the
  // crest where the marker fires.
  const int tap = static_cast<int>(std::lround(mid - mid * std::sin(phase)));
  return std::min(cfg_.taps - 1, std::max(0, tap));
}

double DelayLineModulator::phaseDeviationRad() const {
  const double mid = static_cast<double>(cfg_.taps - 1) / 2.0;
  return mid * cfg_.tap_delay_s * kTwoPi * cfg_.nominal_hz;
}

void DelayLineModulator::start(double modulation_hz) {
  if (modulation_hz <= 0.0)
    throw std::invalid_argument("DelayLineModulator: modulation must be positive");
  modulation_hz_ = modulation_hz;
  running_ = true;
  ++generation_;
  slotBoundary(circuit_.now(), 0);
}

void DelayLineModulator::stop() {
  running_ = false;
  ++generation_;
  current_tap_ = (cfg_.taps - 1) / 2;
}

void DelayLineModulator::slotBoundary(double now, int slot) {
  current_tap_ = tapForSlot(slot);
  const double period = 1.0 / modulation_hz_;
  const double slot_width = period / static_cast<double>(cfg_.steps);
  if (slot == 0) {
    // Equivalent input *frequency* deviation peaks where the phase program
    // has its maximum upward slope — the period start, plus the half-slot
    // ZOH lag of the staircase.
    const unsigned generation = generation_;
    circuit_.scheduleCallback(now + 0.5 * slot_width, [this, generation](double t) {
      if (generation != generation_) return;
      circuit_.scheduleSet(peak_marker_, t, true);
      circuit_.scheduleSet(peak_marker_, t + cfg_.marker_pulse_s, false);
    });
  }
  const unsigned generation = generation_;
  circuit_.scheduleCallback(now + slot_width, [this, generation, slot](double t) {
    if (generation != generation_) return;
    slotBoundary(t, (slot + 1) % cfg_.steps);
  });
}

}  // namespace pllbist::bist
