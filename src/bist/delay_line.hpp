#pragma once

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::bist {

/// Tapped-delay-line phase modulator — the alternative stimulus the paper
/// flags as further work (section 3: "methods relying on tapped delay line
/// techniques can be used for phase modulation... use of delay line
/// techniques in conjunction with the capture circuitry described in this
/// paper is under further investigation").
///
/// The reference passes through a delay line with `taps` equally spaced
/// taps (spacing `tap_delay_s`); a mux selects the tap per program slot,
/// so the output phase follows a sampled sine between 0 and
/// (taps-1)*tap_delay_s of delay. Discrete *phase* modulation, no DCO
/// needed — but the tone amplitude now depends on absolute delay-line
/// calibration, and the equivalent input frequency deviation scales with
/// the modulation frequency (d(phase)/dt), which is the "tone resolution"
/// complication the paper mentions.
///
/// A marker pulse is emitted at the crest of the equivalent input
/// *frequency* deviation (the phase program's maximum upward slope), so
/// the phase counter measures the same quantity as in the FM test.
class DelayLineModulator : public sim::Component {
 public:
  struct Config {
    int taps = 16;              ///< number of selectable taps (>= 2)
    double tap_delay_s = 10e-6; ///< per-tap delay
    int steps = 10;             ///< program slots per modulation period
    double nominal_hz = 1000.0; ///< reference frequency (for validation)
    double marker_pulse_s = 1e-6;
    void validate() const;
  };

  DelayLineModulator(sim::Circuit& c, sim::SignalId in, sim::SignalId out,
                     sim::SignalId peak_marker, const Config& cfg);

  void start(double modulation_hz);
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Peak phase deviation of the program in radians at the reference
  /// frequency: (taps-1)/2 * tap_delay * 2*pi*fref.
  [[nodiscard]] double phaseDeviationRad() const;

  /// Tap selected for program slot k (sampled sine centred mid-line).
  [[nodiscard]] int tapForSlot(int slot) const;

 private:
  void slotBoundary(double now, int slot);

  sim::Circuit& circuit_;
  sim::SignalId out_;
  sim::SignalId peak_marker_;
  Config cfg_;
  double modulation_hz_ = 0.0;
  int current_tap_ = 0;
  bool running_ = false;
  unsigned generation_ = 0;
};

}  // namespace pllbist::bist
