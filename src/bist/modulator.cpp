#include "bist/modulator.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace pllbist::bist {

void FskModulator::Config::validate() const {
  if (steps < 2) throw std::invalid_argument("FskModulator: need at least 2 steps");
  if (nominal_hz <= 0.0) throw std::invalid_argument("FskModulator: nominal must be positive");
  if (deviation_hz <= 0.0 || deviation_hz >= nominal_hz)
    throw std::invalid_argument("FskModulator: deviation must be in (0, nominal)");
  if (marker_pulse_s <= 0.0) throw std::invalid_argument("FskModulator: marker width must be positive");
}

FskModulator::FskModulator(sim::Circuit& c, Dco& dco, sim::SignalId peak_marker, const Config& cfg)
    : circuit_(c), dco_(dco), peak_marker_(peak_marker), cfg_(cfg) {
  cfg_.validate();
  dco_.setFrequency(cfg_.nominal_hz);
}

double FskModulator::programFrequency(int slot) const {
  const int k = ((slot % cfg_.steps) + cfg_.steps) % cfg_.steps;
  const double phase = kTwoPi * static_cast<double>(k) / static_cast<double>(cfg_.steps);
  switch (cfg_.waveform) {
    case StimulusWaveform::MultiToneFsk:
      return cfg_.nominal_hz + cfg_.deviation_hz * std::sin(phase);
    case StimulusWaveform::TwoToneFsk:
      return cfg_.nominal_hz + (k < cfg_.steps / 2 ? cfg_.deviation_hz : -cfg_.deviation_hz);
  }
  return cfg_.nominal_hz;
}

void FskModulator::start(double modulation_hz) {
  if (modulation_hz <= 0.0) throw std::invalid_argument("FskModulator: modulation must be positive");
  modulation_hz_ = modulation_hz;
  running_ = true;
  ++generation_;
  slotBoundary(circuit_.now(), 0);
}

void FskModulator::stop() {
  running_ = false;
  ++generation_;
  dco_.setFrequency(cfg_.nominal_hz);
}

void FskModulator::park() {
  running_ = false;
  ++generation_;
  dco_.setFrequency(cfg_.nominal_hz + cfg_.deviation_hz);
}

void FskModulator::slotBoundary(double now, int slot) {
  dco_.setFrequency(programFrequency(slot));
  const double period = 1.0 / modulation_hz_;
  const double slot_width_now = period / static_cast<double>(cfg_.steps);
  if (slot == 0) {
    // The stepped (zero-order-hold) program's *fundamental* lags the ideal
    // sine by half a slot, so the crest marker fires at a quarter period
    // plus half a slot — the centre of the maximal step. Without this the
    // phase plot carries a systematic 180/steps-degree error.
    const unsigned generation = generation_;
    circuit_.scheduleCallback(now + 0.25 * period + 0.5 * slot_width_now,
                              [this, generation](double t) {
      if (generation != generation_) return;
      circuit_.scheduleSet(peak_marker_, t, true);
      circuit_.scheduleSet(peak_marker_, t + cfg_.marker_pulse_s, false);
    });
  }
  const unsigned generation = generation_;
  const double slot_width = period / static_cast<double>(cfg_.steps);
  circuit_.scheduleCallback(now + slot_width, [this, generation, slot](double t) {
    if (generation != generation_) return;
    slotBoundary(t, (slot + 1) % cfg_.steps);
  });
}

}  // namespace pllbist::bist
