#pragma once

#include <vector>

#include "bist/dco.hpp"
#include "sim/circuit.hpp"

namespace pllbist::bist {

/// Stimulus waveform shapes evaluated in the paper's Figures 11/12.
enum class StimulusWaveform {
  MultiToneFsk,  ///< M-step sampled-sine FSK ("Multi Tone FS")
  TwoToneFsk,    ///< +/- deviation square FSK ("Two Tone FS")
};

/// Drives a Dco through a discrete FM program: each modulation period is
/// divided into `steps` equal slots and the DCO is retargeted at every slot
/// boundary to f_nom + deviation * sin(2*pi*slot/steps) (multi-tone) or to
/// the square-wave equivalent (two-tone). The achievable frequencies are
/// quantised by the DCO modulus, exactly as in the hardware.
///
/// A marker pulse is emitted on `peak_marker` when the *program* crosses its
/// positive crest (slot = steps/4 boundary) — the mux-control decode the
/// Table 2 sequence starts its phase counter from.
class FskModulator : public sim::Component {
 public:
  struct Config {
    StimulusWaveform waveform = StimulusWaveform::MultiToneFsk;
    int steps = 10;                ///< program slots per modulation period
    double nominal_hz = 1000.0;    ///< carrier (PLL reference) frequency
    double deviation_hz = 10.0;    ///< peak program deviation
    double marker_pulse_s = 1e-6;
    void validate() const;
  };

  FskModulator(sim::Circuit& c, Dco& dco, sim::SignalId peak_marker, const Config& cfg);

  /// Begin modulating at `modulation_hz` from the current circuit time
  /// (slot 0 starts immediately). Replaces any running program.
  void start(double modulation_hz);

  /// Stop modulating; the DCO returns to the nominal carrier.
  void stop();

  /// Stop modulating and park the DCO at nominal + deviation (the crest
  /// frequency, held statically) for DC reference measurements.
  void park();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] double modulationHz() const { return modulation_hz_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// The ideal (pre-quantisation) program frequency at slot k.
  [[nodiscard]] double programFrequency(int slot) const;

 private:
  void slotBoundary(double now, int slot);

  sim::Circuit& circuit_;
  Dco& dco_;
  sim::SignalId peak_marker_;
  Config cfg_;
  double modulation_hz_ = 0.0;
  bool running_ = false;
  unsigned generation_ = 0;  ///< invalidates scheduled slots of old programs
};

}  // namespace pllbist::bist
