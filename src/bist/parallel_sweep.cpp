#include "bist/parallel_sweep.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "bist/testbench.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace pllbist::bist {

Status ParallelSweepOptions::check() const {
  if (jobs < 0)
    return Status::makef(Status::Kind::InvalidArgument,
                         "ParallelSweepOptions: jobs = %d, must be >= 0 (0 = auto)", jobs);
  return resilience.check();
}

void ParallelSweepOptions::validate() const { check().throwIfError(); }

uint64_t pointSeed(uint64_t base_seed, std::size_t point_index) {
  // splitmix64 finalizer over base ^ golden-ratio-striped index: adjacent
  // indices and adjacent base seeds land far apart, and index 0 does not
  // collapse onto the base seed.
  uint64_t z = base_seed + (static_cast<uint64_t>(point_index) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SweepOptions singlePointOptions(const SweepOptions& base, std::size_t index) {
  SweepOptions single = base;
  single.modulation_frequencies_hz = {base.modulation_frequencies_hz.at(index)};
  single.jitter_seed = static_cast<unsigned>(pointSeed(base.jitter_seed, index));
  return single;
}

ParallelSweep::ParallelSweep(const pll::PllConfig& config, SweepOptions sweep,
                             ParallelSweepOptions options)
    : config_(config), sweep_(std::move(sweep)), options_(std::move(options)) {
  config_.validate();
  sweep_.check(config_).throwIfError();
  options_.check().throwIfError();
}

ResilientResponse ParallelSweep::run() {
  if (used_) throw std::logic_error("ParallelSweep::run: engine already used");
  used_ = true;
  PLLBIST_SPAN("farm.run");
  const auto wall_start = std::chrono::steady_clock::now();

  const std::vector<double>& freqs = sweep_.modulation_frequencies_hz;
  const std::size_t n = freqs.size();
  std::vector<ResilientResponse> per_point(n);

  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  auto worker = [&] {
    obs::ScopedSpan worker_span("farm.worker");
    for (;;) {
      // Claim-then-check would tally a claimed-but-never-run point as an
      // engine failure; checking first keeps "never claimed" and "claimed
      // and cancelled in flight" the two only post-stop outcomes.
      if (stop_.stopRequested()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        ResilientSweep engine(config_, singlePointOptions(sweep_, i), options_.resilience);
        engine.attachStop(&stop_);
        if (on_point_testbench_)
          engine.onTestbench([this, i](SweepTestbench& bench) { on_point_testbench_(i, bench); });
        per_point[i] = engine.run();
      } catch (const std::exception& e) {
        per_point[i].status = Status::makef(Status::Kind::Internal,
                                            "point %zu (fm = %g Hz): engine threw: %s", i, freqs[i],
                                            e.what());
      }
      if (progress_) {
        // The merged view of a point is exactly its bench-local point (see
        // the isolation model in the header), so it can be reported as soon
        // as it lands — possibly out of point order.
        const MeasuredPoint* p =
            per_point[i].response.points.empty() ? nullptr : &per_point[i].response.points.front();
        std::lock_guard<std::mutex> guard(progress_mutex);
        if (p) progress_(i, *p);
      }
    }
  };

  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t jobs = options_.jobs > 0 ? static_cast<std::size_t>(options_.jobs)
                                       : static_cast<std::size_t>(hw > 0 ? hw : 1);
  jobs = std::min(jobs, n);
  obs::MetricsRegistry::global().gauge("bist.farm.jobs").set(static_cast<double>(jobs));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  const bool stopped = stop_.stopRequested();

  // Deterministic merge, strictly in point-index order regardless of which
  // worker finished when.
  ResilientResponse out;
  for (std::size_t i = 0; i < n; ++i) {
    ResilientResponse& r = per_point[i];
    if (out.response.nominal_vco_hz == 0.0 && r.response.nominal_vco_hz != 0.0) {
      out.response.nominal_vco_hz = r.response.nominal_vco_hz;
      out.response.static_reference_deviation_hz = r.response.static_reference_deviation_hz;
    }
    out.bench.add(r.bench);
    out.breaker_open = out.breaker_open || r.breaker_open;
    if (r.response.points.empty()) {
      // The engine never produced its point: a stall during the nominal/DC
      // prelude, a thrown exception, or — after a stop — a point no worker
      // ever claimed. Synthesise a Dropped point carrying the reason so
      // the merged sweep stays fully labelled, one entry per requested
      // frequency.
      MeasuredPoint p;
      p.modulation_hz = freqs[i];
      p.timed_out = true;
      p.quality = PointQuality::Dropped;
      p.attempts = 0;
      if (!r.status.ok()) {
        p.status = r.status;
      } else if (stopped) {
        p.status = Status::makef(Status::Kind::Cancelled,
                                 "point %zu (fm = %g Hz): stop requested before a worker claimed "
                                 "the point",
                                 i, freqs[i]);
      } else {
        p.status = Status::makef(Status::Kind::Internal,
                                 "point %zu (fm = %g Hz): engine produced no point", i, freqs[i]);
      }
      TestSequencer::PointResult raw;
      raw.modulation_hz = freqs[i];
      raw.timed_out = true;
      raw.status = p.status;
      ++out.report.points_total;
      ++out.report.dropped;
      out.response.points.push_back(std::move(p));
      out.response.raw.push_back(std::move(raw));
    } else {
      out.report.points_total += r.report.points_total;
      out.report.ok += r.report.ok;
      out.report.retried += r.report.retried;
      out.report.degraded += r.report.degraded;
      out.report.dropped += r.report.dropped;
      out.report.attempts_total += r.report.attempts_total;
      out.report.relocks += r.report.relocks;
      out.report.relock_failures += r.report.relock_failures;
      out.response.points.push_back(std::move(r.response.points.front()));
      out.response.raw.push_back(std::move(r.response.raw.front()));
    }
    // Total simulated seconds across the farm; with wall_time_s below this
    // is the recorded sim-vs-wall speedup of the parallel execution.
    out.report.sim_time_s += r.report.sim_time_s;
    if (out.status.ok() && !r.status.ok()) out.status = r.status;
  }
  if (stopped && out.status.ok())
    out.status = Status::makef(Status::Kind::Cancelled,
                               "stop requested; %d of %zu points measured", out.report.usable(), n);
  out.report.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return out;
}

}  // namespace pllbist::bist
