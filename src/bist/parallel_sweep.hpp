#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "bist/resilient_sweep.hpp"
#include "common/status.hpp"
#include "pll/config.hpp"

namespace pllbist::bist {

/// Policy knobs of the parallel point-farm executor.
struct ParallelSweepOptions {
  /// Worker threads. 0 = one per hardware thread; always clamped to the
  /// number of sweep points. 1 is the serial reference execution — by
  /// contract it produces bit-identical results to any other job count.
  int jobs = 0;
  /// Retry/relock/degrade policy applied to every point's engine.
  ResilientSweepOptions resilience;

  /// Structured check; every rejection names the offending field and value.
  [[nodiscard]] Status check() const;
  /// check().throwIfError() — kept for the exception-based API.
  void validate() const;
};

/// Deterministic per-point seed derivation (splitmix64 over the base seed
/// and the point index). The farm re-seeds each point's stimulus jitter
/// RNG with this, and test/campaign hooks are expected to use it for
/// per-point FaultInjector seeds, so results never depend on which worker
/// ran a point or in what order.
[[nodiscard]] uint64_t pointSeed(uint64_t base_seed, std::size_t point_index);

/// The base sweep restricted to point `index`: one modulation frequency,
/// jitter RNG re-seeded via pointSeed(). This is the options recipe every
/// farm worker runs; exposed so tests can reproduce a single point of a
/// parallel sweep in isolation, bit-exactly.
[[nodiscard]] SweepOptions singlePointOptions(const SweepOptions& base, std::size_t index);

/// Parallel point-farm sweep executor. A full closed-loop sweep simulates
/// one independent locked-loop measurement per FM frequency point; since
/// every point starts from its own lock acquisition they are embarrassingly
/// parallel. The farm builds one SweepTestbench (own sim::Circuit, own
/// ResilientSweep engine, own per-point RNG seeds) per frequency point and
/// runs them on a worker pool, then merges per-point results into one
/// order-stable MeasuredResponse + combined SweepQualityReport.
///
/// Isolation model: each point measures its own nominal carrier and eqn (7)
/// DC reference inside its own circuit, and its deviation is referenced to
/// that same bench's nominal — so a point's numbers are independent of
/// every other point. The merged response carries point 0's nominal and
/// static reference (all benches are identical up to the per-point jitter
/// seed). Note this differs from the shared-bench ResilientSweep, where
/// later points inherit the loop state their predecessors left behind; the
/// farm's contract is instead jobs-count invariance:
///
/// Determinism: for a fixed configuration and seed set, run() produces
/// bit-identical points, report counters and statuses for every value of
/// `jobs` — only wall_time_s varies. A fatal failure on one point never
/// stops the others; it is recorded on that point and as the sweep status.
class ParallelSweep {
 public:
  ParallelSweep(const pll::PllConfig& config, SweepOptions sweep,
                ParallelSweepOptions options = {});

  /// Fired on the owning worker's thread once a point's bench is
  /// assembled, before its lock wait: (point_index, bench). Attach
  /// per-point fault injection here, seeding with pointSeed() to keep the
  /// jobs-count invariance. The callback must only touch that bench.
  void onPointTestbench(std::function<void(std::size_t, SweepTestbench&)> cb) {
    on_point_testbench_ = std::move(cb);
  }

  /// Fired (serialised, but possibly out of point order) as each point's
  /// final classification lands: (point_index, point).
  void onPointMeasured(std::function<void(std::size_t, const MeasuredPoint&)> cb) {
    progress_ = std::move(cb);
  }

  /// Cooperative stop, callable from any thread (including a progress
  /// callback or a signal-handling path via chainStop). Workers abandon
  /// their in-flight point at the next poll, claim nothing further, and
  /// join; never-claimed points merge as Dropped/Cancelled so the quality
  /// report still accounts for every requested frequency exactly once.
  void requestStop() { stop_.requestStop(); }

  /// Also honour `upstream` (e.g. the process-global signal token). Call
  /// before run().
  void chainStop(const StopSource* upstream) { stop_.chainTo(upstream); }

  /// Run the sweep. May be called once per instance.
  ResilientResponse run();

 private:
  pll::PllConfig config_;
  SweepOptions sweep_;
  ParallelSweepOptions options_;
  std::function<void(std::size_t, SweepTestbench&)> on_point_testbench_;
  std::function<void(std::size_t, const MeasuredPoint&)> progress_;
  StopSource stop_;
  bool used_ = false;
};

}  // namespace pllbist::bist
