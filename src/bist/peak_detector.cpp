#include "bist/peak_detector.hpp"

#include <stdexcept>

namespace pllbist::bist {

void PeakDetectorDelays::validate() const {
  if (clock_delay_s <= 0.0 || inverter_delay_s <= 0.0 || latch_delay_s <= 0.0)
    throw std::invalid_argument("PeakDetectorDelays: delays must be positive");
  if (inverter_delay_s <= clock_delay_s)
    throw std::invalid_argument(
        "PeakDetectorDelays: inverter delay must exceed clock delay so the sample "
        "looks past the dead-zone glitch");
}

PeakDetector::PeakDetector(sim::Circuit& c, sim::SignalId ref, sim::SignalId fb,
                           const pll::PfdDelays& pfd_delays, const PeakDetectorDelays& delays,
                           const std::string& prefix)
    : circuit_(c),
      clk_delayed_(c.addSignal(prefix + ".clk")),
      dn_inverted_(c.addSignal(prefix + ".dnb", true)),
      mfreq_(c.addSignal(prefix + ".mfreq")) {
  delays.validate();
  pfd_ = std::make_unique<pll::Pfd>(c, ref, fb, pfd_delays, prefix + ".pfd");
  clock_buffer_ = std::make_unique<sim::Buffer>(c, pfd_->up(), clk_delayed_, delays.clock_delay_s);
  data_inverter_ = std::make_unique<sim::Inverter>(c, pfd_->dn(), dn_inverted_, delays.inverter_delay_s);
  sampler_ = std::make_unique<sim::DFlipFlop>(c, clk_delayed_, dn_inverted_, mfreq_,
                                              delays.latch_delay_s);
}

void PeakDetector::onMaxFrequency(sim::Circuit::EdgeCallback cb) {
  circuit_.onFallingEdge(mfreq_, std::move(cb));
}

void PeakDetector::onMinFrequency(sim::Circuit::EdgeCallback cb) {
  circuit_.onRisingEdge(mfreq_, std::move(cb));
}

}  // namespace pllbist::bist
