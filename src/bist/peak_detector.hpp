#pragma once

#include <memory>
#include <string>

#include "pll/pfd.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::bist {

/// Timing of the peak-detector support gates around the monitor PFD.
struct PeakDetectorDelays {
  double clock_delay_s = 2e-9;     ///< buffer from PFDUP to the sampling clock
  double inverter_delay_s = 12e-9; ///< delay+invert on PFDDN (the Figure 7 trick)
  double latch_delay_s = 3e-9;     ///< sampling flop clk->q
  void validate() const;
};

/// The paper's novel output-frequency peak detector (section 4.2, Figure 7).
///
/// A second, monitor-only PFD watches PLLREF against PLLFB. In a locked
/// CP-PLL the capacitor voltage integrates the phase error, so the VCO
/// frequency is at an extremum exactly when the phase error crosses zero —
/// i.e. when the lead/lag relationship between the PFD inputs reverses.
/// A flop samples the delayed-and-inverted PFDDN on (delayed) PFDUP rising
/// edges: the inverter delay makes the sample look *backwards* past the
/// dead-zone glitch, so near-coincident edges cannot corrupt it.
///
/// The resulting MFREQ net is high while PLLREF leads (VCO frequency
/// rising); its falling edge marks the output-frequency *maximum*, the
/// rising edge the minimum. Subscribers use those edges to stop the phase
/// counter and trigger loop hold (Table 2 stages 2-3).
class PeakDetector : public sim::Component {
 public:
  PeakDetector(sim::Circuit& c, sim::SignalId ref, sim::SignalId fb,
               const pll::PfdDelays& pfd_delays, const PeakDetectorDelays& delays,
               const std::string& prefix = "peakdet");

  /// High while PLLREF leads (output frequency increasing).
  [[nodiscard]] sim::SignalId mfreq() const { return mfreq_; }
  /// Monitor-PFD outputs, exposed for the Figure 8 waveform dumps.
  [[nodiscard]] sim::SignalId monitorUp() const { return pfd_->up(); }
  [[nodiscard]] sim::SignalId monitorDn() const { return pfd_->dn(); }

  /// Subscribe to output-frequency extremum events.
  void onMaxFrequency(sim::Circuit::EdgeCallback cb);
  void onMinFrequency(sim::Circuit::EdgeCallback cb);

 private:
  sim::Circuit& circuit_;
  sim::SignalId clk_delayed_;
  sim::SignalId dn_inverted_;
  sim::SignalId mfreq_;
  std::unique_ptr<pll::Pfd> pfd_;
  std::unique_ptr<sim::Buffer> clock_buffer_;
  std::unique_ptr<sim::Inverter> data_inverter_;
  std::unique_ptr<sim::DFlipFlop> sampler_;
};

}  // namespace pllbist::bist
