#include "bist/resilient_sweep.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>

#include "bist/telemetry.hpp"
#include "bist/testbench.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/circuit.hpp"
#include "sim/fault_injector.hpp"

namespace pllbist::bist {

namespace {
SweepTelemetry& telemetry() { return sweepTelemetry(); }
}  // namespace

Status ResilientSweepOptions::check() const {
  using K = Status::Kind;
  if (max_attempts < 1)
    return Status::makef(K::InvalidArgument, "ResilientSweepOptions: max_attempts = %d, must be "
                         ">= 1", max_attempts);
  if (settle_backoff < 1.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: settle_backoff = %g, must be >= 1", settle_backoff);
  if (gate_backoff < 1.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: gate_backoff = %g, must be >= 1", gate_backoff);
  if (relock_grace_periods < 0.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: relock_grace_periods = %g, must be >= 0",
                         relock_grace_periods);
  if (relock_wait_periods <= 0.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: relock_wait_periods = %g, must be positive",
                         relock_wait_periods);
  if (lock_threshold_s < 0.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: lock_threshold_s = %g, must be >= 0",
                         lock_threshold_s);
  if (lock_cycles < 1)
    return Status::makef(K::InvalidArgument, "ResilientSweepOptions: lock_cycles = %d, must be "
                         ">= 1", lock_cycles);
  if (point_budget_s < 0.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: point_budget_s = %g, must be >= 0 (0 = unlimited)",
                         point_budget_s);
  if (relock_breaker < 0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: relock_breaker = %d, must be >= 0 (0 = disabled)",
                         relock_breaker);
  return Status();
}

void ResilientSweepOptions::validate() const { check().throwIfError(); }

std::string SweepQualityReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%d points: %d ok, %d retried, %d degraded, %d dropped; %d attempts, "
                "%d relock%s (%d failed); %.3g s simulated in %.3g s wall",
                points_total, ok, retried, degraded, dropped, attempts_total, relocks,
                relocks == 1 ? "" : "s", relock_failures, sim_time_s, wall_time_s);
  return buf;
}

namespace {

TestSequencer::Options escalated(const TestSequencer::Options& base,
                                 const ResilientSweepOptions& r, int attempt) {
  TestSequencer::Options opt = base;
  const double f = std::pow(r.settle_backoff, attempt);
  opt.settle_periods = static_cast<int>(std::ceil(base.settle_periods * f));
  opt.timeout_periods = base.timeout_periods * f;
  // The integer ceil on settle can nudge the settle+average floor past the
  // scaled timeout for near-degenerate bases; keep the watchdog valid.
  opt.timeout_periods = std::max(
      opt.timeout_periods, static_cast<double>(opt.settle_periods + base.average_periods) + 1.0);
  opt.freq_gate_s = base.freq_gate_s * std::pow(r.gate_backoff, attempt);
  return opt;
}

}  // namespace

ResilientSweep::ResilientSweep(const pll::PllConfig& config, SweepOptions sweep,
                               ResilientSweepOptions resilience)
    : config_(config), sweep_(std::move(sweep)), resilience_(std::move(resilience)) {
  config_.validate();
  sweep_.check(config_).throwIfError();
  resilience_.check().throwIfError();
}

ResilientResponse ResilientSweep::run() {
  if (used_) throw std::logic_error("ResilientSweep::run: engine already used");
  used_ = true;
  PLLBIST_SPAN("sweep.run");
  const auto wall_start = std::chrono::steady_clock::now();

  const std::unique_ptr<SweepTestbench> bench_ptr =
      TestbenchFactory(config_, sweep_, resilience_.lock_threshold_s, resilience_.lock_cycles)
          .make();
  SweepTestbench& bench = *bench_ptr;
  if (on_testbench_) on_testbench_(bench);
  sim::Circuit& c = bench.circuit();
  TestSequencer& seq = bench.sequencer();
  pll::LockDetector& lock = bench.lockDetector();
  const double fn_hz = radPerSecToHz(config_.secondOrder().omega_n_rad_per_s);

  ResilientResponse out;
  // stamp runs exactly once per exit path, so it also re-homes the bench's
  // kernel/fault counters onto the metrics registry exactly once. It also
  // captures the same counters into out.bench, the per-engine (and thus
  // deterministic) view the campaign journal records per point.
  auto stamp = [&] {
    out.report.sim_time_s = c.now();
    out.report.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    out.bench.events_processed = c.processedEventCount();
    out.bench.events_delivered = c.deliveredEventCount();
    out.bench.events_dropped = c.droppedEventCount();
    out.bench.events_delayed = c.delayedEventCount();
    out.bench.events_swallowed = c.swallowedEventCount();
    if (const sim::FaultInjector* injector = bench.installedFaultInjector()) {
      const sim::FaultInjector::Stats& s = injector->stats();
      out.bench.fault_benches = 1;
      out.bench.faults_considered = s.considered;
      out.bench.faults_dropped = s.dropped;
      out.bench.faults_delayed = s.delayed;
      out.bench.faults_glitches = s.glitches;
    }
    publishBenchCounters(bench);
  };

  // Cooperative interruption: the stop token and the per-point wall budget
  // are polled every kInterruptStride kernel steps (and between sim-time
  // slices of the blocking waits), so a stop or an expired budget takes
  // effect within a bounded number of events — never at the mercy of a
  // wedged loop.
  enum class StepOutcome { Done, Deadline, Stall, Stopped, OverBudget };
  constexpr int kInterruptStride = 2048;
  constexpr auto kNoWallDeadline = std::chrono::steady_clock::time_point::max();
  std::chrono::steady_clock::time_point point_wall_deadline = kNoWallDeadline;
  auto interrupted = [&]() -> StepOutcome {
    if (stop_ != nullptr && stop_->stopRequested()) return StepOutcome::Stopped;
    if (point_wall_deadline != kNoWallDeadline &&
        std::chrono::steady_clock::now() >= point_wall_deadline)
      return StepOutcome::OverBudget;
    return StepOutcome::Done;
  };
  // Step until `flag`, a sim deadline, an interruption, or a dry queue.
  auto stepUntil = [&](const bool& flag, double deadline_s) {
    int countdown = kInterruptStride;
    while (!flag) {
      if (c.now() >= deadline_s) return StepOutcome::Deadline;
      if (--countdown <= 0) {
        countdown = kInterruptStride;
        if (const StepOutcome o = interrupted(); o != StepOutcome::Done) return o;
      }
      if (!c.step()) return StepOutcome::Stall;
    }
    return StepOutcome::Done;
  };
  auto stepUntilLocked = [&](double deadline_s) {
    int countdown = kInterruptStride;
    while (!lock.isLocked()) {
      if (c.now() >= deadline_s) return StepOutcome::Deadline;
      if (--countdown <= 0) {
        countdown = kInterruptStride;
        if (const StepOutcome o = interrupted(); o != StepOutcome::Done) return o;
      }
      if (!c.step()) return StepOutcome::Stall;
    }
    return StepOutcome::Done;
  };
  // Stop-aware replacement for c.run(t_end): advance in bounded sim-time
  // slices so an interruption takes effect mid-wait, not at its end.
  auto advanceTo = [&](double t_end) {
    const double slice = std::max((t_end - c.now()) / 64.0, 1e-12);
    while (c.now() < t_end) {
      if (const StepOutcome o = interrupted(); o != StepOutcome::Done) return o;
      c.run(std::min(c.now() + slice, t_end));
    }
    return StepOutcome::Done;
  };
  constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

  const std::vector<double>& freqs = sweep_.modulation_frequencies_hz;
  // Record an unattempted point (stop or open breaker): Dropped, zero
  // attempts, the given status. Keeps points_total == requested count on
  // every exit path, so partial results are never silently truncated.
  auto skipPoint = [&](std::size_t i, Status status) {
    MeasuredPoint p;
    p.modulation_hz = freqs[i];
    p.timed_out = true;
    p.quality = PointQuality::Dropped;
    p.attempts = 0;
    p.status = std::move(status);
    TestSequencer::PointResult raw;
    raw.modulation_hz = freqs[i];
    raw.timed_out = true;
    raw.status = p.status;
    ++out.report.points_total;
    ++out.report.dropped;
    telemetry().points_dropped.increment();
    out.response.points.push_back(std::move(p));
    out.response.raw.push_back(std::move(raw));
    if (progress_) progress_(out.response.points.back());
  };
  auto cancelAllFrom = [&](std::size_t first, const char* where) {
    for (std::size_t i = first; i < freqs.size(); ++i)
      skipPoint(i, Status::makef(Status::Kind::Cancelled,
                                 "point %zu (fm = %g Hz): stop requested %s", i, freqs[i], where));
    if (out.status.ok())
      out.status = Status::makef(Status::Kind::Cancelled,
                                 "stop requested at t = %g s; %zu of %zu points completed", c.now(),
                                 first, freqs.size());
  };

  // Initial acquisition, nominal carrier, and the eqn (7) DC reference.
  // These are fatal if they stall (nothing downstream is measurable), but a
  // dead loop merely yields a meaningless nominal — the per-point machinery
  // below still runs and labels every point.
  if (advanceTo(sweep_.lock_wait_s) == StepOutcome::Stopped) {
    cancelAllFrom(0, "during the initial lock wait");
    stamp();
    return out;
  }

  bool nominal_done = false;
  seq.measureNominal([&](double hz) {
    out.response.nominal_vco_hz = hz;
    nominal_done = true;
  });
  switch (stepUntil(nominal_done, kNoDeadline)) {
    case StepOutcome::Stall:
      out.status = Status::makef(Status::Kind::SimulationStall,
                                 "event queue ran dry at t = %g s during the nominal count", c.now());
      telemetry().stalls.increment();
      stamp();
      return out;
    case StepOutcome::Stopped:
      cancelAllFrom(0, "during the nominal count");
      stamp();
      return out;
    default: break;
  }

  if (sweep_.stimulus != StimulusKind::DelayLinePm) {
    bool ref_done = false;
    seq.measureStaticReference(sweep_.static_settle_s, [&](double hz) {
      out.response.static_reference_deviation_hz = hz - out.response.nominal_vco_hz;
      ref_done = true;
    });
    switch (stepUntil(ref_done, kNoDeadline)) {
      case StepOutcome::Stall:
        out.status =
            Status::makef(Status::Kind::SimulationStall,
                          "event queue ran dry at t = %g s during the DC reference", c.now());
        telemetry().stalls.increment();
        stamp();
        return out;
      case StepOutcome::Stopped:
        cancelAllFrom(0, "during the DC reference");
        stamp();
        return out;
      default: break;
    }
  }

  const TestSequencer::Options base = seq.options();
  const double relock_wait_s = resilience_.relock_wait_periods / fn_hz;
  int consecutive_relock_failures = 0;
  bool breaker_tripped = false;
  bool cancelled = false;

  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double fm = freqs[i];
    if (!cancelled && stop_ != nullptr && stop_->stopRequested()) cancelled = true;
    if (cancelled) {
      skipPoint(i, Status::makef(Status::Kind::Cancelled,
                                 "point %zu (fm = %g Hz): stop requested before measurement", i, fm));
      continue;
    }
    if (breaker_tripped) {
      skipPoint(i, Status::makef(Status::Kind::RelockFailed,
                                 "point %zu (fm = %g Hz): relock circuit breaker open after %d "
                                 "consecutive relock failures; point not attempted",
                                 i, fm, consecutive_relock_failures));
      continue;
    }
    obs::ScopedSpan point_span("point.measure");
    const auto point_start = std::chrono::steady_clock::now();
    if (resilience_.point_budget_s > 0.0)
      point_wall_deadline =
          point_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(resilience_.point_budget_s));
    MeasuredPoint p;
    p.modulation_hz = fm;
    TestSequencer::PointResult last;
    bool measured = false;
    bool relocked = false;
    bool relock_failed = false;
    bool fatal_stall = false;
    bool point_cancelled = false;
    bool over_budget = false;
    int attempts_used = 0;

    for (int attempt = 0; attempt < resilience_.max_attempts; ++attempt) {
      obs::ScopedSpan attempt_span("point.attempt");
      if (attempt > 0) PLLBIST_INSTANT("bist.retry");
      seq.setOptions(escalated(base, resilience_, attempt));
      if (on_attempt_start_) on_attempt_start_(i, attempt, bench);
      ++out.report.attempts_total;
      telemetry().attempts.increment();
      attempts_used = attempt + 1;

      bool done = false;
      seq.measurePoint(fm, [&](TestSequencer::PointResult r) {
        last = std::move(r);
        done = true;
      });
      const StepOutcome measure = stepUntil(done, kNoDeadline);
      if (measure == StepOutcome::Stall) {
        last.timed_out = true;
        last.status = Status::makef(Status::Kind::SimulationStall,
                                    "event queue ran dry at t = %g s measuring fm = %g Hz", c.now(),
                                    fm);
        fatal_stall = true;
        break;
      }
      if (measure == StepOutcome::Stopped) {
        point_cancelled = true;
        break;
      }
      if (measure == StepOutcome::OverBudget) {
        over_budget = true;
        break;
      }
      if (!last.timed_out) {
        measured = true;
        break;
      }

      // Failed attempt: park the stimulus and make sure the loop is still
      // alive before burning another attempt. The lock detector is reset
      // because modulation legitimately widens PFD pulses — only a loop
      // that stays unlocked past the grace window has actually lost lock.
      bench.stopStimulus();
      lock.reset();
      const StepOutcome grace =
          stepUntilLocked(c.now() + resilience_.relock_grace_periods / fn_hz);
      if (grace == StepOutcome::Stall) {
        fatal_stall = true;
        break;
      }
      if (grace == StepOutcome::Stopped) {
        point_cancelled = true;
        break;
      }
      if (grace == StepOutcome::OverBudget) {
        over_budget = true;
        break;
      }
      if (grace == StepOutcome::Deadline) {
        // Declared lock loss: bounded relock-and-resume.
        const StepOutcome relock = stepUntilLocked(c.now() + relock_wait_s);
        if (relock == StepOutcome::Stall) {
          fatal_stall = true;
          break;
        }
        if (relock == StepOutcome::Stopped) {
          point_cancelled = true;
          break;
        }
        if (relock == StepOutcome::OverBudget) {
          over_budget = true;
          break;
        }
        if (relock == StepOutcome::Done) {
          ++out.report.relocks;
          telemetry().relocks.increment();
          PLLBIST_INSTANT("bist.relock");
          relocked = true;
        } else {
          ++out.report.relock_failures;
          telemetry().relock_failures.increment();
          PLLBIST_INSTANT("bist.relock_failed");
          relock_failed = true;
          break;  // further attempts are futile on an unlocked loop
        }
      }
    }
    point_wall_deadline = kNoWallDeadline;

    p.attempts = attempts_used;
    if (measured) {
      consecutive_relock_failures = 0;
      p.deviation_hz = last.held_frequency_hz - out.response.nominal_vco_hz;
      p.phase_deg = last.phase_deg;
      p.timed_out = false;
      if (relocked || attempts_used > 2) {
        p.quality = PointQuality::Degraded;
        ++out.report.degraded;
        telemetry().points_degraded.increment();
      } else if (attempts_used == 2) {
        p.quality = PointQuality::Retried;
        ++out.report.retried;
        telemetry().points_retried.increment();
      } else {
        p.quality = PointQuality::Ok;
        ++out.report.ok;
        telemetry().points_ok.increment();
      }
      if (sweep_.stimulus == StimulusKind::DelayLinePm) {
        p.unity_gain_deviation_hz =
            bench.pmThetaDevRad() * fm * static_cast<double>(config_.divider_n);
      }
    } else {
      p.timed_out = true;
      p.quality = PointQuality::Dropped;
      ++out.report.dropped;
      telemetry().points_dropped.increment();
      if (point_cancelled) {
        cancelled = true;
        p.status = Status::makef(Status::Kind::Cancelled,
                                 "point %zu (fm = %g Hz): stop requested at t = %g s "
                                 "mid-measurement (attempt %d abandoned)",
                                 i, fm, c.now(), attempts_used);
      } else if (over_budget) {
        consecutive_relock_failures = 0;
        p.status = Status::makef(Status::Kind::DeadlineExceeded,
                                 "point %zu (fm = %g Hz): wall budget %g s exceeded on attempt %d",
                                 i, fm, resilience_.point_budget_s, attempts_used);
      } else if (relock_failed) {
        ++consecutive_relock_failures;
        if (resilience_.relock_breaker > 0 &&
            consecutive_relock_failures >= resilience_.relock_breaker) {
          breaker_tripped = true;
          out.breaker_open = true;
        }
        p.status = Status::makef(
            Status::Kind::RelockFailed,
            "point %zu (fm = %g Hz): loop failed to re-lock within %g s after a failed attempt; "
            "last failure: %s",
            i, fm, relock_wait_s, last.status.toString().c_str());
      } else if (fatal_stall) {
        p.status = last.status;
      } else {
        consecutive_relock_failures = 0;
        p.status = Status::makef(Status::Kind::RetryExhausted,
                                 "point %zu (fm = %g Hz): all %d attempts failed; last failure: %s",
                                 i, fm, attempts_used, last.status.toString().c_str());
      }
    }
    p.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - point_start).count();
    telemetry().point_wall.observe(p.wall_time_s);
    ++out.report.points_total;
    out.response.points.push_back(p);
    out.response.raw.push_back(std::move(last));
    if (progress_) progress_(out.response.points.back());

    if (fatal_stall) {
      out.status = out.response.points.back().status;
      telemetry().stalls.increment();
      break;
    }
  }

  if (cancelled && out.status.ok())
    out.status =
        Status::makef(Status::Kind::Cancelled, "stop requested at t = %g s; %d of %zu points "
                      "measured", c.now(), out.report.usable(), freqs.size());
  stamp();
  return out;
}

}  // namespace pllbist::bist
