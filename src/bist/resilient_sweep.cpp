#include "bist/resilient_sweep.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>

#include "bist/telemetry.hpp"
#include "bist/testbench.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace pllbist::bist {

namespace {
SweepTelemetry& telemetry() { return sweepTelemetry(); }
}  // namespace

Status ResilientSweepOptions::check() const {
  using K = Status::Kind;
  if (max_attempts < 1)
    return Status::makef(K::InvalidArgument, "ResilientSweepOptions: max_attempts = %d, must be "
                         ">= 1", max_attempts);
  if (settle_backoff < 1.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: settle_backoff = %g, must be >= 1", settle_backoff);
  if (gate_backoff < 1.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: gate_backoff = %g, must be >= 1", gate_backoff);
  if (relock_grace_periods < 0.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: relock_grace_periods = %g, must be >= 0",
                         relock_grace_periods);
  if (relock_wait_periods <= 0.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: relock_wait_periods = %g, must be positive",
                         relock_wait_periods);
  if (lock_threshold_s < 0.0)
    return Status::makef(K::InvalidArgument,
                         "ResilientSweepOptions: lock_threshold_s = %g, must be >= 0",
                         lock_threshold_s);
  if (lock_cycles < 1)
    return Status::makef(K::InvalidArgument, "ResilientSweepOptions: lock_cycles = %d, must be "
                         ">= 1", lock_cycles);
  return Status();
}

void ResilientSweepOptions::validate() const { check().throwIfError(); }

std::string SweepQualityReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%d points: %d ok, %d retried, %d degraded, %d dropped; %d attempts, "
                "%d relock%s (%d failed); %.3g s simulated in %.3g s wall",
                points_total, ok, retried, degraded, dropped, attempts_total, relocks,
                relocks == 1 ? "" : "s", relock_failures, sim_time_s, wall_time_s);
  return buf;
}

namespace {

TestSequencer::Options escalated(const TestSequencer::Options& base,
                                 const ResilientSweepOptions& r, int attempt) {
  TestSequencer::Options opt = base;
  const double f = std::pow(r.settle_backoff, attempt);
  opt.settle_periods = static_cast<int>(std::ceil(base.settle_periods * f));
  opt.timeout_periods = base.timeout_periods * f;
  // The integer ceil on settle can nudge the settle+average floor past the
  // scaled timeout for near-degenerate bases; keep the watchdog valid.
  opt.timeout_periods = std::max(
      opt.timeout_periods, static_cast<double>(opt.settle_periods + base.average_periods) + 1.0);
  opt.freq_gate_s = base.freq_gate_s * std::pow(r.gate_backoff, attempt);
  return opt;
}

}  // namespace

ResilientSweep::ResilientSweep(const pll::PllConfig& config, SweepOptions sweep,
                               ResilientSweepOptions resilience)
    : config_(config), sweep_(std::move(sweep)), resilience_(std::move(resilience)) {
  config_.validate();
  sweep_.check(config_).throwIfError();
  resilience_.check().throwIfError();
}

ResilientResponse ResilientSweep::run() {
  if (used_) throw std::logic_error("ResilientSweep::run: engine already used");
  used_ = true;
  PLLBIST_SPAN("sweep.run");
  const auto wall_start = std::chrono::steady_clock::now();

  const std::unique_ptr<SweepTestbench> bench_ptr =
      TestbenchFactory(config_, sweep_, resilience_.lock_threshold_s, resilience_.lock_cycles)
          .make();
  SweepTestbench& bench = *bench_ptr;
  if (on_testbench_) on_testbench_(bench);
  sim::Circuit& c = bench.circuit();
  TestSequencer& seq = bench.sequencer();
  pll::LockDetector& lock = bench.lockDetector();
  const double fn_hz = radPerSecToHz(config_.secondOrder().omega_n_rad_per_s);

  ResilientResponse out;
  // stamp runs exactly once per exit path, so it also re-homes the bench's
  // kernel/fault counters onto the metrics registry exactly once.
  auto stamp = [&] {
    out.report.sim_time_s = c.now();
    out.report.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    publishBenchCounters(bench);
  };
  // Step until `flag`, a deadline, or a dry queue.
  enum class StepOutcome { Done, Deadline, Stall };
  auto stepUntil = [&](const bool& flag, double deadline_s) {
    while (!flag) {
      if (c.now() >= deadline_s) return StepOutcome::Deadline;
      if (!c.step()) return StepOutcome::Stall;
    }
    return StepOutcome::Done;
  };
  auto stepUntilLocked = [&](double deadline_s) {
    while (!lock.isLocked()) {
      if (c.now() >= deadline_s) return StepOutcome::Deadline;
      if (!c.step()) return StepOutcome::Stall;
    }
    return StepOutcome::Done;
  };
  constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

  // Initial acquisition, nominal carrier, and the eqn (7) DC reference.
  // These are fatal if they stall (nothing downstream is measurable), but a
  // dead loop merely yields a meaningless nominal — the per-point machinery
  // below still runs and labels every point.
  c.run(sweep_.lock_wait_s);

  bool nominal_done = false;
  seq.measureNominal([&](double hz) {
    out.response.nominal_vco_hz = hz;
    nominal_done = true;
  });
  if (stepUntil(nominal_done, kNoDeadline) == StepOutcome::Stall) {
    out.status = Status::makef(Status::Kind::SimulationStall,
                               "event queue ran dry at t = %g s during the nominal count", c.now());
    telemetry().stalls.increment();
    stamp();
    return out;
  }

  if (sweep_.stimulus != StimulusKind::DelayLinePm) {
    bool ref_done = false;
    seq.measureStaticReference(sweep_.static_settle_s, [&](double hz) {
      out.response.static_reference_deviation_hz = hz - out.response.nominal_vco_hz;
      ref_done = true;
    });
    if (stepUntil(ref_done, kNoDeadline) == StepOutcome::Stall) {
      out.status = Status::makef(Status::Kind::SimulationStall,
                                 "event queue ran dry at t = %g s during the DC reference", c.now());
      telemetry().stalls.increment();
      stamp();
      return out;
    }
  }

  const TestSequencer::Options base = seq.options();
  const double relock_wait_s = resilience_.relock_wait_periods / fn_hz;

  for (std::size_t i = 0; i < sweep_.modulation_frequencies_hz.size(); ++i) {
    const double fm = sweep_.modulation_frequencies_hz[i];
    obs::ScopedSpan point_span("point.measure");
    const auto point_start = std::chrono::steady_clock::now();
    MeasuredPoint p;
    p.modulation_hz = fm;
    TestSequencer::PointResult last;
    bool measured = false;
    bool relocked = false;
    bool relock_failed = false;
    bool fatal_stall = false;
    int attempts_used = 0;

    for (int attempt = 0; attempt < resilience_.max_attempts; ++attempt) {
      obs::ScopedSpan attempt_span("point.attempt");
      if (attempt > 0) PLLBIST_INSTANT("bist.retry");
      seq.setOptions(escalated(base, resilience_, attempt));
      if (on_attempt_start_) on_attempt_start_(i, attempt, bench);
      ++out.report.attempts_total;
      telemetry().attempts.increment();
      attempts_used = attempt + 1;

      bool done = false;
      seq.measurePoint(fm, [&](TestSequencer::PointResult r) {
        last = std::move(r);
        done = true;
      });
      if (stepUntil(done, kNoDeadline) == StepOutcome::Stall) {
        last.timed_out = true;
        last.status = Status::makef(Status::Kind::SimulationStall,
                                    "event queue ran dry at t = %g s measuring fm = %g Hz", c.now(),
                                    fm);
        fatal_stall = true;
        break;
      }
      if (!last.timed_out) {
        measured = true;
        break;
      }

      // Failed attempt: park the stimulus and make sure the loop is still
      // alive before burning another attempt. The lock detector is reset
      // because modulation legitimately widens PFD pulses — only a loop
      // that stays unlocked past the grace window has actually lost lock.
      bench.stopStimulus();
      lock.reset();
      const StepOutcome grace =
          stepUntilLocked(c.now() + resilience_.relock_grace_periods / fn_hz);
      if (grace == StepOutcome::Stall) {
        fatal_stall = true;
        break;
      }
      if (grace == StepOutcome::Deadline) {
        // Declared lock loss: bounded relock-and-resume.
        const StepOutcome relock = stepUntilLocked(c.now() + relock_wait_s);
        if (relock == StepOutcome::Stall) {
          fatal_stall = true;
          break;
        }
        if (relock == StepOutcome::Done) {
          ++out.report.relocks;
          telemetry().relocks.increment();
          PLLBIST_INSTANT("bist.relock");
          relocked = true;
        } else {
          ++out.report.relock_failures;
          telemetry().relock_failures.increment();
          PLLBIST_INSTANT("bist.relock_failed");
          relock_failed = true;
          break;  // further attempts are futile on an unlocked loop
        }
      }
    }

    p.attempts = attempts_used;
    if (measured) {
      p.deviation_hz = last.held_frequency_hz - out.response.nominal_vco_hz;
      p.phase_deg = last.phase_deg;
      p.timed_out = false;
      if (relocked || attempts_used > 2) {
        p.quality = PointQuality::Degraded;
        ++out.report.degraded;
        telemetry().points_degraded.increment();
      } else if (attempts_used == 2) {
        p.quality = PointQuality::Retried;
        ++out.report.retried;
        telemetry().points_retried.increment();
      } else {
        p.quality = PointQuality::Ok;
        ++out.report.ok;
        telemetry().points_ok.increment();
      }
      if (sweep_.stimulus == StimulusKind::DelayLinePm) {
        p.unity_gain_deviation_hz =
            bench.pmThetaDevRad() * fm * static_cast<double>(config_.divider_n);
      }
    } else {
      p.timed_out = true;
      p.quality = PointQuality::Dropped;
      ++out.report.dropped;
      telemetry().points_dropped.increment();
      if (relock_failed) {
        p.status = Status::makef(
            Status::Kind::RelockFailed,
            "point %zu (fm = %g Hz): loop failed to re-lock within %g s after a failed attempt; "
            "last failure: %s",
            i, fm, relock_wait_s, last.status.toString().c_str());
      } else if (fatal_stall) {
        p.status = last.status;
      } else {
        p.status = Status::makef(Status::Kind::RetryExhausted,
                                 "point %zu (fm = %g Hz): all %d attempts failed; last failure: %s",
                                 i, fm, attempts_used, last.status.toString().c_str());
      }
    }
    p.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - point_start).count();
    telemetry().point_wall.observe(p.wall_time_s);
    ++out.report.points_total;
    out.response.points.push_back(p);
    out.response.raw.push_back(std::move(last));
    if (progress_) progress_(out.response.points.back());

    if (fatal_stall) {
      out.status = out.response.points.back().status;
      telemetry().stalls.increment();
      break;
    }
  }

  stamp();
  return out;
}

}  // namespace pllbist::bist
