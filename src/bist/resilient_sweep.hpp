#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "bist/controller.hpp"
#include "common/status.hpp"
#include "common/stop_token.hpp"
#include "pll/config.hpp"

namespace pllbist::bist {

class SweepTestbench;

/// Policy knobs of the retry/relock/degrade layer.
struct ResilientSweepOptions {
  /// Measurement attempts per point before it is Dropped.
  int max_attempts = 3;
  /// Escalation factor applied to the sequencer's settle_periods and
  /// timeout_periods on each retry (attempt k runs with backoff^k): a point
  /// that timed out because the loop settled slowly gets progressively more
  /// modulation periods to respond.
  double settle_backoff = 2.0;
  /// Escalation factor applied to the held-output frequency gate on each
  /// retry (1.0 = keep the configured gate).
  double gate_backoff = 1.0;
  /// After a failed attempt the stimulus is parked and the lock detector
  /// reset; the loop gets this many natural periods of grace to report lock
  /// before a lock *loss* is declared. Modulation legitimately widens PFD
  /// pulses, so an unlocked reading right after stopping is not yet a loss.
  double relock_grace_periods = 2.0;
  /// Natural periods to wait for re-lock once a loss is declared. If the
  /// loop re-locks the event counts as a relock and the point is retried
  /// (Degraded at best); if not, the point is Dropped with RelockFailed and
  /// the sweep moves on.
  double relock_wait_periods = 20.0;
  /// PFD pulse-width lock threshold; 0 selects the conventional auto
  /// threshold (2% of the reference period).
  double lock_threshold_s = 0.0;
  /// Consecutive quiet PFD cycles required to assert lock.
  int lock_cycles = 8;
  /// Host wall-clock budget per point, all attempts and relock waits
  /// included; 0 disables. An over-budget point is Dropped with
  /// DeadlineExceeded and the sweep moves on — never a hang. Wall-clock
  /// based, so it trades the bit-identical determinism contract for a
  /// bounded run; leave at 0 where reports must be reproducible.
  double point_budget_s = 0.0;
  /// Relock circuit breaker: after this many *consecutive* points dropped
  /// as relock failures, remaining points are dropped without attempts
  /// (status RelockFailed, "circuit breaker open"); 0 disables. A device
  /// that cycle-slips near its hold-in boundary stops burning retry budget
  /// on every remaining point.
  int relock_breaker = 0;

  /// Structured check; every rejection names the offending field and value.
  [[nodiscard]] Status check() const;
  /// check().throwIfError() — kept for the exception-based API.
  void validate() const;
};

/// Per-sweep quality accounting produced by ResilientSweep.
struct SweepQualityReport {
  int points_total = 0;
  int ok = 0;        ///< clean on the first attempt
  int retried = 0;   ///< second attempt succeeded, no relock needed
  int degraded = 0;  ///< measured after a relock or >= 2 retries
  int dropped = 0;   ///< retry budget exhausted / relock failed
  int attempts_total = 0;   ///< measurement attempts consumed sweep-wide
  int relocks = 0;          ///< lock losses recovered by relock-and-resume
  int relock_failures = 0;  ///< relock waits that expired (point abandoned)
  double sim_time_s = 0.0;  ///< simulated time consumed by the whole sweep
  double wall_time_s = 0.0; ///< host wall-clock time of run()

  /// True when every point measured cleanly on its first attempt.
  [[nodiscard]] bool clean() const { return retried == 0 && degraded == 0 && dropped == 0; }
  /// Points that produced a usable measurement (everything but Dropped).
  [[nodiscard]] int usable() const { return ok + retried + degraded; }
  /// One-line human-readable digest, e.g.
  /// "7 points: 5 ok, 1 retried, 1 degraded, 0 dropped; 9 attempts,
  ///  1 relock (0 failed); 1.24 s simulated in 0.48 s wall".
  [[nodiscard]] std::string summary() const;
};

/// Per-engine simulator statistics, read off the bench at the end of
/// run(): the private circuit's event-kernel counters plus the fault
/// injector's rule statistics when one was attached. Deterministic for a
/// fixed configuration and seed set, so the campaign journal records them
/// per point and a resumed merge reproduces the uninterrupted totals
/// exactly — without consulting the (history-dependent) global registry.
struct BenchStats {
  uint64_t events_processed = 0;
  uint64_t events_delivered = 0;
  uint64_t events_dropped = 0;
  uint64_t events_delayed = 0;
  uint64_t events_swallowed = 0;
  uint64_t fault_benches = 0;  ///< benches with a FaultInjector attached
  uint64_t faults_considered = 0;
  uint64_t faults_dropped = 0;
  uint64_t faults_delayed = 0;
  uint64_t faults_glitches = 0;

  void add(const BenchStats& other) {
    events_processed += other.events_processed;
    events_delivered += other.events_delivered;
    events_dropped += other.events_dropped;
    events_delayed += other.events_delayed;
    events_swallowed += other.events_swallowed;
    fault_benches += other.fault_benches;
    faults_considered += other.faults_considered;
    faults_dropped += other.faults_dropped;
    faults_delayed += other.faults_delayed;
    faults_glitches += other.faults_glitches;
  }
};

/// A MeasuredResponse plus its quality accounting. `status` is only
/// non-ok for conditions that ended the sweep early: the event queue
/// running dry (SimulationStall) or a cooperative stop (Cancelled);
/// per-point failures are recorded on the points themselves and leave
/// status ok.
struct ResilientResponse {
  MeasuredResponse response;
  SweepQualityReport report;
  Status status;
  BenchStats bench;          ///< this engine's private kernel/fault counters
  bool breaker_open = false; ///< the relock circuit breaker tripped
};

/// The retry/relock/degrade sweep engine. Runs the same Table 2 sequence
/// as BistController but classifies every point Ok/Retried/Degraded/
/// Dropped instead of giving each one attempt:
///
///   - a timed-out point is retried with escalating settle/timeout
///     budgets, up to max_attempts;
///   - after each failed attempt the stimulus is parked and the in-loop
///     lock detector consulted; a loop that lost lock gets a bounded
///     relock-and-resume wait before the next attempt;
///   - a point whose budget is exhausted (or whose loop never re-locks)
///     is Dropped with a structured Status, and the sweep continues — a
///     catastrophic device yields a fully-labelled response, never a hang
///     or a throw.
class ResilientSweep {
 public:
  ResilientSweep(const pll::PllConfig& config, SweepOptions sweep,
                 ResilientSweepOptions resilience = {});

  /// Fired once the testbench is assembled, before the lock wait. Tests
  /// and campaigns attach sim-level fault injection here.
  void onTestbench(std::function<void(SweepTestbench&)> cb) { on_testbench_ = std::move(cb); }

  /// Fired before each measurement attempt (attempt 0 = first try).
  /// Deterministic hook for per-attempt fault choreography in tests.
  void onAttemptStart(std::function<void(std::size_t point_index, int attempt, SweepTestbench&)> cb) {
    on_attempt_start_ = std::move(cb);
  }

  /// Fired after each point's final classification.
  void onPointMeasured(std::function<void(const MeasuredPoint&)> cb) { progress_ = std::move(cb); }

  /// Attach a cooperative stop token (must outlive run()). The engine
  /// polls it at bounded intervals inside every sim loop; once tripped the
  /// in-flight point and every remaining point are recorded as Dropped
  /// with Cancelled, the sweep status becomes Cancelled, and run() returns
  /// a fully-labelled partial response — points_total always equals the
  /// requested point count.
  void attachStop(const StopSource* stop) { stop_ = stop; }

  /// Run the sweep. May be called once per instance.
  ResilientResponse run();

 private:
  pll::PllConfig config_;
  SweepOptions sweep_;
  ResilientSweepOptions resilience_;
  std::function<void(SweepTestbench&)> on_testbench_;
  std::function<void(std::size_t, int, SweepTestbench&)> on_attempt_start_;
  std::function<void(const MeasuredPoint&)> progress_;
  const StopSource* stop_ = nullptr;
  bool used_ = false;
};

}  // namespace pllbist::bist
