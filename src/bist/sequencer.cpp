#include "bist/sequencer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "obs/tracer.hpp"

namespace pllbist::bist {

namespace {
const char* stageName(TestSequencer::Stage stage) {
  switch (stage) {
    case TestSequencer::Stage::Idle: return "idle";
    case TestSequencer::Stage::Settle: return "settle";
    case TestSequencer::Stage::PhaseMeasure: return "phase-measure";
    case TestSequencer::Stage::AwaitPeakForHold: return "await-peak-for-hold";
    case TestSequencer::Stage::HoldCount: return "hold-count";
  }
  return "unknown";
}
}  // namespace

Status TestSequencer::Options::check() const {
  using K = Status::Kind;
  if (settle_periods < 1)
    return Status::makef(K::InvalidArgument, "TestSequencer: settle_periods = %d, must be >= 1",
                         settle_periods);
  if (average_periods < 1)
    return Status::makef(K::InvalidArgument, "TestSequencer: average_periods = %d, must be >= 1",
                         average_periods);
  if (freq_gate_s <= 0.0)
    return Status::makef(K::InvalidArgument, "TestSequencer: freq_gate_s = %g, must be positive",
                         freq_gate_s);
  if (hold_to_gate_delay_s < 0.0)
    return Status::makef(K::InvalidArgument,
                         "TestSequencer: hold_to_gate_delay_s = %g, must be >= 0",
                         hold_to_gate_delay_s);
  if (timeout_periods <= static_cast<double>(settle_periods + average_periods))
    return Status::makef(K::InvalidArgument,
                         "TestSequencer: timeout_periods = %g must exceed settle+average = %d",
                         timeout_periods, settle_periods + average_periods);
  if (peak_qualify_fraction < 0.0 || peak_qualify_fraction >= 0.5)
    return Status::makef(K::InvalidArgument,
                         "TestSequencer: peak_qualify_fraction = %g, must be in [0, 0.5)",
                         peak_qualify_fraction);
  return Status();
}

void TestSequencer::Options::validate() const { check().throwIfError(); }

void TestSequencer::setOptions(const Options& options) {
  if (stage_ != Stage::Idle) throw std::logic_error("TestSequencer::setOptions: sequencer busy");
  options.validate();
  options_ = options;
}

TestSequencer::TestSequencer(sim::Circuit& c, pll::CpPll& pll, StimulusHooks stimulus,
                             PeakDetector& peak_detector, sim::SignalId stimulus_peak_marker,
                             sim::SignalId counted_signal, double test_clock_hz, Options options)
    : circuit_(c),
      pll_(pll),
      stimulus_(std::move(stimulus)),
      freq_counter_(c, counted_signal),
      phase_counter_(test_clock_hz),
      options_(options) {
  options_.validate();
  if (!stimulus_.start || !stimulus_.stop || !stimulus_.park)
    throw std::invalid_argument("TestSequencer: stimulus hooks must be set");
  c.onRisingEdge(stimulus_peak_marker, [this](double now) { handleStimulusPeak(now); });
  peak_detector.onMinFrequency([this](double now) { handleMfreqRise(now); });
  peak_detector.onMaxFrequency([this](double now) { handleOutputPeak(now); });
}

void TestSequencer::enterStage(Stage stage) {
  stage_ = stage;
  if constexpr (obs::kEnabled) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.end(stage_span_);
    stage_span_ = 0;
    const char* span = nullptr;
    switch (stage) {
      case Stage::Idle: break;
      case Stage::Settle: span = "sequencer.settle"; break;
      case Stage::PhaseMeasure: span = "sequencer.phase_measure"; break;
      case Stage::AwaitPeakForHold: span = "sequencer.await_peak"; break;
      case Stage::HoldCount: span = "sequencer.hold_count"; break;
    }
    if (span != nullptr) stage_span_ = tracer.begin(span);
  }
}

void TestSequencer::measurePoint(double modulation_hz, std::function<void(PointResult)> done) {
  if (modulation_hz <= 0.0) throw std::invalid_argument("measurePoint: modulation must be positive");
  if (stage_ != Stage::Idle) throw std::logic_error("measurePoint: sequencer busy");

  current_ = PointResult{};
  current_.modulation_hz = modulation_hz;
  done_ = std::move(done);
  waiting_for_output_peak_ = false;
  const unsigned id = ++sequence_id_;
  const double period = 1.0 / modulation_hz;

  enterStage(Stage::Settle);
  stimulus_.start(modulation_hz);
  circuit_.scheduleCallback(circuit_.now() + options_.settle_periods * period,
                            [this, id](double) {
                              if (id != sequence_id_ || stage_ != Stage::Settle) return;
                              enterStage(Stage::PhaseMeasure);
                            });
  // Watchdog: a broken loop (no output peaks) must not hang the BIST. The
  // deadline budgets for the hold gate, which runs at wall-clock (gate)
  // speed rather than in modulation periods.
  const double deadline = circuit_.now() + options_.timeout_periods * period +
                          options_.hold_to_gate_delay_s + options_.freq_gate_s;
  circuit_.scheduleCallback(deadline, [this, id](double now) {
                              if (id != sequence_id_ || stage_ == Stage::Idle) return;
                              current_.timed_out = true;
                              current_.status = Status::makef(
                                  Status::Kind::Timeout,
                                  "point watchdog fired at t = %g s in stage %s (fm = %g Hz, "
                                  "%zu/%d phase captures)",
                                  now, stageName(stage_), current_.modulation_hz,
                                  current_.phase_counts.size(), options_.average_periods);
                              finish(now);
                            });
}

void TestSequencer::handleStimulusPeak(double now) {
  if (stage_ != Stage::PhaseMeasure) return;
  if (waiting_for_output_peak_) return;  // still waiting on the previous period
  phase_counter_.arm(now);
  waiting_for_output_peak_ = true;
}

void TestSequencer::handleMfreqRise(double now) { mfreq_rise_time_ = now; }

void TestSequencer::handleOutputPeak(double now) {
  // Debounce: the output peak is the MFREQ fall after a sustained high run;
  // FSK step transients flip MFREQ only briefly.
  if (options_.peak_qualify_fraction > 0.0 && current_.modulation_hz > 0.0) {
    const double min_high = options_.peak_qualify_fraction / current_.modulation_hz;
    if (mfreq_rise_time_ < 0.0 || now - mfreq_rise_time_ < min_high) return;
  }
  if (stage_ == Stage::PhaseMeasure) {
    if (!waiting_for_output_peak_) return;
    current_.phase_counts.push_back(phase_counter_.capture(now));
    waiting_for_output_peak_ = false;
    if (static_cast<int>(current_.phase_counts.size()) >= options_.average_periods)
      enterStage(Stage::AwaitPeakForHold);
    return;
  }
  if (stage_ == Stage::AwaitPeakForHold) {
    // Table 2 stage 3: park the loop at the output maximum.
    pll_.setHold(true);
    current_.hold_time_s = now;
    enterStage(Stage::HoldCount);
    const unsigned id = sequence_id_;
    circuit_.scheduleCallback(now + options_.hold_to_gate_delay_s, [this, id](double) {
      if (id != sequence_id_ || stage_ != Stage::HoldCount) return;
      freq_counter_.measure(options_.freq_gate_s, [this, id](FrequencyCounter::Result r) {
        if (id != sequence_id_ || stage_ != Stage::HoldCount) return;
        current_.held_count = r.count;
        current_.gate_s = r.gate_s;
        current_.held_frequency_hz = r.frequencyHz();
        pll_.setHold(false);
        finish(circuit_.now());
      });
    });
  }
}

void TestSequencer::finish(double /*now*/) {
  // Circular mean of the per-period phase delays: robust when the lag sits
  // near the 0/-360 wrap (jitter would otherwise split the samples).
  double sx = 0.0, sy = 0.0;
  for (long count : current_.phase_counts) {
    const double deg = PhaseCounter::phaseDelayDeg(count, phase_counter_.testClockHz(),
                                                   current_.modulation_hz);
    sx += std::cos(degToRad(deg));
    sy += std::sin(degToRad(deg));
  }
  if (!current_.phase_counts.empty()) {
    double mean = radToDeg(std::atan2(sy, sx));
    if (mean > 0.0) mean -= 360.0;  // report as a lag in (-360, 0]
    current_.phase_deg = mean;
  }
  if (pll_.holdAsserted()) pll_.setHold(false);
  enterStage(Stage::Idle);
  ++sequence_id_;
  if (done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done(current_);
  }
}

void TestSequencer::measureStaticReference(double settle_s, std::function<void(double hz)> done) {
  if (stage_ != Stage::Idle) throw std::logic_error("measureStaticReference: sequencer busy");
  if (settle_s <= 0.0) throw std::invalid_argument("measureStaticReference: settle must be positive");
  stimulus_.park();
  circuit_.scheduleCallback(circuit_.now() + settle_s, [this, done = std::move(done)](double) {
    freq_counter_.measure(options_.freq_gate_s, [this, done](FrequencyCounter::Result r) {
      stimulus_.stop();
      done(r.frequencyHz());
    });
  });
}

void TestSequencer::measureNominal(std::function<void(double hz)> done) {
  if (stage_ != Stage::Idle) throw std::logic_error("measureNominal: sequencer busy");
  stimulus_.stop();
  freq_counter_.measure(options_.freq_gate_s,
                        [done = std::move(done)](FrequencyCounter::Result r) {
                          done(r.frequencyHz());
                        });
}

}  // namespace pllbist::bist
