#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bist/counters.hpp"
#include "bist/peak_detector.hpp"
#include "common/status.hpp"
#include "pll/cppll.hpp"
#include "sim/circuit.hpp"

namespace pllbist::bist {

/// Abstracts "the block that modulates the PLL reference" so the sequencer
/// drives the DCO/FSK path and the ideal sine-FM source identically.
struct StimulusHooks {
  std::function<void(double modulation_hz)> start;
  std::function<void()> stop;
  /// Park the reference statically at nominal + full deviation (the crest
  /// frequency, held). Used for the DC in-band reference measurement.
  std::function<void()> park;
};

/// The Table 2 test sequence, one modulation frequency at a time:
///
///  stage 1  apply digital modulation at FN, wait for the loop to settle
///  stage 2  at a stimulus peak, start the phase counter; at the next
///           detected output peak, capture it (repeated `average_periods`
///           times; the paper measured once, averaging is a knob)
///  stage 3  at the following output peak, assert loop hold — the output
///           frequency freezes at its maximum
///  stage 4  frequency-count the held output at leisure, then release
///  stage 5  caller moves to the next frequency
///
/// The sequencer sees only digital signals (stimulus peak marker, MFREQ,
/// counter values) — no analog access, as the paper requires.
class TestSequencer {
 public:
  struct Options {
    int settle_periods = 3;      ///< modulation periods to wait after retuning
    int average_periods = 4;     ///< phase-count repetitions
    double freq_gate_s = 1.0;    ///< held-output frequency-count gate
    double hold_to_gate_delay_s = 2e-3;  ///< mux settling before the gate opens
    double timeout_periods = 40.0;       ///< watchdog, in modulation periods
    /// Fraction of the modulation period MFREQ must have been continuously
    /// high for its falling edge to count as the output peak. The discrete
    /// FSK steps excite loop transients whose phase-error zero crossings
    /// also flip MFREQ; only the fundamental produces a high run of ~half a
    /// period. A small counter implements this on chip. 0 disables.
    double peak_qualify_fraction = 0.15;
    /// Structured check; empty context on success.
    [[nodiscard]] Status check() const;
    /// check().throwIfError() — kept for the exception-based API.
    void validate() const;
  };

  struct PointResult {
    double modulation_hz = 0.0;
    double phase_deg = 0.0;             ///< circular mean of per-period phases
    std::vector<long> phase_counts;     ///< raw counter captures
    double held_frequency_hz = 0.0;     ///< gated count of the held output
    long held_count = 0;
    double gate_s = 0.0;
    double hold_time_s = 0.0;           ///< when hold engaged
    bool timed_out = false;             ///< watchdog fired (dead/deaf loop)
    /// Why the point failed (Timeout with the stage and deadline it died
    /// in); ok() for a clean measurement.
    Status status;
  };

  enum class Stage { Idle, Settle, PhaseMeasure, AwaitPeakForHold, HoldCount };

  /// `counted_signal` is what the frequency counter watches (normally the
  /// raw VCO output for resolution; the divided output also works).
  TestSequencer(sim::Circuit& c, pll::CpPll& pll, StimulusHooks stimulus,
                PeakDetector& peak_detector, sim::SignalId stimulus_peak_marker,
                sim::SignalId counted_signal, double test_clock_hz, Options options);

  TestSequencer(const TestSequencer&) = delete;
  TestSequencer& operator=(const TestSequencer&) = delete;

  /// Begin measuring one point; `done` fires (at circuit time) when stage 4
  /// completes or the watchdog trips. Only one point may be in flight.
  void measurePoint(double modulation_hz, std::function<void(PointResult)> done);

  /// Unmodulated carrier measurement (the nominal-output reference the
  /// deviations are taken against). Stops any running stimulus program.
  void measureNominal(std::function<void(double hz)> done);

  /// DC in-band reference: park the reference at nominal + deviation, wait
  /// `settle_s`, then frequency-count the output. H(0) = 1, so the counted
  /// deviation is the eqn (7) Frefmax denominator with zero phase by
  /// definition — the paper's "referenced to the first measurement" rule
  /// made exact. Restores the unmodulated carrier afterwards.
  void measureStaticReference(double settle_s, std::function<void(double hz)> done);

  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Re-program the sequencer between points (the retry layer escalates
  /// settle/timeout/gate on each attempt). Throws std::logic_error when a
  /// point is in flight, std::invalid_argument on bad options.
  void setOptions(const Options& options);

 private:
  void handleStimulusPeak(double now);
  void handleOutputPeak(double now);
  void handleMfreqRise(double now);
  void finish(double now);
  /// Stage transition + telemetry: closes the open stage span and opens the
  /// next one (sequencer.settle / .phase_measure / .await_peak /
  /// .hold_count) on the global obs::Tracer. Stages cross event callbacks,
  /// so these are manual begin/end spans, not RAII scopes.
  void enterStage(Stage stage);

  sim::Circuit& circuit_;
  pll::CpPll& pll_;
  StimulusHooks stimulus_;
  FrequencyCounter freq_counter_;
  PhaseCounter phase_counter_;
  Options options_;

  Stage stage_ = Stage::Idle;
  uint64_t stage_span_ = 0;   ///< open tracer span of the current stage (0 = none)
  unsigned sequence_id_ = 0;  ///< invalidates stale watchdogs/callbacks
  PointResult current_;
  std::function<void(PointResult)> done_;
  bool waiting_for_output_peak_ = false;
  double mfreq_rise_time_ = -1.0;  ///< last MFREQ rising edge (for debounce)
};

}  // namespace pllbist::bist
