#include "bist/step_test.hpp"

#include <cmath>
#include <stdexcept>

#include "bist/counters.hpp"
#include "bist/dco.hpp"
#include "bist/peak_detector.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "pll/cppll.hpp"
#include "pll/probes.hpp"
#include "sim/circuit.hpp"

namespace pllbist::bist {

Status StepTestOptions::check() const {
  using K = Status::Kind;
  if (step_fraction <= 0.0 || step_fraction >= 0.2)
    return Status::makef(K::InvalidArgument, "StepTestOptions: step_fraction = %g, must be in "
                         "(0, 0.2)", step_fraction);
  if (lock_wait_s <= 0.0)
    return Status::makef(K::InvalidArgument, "StepTestOptions: lock_wait_s = %g, must be positive",
                         lock_wait_s);
  if (freq_gate_s <= 0.0)
    return Status::makef(K::InvalidArgument, "StepTestOptions: freq_gate_s = %g, must be positive",
                         freq_gate_s);
  if (hold_to_gate_delay_s < 0.0)
    return Status::makef(K::InvalidArgument,
                         "StepTestOptions: hold_to_gate_delay_s = %g, must be >= 0",
                         hold_to_gate_delay_s);
  if (min_peak_run_s < 0.0 || lock_threshold_s < 0.0 || timeout_s < 0.0)
    return Status::make(K::InvalidArgument,
                        "StepTestOptions: auto parameters (min_peak_run_s, lock_threshold_s, "
                        "timeout_s) must be >= 0");
  if (lock_cycles < 1)
    return Status::makef(K::InvalidArgument, "StepTestOptions: lock_cycles = %d, must be >= 1",
                         lock_cycles);
  return Status();
}

void StepTestOptions::validate() const { check().throwIfError(); }

StepTestResult runStepTest(const pll::PllConfig& config, const StepTestOptions& options) {
  config.validate();
  options.validate();

  const double tref = 1.0 / config.ref_frequency_hz;
  const double min_peak_run =
      options.min_peak_run_s > 0.0 ? options.min_peak_run_s : 5.0 * tref;
  const double lock_threshold =
      options.lock_threshold_s > 0.0 ? options.lock_threshold_s : 0.02 * tref;
  // Default watchdog: lock wait + two gates + a generous settling margin.
  const double timeout = options.timeout_s > 0.0
                             ? options.timeout_s
                             : options.lock_wait_s + 2.0 * options.freq_gate_s + 200.0 * tref +
                                   options.lock_wait_s;

  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  Dco::Config dcfg;
  dcfg.master_clock_hz = config.ref_frequency_hz * 1000.0;
  dcfg.initial_modulus = 1000;
  Dco dco(c, stim, dcfg);
  pll::CpPll pll(c, ext, stim, config);
  pll.setTestMode(true);
  PeakDetector detector(c, pll.ref(), pll.feedback(), config.pfd, PeakDetectorDelays{});
  FrequencyCounter counter(c, pll.vcoOut());
  pll::LockDetector lock(c, pll.pfdUp(), pll.pfdDn(), lock_threshold, options.lock_cycles);

  StepTestResult result;
  auto waitFor = [&c](bool& flag) {
    while (!flag) {
      if (!c.step()) throw AssertionError("runStepTest: event queue ran dry");
    }
  };

  // 1. Lock and count the nominal output.
  c.run(options.lock_wait_s);
  bool nominal_done = false;
  counter.measure(options.freq_gate_s, [&](FrequencyCounter::Result r) {
    result.nominal_hz = r.frequencyHz();
    nominal_done = true;
  });
  waitFor(nominal_done);

  // 2. Apply the reference step and track the transient.
  const double step_hz = config.ref_frequency_hz * options.step_fraction;
  const double step_time = c.now();
  dco.setFrequency(config.ref_frequency_hz + step_hz);
  lock.reset();

  // Peak capture state machine (hold at the first qualified MFREQ fall).
  // MFREQ is typically already high at the step (the reference leads
  // immediately), so the run-length reference starts at the step itself.
  bool peak_done = false;
  bool hold_requested = false;
  double mfreq_rise = step_time;
  c.onRisingEdge(detector.mfreq(), [&](double now) { mfreq_rise = now; });
  detector.onMaxFrequency([&](double now) {
    if (hold_requested || now <= step_time) return;
    if (now - mfreq_rise < min_peak_run) return;
    hold_requested = true;
    pll.setHold(true);
    result.peak_time_s = now - step_time;
    c.scheduleCallback(now + options.hold_to_gate_delay_s, [&](double) {
      counter.measure(options.freq_gate_s, [&](FrequencyCounter::Result r) {
        result.peak_hz = r.frequencyHz();
        pll.setHold(false);
        peak_done = true;
      });
    });
  });

  // Watchdog on the peak stage: overdamped loops never reverse, which is a
  // legitimate outcome (peak_detected stays false) — the test continues
  // with the re-lock measurement.
  bool peak_watchdog_fired = false;
  c.scheduleCallback(step_time + timeout, [&](double) {
    if (!peak_done) peak_watchdog_fired = true;
  });
  while (!peak_done && !peak_watchdog_fired) {
    if (!c.step()) throw AssertionError("runStepTest: event queue ran dry");
  }
  result.peak_detected = peak_done;
  if (!peak_done && pll.holdAsserted()) pll.setHold(false);

  // 3. Wait for re-lock, then count the settled target. Same watchdog
  // discipline as the peak stage: a loop that never re-locks (dead, railed,
  // or chattering) terminates the test with a recorded reason instead of
  // hanging or silently truncating the result.
  const double relock_deadline = step_time + 2.0 * timeout;
  while (!lock.isLocked()) {
    if (!c.step()) {
      result.timed_out = true;
      result.status = Status::makef(
          Status::Kind::SimulationStall,
          "runStepTest: event queue ran dry at t = %g s while waiting for re-lock", c.now());
      return result;
    }
    if (c.now() > relock_deadline) {
      result.timed_out = true;
      result.status = Status::makef(
          Status::Kind::Timeout,
          "runStepTest: loop failed to re-lock within %g s of the step (watchdog = 2x "
          "timeout; peak %sdetected)",
          relock_deadline - step_time, result.peak_detected ? "" : "not ");
      return result;
    }
  }
  result.relock_time_s = lock.lockTime() - step_time;

  // Let the tail of the transient die out before counting the settled
  // target: the lock detector asserts at ~2% phase convergence while the
  // frequency is still creeping the last fraction of a percent.
  c.run(c.now() + options.lock_wait_s);

  bool target_done = false;
  counter.measure(options.freq_gate_s, [&](FrequencyCounter::Result r) {
    result.target_hz = r.frequencyHz();
    target_done = true;
  });
  waitFor(target_done);

  // 4. Parameter extraction from the transient.
  const double rise = result.target_hz - result.nominal_hz;
  if (result.peak_detected && rise > 0.0 && result.peak_hz > result.target_hz) {
    result.overshoot_fraction = (result.peak_hz - result.target_hz) / rise;
    if (result.overshoot_fraction > 0.0 && result.overshoot_fraction < 1.0) {
      const double ln_inv = std::log(1.0 / result.overshoot_fraction);
      const double zeta = ln_inv / std::sqrt(kPi * kPi + ln_inv * ln_inv);
      result.zeta = zeta;
      if (result.peak_time_s > 0.0) {
        const double wn = kPi / (result.peak_time_s * std::sqrt(1.0 - zeta * zeta));
        result.natural_frequency_hz = radPerSecToHz(wn);
      }
    }
  }
  return result;
}

}  // namespace pllbist::bist
