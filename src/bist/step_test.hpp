#pragma once

#include <optional>

#include "common/status.hpp"
#include "pll/config.hpp"

namespace pllbist::bist {

/// Digital-only step-response test — the companion technique the authors
/// pursue in reference [12] ("minimum invasion digital only built-in ramp
/// based test techniques"). Instead of sweeping a modulation tone, the
/// reference is stepped once and the transient is captured with the same
/// peak-detect / hold / count hardware:
///
///   - the first MFREQ reversal after the step marks the transient *peak*;
///     holding there and counting gives the overshoot,
///   - the time from step to peak is the damped half-period,
///   - the lock detector gives the re-lock (settling) time.
///
/// Because the held value is the capacitor-node peak, the overshoot maps to
/// the textbook second-order formula exp(-pi*zeta/sqrt(1-zeta^2)) with *no
/// zero correction*, so a single transient yields both zeta and fn.
struct StepTestOptions {
  double step_fraction = 0.01;     ///< reference step as a fraction of fref
  double lock_wait_s = 1.0;        ///< initial lock acquisition time
  double freq_gate_s = 1.0;        ///< frequency-counter gate
  double hold_to_gate_delay_s = 2e-3;
  /// MFREQ must have been high at least this long for its fall to count as
  /// the transient peak (rejects pre-step chatter). 0 = auto (5 reference
  /// cycles).
  double min_peak_run_s = 0.0;
  double lock_threshold_s = 0.0;   ///< lock pulse-width threshold; 0 = auto (2% of Tref)
  int lock_cycles = 8;
  double timeout_s = 0.0;          ///< watchdog; 0 = auto

  /// Structured check; Status::ok() when the options are usable.
  [[nodiscard]] Status check() const;
  /// check().throwIfError() — kept for the exception-based API.
  void validate() const;
};

struct StepTestResult {
  double nominal_hz = 0.0;        ///< counted VCO output before the step
  double target_hz = 0.0;         ///< counted VCO output after re-lock
  double peak_hz = 0.0;           ///< held VCO output at the transient peak
  double overshoot_fraction = 0.0;
  double peak_time_s = 0.0;       ///< step -> detected peak
  double relock_time_s = 0.0;     ///< step -> lock-detector assertion
  bool peak_detected = false;     ///< false for overdamped loops (no reversal)
  bool timed_out = false;         ///< loop never re-locked

  /// Why the test aborted early (Timeout with the deadline and what the
  /// loop was doing; SimulationStall when the event queue ran dry during
  /// re-lock). ok() for a complete run — including the legitimate
  /// no-overshoot outcome of overdamped loops.
  Status status;

  /// Loop parameters from the transient: zeta from overshoot, fn from the
  /// damped peak time t_p = pi/(wn*sqrt(1-zeta^2)). Empty when the
  /// transient was unusable (no overshoot / timeout).
  std::optional<double> zeta;
  std::optional<double> natural_frequency_hz;
};

/// Run the complete step test on a simulated device. Synchronous; builds a
/// private circuit like BistController.
StepTestResult runStepTest(const pll::PllConfig& config, const StepTestOptions& options);

}  // namespace pllbist::bist
