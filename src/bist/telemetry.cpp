#include "bist/telemetry.hpp"

#include "bist/testbench.hpp"
#include "sim/circuit.hpp"
#include "sim/fault_injector.hpp"

namespace pllbist::bist {

SweepTelemetry& sweepTelemetry() {
  static SweepTelemetry* t = new SweepTelemetry();  // handles into the leaked global registry
  return *t;
}

void publishBenchCounters(SweepTestbench& bench) {
  if constexpr (!obs::kEnabled) return;
  SweepTelemetry& t = sweepTelemetry();
  const sim::Circuit& c = bench.circuit();
  t.kernel_processed.add(c.processedEventCount());
  t.kernel_delivered.add(c.deliveredEventCount());
  t.kernel_dropped.add(c.droppedEventCount());
  t.kernel_delayed.add(c.delayedEventCount());
  t.kernel_swallowed.add(c.swallowedEventCount());
  if (const sim::FaultInjector* injector = bench.installedFaultInjector()) {
    const sim::FaultInjector::Stats& s = injector->stats();
    t.faults_benches.increment();
    t.faults_considered.add(s.considered);
    t.faults_dropped.add(s.dropped);
    t.faults_delayed.add(s.delayed);
    t.faults_glitches.add(s.glitches);
  }
}

}  // namespace pllbist::bist
