#pragma once

#include "obs/metrics.hpp"

namespace pllbist::bist {

class SweepTestbench;

/// Handles into the global MetricsRegistry for the sweep engines, registered
/// once per process. Naming follows the layer.component.name convention
/// (DESIGN.md §8). Shared by BistController, ResilientSweep and (through the
/// inner engines) ParallelSweep, so every execution path re-homes the same
/// counters.
struct SweepTelemetry {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter attempts = reg.counter("bist.resilient.attempts");
  obs::Counter relocks = reg.counter("bist.resilient.relocks");
  obs::Counter relock_failures = reg.counter("bist.resilient.relock_failures");
  obs::Counter points_ok = reg.counter("bist.resilient.points_ok");
  obs::Counter points_retried = reg.counter("bist.resilient.points_retried");
  obs::Counter points_degraded = reg.counter("bist.resilient.points_degraded");
  obs::Counter points_dropped = reg.counter("bist.resilient.points_dropped");
  obs::Counter stalls = reg.counter("bist.resilient.stalls");
  obs::Histogram point_wall =
      reg.histogram("bist.sweep.point_wall_s", obs::MetricsRegistry::latencyBucketsSeconds());
  obs::Counter kernel_processed = reg.counter("sim.kernel.events_processed");
  obs::Counter kernel_delivered = reg.counter("sim.kernel.events_delivered");
  obs::Counter kernel_dropped = reg.counter("sim.kernel.events_dropped");
  obs::Counter kernel_delayed = reg.counter("sim.kernel.events_delayed");
  obs::Counter kernel_swallowed = reg.counter("sim.kernel.events_swallowed");
  obs::Counter faults_benches = reg.counter("sim.faults.benches");
  obs::Counter faults_considered = reg.counter("sim.faults.considered");
  obs::Counter faults_dropped = reg.counter("sim.faults.dropped");
  obs::Counter faults_delayed = reg.counter("sim.faults.delayed");
  obs::Counter faults_glitches = reg.counter("sim.faults.glitches");
};

/// The process-wide handle set (leaked, like the registry it points into).
SweepTelemetry& sweepTelemetry();

/// Re-home a bench's ad-hoc statistics — the circuit's kernel event
/// counters and the fault injector's rule statistics — onto the registry,
/// so RunReport and the Prometheus export read everything from one place.
/// Each engine owns a fresh circuit, so adding the totals once at the end
/// of a run is exact. Call exactly once per bench.
void publishBenchCounters(SweepTestbench& bench);

}  // namespace pllbist::bist
