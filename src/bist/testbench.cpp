#include "bist/testbench.hpp"

#include <cmath>

#include "common/units.hpp"

namespace pllbist::bist {

SweepTestbench::SweepTestbench(const pll::PllConfig& config, const SweepOptions& options,
                               double lock_threshold_s, int lock_cycles)
    : config_(config), options_(options) {
  config_.validate();
  options_.check(config_).throwIfError();

  ext_ref_ = circuit_.addSignal("ext_ref");  // unused normal-mode input
  stim_out_ = circuit_.addSignal("stimulus");
  stim_marker_ = circuit_.addSignal("stim_peak");

  // Stimulus path (Figure 4 / section 3, or the delay line of the
  // further-work discussion).
  if (options_.stimulus == StimulusKind::DelayLinePm) {
    const auto raw_ref = circuit_.addSignal("pm_raw_ref");
    pm_clock_ = std::make_unique<sim::ClockSource>(circuit_, raw_ref,
                                                   1.0 / config_.ref_frequency_hz);
    DelayLineModulator::Config dl;
    dl.taps = options_.pm_taps;
    dl.tap_delay_s = options_.pm_tap_delay_s > 0.0
                         ? options_.pm_tap_delay_s
                         : 1.0 / (8.0 * config_.ref_frequency_hz *
                                  static_cast<double>(options_.pm_taps - 1));
    dl.steps = options_.fm_steps;
    dl.nominal_hz = config_.ref_frequency_hz;
    delay_line_ =
        std::make_unique<DelayLineModulator>(circuit_, raw_ref, stim_out_, stim_marker_, dl);
    pm_theta_dev_rad_ = delay_line_->phaseDeviationRad();
    hooks_.start = [this](double fm) { delay_line_->start(fm); };
    hooks_.stop = [this] { delay_line_->stop(); };
    hooks_.park = [this] { delay_line_->stop(); };  // PM has no DC offset
  } else if (options_.stimulus == StimulusKind::PureSineFm) {
    pll::SineFmSource::Config scfg;
    scfg.nominal_hz = config_.ref_frequency_hz;
    scfg.deviation_hz = 0.0;  // CW until a point starts
    scfg.modulation_hz = 0.0;
    scfg.edge_jitter_rms_s = options_.ref_edge_jitter_rms_s;
    scfg.jitter_seed = options_.jitter_seed;
    sine_source_ = std::make_unique<pll::SineFmSource>(circuit_, stim_out_, stim_marker_, scfg);
    hooks_.start = [this](double fm) {
      sine_source_->setCarrier(config_.ref_frequency_hz);
      sine_source_->setModulation(fm, options_.deviation_hz);
    };
    hooks_.stop = [this] {
      sine_source_->setModulation(0.0, 0.0);
      sine_source_->setCarrier(config_.ref_frequency_hz);
    };
    hooks_.park = [this] {
      sine_source_->setModulation(0.0, 0.0);
      sine_source_->setCarrier(config_.ref_frequency_hz + options_.deviation_hz);
    };
  } else {
    Dco::Config dcfg;
    dcfg.master_clock_hz = options_.master_clock_hz;
    dcfg.initial_modulus = std::max(
        2, static_cast<int>(std::lround(options_.master_clock_hz / config_.ref_frequency_hz)));
    dco_ = std::make_unique<Dco>(circuit_, stim_out_, dcfg);
    FskModulator::Config mcfg;
    mcfg.waveform = options_.stimulus == StimulusKind::TwoToneFsk ? StimulusWaveform::TwoToneFsk
                                                                  : StimulusWaveform::MultiToneFsk;
    mcfg.steps = options_.fm_steps;
    mcfg.nominal_hz = config_.ref_frequency_hz;
    mcfg.deviation_hz = options_.deviation_hz;
    modulator_ = std::make_unique<FskModulator>(circuit_, *dco_, stim_marker_, mcfg);
    hooks_.start = [this](double fm) { modulator_->start(fm); };
    hooks_.stop = [this] { modulator_->stop(); };
    hooks_.park = [this] { modulator_->park(); };
  }

  // Device under test with the M1/M2 test muxes.
  pll_ = std::make_unique<pll::CpPll>(circuit_, ext_ref_, stim_out_, config_);
  pll_->setTestMode(true);

  // Response capture (Figure 6/7) plus the lock detector the reliability
  // layer uses for relock-and-resume.
  peak_detector_ = std::make_unique<PeakDetector>(circuit_, pll_->ref(), pll_->feedback(),
                                                  config_.pfd, PeakDetectorDelays{});
  const double threshold =
      lock_threshold_s > 0.0 ? lock_threshold_s : 0.02 / config_.ref_frequency_hz;
  lock_ = std::make_unique<pll::LockDetector>(circuit_, pll_->pfdUp(), pll_->pfdDn(), threshold,
                                              lock_cycles);
  sequencer_ = std::make_unique<TestSequencer>(circuit_, *pll_, hooks_, *peak_detector_,
                                               stim_marker_, pll_->vcoOut(),
                                               options_.master_clock_hz, options_.sequencer);
}

sim::FaultInjector& SweepTestbench::faultInjector(uint64_t seed) {
  if (!injector_) injector_ = std::make_unique<sim::FaultInjector>(circuit_, seed);
  return *injector_;
}

sim::SignalId SweepTestbench::mfreq() const { return peak_detector_->mfreq(); }

TestbenchFactory::TestbenchFactory(pll::PllConfig config, SweepOptions options,
                                   double lock_threshold_s, int lock_cycles)
    : config_(std::move(config)), options_(std::move(options)),
      lock_threshold_s_(lock_threshold_s), lock_cycles_(lock_cycles) {
  config_.validate();
  options_.check(config_).throwIfError();
}

std::unique_ptr<SweepTestbench> TestbenchFactory::make() const {
  return std::make_unique<SweepTestbench>(config_, options_, lock_threshold_s_, lock_cycles_);
}

Status SweepTestbench::runUntil(const bool& flag) {
  while (!flag) {
    if (!circuit_.step())
      return Status::makef(Status::Kind::SimulationStall,
                           "event queue ran dry at t = %g s mid-measurement", circuit_.now());
  }
  return Status();
}

}  // namespace pllbist::bist
