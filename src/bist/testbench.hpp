#pragma once

#include <memory>

#include "bist/controller.hpp"
#include "bist/dco.hpp"
#include "bist/delay_line.hpp"
#include "bist/modulator.hpp"
#include "bist/peak_detector.hpp"
#include "bist/sequencer.hpp"
#include "common/status.hpp"
#include "pll/config.hpp"
#include "pll/cppll.hpp"
#include "pll/probes.hpp"
#include "pll/sources.hpp"
#include "sim/circuit.hpp"
#include "sim/fault_injector.hpp"

namespace pllbist::bist {

/// The fully assembled Figure 6 testbench: a private Circuit holding the
/// stimulus path for the selected StimulusKind, the device under test with
/// its M1/M2 test muxes, the peak detector, the Table 2 sequencer, and a
/// lock detector on the in-loop PFD outputs.
///
/// Extracted from BistController so the sweep *policy* (plain one-shot vs
/// the retry/relock/degrade layer of ResilientSweep) is separate from the
/// bench *construction*, and so tests can reach into the circuit — attach a
/// sim::FaultInjector, drop MAXFREQ edges, storm the reference — before any
/// measurement starts. Non-copyable, non-movable: components capture
/// `this`-stable references into circuit callbacks.
class SweepTestbench {
 public:
  /// `lock_threshold_s` = 0 selects the conventional auto threshold (2% of
  /// the reference period); `lock_cycles` consecutive quiet PFD cycles
  /// assert lock.
  SweepTestbench(const pll::PllConfig& config, const SweepOptions& options,
                 double lock_threshold_s = 0.0, int lock_cycles = 8);

  SweepTestbench(const SweepTestbench&) = delete;
  SweepTestbench& operator=(const SweepTestbench&) = delete;

  [[nodiscard]] sim::Circuit& circuit() { return circuit_; }
  [[nodiscard]] pll::CpPll& pll() { return *pll_; }
  [[nodiscard]] TestSequencer& sequencer() { return *sequencer_; }
  [[nodiscard]] PeakDetector& peakDetector() { return *peak_detector_; }
  [[nodiscard]] pll::LockDetector& lockDetector() { return *lock_; }

  /// Lazily created, owned fault injector on this bench's circuit (one per
  /// circuit; the seed only applies to the first call).
  sim::FaultInjector& faultInjector(uint64_t seed = 1);

  /// The injector created by faultInjector(), or nullptr when none was ever
  /// attached. Telemetry reads the fault statistics through this without
  /// accidentally instantiating an injector.
  [[nodiscard]] const sim::FaultInjector* installedFaultInjector() const {
    return injector_.get();
  }

  [[nodiscard]] sim::SignalId stimulusOut() const { return stim_out_; }
  [[nodiscard]] sim::SignalId stimulusMarker() const { return stim_marker_; }
  /// The peak detector's MFREQ net (its falling edge is the MAXFREQ event).
  [[nodiscard]] sim::SignalId mfreq() const;

  /// Phase deviation of the delay-line PM stimulus; 0 for FM kinds.
  [[nodiscard]] double pmThetaDevRad() const { return pm_theta_dev_rad_; }

  [[nodiscard]] const pll::PllConfig& config() const { return config_; }
  [[nodiscard]] const SweepOptions& options() const { return options_; }

  /// Park the stimulus back at the unmodulated nominal carrier (between
  /// points, before relock waits).
  void stopStimulus() { hooks_.stop(); }

  /// Step the circuit until `flag` becomes true. Returns SimulationStall
  /// (with the stall time) instead of throwing when the event queue runs
  /// dry mid-measurement.
  [[nodiscard]] Status runUntil(const bool& flag);

 private:
  pll::PllConfig config_;
  SweepOptions options_;
  sim::Circuit circuit_;
  sim::SignalId ext_ref_;
  sim::SignalId stim_out_;
  sim::SignalId stim_marker_;

  // Stimulus path (only the members for the selected kind are populated).
  std::unique_ptr<Dco> dco_;
  std::unique_ptr<FskModulator> modulator_;
  std::unique_ptr<pll::SineFmSource> sine_source_;
  std::unique_ptr<sim::ClockSource> pm_clock_;
  std::unique_ptr<DelayLineModulator> delay_line_;
  double pm_theta_dev_rad_ = 0.0;
  StimulusHooks hooks_;

  std::unique_ptr<pll::CpPll> pll_;
  std::unique_ptr<PeakDetector> peak_detector_;
  std::unique_ptr<pll::LockDetector> lock_;
  std::unique_ptr<TestSequencer> sequencer_;
  // Declared last: destroyed first, so it detaches its interceptor while
  // the circuit is still alive.
  std::unique_ptr<sim::FaultInjector> injector_;
};

/// Value-type recipe for building identical, independent benches. The
/// configuration is validated once at construction; `make()` only reads
/// value members and touches no shared or global state, so it is safe to
/// call concurrently from multiple threads — the point-farm executor hands
/// one factory to all its workers and every frequency point gets a private
/// Circuit.
class TestbenchFactory {
 public:
  TestbenchFactory(pll::PllConfig config, SweepOptions options, double lock_threshold_s = 0.0,
                   int lock_cycles = 8);

  /// Build a fresh bench from the recipe. Each call returns a fully
  /// independent testbench (own circuit, own components, own RNG state).
  [[nodiscard]] std::unique_ptr<SweepTestbench> make() const;

  [[nodiscard]] const pll::PllConfig& config() const { return config_; }
  [[nodiscard]] const SweepOptions& options() const { return options_; }

 private:
  pll::PllConfig config_;
  SweepOptions options_;
  double lock_threshold_s_;
  int lock_cycles_;
};

}  // namespace pllbist::bist
