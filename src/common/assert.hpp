#pragma once

#include <stdexcept>
#include <string>

namespace pllbist {

/// Thrown when an internal invariant is violated. Deriving from
/// std::logic_error keeps these distinguishable from configuration errors
/// (std::invalid_argument / std::domain_error) raised on bad user input.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assertionFailed(const char* expr, const char* file, int line) {
  throw AssertionError(std::string("assertion failed: ") + expr + " at " + file + ":" +
                       std::to_string(line));
}
}  // namespace detail

}  // namespace pllbist

/// Internal-invariant check, active in all build types. Simulation kernels are
/// dominated by floating-point work, so the branch cost is negligible, and a
/// hard failure beats silently corrupt waveforms.
#define PLLBIST_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::pllbist::detail::assertionFailed(#expr, __FILE__, __LINE__))
