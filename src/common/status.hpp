#pragma once

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace pllbist {

/// Structured error taxonomy for the measurement stack. A Status is a kind
/// (machine-checkable) plus a context string (human-readable: which knob,
/// which point, which deadline). It replaces the exceptions-or-nothing
/// reporting of the early sweep engine: configuration checks return a
/// Status, per-point results carry one, and the sweep quality report rolls
/// them up — so a BIST run on hostile silicon degrades with a recorded
/// reason instead of throwing or silently truncating.
///
/// Exceptions remain at the public API boundary only: `validate()` helpers
/// call `throwIfError()`, which maps InvalidArgument back onto
/// std::invalid_argument so existing callers keep their contract.
class Status {
 public:
  enum class Kind {
    Ok,               ///< no error
    InvalidArgument,  ///< configuration rejected (maps to std::invalid_argument)
    Timeout,          ///< a watchdog fired (dead / deaf / stuck loop)
    LockLost,         ///< the PLL lost lock mid-measurement
    RelockFailed,     ///< a relock attempt exhausted its deadline
    RetryExhausted,   ///< a point used up its retry budget without success
    SimulationStall,  ///< the event queue ran dry mid-measurement
    NoValidPoints,    ///< a sweep finished but produced no usable points
    Degraded,         ///< completed, but with retried/degraded/dropped points
    Internal,         ///< invariant violation (bug)
  };

  Status() = default;  ///< Ok

  [[nodiscard]] static Status make(Kind kind, std::string context) {
    Status s;
    s.kind_ = kind;
    s.context_ = std::move(context);
    return s;
  }

  /// printf-style constructor so call sites can embed the offending value
  /// ("modulation_frequencies_hz[3] = 120 <= [2] = 450") without verbose
  /// string stitching.
  [[nodiscard]] __attribute__((format(printf, 2, 3))) static Status makef(Kind kind,
                                                                          const char* fmt, ...) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    return make(kind, buf);
  }

  [[nodiscard]] bool ok() const { return kind_ == Kind::Ok; }
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& context() const { return context_; }

  /// "timeout: watchdog fired after 40 modulation periods (fm = 450 Hz)"
  [[nodiscard]] std::string toString() const {
    if (ok()) return "ok";
    std::string out = kindName(kind_);
    if (!context_.empty()) {
      out += ": ";
      out += context_;
    }
    return out;
  }

  /// Bridge to the exception-based public API. InvalidArgument keeps its
  /// historical exception type; everything else surfaces as runtime_error.
  void throwIfError() const {
    if (ok()) return;
    if (kind_ == Kind::InvalidArgument) throw std::invalid_argument(toString());
    throw std::runtime_error(toString());
  }

  [[nodiscard]] static const char* kindName(Kind kind) {
    switch (kind) {
      case Kind::Ok: return "ok";
      case Kind::InvalidArgument: return "invalid-argument";
      case Kind::Timeout: return "timeout";
      case Kind::LockLost: return "lock-lost";
      case Kind::RelockFailed: return "relock-failed";
      case Kind::RetryExhausted: return "retry-exhausted";
      case Kind::SimulationStall: return "simulation-stall";
      case Kind::NoValidPoints: return "no-valid-points";
      case Kind::Degraded: return "degraded";
      case Kind::Internal: return "internal";
    }
    return "unknown";
  }

 private:
  Kind kind_ = Kind::Ok;
  std::string context_;
};

[[nodiscard]] inline const char* to_string(Status::Kind kind) { return Status::kindName(kind); }

}  // namespace pllbist
