#pragma once

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace pllbist {

/// Structured error taxonomy for the measurement stack. A Status is a kind
/// (machine-checkable) plus a context string (human-readable: which knob,
/// which point, which deadline). It replaces the exceptions-or-nothing
/// reporting of the early sweep engine: configuration checks return a
/// Status, per-point results carry one, and the sweep quality report rolls
/// them up — so a BIST run on hostile silicon degrades with a recorded
/// reason instead of throwing or silently truncating.
///
/// Exceptions remain at the public API boundary only: `validate()` helpers
/// call `throwIfError()`, which maps InvalidArgument back onto
/// std::invalid_argument so existing callers keep their contract.
class Status {
 public:
  enum class Kind {
    Ok,               ///< no error
    InvalidArgument,  ///< configuration rejected (maps to std::invalid_argument)
    Timeout,          ///< a watchdog fired (dead / deaf / stuck loop)
    LockLost,         ///< the PLL lost lock mid-measurement
    RelockFailed,     ///< a relock attempt exhausted its deadline
    RetryExhausted,   ///< a point used up its retry budget without success
    SimulationStall,  ///< the event queue ran dry mid-measurement
    NoValidPoints,    ///< a sweep finished but produced no usable points
    Degraded,         ///< completed, but with retried/degraded/dropped points
    Internal,         ///< invariant violation (bug)
    DeadlineExceeded, ///< a wall-clock budget (point or campaign) expired
    Cancelled,        ///< cooperative stop requested (signal or requestStop)
  };

  Status() = default;  ///< Ok

  [[nodiscard]] static Status make(Kind kind, std::string context) {
    Status s;
    s.kind_ = kind;
    s.context_ = std::move(context);
    return s;
  }

  /// printf-style constructor so call sites can embed the offending value
  /// ("modulation_frequencies_hz[3] = 120 <= [2] = 450") without verbose
  /// string stitching.
  [[nodiscard]] __attribute__((format(printf, 2, 3))) static Status makef(Kind kind,
                                                                          const char* fmt, ...) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    return make(kind, buf);
  }

  [[nodiscard]] bool ok() const { return kind_ == Kind::Ok; }
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& context() const { return context_; }

  /// "timeout: watchdog fired after 40 modulation periods (fm = 450 Hz)"
  [[nodiscard]] std::string toString() const {
    if (ok()) return "ok";
    std::string out = kindName(kind_);
    if (!context_.empty()) {
      out += ": ";
      out += context_;
    }
    return out;
  }

  /// Bridge to the exception-based public API. InvalidArgument keeps its
  /// historical exception type; everything else surfaces as runtime_error.
  void throwIfError() const {
    if (ok()) return;
    if (kind_ == Kind::InvalidArgument) throw std::invalid_argument(toString());
    throw std::runtime_error(toString());
  }

  [[nodiscard]] static const char* kindName(Kind kind) {
    switch (kind) {
      case Kind::Ok: return "ok";
      case Kind::InvalidArgument: return "invalid-argument";
      case Kind::Timeout: return "timeout";
      case Kind::LockLost: return "lock-lost";
      case Kind::RelockFailed: return "relock-failed";
      case Kind::RetryExhausted: return "retry-exhausted";
      case Kind::SimulationStall: return "simulation-stall";
      case Kind::NoValidPoints: return "no-valid-points";
      case Kind::Degraded: return "degraded";
      case Kind::Internal: return "internal";
      case Kind::DeadlineExceeded: return "deadline-exceeded";
      case Kind::Cancelled: return "cancelled";
    }
    return "unknown";
  }

  /// Reverse of kindName(): parse a kind name back into the enum (the
  /// checkpoint journal stores kinds by name). False for unknown names.
  [[nodiscard]] static bool parseKind(std::string_view name, Kind& out) {
    constexpr Kind kAll[] = {Kind::Ok,           Kind::InvalidArgument, Kind::Timeout,
                             Kind::LockLost,     Kind::RelockFailed,    Kind::RetryExhausted,
                             Kind::SimulationStall, Kind::NoValidPoints, Kind::Degraded,
                             Kind::Internal,     Kind::DeadlineExceeded, Kind::Cancelled};
    for (Kind k : kAll) {
      if (name == kindName(k)) {
        out = k;
        return true;
      }
    }
    return false;
  }

 private:
  Kind kind_ = Kind::Ok;
  std::string context_;
};

[[nodiscard]] inline const char* to_string(Status::Kind kind) { return Status::kindName(kind); }

/// Documented process exit code for each Status kind (README "Exit codes").
/// The mapping is injective: 0 only for Ok, a distinct small nonzero code
/// per failure class, and 130 (the conventional 128+SIGINT) for Cancelled so
/// an interrupted campaign looks interrupted to shells and CI harnesses.
/// InvalidArgument shares code 2 with the CLIs' historical usage() exit.
[[nodiscard]] inline int exitCode(Status::Kind kind) {
  switch (kind) {
    case Status::Kind::Ok: return 0;
    case Status::Kind::InvalidArgument: return 2;
    case Status::Kind::Timeout: return 3;
    case Status::Kind::LockLost: return 4;
    case Status::Kind::RelockFailed: return 5;
    case Status::Kind::RetryExhausted: return 6;
    case Status::Kind::SimulationStall: return 7;
    case Status::Kind::NoValidPoints: return 8;
    case Status::Kind::Degraded: return 9;
    case Status::Kind::Internal: return 10;
    case Status::Kind::DeadlineExceeded: return 11;
    case Status::Kind::Cancelled: return 130;
  }
  return 10;  // unreachable; treat like Internal
}

[[nodiscard]] inline int exitCode(const Status& status) { return exitCode(status.kind()); }

}  // namespace pllbist
