#pragma once

#include <atomic>
#include <csignal>

namespace pllbist {

/// Cooperative cancellation token shared between a requester (signal
/// handler, deadline supervisor, another thread) and the sweep engines'
/// hot loops. Engines poll stopRequested() at bounded intervals and drain
/// to a fully-labelled partial result — a stop is never a hang and never a
/// torn data structure.
///
/// Tokens chain: an engine-local token can point at an upstream one (the
/// process-global token the signal handlers trip), so one Ctrl-C stops
/// every engine without the engines sharing mutable state. requestStop()
/// is a single relaxed-free atomic store, safe from a signal handler.
class StopSource {
 public:
  StopSource() = default;
  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  void requestStop() noexcept { stop_.store(true, std::memory_order_release); }
  /// Re-arm (tests only; production tokens are one-shot by convention).
  void clear() noexcept { stop_.store(false, std::memory_order_release); }
  /// Also honour `upstream` (may be nullptr to unchain). Not thread-safe
  /// against concurrent stopRequested(); chain before handing the token out.
  void chainTo(const StopSource* upstream) noexcept { upstream_ = upstream; }

  [[nodiscard]] bool stopRequested() const noexcept {
    return stop_.load(std::memory_order_acquire) ||
           (upstream_ != nullptr && upstream_->stopRequested());
  }

 private:
  std::atomic<bool> stop_{false};
  const StopSource* upstream_ = nullptr;
};

/// The process-wide token the SIGINT/SIGTERM handlers trip. CLIs chain
/// their engines to it; library code never touches it.
inline StopSource& globalStopSource() {
  static StopSource source;
  return source;
}

/// Install SIGINT/SIGTERM handlers that request a cooperative stop via
/// globalStopSource(). The first signal drains the run (journal flushed,
/// partial report emitted, exit code 130); the handler then restores the
/// default disposition so a second signal force-kills a wedged process.
inline void installStopSignalHandlers() {
  // Touch the token now: the handler must not be the first caller, because
  // a guarded static-local initialisation is not async-signal-safe.
  (void)globalStopSource();
  auto handler = [](int sig) {
    globalStopSource().requestStop();
    std::signal(sig, SIG_DFL);
  };
  std::signal(SIGINT, handler);
  std::signal(SIGTERM, handler);
}

}  // namespace pllbist
