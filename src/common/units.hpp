#pragma once

#include <cmath>

namespace pllbist {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Convert a linear amplitude ratio to decibels (20 log10).
inline double amplitudeToDb(double ratio) { return 20.0 * std::log10(ratio); }

/// Convert decibels back to a linear amplitude ratio.
inline double dbToAmplitude(double db) { return std::pow(10.0, db / 20.0); }

/// Radians/s <-> Hz.
inline double radPerSecToHz(double w) { return w / kTwoPi; }
inline double hzToRadPerSec(double f) { return f * kTwoPi; }

/// Radians <-> degrees.
inline double radToDeg(double r) { return r * 180.0 / kPi; }
inline double degToRad(double d) { return d * kPi / 180.0; }

}  // namespace pllbist
