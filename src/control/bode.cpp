#include "control/bode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::control {

std::vector<double> unwrapPhaseDeg(const std::vector<double>& wrapped) {
  std::vector<double> out = wrapped;
  for (size_t i = 1; i < out.size(); ++i) {
    double delta = out[i] - out[i - 1];
    while (delta > 180.0) {
      out[i] -= 360.0;
      delta = out[i] - out[i - 1];
    }
    while (delta < -180.0) {
      out[i] += 360.0;
      delta = out[i] - out[i - 1];
    }
  }
  return out;
}

BodeResponse BodeResponse::compute(const TransferFunction& tf, const std::vector<double>& omegas) {
  std::vector<BodePoint> pts;
  pts.reserve(omegas.size());
  for (double w : omegas) {
    if (w <= 0.0) throw std::invalid_argument("BodeResponse::compute: omega must be positive");
    pts.push_back({w, tf.magnitudeDbAt(w), tf.phaseDegAt(w)});
  }
  return fromPoints(std::move(pts));
}

BodeResponse BodeResponse::fromPoints(std::vector<BodePoint> points) {
  for (size_t i = 1; i < points.size(); ++i)
    if (points[i].omega_rad_per_s <= points[i - 1].omega_rad_per_s)
      throw std::invalid_argument("BodeResponse: omegas must be strictly ascending");
  std::vector<double> phases(points.size());
  for (size_t i = 0; i < points.size(); ++i) phases[i] = points[i].phase_deg;
  phases = unwrapPhaseDeg(phases);
  for (size_t i = 0; i < points.size(); ++i) points[i].phase_deg = phases[i];
  BodeResponse r;
  r.points_ = std::move(points);
  return r;
}

namespace {

double interpolateLogOmega(const std::vector<BodePoint>& pts, double omega,
                           double BodePoint::*field) {
  if (pts.empty()) throw std::domain_error("BodeResponse: empty response");
  if (omega < pts.front().omega_rad_per_s || omega > pts.back().omega_rad_per_s)
    throw std::domain_error("BodeResponse: omega outside sampled range");
  auto it = std::lower_bound(pts.begin(), pts.end(), omega,
                             [](const BodePoint& p, double w) { return p.omega_rad_per_s < w; });
  if (it == pts.begin()) return pts.front().*field;
  const BodePoint& hi = *it;
  const BodePoint& lo = *(it - 1);
  const double t = (std::log(omega) - std::log(lo.omega_rad_per_s)) /
                   (std::log(hi.omega_rad_per_s) - std::log(lo.omega_rad_per_s));
  return lo.*field + t * (hi.*field - lo.*field);
}

}  // namespace

double BodeResponse::magnitudeDbAt(double omega) const {
  return interpolateLogOmega(points_, omega, &BodePoint::magnitude_db);
}

double BodeResponse::phaseDegAt(double omega) const {
  return interpolateLogOmega(points_, omega, &BodePoint::phase_deg);
}

double BodeResponse::inBandMagnitudeDb() const {
  if (points_.empty()) throw std::domain_error("BodeResponse: empty response");
  return points_.front().magnitude_db;
}

ResponsePeak BodeResponse::peak() const {
  if (points_.empty()) throw std::domain_error("BodeResponse: empty response");
  size_t imax = 0;
  for (size_t i = 1; i < points_.size(); ++i)
    if (points_[i].magnitude_db > points_[imax].magnitude_db) imax = i;

  // Parabolic refinement in (log omega, dB) through the three points around
  // the discrete maximum; falls back to the raw sample at the edges.
  if (imax == 0 || imax + 1 >= points_.size())
    return {points_[imax].omega_rad_per_s, points_[imax].magnitude_db};

  const double x0 = std::log(points_[imax - 1].omega_rad_per_s);
  const double x1 = std::log(points_[imax].omega_rad_per_s);
  const double x2 = std::log(points_[imax + 1].omega_rad_per_s);
  const double y0 = points_[imax - 1].magnitude_db;
  const double y1 = points_[imax].magnitude_db;
  const double y2 = points_[imax + 1].magnitude_db;

  // Newton-form parabola p(x) = y0 + d0*(x-x0) + c*(x-x0)*(x-x1); its vertex
  // is at x = (x0+x1)/2 - d0/(2c).
  const double d0 = (y1 - y0) / (x1 - x0);
  const double d1 = (y2 - y1) / (x2 - x1);
  const double c = (d1 - d0) / (x2 - x0);
  if (c >= 0.0) return {points_[imax].omega_rad_per_s, y1};  // not a local-max shape

  const double x_vertex = (x0 + x1) * 0.5 - d0 / (2.0 * c);
  if (x_vertex < x0 || x_vertex > x2) return {points_[imax].omega_rad_per_s, y1};
  const double y_vertex = y0 + d0 * (x_vertex - x0) + c * (x_vertex - x0) * (x_vertex - x1);
  return {std::exp(x_vertex), y_vertex};
}

double BodeResponse::peakingDb() const { return peak().magnitude_db - inBandMagnitudeDb(); }

std::optional<double> BodeResponse::bandwidth3Db() const {
  if (points_.size() < 2) return std::nullopt;
  const double threshold = inBandMagnitudeDb() - 3.0;
  const ResponsePeak pk = peak();
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].omega_rad_per_s <= pk.omega_rad_per_s) continue;
    if (points_[i - 1].magnitude_db >= threshold && points_[i].magnitude_db < threshold) {
      const double t = (threshold - points_[i - 1].magnitude_db) /
                       (points_[i].magnitude_db - points_[i - 1].magnitude_db);
      const double lw = std::log(points_[i - 1].omega_rad_per_s) +
                        t * (std::log(points_[i].omega_rad_per_s) - std::log(points_[i - 1].omega_rad_per_s));
      return std::exp(lw);
    }
  }
  return std::nullopt;
}

std::optional<double> BodeResponse::phaseCrossing(double phase_deg) const {
  for (size_t i = 1; i < points_.size(); ++i) {
    const double a = points_[i - 1].phase_deg;
    const double b = points_[i].phase_deg;
    if ((a >= phase_deg && b < phase_deg) || (a <= phase_deg && b > phase_deg)) {
      const double t = (phase_deg - a) / (b - a);
      const double lw = std::log(points_[i - 1].omega_rad_per_s) +
                        t * (std::log(points_[i].omega_rad_per_s) - std::log(points_[i - 1].omega_rad_per_s));
      return std::exp(lw);
    }
  }
  return std::nullopt;
}

BodeResponse BodeResponse::normalizedToInBand() const {
  const double ref = inBandMagnitudeDb();
  BodeResponse out = *this;
  for (BodePoint& p : out.points_) p.magnitude_db -= ref;
  return out;
}

}  // namespace pllbist::control
