#pragma once

#include <optional>
#include <vector>

#include "control/transfer_function.hpp"

namespace pllbist::control {

/// One point of a frequency-response plot.
struct BodePoint {
  double omega_rad_per_s = 0.0;
  double magnitude_db = 0.0;
  double phase_deg = 0.0;  // unwrapped (continuous across points)
};

/// Location and height of the closed-loop magnitude peak.
struct ResponsePeak {
  double omega_rad_per_s = 0.0;
  double magnitude_db = 0.0;
};

/// A sampled magnitude/phase frequency response with the feature-extraction
/// queries used by both the theoretical plots (Figs. 1 and 10) and the
/// BIST post-processing: peak location (omega_p), peaking above the in-band
/// reference, and the one-sided -3 dB loop bandwidth (omega_3dB).
class BodeResponse {
 public:
  BodeResponse() = default;

  /// Sample H(j*omega) at the given radian frequencies (must be ascending
  /// and positive). Phase is unwrapped point-to-point.
  static BodeResponse compute(const TransferFunction& tf, const std::vector<double>& omegas);

  /// Build directly from measured points (already ascending in omega).
  /// Phase is unwrapped. Throws std::invalid_argument if omegas not ascending.
  static BodeResponse fromPoints(std::vector<BodePoint> points);

  [[nodiscard]] const std::vector<BodePoint>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] size_t size() const { return points_.size(); }

  /// Linear-in-log-omega interpolated magnitude (dB) at omega. Throws
  /// std::domain_error outside the sampled range.
  [[nodiscard]] double magnitudeDbAt(double omega) const;

  /// Interpolated unwrapped phase (degrees) at omega.
  [[nodiscard]] double phaseDegAt(double omega) const;

  /// Magnitude of the first (lowest-frequency) point; the paper's in-band
  /// 0 dB-asymptote reference (section 2).
  [[nodiscard]] double inBandMagnitudeDb() const;

  /// Peak of the magnitude curve, refined by parabolic interpolation through
  /// the three samples around the maximum.
  [[nodiscard]] ResponsePeak peak() const;

  /// Peaking: peak magnitude minus the in-band reference, in dB.
  [[nodiscard]] double peakingDb() const;

  /// First frequency above the peak where the magnitude crosses
  /// (in-band reference - 3 dB); linear interpolation between samples.
  /// nullopt if the curve never crosses within the sampled range.
  [[nodiscard]] std::optional<double> bandwidth3Db() const;

  /// Frequency at which the unwrapped phase first crosses the given value
  /// (degrees, typically negative); nullopt if never crossed.
  [[nodiscard]] std::optional<double> phaseCrossing(double phase_deg) const;

  /// Returns a copy with every magnitude shifted by -inBandMagnitudeDb(), so
  /// the low-frequency asymptote reads 0 dB (eqn (7) referencing).
  [[nodiscard]] BodeResponse normalizedToInBand() const;

 private:
  std::vector<BodePoint> points_;
};

/// Unwrap a sequence of phases in degrees so that consecutive values never
/// jump by more than 180 degrees.
std::vector<double> unwrapPhaseDeg(const std::vector<double>& wrapped_deg);

}  // namespace pllbist::control
