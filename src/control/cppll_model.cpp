#include "control/cppll_model.hpp"

#include <cmath>
#include <stdexcept>

namespace pllbist::control {

void LoopParameters::validate() const {
  if (kpd_v_per_rad <= 0.0) throw std::invalid_argument("LoopParameters: Kpd must be positive");
  if (kvco_rad_per_s_per_v <= 0.0) throw std::invalid_argument("LoopParameters: Ko must be positive");
  if (divider_n < 1.0) throw std::invalid_argument("LoopParameters: N must be >= 1");
  if (r1_ohm <= 0.0 || r2_ohm <= 0.0) throw std::invalid_argument("LoopParameters: R1, R2 must be positive");
  if (c_farad <= 0.0) throw std::invalid_argument("LoopParameters: C must be positive");
}

TransferFunction loopFilterTf(const LoopParameters& p) {
  p.validate();
  return {Polynomial({1.0, p.tau2()}), Polynomial({1.0, p.tau1() + p.tau2()})};
}

TransferFunction openLoopTf(const LoopParameters& p) {
  p.validate();
  return TransferFunction::gain(p.kpd_v_per_rad) * loopFilterTf(p) *
         TransferFunction::integrator(p.kvco_rad_per_s_per_v);
}

TransferFunction closedLoopDividedTf(const LoopParameters& p) {
  p.validate();
  const double k = p.loopGain();
  const double n = p.divider_n;
  const double t12 = p.tau1() + p.tau2();
  // K(1 + s*tau2) / (N(tau1+tau2) s^2 + (N + K*tau2) s + K)
  return {Polynomial({k, k * p.tau2()}), Polynomial({k, n + k * p.tau2(), n * t12})};
}

TransferFunction closedLoopVcoTf(const LoopParameters& p) {
  return closedLoopDividedTf(p) * p.divider_n;
}

TransferFunction errorTf(const LoopParameters& p) {
  return TransferFunction::gain(1.0) + closedLoopDividedTf(p) * -1.0;
}

TransferFunction capacitorNodeTf(const LoopParameters& p) {
  p.validate();
  const double k = p.loopGain();
  const double n = p.divider_n;
  const double t12 = p.tau1() + p.tau2();
  // closedLoopDividedTf with the (1 + s*tau2) zero divided out.
  return {Polynomial({k}), Polynomial({k, n + k * p.tau2(), n * t12})};
}

SecondOrderParams approximateSecondOrder(const LoopParameters& p) {
  p.validate();
  const double wn = std::sqrt(p.loopGain() / (p.divider_n * (p.tau1() + p.tau2())));
  return {wn, wn * p.tau2() / 2.0};
}

SecondOrderParams exactSecondOrder(const LoopParameters& p) {
  p.validate();
  const double k = p.loopGain();
  const double n = p.divider_n;
  const double t12 = p.tau1() + p.tau2();
  const double wn = std::sqrt(k / (n * t12));
  const double zeta = (n + k * p.tau2()) / (2.0 * n * t12 * wn);
  return {wn, zeta};
}

LoopParameters designForResponse(const LoopParameters& base, double omega_n, double zeta) {
  if (omega_n <= 0.0 || zeta <= 0.0)
    throw std::invalid_argument("designForResponse: omega_n and zeta must be positive");
  if (base.kpd_v_per_rad <= 0.0 || base.kvco_rad_per_s_per_v <= 0.0 || base.c_farad <= 0.0 ||
      base.divider_n < 1.0)
    throw std::invalid_argument("designForResponse: Kpd, Ko, C, N must be set and positive");

  const double k = base.loopGain();
  const double n = base.divider_n;
  const double t12 = k / (n * omega_n * omega_n);       // tau1 + tau2
  const double tau2 = n * (2.0 * zeta * omega_n * t12 - 1.0) / k;
  if (tau2 <= 0.0)
    throw std::domain_error("designForResponse: requested damping unreachable (tau2 <= 0)");
  const double tau1 = t12 - tau2;
  if (tau1 <= 0.0)
    throw std::domain_error("designForResponse: requested damping unreachable (tau1 <= 0)");

  LoopParameters out = base;
  out.r1_ohm = tau1 / base.c_farad;
  out.r2_ohm = tau2 / base.c_farad;
  out.validate();
  return out;
}

}  // namespace pllbist::control
