#pragma once

#include "control/second_order.hpp"
#include "control/transfer_function.hpp"

namespace pllbist::control {

/// Linearised phase-domain parameters of the charge-pump PLL under test
/// (the paper's Figure 2 block diagram with the Figure 9 passive lag-lead
/// loop filter: R1 in series from the phase-detector output, then R2 + C to
/// ground, control voltage taken at the R1/R2 junction).
struct LoopParameters {
  double kpd_v_per_rad = 0.0;        ///< phase-detector gain Kpd [V/rad]
  double kvco_rad_per_s_per_v = 0.0; ///< VCO gain Ko [rad/s per V]
  double divider_n = 1.0;            ///< feedback division ratio N
  double r1_ohm = 0.0;               ///< series resistor R1
  double r2_ohm = 0.0;               ///< zero-setting resistor R2
  double c_farad = 0.0;              ///< filter capacitor C

  [[nodiscard]] double tau1() const { return r1_ohm * c_farad; }
  [[nodiscard]] double tau2() const { return r2_ohm * c_farad; }

  /// Combined forward gain K = Kpd * Ko [1/s when applied to phase].
  [[nodiscard]] double loopGain() const { return kpd_v_per_rad * kvco_rad_per_s_per_v; }

  /// Throws std::invalid_argument if any parameter is non-positive.
  void validate() const;
};

/// Loop-filter transfer function (paper eqn (3)):
///   F(s) = (1 + s*tau2) / (1 + s*(tau1 + tau2)).
TransferFunction loopFilterTf(const LoopParameters& p);

/// Open-loop (forward-path) transfer function from input phase to VCO output
/// phase: G(s) = Kpd * F(s) * Ko / s.
TransferFunction openLoopTf(const LoopParameters& p);

/// Closed-loop phase transfer function measured at the *divided* VCO output
/// (unity DC gain; the form whose magnitude the BIST reproduces):
///   theta_fb / theta_i = K F(s) / (N s + K F(s)).
TransferFunction closedLoopDividedTf(const LoopParameters& p);

/// Closed-loop phase transfer function to the raw VCO output (paper eqn (4),
/// DC gain N): theta_o / theta_i = N * closedLoopDividedTf.
TransferFunction closedLoopVcoTf(const LoopParameters& p);

/// Phase-error transfer function theta_e / theta_i = 1 - closedLoopDividedTf.
/// High-pass; used to validate the peak-detection principle (the error
/// crosses zero when the capacitor voltage — hence held frequency — peaks).
TransferFunction errorTf(const LoopParameters& p);

/// Transfer function from input phase to the *capacitor* voltage response
/// (normalised to unity DC gain): closedLoopDividedTf / (1 + s*tau2) — the
/// zero cancels, leaving the pure two-pole response
///   wn^2 / (s^2 + 2*zeta*wn*s + wn^2).
///
/// This is what the paper's peak-detect-and-hold capture physically
/// measures: the PFD lead/lag reversal marks the phase-error zero crossing,
/// which coincides with the extremum of the *integrated* (capacitor) state;
/// at that instant the pump is high-Z so the held control voltage equals
/// the capacitor voltage. The filter zero's phase lead is invisible to the
/// method. Benches plot both this and closedLoopDividedTf (eqn (4)).
TransferFunction capacitorNodeTf(const LoopParameters& p);

/// The paper's high-gain approximation (eqns (5) and (6)):
///   wn = sqrt(Ko*Kpd / (N*(tau1+tau2))),  zeta = wn*tau2/2.
SecondOrderParams approximateSecondOrder(const LoopParameters& p);

/// Exact second-order parameters from the closed-loop denominator
///   s^2 + s*(1 + K*tau2/N)/(tau1+tau2) + K/(N*(tau1+tau2)):
/// zeta includes the extra "+1" term the approximation drops.
SecondOrderParams exactSecondOrder(const LoopParameters& p);

/// Solve for (R1, R2) that hit a requested natural frequency and damping
/// given the remaining parameters (Kpd, Ko, N, C) already set in `base`.
/// Uses the exact second-order relations. Throws std::domain_error if the
/// target is unreachable with positive resistances.
LoopParameters designForResponse(const LoopParameters& base, double omega_n, double zeta);

}  // namespace pllbist::control
