#include "control/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace pllbist::control {

std::vector<double> linspace(double first, double last, int n) {
  if (n < 1) throw std::invalid_argument("linspace: n must be >= 1");
  if (n == 1) return {first};
  std::vector<double> out(static_cast<size_t>(n));
  const double step = (last - first) / static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<size_t>(i)] = first + step * i;
  out.back() = last;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double first, double last, int n) {
  if (first <= 0.0 || last <= 0.0) throw std::invalid_argument("logspace: bounds must be positive");
  std::vector<double> out = linspace(std::log10(first), std::log10(last), n);
  for (double& v : out) v = std::pow(10.0, v);
  if (!out.empty()) {
    out.front() = first;
    out.back() = last;
  }
  return out;
}

}  // namespace pllbist::control
