#pragma once

#include <vector>

namespace pllbist::control {

/// n points linearly spaced over [first, last] inclusive. n >= 2 required
/// (n == 1 returns {first}).
std::vector<double> linspace(double first, double last, int n);

/// n points logarithmically spaced over [first, last] inclusive; both bounds
/// must be positive. Throws std::invalid_argument otherwise.
std::vector<double> logspace(double first, double last, int n);

}  // namespace pllbist::control
