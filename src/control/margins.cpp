#include "control/margins.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "control/grid.hpp"

namespace pllbist::control {

namespace {

/// Bisect f over [lo, hi] assuming f(lo) and f(hi) straddle zero.
template <typename F>
double bisect(F&& f, double lo, double hi) {
  double flo = f(lo);
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric mid: frequencies live on a log axis
    const double fmid = f(mid);
    if ((flo <= 0.0) == (fmid <= 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

}  // namespace

LoopMargins computeMargins(const TransferFunction& open_loop, double w_min, double w_max, int n) {
  if (w_min <= 0.0 || w_max <= w_min) throw std::invalid_argument("computeMargins: bad range");
  if (n < 8) throw std::invalid_argument("computeMargins: need at least 8 scan points");

  const std::vector<double> ws = logspace(w_min, w_max, n);
  LoopMargins margins;

  auto magMinusOneDb = [&](double w) { return open_loop.magnitudeDbAt(w); };
  // Unwrapped phase along the scan (the principal value would alias the
  // -180 crossing of higher-order loops).
  std::vector<double> phases(ws.size());
  for (size_t i = 0; i < ws.size(); ++i) phases[i] = open_loop.phaseDegAt(ws[i]);
  for (size_t i = 1; i < phases.size(); ++i) {
    while (phases[i] - phases[i - 1] > 180.0) phases[i] -= 360.0;
    while (phases[i] - phases[i - 1] < -180.0) phases[i] += 360.0;
  }

  for (size_t i = 1; i < ws.size(); ++i) {
    // Gain crossover (first |L| = 0 dB crossing downwards).
    if (!margins.gain_crossover_rad_per_s) {
      const double a = magMinusOneDb(ws[i - 1]);
      const double b = magMinusOneDb(ws[i]);
      if (a >= 0.0 && b < 0.0) {
        const double wc = bisect(magMinusOneDb, ws[i - 1], ws[i]);
        margins.gain_crossover_rad_per_s = wc;
        // Phase margin from the unwrapped scan (interpolated).
        const double t = (std::log(wc) - std::log(ws[i - 1])) /
                         (std::log(ws[i]) - std::log(ws[i - 1]));
        const double phase = phases[i - 1] + t * (phases[i] - phases[i - 1]);
        margins.phase_margin_deg = 180.0 + phase;
      }
    }
    // Phase crossover (first -180 crossing).
    if (!margins.phase_crossover_rad_per_s) {
      const double a = phases[i - 1] + 180.0;
      const double b = phases[i] + 180.0;
      if ((a >= 0.0 && b < 0.0) || (a <= 0.0 && b > 0.0)) {
        const double t = a / (a - b);
        const double wc = std::exp(std::log(ws[i - 1]) +
                                   t * (std::log(ws[i]) - std::log(ws[i - 1])));
        margins.phase_crossover_rad_per_s = wc;
        margins.gain_margin_db = -open_loop.magnitudeDbAt(wc);
      }
    }
  }
  return margins;
}

}  // namespace pllbist::control
