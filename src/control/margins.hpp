#pragma once

#include <optional>

#include "control/transfer_function.hpp"

namespace pllbist::control {

/// Classical stability margins of an open-loop transfer function L(s)
/// (loop broken at the comparator, unity feedback assumed).
struct LoopMargins {
  /// Gain crossover: |L| = 1. Phase margin = 180 + arg L there (degrees).
  std::optional<double> gain_crossover_rad_per_s;
  std::optional<double> phase_margin_deg;

  /// Phase crossover: arg L = -180. Gain margin = -|L|dB there.
  std::optional<double> phase_crossover_rad_per_s;
  std::optional<double> gain_margin_db;
};

/// Compute margins by scanning [w_min, w_max] (log grid, n points) and
/// bisecting the bracketing intervals. Crossings outside the scanned range
/// are reported as absent. Throws std::invalid_argument on a bad range.
LoopMargins computeMargins(const TransferFunction& open_loop, double w_min, double w_max,
                           int n = 400);

}  // namespace pllbist::control
