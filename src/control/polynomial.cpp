#include "control/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::control {

namespace {
constexpr double kTrimEpsilon = 0.0;  // trim exact zeros only; keep tiny coeffs
}

Polynomial::Polynomial(std::vector<double> ascending_coeffs) : coeffs_(std::move(ascending_coeffs)) {
  trim();
}

Polynomial Polynomial::constant(double value) { return Polynomial({value}); }

Polynomial Polynomial::monomial(double c, int power) {
  if (power < 0) throw std::invalid_argument("Polynomial::monomial: negative power");
  std::vector<double> coeffs(static_cast<size_t>(power) + 1, 0.0);
  coeffs.back() = c;
  return Polynomial(std::move(coeffs));
}

Polynomial Polynomial::fromRoots(const std::vector<double>& roots) {
  Polynomial p = constant(1.0);
  for (double r : roots) p = p * Polynomial({-r, 1.0});
  return p;
}

void Polynomial::trim() {
  while (!coeffs_.empty() && std::abs(coeffs_.back()) <= kTrimEpsilon) coeffs_.pop_back();
}

double Polynomial::coeff(int k) const {
  if (k < 0 || k >= static_cast<int>(coeffs_.size())) return 0.0;
  return coeffs_[static_cast<size_t>(k)];
}

double Polynomial::leadingCoeff() const { return coeffs_.empty() ? 0.0 : coeffs_.back(); }

std::complex<double> Polynomial::evaluate(std::complex<double> s) const {
  std::complex<double> acc{0.0, 0.0};
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) acc = acc * s + *it;
  return acc;
}

double Polynomial::evaluate(double s) const {
  double acc = 0.0;
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) acc = acc * s + *it;
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coeffs_.size() <= 1) return Polynomial{};
  std::vector<double> d(coeffs_.size() - 1);
  for (size_t k = 1; k < coeffs_.size(); ++k) d[k - 1] = coeffs_[k] * static_cast<double>(k);
  return Polynomial(std::move(d));
}

Polynomial Polynomial::monic() const {
  if (isZero()) throw std::domain_error("Polynomial::monic: zero polynomial");
  return *this * (1.0 / leadingCoeff());
}

Polynomial Polynomial::operator+(const Polynomial& rhs) const {
  std::vector<double> out(std::max(coeffs_.size(), rhs.coeffs_.size()), 0.0);
  for (size_t k = 0; k < out.size(); ++k) out[k] = coeff(static_cast<int>(k)) + rhs.coeff(static_cast<int>(k));
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& rhs) const { return *this + rhs * -1.0; }

Polynomial Polynomial::operator*(const Polynomial& rhs) const {
  if (isZero() || rhs.isZero()) return Polynomial{};
  std::vector<double> out(coeffs_.size() + rhs.coeffs_.size() - 1, 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i)
    for (size_t j = 0; j < rhs.coeffs_.size(); ++j) out[i + j] += coeffs_[i] * rhs.coeffs_[j];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> out = coeffs_;
  for (double& c : out) c *= scalar;
  return Polynomial(std::move(out));
}

std::vector<std::complex<double>> Polynomial::roots() const {
  if (isZero()) throw std::domain_error("Polynomial::roots: zero polynomial");
  const int n = degree();
  if (n == 0) return {};
  if (n == 1) return {std::complex<double>{-coeffs_[0] / coeffs_[1], 0.0}};
  if (n == 2) {
    // Stable quadratic formula; keeps conjugate pairs exactly conjugate.
    const double a = coeffs_[2], b = coeffs_[1], c = coeffs_[0];
    const double disc = b * b - 4.0 * a * c;
    if (disc >= 0.0) {
      const double q = -0.5 * (b + std::copysign(std::sqrt(disc), b));
      double r1 = q / a;
      double r2 = (q != 0.0) ? c / q : -b / a - r1;
      return {{r1, 0.0}, {r2, 0.0}};
    }
    const double re = -b / (2.0 * a);
    const double im = std::sqrt(-disc) / (2.0 * a);
    return {{re, im}, {re, -im}};
  }

  // Durand-Kerner on the monic polynomial. Degrees here are tiny, so the
  // simple simultaneous iteration converges in a handful of steps.
  const Polynomial m = monic();
  std::vector<std::complex<double>> z(static_cast<size_t>(n));
  // Initial guesses on a circle of radius derived from the Cauchy bound,
  // with an irrational angle offset so no guess starts on the real axis.
  double bound = 0.0;
  for (int k = 0; k < n; ++k) bound = std::max(bound, std::abs(m.coeff(k)));
  const double radius = 1.0 + bound;
  for (int k = 0; k < n; ++k) {
    const double angle = 2.0 * 3.14159265358979323846 * (static_cast<double>(k) + 0.25) /
                         static_cast<double>(n) + 0.4;
    z[static_cast<size_t>(k)] = std::polar(radius, angle);
  }

  constexpr int kMaxIter = 500;
  constexpr double kTol = 1e-13;
  for (int iter = 0; iter < kMaxIter; ++iter) {
    double max_step = 0.0;
    for (int i = 0; i < n; ++i) {
      std::complex<double> denom{1.0, 0.0};
      for (int j = 0; j < n; ++j)
        if (j != i) denom *= (z[static_cast<size_t>(i)] - z[static_cast<size_t>(j)]);
      const std::complex<double> delta = m.evaluate(z[static_cast<size_t>(i)]) / denom;
      z[static_cast<size_t>(i)] -= delta;
      max_step = std::max(max_step, std::abs(delta));
    }
    if (max_step < kTol * radius) break;
  }

  // Snap near-real roots onto the real axis so downstream stability checks
  // are not confused by iteration noise.
  for (auto& root : z) {
    if (std::abs(root.imag()) < 1e-9 * (1.0 + std::abs(root.real()))) root = {root.real(), 0.0};
  }
  return z;
}

}  // namespace pllbist::control
