#pragma once

#include <complex>
#include <vector>

namespace pllbist::control {

/// Dense univariate polynomial with real coefficients, stored in ascending
/// power order: coeffs()[k] multiplies s^k.
///
/// Used as the building block for rational transfer functions. Degrees in
/// this library are tiny (loop filters are order <= 4), so the simple dense
/// representation and O(n^2) arithmetic are appropriate.
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;

  /// Construct from ascending coefficients; trailing zeros are trimmed.
  explicit Polynomial(std::vector<double> ascending_coeffs);

  /// Construct a constant polynomial.
  static Polynomial constant(double value);

  /// Monomial c * s^power.
  static Polynomial monomial(double c, int power);

  /// Product of (s - r_i) over the given real roots.
  static Polynomial fromRoots(const std::vector<double>& roots);

  /// Degree of the polynomial; the zero polynomial reports degree -1.
  [[nodiscard]] int degree() const { return static_cast<int>(coeffs_.size()) - 1; }

  [[nodiscard]] bool isZero() const { return coeffs_.empty(); }

  /// Coefficient of s^k (0.0 beyond the stored degree).
  [[nodiscard]] double coeff(int k) const;

  [[nodiscard]] const std::vector<double>& coeffs() const { return coeffs_; }

  /// Leading (highest-power) coefficient; 0.0 for the zero polynomial.
  [[nodiscard]] double leadingCoeff() const;

  /// Evaluate at a complex point via Horner's rule.
  [[nodiscard]] std::complex<double> evaluate(std::complex<double> s) const;
  [[nodiscard]] double evaluate(double s) const;

  /// First derivative.
  [[nodiscard]] Polynomial derivative() const;

  /// All complex roots, via Durand-Kerner iteration. Throws
  /// std::domain_error on the zero polynomial; returns empty for constants.
  [[nodiscard]] std::vector<std::complex<double>> roots() const;

  /// Polynomial scaled so that the leading coefficient is 1. Throws
  /// std::domain_error on the zero polynomial.
  [[nodiscard]] Polynomial monic() const;

  Polynomial operator+(const Polynomial& rhs) const;
  Polynomial operator-(const Polynomial& rhs) const;
  Polynomial operator*(const Polynomial& rhs) const;
  Polynomial operator*(double scalar) const;

  bool operator==(const Polynomial& rhs) const = default;

 private:
  void trim();

  std::vector<double> coeffs_;
};

}  // namespace pllbist::control
