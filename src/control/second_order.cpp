#include "control/second_order.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace pllbist::control {

namespace {
constexpr double kPeakingZetaLimit = 0.70710678118654752440;  // 1/sqrt(2)
}

double peakFrequency(double omega_n, double zeta) {
  if (omega_n <= 0.0) throw std::domain_error("peakFrequency: omega_n must be positive");
  if (zeta <= 0.0 || zeta >= kPeakingZetaLimit)
    throw std::domain_error("peakFrequency: requires 0 < zeta < 1/sqrt(2)");
  return omega_n * std::sqrt(1.0 - 2.0 * zeta * zeta);
}

double peakingDb(double zeta) {
  if (zeta <= 0.0 || zeta >= kPeakingZetaLimit)
    throw std::domain_error("peakingDb: requires 0 < zeta < 1/sqrt(2)");
  return amplitudeToDb(1.0 / (2.0 * zeta * std::sqrt(1.0 - zeta * zeta)));
}

double dampingFromPeakingDb(double peaking_db) {
  if (peaking_db <= 0.0) throw std::domain_error("dampingFromPeakingDb: peaking must be > 0 dB");
  // Invert Mp = 1/(2 z sqrt(1-z^2)): let u = z^2, then 4u(1-u) = 1/Mp^2,
  // u = (1 - sqrt(1 - 1/Mp^2)) / 2 (taking the branch with z < 1/sqrt2).
  const double mp = dbToAmplitude(peaking_db);
  const double disc = 1.0 - 1.0 / (mp * mp);
  const double u = 0.5 * (1.0 - std::sqrt(disc));
  return std::sqrt(u);
}

double bandwidth3Db(double omega_n, double zeta) {
  if (omega_n <= 0.0) throw std::domain_error("bandwidth3Db: omega_n must be positive");
  if (zeta < 0.0) throw std::domain_error("bandwidth3Db: zeta must be non-negative");
  const double a = 1.0 - 2.0 * zeta * zeta;
  return omega_n * std::sqrt(a + std::sqrt(a * a + 1.0));
}

double dampingFromBandwidthPeakRatio(double ratio) {
  if (ratio <= 1.0) throw std::domain_error("dampingFromBandwidthPeakRatio: ratio must be > 1");
  // w3dB/wp = sqrt( (a + sqrt(a^2+1)) / a ) with a = 1-2z^2 in (0,1).
  // Solve r^2 = (a + sqrt(a^2+1))/a  =>  sqrt(a^2+1) = a (r^2 - 1)
  //   =>  a^2 + 1 = a^2 (r^2-1)^2  =>  a = 1/sqrt((r^2-1)^2 - 1).
  const double r2m1 = ratio * ratio - 1.0;
  const double denom = r2m1 * r2m1 - 1.0;
  if (denom <= 0.0)
    throw std::domain_error("dampingFromBandwidthPeakRatio: ratio too small for a peaking system");
  const double a = 1.0 / std::sqrt(denom);
  if (a >= 1.0) throw std::domain_error("dampingFromBandwidthPeakRatio: ratio too large");
  return std::sqrt((1.0 - a) / 2.0);
}

double naturalFrequencyFromPeak(double omega_p, double zeta) {
  if (omega_p <= 0.0) throw std::domain_error("naturalFrequencyFromPeak: omega_p must be positive");
  if (zeta <= 0.0 || zeta >= kPeakingZetaLimit)
    throw std::domain_error("naturalFrequencyFromPeak: requires 0 < zeta < 1/sqrt(2)");
  return omega_p / std::sqrt(1.0 - 2.0 * zeta * zeta);
}

double settlingTime2Pct(double omega_n, double zeta) {
  if (omega_n <= 0.0 || zeta <= 0.0)
    throw std::domain_error("settlingTime2Pct: omega_n and zeta must be positive");
  return 4.0 / (zeta * omega_n);
}

double stepOvershootFraction(double zeta) {
  if (zeta < 0.0 || zeta >= 1.0)
    throw std::domain_error("stepOvershootFraction: requires 0 <= zeta < 1");
  if (zeta == 0.0) return 1.0;
  return std::exp(-kPi * zeta / std::sqrt(1.0 - zeta * zeta));
}

}  // namespace pllbist::control
