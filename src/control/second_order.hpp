#pragma once

namespace pllbist::control {

/// Natural frequency / damping pair of a second-order system.
struct SecondOrderParams {
  double omega_n_rad_per_s = 0.0;
  double zeta = 0.0;
};

/// Closed-form relationships for the standard unity-DC-gain second-order
/// low-pass H(s) = wn^2 / (s^2 + 2*zeta*wn*s + wn^2). These back the
/// annotations of the paper's Figure 1 (0 dB asymptote, omega_p, omega_3dB)
/// and the damping-from-peaking estimation used in BIST post-processing.

/// Frequency of the magnitude peak, omega_p = wn*sqrt(1 - 2*zeta^2).
/// Only underdamped systems with zeta < 1/sqrt(2) peak; throws
/// std::domain_error otherwise.
double peakFrequency(double omega_n, double zeta);

/// Peak magnitude above DC in dB: 20*log10(1 / (2*zeta*sqrt(1 - zeta^2))).
/// Requires 0 < zeta < 1/sqrt(2).
double peakingDb(double zeta);

/// Inverse of peakingDb: damping ratio from a measured peak height in dB.
/// Requires peaking_db > 0.
double dampingFromPeakingDb(double peaking_db);

/// One-sided -3 dB bandwidth:
/// w3dB = wn * sqrt( (1-2*zeta^2) + sqrt((1-2*zeta^2)^2 + 1) ).
double bandwidth3Db(double omega_n, double zeta);

/// Inverse mapping: damping ratio from the ratio w3dB / wp of the measured
/// -3 dB bandwidth to the measured peak frequency (both > 0, ratio > 1).
/// Useful when the absolute magnitude scale is unknown (eqn (7) referencing
/// removes the scale but peaking may be distorted by step quantisation).
double dampingFromBandwidthPeakRatio(double ratio);

/// Natural frequency recovered from a measured peak frequency and damping:
/// wn = wp / sqrt(1 - 2*zeta^2).
double naturalFrequencyFromPeak(double omega_p, double zeta);

/// Time-domain links (the paper's motivation: frequency-domain features
/// "relate directly to the time domain response").
/// 2% settling time approximation 4/(zeta*wn) for underdamped systems.
double settlingTime2Pct(double omega_n, double zeta);

/// Fractional overshoot of the step response, exp(-pi*zeta/sqrt(1-zeta^2)).
/// Requires 0 <= zeta < 1.
double stepOvershootFraction(double zeta);

}  // namespace pllbist::control
