#include "control/state_space.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::control {

StateSpace toStateSpace(const TransferFunction& tf) {
  const Polynomial& num = tf.numerator();
  const Polynomial& den = tf.denominator();
  if (num.degree() > den.degree())
    throw std::invalid_argument("toStateSpace: improper transfer function");
  const int n = den.degree();

  StateSpace ss;
  if (n == 0) {
    ss.d = num.coeff(0) / den.coeff(0);
    return ss;
  }

  // Normalise so the denominator is monic: s^n + a_{n-1} s^{n-1} + ... + a_0.
  const double lead = den.leadingCoeff();
  std::vector<double> a(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) a[static_cast<size_t>(k)] = den.coeff(k) / lead;
  std::vector<double> b(static_cast<size_t>(n) + 1, 0.0);
  for (int k = 0; k <= n; ++k) b[static_cast<size_t>(k)] = num.coeff(k) / lead;

  // Controllable canonical form. D = b_n; C_k = b_k - b_n * a_k.
  ss.d = b[static_cast<size_t>(n)];
  ss.a.assign(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
  ss.b.assign(static_cast<size_t>(n), 0.0);
  ss.c.assign(static_cast<size_t>(n), 0.0);
  for (int row = 0; row < n - 1; ++row)
    ss.a[static_cast<size_t>(row) * n + static_cast<size_t>(row) + 1] = 1.0;
  for (int col = 0; col < n; ++col)
    ss.a[static_cast<size_t>(n - 1) * n + static_cast<size_t>(col)] = -a[static_cast<size_t>(col)];
  ss.b[static_cast<size_t>(n) - 1] = 1.0;
  for (int k = 0; k < n; ++k)
    ss.c[static_cast<size_t>(k)] = b[static_cast<size_t>(k)] - ss.d * a[static_cast<size_t>(k)];
  return ss;
}

namespace {

void derivative(const StateSpace& ss, const std::vector<double>& x, double u,
                std::vector<double>& dx) {
  const int n = ss.order();
  for (int i = 0; i < n; ++i) {
    double acc = ss.b[static_cast<size_t>(i)] * u;
    for (int j = 0; j < n; ++j)
      acc += ss.a[static_cast<size_t>(i) * n + static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
    dx[static_cast<size_t>(i)] = acc;
  }
}

double output(const StateSpace& ss, const std::vector<double>& x, double u) {
  double y = ss.d * u;
  for (int i = 0; i < ss.order(); ++i) y += ss.c[static_cast<size_t>(i)] * x[static_cast<size_t>(i)];
  return y;
}

}  // namespace

std::vector<TimePoint> simulate(const StateSpace& ss, const std::vector<double>& u, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("simulate: dt must be positive");
  if (u.empty()) throw std::invalid_argument("simulate: empty input");
  const int n = ss.order();
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  std::vector<double> k1(x), k2(x), k3(x), k4(x), tmp(x);

  std::vector<TimePoint> out;
  out.reserve(u.size());
  for (size_t step = 0; step < u.size(); ++step) {
    const double t = dt * static_cast<double>(step);
    out.push_back({t, output(ss, x, u[step])});
    if (step + 1 == u.size()) break;
    // RK4 with input linearly interpolated across the step.
    const double u0 = u[step];
    const double u1 = u[step + 1];
    const double um = 0.5 * (u0 + u1);
    derivative(ss, x, u0, k1);
    for (int i = 0; i < n; ++i) tmp[static_cast<size_t>(i)] = x[static_cast<size_t>(i)] + 0.5 * dt * k1[static_cast<size_t>(i)];
    derivative(ss, tmp, um, k2);
    for (int i = 0; i < n; ++i) tmp[static_cast<size_t>(i)] = x[static_cast<size_t>(i)] + 0.5 * dt * k2[static_cast<size_t>(i)];
    derivative(ss, tmp, um, k3);
    for (int i = 0; i < n; ++i) tmp[static_cast<size_t>(i)] = x[static_cast<size_t>(i)] + dt * k3[static_cast<size_t>(i)];
    derivative(ss, tmp, u1, k4);
    for (int i = 0; i < n; ++i)
      x[static_cast<size_t>(i)] += dt / 6.0 *
                                   (k1[static_cast<size_t>(i)] + 2.0 * k2[static_cast<size_t>(i)] +
                                    2.0 * k3[static_cast<size_t>(i)] + k4[static_cast<size_t>(i)]);
  }
  return out;
}

std::vector<TimePoint> stepResponse(const TransferFunction& tf, double t_end, int n) {
  if (t_end <= 0.0 || n < 2) throw std::invalid_argument("stepResponse: bad window");
  const StateSpace ss = toStateSpace(tf);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  return simulate(ss, u, t_end / static_cast<double>(n - 1));
}

StepInfo analyzeStep(const std::vector<TimePoint>& r) {
  if (r.size() < 3) throw std::invalid_argument("analyzeStep: too few samples");
  StepInfo info;
  info.final_value = r.back().value;
  if (info.final_value == 0.0) throw std::domain_error("analyzeStep: zero final value");

  double peak = r.front().value;
  for (const TimePoint& p : r) {
    if ((info.final_value > 0.0 && p.value > peak) || (info.final_value < 0.0 && p.value < peak)) {
      peak = p.value;
      info.peak_time_s = p.time_s;
    }
  }
  info.overshoot_fraction = std::max(0.0, (peak - info.final_value) / info.final_value);

  const double lo = 0.1 * info.final_value;
  const double hi = 0.9 * info.final_value;
  double t10 = -1.0, t90 = -1.0;
  for (const TimePoint& p : r) {
    if (t10 < 0.0 && std::abs(p.value) >= std::abs(lo)) t10 = p.time_s;
    if (t90 < 0.0 && std::abs(p.value) >= std::abs(hi)) t90 = p.time_s;
    if (t10 >= 0.0 && t90 >= 0.0) break;
  }
  info.rise_time_s = (t10 >= 0.0 && t90 >= t10) ? t90 - t10 : 0.0;

  const double band = 0.02 * std::abs(info.final_value);
  info.settling_time_s = 0.0;
  for (size_t i = r.size(); i-- > 0;) {
    if (std::abs(r[i].value - info.final_value) > band) {
      info.settling_time_s = (i + 1 < r.size()) ? r[i + 1].time_s : r.back().time_s;
      break;
    }
  }
  return info;
}

}  // namespace pllbist::control
