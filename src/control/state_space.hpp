#pragma once

#include <vector>

#include "control/transfer_function.hpp"

namespace pllbist::control {

/// Dense state-space realisation x' = A x + B u, y = C x + D u.
struct StateSpace {
  // Row-major square A (n x n), column vectors B (n), C (n), scalar D.
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  double d = 0.0;

  [[nodiscard]] int order() const { return static_cast<int>(b.size()); }
};

/// Controllable-canonical realisation of a *proper* transfer function
/// (relative degree >= 0). Throws std::invalid_argument on improper H.
StateSpace toStateSpace(const TransferFunction& tf);

/// One sampled point of a time response.
struct TimePoint {
  double time_s = 0.0;
  double value = 0.0;
};

/// Simulate y(t) for an arbitrary scalar input u(t) with classic RK4 at
/// fixed step dt, from zero initial state. Returns n+1 samples including
/// t = 0.
std::vector<TimePoint> simulate(const StateSpace& ss, const std::vector<double>& u, double dt);

/// Unit-step response of H over [0, t_end] with n samples (n >= 2).
std::vector<TimePoint> stepResponse(const TransferFunction& tf, double t_end, int n = 400);

/// Features of a step response (assumes it settles to a nonzero final
/// value within the simulated window).
struct StepInfo {
  double final_value = 0.0;
  double overshoot_fraction = 0.0;  ///< (peak - final)/final, 0 if no overshoot
  double peak_time_s = 0.0;
  double rise_time_s = 0.0;         ///< 10% -> 90% of final
  double settling_time_s = 0.0;     ///< last entry into the +/-2% band
};
StepInfo analyzeStep(const std::vector<TimePoint>& response);

}  // namespace pllbist::control
