#include "control/transfer_function.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace pllbist::control {

TransferFunction::TransferFunction() : num_(), den_(Polynomial::constant(1.0)) {}

TransferFunction::TransferFunction(Polynomial numerator, Polynomial denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  if (den_.isZero()) throw std::invalid_argument("TransferFunction: zero denominator");
}

TransferFunction TransferFunction::gain(double k) {
  return {Polynomial::constant(k), Polynomial::constant(1.0)};
}

TransferFunction TransferFunction::integrator(double k) {
  return {Polynomial::constant(k), Polynomial({0.0, 1.0})};
}

TransferFunction TransferFunction::firstOrderLowPass(double k, double tau) {
  if (tau <= 0.0) throw std::invalid_argument("firstOrderLowPass: tau must be positive");
  return {Polynomial::constant(k), Polynomial({1.0, tau})};
}

TransferFunction TransferFunction::secondOrderLowPass(double omega_n, double zeta) {
  if (omega_n <= 0.0) throw std::invalid_argument("secondOrderLowPass: omega_n must be positive");
  if (zeta < 0.0) throw std::invalid_argument("secondOrderLowPass: zeta must be non-negative");
  return {Polynomial::constant(omega_n * omega_n),
          Polynomial({omega_n * omega_n, 2.0 * zeta * omega_n, 1.0})};
}

std::complex<double> TransferFunction::evaluate(std::complex<double> s) const {
  return num_.evaluate(s) / den_.evaluate(s);
}

std::complex<double> TransferFunction::atFrequency(double omega) const {
  return evaluate(std::complex<double>{0.0, omega});
}

double TransferFunction::magnitudeDbAt(double omega) const {
  return amplitudeToDb(std::abs(atFrequency(omega)));
}

double TransferFunction::phaseDegAt(double omega) const {
  return radToDeg(std::arg(atFrequency(omega)));
}

double TransferFunction::dcGain() const {
  const double d0 = den_.evaluate(0.0);
  const double n0 = num_.evaluate(0.0);
  if (d0 == 0.0) {
    if (n0 == 0.0) return 0.0;  // pole/zero cancellation at DC handled loosely
    throw std::domain_error("TransferFunction::dcGain: pole at s=0");
  }
  return n0 / d0;
}

std::vector<std::complex<double>> TransferFunction::poles() const { return den_.roots(); }

std::vector<std::complex<double>> TransferFunction::zeros() const {
  if (num_.isZero()) return {};
  return num_.roots();
}

bool TransferFunction::isStable() const {
  for (const auto& p : poles())
    if (p.real() >= 0.0) return false;
  return true;
}

int TransferFunction::relativeDegree() const { return den_.degree() - num_.degree(); }

TransferFunction TransferFunction::series(const TransferFunction& rhs) const {
  return {num_ * rhs.num_, den_ * rhs.den_};
}

TransferFunction TransferFunction::parallel(const TransferFunction& rhs) const {
  return {num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_};
}

TransferFunction TransferFunction::feedback(const TransferFunction& fb) const {
  // G/(1 + G*Hfb) with G = num/den, Hfb = fn/fd:
  //   (num*fd) / (den*fd + num*fn)
  return {num_ * fb.den_, den_ * fb.den_ + num_ * fb.num_};
}

TransferFunction TransferFunction::unityFeedback() const { return feedback(gain(1.0)); }

TransferFunction TransferFunction::operator*(double k) const { return {num_ * k, den_}; }

}  // namespace pllbist::control
