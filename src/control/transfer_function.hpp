#pragma once

#include <complex>
#include <vector>

#include "control/polynomial.hpp"

namespace pllbist::control {

/// Rational Laplace-domain transfer function H(s) = num(s) / den(s).
///
/// Supports the block-diagram algebra needed to assemble PLL loop models:
/// series and parallel connection, scalar gain, and closing a feedback loop.
class TransferFunction {
 public:
  /// H(s) = 0 / 1.
  TransferFunction();

  /// Throws std::invalid_argument if the denominator is the zero polynomial.
  TransferFunction(Polynomial numerator, Polynomial denominator);

  /// Constant gain k.
  static TransferFunction gain(double k);

  /// A pure integrator k / s.
  static TransferFunction integrator(double k = 1.0);

  /// First-order low-pass k / (1 + s*tau).
  static TransferFunction firstOrderLowPass(double k, double tau);

  /// Standard unity-DC-gain second-order low-pass
  /// wn^2 / (s^2 + 2*zeta*wn*s + wn^2).
  static TransferFunction secondOrderLowPass(double omega_n, double zeta);

  [[nodiscard]] const Polynomial& numerator() const { return num_; }
  [[nodiscard]] const Polynomial& denominator() const { return den_; }

  /// Evaluate H at a complex frequency s.
  [[nodiscard]] std::complex<double> evaluate(std::complex<double> s) const;

  /// Evaluate H(j*omega) for a real radian frequency.
  [[nodiscard]] std::complex<double> atFrequency(double omega_rad_per_s) const;

  /// |H(j*omega)| in dB.
  [[nodiscard]] double magnitudeDbAt(double omega_rad_per_s) const;

  /// arg H(j*omega) in degrees, principal value (-180, 180].
  [[nodiscard]] double phaseDegAt(double omega_rad_per_s) const;

  /// H(0). Throws std::domain_error if the denominator vanishes at 0 while
  /// the numerator does not (pole at DC).
  [[nodiscard]] double dcGain() const;

  /// Roots of the denominator / numerator.
  [[nodiscard]] std::vector<std::complex<double>> poles() const;
  [[nodiscard]] std::vector<std::complex<double>> zeros() const;

  /// True iff every pole has strictly negative real part.
  [[nodiscard]] bool isStable() const;

  /// Relative degree (den degree - num degree). Negative means improper.
  [[nodiscard]] int relativeDegree() const;

  /// Series connection: this followed by rhs (product).
  [[nodiscard]] TransferFunction series(const TransferFunction& rhs) const;

  /// Parallel connection (sum).
  [[nodiscard]] TransferFunction parallel(const TransferFunction& rhs) const;

  /// Negative-feedback closure: this / (1 + this * feedback).
  [[nodiscard]] TransferFunction feedback(const TransferFunction& feedback_path) const;

  /// Unity negative feedback: this / (1 + this).
  [[nodiscard]] TransferFunction unityFeedback() const;

  TransferFunction operator*(const TransferFunction& rhs) const { return series(rhs); }
  TransferFunction operator*(double k) const;
  TransferFunction operator+(const TransferFunction& rhs) const { return parallel(rhs); }

 private:
  Polynomial num_;
  Polynomial den_;
};

}  // namespace pllbist::control
