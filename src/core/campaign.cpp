#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "bist/testbench.hpp"
#include "core/report_builder.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace pllbist::core {

namespace {

using K = Status::Kind;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Handles into the global registry for the campaign runtime. These feed
/// live dashboards and the chaos bench; the campaign *report* never reads
/// them back (it is derived from per-point data so resume stays
/// deterministic).
struct CampaignTelemetry {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter points_executed = reg.counter("campaign.points_executed");
  obs::Counter points_resumed = reg.counter("campaign.points_resumed");
  obs::Counter journal_records = reg.counter("campaign.journal_records");
  obs::Counter torn_tails = reg.counter("campaign.torn_tails_repaired");
  obs::Counter breaker_trips = reg.counter("campaign.breaker_trips");
  obs::Counter deadline_hits = reg.counter("campaign.deadline_hits");
  obs::Histogram journal_append_wall =
      reg.histogram("campaign.journal_append_wall_s", obs::MetricsRegistry::latencyBucketsSeconds());
  obs::Histogram resume_load_wall =
      reg.histogram("campaign.resume_load_wall_s", obs::MetricsRegistry::latencyBucketsSeconds());
};

CampaignTelemetry& telemetry() {
  static CampaignTelemetry* t = new CampaignTelemetry();  // handles into the leaked registry
  return *t;
}

CheckpointRecord makeRecord(std::size_t index, const bist::ResilientResponse& r) {
  CheckpointRecord rec;
  rec.index = index;
  rec.point = r.response.points.front();
  rec.nominal_vco_hz = r.response.nominal_vco_hz;
  rec.static_reference_deviation_hz = r.response.static_reference_deviation_hz;
  rec.relocks = r.report.relocks;
  rec.relock_failures = r.report.relock_failures;
  rec.sim_time_s = r.report.sim_time_s;
  rec.bench = r.bench;
  return rec;
}

void tallyQuality(bist::SweepQualityReport& q, const bist::MeasuredPoint& p) {
  ++q.points_total;
  q.attempts_total += p.attempts;
  switch (p.quality) {
    case bist::PointQuality::Ok: ++q.ok; break;
    case bist::PointQuality::Retried: ++q.retried; break;
    case bist::PointQuality::Degraded: ++q.degraded; break;
    case bist::PointQuality::Dropped: ++q.dropped; break;
  }
}

/// Rebuild a resumed point's contribution to the merged response. The raw
/// entry is a skeleton (counter captures are not journaled); everything
/// the run report and Bode conversion read is reconstructed exactly.
void mergeRecord(bist::ResilientResponse& m, const CheckpointRecord& rec) {
  if (m.response.nominal_vco_hz == 0.0 && rec.nominal_vco_hz != 0.0) {
    m.response.nominal_vco_hz = rec.nominal_vco_hz;
    m.response.static_reference_deviation_hz = rec.static_reference_deviation_hz;
  }
  bist::TestSequencer::PointResult raw;
  raw.modulation_hz = rec.point.modulation_hz;
  raw.phase_deg = rec.point.phase_deg;
  raw.held_frequency_hz = rec.nominal_vco_hz + rec.point.deviation_hz;
  raw.timed_out = rec.point.timed_out;
  raw.status = rec.point.status;
  tallyQuality(m.report, rec.point);
  m.report.relocks += rec.relocks;
  m.report.relock_failures += rec.relock_failures;
  m.report.sim_time_s += rec.sim_time_s;
  m.bench.add(rec.bench);
  m.response.points.push_back(rec.point);
  m.response.raw.push_back(std::move(raw));
}

/// Deterministic campaign report: identical in shape to
/// core::buildRunReport's output, but every section — kernel counters,
/// fault statistics, the metrics block — is derived from the merged
/// per-point data instead of the process-global registry, whose history
/// depends on what else the process simulated. Resume then reproduces the
/// uninterrupted report byte-for-byte (modulo stripTimingFields).
obs::RunReport buildCampaignReport(const CheckpointHeader& header, int jobs,
                                   const bist::ResilientResponse& result) {
  obs::RunReport rep;
  rep.tool = header.tool;
  rep.device = header.device;
  rep.stimulus = header.stimulus;
  rep.config_digest = header.config_digest;
  rep.jobs = jobs;
  rep.sweep_status = Status::kindName(result.status.kind());

  const bist::SweepQualityReport& q = result.report;
  rep.quality.points_total = q.points_total;
  rep.quality.ok = q.ok;
  rep.quality.retried = q.retried;
  rep.quality.degraded = q.degraded;
  rep.quality.dropped = q.dropped;
  rep.quality.attempts_total = q.attempts_total;
  rep.quality.relocks = q.relocks;
  rep.quality.relock_failures = q.relock_failures;
  rep.quality.sim_time_s = q.sim_time_s;
  rep.quality.wall_time_s = q.wall_time_s;

  rep.points.reserve(result.response.points.size());
  for (const bist::MeasuredPoint& p : result.response.points) {
    obs::RunReport::Point row;
    row.fm_hz = p.modulation_hz;
    row.deviation_hz = p.deviation_hz;
    row.phase_deg = p.phase_deg;
    row.quality = bist::to_string(p.quality);
    row.attempts = p.attempts;
    row.status = Status::kindName(p.status.kind());
    row.status_context = p.status.context();
    row.wall_time_s = p.wall_time_s;
    rep.points.push_back(std::move(row));
  }

  rep.kernel.processed = result.bench.events_processed;
  rep.kernel.delivered = result.bench.events_delivered;
  rep.kernel.dropped = result.bench.events_dropped;
  rep.kernel.delayed = result.bench.events_delayed;
  rep.kernel.swallowed = result.bench.events_swallowed;
  if (result.bench.fault_benches > 0) {
    obs::RunReport::FaultStats f;
    f.considered = result.bench.faults_considered;
    f.dropped = result.bench.faults_dropped;
    f.delayed = result.bench.faults_delayed;
    f.glitches = result.bench.faults_glitches;
    rep.faults = f;
  }

  // Synthesised metrics block, fixed order, mirroring the live counter
  // names so downstream consumers read one vocabulary.
  auto add = [&](const char* name, uint64_t value) {
    obs::CounterValue c;
    c.name = name;
    c.value = value;
    rep.metrics.counters.push_back(std::move(c));
  };
  add("bist.resilient.attempts", static_cast<uint64_t>(q.attempts_total));
  add("bist.resilient.relocks", static_cast<uint64_t>(q.relocks));
  add("bist.resilient.relock_failures", static_cast<uint64_t>(q.relock_failures));
  add("bist.resilient.points_ok", static_cast<uint64_t>(q.ok));
  add("bist.resilient.points_retried", static_cast<uint64_t>(q.retried));
  add("bist.resilient.points_degraded", static_cast<uint64_t>(q.degraded));
  add("bist.resilient.points_dropped", static_cast<uint64_t>(q.dropped));
  add("sim.kernel.events_processed", result.bench.events_processed);
  add("sim.kernel.events_delivered", result.bench.events_delivered);
  add("sim.kernel.events_dropped", result.bench.events_dropped);
  add("sim.kernel.events_delayed", result.bench.events_delayed);
  add("sim.kernel.events_swallowed", result.bench.events_swallowed);
  if (result.bench.fault_benches > 0) {
    add("sim.faults.benches", result.bench.fault_benches);
    add("sim.faults.considered", result.bench.faults_considered);
    add("sim.faults.dropped", result.bench.faults_dropped);
    add("sim.faults.delayed", result.bench.faults_delayed);
    add("sim.faults.glitches", result.bench.faults_glitches);
  }
  return rep;
}

}  // namespace

Status CampaignOptions::check() const {
  if (jobs < 0)
    return Status::makef(K::InvalidArgument, "CampaignOptions: jobs = %d, must be >= 0 (0 = auto)",
                         jobs);
  if (deadline_s < 0.0)
    return Status::makef(K::InvalidArgument,
                         "CampaignOptions: deadline_s = %g, must be >= 0 (0 = unlimited)",
                         deadline_s);
  if (supervision_tick_s <= 0.0)
    return Status::makef(K::InvalidArgument,
                         "CampaignOptions: supervision_tick_s = %g, must be positive",
                         supervision_tick_s);
  if (relock_breaker < 0)
    return Status::makef(K::InvalidArgument,
                         "CampaignOptions: relock_breaker = %d, must be >= 0 (0 = disabled)",
                         relock_breaker);
  if (!resume_path.empty() && resume_path == journal_path) {
    // In-place continuation: fine by construction.
  }
  return resilience.check();
}

void CampaignOptions::validate() const { check().throwIfError(); }

Campaign::Campaign(const pll::PllConfig& config, bist::SweepOptions sweep, CampaignOptions options)
    : config_(config), sweep_(std::move(sweep)), options_(std::move(options)) {
  config_.validate();
  sweep_.check(config_).throwIfError();
  options_.check().throwIfError();
}

CampaignResult Campaign::run() {
  if (used_) throw std::logic_error("Campaign::run: campaign already used");
  used_ = true;
  PLLBIST_SPAN("campaign.run");
  const auto wall_start = Clock::now();

  CampaignResult out;
  const std::vector<double>& freqs = sweep_.modulation_frequencies_hz;
  const std::size_t n = freqs.size();
  CheckpointHeader header;
  header.tool = options_.tool;
  header.device = options_.device;
  header.stimulus = bist::to_string(sweep_.stimulus);
  header.config_digest = obs::fnv1a64(canonicalConfigString(config_, sweep_));
  header.points_total = n;

  auto failClosed = [&](Status s) {
    out.status = std::move(s);
    out.merged.status = out.status;
    return out;
  };

  // Resume: load previously committed points, fail closed on any identity
  // or integrity violation. A torn final line is repaired (discarded +
  // truncated on the in-place path); its point simply re-runs.
  std::vector<std::optional<CheckpointRecord>> resumed(n);
  JournalWriter writer;
  bool writer_open = false;
  if (!options_.resume_path.empty()) {
    const auto load_start = Clock::now();
    JournalLoadResult loaded;
    if (options_.resume_path == options_.journal_path) {
      if (Status s = writer.resume(options_.journal_path, header, loaded); !s.ok())
        return failClosed(std::move(s));
      writer_open = true;
    } else {
      if (Status s = loadJournal(options_.resume_path, loaded); !s.ok())
        return failClosed(std::move(s));
      if (Status s = checkJournalHeader(loaded.header, header.config_digest, n); !s.ok())
        return failClosed(std::move(s));
    }
    telemetry().resume_load_wall.observe(secondsSince(load_start));
    out.torn_tail_repaired = loaded.torn_tail;
    if (loaded.torn_tail) telemetry().torn_tails.increment();
    for (CheckpointRecord& rec : loaded.records) {
      const std::size_t i = rec.index;
      resumed[i] = std::move(rec);
      ++out.points_resumed;
    }
    telemetry().points_resumed.add(static_cast<uint64_t>(out.points_resumed));
  }
  if (!options_.journal_path.empty() && !writer_open) {
    if (Status s = writer.create(options_.journal_path, header); !s.ok())
      return failClosed(std::move(s));
    writer_open = true;
    // Resumed from a different file: re-commit the inherited records so
    // the target journal alone carries every committed point exactly once.
    for (std::size_t i = 0; i < n; ++i) {
      if (!resumed[i]) continue;
      if (Status s = writer.append(*resumed[i]); !s.ok()) return failClosed(std::move(s));
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!resumed[i]) pending.push_back(i);

  // Deadline supervisor: sleeps in ticks but never past the deadline, so
  // the stop token trips at the deadline itself; the tick only bounds how
  // long the supervisor lingers after a normal finish.
  std::atomic<bool> finished{false};
  std::atomic<bool> deadline_hit{false};
  std::thread supervisor;
  if (options_.deadline_s > 0.0 && !pending.empty()) {
    supervisor = std::thread([&] {
      const auto deadline =
          wall_start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options_.deadline_s));
      const auto tick = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(options_.supervision_tick_s));
      while (!finished.load(std::memory_order_acquire)) {
        const auto now = Clock::now();
        if (now >= deadline) {
          deadline_hit.store(true, std::memory_order_release);
          telemetry().deadline_hits.increment();
          PLLBIST_INSTANT("campaign.deadline");
          stop_.requestStop();
          return;
        }
        std::this_thread::sleep_until(std::min(deadline, now + tick));
      }
    });
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> breaker_open{false};
  std::mutex commit_mutex;
  // Guarded by commit_mutex:
  std::vector<std::optional<bist::ResilientResponse>> exec(n);
  int consecutive_relock_failed_points = 0;
  int executed = 0;
  Status journal_error;

  auto worker = [&] {
    obs::ScopedSpan span("campaign.worker");
    for (;;) {
      if (stop_.stopRequested() || breaker_open.load(std::memory_order_acquire)) return;
      const std::size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
      if (k >= pending.size()) return;
      const std::size_t i = pending[k];
      bist::ResilientResponse r;
      try {
        bist::ResilientSweep engine(config_, bist::singlePointOptions(sweep_, i),
                                    options_.resilience);
        engine.attachStop(&stop_);
        if (on_point_testbench_)
          engine.onTestbench([this, i](bist::SweepTestbench& bench) { on_point_testbench_(i, bench); });
        r = engine.run();
      } catch (const std::exception& e) {
        r.status = Status::makef(K::Internal, "point %zu (fm = %g Hz): engine threw: %s", i,
                                 freqs[i], e.what());
      }

      std::lock_guard<std::mutex> guard(commit_mutex);
      // A cancelled point is not terminal — it re-runs on resume, so it is
      // never committed to the journal and never counts as executed.
      const bool cancelled =
          r.status.kind() == K::Cancelled ||
          (!r.response.points.empty() &&
           r.response.points.front().status.kind() == K::Cancelled);
      if (!cancelled && !r.response.points.empty()) {
        if (writer_open && journal_error.ok()) {
          const auto append_start = Clock::now();
          if (Status s = writer.append(makeRecord(i, r)); !s.ok()) {
            // Durability was requested and is gone: stop burning budget on
            // points that could not be checkpointed.
            journal_error = std::move(s);
            writer.close();
            stop_.requestStop();
          } else {
            telemetry().journal_append_wall.observe(secondsSince(append_start));
            telemetry().journal_records.increment();
          }
        }
        const bist::MeasuredPoint& p = r.response.points.front();
        const bool relock_failure_drop = p.quality == bist::PointQuality::Dropped &&
                                         p.status.kind() == K::RelockFailed;
        if (relock_failure_drop) {
          ++consecutive_relock_failed_points;
          if (options_.relock_breaker > 0 &&
              consecutive_relock_failed_points >= options_.relock_breaker &&
              !breaker_open.load(std::memory_order_relaxed)) {
            breaker_open.store(true, std::memory_order_release);
            telemetry().breaker_trips.increment();
            PLLBIST_INSTANT("campaign.breaker_open");
          }
        } else {
          consecutive_relock_failed_points = 0;
        }
        ++executed;
        telemetry().points_executed.increment();
      }
      const bist::MeasuredPoint* point =
          r.response.points.empty() ? nullptr : &r.response.points.front();
      exec[i] = std::move(r);
      if (progress_ && point != nullptr) progress_(i, *point);
    }
  };

  if (!pending.empty()) {
    const unsigned hw = std::thread::hardware_concurrency();
    std::size_t jobs = options_.jobs > 0 ? static_cast<std::size_t>(options_.jobs)
                                         : static_cast<std::size_t>(hw > 0 ? hw : 1);
    jobs = std::min(jobs, pending.size());
    if (jobs <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(jobs);
      for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
  }
  finished.store(true, std::memory_order_release);
  if (supervisor.joinable()) supervisor.join();
  writer.close();

  out.points_executed = executed;
  out.deadline_hit = deadline_hit.load(std::memory_order_acquire);
  out.stop_requested = stop_.stopRequested();
  out.breaker_opened = breaker_open.load(std::memory_order_acquire);

  // Deterministic merge in original point-index order, exactly the
  // ParallelSweep discipline: resumed records and freshly executed points
  // are indistinguishable in the result, and points that never ran are
  // synthesised as Dropped with the reason they never ran.
  bist::ResilientResponse& m = out.merged;
  Status first_fatal;
  for (std::size_t i = 0; i < n; ++i) {
    if (resumed[i]) {
      mergeRecord(m, *resumed[i]);
      continue;
    }
    if (exec[i]) {
      bist::ResilientResponse& r = *exec[i];
      if (m.response.nominal_vco_hz == 0.0 && r.response.nominal_vco_hz != 0.0) {
        m.response.nominal_vco_hz = r.response.nominal_vco_hz;
        m.response.static_reference_deviation_hz = r.response.static_reference_deviation_hz;
      }
      m.bench.add(r.bench);
      m.report.sim_time_s += r.report.sim_time_s;
      if (r.response.points.empty()) {
        bist::MeasuredPoint p;
        p.modulation_hz = freqs[i];
        p.timed_out = true;
        p.quality = bist::PointQuality::Dropped;
        p.attempts = 0;
        p.status = r.status.ok()
                       ? Status::makef(K::Internal,
                                       "point %zu (fm = %g Hz): engine produced no point", i,
                                       freqs[i])
                       : r.status;
        bist::TestSequencer::PointResult raw;
        raw.modulation_hz = freqs[i];
        raw.timed_out = true;
        raw.status = p.status;
        tallyQuality(m.report, p);
        m.response.points.push_back(std::move(p));
        m.response.raw.push_back(std::move(raw));
      } else {
        bist::MeasuredPoint p = r.response.points.front();
        if (out.deadline_hit && p.status.kind() == K::Cancelled)
          p.status = Status::makef(K::DeadlineExceeded, "campaign deadline %g s exceeded; %s",
                                   options_.deadline_s, p.status.context().c_str());
        tallyQuality(m.report, p);
        m.report.relocks += r.report.relocks;
        m.report.relock_failures += r.report.relock_failures;
        m.response.points.push_back(std::move(p));
        m.response.raw.push_back(std::move(r.response.raw.front()));
      }
      if (first_fatal.ok() && !r.status.ok() && r.status.kind() != K::Cancelled)
        first_fatal = r.status;
      continue;
    }
    // Never claimed: deadline first (the deadline trips the stop token, so
    // check the specific cause before the generic one), then stop, then
    // breaker.
    bist::MeasuredPoint p;
    p.modulation_hz = freqs[i];
    p.timed_out = true;
    p.quality = bist::PointQuality::Dropped;
    p.attempts = 0;
    if (out.deadline_hit) {
      p.status = Status::makef(K::DeadlineExceeded,
                               "point %zu (fm = %g Hz): campaign deadline %g s exceeded before "
                               "the point was claimed",
                               i, freqs[i], options_.deadline_s);
    } else if (out.stop_requested) {
      p.status = Status::makef(K::Cancelled,
                               "point %zu (fm = %g Hz): stop requested before the point was "
                               "claimed",
                               i, freqs[i]);
    } else if (out.breaker_opened) {
      p.status = Status::makef(K::RelockFailed,
                               "point %zu (fm = %g Hz): relock circuit breaker open after %d "
                               "consecutive relock-failed points; point not attempted",
                               i, freqs[i], options_.relock_breaker);
    } else {
      p.status = Status::makef(K::Internal, "point %zu (fm = %g Hz): point was never claimed", i,
                               freqs[i]);
    }
    bist::TestSequencer::PointResult raw;
    raw.modulation_hz = freqs[i];
    raw.timed_out = true;
    raw.status = p.status;
    tallyQuality(m.report, p);
    m.response.points.push_back(std::move(p));
    m.response.raw.push_back(std::move(raw));
  }
  m.report.wall_time_s = secondsSince(wall_start);
  m.breaker_open = out.breaker_opened;

  if (!journal_error.ok()) {
    out.status = journal_error;
  } else if (out.deadline_hit) {
    out.status = Status::makef(K::DeadlineExceeded,
                               "campaign deadline %g s exceeded; %d of %zu points completed",
                               options_.deadline_s, m.report.usable(), n);
  } else if (out.stop_requested) {
    out.status = Status::makef(K::Cancelled, "stop requested; %d of %zu points completed",
                               m.report.usable(), n);
  } else if (!first_fatal.ok()) {
    out.status = first_fatal;
  }
  m.status = out.status;
  out.report = buildCampaignReport(header, options_.jobs, m);
  return out;
}

}  // namespace pllbist::core
