#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "bist/parallel_sweep.hpp"
#include "common/status.hpp"
#include "common/stop_token.hpp"
#include "core/journal.hpp"
#include "obs/report.hpp"
#include "pll/config.hpp"

namespace pllbist::core {

/// Policy knobs of the supervised campaign runtime.
struct CampaignOptions {
  /// Worker threads over the campaign's points. 0 = one per hardware
  /// thread; clamped to the number of points still pending.
  int jobs = 1;
  /// Retry/relock/degrade policy for every point's engine, including the
  /// per-point wall budget (resilience.point_budget_s).
  bist::ResilientSweepOptions resilience;
  /// Whole-campaign wall-clock budget, seconds; 0 disables. The supervisor
  /// trips the stop token at the deadline; the campaign terminates within
  /// one supervision tick plus the engines' bounded drain, with every
  /// unfinished point recorded as Dropped/DeadlineExceeded.
  double deadline_s = 0.0;
  /// Supervisor poll period (it sleeps in ticks, never past the deadline).
  double supervision_tick_s = 0.05;
  /// Campaign-level relock circuit breaker: after this many consecutive
  /// completed points dropped as relock failures, remaining points are not
  /// attempted (0 disables). Counted in completion order — deterministic
  /// at jobs = 1, approximate under concurrency (documented in DESIGN §10).
  int relock_breaker = 0;
  /// Write a checkpoint journal here ("" = none). With resume_path equal,
  /// the journal continues in place (torn tail repaired by truncation).
  std::string journal_path;
  /// Resume from this journal ("" = fresh campaign): config digest and
  /// campaign size must match or run() fails closed with InvalidArgument.
  std::string resume_path;
  std::string tool = "campaign";  ///< report/journal `tool` field
  std::string device = "custom";  ///< report/journal `device` field

  /// Structured check; every rejection names the offending field and value.
  [[nodiscard]] Status check() const;
  /// check().throwIfError() — kept for the exception-based API.
  void validate() const;
};

/// Outcome of a campaign run. `report` is built deterministically from the
/// merged per-point data alone (never the global metrics registry), which
/// is what makes a resumed campaign's report byte-identical (modulo
/// stripTimingFields) to an uninterrupted run's.
struct CampaignResult {
  bist::ResilientResponse merged;
  obs::RunReport report;
  Status status;           ///< == merged.status
  int points_executed = 0; ///< points simulated (and committed) this invocation
  int points_resumed = 0;  ///< points replayed from the resume journal
  bool deadline_hit = false;
  bool stop_requested = false;
  bool breaker_opened = false;
  bool torn_tail_repaired = false;  ///< resume discarded a torn final line
};

/// Supervised campaign runtime over the per-point sweep engines: durable
/// write-ahead checkpoint journal (one fsync'd JSONL record per completed
/// point), digest-verified resume with exactly-once point accounting,
/// wall-clock deadline supervision, cooperative cancellation, and a relock
/// circuit breaker.
///
/// The campaign farms points exactly like bist::ParallelSweep — one
/// single-point ResilientSweep per ORIGINAL point index, so per-point
/// seeds (pointSeed) are identical whether a point runs in the first
/// invocation, a resumed one, or an uninterrupted run. That index
/// discipline is what makes resume reproduce the uninterrupted result
/// bit-exactly for the deterministic fields.
class Campaign {
 public:
  Campaign(const pll::PllConfig& config, bist::SweepOptions sweep, CampaignOptions options = {});

  /// Cooperative stop, callable from any thread. In-flight points drain as
  /// Dropped/Cancelled, the journal stays durable, and run() returns a
  /// fully-labelled partial result.
  void requestStop() { stop_.requestStop(); }

  /// Also honour `upstream` (e.g. globalStopSource() tripped by the
  /// SIGINT/SIGTERM handlers). Call before run().
  void chainStop(const StopSource* upstream) { stop_.chainTo(upstream); }

  /// Per-point bench hook, as ParallelSweep::onPointTestbench.
  void onPointTestbench(std::function<void(std::size_t, bist::SweepTestbench&)> cb) {
    on_point_testbench_ = std::move(cb);
  }

  /// Fired (serialised, possibly out of point order) after a point's
  /// classification lands — and, when journaling, after its record is
  /// durable on disk. A crash inside this callback therefore never loses
  /// the point it reports.
  void onPointMeasured(std::function<void(std::size_t, const bist::MeasuredPoint&)> cb) {
    progress_ = std::move(cb);
  }

  /// Run the campaign. May be called once per instance.
  CampaignResult run();

 private:
  pll::PllConfig config_;
  bist::SweepOptions sweep_;
  CampaignOptions options_;
  std::function<void(std::size_t, bist::SweepTestbench&)> on_point_testbench_;
  std::function<void(std::size_t, const bist::MeasuredPoint&)> progress_;
  StopSource stop_;
  bool used_ = false;
};

}  // namespace pllbist::core
