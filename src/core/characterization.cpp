#include "core/characterization.hpp"

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "control/second_order.hpp"

namespace pllbist::core {

namespace {
double relError(double measured, double designed) {
  if (designed == 0.0) return 1.0;
  return std::abs(measured - designed) / std::abs(designed);
}
}  // namespace

CharacterizationReport characterize(const pll::PllConfig& config,
                                    const bist::SweepOptions& options) {
  CharacterizationReport report;

  const control::SecondOrderParams design = config.secondOrder();
  report.design_fn_hz = radPerSecToHz(design.omega_n_rad_per_s);
  report.design_zeta = design.zeta;
  report.design_f3db_hz =
      radPerSecToHz(control::bandwidth3Db(design.omega_n_rad_per_s, design.zeta));

  TransferFunctionMeasurement meas(config);
  const MeasurementResult m = meas.runBist(options);
  report.measured_peaking_db = m.parameters.peaking_db;
  if (m.parameters.natural_frequency_hz) report.measured_fn_hz = *m.parameters.natural_frequency_hz;
  if (m.parameters.zeta) report.measured_zeta = *m.parameters.zeta;
  if (m.parameters.bandwidth_3db_hz) report.measured_f3db_hz = *m.parameters.bandwidth_3db_hz;

  report.fn_error = relError(report.measured_fn_hz, report.design_fn_hz);
  report.zeta_error = relError(report.measured_zeta, report.design_zeta);
  report.f3db_error = relError(report.measured_f3db_hz, report.design_f3db_hz);
  return report;
}

std::string CharacterizationReport::render() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%-18s %10s %10s %8s\n"
                "%-18s %10.3f %10.3f %7.1f%%\n"
                "%-18s %10.3f %10.3f %7.1f%%\n"
                "%-18s %10.3f %10.3f %7.1f%%\n"
                "%-18s %10s %10.2f\n",
                "parameter", "designed", "measured", "error",
                "fn (Hz)", design_fn_hz, measured_fn_hz, fn_error * 100.0,
                "zeta", design_zeta, measured_zeta, zeta_error * 100.0,
                "f3dB (Hz)", design_f3db_hz, measured_f3db_hz, f3db_error * 100.0,
                "peaking (dB)", "-", measured_peaking_db);
  return buf;
}

}  // namespace pllbist::core
