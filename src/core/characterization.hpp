#pragma once

#include <string>

#include "core/measurement.hpp"

namespace pllbist::core {

/// Side-by-side comparison of designed, theoretical and measured loop
/// parameters, with relative errors — the characterisation summary a
/// designer reads after a BIST run.
struct CharacterizationReport {
  // Designed (from component values, exact second-order relations).
  double design_fn_hz = 0.0;
  double design_zeta = 0.0;
  double design_f3db_hz = 0.0;  ///< of the capacitor-node response

  // Measured (extracted from the BIST response).
  double measured_fn_hz = 0.0;
  double measured_zeta = 0.0;
  double measured_f3db_hz = 0.0;
  double measured_peaking_db = 0.0;

  // Relative errors measured vs designed (fractions, e.g. 0.05 = 5%).
  double fn_error = 0.0;
  double zeta_error = 0.0;
  double f3db_error = 0.0;

  /// Fixed-width text rendering for logs and bench output.
  [[nodiscard]] std::string render() const;
};

/// Run a BIST measurement and assemble the report. Parameters that could
/// not be extracted are reported as 0 with error 1 (100%).
CharacterizationReport characterize(const pll::PllConfig& config,
                                    const bist::SweepOptions& options);

}  // namespace pllbist::core
