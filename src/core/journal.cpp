#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace pllbist::core {

namespace {

using K = Status::Kind;

std::string digestHex(uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

bool parseDigestHex(const std::string& s, uint64_t& out) {
  if (s.size() != 18 || s.compare(0, 2, "0x") != 0) return false;
  uint64_t v = 0;
  for (char c : s.substr(2)) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  out = v;
  return true;
}

bool parseQuality(const std::string& name, bist::PointQuality& out) {
  using Q = bist::PointQuality;
  for (Q q : {Q::Ok, Q::Retried, Q::Degraded, Q::Dropped}) {
    if (name == bist::to_string(q)) {
      out = q;
      return true;
    }
  }
  return false;
}

// Field extractors; each failure names the offending key so a rejected
// journal says exactly which byte range to look at.
Status getNumber(const obs::JsonValue& obj, const char* key, double& out) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isNumber())
    return Status::makef(K::InvalidArgument, "missing or non-numeric field \"%s\"", key);
  out = v->number;
  return Status();
}

Status getCount(const obs::JsonValue& obj, const char* key, uint64_t& out) {
  double d = 0.0;
  if (Status s = getNumber(obj, key, d); !s.ok()) return s;
  if (d < 0.0 || d != std::floor(d))
    return Status::makef(K::InvalidArgument, "field \"%s\" = %g is not a non-negative integer", key,
                         d);
  out = static_cast<uint64_t>(d);
  return Status();
}

Status getInt(const obs::JsonValue& obj, const char* key, int& out) {
  uint64_t u = 0;
  if (Status s = getCount(obj, key, u); !s.ok()) return s;
  out = static_cast<int>(u);
  return Status();
}

Status getBool(const obs::JsonValue& obj, const char* key, bool& out) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isBool())
    return Status::makef(K::InvalidArgument, "missing or non-boolean field \"%s\"", key);
  out = v->boolean;
  return Status();
}

Status getString(const obs::JsonValue& obj, const char* key, std::string& out) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isString())
    return Status::makef(K::InvalidArgument, "missing or non-string field \"%s\"", key);
  out = v->string;
  return Status();
}

Status parseHeaderLine(std::string_view line, CheckpointHeader& out) {
  obs::JsonValue doc;
  if (Status s = obs::parseJson(line, doc); !s.ok())
    return Status::makef(K::InvalidArgument, "journal header: %s", s.context().c_str());
  if (!doc.isObject())
    return Status::make(K::InvalidArgument, "journal header: not a JSON object");
  std::string schema;
  if (Status s = getString(doc, "schema", schema); !s.ok())
    return Status::makef(K::InvalidArgument, "journal header: %s", s.context().c_str());
  if (schema != kCheckpointSchema)
    return Status::makef(K::InvalidArgument, "journal header: schema \"%s\", expected \"%s\"",
                         schema.c_str(), kCheckpointSchema);
  std::string digest;
  Status s;
  if (!(s = getString(doc, "tool", out.tool)).ok() ||
      !(s = getString(doc, "device", out.device)).ok() ||
      !(s = getString(doc, "stimulus", out.stimulus)).ok() ||
      !(s = getString(doc, "digest", digest)).ok())
    return Status::makef(K::InvalidArgument, "journal header: %s", s.context().c_str());
  if (!parseDigestHex(digest, out.config_digest))
    return Status::makef(K::InvalidArgument,
                         "journal header: digest \"%s\" is not an 0x-prefixed 16-digit hex string",
                         digest.c_str());
  uint64_t points = 0;
  if (!(s = getCount(doc, "points_total", points)).ok())
    return Status::makef(K::InvalidArgument, "journal header: %s", s.context().c_str());
  if (points == 0)
    return Status::make(K::InvalidArgument, "journal header: points_total must be positive");
  out.points_total = static_cast<std::size_t>(points);
  return Status();
}

Status parseRecordLine(std::string_view line, std::size_t points_total, CheckpointRecord& out) {
  obs::JsonValue doc;
  if (Status s = obs::parseJson(line, doc); !s.ok()) return s;
  if (!doc.isObject()) return Status::make(K::InvalidArgument, "record is not a JSON object");
  std::string record_kind;
  if (Status s = getString(doc, "record", record_kind); !s.ok()) return s;
  if (record_kind != "point")
    return Status::makef(K::InvalidArgument, "unknown record kind \"%s\"", record_kind.c_str());
  uint64_t index = 0;
  if (Status s = getCount(doc, "index", index); !s.ok()) return s;
  if (index >= points_total)
    return Status::makef(K::InvalidArgument, "record index %llu out of range (points_total = %zu)",
                         static_cast<unsigned long long>(index), points_total);
  out.index = static_cast<std::size_t>(index);

  Status s;
  std::string quality, status_kind, status_context;
  if (!(s = getNumber(doc, "fm_hz", out.point.modulation_hz)).ok() ||
      !(s = getNumber(doc, "deviation_hz", out.point.deviation_hz)).ok() ||
      !(s = getNumber(doc, "phase_deg", out.point.phase_deg)).ok() ||
      !(s = getNumber(doc, "unity_gain_deviation_hz", out.point.unity_gain_deviation_hz)).ok() ||
      !(s = getBool(doc, "timed_out", out.point.timed_out)).ok() ||
      !(s = getString(doc, "quality", quality)).ok() ||
      !(s = getInt(doc, "attempts", out.point.attempts)).ok() ||
      !(s = getString(doc, "status", status_kind)).ok() ||
      !(s = getString(doc, "status_context", status_context)).ok() ||
      !(s = getNumber(doc, "wall_time_s", out.point.wall_time_s)).ok() ||
      !(s = getNumber(doc, "nominal_hz", out.nominal_vco_hz)).ok() ||
      !(s = getNumber(doc, "static_ref_hz", out.static_reference_deviation_hz)).ok() ||
      !(s = getInt(doc, "relocks", out.relocks)).ok() ||
      !(s = getInt(doc, "relock_failures", out.relock_failures)).ok() ||
      !(s = getNumber(doc, "sim_time_s", out.sim_time_s)).ok())
    return s;
  if (!parseQuality(quality, out.point.quality))
    return Status::makef(K::InvalidArgument, "unknown point quality \"%s\"", quality.c_str());
  Status::Kind kind = Status::Kind::Ok;
  if (!Status::parseKind(status_kind, kind))
    return Status::makef(K::InvalidArgument, "unknown status kind \"%s\"", status_kind.c_str());
  out.point.status = Status::make(kind, std::move(status_context));
  if (kind == Status::Kind::Cancelled)
    return Status::makef(K::InvalidArgument,
                         "record %llu is Cancelled; cancelled points are never committed",
                         static_cast<unsigned long long>(index));

  const obs::JsonValue* kernel = doc.find("kernel");
  if (kernel == nullptr || !kernel->isObject())
    return Status::make(K::InvalidArgument, "missing or non-object field \"kernel\"");
  if (!(s = getCount(*kernel, "processed", out.bench.events_processed)).ok() ||
      !(s = getCount(*kernel, "delivered", out.bench.events_delivered)).ok() ||
      !(s = getCount(*kernel, "dropped", out.bench.events_dropped)).ok() ||
      !(s = getCount(*kernel, "delayed", out.bench.events_delayed)).ok() ||
      !(s = getCount(*kernel, "swallowed", out.bench.events_swallowed)).ok())
    return Status::makef(K::InvalidArgument, "kernel: %s", s.context().c_str());

  if (const obs::JsonValue* faults = doc.find("faults")) {
    if (!faults->isObject())
      return Status::make(K::InvalidArgument, "field \"faults\" is not an object");
    if (!(s = getCount(*faults, "benches", out.bench.fault_benches)).ok() ||
        !(s = getCount(*faults, "considered", out.bench.faults_considered)).ok() ||
        !(s = getCount(*faults, "dropped", out.bench.faults_dropped)).ok() ||
        !(s = getCount(*faults, "delayed", out.bench.faults_delayed)).ok() ||
        !(s = getCount(*faults, "glitches", out.bench.faults_glitches)).ok())
      return Status::makef(K::InvalidArgument, "faults: %s", s.context().c_str());
  }
  return Status();
}

Status errnoStatus(const char* op, const std::string& path) {
  return Status::makef(K::Internal, "%s %s: %s", op, path.c_str(), std::strerror(errno));
}

}  // namespace

std::string JournalWriter::headerLine(const CheckpointHeader& header) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.beginObject();
  w.key("schema").value(kCheckpointSchema);
  w.key("tool").value(header.tool);
  w.key("device").value(header.device);
  w.key("stimulus").value(header.stimulus);
  w.key("digest").value(digestHex(header.config_digest));
  w.key("points_total").value(static_cast<uint64_t>(header.points_total));
  w.endObject();
  return os.str();
}

std::string JournalWriter::recordLine(const CheckpointRecord& r) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.beginObject();
  w.key("record").value("point");
  w.key("index").value(static_cast<uint64_t>(r.index));
  w.key("fm_hz").value(r.point.modulation_hz);
  w.key("deviation_hz").value(r.point.deviation_hz);
  w.key("phase_deg").value(r.point.phase_deg);
  w.key("unity_gain_deviation_hz").value(r.point.unity_gain_deviation_hz);
  w.key("timed_out").value(r.point.timed_out);
  w.key("quality").value(bist::to_string(r.point.quality));
  w.key("attempts").value(r.point.attempts);
  w.key("status").value(Status::kindName(r.point.status.kind()));
  w.key("status_context").value(r.point.status.context());
  w.key("wall_time_s").value(r.point.wall_time_s);
  w.key("nominal_hz").value(r.nominal_vco_hz);
  w.key("static_ref_hz").value(r.static_reference_deviation_hz);
  w.key("relocks").value(r.relocks);
  w.key("relock_failures").value(r.relock_failures);
  w.key("sim_time_s").value(r.sim_time_s);
  w.key("kernel").beginObject();
  w.key("processed").value(r.bench.events_processed);
  w.key("delivered").value(r.bench.events_delivered);
  w.key("dropped").value(r.bench.events_dropped);
  w.key("delayed").value(r.bench.events_delayed);
  w.key("swallowed").value(r.bench.events_swallowed);
  w.endObject();
  if (r.bench.fault_benches > 0) {
    w.key("faults").beginObject();
    w.key("benches").value(r.bench.fault_benches);
    w.key("considered").value(r.bench.faults_considered);
    w.key("dropped").value(r.bench.faults_dropped);
    w.key("delayed").value(r.bench.faults_delayed);
    w.key("glitches").value(r.bench.faults_glitches);
    w.endObject();
  }
  w.endObject();
  return os.str();
}

Status parseJournal(std::string_view text, JournalLoadResult& out) {
  out = JournalLoadResult();
  if (text.empty()) return Status::make(K::InvalidArgument, "journal is empty");

  // Split into lines; a final line without its terminating '\n' is the
  // torn-tail candidate. Offsets are tracked so clean_bytes lands exactly
  // after the last durable record.
  struct Line {
    std::string_view body;
    std::size_t begin = 0;
    bool complete = false;  ///< terminated by '\n'
  };
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      lines.push_back({text.substr(pos), pos, false});
      break;
    }
    lines.push_back({text.substr(pos, nl - pos), pos, true});
    pos = nl + 1;
  }

  // Header: never recoverable. Without a trusted digest the records cannot
  // be attributed to any campaign, so a torn or corrupt header fails closed.
  if (Status s = parseHeaderLine(lines.front().body, out.header); !s.ok()) return s;
  if (!lines.front().complete)
    return Status::make(K::InvalidArgument, "journal header line is not newline-terminated");
  out.clean_bytes = lines.front().begin + lines.front().body.size() + 1;

  std::vector<bool> seen(out.header.points_total, false);
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const Line& line = lines[li];
    const bool is_last = li + 1 == lines.size();
    if (!line.complete) {
      // The mid-append crash signature: one trailing line that never got
      // its newline. Even if the bytes happen to parse, a later append
      // would concatenate onto it — discard it; the point re-runs.
      out.torn_tail = true;
      return Status();
    }
    if (line.body.empty()) continue;  // tolerate blank lines
    CheckpointRecord rec;
    if (Status s = parseRecordLine(line.body, out.header.points_total, rec); !s.ok()) {
      if (is_last) {
        // Newline-terminated but corrupt final record (e.g. a torn write
        // that happened to end in '\n'): recoverable the same way.
        out.torn_tail = true;
        return Status();
      }
      return Status::makef(K::InvalidArgument, "journal line %zu: %s", li + 1,
                           s.context().c_str());
    }
    if (seen[rec.index]) {
      ++out.duplicates_ignored;  // keep-first preserves exactly-once accounting
    } else {
      seen[rec.index] = true;
      out.records.push_back(std::move(rec));
    }
    out.clean_bytes = line.begin + line.body.size() + 1;
  }
  return Status();
}

Status loadJournal(const std::string& path, JournalLoadResult& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Status::makef(K::InvalidArgument, "cannot open journal %s", path.c_str());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseJournal(buf.str(), out);
}

Status checkJournalHeader(const CheckpointHeader& loaded, uint64_t expected_digest,
                          std::size_t expected_points) {
  if (loaded.config_digest != expected_digest)
    return Status::makef(K::InvalidArgument,
                         "journal config digest %s does not match this campaign's %s — refusing "
                         "to merge results measured on a different configuration",
                         digestHex(loaded.config_digest).c_str(),
                         digestHex(expected_digest).c_str());
  if (loaded.points_total != expected_points)
    return Status::makef(K::InvalidArgument,
                         "journal points_total = %zu does not match this campaign's %zu",
                         loaded.points_total, expected_points);
  return Status();
}

Status JournalWriter::create(const std::string& path, const CheckpointHeader& header) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) return errnoStatus("open", path);
  const std::string line = headerLine(header) + "\n";
  if (::write(fd_, line.data(), line.size()) != static_cast<ssize_t>(line.size())) {
    Status s = errnoStatus("write", path);
    close();
    return s;
  }
  if (::fsync(fd_) != 0) {
    Status s = errnoStatus("fsync", path);
    close();
    return s;
  }
  return Status();
}

Status JournalWriter::resume(const std::string& path, const CheckpointHeader& header,
                             JournalLoadResult& resumed) {
  close();
  if (Status s = loadJournal(path, resumed); !s.ok()) return s;
  if (Status s = checkJournalHeader(resumed.header, header.config_digest, header.points_total);
      !s.ok())
    return s;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) return errnoStatus("open", path);
  // Repair a torn tail in place: truncate to the last complete record so
  // the next append starts on a clean line boundary.
  if (::ftruncate(fd_, static_cast<off_t>(resumed.clean_bytes)) != 0) {
    Status s = errnoStatus("ftruncate", path);
    close();
    return s;
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    Status s = errnoStatus("lseek", path);
    close();
    return s;
  }
  return Status();
}

Status JournalWriter::append(const CheckpointRecord& record) {
  if (fd_ < 0) return Status::make(K::Internal, "JournalWriter::append: journal is not open");
  const std::string line = recordLine(record) + "\n";
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errnoStatus("write", "journal");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) return errnoStatus("fsync", "journal");
  return Status();
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace pllbist::core
