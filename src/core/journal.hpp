#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bist/resilient_sweep.hpp"
#include "common/status.hpp"

namespace pllbist::core {

/// Schema identifier of the checkpoint journal (first line of every file).
inline constexpr const char* kCheckpointSchema = "pllbist.checkpoint/1";

/// Journal header: identifies the campaign the records belong to. The
/// config digest (FNV-1a over core::canonicalConfigString) is the identity
/// check on resume — a journal written for a different device or sweep is
/// rejected, never silently merged.
struct CheckpointHeader {
  std::string tool;      ///< producing binary, e.g. "sweep_cli"
  std::string device;    ///< preset name ("reference", "fast", ...)
  std::string stimulus;  ///< stimulus kind name
  uint64_t config_digest = 0;
  std::size_t points_total = 0;  ///< campaign size; record indices are < this
};

/// One committed point: everything needed to reproduce the point's
/// contribution to the merged response, quality report and run report —
/// measurement, classification, per-engine accounting, and the engine's
/// deterministic kernel/fault counters. A record is only appended after
/// its point reached a terminal classification (Cancelled points are
/// *not* terminal: they re-run on resume).
struct CheckpointRecord {
  std::size_t index = 0;  ///< position in the campaign's frequency list
  bist::MeasuredPoint point;
  double nominal_vco_hz = 0.0;
  double static_reference_deviation_hz = 0.0;
  int relocks = 0;          ///< this point's engine-run relock count
  int relock_failures = 0;  ///< this point's engine-run relock failures
  double sim_time_s = 0.0;  ///< simulated seconds this point's engine consumed
  bist::BenchStats bench;   ///< this point's engine kernel/fault counters
};

/// Result of loading a journal: header, the unique committed records
/// (keep-first on duplicate indices), and crash forensics. `clean_bytes`
/// is the end of the last complete record — a resume-append truncates the
/// file there before writing, repairing a torn tail in place.
struct JournalLoadResult {
  CheckpointHeader header;
  std::vector<CheckpointRecord> records;
  bool torn_tail = false;  ///< a truncated/corrupt final line was discarded
  std::size_t clean_bytes = 0;
  std::size_t duplicates_ignored = 0;
};

/// Parse + validate journal text. Fail-closed contract: a malformed
/// header, a corrupt non-final line, or an out-of-range index returns
/// InvalidArgument (resume must refuse, not guess); only a torn *final*
/// line — the signature of a mid-append crash — is recoverable, reported
/// via torn_tail with the line discarded.
[[nodiscard]] Status parseJournal(std::string_view text, JournalLoadResult& out);

/// Read + parseJournal a file.
[[nodiscard]] Status loadJournal(const std::string& path, JournalLoadResult& out);

/// Verify a loaded journal belongs to this campaign: schema is checked at
/// parse time, this checks digest and campaign size. Used by Campaign
/// resume and the report_check selftest.
[[nodiscard]] Status checkJournalHeader(const CheckpointHeader& loaded, uint64_t expected_digest,
                                        std::size_t expected_points);

/// Append-only JSONL writer with one fsync per record: a record is either
/// durably complete on disk or (after a crash mid-write) a torn final line
/// the loader discards — the write-ahead property the resume semantics
/// rest on.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Create (truncate) `path` and write the fsync'd header line.
  [[nodiscard]] Status create(const std::string& path, const CheckpointHeader& header);

  /// Continue an existing journal: load it, verify it against `header`
  /// (digest + points_total), truncate any torn tail in place, and
  /// position for append. The previously committed records come back
  /// through `resumed`.
  [[nodiscard]] Status resume(const std::string& path, const CheckpointHeader& header,
                              JournalLoadResult& resumed);

  /// Append one fsync'd record line.
  [[nodiscard]] Status append(const CheckpointRecord& record);

  [[nodiscard]] bool isOpen() const { return fd_ >= 0; }
  void close();

  /// Canonical single-line serialisations (no trailing newline); exposed
  /// for the journal fuzzer and the report_check selftest.
  [[nodiscard]] static std::string headerLine(const CheckpointHeader& header);
  [[nodiscard]] static std::string recordLine(const CheckpointRecord& record);

 private:
  int fd_ = -1;
};

}  // namespace pllbist::core
