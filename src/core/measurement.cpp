#include "core/measurement.hpp"

#include <stdexcept>
#include <utility>

#include "common/units.hpp"
#include "control/grid.hpp"

namespace pllbist::core {

TransferFunctionMeasurement::TransferFunctionMeasurement(pll::PllConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

bist::SweepOptions TransferFunctionMeasurement::defaultSweepOptions(bist::StimulusKind stimulus,
                                                                    int points) const {
  bist::SweepOptions opt;
  opt.stimulus = stimulus;
  const double fn_hz = radPerSecToHz(config_.secondOrder().omega_n_rad_per_s);
  opt.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(fn_hz, points);
  return opt;
}

MeasurementResult TransferFunctionMeasurement::runBist(const bist::SweepOptions& options) const {
  bist::BistController controller(config_, options);
  MeasurementResult result;
  result.sweep = controller.run();
  result.bode = result.sweep.toBode();
  result.parameters = bist::extractParameters(result.bode);
  return result;
}

MeasurementResult TransferFunctionMeasurement::runBist(bist::StimulusKind stimulus,
                                                       int points) const {
  return runBist(defaultSweepOptions(stimulus, points));
}

namespace {

/// Shared deterministic aggregation of a labelled sweep (resilient or
/// parallel) into a MeasurementResult: fit what survived, record why when
/// nothing did.
MeasurementResult aggregateResilient(bist::ResilientResponse resilient) {
  MeasurementResult result;
  result.sweep = std::move(resilient.response);
  result.quality = resilient.report;
  result.status = resilient.status;
  if (result.quality.usable() == 0) {
    if (result.status.ok())
      result.status = Status::makef(Status::Kind::NoValidPoints,
                                    "all %d sweep points dropped, no response to fit",
                                    result.quality.points_total);
    return result;
  }
  try {
    result.bode = result.sweep.toBode();
    result.parameters = bist::extractParameters(result.bode);
  } catch (const std::domain_error& e) {
    // Survivable points without a usable reference deviation (e.g. the DC
    // reference itself was measured against a railed loop).
    if (result.status.ok())
      result.status = Status::make(Status::Kind::NoValidPoints, e.what());
  }
  return result;
}

}  // namespace

MeasurementResult TransferFunctionMeasurement::runResilient(
    const bist::SweepOptions& options, const bist::ResilientSweepOptions& resilience) const {
  bist::ResilientSweep engine(config_, options, resilience);
  return aggregateResilient(engine.run());
}

MeasurementResult TransferFunctionMeasurement::runParallel(
    const bist::SweepOptions& options, const bist::ParallelSweepOptions& parallel) const {
  bist::ParallelSweep engine(config_, options, parallel);
  return aggregateResilient(engine.run());
}

baseline::BenchResult TransferFunctionMeasurement::runBench(
    const baseline::BenchOptions& options) const {
  return baseline::measureBench(config_, options);
}

baseline::BenchResult TransferFunctionMeasurement::runBench(int points) const {
  baseline::BenchOptions opt;
  const double fn_hz = radPerSecToHz(config_.secondOrder().omega_n_rad_per_s);
  opt.modulation_frequencies_hz = control::logspace(fn_hz / 10.0, fn_hz * 5.0, points);
  return runBench(opt);
}

control::TransferFunction TransferFunctionMeasurement::theoryEqn4() const {
  return config_.closedLoopDividedTf();
}

control::TransferFunction TransferFunctionMeasurement::theoryCapacitor() const {
  return config_.capacitorNodeTf();
}

}  // namespace pllbist::core
