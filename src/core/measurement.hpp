#pragma once

#include "baseline/bench_measurement.hpp"
#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "control/bode.hpp"
#include "pll/config.hpp"

namespace pllbist::core {

/// One complete transfer-function measurement: the raw sweep, the eqn (7)
/// referenced Bode response, and the extracted loop parameters.
struct MeasurementResult {
  bist::MeasuredResponse sweep;
  control::BodeResponse bode;
  bist::ExtractedParameters parameters;
};

/// High-level facade over the BIST and the bench baseline. Owns nothing
/// persistent; each call builds a fresh simulated testbench.
class TransferFunctionMeasurement {
 public:
  explicit TransferFunctionMeasurement(pll::PllConfig config);

  [[nodiscard]] const pll::PllConfig& config() const { return config_; }

  /// Run the on-chip BIST measurement (the paper's method).
  [[nodiscard]] MeasurementResult runBist(const bist::SweepOptions& options) const;

  /// Run the same measurement with defaults derived from the designed
  /// response (sweep around the design fn, given stimulus kind).
  [[nodiscard]] MeasurementResult runBist(
      bist::StimulusKind stimulus = bist::StimulusKind::MultiToneFsk, int points = 12) const;

  /// Run the conventional bench measurement baseline (analog access).
  [[nodiscard]] baseline::BenchResult runBench(const baseline::BenchOptions& options) const;
  [[nodiscard]] baseline::BenchResult runBench(int points = 12) const;

  /// Theory curves for comparison.
  [[nodiscard]] control::TransferFunction theoryEqn4() const;       ///< closed loop, with zero
  [[nodiscard]] control::TransferFunction theoryCapacitor() const;  ///< what the BIST captures

  /// Default sweep options matched to this device.
  [[nodiscard]] bist::SweepOptions defaultSweepOptions(
      bist::StimulusKind stimulus = bist::StimulusKind::MultiToneFsk, int points = 12) const;

 private:
  pll::PllConfig config_;
};

}  // namespace pllbist::core
