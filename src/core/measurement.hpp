#pragma once

#include "baseline/bench_measurement.hpp"
#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "bist/parallel_sweep.hpp"
#include "bist/resilient_sweep.hpp"
#include "common/status.hpp"
#include "control/bode.hpp"
#include "pll/config.hpp"

namespace pllbist::core {

/// One complete transfer-function measurement: the raw sweep, the eqn (7)
/// referenced Bode response, the extracted loop parameters, and — for
/// resilient runs — the per-sweep quality accounting.
struct MeasurementResult {
  bist::MeasuredResponse sweep;
  control::BodeResponse bode;
  bist::ExtractedParameters parameters;
  /// Retry/relock/drop accounting. All-zero for plain runBist() sweeps.
  bist::SweepQualityReport quality;
  /// Ok when the Bode response and parameters are populated; NoValidPoints
  /// when too few points survived to form a response (resilient runs never
  /// throw on a dead device), or the fatal sweep status. Plain runBist()
  /// throws instead.
  Status status;
};

/// High-level facade over the BIST and the bench baseline. Owns nothing
/// persistent; each call builds a fresh simulated testbench.
class TransferFunctionMeasurement {
 public:
  explicit TransferFunctionMeasurement(pll::PllConfig config);

  [[nodiscard]] const pll::PllConfig& config() const { return config_; }

  /// Run the on-chip BIST measurement (the paper's method).
  [[nodiscard]] MeasurementResult runBist(const bist::SweepOptions& options) const;

  /// Run the same measurement with defaults derived from the designed
  /// response (sweep around the design fn, given stimulus kind).
  [[nodiscard]] MeasurementResult runBist(
      bist::StimulusKind stimulus = bist::StimulusKind::MultiToneFsk, int points = 12) const;

  /// Run the measurement through the retry/relock/degrade layer. Unlike
  /// runBist this never throws on a sick device: dropped points are
  /// excluded from the Bode fit, the quality report records what happened,
  /// and `status` is NoValidPoints when nothing usable survived.
  [[nodiscard]] MeasurementResult runResilient(
      const bist::SweepOptions& options, const bist::ResilientSweepOptions& resilience = {}) const;

  /// Run the measurement on the parallel point farm: one independent
  /// testbench per frequency point on `parallel.jobs` workers, merged
  /// deterministically — for a fixed configuration and seed set the result
  /// is bit-identical for every job count (only quality.wall_time_s
  /// varies). Same degradation contract as runResilient: never throws on a
  /// sick device.
  [[nodiscard]] MeasurementResult runParallel(
      const bist::SweepOptions& options, const bist::ParallelSweepOptions& parallel = {}) const;

  /// Run the conventional bench measurement baseline (analog access).
  [[nodiscard]] baseline::BenchResult runBench(const baseline::BenchOptions& options) const;
  [[nodiscard]] baseline::BenchResult runBench(int points = 12) const;

  /// Theory curves for comparison.
  [[nodiscard]] control::TransferFunction theoryEqn4() const;       ///< closed loop, with zero
  [[nodiscard]] control::TransferFunction theoryCapacitor() const;  ///< what the BIST captures

  /// Default sweep options matched to this device.
  [[nodiscard]] bist::SweepOptions defaultSweepOptions(
      bist::StimulusKind stimulus = bist::StimulusKind::MultiToneFsk, int points = 12) const;

 private:
  pll::PllConfig config_;
};

}  // namespace pllbist::core
