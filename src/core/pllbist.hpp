#pragma once

/// Umbrella header for the pllbist library.
///
/// pllbist reproduces "Techniques for Automatic On-Chip Closed Loop
/// Transfer Function Monitoring For Embedded Charge Pump Phase Locked
/// Loops" (Burbidge, Tijou, Richardson — DATE 2003): a digital-only BIST
/// that measures an embedded CP-PLL's closed-loop magnitude/phase response
/// using a DCO-generated discrete-FM stimulus, a modified-PFD peak
/// detector, loop-hold, and frequency/phase counters.
///
/// Layering (each usable on its own):
///   control/   rational transfer functions, Bode analysis, loop design math
///   dsp/       FFT, sine fitting, statistics
///   sim/       discrete-event digital simulation kernel
///   pll/       behavioral CP-PLL models (PFD, pump+filter, VCO, dividers)
///   bist/      the paper's test hardware (DCO, modulator, peak detector,
///              counters, sequencer, sweep controller)
///   baseline/  conventional bench measurement (analog access) comparator
///   core/      high-level facades: measurement, characterisation, test plan

#include "baseline/bench_measurement.hpp"
#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "bist/dco.hpp"
#include "bist/delay_line.hpp"
#include "bist/modulator.hpp"
#include "bist/peak_detector.hpp"
#include "bist/resilient_sweep.hpp"
#include "bist/sequencer.hpp"
#include "bist/step_test.hpp"
#include "bist/testbench.hpp"
#include "common/status.hpp"
#include "common/stop_token.hpp"
#include "common/units.hpp"
#include "control/bode.hpp"
#include "control/cppll_model.hpp"
#include "control/grid.hpp"
#include "control/second_order.hpp"
#include "control/transfer_function.hpp"
#include "core/campaign.hpp"
#include "core/characterization.hpp"
#include "core/journal.hpp"
#include "core/measurement.hpp"
#include "core/report_builder.hpp"
#include "core/testplan.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"
#include "pll/config.hpp"
#include "pll/cppll.hpp"
#include "pll/faults.hpp"
#include "pll/probes.hpp"
#include "pll/sources.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"
#include "sim/trace.hpp"
