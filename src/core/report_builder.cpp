#include "core/report_builder.hpp"

#include <cstdio>

#include "bist/controller.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace pllbist::core {

namespace {

void appendField(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%s;", key, obs::jsonNumber(value).c_str());
  out += buf;
}

void appendField(std::string& out, const char* key, long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%ld;", key, value);
  out += buf;
}

}  // namespace

std::string canonicalConfigString(const pll::PllConfig& config, const bist::SweepOptions& sweep) {
  std::string s;
  s.reserve(512);
  appendField(s, "ref_hz", config.ref_frequency_hz);
  appendField(s, "div_n", static_cast<long>(config.divider_n));
  appendField(s, "div_r", static_cast<long>(config.ref_divider_r));
  appendField(s, "pump_kind", static_cast<long>(config.pump.kind));
  appendField(s, "vdd", config.pump.vdd_v);
  appendField(s, "vss", config.pump.vss_v);
  appendField(s, "ip", config.pump.pump_current_a);
  appendField(s, "r1", config.pump.r1_ohm);
  appendField(s, "r2", config.pump.r2_ohm);
  appendField(s, "c", config.pump.c_farad);
  appendField(s, "vc0", config.pump.initial_vc_v);
  appendField(s, "up", config.pump.up_strength);
  appendField(s, "dn", config.pump.down_strength);
  appendField(s, "leak", config.pump.leak_ohm);
  appendField(s, "vco_f0", config.vco.center_frequency_hz);
  appendField(s, "vco_kv", config.vco.gain_hz_per_v);
  appendField(s, "vco_vc", config.vco.v_center_v);
  appendField(s, "vco_min", config.vco.min_frequency_hz);
  appendField(s, "vco_max", config.vco.max_frequency_hz);
  appendField(s, "pfd_clkq", config.pfd.ff_clk_to_q_s);
  appendField(s, "pfd_and", config.pfd.and_delay_s);
  appendField(s, "pfd_rstq", config.pfd.ff_reset_to_q_s);
  appendField(s, "stim", static_cast<long>(sweep.stimulus));
  appendField(s, "fm_steps", static_cast<long>(sweep.fm_steps));
  appendField(s, "dev_hz", sweep.deviation_hz);
  appendField(s, "pm_taps", static_cast<long>(sweep.pm_taps));
  appendField(s, "pm_tap_s", sweep.pm_tap_delay_s);
  appendField(s, "mclk", sweep.master_clock_hz);
  appendField(s, "lock_wait", sweep.lock_wait_s);
  appendField(s, "settle", sweep.static_settle_s);
  appendField(s, "jitter_rms", sweep.ref_edge_jitter_rms_s);
  appendField(s, "jitter_seed", static_cast<long>(sweep.jitter_seed));
  s += "fm=[";
  for (double fm : sweep.modulation_frequencies_hz) {
    s += obs::jsonNumber(fm);
    s += ',';
  }
  s += "];";
  return s;
}

obs::RunReport buildRunReport(const std::string& tool, const std::string& device,
                              const pll::PllConfig& config, const bist::SweepOptions& sweep,
                              int jobs, const bist::ResilientResponse& result) {
  obs::RunReport rep;
  rep.tool = tool;
  rep.device = device;
  rep.stimulus = bist::to_string(sweep.stimulus);
  rep.config_digest = obs::fnv1a64(canonicalConfigString(config, sweep));
  rep.jobs = jobs;
  rep.sweep_status = Status::kindName(result.status.kind());

  const bist::SweepQualityReport& q = result.report;
  rep.quality.points_total = q.points_total;
  rep.quality.ok = q.ok;
  rep.quality.retried = q.retried;
  rep.quality.degraded = q.degraded;
  rep.quality.dropped = q.dropped;
  rep.quality.attempts_total = q.attempts_total;
  rep.quality.relocks = q.relocks;
  rep.quality.relock_failures = q.relock_failures;
  rep.quality.sim_time_s = q.sim_time_s;
  rep.quality.wall_time_s = q.wall_time_s;

  rep.points.reserve(result.response.points.size());
  for (const bist::MeasuredPoint& p : result.response.points) {
    obs::RunReport::Point row;
    row.fm_hz = p.modulation_hz;
    row.deviation_hz = p.deviation_hz;
    row.phase_deg = p.phase_deg;
    row.quality = bist::to_string(p.quality);
    row.attempts = p.attempts;
    row.status = Status::kindName(p.status.kind());
    row.status_context = p.status.context();
    row.wall_time_s = p.wall_time_s;
    rep.points.push_back(std::move(row));
  }

  rep.metrics = obs::MetricsRegistry::global().snapshot();
  auto counter = [&](const char* name) -> uint64_t {
    const obs::CounterValue* c = rep.metrics.findCounter(name);
    return c ? c->value : 0;
  };
  rep.kernel.processed = counter("sim.kernel.events_processed");
  rep.kernel.delivered = counter("sim.kernel.events_delivered");
  rep.kernel.dropped = counter("sim.kernel.events_dropped");
  rep.kernel.delayed = counter("sim.kernel.events_delayed");
  rep.kernel.swallowed = counter("sim.kernel.events_swallowed");
  if (counter("sim.faults.benches") > 0) {
    obs::RunReport::FaultStats f;
    f.considered = counter("sim.faults.considered");
    f.dropped = counter("sim.faults.dropped");
    f.delayed = counter("sim.faults.delayed");
    f.glitches = counter("sim.faults.glitches");
    rep.faults = f;
  }
  return rep;
}

}  // namespace pllbist::core
