#pragma once

#include <string>

#include "bist/resilient_sweep.hpp"
#include "obs/report.hpp"
#include "pll/config.hpp"

namespace pllbist::core {

/// Deterministic textual form of a device + sweep configuration, the input
/// to the RunReport config digest. Every numeric knob is printed with
/// shortest-round-trip precision in a fixed order, so two configurations
/// hash equal iff they describe the same measurement.
[[nodiscard]] std::string canonicalConfigString(const pll::PllConfig& config,
                                                const bist::SweepOptions& sweep);

/// Assemble the consolidated obs::RunReport for one finished sweep: naming
/// and digest from the configuration, per-point rows and quality accounting
/// from the response, kernel/fault statistics and the full metrics snapshot
/// read from the global obs::MetricsRegistry (reset the registry before the
/// run if the report must cover only this run). `jobs` records how the
/// sweep was executed: -1 = serial shared-bench engine, >= 0 = point farm.
[[nodiscard]] obs::RunReport buildRunReport(const std::string& tool, const std::string& device,
                                            const pll::PllConfig& config,
                                            const bist::SweepOptions& sweep, int jobs,
                                            const bist::ResilientResponse& result);

}  // namespace pllbist::core
