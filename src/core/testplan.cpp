#include "core/testplan.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pllbist::core {

TestPlan::TestPlan(const pll::PllConfig& golden, const bist::SweepOptions& sweep, double tolerance)
    : golden_(golden), sweep_(sweep) {
  if (tolerance <= 0.0 || tolerance >= 1.0)
    throw std::invalid_argument("TestPlan: tolerance must be in (0, 1)");
  TransferFunctionMeasurement meas(golden_);
  const MeasurementResult m = meas.runBist(sweep_);
  golden_params_ = m.parameters;
  golden_nominal_hz_ = m.sweep.nominal_vco_hz;
  limits_ = bist::limitsFromGolden(golden_params_, tolerance);
}

TestPlan::DutResult TestPlan::screen(const pll::PllConfig& dut) const {
  DutResult result;
  try {
    TransferFunctionMeasurement meas(dut);
    const MeasurementResult m = meas.runBist(sweep_);
    for (const bist::MeasuredPoint& p : m.sweep.points) {
      if (p.timed_out) {
        result.measurement_failed = true;
        break;
      }
    }
    result.parameters = m.parameters;
    result.verdict = bist::checkLimits(result.parameters, limits_);
    // Absolute output-frequency check: the transfer-function shape alone is
    // nearly blind to divider-count defects.
    if (golden_nominal_hz_ > 0.0 &&
        std::abs(m.sweep.nominal_vco_hz - golden_nominal_hz_) >
            nominal_tolerance_ * golden_nominal_hz_) {
      result.verdict.pass = false;
      char buf[128];
      std::snprintf(buf, sizeof buf, "nominal output %.6g Hz deviates from golden %.6g Hz",
                    m.sweep.nominal_vco_hz, golden_nominal_hz_);
      result.verdict.failures.emplace_back(buf);
    }
  } catch (const std::exception&) {
    // An unusable sweep (e.g. no in-band reference because the loop is
    // dead) is itself a detection.
    result.measurement_failed = true;
  }
  if (result.measurement_failed) {
    result.verdict.pass = false;
    result.verdict.failures.emplace_back("measurement failed (loop dead or BIST timeout)");
  }
  return result;
}

double TestPlan::CoverageReport::coverage() const {
  if (rows.empty()) return 0.0;
  size_t detected = 0;
  for (const CoverageRow& row : rows)
    if (row.detected) ++detected;
  return static_cast<double>(detected) / static_cast<double>(rows.size());
}

TestPlan::CoverageReport TestPlan::faultCoverage(const std::vector<pll::FaultSpec>& faults) const {
  CoverageReport report;
  report.golden_passes = screen(golden_).verdict.pass;
  for (const pll::FaultSpec& fault : faults) {
    const pll::PllConfig faulty = pll::applyFault(golden_, fault);
    const DutResult r = screen(faulty);
    report.rows.push_back({fault, !r.verdict.pass, r.verdict.failures});
  }
  return report;
}

}  // namespace pllbist::core
