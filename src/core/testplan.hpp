#pragma once

#include <string>
#include <vector>

#include "bist/analysis.hpp"
#include "core/measurement.hpp"
#include "pll/faults.hpp"

namespace pllbist::core {

/// Production-test flow built on the BIST measurement: derive limits from a
/// golden device, then screen DUTs by their measured transfer-function
/// signature — the on-chip limit comparison the paper proposes.
class TestPlan {
 public:
  /// Characterise the golden device and derive limits with the given
  /// symmetric tolerance (e.g. 0.25 = +/-25%).
  TestPlan(const pll::PllConfig& golden, const bist::SweepOptions& sweep, double tolerance);

  [[nodiscard]] const bist::TestLimits& limits() const { return limits_; }
  [[nodiscard]] const bist::ExtractedParameters& goldenParameters() const { return golden_params_; }
  /// Golden nominal (unmodulated) VCO frequency; screened DUTs must match
  /// it within nominal_tolerance. Catches divider/decode faults that leave
  /// the loop *shape* almost unchanged (e.g. N off by one only moves fn by
  /// sqrt(N/(N+1)) but moves the absolute output frequency by 1/N).
  [[nodiscard]] double goldenNominalHz() const { return golden_nominal_hz_; }

  /// Measure a DUT and compare against the limits. A timed-out sweep (dead
  /// loop) fails outright.
  struct DutResult {
    bist::ExtractedParameters parameters;
    bist::TestVerdict verdict;
    bool measurement_failed = false;  ///< sweep unusable (timeouts / no reference)
  };
  [[nodiscard]] DutResult screen(const pll::PllConfig& dut) const;

  /// Fault-coverage experiment: screen the golden device with each fault
  /// applied; a fault is covered when the verdict fails.
  struct CoverageRow {
    pll::FaultSpec fault;
    bool detected = false;
    std::vector<std::string> failures;
  };
  struct CoverageReport {
    std::vector<CoverageRow> rows;
    bool golden_passes = false;
    [[nodiscard]] double coverage() const;
  };
  [[nodiscard]] CoverageReport faultCoverage(const std::vector<pll::FaultSpec>& faults) const;

 private:
  pll::PllConfig golden_;
  bist::SweepOptions sweep_;
  bist::ExtractedParameters golden_params_;
  bist::TestLimits limits_;
  double golden_nominal_hz_ = 0.0;
  double nominal_tolerance_ = 0.01;  ///< counters are exact; 1% is generous
};

}  // namespace pllbist::core
