#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace pllbist::dsp {

size_t nextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fftInPlace(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) throw std::invalid_argument("fftInPlace: size must be a power of two");

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 1.0 : -1.0) * kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen{std::cos(angle), std::sin(angle)};
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> fftReal(const std::vector<double>& signal) {
  std::vector<std::complex<double>> data(nextPowerOfTwo(std::max<size_t>(signal.size(), 1)));
  for (size_t i = 0; i < signal.size(); ++i) data[i] = {signal[i], 0.0};
  fftInPlace(data);
  return data;
}

std::vector<SpectrumBin> amplitudeSpectrum(const std::vector<double>& signal, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("amplitudeSpectrum: sample rate must be positive");
  if (signal.empty()) return {};
  auto spectrum = fftReal(signal);
  const size_t n = spectrum.size();
  const double bin_hz = sample_rate_hz / static_cast<double>(n);
  std::vector<SpectrumBin> out(n / 2 + 1);
  // Normalise by the original (pre-padding) sample count so on-bin sinusoid
  // amplitudes are recovered.
  const double scale = 2.0 / static_cast<double>(signal.size());
  for (size_t k = 0; k < out.size(); ++k) {
    const double amp = std::abs(spectrum[k]) * (k == 0 || k == n / 2 ? scale / 2.0 : scale);
    out[k] = {bin_hz * static_cast<double>(k), amp};
  }
  return out;
}

}  // namespace pllbist::dsp
