#pragma once

#include <complex>
#include <vector>

namespace pllbist::dsp {

/// In-place radix-2 decimation-in-time FFT. Size must be a power of two
/// (throws std::invalid_argument otherwise).
void fftInPlace(std::vector<std::complex<double>>& data, bool inverse = false);

/// Forward FFT of a real signal, zero-padded up to the next power of two.
/// Returns the full complex spectrum of the padded length.
std::vector<std::complex<double>> fftReal(const std::vector<double>& signal);

/// Smallest power of two >= n (n >= 1).
size_t nextPowerOfTwo(size_t n);

/// Single-sided amplitude spectrum of a real signal sampled at sample_rate_hz,
/// as (frequency_hz, amplitude) pairs. Amplitudes are scaled so a pure
/// sinusoid of amplitude A whose frequency lands on a bin reads A.
struct SpectrumBin {
  double frequency_hz = 0.0;
  double amplitude = 0.0;
};
std::vector<SpectrumBin> amplitudeSpectrum(const std::vector<double>& signal, double sample_rate_hz);

}  // namespace pllbist::dsp
