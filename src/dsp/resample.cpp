#include "dsp/resample.hpp"

#include <algorithm>
#include <stdexcept>

namespace pllbist::dsp {

double interpolateAt(const std::vector<double>& times, const std::vector<double>& values,
                     double t) {
  if (times.empty() || times.size() != values.size())
    throw std::invalid_argument("interpolateAt: bad inputs");
  if (t <= times.front()) return values.front();
  if (t >= times.back()) return values.back();
  const auto it = std::lower_bound(times.begin(), times.end(), t);
  const size_t hi = static_cast<size_t>(it - times.begin());
  const size_t lo = hi - 1;
  const double span = times[hi] - times[lo];
  if (span <= 0.0) throw std::invalid_argument("interpolateAt: times must be strictly ascending");
  const double f = (t - times[lo]) / span;
  return values[lo] + f * (values[hi] - values[lo]);
}

std::vector<double> resampleUniform(const std::vector<double>& times,
                                    const std::vector<double>& values, double t0, double dt,
                                    size_t n) {
  if (times.size() != values.size() || times.empty())
    throw std::invalid_argument("resampleUniform: bad inputs");
  if (dt <= 0.0) throw std::invalid_argument("resampleUniform: dt must be positive");
  const double t_end = t0 + dt * static_cast<double>(n - 1);
  if (n > 0 && (t0 < times.front() || t_end > times.back()))
    throw std::invalid_argument("resampleUniform: grid outside sampled span");
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = interpolateAt(times, values, t0 + dt * static_cast<double>(i));
  return out;
}

std::vector<TimedValue> frequencyFromEdges(const std::vector<double>& edges) {
  std::vector<TimedValue> out;
  if (edges.size() < 2) return out;
  out.reserve(edges.size() - 1);
  for (size_t i = 1; i < edges.size(); ++i) {
    const double period = edges[i] - edges[i - 1];
    if (period <= 0.0) throw std::invalid_argument("frequencyFromEdges: edges must be ascending");
    out.push_back({0.5 * (edges[i] + edges[i - 1]), 1.0 / period});
  }
  return out;
}

}  // namespace pllbist::dsp
