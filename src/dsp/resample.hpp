#pragma once

#include <cstddef>
#include <vector>

namespace pllbist::dsp {

/// Piecewise-linear interpolation of irregularly sampled (t, x) data onto a
/// uniform grid [t0, t0 + (n-1)*dt]. Times must be strictly ascending; the
/// grid must lie inside the sampled span. Used to turn edge-timestamped
/// frequency estimates into uniform records for FFT analysis.
std::vector<double> resampleUniform(const std::vector<double>& times,
                                    const std::vector<double>& values, double t0, double dt,
                                    size_t n);

/// Linear interpolation at a single point; clamps to the end values outside
/// the span. Times must be ascending and non-empty.
double interpolateAt(const std::vector<double>& times, const std::vector<double>& values,
                     double t);

/// Instantaneous-frequency estimate from rising-edge timestamps: for each
/// consecutive pair, emits (midpoint time, 1/period). Fewer than 2 edges
/// yields an empty result.
struct TimedValue {
  double time_s = 0.0;
  double value = 0.0;
};
std::vector<TimedValue> frequencyFromEdges(const std::vector<double>& edge_times_s);

}  // namespace pllbist::dsp
