#include "dsp/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace pllbist::dsp {

namespace {
void requireNonEmpty(const std::vector<double>& xs, const char* who) {
  if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}
}  // namespace

double mean(const std::vector<double>& xs) {
  requireNonEmpty(xs, "mean");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  requireNonEmpty(xs, "variance");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double standardDeviation(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double rms(const std::vector<double>& xs) {
  requireNonEmpty(xs, "rms");
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double minValue(const std::vector<double>& xs) {
  requireNonEmpty(xs, "minValue");
  return *std::min_element(xs.begin(), xs.end());
}

double maxValue(const std::vector<double>& xs) {
  requireNonEmpty(xs, "maxValue");
  return *std::max_element(xs.begin(), xs.end());
}

double peakToPeak(const std::vector<double>& xs) { return maxValue(xs) - minValue(xs); }

size_t argMax(const std::vector<double>& xs) {
  requireNonEmpty(xs, "argMax");
  return static_cast<size_t>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

size_t argMin(const std::vector<double>& xs) {
  requireNonEmpty(xs, "argMin");
  return static_cast<size_t>(std::min_element(xs.begin(), xs.end()) - xs.begin());
}

}  // namespace pllbist::dsp
