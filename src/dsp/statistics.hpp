#pragma once

#include <cstddef>
#include <vector>

namespace pllbist::dsp {

/// Basic descriptive statistics over a sample vector. All throw
/// std::invalid_argument on empty input unless noted.
double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);    // population variance
double standardDeviation(const std::vector<double>& xs);
double rms(const std::vector<double>& xs);
double minValue(const std::vector<double>& xs);
double maxValue(const std::vector<double>& xs);
double peakToPeak(const std::vector<double>& xs);

/// Index of the maximum element (first occurrence).
size_t argMax(const std::vector<double>& xs);
size_t argMin(const std::vector<double>& xs);

}  // namespace pllbist::dsp
