#include "dsp/tone.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace pllbist::dsp {

std::complex<double> goertzel(const std::vector<double>& samples, double sample_rate_hz,
                              double frequency_hz) {
  if (sample_rate_hz <= 0.0 || frequency_hz < 0.0)
    throw std::invalid_argument("goertzel: invalid rates");
  const double w = kTwoPi * frequency_hz / sample_rate_hz;
  const double coeff = 2.0 * std::cos(w);
  double s_prev = 0.0, s_prev2 = 0.0;
  for (double x : samples) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  // The raw Goertzel terminal value carries a residual rotation of
  // w*(N-1): it equals exp(-jw(N-1)) * sum(x[n] * exp(+jwn)). Undo the
  // rotation and conjugate so the function returns exactly the documented
  // correlation sum(x[n] * exp(-jwn)) — callers that read phase (not just
  // magnitude) get the DFT-bin convention, with f = 0 reducing to the
  // plain sum and f = fs/2 to the alternating sum.
  const std::complex<double> terminal{s_prev - std::cos(w) * s_prev2, -std::sin(w) * s_prev2};
  const double rot = w * static_cast<double>(samples.empty() ? 0 : samples.size() - 1);
  return std::conj(std::polar(1.0, rot) * terminal);
}

namespace {

/// Solve a symmetric 3x3 linear system via Gaussian elimination with partial
/// pivoting. Throws std::domain_error on singular systems.
void solve3x3(double m[3][3], double rhs[3], double out[3]) {
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r)
      if (std::abs(m[perm[r]][col]) > std::abs(m[perm[pivot]][col])) pivot = r;
    std::swap(perm[col], perm[pivot]);
    const double p = m[perm[col]][col];
    if (p == 0.0) throw std::domain_error("solve3x3: singular system");
    for (int r = col + 1; r < 3; ++r) {
      const double f = m[perm[r]][col] / p;
      for (int c = col; c < 3; ++c) m[perm[r]][c] -= f * m[perm[col]][c];
      rhs[perm[r]] -= f * rhs[perm[col]];
    }
  }
  for (int col = 2; col >= 0; --col) {
    double acc = rhs[perm[col]];
    for (int c = col + 1; c < 3; ++c) acc -= m[perm[col]][c] * out[c];
    out[col] = acc / m[perm[col]][col];
  }
}

}  // namespace

ToneFit fitSine(const std::vector<double>& times, const std::vector<double>& values,
                double frequency_hz) {
  if (times.size() != values.size())
    throw std::invalid_argument("fitSine: times/values size mismatch");
  if (times.size() < 3) throw std::invalid_argument("fitSine: need at least 3 samples");
  if (frequency_hz <= 0.0) throw std::invalid_argument("fitSine: frequency must be positive");

  // Least squares for x(t) = a*sin(wt) + b*cos(wt) + c.
  const double w = kTwoPi * frequency_hz;
  double m[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  double rhs[3] = {0, 0, 0};
  for (size_t i = 0; i < times.size(); ++i) {
    const double s = std::sin(w * times[i]);
    const double co = std::cos(w * times[i]);
    const double basis[3] = {s, co, 1.0};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) m[r][c] += basis[r] * basis[c];
      rhs[r] += basis[r] * values[i];
    }
  }
  double abc[3];
  solve3x3(m, rhs, abc);

  ToneFit fit;
  fit.amplitude = std::hypot(abc[0], abc[1]);
  fit.phase_rad = std::atan2(abc[1], abc[0]);  // a*sin + b*cos = A*sin(wt + phi)
  fit.offset = abc[2];

  double ss = 0.0;
  for (size_t i = 0; i < times.size(); ++i) {
    const double model =
        abc[0] * std::sin(w * times[i]) + abc[1] * std::cos(w * times[i]) + abc[2];
    const double e = values[i] - model;
    ss += e * e;
  }
  fit.residual_rms = std::sqrt(ss / static_cast<double>(times.size()));
  return fit;
}

ToneFit fitSineUniform(const std::vector<double>& values, double sample_rate_hz,
                       double frequency_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("fitSineUniform: bad sample rate");
  std::vector<double> times(values.size());
  for (size_t i = 0; i < values.size(); ++i) times[i] = static_cast<double>(i) / sample_rate_hz;
  return fitSine(times, values, frequency_hz);
}

}  // namespace pllbist::dsp
