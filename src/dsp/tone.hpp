#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace pllbist::dsp {

/// Amplitude/phase/offset of a fitted sinusoid
/// x(t) = offset + amplitude * sin(2*pi*f*t + phase_rad).
struct ToneFit {
  double amplitude = 0.0;
  double phase_rad = 0.0;  // in (-pi, pi]
  double offset = 0.0;
  double residual_rms = 0.0;  // RMS of (data - model)
};

/// Goertzel single-bin DFT of uniformly sampled data at a target frequency.
/// Returns the complex correlation sum(x[n] * exp(-j*2*pi*f*n/fs)); useful
/// when only one tone amplitude/phase is needed from a long record.
std::complex<double> goertzel(const std::vector<double>& samples, double sample_rate_hz,
                              double frequency_hz);

/// Three-parameter least-squares sine fit at a *known* frequency to
/// (time, value) samples (need not be uniform). This is the IEEE-1057-style
/// fit used by the conventional bench measurement baseline to extract the
/// loop-filter-node response amplitude and phase.
/// Throws std::invalid_argument on fewer than 3 samples or f <= 0.
ToneFit fitSine(const std::vector<double>& times_s, const std::vector<double>& values,
                double frequency_hz);

/// Convenience overload for uniformly sampled values starting at t = 0.
ToneFit fitSineUniform(const std::vector<double>& values, double sample_rate_hz,
                       double frequency_hz);

}  // namespace pllbist::dsp
