#include "dsp/window.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace pllbist::dsp {

namespace {
void requirePositive(size_t n) {
  if (n == 0) throw std::invalid_argument("window: length must be >= 1");
}
double phase(size_t i, size_t n) {
  return (n == 1) ? 0.0 : kTwoPi * static_cast<double>(i) / static_cast<double>(n - 1);
}
}  // namespace

std::vector<double> rectangularWindow(size_t n) {
  requirePositive(n);
  return std::vector<double>(n, 1.0);
}

std::vector<double> hannWindow(size_t n) {
  requirePositive(n);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = 0.5 * (1.0 - std::cos(phase(i, n)));
  return w;
}

std::vector<double> hammingWindow(size_t n) {
  requirePositive(n);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = 0.54 - 0.46 * std::cos(phase(i, n));
  return w;
}

std::vector<double> blackmanWindow(size_t n) {
  requirePositive(n);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i)
    w[i] = 0.42 - 0.5 * std::cos(phase(i, n)) + 0.08 * std::cos(2.0 * phase(i, n));
  return w;
}

std::vector<double> applyWindow(const std::vector<double>& signal,
                                const std::vector<double>& window) {
  if (signal.size() != window.size()) throw std::invalid_argument("applyWindow: size mismatch");
  std::vector<double> out(signal.size());
  for (size_t i = 0; i < signal.size(); ++i) out[i] = signal[i] * window[i];
  return out;
}

double coherentGain(const std::vector<double>& window) {
  if (window.empty()) throw std::invalid_argument("coherentGain: empty window");
  double acc = 0.0;
  for (double w : window) acc += w;
  return acc / static_cast<double>(window.size());
}

}  // namespace pllbist::dsp
