#pragma once

#include <cstddef>
#include <vector>

namespace pllbist::dsp {

/// Standard analysis windows of length n (n >= 1).
std::vector<double> rectangularWindow(size_t n);
std::vector<double> hannWindow(size_t n);
std::vector<double> hammingWindow(size_t n);
std::vector<double> blackmanWindow(size_t n);

/// Element-wise application of a window to a signal (sizes must match).
std::vector<double> applyWindow(const std::vector<double>& signal,
                                const std::vector<double>& window);

/// Coherent gain of a window (mean of its samples), for amplitude correction.
double coherentGain(const std::vector<double>& window);

}  // namespace pllbist::dsp
