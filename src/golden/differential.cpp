#include "golden/differential.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/units.hpp"
#include "control/grid.hpp"
#include "core/report_builder.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace pllbist::golden {

namespace {

double wrapDeg(double deg) {
  while (deg <= -180.0) deg += 360.0;
  while (deg > 180.0) deg -= 360.0;
  return deg;
}

std::string hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unitInterval(uint64_t bits) { return static_cast<double>(bits >> 11) * 0x1.0p-53; }

}  // namespace

ToleranceBands ToleranceBands::defaults() {
  ToleranceBands t;
  // The in-band edge sits below the -3 dB bandwidth of the most overdamped
  // device in the seeded family (bw = 0.37*fn at zeta = 1.5), so "in-band"
  // genuinely means in-band for every device the suite generates.
  t.bands = {
      {0.40, 1.0, 5.0, "in-band"},
      {1.75, 2.5, 12.0, "peak"},
      {2.60, 3.5, 18.0, "rolloff"},
  };
  return t;
}

const ToleranceBand* ToleranceBands::bandFor(double f_over_fn) const {
  for (const ToleranceBand& b : bands)
    if (f_over_fn <= b.f_over_fn_max) return &b;
  return nullptr;
}

DifferentialReport runDifferential(const pll::PllConfig& config,
                                   const DifferentialOptions& options, const std::string& device) {
  config.validate();
  if (options.points < 2)
    throw std::invalid_argument("runDifferential: need at least 2 sweep points");
  if (!(options.f_min_over_fn > 0.0) || !(options.f_max_over_fn > options.f_min_over_fn))
    throw std::invalid_argument("runDifferential: need 0 < f_min_over_fn < f_max_over_fn");

  const GoldenModel model(config);
  const double fn = model.naturalFrequencyHz();

  bist::SweepOptions sweep = bist::quickSweepOptions(config, options.stimulus, options.points);
  sweep.fm_steps = options.fm_steps;
  sweep.modulation_frequencies_hz =
      control::logspace(options.f_min_over_fn * fn, options.f_max_over_fn * fn, options.points);
  sweep.jitter_seed = static_cast<unsigned>(options.seed);

  DifferentialReport rep;
  rep.device = device;
  rep.stimulus = to_string(options.stimulus);
  rep.golden = model.parameters();
  rep.config_digest = obs::fnv1a64(core::canonicalConfigString(config, sweep));
  rep.seed = options.seed;
  rep.jobs = options.jobs;
  rep.transport_delay_ref_periods = options.transport_delay_ref_periods;
  rep.bands = options.bands;

  bist::ParallelSweepOptions farm;
  farm.jobs = options.jobs;
  farm.resilience = options.resilience;
  bist::ParallelSweep engine(config, sweep, farm);
  const bist::ResilientResponse result = engine.run();
  rep.quality = result.report;
  rep.sweep_status = result.status;

  control::BodeResponse bode;
  bool have_bode = true;
  try {
    bode = result.response.toBode();
  } catch (const std::domain_error&) {
    have_bode = false;
    if (rep.sweep_status.ok())
      rep.sweep_status = Status::make(Status::Kind::NoValidPoints,
                                      "differential: sweep produced no usable reference");
  }

  bool all_banded_pass = true;
  size_t bode_i = 0;
  for (const bist::MeasuredPoint& mp : result.response.points) {
    ComparisonPoint cp;
    cp.fm_hz = mp.modulation_hz;
    cp.f_over_fn = mp.modulation_hz / fn;
    cp.golden_db = model.magnitudeDb(mp.modulation_hz);
    cp.golden_phase_deg = model.phaseDeg(mp.modulation_hz);
    cp.delay_correction_deg = 360.0 * mp.modulation_hz * options.transport_delay_ref_periods /
                              config.ref_frequency_hz;
    cp.quality = to_string(mp.quality);
    cp.wall_time_s = mp.wall_time_s;

    const ToleranceBand* band = options.bands.bandFor(cp.f_over_fn);
    cp.band = band != nullptr ? band->label : "excluded";
    if (band != nullptr) {
      cp.magnitude_tol_db = band->magnitude_db;
      cp.phase_tol_deg = band->phase_deg;
    }

    const bool usable = have_bode && !mp.timed_out;
    if (usable && bode_i < bode.size()) {
      const control::BodePoint& bp = bode.points()[bode_i++];
      cp.measured_db = bp.magnitude_db;
      cp.measured_phase_deg = bp.phase_deg;
      cp.delta_db = cp.measured_db - cp.golden_db;
      // A pure delay lags the measured phase by delay_correction_deg; add
      // it back so the bands gate the modelled disagreement only.
      cp.delta_phase_deg =
          wrapDeg(cp.measured_phase_deg - cp.golden_phase_deg + cp.delay_correction_deg);
      if (band != nullptr) {
        cp.compared = true;
        cp.pass = std::abs(cp.delta_db) <= cp.magnitude_tol_db &&
                  std::abs(cp.delta_phase_deg) <= cp.phase_tol_deg;
        ++rep.compared;
        if (std::abs(cp.delta_db) > rep.max_abs_delta_db)
          rep.max_abs_delta_db = std::abs(cp.delta_db);
        if (std::abs(cp.delta_phase_deg) > rep.max_abs_delta_phase_deg)
          rep.max_abs_delta_phase_deg = std::abs(cp.delta_phase_deg);
        if (!cp.pass) all_banded_pass = false;
      } else {
        ++rep.excluded;
      }
    } else {
      // Dropped / timed-out point: nothing to compare. Inside a band this
      // fails the verdict (the oracle check could not run there).
      if (band != nullptr) all_banded_pass = false;
      else ++rep.excluded;
    }
    rep.points.push_back(std::move(cp));
  }

  rep.pass = rep.sweep_status.ok() && all_banded_pass && rep.compared > 0;
  return rep;
}

std::string DifferentialReport::toJson() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.beginObject();
  w.key("schema").value(kGoldenReportSchema);
  w.key("tool").value("golden_differential");
  w.key("config").beginObject();
  w.key("device").value(device);
  w.key("stimulus").value(stimulus);
  w.key("digest").value(hex64(config_digest));
  w.key("seed").value(hex64(seed));
  w.key("jobs").value(jobs);
  w.key("fn_hz").value(golden.naturalFrequencyHz());
  w.key("zeta").value(golden.zeta);
  w.key("tau2_s").value(golden.tau2_s);
  w.key("loop_gain_per_s").value(golden.loop_gain_per_s);
  w.key("transport_delay_ref_periods").value(transport_delay_ref_periods);
  w.endObject();

  w.key("tolerance_bands").beginArray();
  for (const ToleranceBand& b : bands.bands) {
    w.beginObject();
    w.key("label").value(b.label);
    w.key("f_over_fn_max").value(b.f_over_fn_max);
    w.key("magnitude_db").value(b.magnitude_db);
    w.key("phase_deg").value(b.phase_deg);
    w.endObject();
  }
  w.endArray();

  w.key("sweep_status").value(to_string(sweep_status.kind()));
  w.key("quality").beginObject();
  w.key("points_total").value(quality.points_total);
  w.key("ok").value(quality.ok);
  w.key("retried").value(quality.retried);
  w.key("degraded").value(quality.degraded);
  w.key("dropped").value(quality.dropped);
  w.key("attempts_total").value(quality.attempts_total);
  w.key("relocks").value(quality.relocks);
  w.key("relock_failures").value(quality.relock_failures);
  w.key("sim_time_s").value(quality.sim_time_s);
  w.key("wall_time_s").value(quality.wall_time_s);
  w.endObject();

  w.key("points").beginArray();
  for (const ComparisonPoint& p : points) {
    w.beginObject();
    w.key("fm_hz").value(p.fm_hz);
    w.key("f_over_fn").value(p.f_over_fn);
    w.key("measured_db").value(p.measured_db);
    w.key("golden_db").value(p.golden_db);
    w.key("delta_db").value(p.delta_db);
    w.key("measured_phase_deg").value(p.measured_phase_deg);
    w.key("golden_phase_deg").value(p.golden_phase_deg);
    w.key("delay_correction_deg").value(p.delay_correction_deg);
    w.key("delta_phase_deg").value(p.delta_phase_deg);
    w.key("magnitude_tol_db").value(p.magnitude_tol_db);
    w.key("phase_tol_deg").value(p.phase_tol_deg);
    w.key("band").value(p.band);
    w.key("quality").value(p.quality);
    w.key("compared").value(p.compared);
    w.key("pass").value(p.pass);
    w.key("wall_time_s").value(p.wall_time_s);
    w.endObject();
  }
  w.endArray();

  w.key("summary").beginObject();
  w.key("compared").value(compared);
  w.key("excluded").value(excluded);
  w.key("max_abs_delta_db").value(max_abs_delta_db);
  w.key("max_abs_delta_phase_deg").value(max_abs_delta_phase_deg);
  w.key("pass").value(pass);
  w.endObject();
  w.endObject();
  return os.str();
}

SeededConfig seededRandomConfig(uint64_t seed) {
  uint64_t state = seed;
  const double fn_lo = 120.0, fn_hi = 420.0;
  SeededConfig out;
  out.seed = seed;
  out.fn_hz = fn_lo * std::pow(fn_hi / fn_lo, unitInterval(splitmix64(state)));
  out.zeta = 0.3 + 1.2 * unitInterval(splitmix64(state));
  const bool current_pump = (splitmix64(state) & 1) != 0;
  out.config = current_pump ? pll::scaledCurrentPumpConfig(out.fn_hz, out.zeta)
                            : pll::scaledTestConfig(out.fn_hz, out.zeta);
  return out;
}

}  // namespace pllbist::golden
