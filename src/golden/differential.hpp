#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bist/controller.hpp"
#include "bist/parallel_sweep.hpp"
#include "common/status.hpp"
#include "golden/linear_model.hpp"
#include "obs/report.hpp"
#include "pll/config.hpp"

namespace pllbist::golden {

/// Schema identifier of the differential-run report (aliases the obs-layer
/// constant so report tooling and the emitter cannot drift apart).
inline constexpr const char* kGoldenReportSchema = obs::kGoldenReportSchema;

/// One tolerance band: points with fm/fn <= f_over_fn_max (and above the
/// previous band's edge) must agree with the oracle within these limits.
struct ToleranceBand {
  double f_over_fn_max = 0.0;
  double magnitude_db = 0.0;
  double phase_deg = 0.0;
  const char* label = "";
};

/// The documented tolerance-band contract (DESIGN.md section 9). Bands are
/// ascending in f_over_fn_max; points beyond the last band are excluded
/// from the verdict (counter-quantisation floor). Phase is banded *after*
/// the transport-delay correction (see DifferentialOptions). Rationale,
/// from the eqn (5)/(7)/(8) error budget:
///   - in-band (fm <= 0.55*fn): the eqn (7) referencing cancels the scale,
///     stimulus quality dominates -> tight (+-1 dB, +-5 deg);
///   - around the peak / omega_3dB: held-peak timing and FSK step
///     quantisation add up -> relaxed;
///   - past ~2.6*fn: the held deviation approaches the DCO/counter
///     resolution floor, errors are unbounded -> excluded.
struct ToleranceBands {
  std::vector<ToleranceBand> bands;

  [[nodiscard]] static ToleranceBands defaults();

  /// The band containing f_over_fn, or nullptr when beyond the last band.
  [[nodiscard]] const ToleranceBand* bandFor(double f_over_fn) const;
};

/// Everything that parameterises one differential run.
struct DifferentialOptions {
  bist::StimulusKind stimulus = bist::StimulusKind::MultiToneFsk;
  /// FSK slots per modulation period. The differential default is finer
  /// than the paper's 10 because the oracle comparison is a correctness
  /// gate, not a hardware-cost study: 20 steps keep the in-band stimulus
  /// distortion below the tight band.
  int fm_steps = 20;
  int points = 9;
  double f_min_over_fn = 0.25;  ///< sweep start, as a fraction of fn
  double f_max_over_fn = 2.5;   ///< sweep end
  uint64_t seed = 1;            ///< stimulus jitter / per-point seed base
  /// Worker threads for the point farm; 1 = serial reference execution
  /// (bit-identical to any other job count by the PR-2 contract).
  int jobs = 1;
  /// The sampled BIST path (PFD decisions latched once per reference
  /// cycle, DCO stimulus synthesis, hold mux) adds a transport delay of
  /// about this many reference periods that the continuous-time oracle
  /// does not model. The comparison removes the corresponding first-order
  /// phase lag 360 * fm * k / fref before banding; magnitudes are
  /// unaffected (pure delay is all-pass). Calibrated across both pump
  /// kinds and zeta in [0.3, 1.5]; 0 disables the correction.
  double transport_delay_ref_periods = 1.0;
  ToleranceBands bands = ToleranceBands::defaults();
  bist::ResilientSweepOptions resilience;
};

/// One compared frequency point.
struct ComparisonPoint {
  double fm_hz = 0.0;
  double f_over_fn = 0.0;
  double measured_db = 0.0;
  double golden_db = 0.0;
  double delta_db = 0.0;  ///< measured - golden
  double measured_phase_deg = 0.0;
  double golden_phase_deg = 0.0;  ///< pure oracle value, no delay correction
  /// Transport-delay phase removed before banding (positive lag).
  double delay_correction_deg = 0.0;
  /// measured - golden + delay_correction, wrapped into (-180, 180].
  double delta_phase_deg = 0.0;
  double magnitude_tol_db = 0.0;
  double phase_tol_deg = 0.0;
  std::string band;     ///< band label, or "excluded"
  std::string quality;  ///< point quality name from the sweep engine
  bool compared = false;  ///< inside a band and usable (not dropped)
  bool pass = false;      ///< compared and within both tolerances
  double wall_time_s = 0.0;  ///< timing field (stripped by stripTimingFields)
};

/// Result of one differential run: the BIST sweep compared point-by-point
/// against the analytical oracle.
struct DifferentialReport {
  std::string device;    ///< free-form device label
  std::string stimulus;  ///< stimulus kind name
  GoldenParameters golden;
  uint64_t config_digest = 0;  ///< FNV-1a over the canonical config string
  uint64_t seed = 0;
  int jobs = 1;
  double transport_delay_ref_periods = 0.0;  ///< correction applied, in Tref
  ToleranceBands bands;
  std::vector<ComparisonPoint> points;
  bist::SweepQualityReport quality;
  Status sweep_status;
  int compared = 0;
  int excluded = 0;
  double max_abs_delta_db = 0.0;        ///< over compared points
  double max_abs_delta_phase_deg = 0.0; ///< over compared points
  bool pass = false;

  /// Serialise as schema pllbist.golden_report/1. Deterministic: identical
  /// reports produce byte-identical documents, and the only host-timing
  /// fields use the RunReport names (quality.wall_time_s,
  /// points[].wall_time_s) so obs::stripTimingFields applies unchanged.
  [[nodiscard]] std::string toJson() const;
};

/// Run the BIST sweep for `config` on the point farm and compare the
/// measured magnitude/phase against the GoldenModel capacitor-node curve
/// under the tolerance-band contract. Never throws on a sick device: a
/// fatal sweep leaves pass = false with the sweep status recorded.
[[nodiscard]] DifferentialReport runDifferential(const pll::PllConfig& config,
                                                 const DifferentialOptions& options = {},
                                                 const std::string& device = "custom");

/// Deterministic seeded random device for differential/fuzz campaigns:
/// splitmix64 over `seed` picks fn in [120, 420] Hz (log-uniform), zeta in
/// [0.3, 1.5] and alternates pump kinds — spanning under-, near-critically-
/// and over-damped regimes. The same seed always yields the same device.
struct SeededConfig {
  pll::PllConfig config;
  double fn_hz = 0.0;
  double zeta = 0.0;
  uint64_t seed = 0;
};
[[nodiscard]] SeededConfig seededRandomConfig(uint64_t seed);

}  // namespace pllbist::golden
