#include "golden/linear_model.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace pllbist::golden {

const char* to_string(ResponseKind kind) {
  switch (kind) {
    case ResponseKind::CapacitorNode: return "capacitor-node";
    case ResponseKind::DividedOutput: return "divided-output";
  }
  return "unknown";
}

double GoldenParameters::naturalFrequencyHz() const { return radPerSecToHz(omega_n_rad_per_s); }

GoldenParameters deriveParameters(const pll::PllConfig& config) {
  config.validate();
  const double n = static_cast<double>(config.divider_n);
  const double ko = kTwoPi * config.vco.gain_hz_per_v;  // rad/s per V
  const double c = config.pump.c_farad;
  const double t2 = config.pump.r2_ohm * c;

  GoldenParameters p;
  p.tau2_s = t2;
  if (config.pump.kind == pll::PumpKind::Voltage4046) {
    // Tri-state voltage output through the Figure 9 lag-lead filter:
    //   Kpd = (Vdd - Vss)/(4*pi), F(s) = (1 + s*t2)/(1 + s*(t1 + t2)),
    //   den(s) = s^2 + s*(1 + K*t2/N)/(t1 + t2) + K/(N*(t1 + t2)).
    const double kpd = (config.pump.vdd_v - config.pump.vss_v) / (4.0 * kPi);
    const double k = kpd * ko;
    const double t12 = (config.pump.r1_ohm + config.pump.r2_ohm) * c;
    p.loop_gain_per_s = k / n;
    p.omega_n_rad_per_s = std::sqrt(k / (n * t12));
    p.zeta = (1.0 + k * t2 / n) / (2.0 * p.omega_n_rad_per_s * t12);
  } else {
    // Current-steering pump into R2 + C (type-2 loop):
    //   Kd = Ip/(2*pi), den(s) = s^2 + s*K*t2/(N*C)/1 ... in normal form
    //   wn^2 = K/(N*C), 2*zeta*wn = K*t2/(N*C)  =>  zeta = wn*t2/2.
    const double kd = config.pump.pump_current_a / kTwoPi;
    const double k = kd * ko;
    p.loop_gain_per_s = k / n;
    p.omega_n_rad_per_s = std::sqrt(k / (n * c));
    p.zeta = p.omega_n_rad_per_s * t2 / 2.0;
  }
  return p;
}

GoldenModel::GoldenModel(const pll::PllConfig& config) : params_(deriveParameters(config)) {}

GoldenModel::GoldenModel(const GoldenParameters& params) : params_(params) {
  if (!(params.omega_n_rad_per_s > 0.0) || !(params.zeta > 0.0))
    throw std::invalid_argument("GoldenModel: omega_n and zeta must be positive");
}

std::complex<double> GoldenModel::response(double fm_hz, ResponseKind kind) const {
  const double w = hzToRadPerSec(fm_hz);
  const double wn = params_.omega_n_rad_per_s;
  const std::complex<double> jw(0.0, w);
  const std::complex<double> den = (wn * wn - w * w) + std::complex<double>(0.0, 2.0 * params_.zeta * wn * w);
  std::complex<double> num(wn * wn, 0.0);
  if (kind == ResponseKind::DividedOutput) num *= (1.0 + jw * params_.tau2_s);
  return num / den;
}

double GoldenModel::magnitudeDb(double fm_hz, ResponseKind kind) const {
  return amplitudeToDb(std::abs(response(fm_hz, kind)));
}

double GoldenModel::phaseDeg(double fm_hz, ResponseKind kind) const {
  return radToDeg(std::arg(response(fm_hz, kind)));
}

std::vector<GoldenPoint> GoldenModel::curve(const std::vector<double>& fm_hz,
                                            ResponseKind kind) const {
  std::vector<GoldenPoint> out;
  out.reserve(fm_hz.size());
  for (double f : fm_hz) out.push_back({f, magnitudeDb(f, kind), phaseDeg(f, kind)});
  return out;
}

std::optional<double> GoldenModel::peakFrequencyHz() const {
  const double z = params_.zeta;
  if (z * z >= 0.5) return std::nullopt;
  return naturalFrequencyHz() * std::sqrt(1.0 - 2.0 * z * z);
}

std::optional<double> GoldenModel::peakingDb() const {
  const double z = params_.zeta;
  if (z * z >= 0.5) return std::nullopt;
  return amplitudeToDb(1.0 / (2.0 * z * std::sqrt(1.0 - z * z)));
}

double GoldenModel::bandwidth3DbHz() const {
  const double a = 1.0 - 2.0 * params_.zeta * params_.zeta;
  return naturalFrequencyHz() * std::sqrt(a + std::sqrt(a * a + 1.0));
}

double GoldenModel::stepResponse(double t_s) const {
  if (t_s <= 0.0) return 0.0;
  const double wn = params_.omega_n_rad_per_s;
  const double z = params_.zeta;
  // Within ~1e-6 of critical damping the distinct-pole formulas lose all
  // precision to cancellation; use the repeated-root branch there.
  if (std::abs(z - 1.0) < 1e-6) {
    return 1.0 - std::exp(-wn * t_s) * (1.0 + wn * t_s);
  }
  if (z < 1.0) {
    const double wd = wn * std::sqrt(1.0 - z * z);
    return 1.0 - std::exp(-z * wn * t_s) *
                     (std::cos(wd * t_s) + z / std::sqrt(1.0 - z * z) * std::sin(wd * t_s));
  }
  // Overdamped: real poles p1 < p2, y = 1 - (p2*e^{-p1 t} - p1*e^{-p2 t})/(p2 - p1).
  const double r = std::sqrt(z * z - 1.0);
  const double p1 = wn * (z - r);
  const double p2 = wn * (z + r);
  return 1.0 - (p2 * std::exp(-p1 * t_s) - p1 * std::exp(-p2 * t_s)) / (p2 - p1);
}

double GoldenModel::stepOvershootFraction() const {
  const double z = params_.zeta;
  if (z >= 1.0) return 0.0;
  return std::exp(-kPi * z / std::sqrt(1.0 - z * z));
}

double GoldenModel::settlingTime2PctS() const {
  return 4.0 / (params_.zeta * params_.omega_n_rad_per_s);
}

double GoldenModel::pullOutRangeHz() const {
  return radPerSecToHz(1.8 * params_.omega_n_rad_per_s * (params_.zeta + 1.0));
}

double GoldenModel::lockInRangeHz() const {
  return radPerSecToHz(2.0 * params_.zeta * params_.omega_n_rad_per_s);
}

double GoldenModel::lockInTimeS() const { return kTwoPi / params_.omega_n_rad_per_s; }

}  // namespace pllbist::golden
