#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "pll/config.hpp"

namespace pllbist::golden {

/// Which closed-loop curve the oracle evaluates.
enum class ResponseKind {
  /// Pure two-pole wn^2 / (s^2 + 2*zeta*wn*s + wn^2) — the response the
  /// peak-detect-and-hold BIST physically captures (the filter zero is
  /// divided out; see control::capacitorNodeTf).
  CapacitorNode,
  /// Two-pole plus the filter zero, wn^2*(1 + s*tau2) / (...) — the
  /// paper's eqn (4) at the divided output, unity DC gain.
  DividedOutput,
};

[[nodiscard]] const char* to_string(ResponseKind kind);

/// The complete parameter set of the linearised CP-PLL, derived in closed
/// form directly from the electrical configuration. This derivation is
/// deliberately *independent* of control::cppll_model / TransferFunction:
/// it re-derives (wn, zeta, tau2) from R1/R2/C/Ip/Kpd/Ko/N from scratch so
/// that a bug in the polynomial machinery (or in this file) shows up as a
/// disagreement in the golden-model cross-check tests rather than
/// cancelling out.
struct GoldenParameters {
  double omega_n_rad_per_s = 0.0;  ///< natural frequency wn
  double zeta = 0.0;               ///< damping ratio
  double tau2_s = 0.0;             ///< filter zero time constant R2*C
  double loop_gain_per_s = 0.0;    ///< K/N = Kpd*Ko/N (DC loop stiffness)

  [[nodiscard]] double naturalFrequencyHz() const;
};

/// Closed-form parameter derivation for either pump kind. Throws
/// std::invalid_argument on a non-validating configuration.
[[nodiscard]] GoldenParameters deriveParameters(const pll::PllConfig& config);

/// One sampled point of a golden frequency-response curve.
struct GoldenPoint {
  double fm_hz = 0.0;
  double magnitude_db = 0.0;
  double phase_deg = 0.0;  ///< principal value in (-180, 180]
};

/// Continuous-time analytical oracle for the closed-loop transfer function
/// of a second-order CP-PLL: magnitude, phase, response features, lock /
/// acquisition estimates and the closed-form step response. Everything is
/// evaluated from (wn, zeta, tau2) by explicit formula — no polynomial
/// evaluation, no root finding, no simulation — so it serves as the
/// independent reference curve for differential tests and the fig10/11/12
/// benches.
class GoldenModel {
 public:
  explicit GoldenModel(const pll::PllConfig& config);
  explicit GoldenModel(const GoldenParameters& params);

  [[nodiscard]] const GoldenParameters& parameters() const { return params_; }
  [[nodiscard]] double naturalFrequencyHz() const { return params_.naturalFrequencyHz(); }
  [[nodiscard]] double dampingRatio() const { return params_.zeta; }

  /// H(j*2*pi*fm) for the selected curve.
  [[nodiscard]] std::complex<double> response(double fm_hz,
                                              ResponseKind kind = ResponseKind::CapacitorNode) const;
  [[nodiscard]] double magnitudeDb(double fm_hz,
                                   ResponseKind kind = ResponseKind::CapacitorNode) const;
  /// Principal-value phase in (-180, 180].
  [[nodiscard]] double phaseDeg(double fm_hz,
                                ResponseKind kind = ResponseKind::CapacitorNode) const;

  /// Sample a whole curve (phase is per-point principal value; the golden
  /// two-pole phase lives in (-180, 0] so no unwrapping is needed below
  /// the second pole).
  [[nodiscard]] std::vector<GoldenPoint> curve(const std::vector<double>& fm_hz,
                                               ResponseKind kind = ResponseKind::CapacitorNode) const;

  // -- Response features of the capacitor-node (pure two-pole) curve --

  /// Magnitude peak frequency wn*sqrt(1 - 2*zeta^2); nullopt when the
  /// curve does not peak (zeta >= 1/sqrt(2)).
  [[nodiscard]] std::optional<double> peakFrequencyHz() const;
  /// Peak height above DC in dB; nullopt when the curve does not peak.
  [[nodiscard]] std::optional<double> peakingDb() const;
  /// One-sided -3 dB bandwidth, closed form.
  [[nodiscard]] double bandwidth3DbHz() const;
  /// Frequency where the two-pole phase crosses -90 degrees (= fn exactly).
  [[nodiscard]] double phase90CrossingHz() const { return naturalFrequencyHz(); }

  // -- Time-domain closed forms (unit-step response of the two-pole path) --

  /// Normalised step response y(t) with y(0) = 0, y(inf) = 1; exact for
  /// all damping regimes (under-, critically- and over-damped branches).
  [[nodiscard]] double stepResponse(double t_s) const;
  /// Fractional first-overshoot exp(-pi*zeta/sqrt(1-zeta^2)); 0 when
  /// zeta >= 1 (no overshoot).
  [[nodiscard]] double stepOvershootFraction() const;
  /// 2% settling-time approximation 4/(zeta*wn).
  [[nodiscard]] double settlingTime2PctS() const;

  // -- Lock / acquisition estimates (closed-form CP-PLL model; see
  //    Kuznetsov et al., arXiv:1901.01468, and Gardner) --

  /// Pull-out range: the frequency step that just makes the loop slip a
  /// cycle, Gardner's classic approximation 1.8*wn*(zeta + 1) rad/s,
  /// reported in Hz at the reference (divided) input.
  [[nodiscard]] double pullOutRangeHz() const;
  /// Lock-in (fast-capture) range ~ 2*zeta*wn rad/s in Hz.
  [[nodiscard]] double lockInRangeHz() const;
  /// Lock-in time estimate, one natural period 2*pi/wn.
  [[nodiscard]] double lockInTimeS() const;

 private:
  GoldenParameters params_;
};

}  // namespace pllbist::golden
