#include "golden/phase_integrator.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/tone.hpp"

namespace pllbist::golden {

namespace {

/// Averaged phase-domain loop: state x = (vc, theta_o), parameterised so
/// the derivative needs only the raw electrical constants.
struct LoopOde {
  bool voltage_pump = false;
  double kpd = 0.0;       ///< V/rad (Voltage4046)
  double ip_over_2pi = 0.0;  ///< A/rad (CurrentSteering)
  double ko = 0.0;        ///< rad/s per V
  double n = 1.0;
  double r1 = 0.0, r2 = 0.0, c = 0.0;
  double omega_m = 0.0;
  double theta_amp = 0.0;  ///< input phase amplitude 2*pi*dev/omega_m

  [[nodiscard]] double thetaIn(double t) const { return -theta_amp * std::cos(omega_m * t); }

  /// Control-node voltage vy for a given state and time.
  [[nodiscard]] double vy(double t, const double x[2]) const {
    const double theta_e = thetaIn(t) - x[1] / n;
    if (voltage_pump) {
      const double vd = kpd * theta_e;
      return x[0] + r2 * (vd - x[0]) / (r1 + r2);
    }
    return x[0] + r2 * ip_over_2pi * theta_e;
  }

  void derivative(double t, const double x[2], double dx[2]) const {
    const double theta_e = thetaIn(t) - x[1] / n;
    if (voltage_pump) {
      const double vd = kpd * theta_e;
      dx[0] = (vd - x[0]) / ((r1 + r2) * c);
      dx[1] = ko * (x[0] + r2 * (vd - x[0]) / (r1 + r2));
    } else {
      const double i = ip_over_2pi * theta_e;
      dx[0] = i / c;
      dx[1] = ko * (x[0] + r2 * i);
    }
  }
};

}  // namespace

IntegratorPoint integratePoint(const pll::PllConfig& config, double fm_hz, double deviation_hz,
                               ResponseKind kind, const PhaseIntegratorOptions& options) {
  config.validate();
  if (!(fm_hz > 0.0)) throw std::invalid_argument("integratePoint: fm_hz must be positive");
  if (!(deviation_hz > 0.0))
    throw std::invalid_argument("integratePoint: deviation_hz must be positive");
  if (options.steps_per_period < 16)
    throw std::invalid_argument("integratePoint: steps_per_period must be >= 16");

  LoopOde ode;
  ode.voltage_pump = config.pump.kind == pll::PumpKind::Voltage4046;
  ode.kpd = (config.pump.vdd_v - config.pump.vss_v) / (4.0 * kPi);
  ode.ip_over_2pi = config.pump.pump_current_a / kTwoPi;
  ode.ko = kTwoPi * config.vco.gain_hz_per_v;
  ode.n = static_cast<double>(config.divider_n);
  ode.r1 = config.pump.r1_ohm;
  ode.r2 = config.pump.r2_ohm;
  ode.c = config.pump.c_farad;
  ode.omega_m = hzToRadPerSec(fm_hz);
  ode.theta_amp = hzToRadPerSec(deviation_hz) / ode.omega_m;

  // Step: resolve both the modulation period and the loop's own dynamics.
  const double tm = 1.0 / fm_hz;
  const double wn = deriveParameters(config).omega_n_rad_per_s;
  const double tn = kTwoPi / wn;
  double dt = tm / options.steps_per_period;
  if (dt > tn * options.max_step_natural_fraction) dt = tn * options.max_step_natural_fraction;

  const double t_settle = options.settle_periods * tm;
  const double t_end = t_settle + options.measure_periods * tm;

  double x[2] = {0.0, 0.0};
  std::vector<double> times, values;
  const size_t expected = static_cast<size_t>((t_end - t_settle) / dt) + 2;
  times.reserve(expected);
  values.reserve(expected);

  double t = 0.0;
  while (t < t_end) {
    if (t >= t_settle) {
      const double v = kind == ResponseKind::CapacitorNode ? x[0] : ode.vy(t, x);
      times.push_back(t);
      // VCO frequency deviation in Hz implied by the node voltage.
      values.push_back(ode.ko * v / kTwoPi);
    }
    // Classic RK4 step.
    double k1[2], k2[2], k3[2], k4[2], xt[2];
    ode.derivative(t, x, k1);
    xt[0] = x[0] + 0.5 * dt * k1[0]; xt[1] = x[1] + 0.5 * dt * k1[1];
    ode.derivative(t + 0.5 * dt, xt, k2);
    xt[0] = x[0] + 0.5 * dt * k2[0]; xt[1] = x[1] + 0.5 * dt * k2[1];
    ode.derivative(t + 0.5 * dt, xt, k3);
    xt[0] = x[0] + dt * k3[0]; xt[1] = x[1] + dt * k3[1];
    ode.derivative(t + dt, xt, k4);
    x[0] += dt / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]);
    x[1] += dt / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]);
    t += dt;
  }

  // The input frequency deviation is dev_hz*sin(omega_m*t) with phase 0, so
  // the fitted phase *is* the loop's phase lag; the unity-gain output
  // deviation at the VCO is N*dev_hz.
  const dsp::ToneFit fit = dsp::fitSine(times, values, fm_hz);
  IntegratorPoint p;
  p.fm_hz = fm_hz;
  p.magnitude_db = amplitudeToDb(fit.amplitude / (ode.n * deviation_hz));
  double deg = radToDeg(fit.phase_rad);
  while (deg <= -180.0) deg += 360.0;
  while (deg > 180.0) deg -= 360.0;
  p.phase_deg = deg;
  p.residual_rms = fit.residual_rms;
  return p;
}

std::vector<IntegratorPoint> integrateSweep(const pll::PllConfig& config,
                                            const std::vector<double>& fm_hz, double deviation_hz,
                                            ResponseKind kind,
                                            const PhaseIntegratorOptions& options) {
  std::vector<IntegratorPoint> out;
  out.reserve(fm_hz.size());
  for (double f : fm_hz) out.push_back(integratePoint(config, f, deviation_hz, kind, options));
  return out;
}

}  // namespace pllbist::golden
