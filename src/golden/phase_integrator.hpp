#pragma once

#include <vector>

#include "golden/linear_model.hpp"
#include "pll/config.hpp"

namespace pllbist::golden {

/// Knobs of the discrete phase-domain reference integrator.
struct PhaseIntegratorOptions {
  double settle_periods = 25.0;   ///< modulation periods discarded before fitting
  double measure_periods = 8.0;   ///< modulation periods fitted
  int steps_per_period = 2048;    ///< RK4 steps per modulation period
  /// The step is additionally capped at this fraction of the loop's
  /// natural period, so slow modulation of a fast loop still resolves the
  /// loop dynamics.
  double max_step_natural_fraction = 1.0 / 256.0;
};

/// One frequency point produced by the integrator: the fitted magnitude
/// (dB, referenced to the unity-gain output deviation) and phase lag
/// (degrees) of the loop's response to sinusoidal reference FM.
struct IntegratorPoint {
  double fm_hz = 0.0;
  double magnitude_db = 0.0;
  double phase_deg = 0.0;
  double residual_rms = 0.0;  ///< sine-fit residual over the fitted window
};

/// Second independent golden reference: integrate the *averaged* (linear
/// phase-domain) loop ODEs with classic RK4 and extract amplitude/phase by
/// least-squares sine fit.
///
/// This path shares nothing with either the event-driven simulator (no
/// edges, no counters, no PFD state machine) or the closed-form oracle (no
/// wn/zeta formulas — it works on the raw electrical parameters):
///
///   Voltage4046:     dvc/dt = (Kpd*theta_e - vc) / ((R1 + R2)*C)
///                    vy     = vc + R2*(Kpd*theta_e - vc)/(R1 + R2)
///   CurrentSteering: dvc/dt = Ip*theta_e/(2*pi*C)
///                    vy     = vc + R2*Ip*theta_e/(2*pi)
///   both:            dtheta_o/dt = Ko*vy,  theta_e = theta_i - theta_o/N
///
/// with theta_i(t) = -(2*pi*dev_hz/w_m)*cos(w_m*t), i.e. reference FM of
/// peak deviation dev_hz at w_m. The reported magnitude is the VCO
/// frequency-deviation amplitude over the unity-gain deviation N*dev_hz
/// (ResponseKind::DividedOutput reads the control node vy — the eqn (4)
/// curve; CapacitorNode reads vc — what the BIST holds).
IntegratorPoint integratePoint(const pll::PllConfig& config, double fm_hz, double deviation_hz,
                               ResponseKind kind = ResponseKind::CapacitorNode,
                               const PhaseIntegratorOptions& options = {});

/// integratePoint over a whole sweep.
std::vector<IntegratorPoint> integrateSweep(const pll::PllConfig& config,
                                            const std::vector<double>& fm_hz, double deviation_hz,
                                            ResponseKind kind = ResponseKind::CapacitorNode,
                                            const PhaseIntegratorOptions& options = {});

}  // namespace pllbist::golden
