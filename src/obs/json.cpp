#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace pllbist::obs {

std::string jsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // %.17g round-trips every double; trim to the shortest form that still
  // parses back bit-identically so documents stay readable.
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Writer.

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) os_ << ',';
    wrote_element_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  separate();
  os_ << '{';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  wrote_element_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  separate();
  os_ << '[';
  wrote_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  wrote_element_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  os_ << jsonQuote(k) << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  os_ << jsonQuote(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  os_ << jsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue.

const JsonValue* JsonValue::find(std::string_view k) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [key, value] : object)
    if (key == k) return &value;
  return nullptr;
}

JsonValue* JsonValue::find(std::string_view k) {
  return const_cast<JsonValue*>(static_cast<const JsonValue*>(this)->find(k));
}

bool JsonValue::erase(std::string_view k) {
  if (type != Type::Object) return false;
  for (auto it = object.begin(); it != object.end(); ++it) {
    if (it->first == k) {
      object.erase(it);
      return true;
    }
  }
  return false;
}

void JsonValue::write(std::ostream& os) const {
  switch (type) {
    case Type::Null: os << "null"; break;
    case Type::Bool: os << (boolean ? "true" : "false"); break;
    case Type::Number: os << jsonNumber(number); break;
    case Type::String: os << jsonQuote(string); break;
    case Type::Array: {
      os << '[';
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i) os << ',';
        array[i].write(os);
      }
      os << ']';
      break;
    }
    case Type::Object: {
      os << '{';
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i) os << ',';
        os << jsonQuote(object[i].first) << ':';
        object[i].second.write(os);
      }
      os << '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser: recursive descent, depth-bounded.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status parse(JsonValue& out) {
    Status s = parseValue(out, 0);
    if (!s.ok()) return s;
    skipWs();
    if (pos_ != text_.size())
      return fail("trailing characters after the top-level value");
    return Status();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status fail(const char* why) const {
    return Status::makef(Status::Kind::InvalidArgument, "JSON parse error at offset %zu: %s", pos_,
                         why);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parseObject(out, depth);
    if (c == '[') return parseArray(out, depth);
    if (c == '"') {
      out.type = JsonValue::Type::String;
      return parseString(out.string);
    }
    if (consumeWord("true")) {
      out.type = JsonValue::Type::Bool;
      out.boolean = true;
      return Status();
    }
    if (consumeWord("false")) {
      out.type = JsonValue::Type::Bool;
      out.boolean = false;
      return Status();
    }
    if (consumeWord("null")) {
      out.type = JsonValue::Type::Null;
      return Status();
    }
    return parseNumber(out);
  }

  Status parseObject(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Object;
    ++pos_;  // '{'
    skipWs();
    if (consume('}')) return Status();
    for (;;) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key string");
      std::string key;
      Status s = parseString(key);
      if (!s.ok()) return s;
      skipWs();
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue member;
      s = parseValue(member, depth + 1);
      if (!s.ok()) return s;
      out.object.emplace_back(std::move(key), std::move(member));
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) return Status();
      return fail("expected ',' or '}' in object");
    }
  }

  Status parseArray(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Array;
    ++pos_;  // '['
    skipWs();
    if (consume(']')) return Status();
    for (;;) {
      JsonValue element;
      Status s = parseValue(element, depth + 1);
      if (!s.ok()) return s;
      out.array.push_back(std::move(element));
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) return Status();
      return fail("expected ',' or ']' in array");
    }
  }

  Status parseString(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status();
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through individually;
          // our documents never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  Status parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                                   text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out.type = JsonValue::Type::Number;
    out.number = v;
    return Status();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Status parseJson(std::string_view text, JsonValue& out) {
  out = JsonValue();
  return Parser(text).parse(out);
}

}  // namespace pllbist::obs
