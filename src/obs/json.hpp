#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace pllbist::obs {

/// Quote + escape a string for JSON output ("ab\"c" -> "\"ab\\\"c\"").
[[nodiscard]] std::string jsonQuote(std::string_view s);

/// Shortest-round-trip textual form of a double that is itself valid JSON
/// (NaN/Inf are not representable in JSON; they serialise as null).
[[nodiscard]] std::string jsonNumber(double v);

/// Streaming JSON writer with automatic comma placement. Keys and values
/// are emitted in call order, so identical call sequences produce
/// byte-identical documents — the property the RunReport determinism test
/// relies on.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  /// Key inside an object; must be followed by exactly one value.
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

 private:
  void separate();
  std::ostream& os_;
  // One level per open container: true once the first element was written.
  std::vector<bool> wrote_element_;
  bool after_key_ = false;
};

/// Parsed JSON document node. Objects preserve member order.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool isNull() const { return type == Type::Null; }
  [[nodiscard]] bool isBool() const { return type == Type::Bool; }
  [[nodiscard]] bool isNumber() const { return type == Type::Number; }
  [[nodiscard]] bool isString() const { return type == Type::String; }
  [[nodiscard]] bool isArray() const { return type == Type::Array; }
  [[nodiscard]] bool isObject() const { return type == Type::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] JsonValue* find(std::string_view key);
  /// Remove an object member; returns true if it existed.
  bool erase(std::string_view key);

  /// Canonical re-serialisation (same formatting rules as JsonWriter).
  void write(std::ostream& os) const;
  [[nodiscard]] std::string dump() const;
};

/// Parse a complete JSON document. On failure returns InvalidArgument with
/// the byte offset and the reason; trailing garbage is an error.
[[nodiscard]] Status parseJson(std::string_view text, JsonValue& out);

}  // namespace pllbist::obs
