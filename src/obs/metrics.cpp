#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace pllbist::obs {

namespace detail {

namespace {
/// Never-reused metric identity: the thread-local cell cache keys on this,
/// so a stale cache entry from a destroyed registry can never alias a
/// metric created later at the same address.
std::atomic<uint64_t> g_next_metric_uid{1};
}  // namespace

enum class Kind { Counter, Gauge, Histogram };

struct Metric {
  uint64_t uid = g_next_metric_uid.fetch_add(1, std::memory_order_relaxed);
  std::string name;
  Kind kind = Kind::Counter;
  std::vector<double> bounds;           // histograms only
  std::atomic<uint64_t> gauge_clock{0};  // cross-thread last-writer ordering
  std::mutex* registry_mutex = nullptr;
  std::deque<Cell> cells;  // deque: growth never moves existing cells

  Cell& cellForThisThread();
};

namespace {

struct TlCache {
  // metric uid -> this thread's cell. One entry per (thread, metric) pair.
  std::unordered_map<uint64_t, Cell*> map;
  // Single-entry fast path for tight loops hammering one metric.
  uint64_t last_uid = 0;
  Cell* last_cell = nullptr;
};
thread_local TlCache tl_cache;

}  // namespace

Cell& Metric::cellForThisThread() {
  TlCache& tl = tl_cache;
  if (tl.last_uid == uid) return *tl.last_cell;
  auto it = tl.map.find(uid);
  if (it == tl.map.end()) {
    std::lock_guard<std::mutex> guard(*registry_mutex);
    Cell& cell = cells.emplace_back();
    if (kind == Kind::Histogram) {
      // +1 overflow bucket; vector<atomic> is sized once here and never
      // resized, so lock-free readers see a stable array. Zeroed explicitly:
      // std::atomic's default constructor does not initialise the value on
      // every standard library this builds against.
      cell.buckets = std::vector<std::atomic<uint64_t>>(bounds.size() + 1);
      for (std::atomic<uint64_t>& b : cell.buckets) b.store(0, std::memory_order_relaxed);
    }
    it = tl.map.emplace(uid, &cell).first;
  }
  tl.last_uid = uid;
  tl.last_cell = it->second;
  return *it->second;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Handles. All cell traffic is owner-thread relaxed stores; snapshot() does
// relaxed loads. No fetch_add needed: a cell has exactly one writer.

void Counter::add(uint64_t delta) const {
  if constexpr (!kEnabled) return;
  if (metric_ == nullptr || delta == 0) return;
  detail::Cell& c = metric_->cellForThisThread();
  c.count.store(c.count.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

void Gauge::set(double value) const {
  if constexpr (!kEnabled) return;
  if (metric_ == nullptr) return;
  detail::Cell& c = metric_->cellForThisThread();
  c.sum.store(value, std::memory_order_relaxed);
  c.gauge_seq.store(metric_->gauge_clock.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
}

void Histogram::observe(double value) const {
  if constexpr (!kEnabled) return;
  if (metric_ == nullptr) return;
  detail::Cell& c = metric_->cellForThisThread();
  const std::vector<double>& bounds = metric_->bounds;
  std::size_t bucket = bounds.size();  // overflow by default
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  auto relaxed_bump = [](std::atomic<uint64_t>& a) {
    a.store(a.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  };
  const uint64_t n = c.count.load(std::memory_order_relaxed);
  if (n == 0 || value < c.min.load(std::memory_order_relaxed))
    c.min.store(value, std::memory_order_relaxed);
  if (n == 0 || value > c.max.load(std::memory_order_relaxed))
    c.max.store(value, std::memory_order_relaxed);
  c.sum.store(c.sum.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
  relaxed_bump(c.buckets[bucket]);
  relaxed_bump(c.count);
}

// ---------------------------------------------------------------------------
// Registry.

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::deque<std::unique_ptr<detail::Metric>> metrics;  // registration order
  std::unordered_map<std::string, detail::Metric*> by_name;

  detail::Metric* findOrCreate(std::string_view name, detail::Kind kind,
                               std::vector<double> bounds) {
    std::lock_guard<std::mutex> guard(mutex);
    auto it = by_name.find(std::string(name));
    if (it != by_name.end()) {
      detail::Metric* m = it->second;
      if (m->kind != kind)
        throw std::invalid_argument("MetricsRegistry: metric '" + std::string(name) +
                                    "' re-registered with a different kind");
      if (kind == detail::Kind::Histogram && m->bounds != bounds)
        throw std::invalid_argument("MetricsRegistry: histogram '" + std::string(name) +
                                    "' re-registered with different buckets");
      return m;
    }
    auto m = std::make_unique<detail::Metric>();
    m->name = std::string(name);
    m->kind = kind;
    m->bounds = std::move(bounds);
    m->registry_mutex = &mutex;
    detail::Metric* raw = m.get();
    metrics.push_back(std::move(m));
    by_name.emplace(raw->name, raw);
    return raw;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(impl_->findOrCreate(name, detail::Kind::Counter, {}));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(impl_->findOrCreate(name, detail::Kind::Gauge, {}));
}

Histogram MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  if (bounds.empty() || bounds.size() > kMaxHistogramBuckets)
    throw std::invalid_argument("MetricsRegistry: histogram needs 1.." +
                                std::to_string(kMaxHistogramBuckets) + " bucket bounds");
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
    throw std::invalid_argument("MetricsRegistry: histogram bounds must be strictly ascending");
  return Histogram(impl_->findOrCreate(name, detail::Kind::Histogram, std::move(bounds)));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> guard(impl_->mutex);
  for (const auto& m : impl_->metrics) {
    switch (m->kind) {
      case detail::Kind::Counter: {
        CounterValue v;
        v.name = m->name;
        for (const detail::Cell& c : m->cells)
          v.value += c.count.load(std::memory_order_relaxed);
        out.counters.push_back(std::move(v));
        break;
      }
      case detail::Kind::Gauge: {
        GaugeValue v;
        v.name = m->name;
        uint64_t best_seq = 0;
        for (const detail::Cell& c : m->cells) {
          const uint64_t seq = c.gauge_seq.load(std::memory_order_relaxed);
          if (seq > best_seq) {
            best_seq = seq;
            v.value = c.sum.load(std::memory_order_relaxed);
          }
        }
        v.ever_set = best_seq > 0;
        out.gauges.push_back(std::move(v));
        break;
      }
      case detail::Kind::Histogram: {
        HistogramValue v;
        v.name = m->name;
        v.bounds = m->bounds;
        v.buckets.assign(m->bounds.size() + 1, 0);
        v.min = std::numeric_limits<double>::infinity();
        v.max = -std::numeric_limits<double>::infinity();
        for (const detail::Cell& c : m->cells) {
          const uint64_t n = c.count.load(std::memory_order_relaxed);
          if (n == 0) continue;
          v.count += n;
          v.sum += c.sum.load(std::memory_order_relaxed);
          v.min = std::min(v.min, c.min.load(std::memory_order_relaxed));
          v.max = std::max(v.max, c.max.load(std::memory_order_relaxed));
          for (std::size_t i = 0; i < c.buckets.size() && i < v.buckets.size(); ++i)
            v.buckets[i] += c.buckets[i].load(std::memory_order_relaxed);
        }
        if (v.count == 0) {
          v.min = 0.0;
          v.max = 0.0;
        }
        out.histograms.push_back(std::move(v));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> guard(impl_->mutex);
  for (const auto& m : impl_->metrics) {
    m->gauge_clock.store(0, std::memory_order_relaxed);
    for (detail::Cell& c : m->cells) {
      c.count.store(0, std::memory_order_relaxed);
      c.sum.store(0.0, std::memory_order_relaxed);
      c.min.store(0.0, std::memory_order_relaxed);
      c.max.store(0.0, std::memory_order_relaxed);
      c.gauge_seq.store(0, std::memory_order_relaxed);
      for (std::atomic<uint64_t>& b : c.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

std::vector<double> MetricsRegistry::latencyBucketsSeconds() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0};
}

// ---------------------------------------------------------------------------
// Snapshot queries and exporters.

const CounterValue* MetricsSnapshot::findCounter(std::string_view name) const& {
  for (const CounterValue& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeValue* MetricsSnapshot::findGauge(std::string_view name) const& {
  for (const GaugeValue& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramValue* MetricsSnapshot::findHistogram(std::string_view name) const& {
  for (const HistogramValue& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

double HistogramValue::quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max;
  if (q <= 0.0) return min;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate inside this bucket. The first populated bucket starts
      // at the recorded min; the overflow bucket ends at the recorded max.
      const double lo = (cumulative == 0) ? min : (i == 0 ? min : bounds[i - 1]);
      const double hi = (i < bounds.size()) ? bounds[i] : max;
      const double f = (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return std::clamp(lo + f * (hi - lo), min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted convention maps
/// '.' and '-' onto '_'.
std::string promName(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '.' || c == '-') c = '_';
  return out;
}

void promValue(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void MetricsSnapshot::writePrometheus(std::ostream& os) const {
  for (const CounterValue& c : counters) {
    const std::string n = promName(c.name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << c.value << '\n';
  }
  for (const GaugeValue& g : gauges) {
    if (!g.ever_set) continue;
    const std::string n = promName(g.name);
    os << "# TYPE " << n << " gauge\n" << n << ' ';
    promValue(os, g.value);
    os << '\n';
  }
  for (const HistogramValue& h : histograms) {
    const std::string n = promName(h.name);
    os << "# TYPE " << n << " histogram\n";
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << n << "_bucket{le=\"";
      promValue(os, h.bounds[i]);
      os << "\"} " << cumulative << '\n';
    }
    cumulative += h.buckets.empty() ? 0 : h.buckets.back();
    os << n << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    os << n << "_sum ";
    promValue(os, h.sum);
    os << '\n' << n << "_count " << h.count << '\n';
  }
}

}  // namespace pllbist::obs
