#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace pllbist::obs {

class MetricsRegistry;

/// Merged, immutable view of one histogram at snapshot time.
struct HistogramValue {
  std::string name;
  std::vector<double> bounds;     ///< ascending upper bounds; buckets = bounds+1
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< only meaningful when count > 0
  double max = 0.0;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket that holds the q-th observation; exact for q = 1 (returns max).
  /// NaN when the histogram is empty.
  [[nodiscard]] double quantile(double q) const;
};

struct CounterValue {
  std::string name;
  uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
  bool ever_set = false;
};

/// Point-in-time merge of every per-thread shard in a registry. Metrics
/// appear in registration order, so two snapshots of identically-driven
/// registries serialise identically.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // Lvalue-qualified: the returned pointer aims into this snapshot, so
  // calling on a temporary (`reg.snapshot().findCounter(...)`) would dangle
  // the moment the full expression ends. Bind the snapshot to a local first.
  [[nodiscard]] const CounterValue* findCounter(std::string_view name) const&;
  [[nodiscard]] const GaugeValue* findGauge(std::string_view name) const&;
  [[nodiscard]] const HistogramValue* findHistogram(std::string_view name) const&;
  const CounterValue* findCounter(std::string_view) const&& = delete;
  const GaugeValue* findGauge(std::string_view) const&& = delete;
  const HistogramValue* findHistogram(std::string_view) const&& = delete;

  /// Prometheus text exposition format (counters as `# TYPE x counter`,
  /// histograms with cumulative `_bucket{le=...}` series).
  void writePrometheus(std::ostream& os) const;
};

namespace detail {

/// One thread's slot for one metric. Written only by the owning thread
/// (relaxed stores), read concurrently by snapshot() (relaxed loads), so
/// recording is wait-free and contention-free after first touch.
struct Cell {
  std::atomic<uint64_t> count{0};          // counter value / histogram count
  std::atomic<double> sum{0.0};            // gauge value / histogram sum
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
  std::atomic<uint64_t> gauge_seq{0};      // last-writer-wins ordering for gauges
  std::vector<std::atomic<uint64_t>> buckets;  // histograms only
};

struct Metric;

}  // namespace detail

/// Monotonically increasing counter handle. Copyable, trivially small;
/// records through a thread-local cell so ParallelSweep workers never
/// contend. All operations are no-ops on a default-constructed handle and
/// compile to nothing when PLLBIST_OBS is off.
class Counter {
 public:
  Counter() = default;
  void add(uint64_t delta) const;
  void increment() const { add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::Metric* m) : metric_(m) {}
  detail::Metric* metric_ = nullptr;
};

/// Last-writer-wins gauge handle (cross-thread ordering by set() sequence).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Metric* m) : metric_(m) {}
  detail::Metric* metric_ = nullptr;
};

/// Fixed-bucket histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Metric* m) : metric_(m) {}
  detail::Metric* metric_ = nullptr;
};

/// Registry of named counters, gauges and fixed-bucket histograms.
///
/// Shard model: each (thread, metric) pair gets a private Cell the first
/// time that thread records; the slow path (one mutex acquisition) happens
/// once per pair, after which recording is two relaxed atomic ops on
/// thread-private cache lines. snapshot() merges all cells. Cells of
/// finished threads persist, so a worker pool's counts survive the pool.
///
/// Registering the same name twice returns the same metric (the kinds must
/// match; a kind clash throws std::invalid_argument).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  /// `bounds` are ascending upper bucket bounds; an implicit +inf overflow
  /// bucket is appended. Re-registration must repeat identical bounds.
  [[nodiscard]] Histogram histogram(std::string_view name, std::vector<double> bounds);

  /// Merge every shard into an ordered snapshot. Safe to call while other
  /// threads record (their in-flight updates may or may not be included).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every cell of every metric (definitions stay registered). Used
  /// between runs when one process performs several independent sweeps.
  void reset();

  /// Process-wide default registry; what the built-in instrumentation and
  /// the RunReport exporters use.
  static MetricsRegistry& global();

  /// Convenience buckets for wall-clock latencies in seconds (1 ms .. 30 s,
  /// log-spaced) — the shape used by bist.sweep.point_wall_s.
  static std::vector<double> latencyBucketsSeconds();

 private:
  struct Impl;
  Impl* impl_;
};

/// Default histogram bucket count sanity bound (schema + memory guard).
inline constexpr std::size_t kMaxHistogramBuckets = 64;

}  // namespace pllbist::obs
