#pragma once

// Master switch of the telemetry subsystem. The build defines
// PLLBIST_OBS_DISABLED (CMake option PLLBIST_OBS=OFF) to compile every
// recording call — metric increments, span open/close, instants — down to
// nothing. The registry/tracer/report *types* stay available either way, so
// call sites never need #ifdef guards: they pay one `if constexpr` that the
// compiler deletes.
//
// Naming convention for metrics (enforced by review, not code):
//   layer.component.name        e.g. sim.kernel.events_delivered,
//                                    bist.resilient.relocks,
//                                    bist.sweep.point_wall_s
// Units are part of the name suffix where they matter (_s, _hz).
//
// Span taxonomy (see DESIGN.md §8):
//   sim.circuit.run             one Circuit::run(t_end) batch
//   sequencer.settle / .phase_measure / .await_peak / .hold_count
//   point.measure               one frequency point, all attempts
//   point.attempt               one measurement attempt
//   sweep.run                   one ResilientSweep::run()
//   farm.run / farm.worker      ParallelSweep executor / one worker thread

namespace pllbist::obs {

#if defined(PLLBIST_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

}  // namespace pllbist::obs
