#include "obs/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace pllbist::obs {

uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

std::string digestHex(uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

void writeQuality(JsonWriter& w, const RunReport::Quality& q) {
  w.beginObject();
  w.key("points_total").value(q.points_total);
  w.key("ok").value(q.ok);
  w.key("retried").value(q.retried);
  w.key("degraded").value(q.degraded);
  w.key("dropped").value(q.dropped);
  w.key("attempts_total").value(q.attempts_total);
  w.key("relocks").value(q.relocks);
  w.key("relock_failures").value(q.relock_failures);
  w.key("sim_time_s").value(q.sim_time_s);
  w.key("wall_time_s").value(q.wall_time_s);
  w.endObject();
}

}  // namespace

void writeMetricsJson(JsonWriter& w, const MetricsSnapshot& m) {
  w.beginObject();
  w.key("counters").beginArray();
  for (const CounterValue& c : m.counters) {
    w.beginObject();
    w.key("name").value(c.name);
    w.key("value").value(static_cast<uint64_t>(c.value));
    w.endObject();
  }
  w.endArray();
  w.key("gauges").beginArray();
  for (const GaugeValue& g : m.gauges) {
    if (!g.ever_set) continue;
    w.beginObject();
    w.key("name").value(g.name);
    w.key("value").value(g.value);
    w.endObject();
  }
  w.endArray();
  w.key("histograms").beginArray();
  for (const HistogramValue& h : m.histograms) {
    w.beginObject();
    w.key("name").value(h.name);
    w.key("bounds").beginArray();
    for (double b : h.bounds) w.value(b);
    w.endArray();
    w.key("buckets").beginArray();
    for (uint64_t b : h.buckets) w.value(static_cast<uint64_t>(b));
    w.endArray();
    w.key("count").value(static_cast<uint64_t>(h.count));
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

void RunReport::writeJson(std::ostream& os) const {
  JsonWriter w(os);
  w.beginObject();
  w.key("schema").value(kRunReportSchema);
  w.key("tool").value(tool);
  w.key("config").beginObject();
  w.key("device").value(device);
  w.key("stimulus").value(stimulus);
  w.key("digest").value(digestHex(config_digest));
  w.key("jobs").value(jobs);
  w.endObject();
  w.key("status").value(sweep_status);
  w.key("quality");
  writeQuality(w, quality);
  w.key("points").beginArray();
  for (const Point& p : points) {
    w.beginObject();
    w.key("fm_hz").value(p.fm_hz);
    w.key("deviation_hz").value(p.deviation_hz);
    w.key("phase_deg").value(p.phase_deg);
    w.key("quality").value(p.quality);
    w.key("attempts").value(p.attempts);
    w.key("status").value(p.status);
    if (!p.status_context.empty()) w.key("status_context").value(p.status_context);
    w.key("wall_time_s").value(p.wall_time_s);
    w.endObject();
  }
  w.endArray();
  if (faults.has_value()) {
    w.key("faults").beginObject();
    w.key("considered").value(static_cast<uint64_t>(faults->considered));
    w.key("dropped").value(static_cast<uint64_t>(faults->dropped));
    w.key("delayed").value(static_cast<uint64_t>(faults->delayed));
    w.key("glitches").value(static_cast<uint64_t>(faults->glitches));
    w.endObject();
  }
  w.key("kernel").beginObject();
  w.key("processed").value(static_cast<uint64_t>(kernel.processed));
  w.key("delivered").value(static_cast<uint64_t>(kernel.delivered));
  w.key("dropped").value(static_cast<uint64_t>(kernel.dropped));
  w.key("delayed").value(static_cast<uint64_t>(kernel.delayed));
  w.key("swallowed").value(static_cast<uint64_t>(kernel.swallowed));
  w.endObject();
  w.key("metrics");
  writeMetricsJson(w, metrics);
  w.endObject();
  os << '\n';
}

std::string RunReport::toJson() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Schema validation.

namespace {

Status violation(const char* what) {
  return Status::makef(Status::Kind::InvalidArgument, "RunReport schema: %s", what);
}

Status requireNumbers(const JsonValue& obj, std::initializer_list<const char*> keys,
                      const char* where) {
  for (const char* k : keys) {
    const JsonValue* v = obj.find(k);
    if (v == nullptr || !v->isNumber())
      return Status::makef(Status::Kind::InvalidArgument,
                           "RunReport schema: %s.%s missing or not a number", where, k);
  }
  return Status();
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

Status validateRunReportJson(const JsonValue& root) {
  if (!root.isObject()) return violation("top level must be an object");

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->isString()) return violation("missing 'schema' string");
  if (schema->string != kRunReportSchema)
    return Status::makef(Status::Kind::InvalidArgument,
                         "RunReport schema: unsupported schema '%s' (expected '%s')",
                         schema->string.c_str(), kRunReportSchema);

  const JsonValue* tool = root.find("tool");
  if (tool == nullptr || !tool->isString() || tool->string.empty())
    return violation("missing 'tool' string");

  const JsonValue* config = root.find("config");
  if (config == nullptr || !config->isObject()) return violation("missing 'config' object");
  for (const char* k : {"device", "stimulus", "digest"}) {
    const JsonValue* v = config->find(k);
    if (v == nullptr || !v->isString())
      return Status::makef(Status::Kind::InvalidArgument,
                           "RunReport schema: config.%s missing or not a string", k);
  }
  const JsonValue* digest = config->find("digest");
  if (digest->string.size() < 3 || digest->string.substr(0, 2) != "0x")
    return violation("config.digest must be a 0x-prefixed hex string");
  for (char c : digest->string.substr(2))
    if (!std::isxdigit(static_cast<unsigned char>(c)))
      return violation("config.digest must be a 0x-prefixed hex string");
  const JsonValue* jobs = config->find("jobs");
  if (jobs == nullptr || !jobs->isNumber()) return violation("config.jobs missing or not a number");

  const JsonValue* status = root.find("status");
  if (status == nullptr || !status->isString()) return violation("missing 'status' string");

  const JsonValue* quality = root.find("quality");
  if (quality == nullptr || !quality->isObject()) return violation("missing 'quality' object");
  Status s = requireNumbers(*quality,
                            {"points_total", "ok", "retried", "degraded", "dropped",
                             "attempts_total", "relocks", "relock_failures", "sim_time_s"},
                            "quality");
  if (!s.ok()) return s;
  // wall_time_s is a documented timing field: required in a freshly emitted
  // report but legitimately absent after stripTimingFields().
  const JsonValue* qw = quality->find("wall_time_s");
  if (qw != nullptr && !qw->isNumber()) return violation("quality.wall_time_s must be a number");

  const JsonValue* points = root.find("points");
  if (points == nullptr || !points->isArray()) return violation("missing 'points' array");
  int counted[4] = {0, 0, 0, 0};  // ok, retried, degraded, dropped
  for (const JsonValue& p : points->array) {
    if (!p.isObject()) return violation("points[] entries must be objects");
    s = requireNumbers(p, {"fm_hz", "deviation_hz", "phase_deg", "attempts"}, "points[]");
    if (!s.ok()) return s;
    const JsonValue* pq = p.find("quality");
    if (pq == nullptr || !pq->isString()) return violation("points[].quality missing");
    if (pq->string == "ok") ++counted[0];
    else if (pq->string == "retried") ++counted[1];
    else if (pq->string == "degraded") ++counted[2];
    else if (pq->string == "dropped") ++counted[3];
    else return violation("points[].quality must be ok/retried/degraded/dropped");
    const JsonValue* ps = p.find("status");
    if (ps == nullptr || !ps->isString()) return violation("points[].status missing");
    const JsonValue* pw = p.find("wall_time_s");
    if (pw != nullptr && !pw->isNumber()) return violation("points[].wall_time_s must be a number");
  }
  auto qint = [&](const char* k) { return static_cast<int>(quality->find(k)->number); };
  if (qint("points_total") != static_cast<int>(points->array.size()))
    return violation("quality.points_total != points array length");
  if (qint("ok") != counted[0] || qint("retried") != counted[1] ||
      qint("degraded") != counted[2] || qint("dropped") != counted[3])
    return violation("quality counters disagree with per-point quality labels");

  const JsonValue* faults = root.find("faults");
  if (faults != nullptr) {
    if (!faults->isObject()) return violation("'faults' must be an object");
    s = requireNumbers(*faults, {"considered", "dropped", "delayed", "glitches"}, "faults");
    if (!s.ok()) return s;
  }

  const JsonValue* kernel = root.find("kernel");
  if (kernel == nullptr || !kernel->isObject()) return violation("missing 'kernel' object");
  s = requireNumbers(*kernel, {"processed", "delivered", "dropped", "delayed", "swallowed"},
                     "kernel");
  if (!s.ok()) return s;
  if (kernel->find("processed")->number < kernel->find("delivered")->number)
    return violation("kernel.processed < kernel.delivered");

  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || !metrics->isObject()) return violation("missing 'metrics' object");
  for (const char* k : {"counters", "gauges", "histograms"}) {
    const JsonValue* arr = metrics->find(k);
    if (arr == nullptr || !arr->isArray())
      return Status::makef(Status::Kind::InvalidArgument,
                           "RunReport schema: metrics.%s missing or not an array", k);
    for (const JsonValue& m : arr->array) {
      if (!m.isObject()) return violation("metrics entries must be objects");
      const JsonValue* name = m.find("name");
      if (name == nullptr || !name->isString() || name->string.empty())
        return violation("metrics entries need a non-empty name");
    }
  }
  for (const JsonValue& h : metrics->find("histograms")->array) {
    const JsonValue* bounds = h.find("bounds");
    const JsonValue* buckets = h.find("buckets");
    if (bounds == nullptr || !bounds->isArray() || buckets == nullptr || !buckets->isArray())
      return violation("histogram entries need bounds and buckets arrays");
    if (buckets->array.size() != bounds->array.size() + 1)
      return violation("histogram buckets length must be bounds length + 1");
    s = requireNumbers(h, {"count", "sum", "min", "max"}, "metrics.histograms[]");
    if (!s.ok()) return s;
    double bucket_sum = 0.0;
    for (const JsonValue& b : buckets->array) {
      if (!b.isNumber()) return violation("histogram buckets must be numbers");
      bucket_sum += b.number;
    }
    if (bucket_sum != h.find("count")->number)
      return violation("histogram count != sum of buckets");
  }
  return Status();
}

Status validateRunReportText(std::string_view text) {
  JsonValue root;
  Status s = parseJson(text, root);
  if (!s.ok()) return s;
  return validateRunReportJson(root);
}

namespace {

Status goldenViolation(const char* what) {
  return Status::makef(Status::Kind::InvalidArgument, "GoldenReport schema: %s", what);
}

Status goldenRequireNumbers(const JsonValue& obj, std::initializer_list<const char*> keys,
                            const char* where) {
  for (const char* k : keys) {
    const JsonValue* v = obj.find(k);
    if (v == nullptr || !v->isNumber())
      return Status::makef(Status::Kind::InvalidArgument,
                           "GoldenReport schema: %s.%s missing or not a number", where, k);
  }
  return Status();
}

}  // namespace

Status validateGoldenReportJson(const JsonValue& root) {
  if (!root.isObject()) return goldenViolation("top level must be an object");

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->isString()) return goldenViolation("missing 'schema' string");
  if (schema->string != kGoldenReportSchema)
    return Status::makef(Status::Kind::InvalidArgument,
                         "GoldenReport schema: unsupported schema '%s' (expected '%s')",
                         schema->string.c_str(), kGoldenReportSchema);

  const JsonValue* tool = root.find("tool");
  if (tool == nullptr || !tool->isString() || tool->string.empty())
    return goldenViolation("missing 'tool' string");

  const JsonValue* config = root.find("config");
  if (config == nullptr || !config->isObject()) return goldenViolation("missing 'config' object");
  for (const char* k : {"device", "stimulus", "digest", "seed"}) {
    const JsonValue* v = config->find(k);
    if (v == nullptr || !v->isString())
      return Status::makef(Status::Kind::InvalidArgument,
                           "GoldenReport schema: config.%s missing or not a string", k);
  }
  for (const char* k : {"digest", "seed"}) {
    const JsonValue* v = config->find(k);
    if (v->string.size() < 3 || v->string.substr(0, 2) != "0x")
      return Status::makef(Status::Kind::InvalidArgument,
                           "GoldenReport schema: config.%s must be a 0x-prefixed hex string", k);
    for (char c : v->string.substr(2))
      if (!std::isxdigit(static_cast<unsigned char>(c)))
        return Status::makef(Status::Kind::InvalidArgument,
                             "GoldenReport schema: config.%s must be a 0x-prefixed hex string", k);
  }
  Status s = goldenRequireNumbers(
      *config, {"jobs", "fn_hz", "zeta", "tau2_s", "loop_gain_per_s",
                "transport_delay_ref_periods"},
      "config");
  if (!s.ok()) return s;
  if (!(config->find("fn_hz")->number > 0.0))
    return goldenViolation("config.fn_hz must be positive");
  if (!(config->find("zeta")->number > 0.0)) return goldenViolation("config.zeta must be positive");

  const JsonValue* bands = root.find("tolerance_bands");
  if (bands == nullptr || !bands->isArray() || bands->array.empty())
    return goldenViolation("missing non-empty 'tolerance_bands' array");
  double prev_edge = 0.0;
  for (const JsonValue& b : bands->array) {
    if (!b.isObject()) return goldenViolation("tolerance_bands[] entries must be objects");
    const JsonValue* label = b.find("label");
    if (label == nullptr || !label->isString() || label->string.empty())
      return goldenViolation("tolerance_bands[].label missing");
    s = goldenRequireNumbers(b, {"f_over_fn_max", "magnitude_db", "phase_deg"},
                             "tolerance_bands[]");
    if (!s.ok()) return s;
    if (!(b.find("f_over_fn_max")->number > prev_edge))
      return goldenViolation("tolerance_bands[].f_over_fn_max must be strictly ascending");
    prev_edge = b.find("f_over_fn_max")->number;
    if (!(b.find("magnitude_db")->number > 0.0) || !(b.find("phase_deg")->number > 0.0))
      return goldenViolation("tolerance_bands[] tolerances must be positive");
  }

  const JsonValue* sweep_status = root.find("sweep_status");
  if (sweep_status == nullptr || !sweep_status->isString())
    return goldenViolation("missing 'sweep_status' string");

  const JsonValue* quality = root.find("quality");
  if (quality == nullptr || !quality->isObject()) return goldenViolation("missing 'quality' object");
  s = goldenRequireNumbers(*quality,
                           {"points_total", "ok", "retried", "degraded", "dropped",
                            "attempts_total", "relocks", "relock_failures", "sim_time_s"},
                           "quality");
  if (!s.ok()) return s;
  const JsonValue* qw = quality->find("wall_time_s");
  if (qw != nullptr && !qw->isNumber())
    return goldenViolation("quality.wall_time_s must be a number");

  const JsonValue* points = root.find("points");
  if (points == nullptr || !points->isArray()) return goldenViolation("missing 'points' array");
  int compared = 0, excluded = 0;
  double max_db = 0.0, max_deg = 0.0;
  for (const JsonValue& p : points->array) {
    if (!p.isObject()) return goldenViolation("points[] entries must be objects");
    s = goldenRequireNumbers(p,
                             {"fm_hz", "f_over_fn", "measured_db", "golden_db", "delta_db",
                              "measured_phase_deg", "golden_phase_deg", "delay_correction_deg",
                              "delta_phase_deg", "magnitude_tol_db", "phase_tol_deg"},
                             "points[]");
    if (!s.ok()) return s;
    const JsonValue* band = p.find("band");
    if (band == nullptr || !band->isString() || band->string.empty())
      return goldenViolation("points[].band missing");
    const JsonValue* pq = p.find("quality");
    if (pq == nullptr || !pq->isString()) return goldenViolation("points[].quality missing");
    const JsonValue* pc = p.find("compared");
    const JsonValue* pp = p.find("pass");
    if (pc == nullptr || !pc->isBool()) return goldenViolation("points[].compared missing");
    if (pp == nullptr || !pp->isBool()) return goldenViolation("points[].pass missing");
    if (pp->boolean && !pc->boolean)
      return goldenViolation("points[].pass requires points[].compared");
    if (pc->boolean && band->string == "excluded")
      return goldenViolation("excluded points[] cannot be compared");
    const JsonValue* pw = p.find("wall_time_s");
    if (pw != nullptr && !pw->isNumber())
      return goldenViolation("points[].wall_time_s must be a number");
    if (pc->boolean) {
      ++compared;
      const double adb = std::abs(p.find("delta_db")->number);
      const double adeg = std::abs(p.find("delta_phase_deg")->number);
      if (adb > max_db) max_db = adb;
      if (adeg > max_deg) max_deg = adeg;
    } else if (band->string == "excluded") {
      ++excluded;
    }
  }

  const JsonValue* summary = root.find("summary");
  if (summary == nullptr || !summary->isObject()) return goldenViolation("missing 'summary' object");
  s = goldenRequireNumbers(
      *summary, {"compared", "excluded", "max_abs_delta_db", "max_abs_delta_phase_deg"},
      "summary");
  if (!s.ok()) return s;
  const JsonValue* pass = summary->find("pass");
  if (pass == nullptr || !pass->isBool()) return goldenViolation("summary.pass missing");
  if (static_cast<int>(summary->find("compared")->number) != compared)
    return goldenViolation("summary.compared disagrees with per-point compared flags");
  if (static_cast<int>(summary->find("excluded")->number) != excluded)
    return goldenViolation("summary.excluded disagrees with per-point band labels");
  // The summary maxima must cover every compared point's delta (they may
  // only exceed the recomputed maxima through rounding, never fall short).
  if (summary->find("max_abs_delta_db")->number + 1e-12 < max_db)
    return goldenViolation("summary.max_abs_delta_db below a compared point's |delta_db|");
  if (summary->find("max_abs_delta_phase_deg")->number + 1e-12 < max_deg)
    return goldenViolation("summary.max_abs_delta_phase_deg below a compared point's delta");
  if (pass->boolean && compared == 0)
    return goldenViolation("summary.pass requires at least one compared point");
  return Status();
}

Status validateGoldenReportText(std::string_view text) {
  JsonValue root;
  Status s = parseJson(text, root);
  if (!s.ok()) return s;
  return validateGoldenReportJson(root);
}

const std::vector<std::string>& runReportTimingFields() {
  static const std::vector<std::string> fields = {
      "quality.wall_time_s",
      "points[].wall_time_s",
      "metrics.counters[name=*_wall_s]",
      "metrics.gauges[name=*_wall_s]",
      "metrics.histograms[name=*_wall_s]",
  };
  return fields;
}

void stripTimingFields(JsonValue& root) {
  if (JsonValue* quality = root.find("quality")) quality->erase("wall_time_s");
  if (JsonValue* points = root.find("points"); points != nullptr && points->isArray())
    for (JsonValue& p : points->array) p.erase("wall_time_s");
  if (JsonValue* metrics = root.find("metrics")) {
    for (const char* family : {"counters", "gauges", "histograms"}) {
      JsonValue* arr = metrics->find(family);
      if (arr == nullptr || !arr->isArray()) continue;
      std::vector<JsonValue> kept;
      for (JsonValue& m : arr->array) {
        const JsonValue* name = m.find("name");
        if (name != nullptr && name->isString() && endsWith(name->string, "_wall_s")) continue;
        kept.push_back(std::move(m));
      }
      arr->array = std::move(kept);
    }
  }
}

}  // namespace pllbist::obs
