#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace pllbist::obs {

class JsonValue;
class JsonWriter;

/// Schema identifier written into (and required from) every report.
inline constexpr const char* kRunReportSchema = "pllbist.run_report/1";

/// Machine-readable record of how one run behaved: configuration digest,
/// per-point quality + timing, sweep-level quality accounting, fault and
/// kernel statistics, and the full metrics snapshot. This is the
/// consolidated artifact `sweep_cli --report out.json` emits; the obs layer
/// keeps it free of bist/pll types so any layer can assemble one (see
/// core::buildRunReport for the sweep adapter).
struct RunReport {
  /// One measured frequency point.
  struct Point {
    double fm_hz = 0.0;
    double deviation_hz = 0.0;
    double phase_deg = 0.0;
    std::string quality;  ///< "ok" / "retried" / "degraded" / "dropped"
    int attempts = 0;
    std::string status;       ///< Status kind name ("ok" when measured)
    std::string status_context;  ///< human-readable failure detail, may be empty
    double wall_time_s = 0.0;    ///< host time spent on this point (timing field)
  };

  /// Sweep-level quality accounting (mirrors bist::SweepQualityReport).
  struct Quality {
    int points_total = 0;
    int ok = 0;
    int retried = 0;
    int degraded = 0;
    int dropped = 0;
    int attempts_total = 0;
    int relocks = 0;
    int relock_failures = 0;
    double sim_time_s = 0.0;
    double wall_time_s = 0.0;  ///< timing field
  };

  /// sim::FaultInjector statistics, when a fault campaign was attached.
  struct FaultStats {
    uint64_t considered = 0;
    uint64_t dropped = 0;
    uint64_t delayed = 0;
    uint64_t glitches = 0;
  };

  /// Event-kernel counters summed over every circuit the run built.
  struct KernelStats {
    uint64_t processed = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t delayed = 0;
    uint64_t swallowed = 0;
  };

  std::string tool;      ///< producing binary, e.g. "sweep_cli"
  std::string device;    ///< preset name ("reference", "fast", ...)
  std::string stimulus;  ///< stimulus kind name
  /// FNV-1a digest over the canonical textual form of the device
  /// configuration; two reports with equal digests measured the same
  /// device. Serialised as a hex string.
  uint64_t config_digest = 0;
  int jobs = -1;  ///< -1 = serial shared-bench engine, >= 0 = point farm
  std::string sweep_status = "ok";  ///< fatal sweep Status kind name

  Quality quality;
  std::vector<Point> points;
  std::optional<FaultStats> faults;
  KernelStats kernel;
  MetricsSnapshot metrics;

  /// Serialise as schema-conformant JSON. Field order is fixed, numbers use
  /// shortest-round-trip formatting: identical reports serialise to
  /// byte-identical documents.
  void writeJson(std::ostream& os) const;
  [[nodiscard]] std::string toJson() const;
};

/// Validate a parsed document against the RunReport schema: required keys,
/// value types, quality-counter consistency (ok+retried+degraded+dropped ==
/// points_total, points array length matches), histogram bucket/bound
/// arity. Returns InvalidArgument naming the first violated rule.
[[nodiscard]] Status validateRunReportJson(const JsonValue& root);

/// Convenience: parse + validate a JSON document in one call.
[[nodiscard]] Status validateRunReportText(std::string_view text);

/// Schema identifier of the golden differential report (emitted by
/// golden::DifferentialReport::toJson; the constant lives here so report
/// tooling can dispatch on it without linking the golden library).
inline constexpr const char* kGoldenReportSchema = "pllbist.golden_report/1";

/// Validate a parsed document against the golden_report schema: required
/// keys and types, ascending tolerance bands, per-point band/tolerance
/// consistency, summary counters (compared + excluded vs points, maxima
/// match the per-point deltas). Returns InvalidArgument naming the first
/// violated rule. The timing-field contract matches RunReport
/// (quality.wall_time_s, points[].wall_time_s may be stripped).
[[nodiscard]] Status validateGoldenReportJson(const JsonValue& root);

/// Convenience: parse + validate a golden report in one call.
[[nodiscard]] Status validateGoldenReportText(std::string_view text);

/// The timing-dependent JSON paths of a report, as documented contract:
/// "quality.wall_time_s", "points[].wall_time_s", and every metric whose
/// name ends in "_wall_s". stripTimingFields() removes exactly these (used
/// by the determinism test; exposed so external diff tooling can apply the
/// same rule).
[[nodiscard]] const std::vector<std::string>& runReportTimingFields();
void stripTimingFields(JsonValue& root);

/// FNV-1a over a byte string (the config-digest primitive).
[[nodiscard]] uint64_t fnv1a64(std::string_view bytes);

/// Write one MetricsSnapshot as the RunReport `metrics` object
/// ({counters:[],gauges:[],histograms:[]}); exposed so other report shapes
/// (e.g. the production-screening lot report) embed the identical section.
void writeMetricsJson(JsonWriter& w, const MetricsSnapshot& m);

}  // namespace pllbist::obs
