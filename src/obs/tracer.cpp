#include "obs/tracer.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <unordered_map>

#include "obs/json.hpp"

namespace pllbist::obs {

namespace {

struct StackEntry {
  const Tracer* tracer;
  uint64_t id;
};
/// Per-thread stack of open *scoped* spans (parent linkage).
thread_local std::vector<StackEntry> tl_span_stack;

}  // namespace

struct Tracer::Impl {
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();

  mutable std::mutex mutex;
  std::size_t capacity;
  std::vector<SpanRecord> ring;  // grows to capacity, then wraps at head
  std::size_t head = 0;          // next overwrite position once full
  uint64_t next_id = 1;

  struct OpenSpan {
    std::string name;
    uint64_t parent_id = 0;
    uint64_t start_ns = 0;
    uint32_t thread_index = 0;
  };
  std::unordered_map<uint64_t, OpenSpan> open;
  std::map<std::thread::id, uint32_t> thread_indices;

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             epoch)
            .count());
  }

  uint32_t threadIndexLocked() {
    const auto tid = std::this_thread::get_id();
    auto it = thread_indices.find(tid);
    if (it == thread_indices.end())
      it = thread_indices.emplace(tid, static_cast<uint32_t>(thread_indices.size())).first;
    return it->second;
  }

  void pushLocked(SpanRecord rec) {
    if (ring.size() < capacity) {
      ring.push_back(std::move(rec));
    } else {
      ring[head] = std::move(rec);
      head = (head + 1) % capacity;
    }
  }
};

Tracer::Tracer(std::size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}
Tracer::~Tracer() { delete impl_; }

void Tracer::setEnabled(bool enabled) { impl_->enabled.store(enabled, std::memory_order_relaxed); }
bool Tracer::enabled() const { return impl_->enabled.load(std::memory_order_relaxed); }

uint64_t Tracer::begin(std::string_view name) {
  if constexpr (!kEnabled) return 0;
  if (!enabled()) return 0;
  uint64_t parent = 0;
  if (!tl_span_stack.empty() && tl_span_stack.back().tracer == this)
    parent = tl_span_stack.back().id;
  const uint64_t start = impl_->nowNs();
  std::lock_guard<std::mutex> guard(impl_->mutex);
  const uint64_t id = impl_->next_id++;
  impl_->open.emplace(id, Impl::OpenSpan{std::string(name), parent, start,
                                         impl_->threadIndexLocked()});
  return id;
}

void Tracer::end(uint64_t id) {
  if constexpr (!kEnabled) return;
  if (id == 0) return;
  const uint64_t now = impl_->nowNs();
  std::lock_guard<std::mutex> guard(impl_->mutex);
  auto it = impl_->open.find(id);
  if (it == impl_->open.end()) return;  // cleared mid-span, or a bogus id
  SpanRecord rec;
  rec.name = std::move(it->second.name);
  rec.id = id;
  rec.parent_id = it->second.parent_id;
  rec.start_ns = it->second.start_ns;
  rec.duration_ns = now > it->second.start_ns ? now - it->second.start_ns : 0;
  rec.thread_index = it->second.thread_index;
  impl_->open.erase(it);
  impl_->pushLocked(std::move(rec));
}

void Tracer::instant(std::string_view name) {
  if constexpr (!kEnabled) return;
  if (!enabled()) return;
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_ns = impl_->nowNs();
  rec.instant = true;
  if (!tl_span_stack.empty() && tl_span_stack.back().tracer == this)
    rec.parent_id = tl_span_stack.back().id;
  std::lock_guard<std::mutex> guard(impl_->mutex);
  rec.id = impl_->next_id++;
  rec.thread_index = impl_->threadIndexLocked();
  impl_->pushLocked(std::move(rec));
}

Tracer::Scope Tracer::beginScoped(std::string_view name) {
  const uint64_t id = begin(name);
  if (id == 0) return {};
  tl_span_stack.push_back({this, id});
  return {this, id};
}

void Tracer::endScoped(uint64_t id) {
  if (id == 0) return;
  // Scoped spans strictly nest per thread, so the top entry is ours; guard
  // anyway against a stack cleared from another scope.
  if (!tl_span_stack.empty() && tl_span_stack.back().tracer == this &&
      tl_span_stack.back().id == id)
    tl_span_stack.pop_back();
  end(id);
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard<std::mutex> guard(impl_->mutex);
  std::vector<SpanRecord> out;
  out.reserve(impl_->ring.size());
  if (impl_->ring.size() < impl_->capacity) {
    out = impl_->ring;
  } else {
    for (std::size_t i = 0; i < impl_->ring.size(); ++i)
      out.push_back(impl_->ring[(impl_->head + i) % impl_->ring.size()]);
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> guard(impl_->mutex);
  impl_->ring.clear();
  impl_->head = 0;
}

void Tracer::writeChromeTrace(std::ostream& os) const {
  const std::vector<SpanRecord> recs = records();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : recs) {
    if (!first) os << ',';
    first = false;
    // trace_event timestamps are microseconds.
    const double ts_us = static_cast<double>(r.start_ns) / 1000.0;
    os << "{\"name\":" << jsonQuote(r.name) << ",\"cat\":\"pllbist\",\"pid\":1,\"tid\":"
       << r.thread_index << ",\"ts\":" << jsonNumber(ts_us);
    if (r.instant) {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      os << ",\"ph\":\"X\",\"dur\":" << jsonNumber(static_cast<double>(r.duration_ns) / 1000.0);
    }
    os << ",\"args\":{\"id\":" << r.id << ",\"parent\":" << r.parent_id << "}}";
  }
  os << "]}\n";
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

}  // namespace pllbist::obs
