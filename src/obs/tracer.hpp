#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace pllbist::obs {

/// One completed span or instant marker, as stored in the ring buffer.
struct SpanRecord {
  std::string name;
  uint64_t id = 0;         ///< unique per tracer; 0 never used
  uint64_t parent_id = 0;  ///< 0 = root
  uint64_t start_ns = 0;   ///< monotonic (steady_clock), relative to tracer epoch
  uint64_t duration_ns = 0;
  uint32_t thread_index = 0;  ///< small dense per-tracer thread number
  bool instant = false;       ///< zero-duration marker (retry/relock decisions)
};

/// Span-based tracer with a bounded ring-buffer sink.
///
/// Disabled by default: begin()/end()/instant() cost one relaxed atomic
/// load and return immediately, so instrumented hot paths stay cheap when
/// nobody asked for a trace (and compile to nothing entirely when
/// PLLBIST_OBS is off). Enable with setEnabled(true) before the run.
///
/// Parent linkage: ScopedSpan (and the PLLBIST_SPAN macro) maintain a
/// thread-local span stack; manual begin()/end() pairs — used for logical
/// phases that cross event callbacks, like sequencer stages — take the
/// current stack top as parent but do not push themselves, so they can
/// overlap freely.
///
/// The sink keeps the most recent `capacity` completed records; older ones
/// are overwritten (flight-recorder semantics).
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void setEnabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Start a span; returns its id (0 when disabled — end(0) is a no-op).
  uint64_t begin(std::string_view name);
  /// Finish a span started with begin().
  void end(uint64_t id);
  /// Record a zero-duration marker at now.
  void instant(std::string_view name);

  /// Copy of the ring contents, oldest first.
  [[nodiscard]] std::vector<SpanRecord> records() const;
  /// Drop everything recorded so far (open spans keep their start times).
  void clear();

  /// Chrome/Perfetto trace_event JSON ("X" complete events, "i" instants).
  /// Load via chrome://tracing or https://ui.perfetto.dev.
  void writeChromeTrace(std::ostream& os) const;

  /// Process-wide default tracer used by PLLBIST_SPAN and the built-in
  /// instrumentation.
  static Tracer& global();

  // Used by ScopedSpan; public for the macro, not for direct use.
  struct Scope {
    Tracer* tracer = nullptr;
    uint64_t id = 0;
  };
  Scope beginScoped(std::string_view name);
  void endScoped(uint64_t id);

 private:
  struct Impl;
  Impl* impl_;
};

/// RAII span on the global tracer (see PLLBIST_SPAN).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if constexpr (kEnabled) scope_ = Tracer::global().beginScoped(name);
  }
  ~ScopedSpan() {
    if constexpr (kEnabled) {
      if (scope_.tracer != nullptr) scope_.tracer->endScoped(scope_.id);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer::Scope scope_;
};

}  // namespace pllbist::obs

#define PLLBIST_OBS_CONCAT2(a, b) a##b
#define PLLBIST_OBS_CONCAT(a, b) PLLBIST_OBS_CONCAT2(a, b)

#if defined(PLLBIST_OBS_DISABLED)
#define PLLBIST_SPAN(name) ((void)0)
#define PLLBIST_INSTANT(name) ((void)0)
#else
/// Open a span covering the enclosing scope, e.g. PLLBIST_SPAN("point.measure").
#define PLLBIST_SPAN(name) \
  ::pllbist::obs::ScopedSpan PLLBIST_OBS_CONCAT(pllbist_span_, __LINE__)(name)
/// Record an instant marker, e.g. PLLBIST_INSTANT("resilience.relock").
#define PLLBIST_INSTANT(name) ::pllbist::obs::Tracer::global().instant(name)
#endif
