#include "pll/config.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "control/polynomial.hpp"

namespace pllbist::pll {

void PllConfig::validate() const {
  if (ref_frequency_hz <= 0.0) throw std::invalid_argument("PllConfig: ref frequency must be positive");
  if (divider_n < 1) throw std::invalid_argument("PllConfig: divider N must be >= 1");
  if (ref_divider_r < 1) throw std::invalid_argument("PllConfig: reference divider R must be >= 1");
  pump.validate();
  vco.validate();
  pfd.validate();
}

double PllConfig::kpdVPerRad() const {
  if (pump.kind == PumpKind::Voltage4046) return (pump.vdd_v - pump.vss_v) / (4.0 * kPi);
  throw std::domain_error("PllConfig::kpdVPerRad: current pump gain is Ip/(2*pi) A/rad, not V/rad");
}

double PllConfig::koRadPerSecPerV() const { return kTwoPi * vco.gain_hz_per_v; }

control::LoopParameters PllConfig::linearized() const {
  validate();
  if (pump.kind != PumpKind::Voltage4046)
    throw std::domain_error("PllConfig::linearized: eqn (3) lag-lead model requires Voltage4046 pump");
  control::LoopParameters lp;
  lp.kpd_v_per_rad = kpdVPerRad();
  lp.kvco_rad_per_s_per_v = koRadPerSecPerV();
  lp.divider_n = static_cast<double>(divider_n);
  lp.r1_ohm = pump.r1_ohm;
  lp.r2_ohm = pump.r2_ohm;
  lp.c_farad = pump.c_farad;
  return lp;
}

control::TransferFunction PllConfig::closedLoopDividedTf() const {
  validate();
  if (pump.kind == PumpKind::Voltage4046) return control::closedLoopDividedTf(linearized());

  // Current pump with series R2 + C impedance: type-2 loop.
  //   Kd = Ip/(2*pi) [A/rad], Z(s) = (1 + s*R2*C)/(s*C),
  //   closed (divided) = Kd*Ko*(1+s*R2*C) / (N*C*s^2 + Kd*Ko*R2*C*s + Kd*Ko).
  const double kd = pump.pump_current_a / kTwoPi;
  const double k = kd * koRadPerSecPerV();
  const double t2 = pump.r2_ohm * pump.c_farad;
  const double nc = static_cast<double>(divider_n) * pump.c_farad;
  return {control::Polynomial({k, k * t2}), control::Polynomial({k, k * t2, nc})};
}

control::TransferFunction PllConfig::capacitorNodeTf() const {
  if (pump.kind == PumpKind::Voltage4046) return control::capacitorNodeTf(linearized());
  const double kd = pump.pump_current_a / kTwoPi;
  const double k = kd * koRadPerSecPerV();
  const double t2 = pump.r2_ohm * pump.c_farad;
  const double nc = static_cast<double>(divider_n) * pump.c_farad;
  return {control::Polynomial({k}), control::Polynomial({k, k * t2, nc})};
}

control::SecondOrderParams PllConfig::secondOrder() const {
  if (pump.kind == PumpKind::Voltage4046) return control::exactSecondOrder(linearized());
  const double kd = pump.pump_current_a / kTwoPi;
  const double k = kd * koRadPerSecPerV();
  const double wn = std::sqrt(k / (static_cast<double>(divider_n) * pump.c_farad));
  return {wn, wn * pump.r2_ohm * pump.c_farad / 2.0};
}

PllConfig referenceConfig() {
  PllConfig cfg;
  cfg.ref_frequency_hz = 1000.0;
  cfg.divider_n = 50;

  cfg.pump.kind = PumpKind::Voltage4046;
  cfg.pump.vdd_v = 5.0;
  cfg.pump.vss_v = 0.0;
  cfg.pump.c_farad = 470e-9;
  cfg.pump.initial_vc_v = 2.5;

  cfg.vco.center_frequency_hz = cfg.nominalVcoHz();  // 50 kHz at mid-rail
  cfg.vco.gain_hz_per_v = 38.3e3;
  cfg.vco.v_center_v = 2.5;
  cfg.vco.min_frequency_hz = 5e3;
  cfg.vco.max_frequency_hz = 100e3;

  // Solve R1/R2 so the exact closed-loop response lands on the paper's
  // measured anchors fn = 8 Hz, zeta = 0.43.
  control::LoopParameters base;
  base.kpd_v_per_rad = (cfg.pump.vdd_v - cfg.pump.vss_v) / (4.0 * kPi);
  base.kvco_rad_per_s_per_v = kTwoPi * cfg.vco.gain_hz_per_v;
  base.divider_n = static_cast<double>(cfg.divider_n);
  base.c_farad = cfg.pump.c_farad;
  const control::LoopParameters solved =
      control::designForResponse(base, hzToRadPerSec(8.0), 0.43);
  cfg.pump.r1_ohm = solved.r1_ohm;
  cfg.pump.r2_ohm = solved.r2_ohm;

  cfg.validate();
  return cfg;
}

ReferenceStimulus referenceStimulus() { return ReferenceStimulus{}; }

PllConfig scaledCurrentPumpConfig(double fn_hz, double zeta, double pump_current_a) {
  if (fn_hz <= 0.0 || zeta <= 0.0)
    throw std::invalid_argument("scaledCurrentPumpConfig: fn and zeta must be positive");
  PllConfig cfg;
  cfg.ref_frequency_hz = 10e3;
  cfg.divider_n = 10;

  cfg.pump.kind = PumpKind::CurrentSteering;
  cfg.pump.vdd_v = 5.0;
  cfg.pump.vss_v = 0.0;
  cfg.pump.pump_current_a = pump_current_a;
  cfg.pump.r1_ohm = 1.0;  // unused by the current pump; must be positive
  cfg.pump.initial_vc_v = 2.5;

  cfg.vco.center_frequency_hz = cfg.nominalVcoHz();
  cfg.vco.gain_hz_per_v = 50e3;
  cfg.vco.v_center_v = 2.5;
  cfg.vco.min_frequency_hz = 10e3;
  cfg.vco.max_frequency_hz = 200e3;

  // wn^2 = Kd*Ko/(N*C) with Kd = Ip/(2*pi), Ko = 2*pi*Kv  =>  C from wn;
  // zeta = wn*R2*C/2  =>  R2 from zeta.
  const double wn = hzToRadPerSec(fn_hz);
  const double kd_ko = pump_current_a * cfg.vco.gain_hz_per_v;
  cfg.pump.c_farad = kd_ko / (static_cast<double>(cfg.divider_n) * wn * wn);
  cfg.pump.r2_ohm = 2.0 * zeta / (wn * cfg.pump.c_farad);
  cfg.validate();
  return cfg;
}

PllConfig scaledTestConfig(double fn_hz, double zeta) {
  PllConfig cfg;
  cfg.ref_frequency_hz = 10e3;
  cfg.divider_n = 10;

  cfg.pump.kind = PumpKind::Voltage4046;
  cfg.pump.vdd_v = 5.0;
  cfg.pump.vss_v = 0.0;
  cfg.pump.c_farad = 100e-9;
  cfg.pump.initial_vc_v = 2.5;

  cfg.vco.center_frequency_hz = cfg.nominalVcoHz();
  cfg.vco.gain_hz_per_v = 50e3;
  cfg.vco.v_center_v = 2.5;
  cfg.vco.min_frequency_hz = 10e3;
  cfg.vco.max_frequency_hz = 200e3;

  control::LoopParameters base;
  base.kpd_v_per_rad = (cfg.pump.vdd_v - cfg.pump.vss_v) / (4.0 * kPi);
  base.kvco_rad_per_s_per_v = kTwoPi * cfg.vco.gain_hz_per_v;
  base.divider_n = static_cast<double>(cfg.divider_n);
  base.c_farad = cfg.pump.c_farad;
  const control::LoopParameters solved =
      control::designForResponse(base, hzToRadPerSec(fn_hz), zeta);
  cfg.pump.r1_ohm = solved.r1_ohm;
  cfg.pump.r2_ohm = solved.r2_ohm;
  cfg.validate();
  return cfg;
}

}  // namespace pllbist::pll
