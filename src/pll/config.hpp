#pragma once

#include "control/cppll_model.hpp"
#include "control/transfer_function.hpp"
#include "pll/pfd.hpp"
#include "pll/pump_filter.hpp"
#include "pll/vco.hpp"

namespace pllbist::pll {

/// Full electrical description of a CP-PLL under test.
struct PllConfig {
  double ref_frequency_hz = 1000.0;  ///< nominal reference at the PFD
  int divider_n = 50;                ///< feedback division ratio
  /// Reference divider R on the *external* input path (Figure 6 includes
  /// reference dividers in the FPGA). The normal-mode input runs at
  /// R * ref_frequency_hz; the BIST stimulus drives the PFD rate directly.
  int ref_divider_r = 1;
  PumpFilterConfig pump;
  VcoConfig vco;
  PfdDelays pfd;

  void validate() const;

  /// Linearised phase-detector gain in V/rad. For the 4046-style tri-state
  /// voltage output about a mid-rail operating point this is Vdd/(4*pi) —
  /// the paper's 0.4 V/rad at Vdd = 5 V.
  [[nodiscard]] double kpdVPerRad() const;

  /// VCO gain in rad/s per volt (Ko).
  [[nodiscard]] double koRadPerSecPerV() const;

  /// Linearised loop parameters (only meaningful for PumpKind::Voltage4046,
  /// whose filter matches eqn (3); throws std::domain_error otherwise).
  [[nodiscard]] control::LoopParameters linearized() const;

  /// Closed-loop phase transfer function at the divided output (unity DC
  /// gain), for either pump kind.
  [[nodiscard]] control::TransferFunction closedLoopDividedTf() const;

  /// The response the peak-detect-and-hold BIST physically captures: the
  /// capacitor-node transfer (closed loop with the filter zero divided
  /// out). See control::capacitorNodeTf for the derivation.
  [[nodiscard]] control::TransferFunction capacitorNodeTf() const;

  /// Exact second-order natural frequency / damping for either pump kind.
  [[nodiscard]] control::SecondOrderParams secondOrder() const;

  /// Nominal VCO frequency implied by the loop: N * fref.
  [[nodiscard]] double nominalVcoHz() const { return ref_frequency_hz * divider_n; }
};

/// The paper's Table 3 test set-up, reconstructed. The scanned table is
/// OCR-damaged, so the constants are re-derived from the quantities the
/// paper states unambiguously:
///   - Vdd = 5 V => Kpd = Vdd/(4*pi) = 0.398 V/rad ("0.4 V/rad")
///   - Kv = 38.3 kHz/V (= 0.241 Mrad/s/V)
///   - reference 1 kHz, N = 50, C = 470 nF, 1 MHz DCO master clock,
///     +/-10 Hz maximum reference deviation, 10 discrete FM steps
///   - R1, R2 solved (designForResponse) so that fn = 8 Hz and zeta = 0.43
///     exactly match the measured anchors of Figures 11/12.
PllConfig referenceConfig();

/// A PLL that behaves like the reference device but scaled so that closed-
/// loop simulations run two orders of magnitude faster: fref = 10 kHz,
/// N = 10 (VCO 100 kHz), natural frequency and damping as requested.
/// Intended for tests, demos and quick experiments; the BIST logic is
/// scale-free. Throws std::domain_error for unreachable damping targets.
PllConfig scaledTestConfig(double fn_hz = 200.0, double zeta = 0.43);

/// The same fast-simulating device built around a classic current-steering
/// charge pump (type-2 loop: Ip into R2 + C). Component values are solved
/// from the requested response: C from wn, R2 from zeta.
PllConfig scaledCurrentPumpConfig(double fn_hz = 200.0, double zeta = 0.43,
                                  double pump_current_a = 100e-6);

/// Stimulus parameters that accompany referenceConfig() (Table 3 rows that
/// describe the test rather than the PLL).
struct ReferenceStimulus {
  double master_clock_hz = 1e6;     ///< DCO / test clock reference
  double max_deviation_hz = 10.0;   ///< peak reference-frequency deviation
  int fm_steps = 10;                ///< discrete FM steps per modulation period
};
ReferenceStimulus referenceStimulus();

}  // namespace pllbist::pll
