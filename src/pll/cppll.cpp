#include "pll/cppll.hpp"

namespace pllbist::pll {

namespace {
constexpr double kMuxDelay = 1e-9;
}

CpPll::CpPll(sim::Circuit& c, sim::SignalId external_ref, sim::SignalId test_stimulus,
             const PllConfig& cfg, const std::string& prefix)
    : circuit_(c), cfg_(cfg) {
  cfg_.validate();

  test_mode_sel_ = c.addSignal(prefix + ".test_mode");
  hold_sel_ = c.addSignal(prefix + ".hold");
  pllref_ = c.addSignal(prefix + ".pllref");
  pfd_fb_in_ = c.addSignal(prefix + ".pfd_fb_in");
  vco_out_ = c.addSignal(prefix + ".vco_out");
  pllfb_ = c.addSignal(prefix + ".pllfb");

  // Reference divider on the normal (external) input path only; the test
  // stimulus already runs at the PFD rate.
  divided_ext_ref_ = c.addSignal(prefix + ".ext_div");
  ref_divider_ = std::make_unique<sim::DivideByN>(c, external_ref, divided_ext_ref_,
                                                  cfg_.ref_divider_r, kMuxDelay);
  input_mux_ = std::make_unique<sim::Mux2>(c, divided_ext_ref_, test_stimulus, test_mode_sel_,
                                           pllref_, kMuxDelay);
  pfd_ = std::make_unique<Pfd>(c, pllref_, pfd_fb_in_, cfg_.pfd, prefix + ".pfd");
  filter_ = std::make_unique<PumpFilter>(c, pfd_->up(), pfd_->dn(), cfg_.pump);
  vco_ = std::make_unique<Vco>(c, *filter_, vco_out_, cfg_.vco, c.now());
  divider_ = std::make_unique<sim::DivideByN>(c, vco_out_, pllfb_, cfg_.divider_n, kMuxDelay);
  // M2: feedback path into the PFD; selecting PLLREF for both inputs holds
  // the loop. Both PFD inputs then share the same mux-delay budget.
  hold_mux_ = std::make_unique<sim::Mux2>(c, pllfb_, pllref_, hold_sel_, pfd_fb_in_, kMuxDelay);
}

void CpPll::setTestMode(bool enabled) { circuit_.setNow(test_mode_sel_, enabled); }

void CpPll::setHold(bool enabled) { circuit_.setNow(hold_sel_, enabled); }

bool CpPll::holdAsserted() const { return circuit_.value(hold_sel_); }

double CpPll::controlVoltageNow() { return filter_->controlVoltage(circuit_.now()); }

double CpPll::vcoFrequencyNowHz() {
  return cfg_.vco.frequencyAt(filter_->controlVoltage(circuit_.now()));
}

}  // namespace pllbist::pll
