#pragma once

#include <memory>
#include <string>

#include "pll/config.hpp"
#include "pll/pfd.hpp"
#include "pll/pump_filter.hpp"
#include "pll/vco.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {

/// Assembled charge-pump PLL with the two test multiplexers of the paper's
/// Figure 6 built in:
///
///   M1 (input mux):  PLLREF := test_mode ? test_stimulus : external_ref
///   M2 (hold mux):   PFD feedback input := hold ? PLLREF : PLLFB
///
/// Asserting hold feeds the identical signal to both PFD inputs; the
/// tri-state pump then only sees dead-zone glitches and the VCO frequency
/// freezes at its current value (section 4, observation (3)) — the
/// mechanism the BIST uses to park the output at its peak for unhurried
/// frequency counting.
///
/// The instance owns the sub-blocks but not the Circuit; signals it creates
/// are visible to other components (the BIST monitor PFD taps ref()/
/// feedback() exactly like the FPGA did).
class CpPll {
 public:
  CpPll(sim::Circuit& c, sim::SignalId external_ref, sim::SignalId test_stimulus,
        const PllConfig& cfg, const std::string& prefix = "pll");

  CpPll(const CpPll&) = delete;
  CpPll& operator=(const CpPll&) = delete;

  /// PLLREF: the reference as seen by the in-loop PFD (post-M1).
  [[nodiscard]] sim::SignalId ref() const { return pllref_; }
  /// PLLFB: the divided VCO output (pre-M2).
  [[nodiscard]] sim::SignalId feedback() const { return pllfb_; }
  [[nodiscard]] sim::SignalId vcoOut() const { return vco_out_; }
  [[nodiscard]] sim::SignalId pfdUp() const { return pfd_->up(); }
  [[nodiscard]] sim::SignalId pfdDn() const { return pfd_->dn(); }

  /// Drive the M1/M2 selects (take effect immediately at circuit time).
  void setTestMode(bool enabled);
  void setHold(bool enabled);
  [[nodiscard]] bool holdAsserted() const;

  /// Ground-truth probes for verification and tracing; the BIST never calls
  /// these. Both advance the analog state to the circuit's current time.
  double controlVoltageNow();
  double vcoFrequencyNowHz();

  [[nodiscard]] const PllConfig& config() const { return cfg_; }
  [[nodiscard]] PumpFilter& filter() { return *filter_; }
  [[nodiscard]] Vco& vco() { return *vco_; }

 private:
  sim::Circuit& circuit_;
  PllConfig cfg_;

  sim::SignalId test_mode_sel_;
  sim::SignalId hold_sel_;
  sim::SignalId divided_ext_ref_ = sim::kNoSignal;
  sim::SignalId pllref_;
  sim::SignalId pfd_fb_in_;
  sim::SignalId vco_out_;
  sim::SignalId pllfb_;

  std::unique_ptr<sim::DivideByN> ref_divider_;
  std::unique_ptr<sim::Mux2> input_mux_;
  std::unique_ptr<sim::Mux2> hold_mux_;
  std::unique_ptr<Pfd> pfd_;
  std::unique_ptr<PumpFilter> filter_;
  std::unique_ptr<Vco> vco_;
  std::unique_ptr<sim::DivideByN> divider_;
};

}  // namespace pllbist::pll
