#include "pll/faults.hpp"

#include <cmath>
#include <stdexcept>

namespace pllbist::pll {

std::string to_string(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::None: return "none";
    case FaultSpec::Kind::VcoGainDrift: return "vco-gain-drift";
    case FaultSpec::Kind::VcoCenterDrift: return "vco-center-drift";
    case FaultSpec::Kind::PumpUpWeak: return "pump-up-weak";
    case FaultSpec::Kind::PumpDownWeak: return "pump-down-weak";
    case FaultSpec::Kind::FilterR2Drift: return "filter-r2-drift";
    case FaultSpec::Kind::FilterCDrift: return "filter-c-drift";
    case FaultSpec::Kind::FilterLeak: return "filter-leak";
    case FaultSpec::Kind::PfdDeadZone: return "pfd-dead-zone";
    case FaultSpec::Kind::DividerWrongN: return "divider-wrong-n";
  }
  return "unknown";
}

std::string FaultSpec::describe() const {
  if (kind == Kind::None) return "none";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s x%g", to_string(kind).c_str(), magnitude);
  return buf;
}

PllConfig applyFault(const PllConfig& golden, const FaultSpec& fault) {
  PllConfig cfg = golden;
  const double m = fault.magnitude;
  auto requirePositiveScale = [&] {
    if (m <= 0.0) throw std::invalid_argument("applyFault: scale magnitude must be positive");
  };
  switch (fault.kind) {
    case FaultSpec::Kind::None:
      break;
    case FaultSpec::Kind::VcoGainDrift:
      requirePositiveScale();
      cfg.vco.gain_hz_per_v *= m;
      break;
    case FaultSpec::Kind::VcoCenterDrift:
      requirePositiveScale();
      cfg.vco.center_frequency_hz *= m;
      break;
    case FaultSpec::Kind::PumpUpWeak:
      requirePositiveScale();
      cfg.pump.up_strength *= m;
      break;
    case FaultSpec::Kind::PumpDownWeak:
      requirePositiveScale();
      cfg.pump.down_strength *= m;
      break;
    case FaultSpec::Kind::FilterR2Drift:
      requirePositiveScale();
      cfg.pump.r2_ohm *= m;
      break;
    case FaultSpec::Kind::FilterCDrift:
      requirePositiveScale();
      cfg.pump.c_farad *= m;
      break;
    case FaultSpec::Kind::FilterLeak:
      if (m <= 0.0) throw std::invalid_argument("applyFault: leak resistance must be positive");
      cfg.pump.leak_ohm = m;
      break;
    case FaultSpec::Kind::PfdDeadZone:
      requirePositiveScale();
      cfg.pfd.ff_clk_to_q_s *= m;
      cfg.pfd.and_delay_s *= m;
      cfg.pfd.ff_reset_to_q_s *= m;
      break;
    case FaultSpec::Kind::DividerWrongN: {
      // A stuck counter bit or decode defect: the divider wraps at the
      // wrong count. The loop locks the *divided* output to the reference,
      // so the VCO runs at the wrong absolute frequency.
      const int n = static_cast<int>(m);
      if (n < 1 || std::abs(m - n) > 1e-9)
        throw std::invalid_argument("applyFault: DividerWrongN magnitude must be a positive integer");
      cfg.divider_n = n;
      break;
    }
  }
  cfg.validate();
  return cfg;
}

std::vector<FaultSpec> standardFaultSet() {
  using K = FaultSpec::Kind;
  return {
      {K::VcoGainDrift, 0.5},   {K::VcoGainDrift, 2.0},  {K::FilterCDrift, 0.5},
      {K::FilterCDrift, 2.0},   {K::FilterR2Drift, 0.3}, {K::FilterR2Drift, 3.0},
      {K::PumpUpWeak, 0.4},     {K::PumpDownWeak, 0.4},
  };
}

}  // namespace pllbist::pll
