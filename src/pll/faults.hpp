#pragma once

#include <string>
#include <vector>

#include "pll/config.hpp"

namespace pllbist::pll {

/// Parametric fault classes relevant to embedded CP-PLLs (the defect
/// universe motivating the paper's DfT: section 1 and reference [1]).
/// `magnitude` is interpreted per-kind as documented below.
struct FaultSpec {
  enum class Kind {
    None,          ///< golden device (magnitude ignored)
    VcoGainDrift,  ///< Kv scaled by magnitude (e.g. 0.5 = half gain)
    VcoCenterDrift,///< VCO center frequency scaled by magnitude
    PumpUpWeak,    ///< up drive strength scaled by magnitude (< 1)
    PumpDownWeak,  ///< down drive strength scaled by magnitude (< 1)
    FilterR2Drift, ///< R2 scaled by magnitude (damping fault)
    FilterCDrift,  ///< C scaled by magnitude (bandwidth fault)
    FilterLeak,    ///< leak resistance set to magnitude ohms
    PfdDeadZone,   ///< all PFD delays scaled by magnitude (> 1 widens glitches)
    DividerWrongN, ///< catastrophic: feedback divider counts magnitude instead of N
  };

  Kind kind = Kind::None;
  double magnitude = 1.0;

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] std::string to_string(FaultSpec::Kind kind);

/// Apply a fault to a configuration, returning the mutated copy. Throws
/// std::invalid_argument for nonsensical magnitudes (e.g. negative scale).
[[nodiscard]] PllConfig applyFault(const PllConfig& golden, const FaultSpec& fault);

/// A representative fault list for coverage experiments: each entry shifts
/// the closed-loop response (fn, zeta, peaking or hold droop) enough that a
/// transfer-function signature test should flag it.
[[nodiscard]] std::vector<FaultSpec> standardFaultSet();

}  // namespace pllbist::pll
