#include "pll/pfd.hpp"

#include <stdexcept>

namespace pllbist::pll {

void PfdDelays::validate() const {
  if (ff_clk_to_q_s <= 0.0 || and_delay_s <= 0.0 || ff_reset_to_q_s <= 0.0)
    throw std::invalid_argument("PfdDelays: all delays must be positive");
}

namespace {
const PfdDelays& validated(const PfdDelays& d) {
  d.validate();
  return d;
}
}  // namespace

Pfd::Pfd(sim::Circuit& c, sim::SignalId ref, sim::SignalId fb, const PfdDelays& delays,
         const std::string& prefix)
    : up_(c.addSignal(prefix + ".up")),
      dn_(c.addSignal(prefix + ".dn")),
      rst_(c.addSignal(prefix + ".rst")),
      tied_high_(c.addSignal(prefix + ".high", true)),
      ff_up_(c, ref, tied_high_, up_, validated(delays).ff_clk_to_q_s, rst_, delays.ff_reset_to_q_s),
      ff_dn_(c, fb, tied_high_, dn_, delays.ff_clk_to_q_s, rst_, delays.ff_reset_to_q_s),
      reset_and_(c, up_, dn_, rst_, delays.and_delay_s) {}

}  // namespace pllbist::pll
