#pragma once

#include <string>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {

/// Gate delays of the PFD's internal elements. The dead-zone glitch width is
/// approximately and_delay + ff_reset_to_q: when the loop is phase-aligned,
/// both outputs pulse high for that long every reference cycle (the paper's
/// Figure 5 "coincident dead zone pulses"). The peak-detect circuitry is
/// clocked from exactly these glitches, so they are modelled structurally
/// rather than abstracted away.
struct PfdDelays {
  double ff_clk_to_q_s = 4e-9;
  double and_delay_s = 3e-9;
  double ff_reset_to_q_s = 4e-9;

  [[nodiscard]] double glitchWidth() const { return and_delay_s + ff_reset_to_q_s; }
  void validate() const;
};

/// Tri-state phase-frequency detector built structurally from two D
/// flip-flops (D tied high) and a reset AND gate — the textbook topology of
/// the paper's Figure 5 discussion:
///
///   REF rising -> UP := 1;  FB rising -> DN := 1;  UP && DN -> reset both.
///
/// When REF leads, UP pulses with width ~= the phase error (plus the glitch
/// tail on DN); when FB leads, DN pulses; when aligned, both emit dead-zone
/// glitches. Works as both the in-loop detector and the monitor-only
/// detector of the BIST response capture (Figure 7).
class Pfd : public sim::Component {
 public:
  Pfd(sim::Circuit& c, sim::SignalId ref, sim::SignalId fb, const PfdDelays& delays,
      const std::string& name_prefix = "pfd");

  [[nodiscard]] sim::SignalId up() const { return up_; }
  [[nodiscard]] sim::SignalId dn() const { return dn_; }
  /// The internal reset net (= UP AND DN delayed); the BIST uses its rising
  /// edge as the glitch-derived sampling clock.
  [[nodiscard]] sim::SignalId resetNet() const { return rst_; }

 private:
  sim::SignalId up_;
  sim::SignalId dn_;
  sim::SignalId rst_;
  sim::SignalId tied_high_;
  // Construction order matters: members initialise top-down and register
  // their callbacks in the circuit.
  sim::DFlipFlop ff_up_;
  sim::DFlipFlop ff_dn_;
  sim::AndGate reset_and_;
};

}  // namespace pllbist::pll
