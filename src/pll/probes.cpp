#include "pll/probes.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::pll {

AnalogProbe::AnalogProbe(sim::Circuit& c, std::function<double()> getter, sim::Trace& trace,
                         double interval_s, double start_time_s)
    : circuit_(c), getter_(std::move(getter)), trace_(trace), interval_(interval_s) {
  if (interval_s <= 0.0) throw std::invalid_argument("AnalogProbe: interval must be positive");
  restart(start_time_s);
}

void AnalogProbe::setInterval(double interval_s) {
  if (interval_s <= 0.0) throw std::invalid_argument("AnalogProbe: interval must be positive");
  interval_ = interval_s;
}

void AnalogProbe::restart(double start_time_s) {
  PLLBIST_ASSERT(start_time_s >= circuit_.now());
  const unsigned generation = ++generation_;
  circuit_.scheduleCallback(start_time_s,
                            [this, generation](double now) { sample(now, generation); });
}

void AnalogProbe::sample(double now, unsigned generation) {
  if (generation != generation_) return;
  trace_.append(now, getter_());
  circuit_.scheduleCallback(now + interval_,
                            [this, generation](double t) { sample(t, generation); });
}

LockDetector::LockDetector(sim::Circuit& c, sim::SignalId up, sim::SignalId dn,
                           double width_threshold_s, int required_cycles)
    : threshold_(width_threshold_s), required_(required_cycles) {
  if (width_threshold_s <= 0.0) throw std::invalid_argument("LockDetector: threshold must be positive");
  if (required_cycles < 1) throw std::invalid_argument("LockDetector: required cycles must be >= 1");
  c.onChange(up, [this](double now, bool v) {
    if (v)
      up_rise_ = now;
    else if (up_rise_ >= 0.0)
      pulseFinished(now, now - up_rise_);
  });
  c.onChange(dn, [this](double now, bool v) {
    if (v)
      dn_rise_ = now;
    else if (dn_rise_ >= 0.0)
      pulseFinished(now, now - dn_rise_);
  });
}

void LockDetector::pulseFinished(double now, double width) {
  if (width <= threshold_) {
    if (consecutive_ok_ < required_) {
      ++consecutive_ok_;
      if (consecutive_ok_ == required_) lock_time_ = now;
    }
  } else {
    consecutive_ok_ = 0;
  }
}

}  // namespace pllbist::pll
