#pragma once

#include <functional>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"
#include "sim/trace.hpp"

namespace pllbist::pll {

/// Samples an arbitrary analog quantity (control voltage, ground-truth VCO
/// frequency, ...) into a Trace at a fixed interval. Verification-side
/// instrumentation — the BIST hardware has no such access.
class AnalogProbe : public sim::Component {
 public:
  AnalogProbe(sim::Circuit& c, std::function<double()> getter, sim::Trace& trace,
              double interval_s, double start_time_s = 0.0);
  void stop() { ++generation_; }

  /// Resume sampling from `start_time_s` (>= now). Safe after stop(); any
  /// previously pending sample chain is invalidated.
  void restart(double start_time_s);

  /// Change the sampling interval (effective from the next restart()).
  void setInterval(double interval_s);

  /// NOTE: the probe registers scheduled callbacks in the circuit; it must
  /// outlive any further circuit activity (stop() does not unregister the
  /// pending event, it only neutralises it).

 private:
  void sample(double now, unsigned generation);
  sim::Circuit& circuit_;
  std::function<double()> getter_;
  sim::Trace& trace_;
  double interval_;
  unsigned generation_ = 0;
};

/// Declares the loop locked once both PFD outputs have produced only pulses
/// shorter than `width_threshold_s` for `required_cycles` consecutive
/// reference cycles. Mirrors the lock-detect circuits shipped alongside
/// real CP-PLLs (and the paper's assumption "the PLL is initially locked").
class LockDetector : public sim::Component {
 public:
  LockDetector(sim::Circuit& c, sim::SignalId up, sim::SignalId dn, double width_threshold_s,
               int required_cycles = 8);

  [[nodiscard]] bool isLocked() const { return consecutive_ok_ >= required_; }
  /// Time at which lock was (most recently) achieved; meaningless unless
  /// isLocked().
  [[nodiscard]] double lockTime() const { return lock_time_; }
  void reset() { consecutive_ok_ = 0; }

 private:
  void pulseFinished(double now, double width);
  double threshold_;
  int required_;
  int consecutive_ok_ = 0;
  double lock_time_ = 0.0;
  double up_rise_ = -1.0;
  double dn_rise_ = -1.0;
};

}  // namespace pllbist::pll
