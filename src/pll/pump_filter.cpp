#include "pll/pump_filter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::pll {

void PumpFilterConfig::validate() const {
  if (vdd_v <= vss_v) throw std::invalid_argument("PumpFilterConfig: vdd must exceed vss");
  if (r2_ohm <= 0.0 || c_farad <= 0.0)
    throw std::invalid_argument("PumpFilterConfig: R2 and C must be positive");
  if (kind == PumpKind::Voltage4046 && r1_ohm <= 0.0)
    throw std::invalid_argument("PumpFilterConfig: R1 must be positive for Voltage4046");
  if (kind == PumpKind::CurrentSteering && pump_current_a <= 0.0)
    throw std::invalid_argument("PumpFilterConfig: pump current must be positive");
  if (up_strength < 0.0 || down_strength < 0.0)
    throw std::invalid_argument("PumpFilterConfig: drive strengths must be non-negative");
  if (leak_ohm <= 0.0) throw std::invalid_argument("PumpFilterConfig: leak resistance must be positive");
  if (initial_vc_v < vss_v || initial_vc_v > vdd_v)
    throw std::invalid_argument("PumpFilterConfig: initial vc outside rails");
}

PumpFilter::PumpFilter(sim::Circuit& c, sim::SignalId up, sim::SignalId dn,
                       const PumpFilterConfig& cfg)
    : circuit_(c), cfg_(cfg), vc_(cfg.initial_vc_v), last_t_(c.now()) {
  cfg_.validate();
  up_active_ = c.value(up);
  dn_active_ = c.value(dn);
  recomputeRegime();
  c.onChange(up, [this](double now, bool v) {
    advanceTo(now);
    up_active_ = v;
    recomputeRegime();
    for (auto& cb : drive_listeners_) cb(now);
  });
  c.onChange(dn, [this](double now, bool v) {
    advanceTo(now);
    dn_active_ = v;
    recomputeRegime();
    for (auto& cb : drive_listeners_) cb(now);
  });
}

void PumpFilter::recomputeRegime() {
  const double g2 = 1.0 / cfg_.r2_ohm;
  const double gl = std::isinf(cfg_.leak_ohm) ? 0.0 : 1.0 / cfg_.leak_ohm;

  if (cfg_.kind == PumpKind::Voltage4046) {
    // Drive conductance towards Vs through R1; both-on (dead-zone overlap)
    // is modelled as high-Z, matching the break-before-make tri-stater.
    double g1 = 0.0;
    double vs = 0.0;
    if (up_active_ && !dn_active_) {
      g1 = cfg_.up_strength / cfg_.r1_ohm;
      vs = cfg_.vdd_v;
    } else if (dn_active_ && !up_active_) {
      g1 = cfg_.down_strength / cfg_.r1_ohm;
      vs = cfg_.vss_v;
    }
    const double geff = g1 + gl;
    if (geff <= 0.0) {
      regime_ = Regime::Hold;
      out_a_ = 0.0;
      out_b_ = 1.0;  // vy = vc when no current can flow
      return;
    }
    regime_ = Regime::Exponential;
    asym_v_ = (g1 * vs + gl * cfg_.vss_v) / geff;
    tau_s_ = cfg_.c_farad * (g1 + g2 + gl) / (g2 * geff);
    // Node equation: vy = (g1*Vs + gl*Vss + g2*vc) / (g1 + g2 + gl).
    out_a_ = (g1 * vs + gl * cfg_.vss_v) / (g1 + g2 + gl);
    out_b_ = g2 / (g1 + g2 + gl);
    return;
  }

  // CurrentSteering: net injected current; both-on leaves the up/down
  // mismatch residue flowing (the classical CP mismatch error mechanism).
  double current = 0.0;
  if (up_active_) current += cfg_.pump_current_a * cfg_.up_strength;
  if (dn_active_) current -= cfg_.pump_current_a * cfg_.down_strength;

  if (gl <= 0.0) {
    if (current == 0.0) {
      regime_ = Regime::Hold;
      out_a_ = 0.0;
      out_b_ = 1.0;
    } else {
      regime_ = Regime::Ramp;
      slope_vps_ = current / cfg_.c_farad;
      out_a_ = current * cfg_.r2_ohm;  // vy = vc + I*R2
      out_b_ = 1.0;
    }
    return;
  }
  // With leakage the node sees I and gl to VSS: exponential towards
  // A = I/gl + Vss with tau = C*(g2+gl)/(g2*gl).
  regime_ = Regime::Exponential;
  asym_v_ = current / gl + cfg_.vss_v;
  tau_s_ = cfg_.c_farad * (g2 + gl) / (g2 * gl);
  out_a_ = (current + gl * cfg_.vss_v) / (g2 + gl);
  out_b_ = g2 / (g2 + gl);
}

void PumpFilter::advanceTo(double t) {
  PLLBIST_ASSERT(t >= last_t_);
  const double dt = t - last_t_;
  if (dt == 0.0) return;
  switch (regime_) {
    case Regime::Hold:
      break;
    case Regime::Exponential:
      vc_ = asym_v_ + (vc_ - asym_v_) * std::exp(-dt / tau_s_);
      break;
    case Regime::Ramp:
      vc_ += slope_vps_ * dt;
      break;
  }
  // Supply-rail compliance: the passive node cannot leave [vss, vdd].
  vc_ = std::clamp(vc_, cfg_.vss_v, cfg_.vdd_v);
  last_t_ = t;
}

double PumpFilter::outputVoltageNow() const {
  return std::clamp(out_a_ + out_b_ * vc_, cfg_.vss_v, cfg_.vdd_v);
}

double PumpFilter::controlVoltage(double t) {
  advanceTo(t);
  return outputVoltageNow();
}

double PumpFilter::capVoltage(double t) {
  advanceTo(t);
  return vc_;
}

}  // namespace pllbist::pll
