#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {

/// Which phase-detector output stage drives the loop filter.
enum class PumpKind {
  /// 74HC(T)4046 PC2-style tri-state *voltage* output: drives the filter
  /// through series resistor R1 towards VDD (up) or VSS (down), high-Z when
  /// idle. This is the configuration of the paper's Figure 9 and eqn (3).
  Voltage4046,
  /// Classic charge pump: switched current sources +/-Ip straight into the
  /// filter node (R2 + C to ground), high-Z when idle. Gives the type-2
  /// loop found in integrated CP-PLLs.
  CurrentSteering,
};

/// Electrical configuration of the pump + passive loop filter.
struct PumpFilterConfig {
  PumpKind kind = PumpKind::Voltage4046;
  double vdd_v = 5.0;
  double vss_v = 0.0;
  double pump_current_a = 100e-6;  ///< |Ip| (CurrentSteering only)
  double r1_ohm = 1e6;             ///< series resistor (Voltage4046 only)
  double r2_ohm = 100e3;           ///< zero-setting resistor
  double c_farad = 47e-9;          ///< filter capacitor
  double initial_vc_v = 2.5;       ///< capacitor voltage at t = 0

  // Fault-injection knobs (1.0 / infinity = fault-free).
  double up_strength = 1.0;    ///< scales up-drive conductance / current
  double down_strength = 1.0;  ///< scales down-drive conductance / current
  double leak_ohm = std::numeric_limits<double>::infinity();  ///< node->VSS leak

  void validate() const;
};

/// Pump output stage plus lag-lead loop filter with *exact* analytic state
/// integration.
///
/// Between UP/DN transitions the drive is constant, so the single filter
/// state (capacitor voltage) evolves as either a pure exponential, a linear
/// ramp (ideal current pump), or a hold; the class advances the state lazily
/// in closed form whenever the drive changes or a voltage is queried. There
/// is no timestep and no integration error — crucial because the BIST
/// magnitude measurement resolves sub-percent frequency deviations.
class PumpFilter : public sim::Component {
 public:
  /// up/dn are the PFD outputs inside `c`. The filter subscribes to both.
  PumpFilter(sim::Circuit& c, sim::SignalId up, sim::SignalId dn, const PumpFilterConfig& cfg);

  /// Control-node voltage (the VCO input, node Y of Figure 9) at time t.
  /// t must be >= the last query/drive-change time.
  double controlVoltage(double t);

  /// Capacitor voltage (the filter state) at time t.
  double capVoltage(double t);

  /// True when neither output device is on (pump high-Z). With matched
  /// inputs the PFD emits only dead-zone glitches, so the filter holds —
  /// the paper's "loop hold" measurement trick (section 4, point 3).
  [[nodiscard]] bool isHighZ() const { return !up_active_ && !dn_active_; }

  /// Notify `cb(now)` whenever the drive state (and hence the output-node
  /// voltage, discontinuously) changes. The VCO subscribes so its phase
  /// accumulator re-integrates across every pump pulse — even ones much
  /// narrower than a VCO period.
  void onDriveChange(std::function<void(double)> cb) { drive_listeners_.push_back(std::move(cb)); }

  [[nodiscard]] const PumpFilterConfig& config() const { return cfg_; }

 private:
  enum class Regime { Hold, Exponential, Ramp };

  void advanceTo(double t);
  void recomputeRegime();
  [[nodiscard]] double outputVoltageNow() const;

  sim::Circuit& circuit_;
  PumpFilterConfig cfg_;

  bool up_active_ = false;
  bool dn_active_ = false;

  double vc_ = 0.0;       ///< capacitor voltage at time last_t_
  double last_t_ = 0.0;

  Regime regime_ = Regime::Hold;
  double asym_v_ = 0.0;   ///< exponential asymptote A
  double tau_s_ = 0.0;    ///< exponential time constant
  double slope_vps_ = 0.0;///< ramp slope (ideal current pump)
  // Output-node voltage is algebraic in (drive, vc): vy = out_a_ + out_b_*vc.
  double out_a_ = 0.0;
  double out_b_ = 1.0;

  std::vector<std::function<void(double)>> drive_listeners_;
};

}  // namespace pllbist::pll
