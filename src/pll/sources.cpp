#include "pll/sources.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace pllbist::pll {

void SineFmSource::Config::validate() const {
  if (nominal_hz <= 0.0) throw std::invalid_argument("SineFmSource: nominal frequency must be positive");
  if (deviation_hz < 0.0 || deviation_hz >= nominal_hz)
    throw std::invalid_argument("SineFmSource: deviation must be in [0, nominal)");
  if (modulation_hz < 0.0) throw std::invalid_argument("SineFmSource: modulation frequency must be >= 0");
  if (marker_pulse_s <= 0.0) throw std::invalid_argument("SineFmSource: marker pulse width must be positive");
  if (edge_jitter_rms_s < 0.0)
    throw std::invalid_argument("SineFmSource: jitter RMS must be >= 0");
  if (edge_jitter_rms_s > 0.05 / nominal_hz)
    throw std::invalid_argument("SineFmSource: jitter RMS must stay below 5% of the period");
}

SineFmSource::SineFmSource(sim::Circuit& c, sim::SignalId out, sim::SignalId peak_marker,
                           const Config& cfg)
    : circuit_(c),
      out_(out),
      peak_marker_(peak_marker),
      cfg_(cfg),
      mod_epoch_(cfg.start_time_s),
      jitter_rng_(cfg.jitter_seed) {
  cfg_.validate();
  PLLBIST_ASSERT(cfg.start_time_s >= c.now());
  circuit_.scheduleCallback(cfg.start_time_s, [this](double now) { toggle(now); });
  if (cfg_.modulation_hz > 0.0) schedulePeakMarker(cfg.start_time_s);
}

double SineFmSource::instantaneousFrequency(double t) const {
  if (cfg_.modulation_hz <= 0.0 || t < mod_epoch_) return cfg_.nominal_hz;
  return cfg_.nominal_hz +
         cfg_.deviation_hz * std::sin(kTwoPi * cfg_.modulation_hz * (t - mod_epoch_));
}

double SineFmSource::jitteredEmissionTime(double clean_time) {
  if (cfg_.edge_jitter_rms_s <= 0.0) return clean_time;
  // Non-accumulating edge jitter: the internal (clean) timeline is never
  // perturbed, only the emitted transition. A fixed +3 sigma insertion
  // delay keeps every emission in the future; truncation at +/-3 sigma
  // guarantees edges cannot reorder (6 sigma < half period by validate()).
  const double sigma = cfg_.edge_jitter_rms_s;
  double j = jitter_dist_(jitter_rng_) * sigma;
  j = std::clamp(j, -3.0 * sigma, 3.0 * sigma);
  return clean_time + 3.0 * sigma + j;
}

void SineFmSource::toggle(double now) {
  // Track the output polarity internally: with jitter, the previous
  // emission may still be queued, so reading the net's current value would
  // produce duplicate (swallowed) transitions.
  out_state_ = !out_state_;
  circuit_.scheduleSet(out_, jitteredEmissionTime(now), out_state_);
  const double f = instantaneousFrequency(now);
  circuit_.scheduleCallback(now + 0.5 / f, [this](double t) { toggle(t); });
}

void SineFmSource::setModulation(double modulation_hz, double deviation_hz) {
  if (modulation_hz < 0.0) throw std::invalid_argument("SineFmSource: modulation frequency must be >= 0");
  if (deviation_hz < 0.0 || deviation_hz >= cfg_.nominal_hz)
    throw std::invalid_argument("SineFmSource: deviation must be in [0, nominal)");
  cfg_.modulation_hz = modulation_hz;
  cfg_.deviation_hz = deviation_hz;
  mod_epoch_ = circuit_.now();
  ++marker_generation_;  // cancel any marker scheduled under the old program
  if (modulation_hz > 0.0) schedulePeakMarker(circuit_.now());
}

void SineFmSource::setCarrier(double nominal_hz) {
  if (nominal_hz <= 0.0) throw std::invalid_argument("SineFmSource: carrier must be positive");
  if (cfg_.deviation_hz >= nominal_hz)
    throw std::invalid_argument("SineFmSource: carrier must exceed deviation");
  cfg_.nominal_hz = nominal_hz;
}

void SineFmSource::schedulePeakMarker(double from_time) {
  // Positive crest: modulation phase = pi/2 (mod 2*pi). Subsequent markers
  // advance by exactly one period (re-deriving the phase with fmod would
  // accumulate round-off and can collapse the wait to ~0, livelocking the
  // event queue).
  const double period = 1.0 / cfg_.modulation_hz;
  const double phase_time = std::fmod(from_time - mod_epoch_, period);
  double wait = period * 0.25 - phase_time;
  const double kMinWait = 1e-12;
  while (wait < kMinWait) wait += period;
  scheduleMarkerAt(from_time + wait, period);
}

void SineFmSource::scheduleMarkerAt(double t, double period) {
  const unsigned generation = marker_generation_;
  circuit_.scheduleCallback(t, [this, generation, t, period](double now) {
    if (generation != marker_generation_) return;
    emitPeakMarker(now);
    scheduleMarkerAt(t + period, period);
  });
}

void SineFmSource::emitPeakMarker(double now) {
  circuit_.scheduleSet(peak_marker_, now, true);
  circuit_.scheduleSet(peak_marker_, now + cfg_.marker_pulse_s, false);
}

}  // namespace pllbist::pll
