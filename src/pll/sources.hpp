#pragma once

#include <random>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {

/// Ideal sinusoidally frequency-modulated square-wave source:
///   f(t) = f_nominal + deviation * sin(2*pi*f_mod*(t - t_start))
///
/// Stands in for the bench-type phase/frequency-modulation generator of the
/// paper's Figure 3 and for the "Pure Sine FM" series of Figures 11/12.
/// The output toggles at half-period granularity with the frequency sampled
/// at each toggle (the modulation is orders of magnitude slower than the
/// carrier, so the staircase error is negligible).
///
/// A one-master-clock-tick pulse is emitted on `peak_marker` each time the
/// modulation passes its positive crest — the "known stimulus peak" the
/// phase counter is started from (Table 2 stage 1).
class SineFmSource : public sim::Component {
 public:
  struct Config {
    double nominal_hz = 0.0;
    double deviation_hz = 0.0;      ///< peak frequency deviation
    double modulation_hz = 0.0;     ///< modulation (tone) frequency; 0 = CW
    double start_time_s = 0.0;      ///< modulation (and output) start
    double marker_pulse_s = 1e-6;   ///< width of the peak-marker pulse
    /// RMS of Gaussian, non-accumulating edge jitter added to every output
    /// transition (truncated at +/-3 sigma; a fixed 3-sigma insertion delay
    /// keeps causality). 0 disables. Deterministic per `jitter_seed`.
    double edge_jitter_rms_s = 0.0;
    unsigned jitter_seed = 1;
    void validate() const;
  };

  SineFmSource(sim::Circuit& c, sim::SignalId out, sim::SignalId peak_marker, const Config& cfg);

  /// Re-program modulation frequency (takes effect from the next toggle;
  /// modulation phase restarts at the current time). deviation may also be
  /// changed. Passing modulation_hz = 0 reverts to an unmodulated carrier.
  void setModulation(double modulation_hz, double deviation_hz);

  /// Re-program the carrier (nominal) frequency; used to park the source at
  /// a static offset for DC reference measurements.
  void setCarrier(double nominal_hz);

  [[nodiscard]] double instantaneousFrequency(double t) const;
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  void toggle(double now);
  void emitPeakMarker(double now);
  void schedulePeakMarker(double from_time);
  void scheduleMarkerAt(double t, double period);

  [[nodiscard]] double jitteredEmissionTime(double clean_time);

  sim::Circuit& circuit_;
  sim::SignalId out_;
  sim::SignalId peak_marker_;
  Config cfg_;
  double mod_epoch_ = 0.0;  ///< time at which modulation phase is zero
  unsigned marker_generation_ = 0;  ///< invalidates stale marker callbacks
  bool out_state_ = false;          ///< internal output polarity tracker
  std::mt19937 jitter_rng_;
  std::normal_distribution<double> jitter_dist_{0.0, 1.0};
};

}  // namespace pllbist::pll
