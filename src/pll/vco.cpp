#include "pll/vco.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::pll {

void VcoConfig::validate() const {
  if (center_frequency_hz <= 0.0) throw std::invalid_argument("VcoConfig: center frequency must be positive");
  if (gain_hz_per_v <= 0.0) throw std::invalid_argument("VcoConfig: gain must be positive");
  if (min_frequency_hz <= 0.0) throw std::invalid_argument("VcoConfig: min frequency must be positive");
  const double fmax = max_frequency_hz > 0.0 ? max_frequency_hz : 2.0 * center_frequency_hz;
  if (fmax <= min_frequency_hz) throw std::invalid_argument("VcoConfig: max frequency must exceed min");
}

double VcoConfig::frequencyAt(double control_v) const {
  const double fmax = max_frequency_hz > 0.0 ? max_frequency_hz : 2.0 * center_frequency_hz;
  const double f = center_frequency_hz + gain_hz_per_v * (control_v - v_center_v);
  return std::clamp(f, min_frequency_hz, fmax);
}

Vco::Vco(sim::Circuit& c, PumpFilter& filter, sim::SignalId out, const VcoConfig& cfg,
         double start_time_s)
    : circuit_(c), filter_(filter), out_(out), cfg_(cfg) {
  cfg_.validate();
  PLLBIST_ASSERT(start_time_s >= c.now());
  circuit_.scheduleCallback(start_time_s, [this](double now) {
    started_ = true;
    last_t_ = now;
    frequency_hz_ = cfg_.frequencyAt(filter_.controlVoltage(now));
    circuit_.scheduleSet(out_, now, true);  // phase 0: first rising edge
    retarget(now);
  });
  // Re-integrate across every pump pulse edge.
  filter.onDriveChange([this](double now) {
    if (!started_) return;
    integrateTo(now);
    retarget(now);
  });
}

void Vco::integrateTo(double t) {
  PLLBIST_ASSERT(t >= last_t_);
  phase_cycles_ += frequency_hz_ * (t - last_t_);
  last_t_ = t;
}

void Vco::retarget(double now) {
  // Sample the (possibly just-changed) control voltage and aim the pending
  // toggle event using the new frequency. Any previously scheduled toggle
  // is invalidated by the generation bump.
  frequency_hz_ = cfg_.frequencyAt(filter_.controlVoltage(now));
  const double remaining_cycles = next_toggle_phase_ - phase_cycles_;
  const double wait = std::max(remaining_cycles, 0.0) / frequency_hz_;
  const unsigned generation = ++generation_;
  circuit_.scheduleCallback(now + wait,
                            [this, generation](double t) { toggleReached(t, generation); });
}

void Vco::toggleReached(double now, unsigned generation) {
  if (generation != generation_) return;  // superseded by a pump edge
  integrateTo(now);
  circuit_.scheduleSet(out_, now, !circuit_.value(out_));
  next_toggle_phase_ += 0.5;
  retarget(now);
}

}  // namespace pllbist::pll
