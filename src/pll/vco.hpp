#pragma once

#include "pll/pump_filter.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {

/// Voltage-controlled oscillator behavioral parameters.
struct VcoConfig {
  double center_frequency_hz = 0.0;  ///< output frequency at v_center
  double gain_hz_per_v = 0.0;        ///< Kv (Ko = 2*pi*gain in rad/s/V)
  double v_center_v = 2.5;           ///< control voltage giving the center frequency
  double min_frequency_hz = 1.0;     ///< lower clamp (tuning-range nonlinearity)
  double max_frequency_hz = 0.0;     ///< upper clamp; 0 => 2x center

  void validate() const;

  /// Static tuning law: clamped linear characteristic.
  [[nodiscard]] double frequencyAt(double control_v) const;
};

/// Behavioral VCO built around a phase accumulator. Between pump drive
/// changes the control voltage moves only on the (slow) filter time
/// constant, so the instantaneous frequency is treated as constant over
/// each integration segment; the accumulator is re-integrated and the next
/// output toggle re-aimed at *every* pump edge. Pump pulses far narrower
/// than a VCO period therefore still contribute their exact time-share of
/// phase — crucial, because in lock the pump pulses are synchronised with
/// the VCO edges and a sample-and-hold VCO would alias them away entirely
/// (producing a spurious static frequency offset).
class Vco : public sim::Component {
 public:
  Vco(sim::Circuit& c, PumpFilter& filter, sim::SignalId out, const VcoConfig& cfg,
      double start_time_s = 0.0);

  /// Ground-truth instantaneous frequency (for probes and tests; the BIST
  /// itself never reads this — it only sees edges).
  [[nodiscard]] double currentFrequencyHz() const { return frequency_hz_; }

  [[nodiscard]] const VcoConfig& config() const { return cfg_; }

 private:
  void integrateTo(double t);
  void retarget(double now);
  void toggleReached(double now, unsigned generation);

  sim::Circuit& circuit_;
  PumpFilter& filter_;
  sim::SignalId out_;
  VcoConfig cfg_;
  bool started_ = false;
  double phase_cycles_ = 0.0;   ///< accumulated output phase in cycles
  double next_toggle_phase_ = 0.5;
  double last_t_ = 0.0;
  double frequency_hz_ = 0.0;   ///< frequency over the current segment
  unsigned generation_ = 0;     ///< invalidates superseded toggle events
};

}  // namespace pllbist::pll
