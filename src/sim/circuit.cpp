#include "sim/circuit.hpp"

#include <stdexcept>

#include "common/assert.hpp"
#include "obs/tracer.hpp"

namespace pllbist::sim {

SignalId Circuit::addSignal(std::string name, bool initial) {
  signals_.push_back(SignalState{std::move(name), initial, {}});
  return static_cast<SignalId>(signals_.size()) - 1;
}

void Circuit::checkId(SignalId id) const {
  if (id < 0 || id >= static_cast<SignalId>(signals_.size()))
    throw std::invalid_argument("Circuit: invalid signal id");
}

bool Circuit::value(SignalId id) const {
  checkId(id);
  return signals_[static_cast<size_t>(id)].value;
}

const std::string& Circuit::signalName(SignalId id) const {
  checkId(id);
  return signals_[static_cast<size_t>(id)].name;
}

void Circuit::onChange(SignalId id, ChangeCallback cb) {
  checkId(id);
  signals_[static_cast<size_t>(id)].change_callbacks.push_back(std::move(cb));
}

void Circuit::onRisingEdge(SignalId id, EdgeCallback cb) {
  onChange(id, [cb = std::move(cb)](double now, bool value) {
    if (value) cb(now);
  });
}

void Circuit::onFallingEdge(SignalId id, EdgeCallback cb) {
  onChange(id, [cb = std::move(cb)](double now, bool value) {
    if (!value) cb(now);
  });
}

void Circuit::scheduleSet(SignalId id, double t, bool value) {
  checkId(id);
  PLLBIST_ASSERT(t >= now_);
  Event ev;
  ev.time = t;
  ev.seq = next_seq_++;
  ev.signal = id;
  ev.value = value;
  enqueue(std::move(ev));
}

void Circuit::scheduleCallback(double t, EdgeCallback cb) {
  PLLBIST_ASSERT(t >= now_);
  Event ev;
  ev.time = t;
  ev.seq = next_seq_++;
  ev.signal = kNoSignal;
  ev.callback = std::move(cb);
  enqueue(std::move(ev));
}

void Circuit::execute(Event& ev) {
  now_ = ev.time;
  ++processed_events_;
  if (ev.signal == kNoSignal) {
    ++delivered_events_;
    ev.callback(now_);
    return;
  }
  if (interceptor_ && !ev.intercepted) {
    const InterceptVerdict verdict = interceptor_(ev.signal, now_, ev.value);
    switch (verdict.action) {
      case InterceptVerdict::Action::Deliver:
        break;
      case InterceptVerdict::Action::Drop:
        ++dropped_events_;
        return;
      case InterceptVerdict::Action::Delay: {
        PLLBIST_ASSERT(verdict.delay_s > 0.0);
        ++delayed_events_;
        // Re-enqueue marked intercepted: the postponed edge is delivered
        // exactly once instead of passing through the interceptor again
        // (a persistent delay rule would otherwise chase it forever and
        // double-count fault statistics).
        Event delayed;
        delayed.time = now_ + verdict.delay_s;
        delayed.seq = next_seq_++;
        delayed.signal = ev.signal;
        delayed.value = ev.value;
        delayed.intercepted = true;
        enqueue(std::move(delayed));
        return;
      }
    }
  }
  SignalState& sig = signals_[static_cast<size_t>(ev.signal)];
  if (sig.value == ev.value) {
    ++swallowed_events_;
    return;  // swallowed (no change)
  }
  sig.value = ev.value;
  ++delivered_events_;
  // Note: callbacks may register more callbacks on this signal; iterate by
  // index so vector growth is safe.
  for (size_t i = 0; i < sig.change_callbacks.size(); ++i) sig.change_callbacks[i](now_, ev.value);
}

bool Circuit::step() {
  if (stop_requested_) {
    stop_requested_ = false;
    return false;
  }
  if (queue_.empty()) return false;
  Event ev = popNext();
  execute(ev);
  return true;
}

bool Circuit::run(double t_end) {
  // One span per run() batch, never per event: the per-event path stays
  // untouched so kernel throughput is identical with tracing idle.
  PLLBIST_SPAN("sim.circuit.run");
  PLLBIST_ASSERT(t_end >= now_);
  if (stop_requested_) {
    stop_requested_ = false;
    return false;
  }
  while (!queue_.empty() && queue_.front().time <= t_end) {
    Event ev = popNext();
    execute(ev);
    if (stop_requested_) {
      stop_requested_ = false;
      return false;
    }
  }
  now_ = t_end;
  return true;
}

}  // namespace pllbist::sim
