#include "sim/circuit.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::sim {

SignalId Circuit::addSignal(std::string name, bool initial) {
  signals_.push_back(SignalState{std::move(name), initial, {}});
  return static_cast<SignalId>(signals_.size()) - 1;
}

void Circuit::checkId(SignalId id) const {
  if (id < 0 || id >= static_cast<SignalId>(signals_.size()))
    throw std::invalid_argument("Circuit: invalid signal id");
}

bool Circuit::value(SignalId id) const {
  checkId(id);
  return signals_[static_cast<size_t>(id)].value;
}

const std::string& Circuit::signalName(SignalId id) const {
  checkId(id);
  return signals_[static_cast<size_t>(id)].name;
}

void Circuit::onChange(SignalId id, ChangeCallback cb) {
  checkId(id);
  signals_[static_cast<size_t>(id)].change_callbacks.push_back(std::move(cb));
}

void Circuit::onRisingEdge(SignalId id, EdgeCallback cb) {
  onChange(id, [cb = std::move(cb)](double now, bool value) {
    if (value) cb(now);
  });
}

void Circuit::onFallingEdge(SignalId id, EdgeCallback cb) {
  onChange(id, [cb = std::move(cb)](double now, bool value) {
    if (!value) cb(now);
  });
}

void Circuit::scheduleSet(SignalId id, double t, bool value) {
  checkId(id);
  PLLBIST_ASSERT(t >= now_);
  Event ev;
  ev.time = t;
  ev.seq = next_seq_++;
  ev.signal = id;
  ev.value = value;
  queue_.push(std::move(ev));
}

void Circuit::scheduleCallback(double t, EdgeCallback cb) {
  PLLBIST_ASSERT(t >= now_);
  Event ev;
  ev.time = t;
  ev.seq = next_seq_++;
  ev.signal = kNoSignal;
  ev.callback = std::move(cb);
  queue_.push(std::move(ev));
}

void Circuit::execute(Event& ev) {
  now_ = ev.time;
  ++processed_events_;
  if (ev.signal == kNoSignal) {
    ev.callback(now_);
    return;
  }
  if (interceptor_) {
    const InterceptVerdict verdict = interceptor_(ev.signal, now_, ev.value);
    switch (verdict.action) {
      case InterceptVerdict::Action::Deliver:
        break;
      case InterceptVerdict::Action::Drop:
        return;
      case InterceptVerdict::Action::Delay:
        PLLBIST_ASSERT(verdict.delay_s > 0.0);
        scheduleSet(ev.signal, now_ + verdict.delay_s, ev.value);
        return;
    }
  }
  SignalState& sig = signals_[static_cast<size_t>(ev.signal)];
  if (sig.value == ev.value) return;  // swallowed (no change)
  sig.value = ev.value;
  // Note: callbacks may register more callbacks on this signal; iterate by
  // index so vector growth is safe.
  for (size_t i = 0; i < sig.change_callbacks.size(); ++i) sig.change_callbacks[i](now_, ev.value);
}

bool Circuit::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; copy out then pop. Events are small.
  Event ev = queue_.top();
  queue_.pop();
  execute(ev);
  return true;
}

bool Circuit::run(double t_end) {
  PLLBIST_ASSERT(t_end >= now_);
  stop_requested_ = false;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event ev = queue_.top();
    queue_.pop();
    execute(ev);
    if (stop_requested_) return false;
  }
  now_ = t_end;
  return true;
}

}  // namespace pllbist::sim
