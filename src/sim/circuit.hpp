#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pllbist::sim {

/// Index of a digital signal (net) inside a Circuit.
using SignalId = int;
inline constexpr SignalId kNoSignal = -1;

/// Discrete-event simulator for the digital portion of the testbench.
///
/// A Circuit owns a set of boolean signals and a time-ordered event queue.
/// Components (gates, flip-flops, dividers, the behavioral PLL blocks)
/// register callbacks on signal transitions and schedule future transitions;
/// time is a double in seconds with full precision, so ns-scale gate delays
/// coexist with multi-second loop dynamics without quantisation.
///
/// Semantics:
///  - Transport delay: every scheduled transition is delivered in time order
///    (ties broken by insertion order). Glitches propagate, which is exactly
///    what the paper's dead-zone-glitch-clocked peak detector requires.
///  - A delivered transition that does not change the signal value is
///    swallowed (no callbacks fire).
///  - Callbacks run at the event's timestamp and may schedule further events
///    at any time >= now.
class Circuit {
 public:
  using EdgeCallback = std::function<void(double now)>;
  using ChangeCallback = std::function<void(double now, bool value)>;

  /// Verdict returned by an installed event interceptor for one scheduled
  /// signal transition (pure callback events are never intercepted).
  struct InterceptVerdict {
    enum class Action {
      Deliver,  ///< apply the transition normally
      Drop,     ///< swallow it (the edge never happens)
      Delay,    ///< re-enqueue it `delay_s` later (> 0)
    };
    Action action = Action::Deliver;
    double delay_s = 0.0;
  };

  /// Consulted at delivery time for every signal transition while
  /// installed. This is the sim-level fault-injection seam (see
  /// sim::FaultInjector): dropping a transition models a missed edge,
  /// delaying it models a marginal path. Each scheduled transition is
  /// intercepted at most once: a Delay verdict re-enqueues the event
  /// marked as already-intercepted, so it is delivered unconditionally at
  /// the postponed time (a persistent delay rule postpones each edge once
  /// instead of chasing it forever). At most one interceptor can be
  /// installed; pass nullptr to uninstall. Zero overhead when unset.
  using EventInterceptor = std::function<InterceptVerdict(SignalId id, double now, bool value)>;
  void setEventInterceptor(EventInterceptor interceptor) { interceptor_ = std::move(interceptor); }
  [[nodiscard]] bool hasEventInterceptor() const { return static_cast<bool>(interceptor_); }

  Circuit() = default;
  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;

  /// Create a named signal with an initial value.
  SignalId addSignal(std::string name, bool initial = false);

  [[nodiscard]] bool value(SignalId id) const;
  [[nodiscard]] const std::string& signalName(SignalId id) const;
  [[nodiscard]] int signalCount() const { return static_cast<int>(signals_.size()); }

  /// Register callbacks. All callbacks registered on a signal fire in
  /// registration order when it changes.
  void onChange(SignalId id, ChangeCallback cb);
  void onRisingEdge(SignalId id, EdgeCallback cb);
  void onFallingEdge(SignalId id, EdgeCallback cb);

  /// Schedule signal id to take `value` at time t (>= now).
  void scheduleSet(SignalId id, double t, bool value);

  /// Schedule an arbitrary callback at time t (>= now).
  void scheduleCallback(double t, EdgeCallback cb);

  /// Immediately force a signal at the current time. Insertion order makes
  /// this deliver before any event scheduled *after* this call at the same
  /// timestamp. Intended for testbench pokes.
  void setNow(SignalId id, bool value) { scheduleSet(id, now_, value); }

  [[nodiscard]] double now() const { return now_; }

  /// Process all events with timestamp <= t_end, then advance now to t_end.
  /// Returns false if the run was interrupted by requestStop(); on that
  /// early return now() stays at the timestamp of the last delivered event
  /// (it is NOT advanced to t_end), so a subsequent run()/step() resumes
  /// exactly where the stop took effect.
  bool run(double t_end);

  /// Process exactly one event if any is pending; returns false when idle
  /// or when a stop request was pending (the request is consumed).
  bool step();

  /// Request that event processing pause at the next event boundary: the
  /// current run() returns false after the in-flight event completes, or —
  /// if no run is active — the next run()/step() call returns false
  /// immediately without processing anything. The request is consumed when
  /// honoured; it never leaks into a later call.
  void requestStop() { stop_requested_ = true; }

  /// Total events dequeued (delivered + dropped + delayed + swallowed).
  [[nodiscard]] uint64_t processedEventCount() const { return processed_events_; }
  /// Events that actually did work: pure callbacks executed plus signal
  /// transitions applied (value changed, change callbacks fired). This is
  /// the honest event-throughput number; drops/swallows are bookkeeping.
  [[nodiscard]] uint64_t deliveredEventCount() const { return delivered_events_; }
  /// Transitions swallowed by an interceptor Drop verdict.
  [[nodiscard]] uint64_t droppedEventCount() const { return dropped_events_; }
  /// Transitions postponed by an interceptor Delay verdict (each counted
  /// once at the verdict; the re-delivery lands in delivered/swallowed).
  [[nodiscard]] uint64_t delayedEventCount() const { return delayed_events_; }
  /// No-change transitions swallowed by the kernel.
  [[nodiscard]] uint64_t swallowedEventCount() const { return swallowed_events_; }

 private:
  struct Event {
    double time = 0.0;
    uint64_t seq = 0;
    SignalId signal = kNoSignal;  // kNoSignal => pure callback event
    bool value = false;
    bool intercepted = false;     // already saw the interceptor (Delay re-enqueue)
    EdgeCallback callback;        // only for callback events
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct SignalState {
    std::string name;
    bool value = false;
    std::vector<ChangeCallback> change_callbacks;
  };

  void enqueue(Event ev) {
    queue_.push_back(std::move(ev));
    std::push_heap(queue_.begin(), queue_.end(), EventLater{});
  }
  /// Move the earliest event out of the heap. Safe to move: the heap
  /// sift-down only reads time/seq, which moving leaves intact.
  Event popNext() {
    std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    return ev;
  }

  void execute(Event& ev);
  void checkId(SignalId id) const;

  std::vector<SignalState> signals_;
  EventInterceptor interceptor_;
  std::vector<Event> queue_;  // binary heap (EventLater), earliest at front
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t processed_events_ = 0;
  uint64_t delivered_events_ = 0;
  uint64_t dropped_events_ = 0;
  uint64_t delayed_events_ = 0;
  uint64_t swallowed_events_ = 0;
  bool stop_requested_ = false;
};

}  // namespace pllbist::sim
