#include "sim/fault_injector.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::sim {

FaultInjector::FaultInjector(Circuit& c, uint64_t seed) : circuit_(c), seed_(seed), rng_(seed) {
  if (c.hasEventInterceptor())
    throw std::logic_error("FaultInjector: circuit already has an event interceptor");
  c.setEventInterceptor(
      [this](SignalId id, double now, bool value) { return intercept(id, now, value); });
}

FaultInjector::~FaultInjector() { circuit_.setEventInterceptor(nullptr); }

double FaultInjector::uniform01() {
  return static_cast<double>(rng_() >> 11) * 0x1.0p-53;
}

void FaultInjector::dropEdges(SignalId id, double probability, double from_s, double until_s) {
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument("FaultInjector::dropEdges: probability must be in [0, 1]");
  Rule r;
  r.id = id;
  r.op = Rule::Op::Drop;
  r.probability = probability;
  r.from_s = from_s;
  r.until_s = until_s;
  rules_.push_back(r);
}

void FaultInjector::delayEdges(SignalId id, double probability, double min_delay_s,
                               double max_delay_s, double from_s, double until_s) {
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument("FaultInjector::delayEdges: probability must be in [0, 1]");
  if (min_delay_s <= 0.0 || max_delay_s < min_delay_s)
    throw std::invalid_argument("FaultInjector::delayEdges: need 0 < min_delay <= max_delay");
  Rule r;
  r.id = id;
  r.op = Rule::Op::Delay;
  r.probability = probability;
  r.delay_min_s = min_delay_s;
  r.delay_max_s = max_delay_s;
  r.from_s = from_s;
  r.until_s = until_s;
  rules_.push_back(r);
}

void FaultInjector::stickSignal(SignalId id, double from_s, double until_s) {
  Rule r;
  r.id = id;
  r.op = Rule::Op::Stick;
  r.from_s = from_s;
  r.until_s = until_s;
  rules_.push_back(r);
}

void FaultInjector::injectGlitch(SignalId id, double t, double width_s) {
  if (width_s <= 0.0) throw std::invalid_argument("FaultInjector::injectGlitch: width must be > 0");
  PLLBIST_ASSERT(t >= circuit_.now());
  circuit_.scheduleCallback(t, [this, id, width_s](double now) {
    const bool restore_to = circuit_.value(id);
    circuit_.scheduleSet(id, now, !restore_to);
    ++stats_.glitches;
    circuit_.scheduleCallback(now + width_s, [this, id, restore_to](double then) {
      circuit_.scheduleSet(id, then, restore_to);
    });
  });
}

void FaultInjector::injectGlitchStorm(SignalId id, double t0_s, double t1_s,
                                      double mean_interval_s, double width_s) {
  if (mean_interval_s <= 0.0 || width_s <= 0.0 || t1_s <= t0_s)
    throw std::invalid_argument("FaultInjector::injectGlitchStorm: need t1 > t0 and positive "
                                "interval/width");
  scheduleStormPulse(id, t0_s, t1_s, mean_interval_s, width_s);
}

void FaultInjector::scheduleStormPulse(SignalId id, double t, double t1_s, double mean_interval_s,
                                       double width_s) {
  if (t >= t1_s) return;
  injectGlitch(id, t, width_s);
  // Exponential inter-arrival; 1 - u is in (0, 1] so the log is finite.
  const double gap = -mean_interval_s * std::log(1.0 - uniform01());
  scheduleStormPulse(id, t + std::max(gap, width_s), t1_s, mean_interval_s, width_s);
}

void FaultInjector::clearRules() { rules_.clear(); }

Circuit::InterceptVerdict FaultInjector::intercept(SignalId id, double now, bool /*value*/) {
  Circuit::InterceptVerdict verdict;
  bool matched_any = false;
  for (const Rule& rule : rules_) {
    if (rule.id != id || now < rule.from_s || now >= rule.until_s) continue;
    if (!matched_any) {
      matched_any = true;
      ++stats_.considered;
    }
    switch (rule.op) {
      case Rule::Op::Stick:
        ++stats_.dropped;
        verdict.action = Circuit::InterceptVerdict::Action::Drop;
        return verdict;
      case Rule::Op::Drop:
        if (uniform01() < rule.probability) {
          ++stats_.dropped;
          verdict.action = Circuit::InterceptVerdict::Action::Drop;
          return verdict;
        }
        break;
      case Rule::Op::Delay:
        if (uniform01() < rule.probability) {
          ++stats_.delayed;
          verdict.action = Circuit::InterceptVerdict::Action::Delay;
          verdict.delay_s =
              rule.delay_min_s + uniform01() * (rule.delay_max_s - rule.delay_min_s);
          return verdict;
        }
        break;
    }
  }
  return verdict;
}

}  // namespace pllbist::sim
