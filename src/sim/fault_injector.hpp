#pragma once

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::sim {

/// Deterministic, seeded, replayable fault injection at the event-kernel
/// level. Installs itself as the Circuit's event interceptor and applies a
/// rule list to scheduled signal transitions:
///
///   - dropEdges     each transition in a time window is swallowed with
///                   probability p (a missed MAXFREQ edge, a deaf counter)
///   - delayEdges    each transition is postponed by a uniform random
///                   amount (marginal timing paths, metastability)
///   - stickSignal   every transition in a window is dropped — the signal
///                   is stuck at whatever value it held when the window
///                   opened (stuck counters, dead peak detector)
///   - injectGlitch / injectGlitchStorm
///                   spurious invert-then-restore pulses are forced onto a
///                   signal (PFD dead-zone glitch storms, noise coupling)
///
/// All randomness comes from one std::mt19937_64 advanced only when a rule
/// matches, so a given (seed, rules, workload) triple replays bit-exactly —
/// a hard requirement for debugging a failure the campaign found.
///
/// Only one FaultInjector may be installed per Circuit at a time, and it
/// must outlive all circuit activity (it does not unregister pending glitch
/// callbacks). Destroying it uninstalls the interceptor.
class FaultInjector : public Component {
 public:
  static constexpr double kForever = std::numeric_limits<double>::infinity();

  struct Stats {
    uint64_t considered = 0;  ///< transitions examined against >= 1 rule
    uint64_t dropped = 0;
    uint64_t delayed = 0;
    uint64_t glitches = 0;  ///< spurious pulses actually forced
  };

  explicit FaultInjector(Circuit& c, uint64_t seed = 1);
  ~FaultInjector() override;

  /// Drop each transition of `id` with `probability` while now is in
  /// [from_s, until_s).
  void dropEdges(SignalId id, double probability, double from_s = 0.0, double until_s = kForever);

  /// Postpone each transition of `id` with `probability` by a uniform
  /// random delay in [min_delay_s, max_delay_s]. A delayed event is
  /// delivered unconditionally at the postponed time — the kernel marks it
  /// already-intercepted, so it cannot be delayed again or dropped by
  /// another rule. (It used to be re-examined, which let a persistent
  /// delay rule chase its own re-enqueues forever and double-count the
  /// delayed/dropped statistics.)
  void delayEdges(SignalId id, double probability, double min_delay_s, double max_delay_s,
                  double from_s = 0.0, double until_s = kForever);

  /// Drop every transition of `id` in [from_s, until_s): the signal is
  /// stuck at its value as of the window opening.
  void stickSignal(SignalId id, double from_s, double until_s = kForever);

  /// Force one spurious pulse: at time t the signal is inverted, at
  /// t + width_s it is restored to its pre-glitch value. Transitions the
  /// DUT legitimately scheduled inside the pulse are overwritten — that is
  /// the point.
  void injectGlitch(SignalId id, double t, double width_s);

  /// A storm of glitches on [t0_s, t1_s): pulse start times follow an
  /// exponential inter-arrival law with the given mean (Poisson process,
  /// deterministic per seed).
  void injectGlitchStorm(SignalId id, double t0_s, double t1_s, double mean_interval_s,
                         double width_s);

  /// Remove all drop/delay/stick rules. Pending glitch events already in
  /// the queue still fire; the rule list starts empty again.
  void clearRules();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] uint64_t seed() const { return seed_; }

 private:
  struct Rule {
    enum class Op { Drop, Delay, Stick };
    SignalId id = kNoSignal;
    Op op = Op::Drop;
    double probability = 1.0;
    double delay_min_s = 0.0;
    double delay_max_s = 0.0;
    double from_s = 0.0;
    double until_s = kForever;
  };

  Circuit::InterceptVerdict intercept(SignalId id, double now, bool value);
  void scheduleStormPulse(SignalId id, double t, double t1_s, double mean_interval_s,
                          double width_s);
  /// Uniform in [0, 1) from the raw engine — bit-identical on every
  /// platform, unlike std::uniform_real_distribution.
  double uniform01();

  Circuit& circuit_;
  uint64_t seed_;
  std::mt19937_64 rng_;
  std::vector<Rule> rules_;
  Stats stats_;
};

}  // namespace pllbist::sim
