#include "sim/primitives.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace pllbist::sim {

namespace {
void requirePositiveDelay(double delay_s) {
  if (delay_s <= 0.0)
    throw std::invalid_argument("sim primitive: delay must be positive (zero-delay loops hang)");
}
}  // namespace

Inverter::Inverter(Circuit& c, SignalId in, SignalId out, double delay_s) {
  requirePositiveDelay(delay_s);
  c.onChange(in, [&c, out, delay_s](double now, bool v) { c.scheduleSet(out, now + delay_s, !v); });
  c.scheduleSet(out, c.now() + delay_s, !c.value(in));
}

Buffer::Buffer(Circuit& c, SignalId in, SignalId out, double delay_s) {
  requirePositiveDelay(delay_s);
  c.onChange(in, [&c, out, delay_s](double now, bool v) { c.scheduleSet(out, now + delay_s, v); });
  c.scheduleSet(out, c.now() + delay_s, c.value(in));
}

AndGate::AndGate(Circuit& c, SignalId a, SignalId b, SignalId out, double delay_s) {
  requirePositiveDelay(delay_s);
  auto update = [&c, a, b, out, delay_s](double now, bool) {
    c.scheduleSet(out, now + delay_s, c.value(a) && c.value(b));
  };
  c.onChange(a, update);
  c.onChange(b, update);
  update(c.now(), false);
}

OrGate::OrGate(Circuit& c, SignalId a, SignalId b, SignalId out, double delay_s) {
  requirePositiveDelay(delay_s);
  auto update = [&c, a, b, out, delay_s](double now, bool) {
    c.scheduleSet(out, now + delay_s, c.value(a) || c.value(b));
  };
  c.onChange(a, update);
  c.onChange(b, update);
  update(c.now(), false);
}

Mux2::Mux2(Circuit& c, SignalId a, SignalId b, SignalId sel, SignalId out, double delay_s) {
  requirePositiveDelay(delay_s);
  auto update = [&c, a, b, sel, out, delay_s](double now, bool) {
    c.scheduleSet(out, now + delay_s, c.value(sel) ? c.value(b) : c.value(a));
  };
  c.onChange(a, update);
  c.onChange(b, update);
  c.onChange(sel, update);
  update(c.now(), false);
}

DFlipFlop::DFlipFlop(Circuit& c, SignalId clk, SignalId d, SignalId q, double clk_to_q_s,
                     SignalId reset, double reset_to_q_s)
    : circuit_(c), d_(d), q_(q), reset_(reset), clk_to_q_(clk_to_q_s), reset_to_q_(reset_to_q_s) {
  requirePositiveDelay(clk_to_q_s);
  if (reset != kNoSignal) requirePositiveDelay(reset_to_q_s);
  c.onRisingEdge(clk, [this](double now) {
    if (reset_ != kNoSignal && circuit_.value(reset_)) return;  // async reset dominates
    circuit_.scheduleSet(q_, now + clk_to_q_, circuit_.value(d_));
  });
  if (reset != kNoSignal) {
    c.onRisingEdge(reset, [this](double now) { circuit_.scheduleSet(q_, now + reset_to_q_, false); });
  }
}

DLatch::DLatch(Circuit& c, SignalId d, SignalId enable, SignalId q, double delay_s)
    : circuit_(c), d_(d), enable_(enable), q_(q), delay_(delay_s) {
  requirePositiveDelay(delay_s);
  c.onChange(d, [this](double now, bool v) {
    if (circuit_.value(enable_)) circuit_.scheduleSet(q_, now + delay_, v);
  });
  c.onRisingEdge(enable, [this](double now) {
    circuit_.scheduleSet(q_, now + delay_, circuit_.value(d_));
  });
}

ClockSource::ClockSource(Circuit& c, SignalId out, double period_s, double start_time_s)
    : circuit_(c), out_(out), period_(period_s) {
  if (period_s <= 0.0) throw std::invalid_argument("ClockSource: period must be positive");
  PLLBIST_ASSERT(start_time_s >= c.now());
  scheduleNext(start_time_s);
}

void ClockSource::scheduleNext(double t) {
  circuit_.scheduleCallback(t, [this](double now) {
    if (!running_) return;
    circuit_.scheduleSet(out_, now, !circuit_.value(out_));
    scheduleNext(now + period_ / 2.0);
  });
}

ToggleDivider::ToggleDivider(Circuit& c, SignalId in, SignalId out, int modulus, double delay_s)
    : circuit_(c), out_(out), delay_(delay_s), modulus_(modulus), pending_modulus_(modulus) {
  requirePositiveDelay(delay_s);
  if (modulus < 1) throw std::invalid_argument("ToggleDivider: modulus must be >= 1");
  c.onRisingEdge(in, [this](double now) {
    if (++count_ >= modulus_) {
      count_ = 0;
      modulus_ = pending_modulus_;  // frequency hops latch at toggle boundaries
      circuit_.scheduleSet(out_, now + delay_, !circuit_.value(out_));
    }
  });
}

void ToggleDivider::setModulus(int modulus) {
  if (modulus < 1) throw std::invalid_argument("ToggleDivider: modulus must be >= 1");
  pending_modulus_ = modulus;
}

DivideByN::DivideByN(Circuit& c, SignalId in, SignalId out, int n, double delay_s)
    : circuit_(c), out_(out), delay_(delay_s), n_(n) {
  requirePositiveDelay(delay_s);
  if (n < 1) throw std::invalid_argument("DivideByN: n must be >= 1");
  if (n == 1) {
    // Pass-through: mirror both edges so downstream blocks see the input.
    c.onChange(in, [this](double now, bool v) { circuit_.scheduleSet(out_, now + delay_, v); });
    return;
  }
  c.onRisingEdge(in, [this](double now) {
    if (count_ == 0) circuit_.scheduleSet(out_, now + delay_, true);
    if (count_ == std::max(1, n_ / 2)) circuit_.scheduleSet(out_, now + delay_, false);
    if (++count_ >= n_) count_ = 0;
  });
}

GatedCounter::GatedCounter(Circuit& c, SignalId in) {
  c.onRisingEdge(in, [this](double) {
    if (running_) ++count_;
  });
}

EdgeRecorder::EdgeRecorder(Circuit& c, SignalId in) {
  c.onChange(in, [this](double now, bool v) {
    if (v)
      rising_.push_back(now);
    else
      falling_.push_back(now);
  });
}

}  // namespace pllbist::sim
