#pragma once

#include <vector>

#include "sim/circuit.hpp"

namespace pllbist::sim {

/// Digital building blocks used to assemble the on-chip test circuitry at
/// the same granularity as the paper's FPGA implementation. Every primitive
/// registers callbacks on construction; instances must therefore outlive the
/// Circuit's run and are pinned in memory (non-copyable, non-movable).
class Component {
 public:
  Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;
  virtual ~Component() = default;
};

/// out = !in after `delay_s` (transport delay; delay must be > 0).
class Inverter : public Component {
 public:
  Inverter(Circuit& c, SignalId in, SignalId out, double delay_s);
};

/// out = in after `delay_s`; a pure delay element ("additional delay
/// elements" of section 4.2 used to widen dead-zone glitches).
class Buffer : public Component {
 public:
  Buffer(Circuit& c, SignalId in, SignalId out, double delay_s);
};

/// out = a AND b after delay.
class AndGate : public Component {
 public:
  AndGate(Circuit& c, SignalId a, SignalId b, SignalId out, double delay_s);
};

/// out = a OR b after delay.
class OrGate : public Component {
 public:
  OrGate(Circuit& c, SignalId a, SignalId b, SignalId out, double delay_s);
};

/// out = sel ? b : a after delay. Also re-evaluates when sel changes.
class Mux2 : public Component {
 public:
  Mux2(Circuit& c, SignalId a, SignalId b, SignalId sel, SignalId out, double delay_s);
};

/// Rising-edge D flip-flop with optional active-high asynchronous reset.
/// clk->q and reset->q delays are independent; while reset is asserted,
/// clock edges are ignored. This is the latch the PFD is built from, so the
/// reset-path delay is what creates the dead-zone glitches.
class DFlipFlop : public Component {
 public:
  DFlipFlop(Circuit& c, SignalId clk, SignalId d, SignalId q, double clk_to_q_s,
            SignalId reset = kNoSignal, double reset_to_q_s = 0.0);

 private:
  Circuit& circuit_;
  SignalId d_;
  SignalId q_;
  SignalId reset_;
  double clk_to_q_;
  double reset_to_q_;
};

/// Level-transparent D latch: while enable is high, q tracks d (after
/// delay); when enable falls the last value is held.
class DLatch : public Component {
 public:
  DLatch(Circuit& c, SignalId d, SignalId enable, SignalId q, double delay_s);

 private:
  Circuit& circuit_;
  SignalId d_;
  SignalId enable_;
  SignalId q_;
  double delay_;
};

/// Free-running square-wave source: toggles its output with the given
/// period starting at start_time. stop() freezes the output.
class ClockSource : public Component {
 public:
  ClockSource(Circuit& c, SignalId out, double period_s, double start_time_s = 0.0);
  void stop() { running_ = false; }
  [[nodiscard]] double period() const { return period_; }

 private:
  void scheduleNext(double t);
  Circuit& circuit_;
  SignalId out_;
  double period_;
  bool running_ = true;
};

/// Programmable toggle divider: output toggles every `modulus` rising edges
/// of the input, giving f_out = f_in / (2*modulus). Modulus changes are
/// latched and take effect at the next output toggle, matching a synchronous
/// ring-counter implementation (no runt pulses when hopping frequencies).
class ToggleDivider : public Component {
 public:
  ToggleDivider(Circuit& c, SignalId in, SignalId out, int modulus, double delay_s);
  void setModulus(int modulus);
  [[nodiscard]] int modulus() const { return modulus_; }

 private:
  Circuit& circuit_;
  SignalId out_;
  double delay_;
  int modulus_;
  int pending_modulus_;
  int count_ = 0;
};

/// Divide-by-N pulse divider for the PLL feedback/reference paths: the
/// output rises every N input rising edges and falls floor(N/2) edges later,
/// so rising-edge spacing (all a PFD sees) is exactly N input periods.
class DivideByN : public Component {
 public:
  DivideByN(Circuit& c, SignalId in, SignalId out, int n, double delay_s);
  [[nodiscard]] int n() const { return n_; }

 private:
  Circuit& circuit_;
  SignalId out_;
  double delay_;
  int n_;
  int count_ = 0;
};

/// Gated rising-edge counter (the BIST frequency/phase counters). start()
/// zeroes and arms it; stop() freezes the count.
class GatedCounter : public Component {
 public:
  GatedCounter(Circuit& c, SignalId in);
  void start() { count_ = 0; running_ = true; }
  void stop() { running_ = false; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] long count() const { return count_; }

 private:
  long count_ = 0;
  bool running_ = false;
};

/// Records rising/falling edge timestamps of a signal for offline analysis.
class EdgeRecorder : public Component {
 public:
  EdgeRecorder(Circuit& c, SignalId in);
  [[nodiscard]] const std::vector<double>& risingEdges() const { return rising_; }
  [[nodiscard]] const std::vector<double>& fallingEdges() const { return falling_; }
  void clear() { rising_.clear(); falling_.clear(); }

 private:
  std::vector<double> rising_;
  std::vector<double> falling_;
};

}  // namespace pllbist::sim
