#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/resample.hpp"

namespace pllbist::sim {

void Trace::append(double time_s, double value) {
  PLLBIST_ASSERT(times_.empty() || time_s >= times_.back());
  times_.push_back(time_s);
  values_.push_back(value);
}

void Trace::clear() {
  times_.clear();
  values_.clear();
}

double Trace::at(double time_s) const {
  if (times_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return dsp::interpolateAt(times_, values_, time_s);
}

Trace Trace::after(double t0) const {
  Trace out(name_);
  for (size_t i = 0; i < times_.size(); ++i)
    if (times_[i] >= t0) out.append(times_[i], values_[i]);
  return out;
}

void writeTracesCsv(std::ostream& os, const std::vector<const Trace*>& traces) {
  size_t max_len = 0;
  for (const Trace* t : traces) {
    if (t == nullptr) throw std::invalid_argument("writeTracesCsv: null trace");
    max_len = std::max(max_len, t->size());
  }
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i) os << ',';
    os << "t_" << traces[i]->name() << ',' << traces[i]->name();
  }
  os << '\n';
  for (size_t row = 0; row < max_len; ++row) {
    for (size_t i = 0; i < traces.size(); ++i) {
      if (i) os << ',';
      if (row < traces[i]->size())
        os << traces[i]->times()[row] << ',' << traces[i]->values()[row];
      else
        os << ',';
    }
    os << '\n';
  }
}

std::string renderAscii(const Trace& trace, int width, int height) {
  if (trace.empty() || width < 2 || height < 2) return "(empty trace)\n";
  const double t0 = trace.times().front();
  const double t1 = trace.times().back();
  double vmin = trace.values().front(), vmax = vmin;
  for (double v : trace.values()) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  if (vmax == vmin) vmax = vmin + 1.0;

  std::vector<std::string> rows(static_cast<size_t>(height), std::string(static_cast<size_t>(width), ' '));
  for (int col = 0; col < width; ++col) {
    const double t = (t1 == t0) ? t0 : t0 + (t1 - t0) * col / (width - 1);
    const double v = trace.at(t);
    int row = static_cast<int>(std::lround((vmax - v) / (vmax - vmin) * (height - 1)));
    row = std::clamp(row, 0, height - 1);
    rows[static_cast<size_t>(row)][static_cast<size_t>(col)] = '*';
  }
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s  [%.4g .. %.4g] over t=[%.4g, %.4g]s\n", trace.name().c_str(),
                vmin, vmax, t0, t1);
  out += buf;
  for (auto& r : rows) {
    out += '|';
    out += r;
    out += "|\n";
  }
  return out;
}

}  // namespace pllbist::sim
