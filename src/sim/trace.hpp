#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pllbist::sim {

/// A named analog waveform: (time, value) samples in ascending time.
/// Used to record the loop-filter node and VCO frequency for the Figure 8
/// style transient plots.
class Trace {
 public:
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void append(double time_s, double value);
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  void clear();

  /// Value at an arbitrary time by linear interpolation (clamped ends).
  /// Contract for an empty trace: returns quiet NaN — an empty trace has
  /// no value anywhere, and NaN propagates that honestly through downstream
  /// arithmetic instead of throwing or asserting.
  [[nodiscard]] double at(double time_s) const;

  /// Keep only samples with time >= t0 (used to discard settling).
  [[nodiscard]] Trace after(double t0) const;

 private:
  std::string name_;
  std::vector<double> times_;
  std::vector<double> values_;
};

/// Write a set of traces as CSV (time column per trace pair) for external
/// plotting. Traces may have different lengths; short ones leave blanks.
void writeTracesCsv(std::ostream& os, const std::vector<const Trace*>& traces);

/// ASCII-art rendering of a trace (rows = amplitude bins), for quick looks
/// in bench output without a plotting stack.
std::string renderAscii(const Trace& trace, int width = 100, int height = 16);

}  // namespace pllbist::sim
