#include "baseline/bench_measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/grid.hpp"
#include "support/test_configs.hpp"

namespace pllbist::baseline {
namespace {

using pllbist::testing::fastTestConfig;

BenchOptions fastBenchOptions(int points = 6) {
  BenchOptions opt;
  opt.deviation_hz = 100.0;
  opt.modulation_frequencies_hz = control::logspace(40.0, 600.0, points);
  opt.lock_wait_s = 0.05;
  return opt;
}

TEST(BenchOptions, Validation) {
  BenchOptions opt = fastBenchOptions();
  EXPECT_NO_THROW(opt.validate());
  opt.deviation_hz = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastBenchOptions();
  opt.modulation_frequencies_hz = {100.0, 100.0};  // not strictly ascending
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastBenchOptions();
  opt.samples_per_period = 4;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastBenchOptions();
  opt.measure_periods = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(BenchMeasurement, VcoProbeMatchesEqn4Theory) {
  // The bench has analog access and absolute calibration, so it recovers
  // the *true* closed-loop H including the filter zero.
  const pll::PllConfig cfg = fastTestConfig();
  const BenchResult result = measureBench(cfg, fastBenchOptions(7));
  const control::TransferFunction theory = cfg.closedLoopDividedTf();
  ASSERT_EQ(result.points.size(), 7u);
  for (const BenchPoint& p : result.points) {
    const double w = hzToRadPerSec(p.modulation_hz);
    EXPECT_NEAR(amplitudeToDb(p.gain), theory.magnitudeDbAt(w), 1.5) << p.modulation_hz;
    double expected_phase = theory.phaseDegAt(w);
    if (expected_phase > 0.0) expected_phase -= 360.0;
    EXPECT_NEAR(p.phase_deg, expected_phase, 15.0) << p.modulation_hz;
  }
}

TEST(BenchMeasurement, LoopFilterProbeAgreesWithVcoProbeInBand) {
  // The two probes watch the same physical quantity; the point-sampled
  // voltage node however carries pump-pulse ripple that grows with phase
  // error, so agreement is asserted where the signal dominates the ripple
  // (up to ~the natural frequency).
  const pll::PllConfig cfg = fastTestConfig();
  BenchOptions opt = fastBenchOptions(4);
  opt.modulation_frequencies_hz = {40.0, 90.0, 200.0};
  const BenchResult via_vco = measureBench(cfg, opt);
  opt.probe = ProbeNode::LoopFilterVoltage;
  const BenchResult via_filter = measureBench(cfg, opt);
  for (size_t i = 0; i < via_vco.points.size(); ++i) {
    EXPECT_NEAR(amplitudeToDb(via_filter.points[i].gain), amplitudeToDb(via_vco.points[i].gain),
                1.5)
        << via_vco.points[i].modulation_hz;
  }
}

TEST(BenchMeasurement, InBandGainIsUnity) {
  const pll::PllConfig cfg = fastTestConfig();
  BenchOptions opt = fastBenchOptions(1);
  opt.modulation_frequencies_hz = {20.0};  // fn/10
  const BenchResult result = measureBench(cfg, opt);
  EXPECT_NEAR(result.points[0].gain, 1.0, 0.05);
  EXPECT_NEAR(result.points[0].phase_deg, 0.0, 8.0);
}

TEST(BenchMeasurement, ToBodeExportsAscendingResponse) {
  const pll::PllConfig cfg = fastTestConfig();
  const BenchResult result = measureBench(cfg, fastBenchOptions(5));
  const control::BodeResponse bode = result.toBode();
  EXPECT_EQ(bode.size(), 5u);
  // roll-off present at the top of the sweep
  EXPECT_LT(bode.points().back().magnitude_db, bode.points().front().magnitude_db - 3.0);
}

TEST(BenchMeasurement, FitResidualBounded) {
  const pll::PllConfig cfg = fastTestConfig();
  const BenchResult result = measureBench(cfg, fastBenchOptions(3));
  const double full_scale = 100.0 * static_cast<double>(cfg.divider_n);
  for (const BenchPoint& p : result.points) {
    // Pump ripple keeps the residual nonzero; it must stay below full scale
    // everywhere (sanity) and well below the fundamental where the signal
    // is strong (the in-band point).
    EXPECT_LT(p.fit_residual_rms, 2.0 * full_scale) << p.modulation_hz;  // resonance gain > 1
  }
  EXPECT_LT(result.points.front().fit_residual_rms,
            0.5 * result.points.front().gain * full_scale);
}

TEST(BenchMeasurement, DetectsShiftedNaturalFrequencyFromFault) {
  // The bench (like the BIST) must see a halved-C device as a wider loop.
  pll::PllConfig faulty = fastTestConfig();
  faulty.pump.c_farad *= 0.25;
  BenchOptions opt = fastBenchOptions(6);
  opt.modulation_frequencies_hz = control::logspace(40.0, 1200.0, 6);
  const control::BodeResponse golden_bode = measureBench(fastTestConfig(), opt).toBode();
  const control::BodeResponse faulty_bode = measureBench(faulty, opt).toBode();
  // Faulty loop is 2x wider: at 600 Hz the golden response is well into
  // roll-off while the faulty one is still near its peak.
  const double w = hzToRadPerSec(600.0);
  EXPECT_GT(faulty_bode.magnitudeDbAt(w), golden_bode.magnitudeDbAt(w) + 4.0);
}

}  // namespace
}  // namespace pllbist::baseline
