#include "bist/analysis.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "control/grid.hpp"
#include "control/second_order.hpp"
#include "control/transfer_function.hpp"
#include "support/tolerance.hpp"

namespace pllbist::bist {
namespace {

control::BodeResponse secondOrder(double fn_hz, double zeta) {
  const double wn = hzToRadPerSec(fn_hz);
  return control::BodeResponse::compute(control::TransferFunction::secondOrderLowPass(wn, zeta),
                                        control::logspace(wn / 50.0, wn * 50.0, 300));
}

TEST(ExtractParameters, RecoversSecondOrderParameters) {
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.43));
  ASSERT_TRUE(p.zeta.has_value());
  ASSERT_TRUE(p.natural_frequency_hz.has_value());
  ASSERT_TRUE(p.bandwidth_3db_hz.has_value());
  EXPECT_NEAR(*p.zeta, 0.43, 0.01);
  EXPECT_NEAR(*p.natural_frequency_hz, 8.0, 0.15);
  EXPECT_NEAR(*p.bandwidth_3db_hz, radPerSecToHz(control::bandwidth3Db(hzToRadPerSec(8.0), 0.43)),
              0.2);
  // 2nd-order phase at omega_p: atan(2*zeta*x/(1-x^2)) with x = sqrt(1-2z^2)
  // is -61.5 degrees for zeta = 0.43.
  EXPECT_PHASE_NEAR_DEG(p.phase_at_peak_deg, -61.5, 3.0);
}

TEST(ExtractParameters, OverdampedHasNoZetaEstimate) {
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.9));
  EXPECT_FALSE(p.zeta.has_value());
  EXPECT_LT(p.peaking_db, 0.1);
  EXPECT_TRUE(p.bandwidth_3db_hz.has_value());
}

TEST(ExtractParameters, EmptyResponseThrows) {
  control::BodeResponse empty;
  EXPECT_THROW(extractParameters(empty), std::domain_error);
}

TEST(CheckLimits, PassesInsideAllLimits) {
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.43));
  TestLimits limits;
  limits.min_natural_frequency_hz = 6.0;
  limits.max_natural_frequency_hz = 10.0;
  limits.min_zeta = 0.3;
  limits.max_zeta = 0.6;
  limits.max_peaking_db = 4.0;
  const TestVerdict v = checkLimits(p, limits);
  EXPECT_TRUE(v.pass);
  EXPECT_TRUE(v.failures.empty());
}

TEST(CheckLimits, FlagsOutOfRangeParameters) {
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.43));
  TestLimits limits;
  limits.min_natural_frequency_hz = 12.0;  // fn too low now
  limits.max_zeta = 0.2;                   // zeta too high now
  const TestVerdict v = checkLimits(p, limits);
  EXPECT_FALSE(v.pass);
  EXPECT_EQ(v.failures.size(), 2u);
}

TEST(CheckLimits, UnextractableParameterFailsItsLimit) {
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.9));  // no zeta
  TestLimits limits;
  limits.min_zeta = 0.3;
  const TestVerdict v = checkLimits(p, limits);
  EXPECT_FALSE(v.pass);
  ASSERT_EQ(v.failures.size(), 1u);
  EXPECT_NE(v.failures[0].find("not extractable"), std::string::npos);
}

TEST(CheckLimits, NoLimitsAlwaysPass) {
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.43));
  EXPECT_TRUE(checkLimits(p, TestLimits{}).pass);
}

TEST(LimitsFromGolden, SymmetricBands) {
  const ExtractedParameters golden = extractParameters(secondOrder(8.0, 0.43));
  const TestLimits limits = limitsFromGolden(golden, 0.25);
  ASSERT_TRUE(limits.min_natural_frequency_hz.has_value());
  EXPECT_NEAR(*limits.min_natural_frequency_hz, *golden.natural_frequency_hz * 0.75, 1e-9);
  EXPECT_NEAR(*limits.max_natural_frequency_hz, *golden.natural_frequency_hz * 1.25, 1e-9);
  // Golden must pass its own limits.
  EXPECT_TRUE(checkLimits(golden, limits).pass);
}

TEST(LimitsFromGolden, DetectsShiftedDevice) {
  const ExtractedParameters golden = extractParameters(secondOrder(8.0, 0.43));
  const TestLimits limits = limitsFromGolden(golden, 0.2);
  // A device whose natural frequency halved (e.g. C doubled).
  const ExtractedParameters shifted = extractParameters(secondOrder(4.0, 0.43));
  EXPECT_FALSE(checkLimits(shifted, limits).pass);
  // A device inside the band passes.
  const ExtractedParameters close = extractParameters(secondOrder(8.5, 0.45));
  EXPECT_TRUE(checkLimits(close, limits).pass);
}


TEST(ExtractParameters, PhaseBasedFnMatchesMagnitudeBasedFn) {
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.43));
  ASSERT_TRUE(p.natural_frequency_from_phase_hz.has_value());
  EXPECT_NEAR(*p.natural_frequency_from_phase_hz, 8.0, 0.1);
  ASSERT_TRUE(p.natural_frequency_hz.has_value());
  EXPECT_NEAR(*p.natural_frequency_from_phase_hz, *p.natural_frequency_hz, 0.3);
}

TEST(ExtractParameters, PhaseBasedFnAvailableWhenOverdamped) {
  // No magnitude peak for zeta = 0.9, but the -90 degree crossing still
  // marks wn exactly for a two-pole response.
  const ExtractedParameters p = extractParameters(secondOrder(8.0, 0.9));
  EXPECT_FALSE(p.natural_frequency_hz.has_value());
  ASSERT_TRUE(p.natural_frequency_from_phase_hz.has_value());
  EXPECT_NEAR(*p.natural_frequency_from_phase_hz, 8.0, 0.3);  // in-band phase-reference offset
}

TEST(ExtractParameters, PhaseBasedFnAbsentWhenNotCrossed) {
  // Sample only well below wn: -90 never reached.
  const double wn = hzToRadPerSec(100.0);
  auto r = control::BodeResponse::compute(
      control::TransferFunction::secondOrderLowPass(wn, 0.43),
      control::logspace(wn / 100.0, wn / 10.0, 50));
  EXPECT_FALSE(extractParameters(r).natural_frequency_from_phase_hz.has_value());
}

class ExtractionAccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(ExtractionAccuracySweep, ZetaRecoveredAcrossDampingRange) {
  const double zeta = GetParam();
  const ExtractedParameters p = extractParameters(secondOrder(10.0, zeta));
  ASSERT_TRUE(p.zeta.has_value());
  EXPECT_NEAR(*p.zeta, zeta, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Zetas, ExtractionAccuracySweep,
                         ::testing::Values(0.15, 0.25, 0.35, 0.43, 0.55, 0.65));

}  // namespace
}  // namespace pllbist::bist
