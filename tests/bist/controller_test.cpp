#include "bist/controller.hpp"

#include "bist/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/units.hpp"
#include "support/test_configs.hpp"
#include "support/tolerance.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

TEST(SweepOptions, Validation) {
  SweepOptions opt = fastSweepOptions(StimulusKind::MultiToneFsk);
  EXPECT_NO_THROW(opt.validate());
  opt.modulation_frequencies_hz.clear();
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastSweepOptions(StimulusKind::MultiToneFsk);
  opt.modulation_frequencies_hz = {100.0, 50.0};  // not ascending
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastSweepOptions(StimulusKind::MultiToneFsk);
  opt.deviation_hz = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastSweepOptions(StimulusKind::MultiToneFsk);
  opt.fm_steps = 1;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(SweepOptions, DefaultSweepBracketsNaturalFrequency) {
  const auto sweep = SweepOptions::defaultSweep(8.0, 12);
  ASSERT_EQ(sweep.size(), 12u);
  EXPECT_NEAR(sweep.front(), 2.0, 1e-9);
  EXPECT_NEAR(sweep.back(), 40.0, 1e-9);
  EXPECT_THROW(SweepOptions::defaultSweep(-1.0), std::invalid_argument);
}

TEST(StimulusKind, Names) {
  EXPECT_STREQ(to_string(StimulusKind::MultiToneFsk), "multi-tone-fsk");
  EXPECT_STREQ(to_string(StimulusKind::TwoToneFsk), "two-tone-fsk");
  EXPECT_STREQ(to_string(StimulusKind::PureSineFm), "pure-sine-fm");
}

TEST(MeasuredResponse, ToBodeReferencesStaticDeviation) {
  MeasuredResponse r;
  r.nominal_vco_hz = 100e3;
  r.static_reference_deviation_hz = 1000.0;
  r.points.push_back({.modulation_hz = 50.0, .deviation_hz = 1000.0, .phase_deg = -5.0});
  r.points.push_back({.modulation_hz = 100.0, .deviation_hz = 500.0, .phase_deg = -45.0});
  const auto bode = r.toBode();
  ASSERT_EQ(bode.size(), 2u);
  EXPECT_DB_NEAR(bode.points()[0].magnitude_db, 0.0, 1e-9);
  EXPECT_DB_NEAR(bode.points()[1].magnitude_db, -6.0206, 1e-3);
}

TEST(MeasuredResponse, TimedOutPointsExcluded) {
  MeasuredResponse r;
  r.static_reference_deviation_hz = 1000.0;
  r.points.push_back({.modulation_hz = 50.0, .deviation_hz = 1000.0, .phase_deg = -5.0});
  r.points.push_back({.modulation_hz = 75.0, .deviation_hz = -1.0, .timed_out = true});
  r.points.push_back({.modulation_hz = 100.0, .deviation_hz = 500.0, .phase_deg = -45.0});
  EXPECT_EQ(r.toBode().size(), 2u);
}

TEST(MeasuredResponse, NoUsableReferenceThrows) {
  MeasuredResponse r;
  EXPECT_THROW(r.toBode(), std::domain_error);
  r.points.push_back({.modulation_hz = 50.0, .deviation_hz = -10.0});
  EXPECT_THROW(r.toBode(), std::domain_error);  // negative reference
}

TEST(BistController, RunIsOneShot) {
  BistController controller(fastTestConfig(), fastSweepOptions(StimulusKind::MultiToneFsk, 3));
  (void)controller.run();
  EXPECT_THROW(controller.run(), std::logic_error);
}

/// End-to-end: the measured response must match the capacitor-node theory
/// within BIST quantisation for each stimulus kind.
class SweepAccuracy : public ::testing::TestWithParam<StimulusKind> {};

TEST_P(SweepAccuracy, MatchesCapacitorNodeTheory) {
  const pll::PllConfig cfg = fastTestConfig();
  const SweepOptions opt = fastSweepOptions(GetParam(), 8);
  BistController controller(cfg, opt);
  const MeasuredResponse measured = controller.run();

  EXPECT_NEAR(measured.nominal_vco_hz, cfg.nominalVcoHz(), 25.0);
  EXPECT_NEAR(measured.static_reference_deviation_hz, 100.0 * cfg.divider_n, 60.0);

  const control::BodeResponse bode = measured.toBode();
  const control::TransferFunction cap = cfg.capacitorNodeTf();

  // Two-tone FSK is the paper's own negative result: a square modulation is
  // tracked step-by-step below ~fn/2 (the held peak includes the step
  // overshoot and the fundamental is 4/pi too large), so it only roughly
  // follows the sine/multi-tone curve. Fig. 11/12 show exactly this.
  const bool two_tone = GetParam() == StimulusKind::TwoToneFsk;
  const double fm_min = two_tone ? 100.0 : 0.0;
  const double mag_tol = two_tone ? 4.5 : 2.5;
  const double phase_tol = two_tone ? 45.0 : 25.0;

  int compared = 0;
  for (const control::BodePoint& p : bode.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    if (f < fm_min || f > 700.0) continue;  // quantisation dominates beyond ~3.5x fn
    EXPECT_DB_NEAR(p.magnitude_db, cap.magnitudeDbAt(p.omega_rad_per_s), mag_tol)
        << to_string(GetParam()) << " fm=" << f;
    EXPECT_PHASE_NEAR_DEG(p.phase_deg, cap.phaseDegAt(p.omega_rad_per_s), phase_tol)
        << to_string(GetParam()) << " fm=" << f;
    ++compared;
  }
  EXPECT_GE(compared, two_tone ? 4 : 5);
}

INSTANTIATE_TEST_SUITE_P(Stimuli, SweepAccuracy,
                         ::testing::Values(StimulusKind::MultiToneFsk, StimulusKind::TwoToneFsk,
                                           StimulusKind::PureSineFm));

TEST(BistController, ProgressCallbackFiresPerPoint) {
  const SweepOptions opt = fastSweepOptions(StimulusKind::MultiToneFsk, 4);
  BistController controller(fastTestConfig(), opt);
  int calls = 0;
  controller.onPointMeasured([&](const MeasuredPoint&) { ++calls; });
  (void)controller.run();
  EXPECT_EQ(calls, 4);
}

TEST(BistController, ExtractionRecoversDesignParameters) {
  const pll::PllConfig cfg = fastTestConfig();
  BistController controller(cfg, fastSweepOptions(StimulusKind::MultiToneFsk, 10));
  const auto bode = controller.run().toBode();
  const ExtractedParameters p = extractParameters(bode);
  ASSERT_TRUE(p.zeta.has_value());
  ASSERT_TRUE(p.natural_frequency_hz.has_value());
  EXPECT_NEAR(*p.zeta, 0.43, 0.08);
  EXPECT_NEAR(*p.natural_frequency_hz, 200.0, 20.0);
}


/// Headline-claim property sweep: across a grid of designed (fn, zeta) the
/// BIST sweep must recover the design parameters within tight tolerances.
class ExtractionGrid : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ExtractionGrid, RecoversDesignAcrossDevices) {
  const auto [fn, zeta] = GetParam();
  const pll::PllConfig cfg = pll::scaledTestConfig(fn, zeta);
  BistController controller(cfg, bist::quickSweepOptions(cfg, StimulusKind::MultiToneFsk, 9));
  const ExtractedParameters p = extractParameters(controller.run().toBode());
  ASSERT_TRUE(p.natural_frequency_hz.has_value()) << fn << " " << zeta;
  EXPECT_NEAR(*p.natural_frequency_hz, fn, 0.15 * fn) << zeta;
  ASSERT_TRUE(p.zeta.has_value());
  EXPECT_NEAR(*p.zeta, zeta, 0.12) << fn;
}

INSTANTIATE_TEST_SUITE_P(Devices, ExtractionGrid,
                         ::testing::Combine(::testing::Values(100.0, 200.0, 350.0),
                                            ::testing::Values(0.38, 0.5, 0.6)));

}  // namespace
}  // namespace pllbist::bist
