#include "bist/counters.hpp"

#include <gtest/gtest.h>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::bist {
namespace {

TEST(FrequencyCounter, CountsOverGate) {
  sim::Circuit c;
  const auto clk = c.addSignal("clk");
  sim::ClockSource src(c, clk, 1e-4);  // 10 kHz
  FrequencyCounter counter(c, clk);
  c.run(0.01);
  FrequencyCounter::Result result;
  bool done = false;
  counter.measure(0.1, [&](FrequencyCounter::Result r) {
    result = r;
    done = true;
  });
  EXPECT_TRUE(counter.busy());
  c.run(0.2);
  ASSERT_TRUE(done);
  EXPECT_FALSE(counter.busy());
  EXPECT_NEAR(static_cast<double>(result.count), 1000.0, 1.0);  // +/-1 quantisation
  EXPECT_NEAR(result.frequencyHz(), 10e3, 10.0);
  EXPECT_DOUBLE_EQ(result.gate_s, 0.1);
}

TEST(FrequencyCounter, PlusMinusOneQuantisation) {
  sim::Circuit c;
  const auto clk = c.addSignal("clk");
  sim::ClockSource src(c, clk, 3e-4);  // 3333.33 Hz
  FrequencyCounter counter(c, clk);
  long count = -1;
  counter.measure(0.01, [&](FrequencyCounter::Result r) { count = r.count; });
  c.run(0.02);
  // 33.3 edges in the gate: integer count.
  EXPECT_TRUE(count == 33 || count == 34) << count;
}

TEST(FrequencyCounter, RejectsOverlappingMeasurements) {
  sim::Circuit c;
  const auto clk = c.addSignal("clk");
  FrequencyCounter counter(c, clk);
  counter.measure(1.0, [](FrequencyCounter::Result) {});
  EXPECT_THROW(counter.measure(1.0, [](FrequencyCounter::Result) {}), std::logic_error);
  EXPECT_THROW(counter.measure(0.0, [](FrequencyCounter::Result) {}), std::invalid_argument);
}

TEST(FrequencyCounter, BackToBackMeasurements) {
  sim::Circuit c;
  const auto clk = c.addSignal("clk");
  sim::ClockSource src(c, clk, 1e-3);
  FrequencyCounter counter(c, clk);
  double f1 = 0.0, f2 = 0.0;
  counter.measure(0.05, [&](FrequencyCounter::Result r) { f1 = r.frequencyHz(); });
  c.run(0.1);
  counter.measure(0.05, [&](FrequencyCounter::Result r) { f2 = r.frequencyHz(); });
  c.run(0.2);
  EXPECT_NEAR(f1, 1000.0, 25.0);
  EXPECT_NEAR(f2, 1000.0, 25.0);
}

TEST(PhaseCounter, CountsWholeClockPeriods) {
  PhaseCounter pc(1e6);
  pc.arm(0.0);
  EXPECT_TRUE(pc.armed());
  EXPECT_EQ(pc.capture(123.4e-6), 123);
  EXPECT_FALSE(pc.armed());
}

TEST(PhaseCounter, CaptureWithoutArmThrows) {
  PhaseCounter pc(1e6);
  EXPECT_THROW(pc.capture(1.0), std::logic_error);
}

TEST(PhaseCounter, RearmsCleanly) {
  PhaseCounter pc(1e6);
  pc.arm(1.0);
  EXPECT_EQ(pc.capture(1.0 + 50e-6), 50);
  pc.arm(2.0);
  EXPECT_EQ(pc.capture(2.0 + 10e-6), 10);
}

TEST(PhaseCounter, Validation) {
  EXPECT_THROW(PhaseCounter(0.0), std::invalid_argument);
  EXPECT_THROW(PhaseCounter::phaseDelayDeg(10, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PhaseCounter::phaseDelayDeg(10, 1e6, -1.0), std::invalid_argument);
}

TEST(PhaseCounter, Eqn8PhaseDelay) {
  // eqn (8): 360 * (T*N)/Tmod, reported as a lag. N = 25000 counts of a
  // 1 MHz clock at 10 Hz modulation: delay = 25 ms = 90 degrees.
  EXPECT_NEAR(PhaseCounter::phaseDelayDeg(25000, 1e6, 10.0), -90.0, 1e-9);
  // A full period comes back as -360.
  EXPECT_NEAR(PhaseCounter::phaseDelayDeg(100000, 1e6, 10.0), -360.0, 1e-9);
  // Zero delay is zero phase.
  EXPECT_DOUBLE_EQ(PhaseCounter::phaseDelayDeg(0, 1e6, 10.0), 0.0);
}

TEST(PhaseCounter, ResolutionScalesWithClock) {
  // Faster test clock -> finer phase resolution at fixed modulation.
  const double coarse = PhaseCounter::phaseDelayDeg(1, 1e5, 10.0);
  const double fine = PhaseCounter::phaseDelayDeg(1, 1e6, 10.0);
  EXPECT_NEAR(coarse, 10.0 * fine, 1e-12);
}

}  // namespace
}  // namespace pllbist::bist
