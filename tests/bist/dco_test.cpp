#include "bist/dco.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/resample.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::bist {
namespace {

struct DcoBench {
  sim::Circuit c;
  sim::SignalId out;
  DcoBench() : out(c.addSignal("dco_out")) {}
};

Dco::Config config(double master = 1e6, int modulus = 1000) {
  Dco::Config cfg;
  cfg.master_clock_hz = master;
  cfg.initial_modulus = modulus;
  return cfg;
}

TEST(DcoConfig, Validation) {
  Dco::Config cfg = config();
  cfg.master_clock_hz = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = config();
  cfg.initial_modulus = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = config();
  cfg.start_time_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Dco, NominalFrequencyFromModulus) {
  DcoBench b;
  Dco dco(b.c, b.out, config());  // 1 MHz / 1000 = 1 kHz
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.02);
  const auto& rises = rec.risingEdges();
  ASSERT_GE(rises.size(), 10u);
  EXPECT_NEAR(rises[5] - rises[4], 1e-3, 1e-12);
}

TEST(Dco, EdgesLandExactlyOnMasterTicks) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.01);
  for (double t : rec.risingEdges()) {
    const double ticks = t * 1e6;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-6) << t;
  }
}

TEST(Dco, DutyCycleNearHalf) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.01);
  ASSERT_GE(rec.fallingEdges().size(), 3u);
  const double high = rec.fallingEdges()[2] - rec.risingEdges()[2];
  EXPECT_NEAR(high, 0.5e-3, 1e-9);
}

TEST(Dco, FrequencyHopLatchesAtRisingEdge) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.0035);  // mid-cycle
  dco.setFrequency(2000.0);
  b.c.run(0.02);
  auto freqs = dsp::frequencyFromEdges(rec.risingEdges());
  ASSERT_GE(freqs.size(), 6u);
  // Early periods 1 kHz, late periods 2 kHz, no intermediate runt period.
  EXPECT_NEAR(freqs.front().value, 1000.0, 1e-6);
  EXPECT_NEAR(freqs.back().value, 2000.0, 1e-6);
  for (const auto& f : freqs)
    EXPECT_TRUE(std::abs(f.value - 1000.0) < 1.0 || std::abs(f.value - 2000.0) < 1.0)
        << f.value;
}

TEST(Dco, QuantizationToNearestModulus) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  // 1 MHz master: 1003 Hz requests modulus 997 -> 1003.009 Hz.
  EXPECT_EQ(dco.modulusFor(1003.0), 997);
  EXPECT_NEAR(dco.quantize(1003.0), 1e6 / 997.0, 1e-9);
  // Exact divisors are exact.
  EXPECT_DOUBLE_EQ(dco.quantize(1000.0), 1000.0);
}

TEST(Dco, SetFrequencyReturnsAchieved) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  const double achieved = dco.setFrequency(1010.0);
  EXPECT_NEAR(achieved, 1e6 / 990.0, 1e-9);
  EXPECT_NEAR(dco.pendingFrequency(), achieved, 1e-12);
}

TEST(Dco, FrequencyRangeValidation) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  EXPECT_THROW(dco.modulusFor(0.0), std::invalid_argument);
  EXPECT_THROW(dco.modulusFor(6e5), std::invalid_argument);  // > master/2
  EXPECT_THROW(dco.setModulus(1), std::invalid_argument);
  EXPECT_THROW(dco.frequencyOf(0), std::invalid_argument);
}

TEST(Dco, ResolutionMatchesLocalDifference) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  const double res = dco.resolutionAt(1000.0);
  EXPECT_NEAR(res, 1e6 / 1000.0 - 1e6 / 1001.0, 1e-12);
}

TEST(DcoEq2, PaperResolutionFormula) {
  // Fres = Fin^2/(Fref + Fin).
  EXPECT_NEAR(Dco::resolutionEq2(1000.0, 1e6), 1e6 / 1.001e6, 1e-9);
  // The paper's infeasible case: Fin = 10 MHz from a 100 MHz master gives
  // ~0.9 MHz steps — far coarser than any useful deviation.
  EXPECT_GT(Dco::resolutionEq2(10e6, 100e6), 0.9e6);
  EXPECT_THROW(Dco::resolutionEq2(-1.0, 1e6), std::invalid_argument);
}

TEST(DcoEq2, MatchesSimulatedResolution) {
  DcoBench b;
  Dco dco(b.c, b.out, config());
  EXPECT_NEAR(dco.resolutionAt(1000.0), Dco::resolutionEq2(1000.0, 1e6), 0.01);
}

TEST(Dco, StartTimeRespected) {
  DcoBench b;
  Dco::Config cfg = config();
  cfg.start_time_s = 5e-3;
  Dco dco(b.c, b.out, cfg);
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(4e-3);
  EXPECT_TRUE(rec.risingEdges().empty());
  b.c.run(10e-3);
  ASSERT_FALSE(rec.risingEdges().empty());
  EXPECT_GE(rec.risingEdges().front(), 5e-3);
}

}  // namespace
}  // namespace pllbist::bist
