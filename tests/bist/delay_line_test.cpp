#include "bist/delay_line.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "common/units.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"
#include "support/test_configs.hpp"
#include "support/tolerance.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

struct LineBench {
  sim::Circuit c;
  sim::SignalId in;
  sim::SignalId out;
  sim::SignalId marker;
  LineBench() : in(c.addSignal("in")), out(c.addSignal("out")), marker(c.addSignal("marker")) {}
};

DelayLineModulator::Config lineConfig() {
  DelayLineModulator::Config cfg;
  cfg.taps = 9;
  cfg.tap_delay_s = 5e-6;  // span 40 us < Tref/4 = 250 us
  cfg.steps = 10;
  cfg.nominal_hz = 1000.0;
  return cfg;
}

TEST(DelayLineConfig, Validation) {
  DelayLineModulator::Config cfg = lineConfig();
  EXPECT_NO_THROW(cfg.validate());
  cfg.taps = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = lineConfig();
  cfg.tap_delay_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = lineConfig();
  cfg.tap_delay_s = 100e-6;  // span 800 us > Tref/4
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(DelayLine, IdleDelaysByMidTap) {
  LineBench b;
  DelayLineModulator line(b.c, b.in, b.out, b.marker, lineConfig());
  sim::EdgeRecorder in_rec(b.c, b.in);
  sim::EdgeRecorder out_rec(b.c, b.out);
  sim::ClockSource src(b.c, b.in, 1e-3, 1e-5);
  b.c.run(0.02);
  ASSERT_GE(out_rec.risingEdges().size(), 3u);
  // Mid tap of 9 taps = index 4 -> delay (1+4)*5us = 25 us.
  EXPECT_NEAR(out_rec.risingEdges()[1] - in_rec.risingEdges()[1], 25e-6, 1e-9);
}

TEST(DelayLine, TapProgramIsSampledSine) {
  LineBench b;
  DelayLineModulator line(b.c, b.in, b.out, b.marker, lineConfig());
  EXPECT_EQ(line.tapForSlot(0), 4);            // mid
  EXPECT_EQ(line.tapForSlot(10), 4);           // wraps
  // Inverted program: phase crest (minimum delay) in the first half.
  EXPECT_LE(line.tapForSlot(2), 1);
  EXPECT_GE(line.tapForSlot(7), 7);
  // Symmetry about the midpoint.
  EXPECT_EQ(line.tapForSlot(1) + line.tapForSlot(6), 8);
}

TEST(DelayLine, PhaseDeviationFormula) {
  LineBench b;
  DelayLineModulator line(b.c, b.in, b.out, b.marker, lineConfig());
  // (taps-1)/2 * tap_delay * 2*pi*fref = 4 * 5us * 2pi * 1000.
  EXPECT_NEAR(line.phaseDeviationRad(), 4.0 * 5e-6 * kTwoPi * 1000.0, 1e-12);
}

TEST(DelayLine, ModulationSwingsOutputPhase) {
  LineBench b;
  DelayLineModulator line(b.c, b.in, b.out, b.marker, lineConfig());
  sim::ClockSource src(b.c, b.in, 1e-3, 1e-5);
  line.start(20.0);
  sim::EdgeRecorder in_rec(b.c, b.in);
  sim::EdgeRecorder out_rec(b.c, b.out);
  b.c.run(0.25);
  // Delay of each output edge relative to its input edge spans the line.
  double dmin = 1.0, dmax = 0.0;
  const size_t n = std::min(in_rec.risingEdges().size(), out_rec.risingEdges().size());
  for (size_t i = 1; i < n; ++i) {
    const double d = out_rec.risingEdges()[i] - in_rec.risingEdges()[i];
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
  }
  EXPECT_NEAR(dmin, 5e-6, 1e-9);    // tap 0 -> (1+0)*5us
  EXPECT_NEAR(dmax, 45e-6, 1e-9);   // tap 8 -> (1+8)*5us
}

TEST(DelayLine, MarkerOncePerPeriod) {
  LineBench b;
  DelayLineModulator line(b.c, b.in, b.out, b.marker, lineConfig());
  sim::ClockSource src(b.c, b.in, 1e-3, 1e-5);
  line.start(20.0);
  sim::EdgeRecorder marker(b.c, b.marker);
  b.c.run(0.3);
  ASSERT_GE(marker.risingEdges().size(), 4u);
  for (size_t i = 1; i < marker.risingEdges().size(); ++i)
    EXPECT_NEAR(marker.risingEdges()[i] - marker.risingEdges()[i - 1], 0.05, 1e-6);
}

TEST(DelayLine, StopReturnsToMidTapAndSilencesMarker) {
  LineBench b;
  DelayLineModulator line(b.c, b.in, b.out, b.marker, lineConfig());
  sim::ClockSource src(b.c, b.in, 1e-3, 1e-5);
  line.start(20.0);
  b.c.run(0.1);
  line.stop();
  sim::EdgeRecorder marker(b.c, b.marker);
  b.c.run(0.3);
  EXPECT_TRUE(marker.risingEdges().empty());
  EXPECT_FALSE(line.running());
}

/// End-to-end: a delay-line PM sweep recovers the same capacitor-node
/// response as the FM methods, normalised absolutely per point.
TEST(DelayLinePmSweep, MatchesCapacitorNodeTheory) {
  const pll::PllConfig cfg = fastTestConfig();
  SweepOptions opt = fastSweepOptions(StimulusKind::DelayLinePm, 7);
  opt.stimulus = StimulusKind::DelayLinePm;
  BistController controller(cfg, opt);
  const MeasuredResponse measured = controller.run();
  EXPECT_DOUBLE_EQ(measured.static_reference_deviation_hz, 0.0);  // PM: no DC ref

  const control::BodeResponse bode = measured.toBode();
  const control::TransferFunction cap = cfg.capacitorNodeTf();
  int compared = 0;
  for (const control::BodePoint& p : bode.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    if (f < 100.0 || f > 700.0) continue;  // PM SNR is poorest at low fm
    EXPECT_DB_NEAR(p.magnitude_db, cap.magnitudeDbAt(p.omega_rad_per_s), 3.0) << f;
    EXPECT_PHASE_NEAR_DEG(p.phase_deg, cap.phaseDegAt(p.omega_rad_per_s), 30.0) << f;
    ++compared;
  }
  EXPECT_GE(compared, 4);
}

TEST(DelayLinePmSweep, ParameterExtractionStillWorks) {
  const pll::PllConfig cfg = fastTestConfig();
  SweepOptions opt = fastSweepOptions(StimulusKind::DelayLinePm, 9);
  opt.stimulus = StimulusKind::DelayLinePm;
  BistController controller(cfg, opt);
  const ExtractedParameters p = extractParameters(controller.run().toBode());
  ASSERT_TRUE(p.natural_frequency_hz.has_value());
  EXPECT_NEAR(*p.natural_frequency_hz, 200.0, 30.0);
}

}  // namespace
}  // namespace pllbist::bist
