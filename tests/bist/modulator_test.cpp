#include "bist/modulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "dsp/resample.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::bist {
namespace {

struct ModBench {
  sim::Circuit c;
  sim::SignalId out;
  sim::SignalId marker;
  Dco dco;
  ModBench()
      : out(c.addSignal("out")),
        marker(c.addSignal("marker")),
        dco(c, out, Dco::Config{1e6, 1000, 0.0}) {}
};

FskModulator::Config modConfig(StimulusWaveform wf = StimulusWaveform::MultiToneFsk,
                               int steps = 10) {
  FskModulator::Config cfg;
  cfg.waveform = wf;
  cfg.steps = steps;
  cfg.nominal_hz = 1000.0;
  cfg.deviation_hz = 10.0;
  return cfg;
}

TEST(FskModulatorConfig, Validation) {
  FskModulator::Config cfg = modConfig();
  cfg.steps = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = modConfig();
  cfg.deviation_hz = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = modConfig();
  cfg.deviation_hz = 2000.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(FskModulator, MultiToneProgramIsSampledSine) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig());
  for (int k = 0; k < 10; ++k) {
    const double expected = 1000.0 + 10.0 * std::sin(kTwoPi * k / 10.0);
    EXPECT_NEAR(mod.programFrequency(k), expected, 1e-9) << k;
  }
  // Symmetry: second half mirrors the first.
  EXPECT_NEAR(mod.programFrequency(1) + mod.programFrequency(6), 2000.0, 1e-9);
}

TEST(FskModulator, TwoToneProgramIsSquare) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig(StimulusWaveform::TwoToneFsk));
  for (int k = 0; k < 5; ++k) EXPECT_DOUBLE_EQ(mod.programFrequency(k), 1010.0);
  for (int k = 5; k < 10; ++k) EXPECT_DOUBLE_EQ(mod.programFrequency(k), 990.0);
}

TEST(FskModulator, StartRequiresPositiveModulation) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig());
  EXPECT_THROW(mod.start(0.0), std::invalid_argument);
  EXPECT_FALSE(mod.running());
}

TEST(FskModulator, OutputSwingsAcrossProgramRange) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig());
  mod.start(5.0);  // slot width 20 ms >> carrier period
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.6);  // three modulation periods
  auto freqs = dsp::frequencyFromEdges(rec.risingEdges());
  double lo = 1e12, hi = 0.0;
  for (const auto& f : freqs) {
    lo = std::min(lo, f.value);
    hi = std::max(hi, f.value);
  }
  // DCO-quantised: ~1 Hz steps at 1 kHz from a 1 MHz master.
  EXPECT_NEAR(hi, 1010.0, 1.5);
  EXPECT_NEAR(lo, 990.0, 1.5);
}

TEST(FskModulator, MarkerOncePerPeriodAtCrest) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig());
  mod.start(10.0);
  sim::EdgeRecorder rec(b.c, b.marker);
  b.c.run(0.55);
  const auto& rises = rec.risingEdges();
  ASSERT_GE(rises.size(), 4u);
  for (size_t i = 1; i < rises.size(); ++i)
    EXPECT_NEAR(rises[i] - rises[i - 1], 0.1, 1e-6);
  // Marker sits at quarter period plus half a slot (ZOH fundamental crest).
  const double period = 0.1, slot = period / 10.0;
  EXPECT_NEAR(rises[0], 0.25 * period + 0.5 * slot, 1e-9);
}

TEST(FskModulator, StopReturnsToNominalAndSilencesMarker) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig());
  mod.start(10.0);
  b.c.run(0.25);
  mod.stop();
  EXPECT_FALSE(mod.running());
  sim::EdgeRecorder marker(b.c, b.marker);
  sim::EdgeRecorder out(b.c, b.out);
  b.c.run(0.5);
  EXPECT_TRUE(marker.risingEdges().empty());
  auto freqs = dsp::frequencyFromEdges(out.risingEdges());
  ASSERT_FALSE(freqs.empty());
  EXPECT_NEAR(freqs.back().value, 1000.0, 1.5);
}

TEST(FskModulator, ParkHoldsCrestFrequency) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig());
  mod.park();
  sim::EdgeRecorder out(b.c, b.out);
  b.c.run(0.1);
  auto freqs = dsp::frequencyFromEdges(out.risingEdges());
  ASSERT_GE(freqs.size(), 10u);
  for (size_t i = 3; i < freqs.size(); ++i) EXPECT_NEAR(freqs[i].value, 1010.0, 1.5);
}

TEST(FskModulator, RestartReplacesProgram) {
  ModBench b;
  FskModulator mod(b.c, b.dco, b.marker, modConfig());
  mod.start(5.0);
  b.c.run(0.12);
  mod.start(50.0);  // retune mid-flight
  sim::EdgeRecorder marker(b.c, b.marker);
  b.c.run(0.12 + 0.1);
  // markers at the new 20 ms period only
  const auto& rises = marker.risingEdges();
  ASSERT_GE(rises.size(), 3u);
  for (size_t i = 1; i < rises.size(); ++i)
    EXPECT_NEAR(rises[i] - rises[i - 1], 0.02, 1e-6);
}

TEST(FskModulator, StepCountControlsGranularity) {
  ModBench b1, b2;
  FskModulator coarse(b1.c, b1.dco, b1.marker, modConfig(StimulusWaveform::MultiToneFsk, 4));
  FskModulator fine(b2.c, b2.dco, b2.marker, modConfig(StimulusWaveform::MultiToneFsk, 20));
  // distinct program levels (ignoring duplicates)
  auto levels = [](FskModulator& m, int steps) {
    std::vector<double> v;
    for (int k = 0; k < steps; ++k) v.push_back(m.programFrequency(k));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end(),
                        [](double a, double b) { return std::abs(a - b) < 1e-9; }),
            v.end());
    return v.size();
  };
  EXPECT_LT(levels(coarse, 4), levels(fine, 20));
}

}  // namespace
}  // namespace pllbist::bist
