#include <gtest/gtest.h>

#include <stdexcept>

#include "bist/controller.hpp"
#include "bist/resilient_sweep.hpp"
#include "bist/sequencer.hpp"
#include "bist/step_test.hpp"
#include "common/status.hpp"
#include "support/test_configs.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

SweepOptions goodOptions() { return fastSweepOptions(StimulusKind::MultiToneFsk, 4); }

/// Every rejection must carry InvalidArgument plus a context naming the
/// offending field — the taxonomy's contract with callers.
void expectRejects(const Status& s, const std::string& needle) {
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.kind(), Status::Kind::InvalidArgument) << s.toString();
  EXPECT_NE(s.context().find(needle), std::string::npos)
      << "context \"" << s.context() << "\" does not mention \"" << needle << "\"";
}

TEST(SweepOptionsValidation, AcceptsTheFastDefaults) {
  EXPECT_TRUE(goodOptions().check().ok());
  EXPECT_TRUE(goodOptions().check(fastTestConfig()).ok());
}

TEST(SweepOptionsValidation, RejectsTooFewFmSteps) {
  SweepOptions opt = goodOptions();
  opt.fm_steps = 1;
  expectRejects(opt.check(), "fm_steps");
}

TEST(SweepOptionsValidation, RejectsNonPositiveDeviation) {
  SweepOptions opt = goodOptions();
  opt.deviation_hz = 0.0;
  expectRejects(opt.check(), "deviation_hz");
}

TEST(SweepOptionsValidation, RejectsEmptyModulationList) {
  SweepOptions opt = goodOptions();
  opt.modulation_frequencies_hz.clear();
  expectRejects(opt.check(), "modulation_frequencies_hz");
}

TEST(SweepOptionsValidation, RejectsNonPositiveModulationFrequency) {
  SweepOptions opt = goodOptions();
  opt.modulation_frequencies_hz = {50.0, -10.0, 200.0};
  expectRejects(opt.check(), "modulation_frequencies_hz[1]");
}

TEST(SweepOptionsValidation, RejectsNonAscendingModulationFrequencies) {
  SweepOptions opt = goodOptions();
  opt.modulation_frequencies_hz = {50.0, 200.0, 200.0};
  const Status s = opt.check();
  expectRejects(s, "modulation_frequencies_hz[2]");
  expectRejects(s, "ascending");
}

TEST(SweepOptionsValidation, RejectsNonPositiveMasterClock) {
  SweepOptions opt = goodOptions();
  opt.master_clock_hz = 0.0;
  expectRejects(opt.check(), "master_clock_hz");
  opt.master_clock_hz = -1e6;
  expectRejects(opt.check(), "master_clock_hz");
}

TEST(SweepOptionsValidation, RejectsNegativeJitterAndWaits) {
  SweepOptions opt = goodOptions();
  opt.ref_edge_jitter_rms_s = -1e-9;
  expectRejects(opt.check(), "ref_edge_jitter_rms_s");
  opt = goodOptions();
  opt.lock_wait_s = -1.0;
  expectRejects(opt.check(), "lock_wait_s");
  opt = goodOptions();
  opt.static_settle_s = 0.0;
  expectRejects(opt.check(), "static_settle_s");
}

TEST(SweepOptionsValidation, RejectsBadPmKnobs) {
  SweepOptions opt = goodOptions();
  opt.pm_taps = 1;
  expectRejects(opt.check(), "pm_taps");
  opt = goodOptions();
  opt.pm_tap_delay_s = -1e-6;
  expectRejects(opt.check(), "pm_tap_delay_s");
}

/// Cross-check against the device: a deviation at/above the reference
/// frequency would swing the FM program through 0 Hz.
TEST(SweepOptionsValidation, RejectsDeviationExceedingReferenceFrequency) {
  const pll::PllConfig cfg = fastTestConfig();  // fref = 10 kHz
  SweepOptions opt = goodOptions();
  opt.deviation_hz = cfg.ref_frequency_hz;  // exactly at the limit: rejected
  EXPECT_TRUE(opt.check().ok()) << "options-only check must pass";
  expectRejects(opt.check(cfg), "reference frequency");
  EXPECT_THROW(BistController(cfg, opt), std::invalid_argument);
}

TEST(SweepOptionsValidation, RejectsMasterClockTooSlowForReference) {
  const pll::PllConfig cfg = fastTestConfig();
  SweepOptions opt = goodOptions();
  opt.master_clock_hz = cfg.ref_frequency_hz;  // DCO cannot synthesise fref
  expectRejects(opt.check(cfg), "master_clock_hz");
}

/// The exception bridge keeps the historical std::invalid_argument type.
TEST(SweepOptionsValidation, ValidateThrowsInvalidArgumentWithContext) {
  SweepOptions opt = goodOptions();
  opt.fm_steps = 0;
  try {
    opt.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fm_steps"), std::string::npos) << e.what();
  }
}

TEST(SequencerOptionsValidation, RejectsEachBadField) {
  TestSequencer::Options opt;
  opt.settle_periods = 0;
  expectRejects(opt.check(), "settle_periods");
  opt = {};
  opt.average_periods = 0;
  expectRejects(opt.check(), "average_periods");
  opt = {};
  opt.freq_gate_s = 0.0;
  expectRejects(opt.check(), "freq_gate_s");
  opt = {};
  opt.hold_to_gate_delay_s = -1e-6;
  expectRejects(opt.check(), "hold_to_gate_delay_s");
  opt = {};
  opt.timeout_periods = 5.0;  // < settle + average default
  expectRejects(opt.check(), "timeout_periods");
  opt = {};
  opt.peak_qualify_fraction = 0.5;
  expectRejects(opt.check(), "peak_qualify_fraction");
}

TEST(StepTestOptionsValidation, RejectsEachBadField) {
  StepTestOptions opt;
  opt.step_fraction = 0.0;
  expectRejects(opt.check(), "step_fraction");
  opt = {};
  opt.step_fraction = 0.25;
  expectRejects(opt.check(), "step_fraction");
  opt = {};
  opt.lock_wait_s = 0.0;
  expectRejects(opt.check(), "lock_wait_s");
  opt = {};
  opt.freq_gate_s = 0.0;
  expectRejects(opt.check(), "freq_gate_s");
  opt = {};
  opt.lock_cycles = 0;
  expectRejects(opt.check(), "lock_cycles");
}

TEST(ResilientSweepOptionsValidation, RejectsEachBadField) {
  ResilientSweepOptions opt;
  opt.max_attempts = 0;
  expectRejects(opt.check(), "max_attempts");
  opt = {};
  opt.settle_backoff = 0.5;
  expectRejects(opt.check(), "settle_backoff");
  opt = {};
  opt.gate_backoff = 0.0;
  expectRejects(opt.check(), "gate_backoff");
  opt = {};
  opt.relock_grace_periods = -1.0;
  expectRejects(opt.check(), "relock_grace_periods");
  opt = {};
  opt.relock_wait_periods = 0.0;
  expectRejects(opt.check(), "relock_wait_periods");
  opt = {};
  opt.lock_cycles = 0;
  expectRejects(opt.check(), "lock_cycles");
}

TEST(StatusTaxonomy, FormatsKindAndContext) {
  const Status s = Status::makef(Status::Kind::Timeout, "watchdog fired at t = %g s", 1.5);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.kind(), Status::Kind::Timeout);
  EXPECT_EQ(s.toString(), "timeout: watchdog fired at t = 1.5 s");
  EXPECT_STREQ(to_string(Status::Kind::RelockFailed), "relock-failed");
  EXPECT_EQ(Status().toString(), "ok");
}

TEST(StatusTaxonomy, ThrowBridgePreservesExceptionTypes) {
  EXPECT_NO_THROW(Status().throwIfError());
  EXPECT_THROW(Status::make(Status::Kind::InvalidArgument, "x").throwIfError(),
               std::invalid_argument);
  EXPECT_THROW(Status::make(Status::Kind::Timeout, "x").throwIfError(), std::runtime_error);
}

}  // namespace
}  // namespace pllbist::bist
