#include "bist/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "bist/testbench.hpp"
#include "common/assert.hpp"
#include "support/test_configs.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

ResilientResponse runFarm(const SweepOptions& sweep, int jobs,
                          uint64_t fault_seed = 0) {
  ParallelSweepOptions popt;
  popt.jobs = jobs;
  ParallelSweep engine(fastTestConfig(), sweep, popt);
  if (fault_seed != 0) {
    engine.onPointTestbench([fault_seed](std::size_t index, SweepTestbench& bench) {
      // Per-point derived seed: the injected fault stream for point i is a
      // pure function of (base seed, i), never of the worker or schedule.
      sim::FaultInjector& inj = bench.faultInjector(pointSeed(fault_seed, index));
      inj.dropEdges(bench.stimulusMarker(), 0.2);
    });
  }
  return engine.run();
}

void expectBitIdentical(const ResilientResponse& a, const ResilientResponse& b) {
  ASSERT_EQ(a.response.points.size(), b.response.points.size());
  for (std::size_t i = 0; i < a.response.points.size(); ++i) {
    const MeasuredPoint& pa = a.response.points[i];
    const MeasuredPoint& pb = b.response.points[i];
    // EXPECT_EQ, not NEAR: the contract is bit-identical doubles.
    EXPECT_EQ(pa.modulation_hz, pb.modulation_hz) << "point " << i;
    EXPECT_EQ(pa.deviation_hz, pb.deviation_hz) << "point " << i;
    EXPECT_EQ(pa.phase_deg, pb.phase_deg) << "point " << i;
    EXPECT_EQ(pa.unity_gain_deviation_hz, pb.unity_gain_deviation_hz) << "point " << i;
    EXPECT_EQ(pa.quality, pb.quality) << "point " << i;
    EXPECT_EQ(pa.attempts, pb.attempts) << "point " << i;
    EXPECT_EQ(pa.timed_out, pb.timed_out) << "point " << i;
  }
  EXPECT_EQ(a.response.nominal_vco_hz, b.response.nominal_vco_hz);
  EXPECT_EQ(a.response.static_reference_deviation_hz, b.response.static_reference_deviation_hz);
  EXPECT_EQ(a.report.points_total, b.report.points_total);
  EXPECT_EQ(a.report.ok, b.report.ok);
  EXPECT_EQ(a.report.retried, b.report.retried);
  EXPECT_EQ(a.report.degraded, b.report.degraded);
  EXPECT_EQ(a.report.dropped, b.report.dropped);
  EXPECT_EQ(a.report.attempts_total, b.report.attempts_total);
  EXPECT_EQ(a.report.relocks, b.report.relocks);
  EXPECT_EQ(a.report.sim_time_s, b.report.sim_time_s);
  EXPECT_EQ(a.status.kind(), b.status.kind());
}

TEST(ParallelSweep, JobsCountInvariance) {
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  const ResilientResponse serial = runFarm(sweep, 1);
  const ResilientResponse parallel = runFarm(sweep, 4);
  expectBitIdentical(serial, parallel);
  EXPECT_GT(serial.report.usable(), 0);
}

TEST(ParallelSweep, DefaultJobsMatchesSerialReference) {
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 5);
  const ResilientResponse serial = runFarm(sweep, 1);
  const ResilientResponse automatic = runFarm(sweep, 0);  // hardware concurrency
  expectBitIdentical(serial, automatic);
}

TEST(ParallelSweep, MergedReportAccountsForEveryPoint) {
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  const ResilientResponse r = runFarm(sweep, 3);
  EXPECT_EQ(r.report.points_total, 6);
  EXPECT_EQ(r.report.ok + r.report.retried + r.report.degraded + r.report.dropped, 6);
  EXPECT_EQ(r.response.points.size(), 6u);
  EXPECT_GT(r.report.sim_time_s, 0.0);
  EXPECT_GT(r.report.wall_time_s, 0.0);
}

TEST(ParallelSweep, PointsStayInAscendingFrequencyOrder) {
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  const ResilientResponse r = runFarm(sweep, 4);
  ASSERT_EQ(r.response.points.size(), sweep.modulation_frequencies_hz.size());
  for (std::size_t i = 0; i < r.response.points.size(); ++i)
    EXPECT_EQ(r.response.points[i].modulation_hz, sweep.modulation_frequencies_hz[i]);
}

TEST(ParallelSweep, ProgressCallbackSeesEveryPointExactlyOnce) {
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 5);
  ParallelSweepOptions popt;
  popt.jobs = 3;
  ParallelSweep engine(fastTestConfig(), sweep, popt);
  std::set<std::size_t> seen;  // progress_ is serialised by the farm's mutex
  engine.onPointMeasured([&](std::size_t index, const MeasuredPoint&) { seen.insert(index); });
  (void)engine.run();
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(ParallelSweep, FaultInjectionDeterministicAcrossJobCounts) {
  // The worker that happens to run a point must not affect its injected
  // fault stream: seeds derive from the point index alone.
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 5);
  const ResilientResponse serial = runFarm(sweep, 1, /*fault_seed=*/42);
  const ResilientResponse parallel = runFarm(sweep, 4, /*fault_seed=*/42);
  expectBitIdentical(serial, parallel);
}

TEST(ParallelSweep, JitterSeedsDeriveFromPointIndex) {
  SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 4);
  sweep.ref_edge_jitter_rms_s = 2e-7;
  sweep.jitter_seed = 7;
  const ResilientResponse serial = runFarm(sweep, 1);
  const ResilientResponse parallel = runFarm(sweep, 4);
  expectBitIdentical(serial, parallel);
}

TEST(ParallelSweep, PointSeedIsStableAndDistinct) {
  const uint64_t a0 = pointSeed(1, 0);
  EXPECT_EQ(a0, pointSeed(1, 0));  // pure function
  std::set<uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) seeds.insert(pointSeed(1, i));
  EXPECT_EQ(seeds.size(), 64u);               // no collisions across indices
  EXPECT_NE(pointSeed(1, 0), pointSeed(2, 0));  // base seed matters
  EXPECT_NE(pointSeed(1, 0), 0u);               // never the degenerate seed
}

TEST(ParallelSweep, SinglePointOptionsRestrictToOneFrequency) {
  SweepOptions base = fastSweepOptions(StimulusKind::MultiToneFsk, 5);
  base.jitter_seed = 99;
  const SweepOptions p2 = singlePointOptions(base, 2);
  ASSERT_EQ(p2.modulation_frequencies_hz.size(), 1u);
  EXPECT_EQ(p2.modulation_frequencies_hz[0], base.modulation_frequencies_hz[2]);
  EXPECT_NE(p2.jitter_seed, base.jitter_seed);
  EXPECT_NE(p2.jitter_seed, singlePointOptions(base, 3).jitter_seed);
  EXPECT_EQ(p2.jitter_seed, singlePointOptions(base, 2).jitter_seed);  // reproducible
}

TEST(ParallelSweep, RejectsNegativeJobs) {
  ParallelSweepOptions popt;
  popt.jobs = -2;
  EXPECT_FALSE(popt.check().ok());
  EXPECT_THROW(popt.validate(), std::invalid_argument);
}

TEST(ParallelSweep, RunIsSingleUse) {
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 2);
  ParallelSweep engine(fastTestConfig(), sweep, {});
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

TEST(ParallelSweep, RequestStopAfterFirstPointIsDeterministicAtOneJob) {
  // Serial farm: stop lands between points, so exactly the triggering point
  // is measured and every later slot is a Cancelled drop.
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 5);
  ParallelSweep engine(fastTestConfig(), sweep, {});
  engine.onPointMeasured([&](std::size_t, const MeasuredPoint&) { engine.requestStop(); });
  const ResilientResponse r = engine.run();
  ASSERT_EQ(r.response.points.size(), 5u);
  EXPECT_EQ(r.report.points_total, 5);
  EXPECT_EQ(r.report.ok, 1);
  EXPECT_EQ(r.report.dropped, 4);
  EXPECT_EQ(r.status.kind(), Status::Kind::Cancelled);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(r.response.points[i].quality, PointQuality::Dropped) << "point " << i;
    EXPECT_EQ(r.response.points[i].status.kind(), Status::Kind::Cancelled) << "point " << i;
  }
}

TEST(ParallelSweep, RequestStopMidCampaignDrainsWorkersWithoutDoubleCounting) {
  // Three workers over six points; the first completion trips the stop.
  // Claimed points drain normally, unclaimed points come back as Cancelled
  // drops, and the merged report still accounts for every slot once.
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  ParallelSweepOptions popt;
  popt.jobs = 3;
  ParallelSweep engine(fastTestConfig(), sweep, popt);
  std::atomic<int> measured{0};
  engine.onPointMeasured([&](std::size_t, const MeasuredPoint&) {
    if (measured.fetch_add(1) == 0) engine.requestStop();
  });
  const ResilientResponse r = engine.run();  // run() joins the pool
  ASSERT_EQ(r.response.points.size(), 6u);
  EXPECT_EQ(r.report.points_total, 6);
  EXPECT_EQ(r.report.ok + r.report.retried + r.report.degraded + r.report.dropped, 6);
  // Workers check the stop token before claiming, so at most the three
  // in-flight points finish: the rest must be cancelled, never simulated.
  EXPECT_GE(r.report.dropped, 3);
  EXPECT_GE(measured.load(), 1);
  EXPECT_LE(measured.load(), 3);
  EXPECT_EQ(r.status.kind(), Status::Kind::Cancelled);
  int cancelled = 0;
  for (const MeasuredPoint& p : r.response.points)
    if (p.status.kind() == Status::Kind::Cancelled) {
      EXPECT_EQ(p.quality, PointQuality::Dropped);
      // A point interrupted mid-measurement consumed one attempt; a point
      // no worker ever claimed consumed none. Never more than one: stop
      // suppresses retries.
      EXPECT_LE(p.attempts, 1);
      ++cancelled;
    }
  EXPECT_EQ(cancelled, r.report.dropped);
}

TEST(TestbenchFactory, BenchesAreIndependent) {
  const SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 2);
  TestbenchFactory factory(fastTestConfig(), sweep);
  auto bench_a = factory.make();
  auto bench_b = factory.make();
  // Advancing one bench's circuit leaves the other untouched.
  bench_a->circuit().run(0.01);
  EXPECT_DOUBLE_EQ(bench_a->circuit().now(), 0.01);
  EXPECT_DOUBLE_EQ(bench_b->circuit().now(), 0.0);
  // The factory validated once; the recipe it hands out matches.
  EXPECT_EQ(factory.options().modulation_frequencies_hz.size(), 2u);
}

}  // namespace
}  // namespace pllbist::bist
