#include "bist/peak_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "pll/cppll.hpp"
#include "pll/probes.hpp"
#include "pll/sources.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"
#include "sim/trace.hpp"
#include "support/test_configs.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastTestConfig;

TEST(PeakDetectorDelays, Validation) {
  PeakDetectorDelays d;
  EXPECT_NO_THROW(d.validate());
  d.clock_delay_s = 0.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = PeakDetectorDelays{};
  d.inverter_delay_s = d.clock_delay_s;  // must exceed clock delay
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

/// Open-loop truth table: drive REF/FB pulse trains directly.
struct OpenLoopBench {
  sim::Circuit c;
  sim::SignalId ref;
  sim::SignalId fb;
  PeakDetector det;

  OpenLoopBench()
      : ref(c.addSignal("ref")),
        fb(c.addSignal("fb")),
        det(c, ref, fb, pll::PfdDelays{}, PeakDetectorDelays{}) {}

  void drive(int cycles, double period, double skew, double start) {
    for (int k = 0; k < cycles; ++k) {
      const double t = start + k * period;
      c.scheduleSet(ref, t, true);
      c.scheduleSet(ref, t + period / 2, false);
      c.scheduleSet(fb, t + skew, true);
      c.scheduleSet(fb, t + skew + period / 2, false);
    }
    c.run(start + (cycles + 1) * period);
  }
};

TEST(PeakDetector, MfreqHighWhileRefLeads) {
  OpenLoopBench b;
  b.drive(10, 100e-6, 5e-6, 1e-5);  // fb lags -> ref leads
  EXPECT_TRUE(b.c.value(b.det.mfreq()));
}

TEST(PeakDetector, MfreqLowWhileRefLags) {
  OpenLoopBench b;
  b.drive(10, 100e-6, -5e-6, 1e-5);  // fb leads
  EXPECT_FALSE(b.c.value(b.det.mfreq()));
}

TEST(PeakDetector, TransitionOnLeadLagReversal) {
  OpenLoopBench b;
  sim::EdgeRecorder mfreq(b.c, b.det.mfreq());
  b.drive(10, 100e-6, 5e-6, 1e-5);
  b.drive(10, 100e-6, -5e-6, b.c.now() + 1e-5);
  ASSERT_FALSE(mfreq.fallingEdges().empty());
  EXPECT_FALSE(b.c.value(b.det.mfreq()));
}

TEST(PeakDetector, GlitchesDoNotCorruptSample) {
  // Aligned inputs (dead-zone glitches only): MFREQ must hold its previous
  // state, not chatter.
  OpenLoopBench b;
  b.drive(5, 100e-6, 5e-6, 1e-5);  // establish MFREQ = 1
  sim::EdgeRecorder mfreq(b.c, b.det.mfreq());
  b.drive(20, 100e-6, 0.0, b.c.now() + 1e-5);
  // The tiny residual skews inside the glitch window may sample either way
  // once, but there must be no per-cycle chatter.
  EXPECT_LE(mfreq.risingEdges().size() + mfreq.fallingEdges().size(), 2u);
}

TEST(PeakDetector, CallbacksFireOnExtremes) {
  OpenLoopBench b;
  int maxima = 0, minima = 0;
  b.det.onMaxFrequency([&](double) { ++maxima; });
  b.det.onMinFrequency([&](double) { ++minima; });
  b.drive(5, 100e-6, 5e-6, 1e-5);
  b.drive(5, 100e-6, -5e-6, b.c.now() + 1e-5);
  b.drive(5, 100e-6, 5e-6, b.c.now() + 1e-5);
  EXPECT_GE(maxima, 1);
  EXPECT_GE(minima, 2);  // initial rise + the final reversal
}

/// Closed-loop check of the headline claim: MFREQ falling edges coincide
/// with the capacitor-voltage (held-frequency) maxima during sinusoidal FM.
TEST(PeakDetector, MarksCapacitorVoltageMaximaInClosedLoop) {
  const pll::PllConfig cfg = fastTestConfig();
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  const auto mk = c.addSignal("mk");
  pll::SineFmSource::Config scfg;
  scfg.nominal_hz = cfg.ref_frequency_hz;
  pll::SineFmSource src(c, stim, mk, scfg);
  pll::CpPll pll(c, ext, stim, cfg);
  pll.setTestMode(true);
  PeakDetector det(c, pll.ref(), pll.feedback(), cfg.pfd, PeakDetectorDelays{});
  c.run(0.05);

  const double fm = 150.0;
  src.setModulation(fm, 100.0);
  c.run(c.now() + 6.0 / fm);

  sim::Trace vc("vc");
  pll::AnalogProbe probe(c, [&] { return pll.filter().capVoltage(c.now()); }, vc, 2e-5, c.now());
  std::vector<double> max_events;
  det.onMaxFrequency([&](double t) { max_events.push_back(t); });
  c.run(c.now() + 3.0 / fm);

  ASSERT_GE(max_events.size(), 2u);
  // For each detected maximum, vc at that time must be close to the local
  // maximum of vc within half a modulation period around it.
  for (double t : max_events) {
    if (t - 0.5 / fm < vc.times().front() || t + 0.5 / fm > vc.times().back()) continue;
    double local_max = -1e9, local_min = 1e9;
    for (size_t i = 0; i < vc.size(); ++i) {
      if (std::abs(vc.times()[i] - t) > 0.5 / fm) continue;
      local_max = std::max(local_max, vc.values()[i]);
      local_min = std::min(local_min, vc.values()[i]);
    }
    const double swing = local_max - local_min;
    ASSERT_GT(swing, 0.0);
    EXPECT_GT(vc.at(t), local_max - 0.12 * swing) << "detector fired away from the vc crest";
  }
}

}  // namespace
}  // namespace pllbist::bist
