#include <gtest/gtest.h>

#include <cmath>

#include "bist/controller.hpp"
#include "bist/peak_detector.hpp"
#include "bist/sequencer.hpp"
#include "common/units.hpp"
#include "pll/cppll.hpp"
#include "pll/sources.hpp"
#include "support/test_configs.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

/// Determinism: the whole simulated measurement is reproducible bit-for-bit
/// across runs (a hard requirement for debugging and CI).
TEST(Robustness, SweepIsDeterministic) {
  auto run = [] {
    BistController controller(fastTestConfig(),
                              fastSweepOptions(StimulusKind::MultiToneFsk, 5));
    return controller.run();
  };
  const MeasuredResponse a = run();
  const MeasuredResponse b = run();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].deviation_hz, b.points[i].deviation_hz) << i;
    EXPECT_EQ(a.points[i].phase_deg, b.points[i].phase_deg) << i;
  }
  EXPECT_EQ(a.nominal_vco_hz, b.nominal_vco_hz);
}

/// The sequencer measuring a PLL whose reference carries realistic edge
/// jitter (0.2% of the period RMS): the averaged phase measurement must
/// stay close to the clean value.
TEST(Robustness, PointMeasurementSurvivesReferenceJitter) {
  const pll::PllConfig cfg = fastTestConfig();

  auto measureWithJitter = [&](double jitter_rms) {
    sim::Circuit c;
    const auto ext = c.addSignal("ext");
    const auto stim = c.addSignal("stim");
    const auto marker = c.addSignal("marker");
    pll::SineFmSource::Config scfg;
    scfg.nominal_hz = cfg.ref_frequency_hz;
    scfg.edge_jitter_rms_s = jitter_rms;
    pll::SineFmSource src(c, stim, marker, scfg);
    pll::CpPll pll(c, ext, stim, cfg);
    pll.setTestMode(true);
    PeakDetector det(c, pll.ref(), pll.feedback(), cfg.pfd, PeakDetectorDelays{});
    TestSequencer::Options opt;
    opt.freq_gate_s = 0.05;
    opt.hold_to_gate_delay_s = 2e-4;
    opt.average_periods = 8;  // jitter averages out over more periods
    TestSequencer seq(c, pll,
                      StimulusHooks{[&](double fm) { src.setModulation(fm, 100.0); },
                                    [&] { src.setModulation(0.0, 0.0); },
                                    [&] {
                                      src.setModulation(0.0, 0.0);
                                      src.setCarrier(cfg.ref_frequency_hz + 100.0);
                                    }},
                      det, marker, pll.vcoOut(), 10e6, opt);
    c.run(0.05);
    bool done = false;
    TestSequencer::PointResult r;
    seq.measurePoint(200.0, [&](TestSequencer::PointResult pr) {
      r = std::move(pr);
      done = true;
    });
    while (!done) {
      if (!c.step()) ADD_FAILURE() << "queue ran dry";
    }
    return r;
  };

  const TestSequencer::PointResult clean = measureWithJitter(0.0);
  const TestSequencer::PointResult jittered = measureWithJitter(2e-7);  // 0.2% of Tref
  ASSERT_FALSE(clean.timed_out);
  ASSERT_FALSE(jittered.timed_out);
  EXPECT_NEAR(jittered.phase_deg, clean.phase_deg, 15.0);
  EXPECT_NEAR(jittered.held_frequency_hz, clean.held_frequency_hz,
              0.1 * (clean.held_frequency_hz - cfg.nominalVcoHz()));
}

/// The deviation must never push the VCO into its tuning-range clamp during
/// a sweep — and if a misconfigured (too-large) stimulus does, the
/// measurement degrades but the BIST still terminates.
TEST(Robustness, OversizedStimulusTerminates) {
  const pll::PllConfig cfg = fastTestConfig();
  SweepOptions opt = fastSweepOptions(StimulusKind::MultiToneFsk, 3);
  opt.deviation_hz = 800.0;  // 8% of the reference: phase errors near the PFD limit
  BistController controller(cfg, opt);
  const MeasuredResponse r = controller.run();  // must not hang or throw
  EXPECT_EQ(r.points.size(), 3u);
}

/// Cross-check the two fast devices: voltage-pump and current-pump DUTs
/// designed for the same (fn, zeta) must produce overlapping responses.
TEST(Robustness, PumpTopologiesAgreeOnTheResponse) {
  const SweepOptions vopt = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  BistController vcontroller(pll::scaledTestConfig(200.0, 0.43), vopt);
  BistController ccontroller(pll::scaledCurrentPumpConfig(200.0, 0.43), vopt);
  const control::BodeResponse v = vcontroller.run().toBode();
  const control::BodeResponse i = ccontroller.run().toBode();
  ASSERT_EQ(v.size(), i.size());
  for (size_t k = 0; k < v.size(); ++k) {
    const double f = radPerSecToHz(v.points()[k].omega_rad_per_s);
    if (f > 700.0) continue;
    EXPECT_NEAR(v.points()[k].magnitude_db, i.points()[k].magnitude_db, 1.5) << f;
    EXPECT_NEAR(v.points()[k].phase_deg, i.points()[k].phase_deg, 15.0) << f;
  }
}

}  // namespace
}  // namespace pllbist::bist
