#include <gtest/gtest.h>

#include <cmath>

#include "bist/controller.hpp"
#include "bist/peak_detector.hpp"
#include "bist/resilient_sweep.hpp"
#include "bist/sequencer.hpp"
#include "bist/testbench.hpp"
#include "common/units.hpp"
#include "core/measurement.hpp"
#include "pll/cppll.hpp"
#include "pll/faults.hpp"
#include "pll/sources.hpp"
#include "sim/fault_injector.hpp"
#include "support/test_configs.hpp"
#include "support/tolerance.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

/// Determinism: the whole simulated measurement is reproducible bit-for-bit
/// across runs (a hard requirement for debugging and CI).
TEST(Robustness, SweepIsDeterministic) {
  auto run = [] {
    BistController controller(fastTestConfig(),
                              fastSweepOptions(StimulusKind::MultiToneFsk, 5));
    return controller.run();
  };
  const MeasuredResponse a = run();
  const MeasuredResponse b = run();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].deviation_hz, b.points[i].deviation_hz) << i;
    EXPECT_EQ(a.points[i].phase_deg, b.points[i].phase_deg) << i;
  }
  EXPECT_EQ(a.nominal_vco_hz, b.nominal_vco_hz);
}

/// The sequencer measuring a PLL whose reference carries realistic edge
/// jitter (0.2% of the period RMS): the averaged phase measurement must
/// stay close to the clean value.
TEST(Robustness, PointMeasurementSurvivesReferenceJitter) {
  const pll::PllConfig cfg = fastTestConfig();

  auto measureWithJitter = [&](double jitter_rms) {
    sim::Circuit c;
    const auto ext = c.addSignal("ext");
    const auto stim = c.addSignal("stim");
    const auto marker = c.addSignal("marker");
    pll::SineFmSource::Config scfg;
    scfg.nominal_hz = cfg.ref_frequency_hz;
    scfg.edge_jitter_rms_s = jitter_rms;
    pll::SineFmSource src(c, stim, marker, scfg);
    pll::CpPll pll(c, ext, stim, cfg);
    pll.setTestMode(true);
    PeakDetector det(c, pll.ref(), pll.feedback(), cfg.pfd, PeakDetectorDelays{});
    TestSequencer::Options opt;
    opt.freq_gate_s = 0.05;
    opt.hold_to_gate_delay_s = 2e-4;
    opt.average_periods = 8;  // jitter averages out over more periods
    TestSequencer seq(c, pll,
                      StimulusHooks{[&](double fm) { src.setModulation(fm, 100.0); },
                                    [&] { src.setModulation(0.0, 0.0); },
                                    [&] {
                                      src.setModulation(0.0, 0.0);
                                      src.setCarrier(cfg.ref_frequency_hz + 100.0);
                                    }},
                      det, marker, pll.vcoOut(), 10e6, opt);
    c.run(0.05);
    bool done = false;
    TestSequencer::PointResult r;
    seq.measurePoint(200.0, [&](TestSequencer::PointResult pr) {
      r = std::move(pr);
      done = true;
    });
    while (!done) {
      if (!c.step()) ADD_FAILURE() << "queue ran dry";
    }
    return r;
  };

  const TestSequencer::PointResult clean = measureWithJitter(0.0);
  const TestSequencer::PointResult jittered = measureWithJitter(2e-7);  // 0.2% of Tref
  ASSERT_FALSE(clean.timed_out);
  ASSERT_FALSE(jittered.timed_out);
  EXPECT_PHASE_NEAR_DEG(jittered.phase_deg, clean.phase_deg, 15.0);
  EXPECT_NEAR(jittered.held_frequency_hz, clean.held_frequency_hz,
              0.1 * (clean.held_frequency_hz - cfg.nominalVcoHz()));
}

/// The deviation must never push the VCO into its tuning-range clamp during
/// a sweep — and if a misconfigured (too-large) stimulus does, the
/// measurement degrades but the BIST still terminates.
TEST(Robustness, OversizedStimulusTerminates) {
  const pll::PllConfig cfg = fastTestConfig();
  SweepOptions opt = fastSweepOptions(StimulusKind::MultiToneFsk, 3);
  opt.deviation_hz = 800.0;  // 8% of the reference: phase errors near the PFD limit
  BistController controller(cfg, opt);
  const MeasuredResponse r = controller.run();  // must not hang or throw
  EXPECT_EQ(r.points.size(), 3u);
}

/// Cross-check the two fast devices: voltage-pump and current-pump DUTs
/// designed for the same (fn, zeta) must produce overlapping responses.
TEST(Robustness, PumpTopologiesAgreeOnTheResponse) {
  const SweepOptions vopt = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  BistController vcontroller(pll::scaledTestConfig(200.0, 0.43), vopt);
  BistController ccontroller(pll::scaledCurrentPumpConfig(200.0, 0.43), vopt);
  const control::BodeResponse v = vcontroller.run().toBode();
  const control::BodeResponse i = ccontroller.run().toBode();
  ASSERT_EQ(v.size(), i.size());
  for (size_t k = 0; k < v.size(); ++k) {
    const double f = radPerSecToHz(v.points()[k].omega_rad_per_s);
    if (f > 700.0) continue;
    EXPECT_DB_NEAR(v.points()[k].magnitude_db, i.points()[k].magnitude_db, 1.5) << f;
    EXPECT_PHASE_NEAR_DEG(v.points()[k].phase_deg, i.points()[k].phase_deg, 15.0) << f;
  }
}

/// Two-point sweep sized for the resilient-layer tests: in-band and
/// above-band, short enough that retry escalation stays affordable.
SweepOptions resilientTestOptions() {
  SweepOptions opt = fastSweepOptions(StimulusKind::MultiToneFsk, 4);
  opt.modulation_frequencies_hz = {200.0, 400.0};
  return opt;
}

/// A healthy device through the resilient layer: every point Ok on its
/// first attempt, clean report, no relocks.
TEST(ResilientSweepEngine, CleanDeviceYieldsAllOkPoints) {
  ResilientSweep engine(fastTestConfig(), resilientTestOptions());
  const ResilientResponse r = engine.run();
  EXPECT_TRUE(r.status.ok()) << r.status.toString();
  ASSERT_EQ(r.response.points.size(), 2u);
  for (const MeasuredPoint& p : r.response.points) {
    EXPECT_EQ(p.quality, PointQuality::Ok) << to_string(p.quality);
    EXPECT_EQ(p.attempts, 1);
    EXPECT_TRUE(p.status.ok()) << p.status.toString();
  }
  EXPECT_TRUE(r.report.clean());
  EXPECT_EQ(r.report.points_total, 2);
  EXPECT_EQ(r.report.ok, 2);
  EXPECT_EQ(r.report.attempts_total, 2);
  EXPECT_EQ(r.report.relocks, 0);
  EXPECT_GT(r.report.sim_time_s, 0.0);
  EXPECT_NE(r.report.summary().find("2 points"), std::string::npos) << r.report.summary();
}

/// On a healthy device the resilient engine must measure the same response
/// as the plain one-shot controller (attempt 0 runs with the base budgets).
TEST(ResilientSweepEngine, MatchesPlainControllerOnHealthyDevice) {
  BistController plain(fastTestConfig(), resilientTestOptions());
  const MeasuredResponse a = plain.run();
  ResilientSweep engine(fastTestConfig(), resilientTestOptions());
  const MeasuredResponse b = engine.run().response;
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_NEAR(a.points[i].deviation_hz, b.points[i].deviation_hz, 1e-6) << i;
    EXPECT_PHASE_NEAR_DEG(a.points[i].phase_deg, b.points[i].phase_deg, 1e-6) << i;
  }
}

/// A stuck peak detector for the first attempt of the first point (every
/// MAXFREQ edge dropped): the point must time out once, then measure
/// cleanly on the retry — classified Retried, not Dropped.
TEST(ResilientSweepEngine, StuckPeakDetectorEdgeIsRetried) {
  ResilientSweepOptions rs;
  rs.max_attempts = 3;
  rs.settle_backoff = 1.5;
  ResilientSweep engine(fastTestConfig(), resilientTestOptions(), rs);
  engine.onAttemptStart([](std::size_t point, int attempt, SweepTestbench& tb) {
    sim::FaultInjector& inj = tb.faultInjector(99);
    inj.clearRules();
    if (point == 0 && attempt == 0) inj.stickSignal(tb.mfreq(), tb.circuit().now());
  });
  const ResilientResponse r = engine.run();
  EXPECT_TRUE(r.status.ok()) << r.status.toString();
  ASSERT_EQ(r.response.points.size(), 2u);
  EXPECT_EQ(r.response.points[0].quality, PointQuality::Retried);
  EXPECT_EQ(r.response.points[0].attempts, 2);
  EXPECT_FALSE(r.response.points[0].timed_out);
  EXPECT_TRUE(r.response.points[0].status.ok());
  EXPECT_EQ(r.response.points[1].quality, PointQuality::Ok);
  EXPECT_EQ(r.report.retried, 1);
  EXPECT_EQ(r.report.ok, 1);
  EXPECT_EQ(r.report.dropped, 0);
  EXPECT_EQ(r.report.attempts_total, 3);
}

/// A dead reference during the first attempt (the stimulus net stuck, so
/// the PFD sees no edges and the loop rails): the attempt times out, the
/// lock loss is detected, the loop re-locks within the bounded wait, and
/// the point is re-measured — classified Degraded, with the relock counted.
TEST(ResilientSweepEngine, LockLossIsRelockedAndResumed) {
  ResilientSweepOptions rs;
  rs.max_attempts = 3;
  rs.relock_wait_periods = 100.0;  // railed VCO: allow a generous reacquisition
  ResilientSweep engine(fastTestConfig(), resilientTestOptions(), rs);
  engine.onAttemptStart([](std::size_t point, int attempt, SweepTestbench& tb) {
    sim::FaultInjector& inj = tb.faultInjector(7);
    inj.clearRules();
    if (point == 0 && attempt == 0) {
      const double now = tb.circuit().now();
      inj.stickSignal(tb.stimulusOut(), now, now + 0.4);  // covers the watchdog window
    }
  });
  const ResilientResponse r = engine.run();
  EXPECT_TRUE(r.status.ok()) << r.status.toString();
  ASSERT_EQ(r.response.points.size(), 2u);
  EXPECT_EQ(r.response.points[0].quality, PointQuality::Degraded)
      << to_string(r.response.points[0].quality) << " " << r.response.points[0].status.toString();
  EXPECT_FALSE(r.response.points[0].timed_out);
  EXPECT_GE(r.response.points[0].attempts, 2);
  EXPECT_EQ(r.response.points[1].quality, PointQuality::Ok);
  EXPECT_EQ(r.report.relocks, 1);
  EXPECT_EQ(r.report.relock_failures, 0);
  EXPECT_EQ(r.report.degraded, 1);
  EXPECT_EQ(r.report.dropped, 0);
}

/// A peak detector stuck for every attempt of one point: the retry budget
/// exhausts, the point is Dropped with RetryExhausted — and the sweep still
/// returns, with the other point measured cleanly.
TEST(ResilientSweepEngine, ExhaustedRetryBudgetDropsPointOnly) {
  ResilientSweepOptions rs;
  rs.max_attempts = 2;
  rs.settle_backoff = 1.5;
  ResilientSweep engine(fastTestConfig(), resilientTestOptions(), rs);
  engine.onAttemptStart([](std::size_t point, int /*attempt*/, SweepTestbench& tb) {
    sim::FaultInjector& inj = tb.faultInjector(3);
    inj.clearRules();
    if (point == 0) inj.stickSignal(tb.mfreq(), tb.circuit().now());
  });
  const ResilientResponse r = engine.run();
  EXPECT_TRUE(r.status.ok()) << r.status.toString();
  ASSERT_EQ(r.response.points.size(), 2u);
  const MeasuredPoint& dropped = r.response.points[0];
  EXPECT_EQ(dropped.quality, PointQuality::Dropped);
  EXPECT_TRUE(dropped.timed_out);
  EXPECT_EQ(dropped.attempts, 2);
  EXPECT_EQ(dropped.status.kind(), Status::Kind::RetryExhausted) << dropped.status.toString();
  EXPECT_EQ(r.response.points[1].quality, PointQuality::Ok);
  EXPECT_EQ(r.report.dropped, 1);
  EXPECT_EQ(r.report.ok, 1);
  EXPECT_EQ(r.report.attempts_total, 3);
  // The dropped point is excluded from the Bode conversion, which still
  // works off the surviving point.
  EXPECT_EQ(r.response.toBode().size(), 1u);
}

/// The acceptance scenario: a catastrophic device (feedback divider counts
/// 25 instead of 10, so the loop rails against the VCO clamp and never
/// locks) plus active sim-level fault injection. The sweep must complete in
/// bounded time without throwing, label every point, and account for the
/// failed relocks.
TEST(ResilientSweepEngine, CatastrophicDeviceCompletesFullyLabelled) {
  const pll::PllConfig sick =
      pll::applyFault(fastTestConfig(), {pll::FaultSpec::Kind::DividerWrongN, 25.0});
  ResilientSweepOptions rs;
  rs.max_attempts = 2;
  rs.relock_wait_periods = 10.0;  // a railed loop never relocks; keep the wait short
  ResilientSweep engine(sick, resilientTestOptions(), rs);
  uint64_t injected_drops = 0;
  engine.onTestbench([](SweepTestbench& tb) {
    // Background injection on top of the hard fault: a quarter of the peak
    // detector's MFREQ transitions lost. (Dropping *reference* edges would
    // actually revive a railed PFD — a missing ref edge lets the feedback
    // lead and fakes a MAXFREQ event — so the deaf-detector fault is the
    // one that composes with a dead loop.) The engine must stay bounded.
    tb.faultInjector(11).dropEdges(tb.mfreq(), 0.25);
  });
  engine.onAttemptStart([&](std::size_t, int, SweepTestbench& tb) {
    injected_drops = tb.faultInjector().stats().dropped;
  });
  const ResilientResponse r = engine.run();
  EXPECT_TRUE(r.status.ok()) << r.status.toString();  // no fatal stall — just a dead DUT
  ASSERT_EQ(r.response.points.size(), 2u);
  for (const MeasuredPoint& p : r.response.points) {
    EXPECT_EQ(p.quality, PointQuality::Dropped) << to_string(p.quality);
    EXPECT_TRUE(p.timed_out);
    EXPECT_FALSE(p.status.ok());
    EXPECT_EQ(p.status.kind(), Status::Kind::RelockFailed) << p.status.toString();
  }
  EXPECT_EQ(r.report.dropped, 2);
  EXPECT_EQ(r.report.usable(), 0);
  EXPECT_GE(r.report.relock_failures, 2);
  EXPECT_GT(injected_drops, 0u);
  EXPECT_EQ(r.response.toBode().size(), 0u);  // every point excluded from the fit
}

/// The core facade on the same catastrophic device: never throws, reports
/// NoValidPoints with the full quality accounting attached.
TEST(ResilientSweepEngine, CoreFacadeReportsNoValidPoints) {
  const pll::PllConfig sick =
      pll::applyFault(fastTestConfig(), {pll::FaultSpec::Kind::DividerWrongN, 25.0});
  core::TransferFunctionMeasurement meas(sick);
  ResilientSweepOptions rs;
  rs.max_attempts = 1;
  rs.relock_wait_periods = 10.0;
  const core::MeasurementResult result = meas.runResilient(resilientTestOptions(), rs);
  EXPECT_EQ(result.status.kind(), Status::Kind::NoValidPoints) << result.status.toString();
  EXPECT_EQ(result.quality.dropped, 2);
  EXPECT_EQ(result.quality.usable(), 0);
  EXPECT_EQ(result.sweep.points.size(), 2u);
}

}  // namespace
}  // namespace pllbist::bist
