#include "bist/sequencer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bist/dco.hpp"
#include "bist/modulator.hpp"
#include "bist/peak_detector.hpp"
#include "common/units.hpp"
#include "pll/sources.hpp"
#include "support/test_configs.hpp"
#include "support/tolerance.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastTestConfig;

/// Full Figure 6 testbench around the fast test PLL with a DCO stimulus.
struct SequencerBench {
  pll::PllConfig cfg = fastTestConfig();
  sim::Circuit c;
  sim::SignalId ext_ref;
  sim::SignalId stim;
  sim::SignalId marker;
  Dco dco;
  FskModulator modulator;
  pll::CpPll pll;
  PeakDetector detector;
  TestSequencer sequencer;

  static TestSequencer::Options options() {
    TestSequencer::Options o;
    o.freq_gate_s = 0.05;
    o.hold_to_gate_delay_s = 2e-4;
    return o;
  }

  static FskModulator::Config modConfig(const pll::PllConfig& cfg) {
    FskModulator::Config m;
    m.steps = 10;
    m.nominal_hz = cfg.ref_frequency_hz;
    m.deviation_hz = 100.0;
    return m;
  }

  SequencerBench()
      : ext_ref(c.addSignal("ext")),
        stim(c.addSignal("stim")),
        marker(c.addSignal("marker")),
        dco(c, stim, Dco::Config{10e6, 1000, 0.0}),
        modulator(c, dco, marker, modConfig(cfg)),
        pll(c, ext_ref, stim, cfg),
        detector(c, pll.ref(), pll.feedback(), cfg.pfd, PeakDetectorDelays{}),
        sequencer(c, pll,
                  StimulusHooks{[this](double fm) { modulator.start(fm); },
                                [this] { modulator.stop(); }, [this] { modulator.park(); }},
                  detector, marker, pll.vcoOut(), 10e6, options()) {
    pll.setTestMode(true);
    c.run(0.05);  // lock
  }

  template <typename F>
  void waitUntil(F&& flag) {
    while (!flag()) ASSERT_TRUE(c.step());
  }
};

TEST(TestSequencerOptions, Validation) {
  TestSequencer::Options o;
  o.settle_periods = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = TestSequencer::Options{};
  o.freq_gate_s = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = TestSequencer::Options{};
  o.timeout_periods = 2.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = TestSequencer::Options{};
  o.peak_qualify_fraction = 0.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(TestSequencer, MeasureNominalCountsCarrier) {
  SequencerBench b;
  double hz = 0.0;
  bool done = false;
  b.sequencer.measureNominal([&](double f) {
    hz = f;
    done = true;
  });
  b.waitUntil([&] { return done; });
  EXPECT_NEAR(hz, b.cfg.nominalVcoHz(), 25.0);  // gate quantisation
}

TEST(TestSequencer, StaticReferenceSeesFullDeviation) {
  SequencerBench b;
  double hz = 0.0;
  bool done = false;
  b.sequencer.measureStaticReference(0.05, [&](double f) {
    hz = f;
    done = true;
  });
  b.waitUntil([&] { return done; });
  // H(0) = 1: parked +100 Hz on the reference appears as +N*100 at the VCO.
  EXPECT_NEAR(hz - b.cfg.nominalVcoHz(), 100.0 * b.cfg.divider_n, 60.0);
}

TEST(TestSequencer, PointMeasurementCompletesWithPlausibleValues) {
  SequencerBench b;
  TestSequencer::PointResult r;
  bool done = false;
  const double fm = 200.0;  // at fn
  b.sequencer.measurePoint(fm, [&](TestSequencer::PointResult pr) {
    r = std::move(pr);
    done = true;
  });
  b.waitUntil([&] { return done; });
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(static_cast<int>(r.phase_counts.size()), b.sequencer.options().average_periods);
  // Phase near the capacitor-node -90 degrees at fn.
  EXPECT_PHASE_NEAR_DEG(r.phase_deg, -90.0, 25.0);
  // Held deviation ~ |H_cap(fn)| * N * 100 Hz = 1.177 * 1000.
  const double dev = r.held_frequency_hz - b.cfg.nominalVcoHz();
  EXPECT_NEAR(dev, 1177.0, 250.0);
  EXPECT_GT(r.hold_time_s, 0.0);
  EXPECT_EQ(b.sequencer.stage(), TestSequencer::Stage::Idle);
}

TEST(TestSequencer, HoldReleasedAfterPoint) {
  SequencerBench b;
  bool done = false;
  b.sequencer.measurePoint(200.0, [&](TestSequencer::PointResult) { done = true; });
  b.waitUntil([&] { return done; });
  b.c.run(b.c.now());  // drain the same-time hold-release event
  EXPECT_FALSE(b.pll.holdAsserted());
}

TEST(TestSequencer, SequentialPointsWork) {
  SequencerBench b;
  for (double fm : {100.0, 200.0, 400.0}) {
    bool done = false;
    TestSequencer::PointResult r;
    b.sequencer.measurePoint(fm, [&](TestSequencer::PointResult pr) {
      r = std::move(pr);
      done = true;
    });
    b.waitUntil([&] { return done; });
    EXPECT_FALSE(r.timed_out) << fm;
  }
}

TEST(TestSequencer, BusyRejectsConcurrentRequests) {
  SequencerBench b;
  b.sequencer.measurePoint(200.0, [](TestSequencer::PointResult) {});
  EXPECT_THROW(b.sequencer.measurePoint(300.0, [](TestSequencer::PointResult) {}),
               std::logic_error);
  EXPECT_THROW(b.sequencer.measureNominal([](double) {}), std::logic_error);
  EXPECT_THROW(b.sequencer.measureStaticReference(0.1, [](double) {}), std::logic_error);
}

TEST(TestSequencer, InvalidInputsThrow) {
  SequencerBench b;
  EXPECT_THROW(b.sequencer.measurePoint(0.0, [](TestSequencer::PointResult) {}),
               std::invalid_argument);
  EXPECT_THROW(b.sequencer.measureStaticReference(0.0, [](double) {}), std::invalid_argument);
}

TEST(TestSequencer, WatchdogFiresOnDeadDetector) {
  // Deaf peak detector: feed it a constant-low "feedback" so it never sees
  // reversals. The sequencer must time out instead of hanging.
  pll::PllConfig cfg = fastTestConfig();
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  const auto marker = c.addSignal("marker");
  const auto dead = c.addSignal("dead");
  Dco dco(c, stim, Dco::Config{10e6, 1000, 0.0});
  FskModulator mod(c, dco, marker, SequencerBench::modConfig(cfg));
  pll::CpPll pll(c, ext, stim, cfg);
  pll.setTestMode(true);
  PeakDetector det(c, pll.ref(), dead, cfg.pfd, PeakDetectorDelays{});
  TestSequencer seq(c, pll,
                    StimulusHooks{[&](double fm) { mod.start(fm); }, [&] { mod.stop(); },
                                  [&] { mod.park(); }},
                    det, marker, pll.vcoOut(), 10e6, SequencerBench::options());
  c.run(0.05);
  TestSequencer::PointResult r;
  bool done = false;
  seq.measurePoint(200.0, [&](TestSequencer::PointResult pr) {
    r = std::move(pr);
    done = true;
  });
  while (!done) ASSERT_TRUE(c.step());
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(seq.stage(), TestSequencer::Stage::Idle);
}

TEST(TestSequencer, WorksWithPureSineStimulus) {
  pll::PllConfig cfg = fastTestConfig();
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  const auto marker = c.addSignal("marker");
  pll::SineFmSource::Config scfg;
  scfg.nominal_hz = cfg.ref_frequency_hz;
  pll::SineFmSource src(c, stim, marker, scfg);
  pll::CpPll pll(c, ext, stim, cfg);
  pll.setTestMode(true);
  PeakDetector det(c, pll.ref(), pll.feedback(), cfg.pfd, PeakDetectorDelays{});
  TestSequencer seq(c, pll,
                    StimulusHooks{[&](double fm) { src.setModulation(fm, 100.0); },
                                  [&] {
                                    src.setModulation(0.0, 0.0);
                                    src.setCarrier(cfg.ref_frequency_hz);
                                  },
                                  [&] {
                                    src.setModulation(0.0, 0.0);
                                    src.setCarrier(cfg.ref_frequency_hz + 100.0);
                                  }},
                    det, marker, pll.vcoOut(), 10e6, SequencerBench::options());
  c.run(0.05);
  bool done = false;
  TestSequencer::PointResult r;
  seq.measurePoint(200.0, [&](TestSequencer::PointResult pr) {
    r = std::move(pr);
    done = true;
  });
  while (!done) ASSERT_TRUE(c.step());
  EXPECT_FALSE(r.timed_out);
  EXPECT_PHASE_NEAR_DEG(r.phase_deg, -90.0, 20.0);
}

}  // namespace
}  // namespace pllbist::bist
