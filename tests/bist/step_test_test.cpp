#include "bist/step_test.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/second_order.hpp"
#include "support/test_configs.hpp"

namespace pllbist::bist {
namespace {

using pllbist::testing::fastTestConfig;

StepTestOptions fastOptions() {
  StepTestOptions opt;
  opt.lock_wait_s = 0.05;
  opt.freq_gate_s = 0.05;
  opt.hold_to_gate_delay_s = 2e-4;
  return opt;
}

TEST(StepTestOptions, Validation) {
  StepTestOptions opt = fastOptions();
  EXPECT_NO_THROW(opt.validate());
  opt.step_fraction = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastOptions();
  opt.step_fraction = 0.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastOptions();
  opt.freq_gate_s = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = fastOptions();
  opt.lock_cycles = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(StepTest, TracksTheReferenceStep) {
  const pll::PllConfig cfg = fastTestConfig();
  const StepTestResult r = runStepTest(cfg, fastOptions());
  ASSERT_FALSE(r.timed_out);
  ASSERT_TRUE(r.peak_detected);
  EXPECT_NEAR(r.nominal_hz, cfg.nominalVcoHz(), 30.0);
  // 1% reference step -> 1% output step (DC gain 1 at divided output).
  EXPECT_NEAR(r.target_hz - r.nominal_hz, cfg.nominalVcoHz() * 0.01, 60.0);
  EXPECT_GT(r.peak_hz, r.target_hz);  // underdamped loop overshoots
}

TEST(StepTest, OvershootMatchesSecondOrderTheoryWithSamplingExcess) {
  const pll::PllConfig cfg = fastTestConfig();  // zeta = 0.43, fn/fref = 1/50
  const StepTestResult r = runStepTest(cfg, fastOptions());
  ASSERT_FALSE(r.timed_out);
  // Capacitor-node transient: textbook overshoot for zeta = 0.43 is 22.4%.
  // The sampled PFD (one correction opportunity per reference cycle) adds
  // phase lag ~ wn*Tref, so the real loop overshoots *more* than the
  // continuous-time model — by construction never less.
  const double theory = control::stepOvershootFraction(0.43);
  EXPECT_GT(r.overshoot_fraction, theory - 0.02);
  EXPECT_LT(r.overshoot_fraction, theory + 0.12);
}

TEST(StepTest, SamplingExcessShrinksForSlowerLoops) {
  // Halving fn halves wn*Tref; the measured overshoot must move toward the
  // continuous-time value.
  const StepTestResult fast = runStepTest(fastTestConfig(200.0, 0.43), fastOptions());
  StepTestOptions slow_opt = fastOptions();
  slow_opt.lock_wait_s = 0.1;
  slow_opt.freq_gate_s = 0.1;
  const StepTestResult slow = runStepTest(fastTestConfig(50.0, 0.43), slow_opt);
  ASSERT_FALSE(fast.timed_out);
  ASSERT_FALSE(slow.timed_out);
  const double theory = control::stepOvershootFraction(0.43);
  EXPECT_LT(std::abs(slow.overshoot_fraction - theory),
            std::abs(fast.overshoot_fraction - theory) + 0.02);
}

TEST(StepTest, ExtractsLoopParameters) {
  const pll::PllConfig cfg = fastTestConfig();
  const StepTestResult r = runStepTest(cfg, fastOptions());
  ASSERT_TRUE(r.zeta.has_value());
  ASSERT_TRUE(r.natural_frequency_hz.has_value());
  EXPECT_NEAR(*r.zeta, 0.43, 0.09);
  EXPECT_NEAR(*r.natural_frequency_hz, 200.0, 30.0);
}

TEST(StepTest, RelockTimeScalesWithBandwidth) {
  StepTestOptions opt = fastOptions();
  const StepTestResult slow = runStepTest(fastTestConfig(100.0, 0.43), opt);
  const StepTestResult fast = runStepTest(fastTestConfig(400.0, 0.43), opt);
  ASSERT_FALSE(slow.timed_out);
  ASSERT_FALSE(fast.timed_out);
  EXPECT_GT(slow.relock_time_s, fast.relock_time_s);
  EXPECT_GT(slow.peak_time_s, fast.peak_time_s);
}

TEST(StepTest, DetectsDampingFault) {
  // R2 tripled (zeta ~3x): overshoot collapses.
  pll::PllConfig faulty = fastTestConfig();
  faulty.pump.r2_ohm *= 3.0;
  const StepTestResult golden = runStepTest(fastTestConfig(), fastOptions());
  const StepTestResult r = runStepTest(faulty, fastOptions());
  ASSERT_FALSE(r.timed_out);
  // Near-critically-damped: either no reversal is detected at all or the
  // captured overshoot collapses.
  EXPECT_TRUE(!r.peak_detected || r.overshoot_fraction < golden.overshoot_fraction * 0.4);
}

class StepZetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(StepZetaSweep, ZetaRecoveredFromSingleTransient) {
  const double zeta = GetParam();
  const StepTestResult r = runStepTest(fastTestConfig(200.0, zeta), fastOptions());
  ASSERT_FALSE(r.timed_out);
  ASSERT_TRUE(r.zeta.has_value()) << "zeta=" << zeta;
  EXPECT_NEAR(*r.zeta, zeta, 0.1) << "zeta=" << zeta;
}

INSTANTIATE_TEST_SUITE_P(Zetas, StepZetaSweep, ::testing::Values(0.35, 0.43, 0.55, 0.65));

}  // namespace
}  // namespace pllbist::bist
