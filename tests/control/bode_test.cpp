#include "control/bode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/grid.hpp"
#include "control/second_order.hpp"

namespace pllbist::control {
namespace {

BodeResponse secondOrderResponse(double wn, double zeta, int n = 400) {
  return BodeResponse::compute(TransferFunction::secondOrderLowPass(wn, zeta),
                               logspace(wn / 100.0, wn * 100.0, n));
}

TEST(UnwrapPhase, RemovesWraps) {
  std::vector<double> wrapped{0.0, -170.0, 175.0, 160.0};  // +175 is really -185
  auto un = unwrapPhaseDeg(wrapped);
  EXPECT_DOUBLE_EQ(un[0], 0.0);
  EXPECT_DOUBLE_EQ(un[1], -170.0);
  EXPECT_DOUBLE_EQ(un[2], -185.0);
  EXPECT_DOUBLE_EQ(un[3], -200.0);
}

TEST(UnwrapPhase, NoChangeWhenSmooth) {
  std::vector<double> smooth{0.0, -30.0, -60.0, -90.0};
  EXPECT_EQ(unwrapPhaseDeg(smooth), smooth);
}

TEST(BodeResponse, ComputeRejectsNonPositiveOmega) {
  EXPECT_THROW(BodeResponse::compute(TransferFunction::gain(1.0), {0.0}), std::invalid_argument);
}

TEST(BodeResponse, FromPointsRequiresAscendingOmega) {
  std::vector<BodePoint> pts{{2.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  EXPECT_THROW(BodeResponse::fromPoints(pts), std::invalid_argument);
}

TEST(BodeResponse, InterpolationAtSamplePointsIsExact) {
  auto r = secondOrderResponse(100.0, 0.5, 50);
  const BodePoint& p = r.points()[20];
  EXPECT_NEAR(r.magnitudeDbAt(p.omega_rad_per_s), p.magnitude_db, 1e-9);
  EXPECT_NEAR(r.phaseDegAt(p.omega_rad_per_s), p.phase_deg, 1e-9);
}

TEST(BodeResponse, InterpolationOutsideRangeThrows) {
  auto r = secondOrderResponse(100.0, 0.5, 50);
  EXPECT_THROW(r.magnitudeDbAt(0.1), std::domain_error);
  EXPECT_THROW(r.phaseDegAt(1e6), std::domain_error);
}

TEST(BodeResponse, EmptyResponseThrows) {
  BodeResponse r;
  EXPECT_THROW(r.peak(), std::domain_error);
  EXPECT_THROW(r.inBandMagnitudeDb(), std::domain_error);
}

TEST(BodeResponse, PeakMatchesClosedFormLocation) {
  const double wn = 100.0, zeta = 0.3;
  auto r = secondOrderResponse(wn, zeta);
  const ResponsePeak pk = r.peak();
  EXPECT_NEAR(pk.omega_rad_per_s, peakFrequency(wn, zeta), wn * 0.01);
  EXPECT_NEAR(pk.magnitude_db, peakingDb(zeta), 0.02);
}

TEST(BodeResponse, PeakingReferencedToInBand) {
  // Scale the system by 7 dB: peaking (relative) must not change.
  TransferFunction h = TransferFunction::secondOrderLowPass(10.0, 0.4) * dbToAmplitude(7.0);
  auto r = BodeResponse::compute(h, logspace(0.1, 1000.0, 300));
  EXPECT_NEAR(r.peakingDb(), peakingDb(0.4), 0.05);
}

TEST(BodeResponse, Bandwidth3DbMatchesClosedForm) {
  const double wn = 100.0, zeta = 0.43;
  auto r = secondOrderResponse(wn, zeta);
  auto w3 = r.bandwidth3Db();
  ASSERT_TRUE(w3.has_value());
  EXPECT_NEAR(*w3, bandwidth3Db(wn, zeta), wn * 0.02);
}

TEST(BodeResponse, Bandwidth3DbAbsentWhenNotSampledFarEnough) {
  // Sample only below the corner: no crossing available.
  auto r = BodeResponse::compute(TransferFunction::secondOrderLowPass(100.0, 0.7),
                                 logspace(1.0, 20.0, 50));
  EXPECT_FALSE(r.bandwidth3Db().has_value());
}

TEST(BodeResponse, PhaseCrossingFindsMinus90) {
  const double wn = 50.0;
  auto r = secondOrderResponse(wn, 0.5);
  auto w = r.phaseCrossing(-90.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(*w, wn, wn * 0.02);  // 2nd-order LP crosses -90 deg at wn
}

TEST(BodeResponse, PhaseCrossingAbsentWhenNeverReached) {
  auto r = BodeResponse::compute(TransferFunction::firstOrderLowPass(1.0, 0.01),
                                 logspace(0.1, 10.0, 50));
  EXPECT_FALSE(r.phaseCrossing(-90.0).has_value());
}

TEST(BodeResponse, NormalizedToInBandZeroesFirstPoint) {
  TransferFunction h = TransferFunction::secondOrderLowPass(10.0, 0.4) * 3.0;
  auto r = BodeResponse::compute(h, logspace(0.1, 100.0, 100)).normalizedToInBand();
  EXPECT_NEAR(r.points().front().magnitude_db, 0.0, 1e-12);
  EXPECT_NEAR(r.peak().magnitude_db, peakingDb(0.4), 0.1);
}

TEST(BodeResponse, UnwrappedPhaseMonotoneForAllPole) {
  auto r = secondOrderResponse(10.0, 0.2);
  for (size_t i = 1; i < r.size(); ++i)
    EXPECT_LE(r.points()[i].phase_deg, r.points()[i - 1].phase_deg + 1e-9);
  EXPECT_NEAR(r.points().back().phase_deg, -180.0, 1.0);
}

class PeakAccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(PeakAccuracySweep, ParabolicRefinementWithinTolerance) {
  const double zeta = GetParam();
  const double wn = 42.0;
  // Deliberately coarse sampling: 25 points/3 decades.
  auto r = BodeResponse::compute(TransferFunction::secondOrderLowPass(wn, zeta),
                                 logspace(wn / 30.0, wn * 30.0, 25));
  EXPECT_NEAR(r.peak().omega_rad_per_s, peakFrequency(wn, zeta), wn * 0.06);
  EXPECT_NEAR(r.peak().magnitude_db, peakingDb(zeta), 0.25);
}

INSTANTIATE_TEST_SUITE_P(Dampings, PeakAccuracySweep, ::testing::Values(0.15, 0.3, 0.43, 0.6));

}  // namespace
}  // namespace pllbist::control
