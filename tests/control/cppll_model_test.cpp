#include "control/cppll_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/grid.hpp"

namespace pllbist::control {
namespace {

LoopParameters paperLikeLoop() {
  LoopParameters p;
  p.kpd_v_per_rad = 5.0 / (4.0 * kPi);       // 0.398 V/rad (Vdd = 5 V)
  p.kvco_rad_per_s_per_v = kTwoPi * 38.3e3;  // 38.3 kHz/V
  p.divider_n = 50.0;
  p.c_farad = 470e-9;
  p.r1_ohm = 1.5e6;
  p.r2_ohm = 35e3;
  return p;
}

TEST(LoopParameters, ValidateRejectsBadValues) {
  LoopParameters p = paperLikeLoop();
  p.kpd_v_per_rad = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = paperLikeLoop();
  p.divider_n = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = paperLikeLoop();
  p.c_farad = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(LoopFilterTf, MatchesEqn3) {
  LoopParameters p = paperLikeLoop();
  TransferFunction f = loopFilterTf(p);
  // F(0) = 1; F(inf) = tau2/(tau1+tau2).
  EXPECT_NEAR(f.dcGain(), 1.0, 1e-12);
  const double hf = std::abs(f.atFrequency(1e9));
  EXPECT_NEAR(hf, p.tau2() / (p.tau1() + p.tau2()), 1e-6);
  // Zero at -1/tau2, pole at -1/(tau1+tau2).
  auto zero = f.zeros();
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_NEAR(zero[0].real(), -1.0 / p.tau2(), 1.0 / p.tau2() * 1e-9);
}

TEST(OpenLoopTf, IntegratorAtDc) {
  TransferFunction g = openLoopTf(paperLikeLoop());
  // One pole at the origin: |G| ~ K/w at low frequency.
  EXPECT_THROW(g.dcGain(), std::domain_error);
  const double w = 1e-3;
  EXPECT_NEAR(std::abs(g.atFrequency(w)) * w, paperLikeLoop().loopGain(), 1.0);
}

TEST(ClosedLoop, UnityDcGainAtDividedOutput) {
  TransferFunction h = closedLoopDividedTf(paperLikeLoop());
  EXPECT_NEAR(h.dcGain(), 1.0, 1e-12);
  EXPECT_TRUE(h.isStable());
}

TEST(ClosedLoop, VcoOutputDcGainIsN) {
  LoopParameters p = paperLikeLoop();
  EXPECT_NEAR(closedLoopVcoTf(p).dcGain(), p.divider_n, 1e-9);
}

TEST(ClosedLoop, MatchesFeedbackAlgebra) {
  // Denominator construction must equal G/(1+G/N) evaluated numerically.
  LoopParameters p = paperLikeLoop();
  TransferFunction g = openLoopTf(p);
  TransferFunction manual = g.feedback(TransferFunction::gain(1.0 / p.divider_n)) *
                            (1.0 / p.divider_n);
  TransferFunction direct = closedLoopDividedTf(p);
  for (double w : logspace(1.0, 1e4, 40)) {
    const auto a = manual.atFrequency(w);
    const auto b = direct.atFrequency(w);
    EXPECT_NEAR(std::abs(a - b), 0.0, 1e-9 * std::abs(b) + 1e-12) << "w=" << w;
  }
}

TEST(ErrorTf, ComplementsClosedLoop) {
  LoopParameters p = paperLikeLoop();
  TransferFunction e = errorTf(p);
  TransferFunction h = closedLoopDividedTf(p);
  for (double w : logspace(1.0, 1e4, 20)) {
    const auto sum = e.atFrequency(w) + h.atFrequency(w);
    EXPECT_NEAR(sum.real(), 1.0, 1e-9);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-9);
  }
}

TEST(ErrorTf, HighPassShape) {
  TransferFunction e = errorTf(paperLikeLoop());
  EXPECT_NEAR(std::abs(e.atFrequency(1e-3)), 0.0, 1e-4);
  EXPECT_NEAR(std::abs(e.atFrequency(1e6)), 1.0, 1e-3);
}

TEST(CapacitorNodeTf, IsClosedLoopWithZeroDividedOut) {
  LoopParameters p = paperLikeLoop();
  TransferFunction cap = capacitorNodeTf(p);
  TransferFunction h = closedLoopDividedTf(p);
  TransferFunction zero(Polynomial({1.0, p.tau2()}), Polynomial::constant(1.0));
  for (double w : logspace(1.0, 1e4, 30)) {
    const auto lhs = cap.atFrequency(w) * zero.atFrequency(w);
    const auto rhs = h.atFrequency(w);
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * std::abs(rhs) + 1e-12);
  }
  EXPECT_NEAR(cap.dcGain(), 1.0, 1e-12);
}

TEST(SecondOrderApprox, Eqn5NaturalFrequency) {
  LoopParameters p = paperLikeLoop();
  const SecondOrderParams approx = approximateSecondOrder(p);
  const double expected = std::sqrt(p.loopGain() / (p.divider_n * (p.tau1() + p.tau2())));
  EXPECT_NEAR(approx.omega_n_rad_per_s, expected, 1e-9);
}

TEST(SecondOrderExact, MatchesDenominatorRoots) {
  LoopParameters p = paperLikeLoop();
  const SecondOrderParams exact = exactSecondOrder(p);
  // Poles of the closed loop must satisfy |s| = wn and Re = -zeta*wn.
  auto poles = closedLoopDividedTf(p).poles();
  ASSERT_EQ(poles.size(), 2u);
  EXPECT_NEAR(std::abs(poles[0]), exact.omega_n_rad_per_s, exact.omega_n_rad_per_s * 1e-6);
  EXPECT_NEAR(poles[0].real(), -exact.zeta * exact.omega_n_rad_per_s,
              exact.omega_n_rad_per_s * 1e-6);
}

TEST(SecondOrderExactVsApprox, ApproxSlightlyUnderestimatesDamping) {
  // eqn (6) drops the +N term, so approximate zeta < exact zeta.
  LoopParameters p = paperLikeLoop();
  EXPECT_LT(approximateSecondOrder(p).zeta, exactSecondOrder(p).zeta);
  EXPECT_NEAR(approximateSecondOrder(p).omega_n_rad_per_s,
              exactSecondOrder(p).omega_n_rad_per_s, 1e-9);
}

TEST(DesignForResponse, HitsRequestedParameters) {
  LoopParameters base = paperLikeLoop();
  base.r1_ohm = base.r2_ohm = 0.0;  // to be solved
  const double wn = hzToRadPerSec(8.0);
  const LoopParameters solved = designForResponse(base, wn, 0.43);
  const SecondOrderParams got = exactSecondOrder(solved);
  EXPECT_NEAR(got.omega_n_rad_per_s, wn, wn * 1e-9);
  EXPECT_NEAR(got.zeta, 0.43, 1e-9);
}

TEST(DesignForResponse, UnreachableDampingThrows) {
  LoopParameters base = paperLikeLoop();
  // Absurdly low damping for this gain: tau2 would go negative.
  EXPECT_THROW(designForResponse(base, hzToRadPerSec(8.0), 1e-6), std::domain_error);
}

class DesignSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DesignSweep, RoundTripsThroughExactModel) {
  const auto [fn_hz, zeta] = GetParam();
  LoopParameters base = paperLikeLoop();
  const LoopParameters solved = designForResponse(base, hzToRadPerSec(fn_hz), zeta);
  const SecondOrderParams got = exactSecondOrder(solved);
  EXPECT_NEAR(radPerSecToHz(got.omega_n_rad_per_s), fn_hz, fn_hz * 1e-9);
  EXPECT_NEAR(got.zeta, zeta, 1e-9);
  EXPECT_TRUE(closedLoopDividedTf(solved).isStable());
}

// Note: very light damping at high fn is genuinely unreachable with this
// loop gain (the exact model's "+N" term alone contributes zeta ~ N*wn/2K),
// so the sweep stays inside the feasible region; the infeasible case is
// covered by DesignForResponse.UnreachableDampingThrows.
INSTANTIATE_TEST_SUITE_P(Targets, DesignSweep,
                         ::testing::Combine(::testing::Values(2.0, 8.0, 50.0, 120.0),
                                            ::testing::Values(0.35, 0.43, 0.7, 1.0)));

}  // namespace
}  // namespace pllbist::control
