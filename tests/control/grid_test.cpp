#include "control/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pllbist::control {
namespace {

TEST(Linspace, EndpointsExact) {
  auto v = linspace(1.0, 2.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 2.0);
  EXPECT_NEAR(v[5], 1.5, 1e-12);
}

TEST(Linspace, SinglePoint) {
  auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Linspace, DescendingWorks) {
  auto v = linspace(2.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(v[1], 1.5);
}

TEST(Linspace, RejectsZeroPoints) { EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument); }

TEST(Logspace, EndpointsExactAndGeometric) {
  auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(v[2], 100.0);
}

TEST(Logspace, StrictlyAscending) {
  auto v = logspace(0.5, 48.0, 25);
  for (size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
}

TEST(Logspace, RejectsNonPositiveBounds) {
  EXPECT_THROW(logspace(0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, -1.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace pllbist::control
