#include "control/margins.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/cppll_model.hpp"
#include "pll/config.hpp"

namespace pllbist::control {
namespace {

TEST(Margins, Validation) {
  const TransferFunction l = TransferFunction::integrator(10.0);
  EXPECT_THROW(computeMargins(l, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(computeMargins(l, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(computeMargins(l, 1.0, 10.0, 2), std::invalid_argument);
}

TEST(Margins, PureIntegratorHas90DegreePhaseMargin) {
  // L = k/s: crossover at w = k, phase -90 everywhere -> PM = 90 deg, no
  // -180 crossing.
  const TransferFunction l = TransferFunction::integrator(50.0);
  const LoopMargins m = computeMargins(l, 0.1, 1e4);
  ASSERT_TRUE(m.gain_crossover_rad_per_s.has_value());
  EXPECT_NEAR(*m.gain_crossover_rad_per_s, 50.0, 0.1);
  ASSERT_TRUE(m.phase_margin_deg.has_value());
  EXPECT_NEAR(*m.phase_margin_deg, 90.0, 0.5);
  EXPECT_FALSE(m.phase_crossover_rad_per_s.has_value());
}

TEST(Margins, DoubleIntegratorWithZero) {
  // L = k*(1 + s/wz)/s^2: classic type-2 loop. Textbook: at crossover wc,
  // PM = atan(wc/wz); choose k so wc sits at 10*wz -> PM ~ 84.3 deg.
  const double wz = 10.0;
  TransferFunction l(Polynomial({1.0, 1.0 / wz}), Polynomial({0.0, 0.0, 1.0}));
  // |L(j*100)| = sqrt(1+100)/1e4 * k = 1 -> k ~ 994.99
  const double k = 1e4 / std::sqrt(101.0);
  const LoopMargins m = computeMargins(l * k, 0.1, 1e5);
  ASSERT_TRUE(m.gain_crossover_rad_per_s.has_value());
  EXPECT_NEAR(*m.gain_crossover_rad_per_s, 100.0, 1.0);
  ASSERT_TRUE(m.phase_margin_deg.has_value());
  EXPECT_NEAR(*m.phase_margin_deg, radToDeg(std::atan(10.0)), 1.0);
}

TEST(Margins, ThirdOrderLoopHasFiniteGainMargin) {
  // L = k/(s (1+s)^2): phase hits -180 at w = 1 where |L| = k/2.
  for (double k : {0.5, 1.9}) {
    TransferFunction l(Polynomial::constant(k),
                       Polynomial({0.0, 1.0, 2.0, 1.0}));  // s(1+s)^2
    const LoopMargins m = computeMargins(l, 1e-3, 1e3);
    ASSERT_TRUE(m.phase_crossover_rad_per_s.has_value()) << k;
    EXPECT_NEAR(*m.phase_crossover_rad_per_s, 1.0, 0.02);
    ASSERT_TRUE(m.gain_margin_db.has_value());
    EXPECT_NEAR(*m.gain_margin_db, -amplitudeToDb(k / 2.0), 0.2) << k;
    // Closed-loop stability agrees with the margin sign.
    EXPECT_EQ(l.unityFeedback().isStable(), *m.gain_margin_db > 0.0) << k;
  }
}

TEST(Margins, ReferencePllLoopIsComfortablyStable) {
  // Open loop of the paper's device, broken at the phase comparator with
  // the divider folded in: L = Kpd*F(s)*Ko/(N*s).
  const pll::PllConfig cfg = pll::referenceConfig();
  const LoopParameters lp = cfg.linearized();
  const TransferFunction l = openLoopTf(lp) * (1.0 / lp.divider_n);
  const LoopMargins m = computeMargins(l, hzToRadPerSec(0.01), hzToRadPerSec(1e3));
  ASSERT_TRUE(m.phase_margin_deg.has_value());
  // zeta = 0.43 second-order-ish loop: PM ~ 2*atan-ish ~ 45 deg.
  EXPECT_GT(*m.phase_margin_deg, 35.0);
  EXPECT_LT(*m.phase_margin_deg, 60.0);
  // Two-pole-plus-zero loop never reaches -180: infinite gain margin.
  EXPECT_FALSE(m.gain_margin_db.has_value());
}

TEST(Margins, PhaseMarginTracksDamping) {
  // Higher designed zeta must show a larger phase margin.
  auto pm = [](double zeta) {
    const pll::PllConfig cfg = pll::scaledTestConfig(200.0, zeta);
    const LoopParameters lp = cfg.linearized();
    const TransferFunction l = openLoopTf(lp) * (1.0 / lp.divider_n);
    return *computeMargins(l, 1.0, 1e6).phase_margin_deg;
  };
  EXPECT_LT(pm(0.35), pm(0.55));
  EXPECT_LT(pm(0.55), pm(0.8));
}

TEST(Margins, NoCrossoverWhenGainTooLow) {
  // |L| < 1 everywhere scanned: no gain crossover to report.
  const TransferFunction l = TransferFunction::firstOrderLowPass(0.5, 1.0);
  const LoopMargins m = computeMargins(l, 0.01, 100.0);
  EXPECT_FALSE(m.gain_crossover_rad_per_s.has_value());
  EXPECT_FALSE(m.phase_margin_deg.has_value());
}

}  // namespace
}  // namespace pllbist::control
