#include "control/polynomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pllbist::control {
namespace {

TEST(Polynomial, DefaultIsZero) {
  Polynomial p;
  EXPECT_TRUE(p.isZero());
  EXPECT_EQ(p.degree(), -1);
  EXPECT_EQ(p.evaluate(3.0), 0.0);
}

TEST(Polynomial, TrailingZerosTrimmed) {
  Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1);
  EXPECT_EQ(p.coeff(1), 2.0);
}

TEST(Polynomial, AllZeroCoefficientsIsZeroPolynomial) {
  Polynomial p({0.0, 0.0});
  EXPECT_TRUE(p.isZero());
}

TEST(Polynomial, ConstantAndMonomial) {
  EXPECT_EQ(Polynomial::constant(4.0).degree(), 0);
  const Polynomial m = Polynomial::monomial(3.0, 2);
  EXPECT_EQ(m.degree(), 2);
  EXPECT_EQ(m.evaluate(2.0), 12.0);
  EXPECT_THROW(Polynomial::monomial(1.0, -1), std::invalid_argument);
}

TEST(Polynomial, CoeffOutOfRangeIsZero) {
  Polynomial p({1.0, 2.0});
  EXPECT_EQ(p.coeff(5), 0.0);
  EXPECT_EQ(p.coeff(-1), 0.0);
}

TEST(Polynomial, EvaluateHorner) {
  // p(s) = 1 + 2s + 3s^2 at s = 2 => 1 + 4 + 12 = 17
  Polynomial p({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(p.evaluate(2.0), 17.0);
  const auto v = p.evaluate(std::complex<double>{0.0, 1.0});  // 1 + 2j - 3
  EXPECT_DOUBLE_EQ(v.real(), -2.0);
  EXPECT_DOUBLE_EQ(v.imag(), 2.0);
}

TEST(Polynomial, Addition) {
  Polynomial a({1.0, 2.0});
  Polynomial b({3.0, 0.0, 5.0});
  Polynomial c = a + b;
  EXPECT_EQ(c.degree(), 2);
  EXPECT_EQ(c.coeff(0), 4.0);
  EXPECT_EQ(c.coeff(1), 2.0);
  EXPECT_EQ(c.coeff(2), 5.0);
}

TEST(Polynomial, SubtractionCancellationTrims) {
  Polynomial a({1.0, 2.0, 3.0});
  Polynomial b({0.0, 0.0, 3.0});
  EXPECT_EQ((a - b).degree(), 1);
}

TEST(Polynomial, Multiplication) {
  // (1 + s)(1 - s) = 1 - s^2
  Polynomial c = Polynomial({1.0, 1.0}) * Polynomial({1.0, -1.0});
  EXPECT_EQ(c.degree(), 2);
  EXPECT_EQ(c.coeff(0), 1.0);
  EXPECT_EQ(c.coeff(1), 0.0);
  EXPECT_EQ(c.coeff(2), -1.0);
}

TEST(Polynomial, MultiplyByZeroPolynomial) {
  Polynomial a({1.0, 2.0});
  EXPECT_TRUE((a * Polynomial{}).isZero());
}

TEST(Polynomial, ScalarMultiply) {
  Polynomial p = Polynomial({1.0, 2.0}) * 3.0;
  EXPECT_EQ(p.coeff(0), 3.0);
  EXPECT_EQ(p.coeff(1), 6.0);
}

TEST(Polynomial, FromRoots) {
  // (s-1)(s-2) = s^2 - 3s + 2
  Polynomial p = Polynomial::fromRoots({1.0, 2.0});
  EXPECT_EQ(p.coeff(0), 2.0);
  EXPECT_EQ(p.coeff(1), -3.0);
  EXPECT_EQ(p.coeff(2), 1.0);
}

TEST(Polynomial, Derivative) {
  // d/ds (1 + 2s + 3s^2) = 2 + 6s
  Polynomial d = Polynomial({1.0, 2.0, 3.0}).derivative();
  EXPECT_EQ(d.degree(), 1);
  EXPECT_EQ(d.coeff(0), 2.0);
  EXPECT_EQ(d.coeff(1), 6.0);
  EXPECT_TRUE(Polynomial::constant(5.0).derivative().isZero());
}

TEST(Polynomial, MonicNormalises) {
  Polynomial m = Polynomial({2.0, 4.0}).monic();
  EXPECT_DOUBLE_EQ(m.coeff(1), 1.0);
  EXPECT_DOUBLE_EQ(m.coeff(0), 0.5);
  EXPECT_THROW(Polynomial{}.monic(), std::domain_error);
}

TEST(PolynomialRoots, Linear) {
  auto roots = Polynomial({-6.0, 2.0}).roots();  // 2s - 6 = 0
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0].real(), 3.0, 1e-12);
}

TEST(PolynomialRoots, QuadraticRealRoots) {
  auto roots = Polynomial({2.0, -3.0, 1.0}).roots();  // (s-1)(s-2)
  ASSERT_EQ(roots.size(), 2u);
  double lo = std::min(roots[0].real(), roots[1].real());
  double hi = std::max(roots[0].real(), roots[1].real());
  EXPECT_NEAR(lo, 1.0, 1e-12);
  EXPECT_NEAR(hi, 2.0, 1e-12);
}

TEST(PolynomialRoots, QuadraticComplexConjugates) {
  auto roots = Polynomial({5.0, 2.0, 1.0}).roots();  // s^2+2s+5: -1 +/- 2j
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0].real(), -1.0, 1e-12);
  EXPECT_NEAR(std::abs(roots[0].imag()), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(roots[0].real(), roots[1].real());
  EXPECT_DOUBLE_EQ(roots[0].imag(), -roots[1].imag());
}

TEST(PolynomialRoots, CubicKnownRoots) {
  // (s+1)(s+2)(s+3) = s^3 + 6s^2 + 11s + 6
  auto roots = Polynomial({6.0, 11.0, 6.0, 1.0}).roots();
  ASSERT_EQ(roots.size(), 3u);
  double sum = 0.0;
  for (auto r : roots) {
    sum += r.real();
    EXPECT_NEAR(r.imag(), 0.0, 1e-8);
  }
  EXPECT_NEAR(sum, -6.0, 1e-8);
  // every root satisfies the polynomial
  Polynomial p({6.0, 11.0, 6.0, 1.0});
  for (auto r : roots) EXPECT_NEAR(std::abs(p.evaluate(r)), 0.0, 1e-7);
}

TEST(PolynomialRoots, ZeroPolynomialThrows) {
  EXPECT_THROW(Polynomial{}.roots(), std::domain_error);
}

TEST(PolynomialRoots, ConstantHasNoRoots) {
  EXPECT_TRUE(Polynomial::constant(2.0).roots().empty());
}

class RootsResidualSweep : public ::testing::TestWithParam<int> {};

TEST_P(RootsResidualSweep, AllRootsSatisfyPolynomial) {
  // Wilkinson-lite: product of (s - k) for k = 1..n.
  const int n = GetParam();
  std::vector<double> rs;
  for (int k = 1; k <= n; ++k) rs.push_back(static_cast<double>(k));
  Polynomial p = Polynomial::fromRoots(rs);
  auto roots = p.roots();
  ASSERT_EQ(static_cast<int>(roots.size()), n);
  const double scale = std::abs(p.evaluate(0.0));
  for (auto r : roots) EXPECT_LT(std::abs(p.evaluate(r)), 1e-6 * scale) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Degrees, RootsResidualSweep, ::testing::Values(3, 4, 5, 6));

}  // namespace
}  // namespace pllbist::control
