#include "control/second_order.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/transfer_function.hpp"

namespace pllbist::control {
namespace {

TEST(SecondOrder, PeakFrequencyKnownValue) {
  // zeta = 0.5: wp = wn*sqrt(1 - 0.5) = wn/sqrt(2)
  EXPECT_NEAR(peakFrequency(10.0, 0.5), 10.0 / std::sqrt(2.0), 1e-12);
}

TEST(SecondOrder, PeakFrequencyDomain) {
  EXPECT_THROW(peakFrequency(10.0, 0.8), std::domain_error);  // no peaking
  EXPECT_THROW(peakFrequency(10.0, 0.0), std::domain_error);
  EXPECT_THROW(peakFrequency(-1.0, 0.3), std::domain_error);
}

TEST(SecondOrder, PeakingDbKnownValue) {
  // zeta = 0.5: Mp = 1/(2*0.5*sqrt(0.75)) = 1.1547 -> 1.2494 dB
  EXPECT_NEAR(peakingDb(0.5), amplitudeToDb(2.0 / std::sqrt(3.0)), 1e-9);
}

TEST(SecondOrder, DampingFromPeakingRoundTrip) {
  for (double zeta : {0.1, 0.2, 0.3, 0.43, 0.5, 0.6, 0.65}) {
    EXPECT_NEAR(dampingFromPeakingDb(peakingDb(zeta)), zeta, 1e-9) << "zeta=" << zeta;
  }
}

TEST(SecondOrder, DampingFromPeakingDomain) {
  EXPECT_THROW(dampingFromPeakingDb(0.0), std::domain_error);
  EXPECT_THROW(dampingFromPeakingDb(-3.0), std::domain_error);
}

TEST(SecondOrder, Bandwidth3DbMatchesTransferFunction) {
  const double wn = 33.0;
  for (double zeta : {0.2, 0.43, 0.7, 1.0}) {
    const double w3 = bandwidth3Db(wn, zeta);
    TransferFunction h = TransferFunction::secondOrderLowPass(wn, zeta);
    EXPECT_NEAR(h.magnitudeDbAt(w3), -3.0103, 1e-6) << "zeta=" << zeta;
  }
}

TEST(SecondOrder, BandwidthPeakRatioRoundTrip) {
  for (double zeta : {0.15, 0.3, 0.43, 0.55}) {
    const double ratio = bandwidth3Db(1.0, zeta) / peakFrequency(1.0, zeta);
    EXPECT_NEAR(dampingFromBandwidthPeakRatio(ratio), zeta, 1e-9) << "zeta=" << zeta;
  }
}

TEST(SecondOrder, BandwidthPeakRatioDomain) {
  EXPECT_THROW(dampingFromBandwidthPeakRatio(1.0), std::domain_error);
  EXPECT_THROW(dampingFromBandwidthPeakRatio(0.5), std::domain_error);
}

TEST(SecondOrder, NaturalFrequencyFromPeakRoundTrip) {
  const double wn = 77.0;
  for (double zeta : {0.1, 0.3, 0.43, 0.6}) {
    EXPECT_NEAR(naturalFrequencyFromPeak(peakFrequency(wn, zeta), zeta), wn, 1e-9);
  }
}

TEST(SecondOrder, SettlingTime) {
  EXPECT_NEAR(settlingTime2Pct(10.0, 0.5), 0.8, 1e-12);
  EXPECT_THROW(settlingTime2Pct(0.0, 0.5), std::domain_error);
}

TEST(SecondOrder, OvershootKnownValues) {
  EXPECT_NEAR(stepOvershootFraction(0.0), 1.0, 1e-12);
  // zeta = 0.43 -> ~22.4% overshoot
  EXPECT_NEAR(stepOvershootFraction(0.43), std::exp(-kPi * 0.43 / std::sqrt(1.0 - 0.43 * 0.43)),
              1e-12);
  EXPECT_THROW(stepOvershootFraction(1.0), std::domain_error);
  EXPECT_THROW(stepOvershootFraction(-0.1), std::domain_error);
}

class MonotonicitySweep : public ::testing::TestWithParam<double> {};

TEST_P(MonotonicitySweep, PeakingDecreasesWithDamping) {
  const double zeta = GetParam();
  EXPECT_GT(peakingDb(zeta), peakingDb(zeta + 0.05));
}

TEST_P(MonotonicitySweep, BandwidthDecreasesWithDamping) {
  const double zeta = GetParam();
  EXPECT_GT(bandwidth3Db(10.0, zeta), bandwidth3Db(10.0, zeta + 0.05));
}

INSTANTIATE_TEST_SUITE_P(Zetas, MonotonicitySweep, ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6));

}  // namespace
}  // namespace pllbist::control
