#include "control/state_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/second_order.hpp"

namespace pllbist::control {
namespace {

TEST(ToStateSpace, RejectsImproper) {
  TransferFunction improper(Polynomial({0.0, 0.0, 1.0}), Polynomial({1.0, 1.0}));
  EXPECT_THROW(toStateSpace(improper), std::invalid_argument);
}

TEST(ToStateSpace, PureGainIsOrderZero) {
  const StateSpace ss = toStateSpace(TransferFunction::gain(3.5));
  EXPECT_EQ(ss.order(), 0);
  EXPECT_DOUBLE_EQ(ss.d, 3.5);
}

TEST(ToStateSpace, FirstOrderCanonical) {
  // H = 2/(1 + 0.5 s) = 4/(s + 2): A = -2, B = 1, C = 4, D = 0.
  const StateSpace ss = toStateSpace(TransferFunction::firstOrderLowPass(2.0, 0.5));
  ASSERT_EQ(ss.order(), 1);
  EXPECT_NEAR(ss.a[0], -2.0, 1e-12);
  EXPECT_NEAR(ss.b[0], 1.0, 1e-12);
  EXPECT_NEAR(ss.c[0], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(ss.d, 0.0);
}

TEST(ToStateSpace, BiproperFeedthrough) {
  // H = (s+2)/(s+1): D = 1, C = 1.
  TransferFunction h(Polynomial({2.0, 1.0}), Polynomial({1.0, 1.0}));
  const StateSpace ss = toStateSpace(h);
  EXPECT_DOUBLE_EQ(ss.d, 1.0);
  EXPECT_NEAR(ss.c[0], 1.0, 1e-12);
}

TEST(StepResponse, FirstOrderMatchesClosedForm) {
  const double tau = 0.25;
  auto r = stepResponse(TransferFunction::firstOrderLowPass(1.0, tau), 2.0, 500);
  for (const TimePoint& p : r) {
    const double expected = 1.0 - std::exp(-p.time_s / tau);
    EXPECT_NEAR(p.value, expected, 1e-6) << p.time_s;
  }
}

TEST(StepResponse, SecondOrderOvershootMatchesClosedForm) {
  for (double zeta : {0.2, 0.43, 0.6, 0.8}) {
    const double wn = 10.0;
    auto r = stepResponse(TransferFunction::secondOrderLowPass(wn, zeta), 8.0 / (zeta * wn), 3000);
    const StepInfo info = analyzeStep(r);
    EXPECT_NEAR(info.final_value, 1.0, 2e-3) << zeta;  // finite window residual
    EXPECT_NEAR(info.overshoot_fraction, stepOvershootFraction(zeta), 0.01) << zeta;
    // Peak at t = pi / (wn * sqrt(1 - zeta^2)).
    EXPECT_NEAR(info.peak_time_s, kPi / (wn * std::sqrt(1.0 - zeta * zeta)), 0.05) << zeta;
  }
}

TEST(StepResponse, SettlingTimeNearApproximation) {
  const double wn = 10.0, zeta = 0.43;
  auto r = stepResponse(TransferFunction::secondOrderLowPass(wn, zeta), 4.0, 4000);
  const StepInfo info = analyzeStep(r);
  // 4/(zeta*wn) approximation is within ~40% of the exact settling time.
  EXPECT_NEAR(info.settling_time_s, settlingTime2Pct(wn, zeta), 0.4 * settlingTime2Pct(wn, zeta));
}

TEST(StepResponse, ZeroAddsOvershoot) {
  // The CP-PLL closed loop (with zero) overshoots more than the pure
  // two-pole with the same denominator.
  const double wn = 10.0, zeta = 0.43;
  TransferFunction plain = TransferFunction::secondOrderLowPass(wn, zeta);
  // H = (2*zeta*wn*s + wn^2)/(s^2 + 2*zeta*wn*s + wn^2) — high-gain CP-PLL shape.
  TransferFunction with_zero(Polynomial({wn * wn, 2.0 * zeta * wn}),
                             Polynomial({wn * wn, 2.0 * zeta * wn, 1.0}));
  const StepInfo a = analyzeStep(stepResponse(plain, 3.0, 2000));
  const StepInfo b = analyzeStep(stepResponse(with_zero, 3.0, 2000));
  EXPECT_GT(b.overshoot_fraction, a.overshoot_fraction + 0.05);
}

TEST(Simulate, SinusoidSteadyStateMatchesFrequencyResponse) {
  // Drive a first-order low-pass with a sine; the late-time output must
  // match |H| and arg H at that frequency.
  const double tau = 0.1;
  TransferFunction h = TransferFunction::firstOrderLowPass(1.0, tau);
  const double w = 10.0;  // rad/s, at the corner
  const double dt = 1e-3;
  std::vector<double> u(8000);
  for (size_t i = 0; i < u.size(); ++i) u[i] = std::sin(w * dt * static_cast<double>(i));
  auto r = simulate(toStateSpace(h), u, dt);
  // Compare the last full cycle peak to |H|.
  double peak = 0.0;
  for (size_t i = r.size() - 700; i < r.size(); ++i) peak = std::max(peak, std::abs(r[i].value));
  EXPECT_NEAR(peak, std::abs(h.atFrequency(w)), 0.01);
}

TEST(Simulate, InputValidation) {
  const StateSpace ss = toStateSpace(TransferFunction::gain(1.0));
  EXPECT_THROW(simulate(ss, {}, 0.1), std::invalid_argument);
  EXPECT_THROW(simulate(ss, {1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(stepResponse(TransferFunction::gain(1.0), -1.0), std::invalid_argument);
}

TEST(AnalyzeStep, Validation) {
  EXPECT_THROW(analyzeStep({}), std::invalid_argument);
  std::vector<TimePoint> flat{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  EXPECT_THROW(analyzeStep(flat), std::domain_error);
}

}  // namespace
}  // namespace pllbist::control
