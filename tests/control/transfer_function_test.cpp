#include "control/transfer_function.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/units.hpp"

namespace pllbist::control {
namespace {

TEST(TransferFunction, DefaultIsZero) {
  TransferFunction h;
  EXPECT_EQ(h.evaluate({1.0, 0.0}).real(), 0.0);
}

TEST(TransferFunction, ZeroDenominatorThrows) {
  EXPECT_THROW(TransferFunction(Polynomial::constant(1.0), Polynomial{}), std::invalid_argument);
}

TEST(TransferFunction, GainIsFlat) {
  TransferFunction g = TransferFunction::gain(2.0);
  EXPECT_DOUBLE_EQ(g.magnitudeDbAt(1.0), amplitudeToDb(2.0));
  EXPECT_DOUBLE_EQ(g.magnitudeDbAt(1e6), amplitudeToDb(2.0));
  EXPECT_DOUBLE_EQ(g.phaseDegAt(10.0), 0.0);
  EXPECT_DOUBLE_EQ(g.dcGain(), 2.0);
}

TEST(TransferFunction, IntegratorSlopeAndPhase) {
  TransferFunction i = TransferFunction::integrator(1.0);
  // -20 dB/decade and -90 degrees everywhere.
  EXPECT_NEAR(i.magnitudeDbAt(1.0) - i.magnitudeDbAt(10.0), 20.0, 1e-9);
  EXPECT_NEAR(i.phaseDegAt(3.0), -90.0, 1e-9);
  EXPECT_THROW(i.dcGain(), std::domain_error);
}

TEST(TransferFunction, FirstOrderLowPassCorner) {
  TransferFunction h = TransferFunction::firstOrderLowPass(1.0, 1.0);  // corner 1 rad/s
  EXPECT_NEAR(h.magnitudeDbAt(1.0), -3.0103, 1e-3);
  EXPECT_NEAR(h.phaseDegAt(1.0), -45.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.dcGain(), 1.0);
  EXPECT_THROW(TransferFunction::firstOrderLowPass(1.0, -1.0), std::invalid_argument);
}

TEST(TransferFunction, SecondOrderMagnitudeAtNaturalFrequency) {
  const double wn = 100.0, zeta = 0.5;
  TransferFunction h = TransferFunction::secondOrderLowPass(wn, zeta);
  // |H(j wn)| = 1/(2 zeta)
  EXPECT_NEAR(h.magnitudeDbAt(wn), amplitudeToDb(1.0 / (2.0 * zeta)), 1e-9);
  EXPECT_NEAR(h.phaseDegAt(wn), -90.0, 1e-9);
}

TEST(TransferFunction, SeriesIsProduct) {
  TransferFunction a = TransferFunction::firstOrderLowPass(2.0, 0.1);
  TransferFunction b = TransferFunction::gain(3.0);
  TransferFunction c = a.series(b);
  EXPECT_NEAR(std::abs(c.atFrequency(5.0)), std::abs(a.atFrequency(5.0)) * 3.0, 1e-12);
}

TEST(TransferFunction, ParallelIsSum) {
  TransferFunction a = TransferFunction::gain(1.0);
  TransferFunction b = TransferFunction::gain(2.0);
  EXPECT_DOUBLE_EQ((a + b).dcGain(), 3.0);
}

TEST(TransferFunction, UnityFeedbackOfIntegratorIsFirstOrder) {
  // k/s with unity feedback -> k/(s+k): first-order low-pass, corner k.
  const double k = 50.0;
  TransferFunction closed = TransferFunction::integrator(k).unityFeedback();
  EXPECT_NEAR(closed.dcGain(), 1.0, 1e-12);
  EXPECT_NEAR(closed.magnitudeDbAt(k), -3.0103, 1e-3);
}

TEST(TransferFunction, FeedbackMatchesManualAlgebra) {
  // G = 10/(s+1), H = 2: closed = 10/(s+21).
  TransferFunction g(Polynomial::constant(10.0), Polynomial({1.0, 1.0}));
  TransferFunction closed = g.feedback(TransferFunction::gain(2.0));
  EXPECT_NEAR(closed.dcGain(), 10.0 / 21.0, 1e-12);
  const auto at5 = closed.evaluate({-5.0, 0.0});
  EXPECT_NEAR(at5.real(), 10.0 / 16.0, 1e-12);
}

TEST(TransferFunction, PolesAndZeros) {
  // H = (s+2)/((s+1)(s+3))
  TransferFunction h(Polynomial({2.0, 1.0}), Polynomial::fromRoots({-1.0, -3.0}));
  auto zeros = h.zeros();
  ASSERT_EQ(zeros.size(), 1u);
  EXPECT_NEAR(zeros[0].real(), -2.0, 1e-9);
  auto poles = h.poles();
  ASSERT_EQ(poles.size(), 2u);
}

TEST(TransferFunction, StabilityDetection) {
  TransferFunction stable(Polynomial::constant(1.0), Polynomial({1.0, 1.0}));       // pole -1
  TransferFunction unstable(Polynomial::constant(1.0), Polynomial({-1.0, 1.0}));    // pole +1
  TransferFunction marginal(Polynomial::constant(1.0), Polynomial({0.0, 1.0}));     // pole 0
  EXPECT_TRUE(stable.isStable());
  EXPECT_FALSE(unstable.isStable());
  EXPECT_FALSE(marginal.isStable());
}

TEST(TransferFunction, RelativeDegree) {
  TransferFunction h(Polynomial({1.0, 1.0}), Polynomial({1.0, 0.0, 1.0}));
  EXPECT_EQ(h.relativeDegree(), 1);
}

TEST(TransferFunction, ScalarMultiplyScalesMagnitudeOnly) {
  TransferFunction h = TransferFunction::firstOrderLowPass(1.0, 1.0) * 10.0;
  EXPECT_NEAR(h.dcGain(), 10.0, 1e-12);
  EXPECT_NEAR(h.phaseDegAt(1.0), -45.0, 1e-9);
}


/// Algebraic property checks with randomised rational functions: the block
/// algebra must agree with complex arithmetic at every probe frequency.
class TransferFunctionAlgebra : public ::testing::TestWithParam<int> {
 protected:
  static TransferFunction randomStable(std::mt19937& rng) {
    std::uniform_real_distribution<double> pole(-50.0, -0.5);
    std::uniform_real_distribution<double> zero(-80.0, 80.0);
    std::uniform_real_distribution<double> gain(0.1, 10.0);
    Polynomial den = Polynomial::fromRoots({pole(rng), pole(rng)});
    Polynomial num = Polynomial::fromRoots({zero(rng)}) * gain(rng);
    return {num, den};
  }
};

TEST_P(TransferFunctionAlgebra, SeriesParallelFeedbackIdentities) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const TransferFunction a = randomStable(rng);
  const TransferFunction b = randomStable(rng);
  for (double w : {0.3, 2.0, 11.0, 47.0, 300.0}) {
    const auto va = a.atFrequency(w);
    const auto vb = b.atFrequency(w);
    // series = product
    EXPECT_LT(std::abs(a.series(b).atFrequency(w) - va * vb), 1e-9 * std::abs(va * vb) + 1e-12);
    // parallel = sum
    EXPECT_LT(std::abs(a.parallel(b).atFrequency(w) - (va + vb)),
              1e-9 * std::abs(va + vb) + 1e-12);
    // feedback closure
    const auto closed = a.feedback(b).atFrequency(w);
    EXPECT_LT(std::abs(closed - va / (1.0 + va * vb)), 1e-8 * std::abs(closed) + 1e-12);
    // series is commutative in value
    EXPECT_LT(std::abs(a.series(b).atFrequency(w) - b.series(a).atFrequency(w)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferFunctionAlgebra, ::testing::Range(1, 9));

class SecondOrderDampingSweep : public ::testing::TestWithParam<double> {};

TEST_P(SecondOrderDampingSweep, DcGainUnityAndHighFrequencyRollOff) {
  const double zeta = GetParam();
  TransferFunction h = TransferFunction::secondOrderLowPass(10.0, zeta);
  EXPECT_NEAR(h.dcGain(), 1.0, 1e-12);
  // two-pole roll-off: -40 dB/decade well above wn
  EXPECT_NEAR(h.magnitudeDbAt(1e3) - h.magnitudeDbAt(1e4), 40.0, 0.1);
  EXPECT_TRUE(h.isStable());
}

INSTANTIATE_TEST_SUITE_P(Dampings, SecondOrderDampingSweep,
                         ::testing::Values(0.1, 0.3, 0.43, 0.7, 1.0, 2.0));

}  // namespace
}  // namespace pllbist::control
