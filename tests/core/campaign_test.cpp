// Chaos suite for the crash-tolerant campaign runtime: equivalence with
// the plain farm, in-process stop/resume, a real fork + SIGKILL crash
// (including a tail torn mid-record), deadline supervision, the relock
// circuit breaker, and the exactly-once journal accounting each of those
// rests on. Registered under the `chaos` ctest label.

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "bist/parallel_sweep.hpp"
#include "bist/testbench.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "pll/faults.hpp"
#include "support/test_configs.hpp"

namespace pllbist::core {
namespace {

using bist::MeasuredPoint;
using bist::PointQuality;
using bist::ResilientResponse;
using bist::StimulusKind;
using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

std::string tempPath(const char* name) {
  return ::testing::TempDir() + "pllbist_campaign_" + name + ".jsonl";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Canonical timing-free serialisation — the byte-identity yardstick.
std::string canonical(const obs::RunReport& report) {
  obs::JsonValue doc;
  const Status parsed = obs::parseJson(report.toJson(), doc);
  EXPECT_TRUE(parsed.ok()) << parsed.toString();
  obs::stripTimingFields(doc);
  return doc.dump();
}

void expectPointsBitIdentical(const ResilientResponse& a, const ResilientResponse& b) {
  ASSERT_EQ(a.response.points.size(), b.response.points.size());
  for (std::size_t i = 0; i < a.response.points.size(); ++i) {
    const MeasuredPoint& pa = a.response.points[i];
    const MeasuredPoint& pb = b.response.points[i];
    EXPECT_EQ(pa.modulation_hz, pb.modulation_hz) << "point " << i;
    EXPECT_EQ(pa.deviation_hz, pb.deviation_hz) << "point " << i;
    EXPECT_EQ(pa.phase_deg, pb.phase_deg) << "point " << i;
    EXPECT_EQ(pa.quality, pb.quality) << "point " << i;
    EXPECT_EQ(pa.attempts, pb.attempts) << "point " << i;
    EXPECT_EQ(pa.status.kind(), pb.status.kind()) << "point " << i;
  }
  EXPECT_EQ(a.response.nominal_vco_hz, b.response.nominal_vco_hz);
  EXPECT_EQ(a.response.static_reference_deviation_hz, b.response.static_reference_deviation_hz);
}

TEST(Campaign, MatchesParallelSweepBitExactly) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  bist::ParallelSweep farm(fastTestConfig(), sweep, {});
  const ResilientResponse reference = farm.run();

  CampaignOptions copt;
  Campaign campaign(fastTestConfig(), sweep, copt);
  const CampaignResult result = campaign.run();
  EXPECT_TRUE(result.status.ok()) << result.status.toString();
  EXPECT_EQ(result.points_executed, 6);
  EXPECT_EQ(result.points_resumed, 0);
  expectPointsBitIdentical(result.merged, reference);
  EXPECT_EQ(result.merged.report.points_total, reference.report.points_total);
  EXPECT_EQ(result.merged.report.ok, reference.report.ok);
  EXPECT_EQ(result.merged.report.attempts_total, reference.report.attempts_total);
  EXPECT_EQ(result.merged.bench.events_processed, reference.bench.events_processed);
}

TEST(Campaign, InProcessStopThenResumeReproducesUninterruptedReport) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  const std::string journal = tempPath("stop_resume");

  // Uninterrupted reference (its own journal file, same jobs).
  CampaignOptions ref_opt;
  ref_opt.journal_path = tempPath("stop_resume_ref");
  Campaign reference(fastTestConfig(), sweep, ref_opt);
  const CampaignResult ref = reference.run();
  ASSERT_TRUE(ref.status.ok()) << ref.status.toString();

  // First invocation: stop after the third committed point.
  CampaignOptions first_opt;
  first_opt.journal_path = journal;
  Campaign first(fastTestConfig(), sweep, first_opt);
  int commits = 0;
  first.onPointMeasured([&](std::size_t, const MeasuredPoint&) {
    if (++commits == 3) first.requestStop();
  });
  const CampaignResult partial = first.run();
  EXPECT_EQ(partial.status.kind(), Status::Kind::Cancelled) << partial.status.toString();
  EXPECT_TRUE(partial.stop_requested);
  EXPECT_EQ(partial.points_executed, 3);  // jobs = 1: the stop lands between points
  // Every slot is still labelled in the partial result.
  EXPECT_EQ(partial.merged.report.points_total, 6);

  // Second invocation: resume in place, finish the rest.
  CampaignOptions resume_opt;
  resume_opt.journal_path = journal;
  resume_opt.resume_path = journal;
  Campaign second(fastTestConfig(), sweep, resume_opt);
  const CampaignResult resumed = second.run();
  EXPECT_TRUE(resumed.status.ok()) << resumed.status.toString();
  EXPECT_EQ(resumed.points_resumed, 3);
  EXPECT_EQ(resumed.points_executed, 3);  // exactly once: no point re-simulated
  EXPECT_FALSE(resumed.torn_tail_repaired);
  expectPointsBitIdentical(resumed.merged, ref.merged);
  EXPECT_EQ(canonical(resumed.report), canonical(ref.report));
  std::remove(journal.c_str());
  std::remove(ref_opt.journal_path.c_str());
}

/// The headline chaos test: a child process is SIGKILLed mid-campaign —
/// once cleanly between records and once with the journal tail torn
/// mid-record — and resume must reproduce the uninterrupted report
/// byte-for-byte while re-simulating only the uncommitted points.
TEST(Campaign, SigkillMidCampaignResumesByteIdenticalAndExactlyOnce) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  const std::string journal = tempPath("sigkill");

  CampaignOptions ref_opt;
  ref_opt.journal_path = tempPath("sigkill_ref");
  Campaign reference(fastTestConfig(), sweep, ref_opt);
  const CampaignResult ref = reference.run();
  ASSERT_TRUE(ref.status.ok()) << ref.status.toString();

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: run the same campaign and die -9 the instant the third
    // record is durable (onPointMeasured fires after the journal fsync).
    CampaignOptions opt;
    opt.journal_path = journal;
    Campaign doomed(fastTestConfig(), sweep, opt);
    int commits = 0;
    doomed.onPointMeasured([&](std::size_t, const MeasuredPoint&) {
      if (++commits == 3) (void)::kill(::getpid(), SIGKILL);
    });
    (void)doomed.run();
    ::_exit(97);  // unreachable if the kill landed
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited " << WEXITSTATUS(wstatus);
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Part 1: clean kill between records. The journal holds exactly the
  // three committed points; resume re-runs exactly the other three.
  {
    CampaignOptions opt;
    opt.journal_path = journal;
    opt.resume_path = journal;
    Campaign resumeRun(fastTestConfig(), sweep, opt);
    const CampaignResult resumed = resumeRun.run();
    EXPECT_TRUE(resumed.status.ok()) << resumed.status.toString();
    EXPECT_EQ(resumed.points_resumed, 3);
    EXPECT_EQ(resumed.points_executed, 3);
    EXPECT_FALSE(resumed.torn_tail_repaired);
    expectPointsBitIdentical(resumed.merged, ref.merged);
    EXPECT_EQ(canonical(resumed.report), canonical(ref.report));
    // Exactly-once on disk too: six unique records, one per point.
    JournalLoadResult all;
    ASSERT_TRUE(loadJournal(journal, all).ok());
    EXPECT_EQ(all.records.size(), 6u);
    EXPECT_EQ(all.duplicates_ignored, 0u);
  }

  // Part 2: rewind the journal to the post-kill state and tear the final
  // record in half — the crash-mid-append case. The torn point is not
  // committed, so it re-simulates: 2 resumed, 4 executed.
  {
    const std::string text = slurp(journal);
    JournalLoadResult full;
    ASSERT_TRUE(parseJournal(text, full).ok());
    // Reconstruct header + records 0-terminal..: keep first 3 lines after
    // the header, then half of the third record's line.
    std::size_t pos = 0;
    for (int line = 0; line < 3; ++line) pos = text.find('\n', pos) + 1;
    const std::size_t line3_end = text.find('\n', pos);
    std::ofstream out(journal, std::ios::trunc);
    out << text.substr(0, pos + (line3_end - pos) / 2);
    out.close();

    CampaignOptions opt;
    opt.journal_path = journal;
    opt.resume_path = journal;
    Campaign resumeRun(fastTestConfig(), sweep, opt);
    const CampaignResult resumed = resumeRun.run();
    EXPECT_TRUE(resumed.status.ok()) << resumed.status.toString();
    EXPECT_TRUE(resumed.torn_tail_repaired);
    EXPECT_EQ(resumed.points_resumed, 2);
    EXPECT_EQ(resumed.points_executed, 4);
    expectPointsBitIdentical(resumed.merged, ref.merged);
    EXPECT_EQ(canonical(resumed.report), canonical(ref.report));
    JournalLoadResult all;
    ASSERT_TRUE(loadJournal(journal, all).ok());
    EXPECT_FALSE(all.torn_tail);  // repair truncated the garbage
    EXPECT_EQ(all.records.size(), 6u);
  }
  std::remove(journal.c_str());
  std::remove(ref_opt.journal_path.c_str());
}

TEST(Campaign, CancelledPointsAreNeverCommitted) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 5);
  const std::string journal = tempPath("cancelled");
  CampaignOptions opt;
  opt.journal_path = journal;
  Campaign campaign(fastTestConfig(), sweep, opt);
  campaign.onPointMeasured([&](std::size_t, const MeasuredPoint&) { campaign.requestStop(); });
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.status.kind(), Status::Kind::Cancelled);
  EXPECT_EQ(result.points_executed, 1);

  JournalLoadResult loaded;
  ASSERT_TRUE(loadJournal(journal, loaded).ok());
  EXPECT_EQ(loaded.records.size(), 1u);  // only the completed point
  EXPECT_EQ(slurp(journal).find("cancelled"), std::string::npos);
  std::remove(journal.c_str());
}

TEST(Campaign, DeadlineTerminatesPromptlyAndLabelsEveryPoint) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 12);

  // Wall-clock behaviour on a loaded CI host is noisy: the in-situ
  // reference run and the bounded run can land on very different machine
  // states (under parallel sanitizer runs a slow reference followed by a
  // fast bounded run can finish all 12 points inside the deadline). So the
  // whole measure-then-bound pair retries, asserting hard only on the last
  // attempt; the label-accounting invariants are checked on whichever
  // attempt trips the deadline.
  constexpr int kAttempts = 4;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const bool last = attempt == kAttempts - 1;

    // Measure the uninterrupted cost in-situ; the deadline is a quarter of
    // it, and the campaign must finish well before the uninterrupted cost.
    const auto t0 = std::chrono::steady_clock::now();
    {
      Campaign unbounded(fastTestConfig(), sweep, {});
      const CampaignResult full = unbounded.run();
      ASSERT_TRUE(full.status.ok()) << full.status.toString();
    }
    const double uninterrupted_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    CampaignOptions opt;
    opt.deadline_s = uninterrupted_s / 4.0;
    opt.supervision_tick_s = 0.005;
    Campaign bounded(fastTestConfig(), sweep, opt);
    const auto t1 = std::chrono::steady_clock::now();
    const CampaignResult result = bounded.run();
    const double bounded_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

    if (!last && (!result.deadline_hit || bounded_s >= 0.9 * uninterrupted_s)) continue;

    EXPECT_TRUE(result.deadline_hit);
    ASSERT_EQ(result.status.kind(), Status::Kind::DeadlineExceeded) << result.status.toString();
    EXPECT_LT(result.points_executed, 12);
    // Supervision-tick promptness: the deadline plus one point's drain plus
    // the tick, with margin — far under the uninterrupted cost.
    EXPECT_LT(bounded_s, 0.9 * uninterrupted_s);
    // Every unfinished point carries the deadline label; the sum still
    // accounts for all 12 slots.
    const bist::SweepQualityReport& q = result.merged.report;
    EXPECT_EQ(q.points_total, 12);
    EXPECT_EQ(q.ok + q.retried + q.degraded + q.dropped, 12);
    int deadline_labelled = 0;
    for (const MeasuredPoint& p : result.merged.response.points)
      if (p.status.kind() == Status::Kind::DeadlineExceeded) ++deadline_labelled;
    EXPECT_EQ(deadline_labelled, 12 - result.points_executed);
    return;
  }
}

TEST(Campaign, PointBudgetDropsOverBudgetPointsWithoutHanging) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 4);
  const std::string journal = tempPath("point_budget");
  CampaignOptions opt;
  opt.journal_path = journal;
  opt.resilience.point_budget_s = 1e-4;  // far below a point's real cost
  opt.resilience.max_attempts = 1;
  Campaign campaign(fastTestConfig(), sweep, opt);
  const CampaignResult result = campaign.run();
  // Over-budget points are terminal (they would bust the budget again), so
  // they are journaled and the campaign itself completes.
  EXPECT_FALSE(result.deadline_hit);
  EXPECT_EQ(result.points_executed, 4);
  const bist::SweepQualityReport& q = result.merged.report;
  EXPECT_EQ(q.points_total, 4);
  EXPECT_GT(q.dropped, 0);
  for (const MeasuredPoint& p : result.merged.response.points) {
    if (p.quality == PointQuality::Dropped) {
      EXPECT_EQ(p.status.kind(), Status::Kind::DeadlineExceeded) << p.status.toString();
    }
  }
  JournalLoadResult loaded;
  ASSERT_TRUE(loadJournal(journal, loaded).ok());
  EXPECT_EQ(loaded.records.size(), 4u);
  std::remove(journal.c_str());
}

TEST(Campaign, RelockBreakerStopsBurningPointsOnADeadDevice) {
  // Catastrophic device (divider at 25 instead of 10): every attempted
  // point drops as a relock failure, so the breaker must open after two
  // and spare the rest.
  const pll::PllConfig sick =
      pll::applyFault(fastTestConfig(), {pll::FaultSpec::Kind::DividerWrongN, 25.0});
  bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 5);
  CampaignOptions opt;
  opt.resilience.max_attempts = 2;
  opt.resilience.relock_wait_periods = 10.0;  // a railed loop never relocks
  opt.relock_breaker = 2;
  Campaign campaign(sick, sweep, opt);
  const CampaignResult result = campaign.run();
  EXPECT_TRUE(result.breaker_opened);
  EXPECT_EQ(result.points_executed, 2);  // jobs = 1: deterministic trip point
  const auto& points = result.merged.response.points;
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(points[i].status.kind(), Status::Kind::RelockFailed) << i;
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(points[i].status.kind(), Status::Kind::RelockFailed) << i;
    EXPECT_EQ(points[i].attempts, 0) << "breaker-skipped point " << i << " was simulated";
    EXPECT_NE(points[i].status.context().find("breaker"), std::string::npos) << i;
  }
}

TEST(Campaign, ResumeWithMismatchedConfigFailsClosed) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 4);
  const std::string journal = tempPath("mismatch");
  {
    CampaignOptions opt;
    opt.journal_path = journal;
    Campaign campaign(fastTestConfig(), sweep, opt);
    ASSERT_TRUE(campaign.run().status.ok());
  }
  // Same point count, different stimulus depth: a different campaign.
  bist::SweepOptions other = sweep;
  other.deviation_hz *= 2.0;
  CampaignOptions opt;
  opt.resume_path = journal;
  Campaign campaign(fastTestConfig(), other, opt);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.status.kind(), Status::Kind::InvalidArgument) << result.status.toString();
  EXPECT_EQ(result.points_executed, 0);  // fail closed: nothing simulated
  EXPECT_EQ(result.points_resumed, 0);
  std::remove(journal.c_str());
}

TEST(Campaign, ResumeIntoADifferentJournalCarriesRecordsForward) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 4);
  const std::string first_journal = tempPath("carry_src");
  const std::string second_journal = tempPath("carry_dst");
  {
    CampaignOptions opt;
    opt.journal_path = first_journal;
    Campaign campaign(fastTestConfig(), sweep, opt);
    int commits = 0;
    campaign.onPointMeasured([&](std::size_t, const MeasuredPoint&) {
      if (++commits == 2) campaign.requestStop();
    });
    (void)campaign.run();
  }
  CampaignOptions opt;
  opt.resume_path = first_journal;
  opt.journal_path = second_journal;
  Campaign campaign(fastTestConfig(), sweep, opt);
  const CampaignResult result = campaign.run();
  EXPECT_TRUE(result.status.ok()) << result.status.toString();
  EXPECT_EQ(result.points_resumed, 2);
  EXPECT_EQ(result.points_executed, 2);
  // The new journal alone now carries the whole campaign.
  JournalLoadResult loaded;
  ASSERT_TRUE(loadJournal(second_journal, loaded).ok());
  EXPECT_EQ(loaded.records.size(), 4u);
  std::remove(first_journal.c_str());
  std::remove(second_journal.c_str());
}

TEST(Campaign, RejectsInvalidOptions) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 2);
  CampaignOptions bad;
  bad.deadline_s = -1.0;
  EXPECT_THROW(Campaign(fastTestConfig(), sweep, bad), std::invalid_argument);
  bad = {};
  bad.jobs = -1;
  EXPECT_THROW(Campaign(fastTestConfig(), sweep, bad), std::invalid_argument);
  bad = {};
  bad.supervision_tick_s = 0.0;
  EXPECT_THROW(Campaign(fastTestConfig(), sweep, bad), std::invalid_argument);
  bad = {};
  bad.resilience.point_budget_s = -0.5;
  EXPECT_THROW(Campaign(fastTestConfig(), sweep, bad), std::invalid_argument);
  // run() is single use.
  Campaign once(fastTestConfig(), sweep, {});
  (void)once.run();
  EXPECT_THROW((void)once.run(), std::logic_error);
}

TEST(Campaign, ParallelJobsMatchSerialResult) {
  const bist::SweepOptions sweep = fastSweepOptions(StimulusKind::MultiToneFsk, 6);
  Campaign serial(fastTestConfig(), sweep, {});
  const CampaignResult a = serial.run();
  CampaignOptions opt;
  opt.jobs = 4;
  Campaign parallel(fastTestConfig(), sweep, opt);
  const CampaignResult b = parallel.run();
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  expectPointsBitIdentical(a.merged, b.merged);
}

}  // namespace
}  // namespace pllbist::core
