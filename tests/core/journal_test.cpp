#include "core/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/status.hpp"

namespace pllbist::core {
namespace {

CheckpointHeader testHeader(std::size_t points = 4) {
  CheckpointHeader h;
  h.tool = "journal_test";
  h.device = "fast";
  h.stimulus = "multi-tone-fsk";
  h.config_digest = 0x2deefca6336d6a30ULL;
  h.points_total = points;
  return h;
}

CheckpointRecord testRecord(std::size_t index) {
  CheckpointRecord rec;
  rec.index = index;
  // Awkward doubles on purpose: the round-trip contract is bit-exact.
  rec.point.modulation_hz = 135.72100000000001 + static_cast<double>(index);
  rec.point.deviation_hz = 1300.0 / 3.0;
  rec.point.phase_deg = -48.099999999999994;
  rec.point.unity_gain_deviation_hz = 1000.0;
  rec.point.quality = bist::PointQuality::Retried;
  rec.point.attempts = 2;
  rec.point.wall_time_s = 0.0123;
  rec.nominal_vco_hz = 1e5 + 1.0 / 7.0;
  rec.static_reference_deviation_hz = 999.99999999999989;
  rec.relocks = 1;
  rec.relock_failures = 0;
  rec.sim_time_s = 0.39647951;
  rec.bench.events_processed = 302467;
  rec.bench.events_delivered = 274641;
  rec.bench.events_swallowed = 27826;
  return rec;
}

std::string tempPath(const char* name) {
  return ::testing::TempDir() + "pllbist_journal_" + name + ".jsonl";
}

TEST(Journal, WriterRoundTripsRecordsBitExactly) {
  const std::string path = tempPath("roundtrip");
  const CheckpointHeader hdr = testHeader();
  {
    JournalWriter w;
    ASSERT_TRUE(w.create(path, hdr).ok());
    for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(w.append(testRecord(i)).ok());
  }
  JournalLoadResult loaded;
  ASSERT_TRUE(loadJournal(path, loaded).ok());
  EXPECT_FALSE(loaded.torn_tail);
  EXPECT_EQ(loaded.duplicates_ignored, 0u);
  EXPECT_EQ(loaded.header.tool, hdr.tool);
  EXPECT_EQ(loaded.header.device, hdr.device);
  EXPECT_EQ(loaded.header.stimulus, hdr.stimulus);
  EXPECT_EQ(loaded.header.config_digest, hdr.config_digest);
  EXPECT_EQ(loaded.header.points_total, 4u);
  ASSERT_EQ(loaded.records.size(), 4u);
  EXPECT_TRUE(checkJournalHeader(loaded.header, hdr.config_digest, 4).ok());
  for (std::size_t i = 0; i < 4; ++i) {
    const CheckpointRecord want = testRecord(i);
    const CheckpointRecord& got = loaded.records[i];
    EXPECT_EQ(got.index, i);
    // EXPECT_EQ on doubles: journaling must not round.
    EXPECT_EQ(got.point.modulation_hz, want.point.modulation_hz);
    EXPECT_EQ(got.point.deviation_hz, want.point.deviation_hz);
    EXPECT_EQ(got.point.phase_deg, want.point.phase_deg);
    EXPECT_EQ(got.point.unity_gain_deviation_hz, want.point.unity_gain_deviation_hz);
    EXPECT_EQ(got.point.quality, want.point.quality);
    EXPECT_EQ(got.point.attempts, want.point.attempts);
    EXPECT_EQ(got.point.status.kind(), want.point.status.kind());
    EXPECT_EQ(got.nominal_vco_hz, want.nominal_vco_hz);
    EXPECT_EQ(got.static_reference_deviation_hz, want.static_reference_deviation_hz);
    EXPECT_EQ(got.relocks, want.relocks);
    EXPECT_EQ(got.sim_time_s, want.sim_time_s);
    EXPECT_EQ(got.bench.events_processed, want.bench.events_processed);
    EXPECT_EQ(got.bench.events_swallowed, want.bench.events_swallowed);
  }
  std::remove(path.c_str());
}

TEST(Journal, TornFinalLineIsDiscardedNotFatal) {
  const std::string full = JournalWriter::headerLine(testHeader()) + "\n" +
                           JournalWriter::recordLine(testRecord(0)) + "\n" +
                           JournalWriter::recordLine(testRecord(1)) + "\n";
  // Chop the final record in half: the signature of a crash mid-append.
  const std::string torn = full.substr(0, full.size() - 30);
  JournalLoadResult loaded;
  ASSERT_TRUE(parseJournal(torn, loaded).ok());
  EXPECT_TRUE(loaded.torn_tail);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].index, 0u);
  // clean_bytes stops at the end of the last complete record, so a
  // resume-append truncates the garbage away.
  const std::string clean = JournalWriter::headerLine(testHeader()) + "\n" +
                            JournalWriter::recordLine(testRecord(0)) + "\n";
  EXPECT_EQ(loaded.clean_bytes, clean.size());
}

TEST(Journal, UnterminatedFinalLineIsTornEvenWhenParseable) {
  // No trailing newline: the line parses, but a later append would
  // concatenate onto it and corrupt the file — so it must count as torn.
  const std::string text = JournalWriter::headerLine(testHeader()) + "\n" +
                           JournalWriter::recordLine(testRecord(0)) + "\n" +
                           JournalWriter::recordLine(testRecord(1));
  JournalLoadResult loaded;
  ASSERT_TRUE(parseJournal(text, loaded).ok());
  EXPECT_TRUE(loaded.torn_tail);
  EXPECT_EQ(loaded.records.size(), 1u);
}

TEST(Journal, ResumeTruncatesTornTailInPlace) {
  const std::string path = tempPath("truncate");
  {
    JournalWriter w;
    ASSERT_TRUE(w.create(path, testHeader()).ok());
    ASSERT_TRUE(w.append(testRecord(0)).ok());
    ASSERT_TRUE(w.append(testRecord(1)).ok());
  }
  // Simulate the crash: append half a record with no newline.
  {
    std::ofstream out(path, std::ios::app);
    out << JournalWriter::recordLine(testRecord(2)).substr(0, 25);
  }
  JournalWriter w;
  JournalLoadResult resumed;
  ASSERT_TRUE(w.resume(path, testHeader(), resumed).ok());
  EXPECT_TRUE(resumed.torn_tail);
  ASSERT_EQ(resumed.records.size(), 2u);
  // Appending after the repair yields a clean three-record journal.
  ASSERT_TRUE(w.append(testRecord(2)).ok());
  w.close();
  JournalLoadResult reloaded;
  ASSERT_TRUE(loadJournal(path, reloaded).ok());
  EXPECT_FALSE(reloaded.torn_tail);
  EXPECT_EQ(reloaded.records.size(), 3u);
  std::remove(path.c_str());
}

TEST(Journal, HeaderIdentityMismatchFailsClosed) {
  const CheckpointHeader hdr = testHeader();
  EXPECT_EQ(checkJournalHeader(hdr, hdr.config_digest ^ 1, hdr.points_total).kind(),
            Status::Kind::InvalidArgument);
  EXPECT_EQ(checkJournalHeader(hdr, hdr.config_digest, hdr.points_total + 1).kind(),
            Status::Kind::InvalidArgument);
  JournalWriter w;
  JournalLoadResult resumed;
  const std::string path = tempPath("identity");
  {
    JournalWriter create;
    ASSERT_TRUE(create.create(path, hdr).ok());
  }
  CheckpointHeader other = hdr;
  other.config_digest ^= 0xff;
  EXPECT_EQ(w.resume(path, other, resumed).kind(), Status::Kind::InvalidArgument);
  EXPECT_FALSE(w.isOpen());
  std::remove(path.c_str());
}

TEST(Journal, CorruptInteriorLineFailsClosed) {
  std::string text = JournalWriter::headerLine(testHeader()) + "\n" +
                     JournalWriter::recordLine(testRecord(0)) + "\n" +
                     JournalWriter::recordLine(testRecord(1)) + "\n";
  text[text.find("\"index\":0") + 2] = '!';
  JournalLoadResult loaded;
  EXPECT_EQ(parseJournal(text, loaded).kind(), Status::Kind::InvalidArgument);
}

TEST(Journal, MissingOrBogusHeaderFailsClosed) {
  JournalLoadResult loaded;
  EXPECT_EQ(parseJournal("", loaded).kind(), Status::Kind::InvalidArgument);
  EXPECT_EQ(parseJournal("not json\n", loaded).kind(), Status::Kind::InvalidArgument);
  // A record line where the header belongs.
  const std::string beheaded = JournalWriter::recordLine(testRecord(0)) + "\n";
  EXPECT_EQ(parseJournal(beheaded, loaded).kind(), Status::Kind::InvalidArgument);
}

TEST(Journal, OutOfRangeIndexFailsClosed) {
  CheckpointRecord rogue = testRecord(0);
  rogue.index = 9;  // header says points_total = 4
  const std::string text = JournalWriter::headerLine(testHeader()) + "\n" +
                           JournalWriter::recordLine(rogue) + "\n" +
                           JournalWriter::recordLine(testRecord(1)) + "\n";
  JournalLoadResult loaded;
  EXPECT_EQ(parseJournal(text, loaded).kind(), Status::Kind::InvalidArgument);
}

TEST(Journal, CancelledRecordsAreNeverAccepted) {
  // Cancelled is not a terminal classification — a cancelled point re-runs
  // on resume, so a journal claiming one committed is corrupt.
  CheckpointRecord cancelled = testRecord(0);
  cancelled.point.status = Status::makef(Status::Kind::Cancelled, "stop requested");
  const std::string text = JournalWriter::headerLine(testHeader()) + "\n" +
                           JournalWriter::recordLine(cancelled) + "\n" +
                           JournalWriter::recordLine(testRecord(1)) + "\n";
  JournalLoadResult loaded;
  EXPECT_EQ(parseJournal(text, loaded).kind(), Status::Kind::InvalidArgument);
}

TEST(Journal, DuplicateIndicesKeepFirst) {
  CheckpointRecord first = testRecord(1);
  CheckpointRecord second = testRecord(1);
  second.point.deviation_hz = -1.0;  // the impostor
  const std::string text = JournalWriter::headerLine(testHeader()) + "\n" +
                           JournalWriter::recordLine(first) + "\n" +
                           JournalWriter::recordLine(second) + "\n";
  JournalLoadResult loaded;
  ASSERT_TRUE(parseJournal(text, loaded).ok());
  EXPECT_EQ(loaded.duplicates_ignored, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].point.deviation_hz, first.point.deviation_hz);
}

TEST(StatusExitCodes, MappingIsInjectiveAndDocumented) {
  const Status::Kind kinds[] = {
      Status::Kind::Ok,           Status::Kind::InvalidArgument,
      Status::Kind::Timeout,      Status::Kind::LockLost,
      Status::Kind::RelockFailed, Status::Kind::RetryExhausted,
      Status::Kind::SimulationStall, Status::Kind::NoValidPoints,
      Status::Kind::Degraded,     Status::Kind::Internal,
      Status::Kind::DeadlineExceeded, Status::Kind::Cancelled,
  };
  std::set<int> codes;
  for (Status::Kind k : kinds) codes.insert(exitCode(k));
  EXPECT_EQ(codes.size(), std::size(kinds));  // one exit code per kind
  EXPECT_EQ(exitCode(Status::Kind::Ok), 0);
  EXPECT_EQ(exitCode(Status::Kind::InvalidArgument), 2);
  EXPECT_EQ(exitCode(Status::Kind::DeadlineExceeded), 11);
  EXPECT_EQ(exitCode(Status::Kind::Cancelled), 130);  // 128 + SIGINT, shell style
  for (Status::Kind k : kinds) {
    EXPECT_NE(exitCode(k), 1);  // 1 is reserved for generic tool failure
    // Every kind's name parses back to the kind (the journal relies on it).
    Status::Kind parsed;
    ASSERT_TRUE(Status::parseKind(Status::kindName(k), parsed)) << Status::kindName(k);
    EXPECT_EQ(parsed, k);
  }
  Status::Kind ignored;
  EXPECT_FALSE(Status::parseKind("not-a-kind", ignored));
}

}  // namespace
}  // namespace pllbist::core
