#include "core/measurement.hpp"

#include "core/characterization.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "support/test_configs.hpp"
#include "support/tolerance.hpp"

namespace pllbist::core {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

TEST(TransferFunctionMeasurement, ValidatesConfigOnConstruction) {
  pll::PllConfig bad = fastTestConfig();
  bad.divider_n = 0;
  EXPECT_THROW(TransferFunctionMeasurement{bad}, std::invalid_argument);
}

TEST(TransferFunctionMeasurement, RunBistProducesConsistentResult) {
  TransferFunctionMeasurement meas(fastTestConfig());
  const MeasurementResult r = meas.runBist(fastSweepOptions(bist::StimulusKind::MultiToneFsk, 6));
  EXPECT_EQ(r.sweep.points.size(), 6u);
  EXPECT_EQ(r.bode.size(), 6u);
  EXPECT_GT(r.parameters.peaking_db, 0.5);
  EXPECT_NEAR(r.parameters.peak_frequency_hz, 160.0, 40.0);  // omega_p ~ 0.79 fn
}

TEST(TransferFunctionMeasurement, DefaultSweepOptionsTrackDesign) {
  TransferFunctionMeasurement meas(fastTestConfig());
  const bist::SweepOptions opt = meas.defaultSweepOptions(bist::StimulusKind::PureSineFm, 9);
  EXPECT_EQ(opt.modulation_frequencies_hz.size(), 9u);
  // Sweep brackets fn = 200 Hz.
  EXPECT_LT(opt.modulation_frequencies_hz.front(), 200.0);
  EXPECT_GT(opt.modulation_frequencies_hz.back(), 200.0);
  EXPECT_EQ(opt.stimulus, bist::StimulusKind::PureSineFm);
}

TEST(TransferFunctionMeasurement, TheoryAccessors) {
  const pll::PllConfig cfg = fastTestConfig();
  TransferFunctionMeasurement meas(cfg);
  // eqn (4) has the zero; the capacitor response does not.
  EXPECT_EQ(meas.theoryEqn4().zeros().size(), 1u);
  EXPECT_TRUE(meas.theoryCapacitor().zeros().empty());
  EXPECT_NEAR(meas.theoryEqn4().dcGain(), 1.0, 1e-9);
}

TEST(TransferFunctionMeasurement, BistAndBenchSeeTheSamePeakLocation) {
  // The two methods measure different nodes (capacitor vs output), but the
  // resonance sits at the same frequency.
  const pll::PllConfig cfg = fastTestConfig();
  TransferFunctionMeasurement meas(cfg);
  const MeasurementResult bist_result =
      meas.runBist(fastSweepOptions(bist::StimulusKind::MultiToneFsk, 8));

  baseline::BenchOptions bopt;
  bopt.deviation_hz = 100.0;
  bopt.modulation_frequencies_hz = bist_result.sweep.modulationFrequencies();
  bopt.lock_wait_s = 0.05;
  const baseline::BenchResult bench_result = meas.runBench(bopt);

  const auto bench_peak = bench_result.toBode().peak();
  EXPECT_NEAR(bist_result.parameters.peak_frequency_hz,
              radPerSecToHz(bench_peak.omega_rad_per_s), 40.0);
}

TEST(TransferFunctionMeasurement, RunParallelMatchesSerialFarm) {
  TransferFunctionMeasurement meas(fastTestConfig());
  const bist::SweepOptions sweep = fastSweepOptions(bist::StimulusKind::MultiToneFsk, 6);
  bist::ParallelSweepOptions serial_opt;
  serial_opt.jobs = 1;
  bist::ParallelSweepOptions parallel_opt;
  parallel_opt.jobs = 4;
  const MeasurementResult serial = meas.runParallel(sweep, serial_opt);
  const MeasurementResult parallel = meas.runParallel(sweep, parallel_opt);
  ASSERT_TRUE(serial.status.ok()) << serial.status.toString();
  ASSERT_TRUE(parallel.status.ok()) << parallel.status.toString();
  ASSERT_EQ(serial.bode.size(), 6u);
  ASSERT_EQ(parallel.bode.size(), 6u);
  // The farm's determinism contract carries through aggregation: identical
  // Bode points and extracted parameters for any job count.
  for (std::size_t i = 0; i < serial.bode.size(); ++i) {
    // ulpsEqual with 0 ulps == exact equality, but names the intent and
    // prints both operands on failure.
    EXPECT_PRED3(pllbist::testing::ulpsEqual, serial.bode.points()[i].magnitude_db,
                 parallel.bode.points()[i].magnitude_db, 0);
    EXPECT_PRED3(pllbist::testing::ulpsEqual, serial.bode.points()[i].phase_deg,
                 parallel.bode.points()[i].phase_deg, 0);
  }
  EXPECT_EQ(serial.parameters.peaking_db, parallel.parameters.peaking_db);
  EXPECT_GT(serial.parameters.peaking_db, 0.5);
}

TEST(Characterization, ReportsSmallErrorsOnGoldenDevice) {
  const CharacterizationReport report =
      characterize(fastTestConfig(), fastSweepOptions(bist::StimulusKind::MultiToneFsk, 10));
  EXPECT_NEAR(report.design_fn_hz, 200.0, 1e-6);
  EXPECT_NEAR(report.design_zeta, 0.43, 1e-9);
  EXPECT_LT(report.fn_error, 0.12);
  EXPECT_LT(report.zeta_error, 0.25);
  EXPECT_LT(report.f3db_error, 0.15);
  const std::string text = report.render();
  EXPECT_NE(text.find("fn (Hz)"), std::string::npos);
  EXPECT_NE(text.find("zeta"), std::string::npos);
}

}  // namespace
}  // namespace pllbist::core
