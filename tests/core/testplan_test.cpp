#include "core/testplan.hpp"

#include <gtest/gtest.h>

#include "support/test_configs.hpp"

namespace pllbist::core {
namespace {

using pllbist::testing::fastSweepOptions;
using pllbist::testing::fastTestConfig;

bist::SweepOptions planSweep() { return fastSweepOptions(bist::StimulusKind::MultiToneFsk, 8); }

TEST(TestPlan, ToleranceValidation) {
  EXPECT_THROW(TestPlan(fastTestConfig(), planSweep(), 0.0), std::invalid_argument);
  EXPECT_THROW(TestPlan(fastTestConfig(), planSweep(), 1.0), std::invalid_argument);
}

TEST(TestPlan, GoldenDevicePasses) {
  const TestPlan plan(fastTestConfig(), planSweep(), 0.25);
  const TestPlan::DutResult r = plan.screen(fastTestConfig());
  EXPECT_TRUE(r.verdict.pass) << (r.verdict.failures.empty() ? "" : r.verdict.failures[0]);
  EXPECT_FALSE(r.measurement_failed);
}

TEST(TestPlan, GoldenParametersExtracted) {
  const TestPlan plan(fastTestConfig(), planSweep(), 0.25);
  ASSERT_TRUE(plan.goldenParameters().zeta.has_value());
  EXPECT_NEAR(*plan.goldenParameters().zeta, 0.43, 0.08);
  ASSERT_TRUE(plan.limits().min_natural_frequency_hz.has_value());
}

TEST(TestPlan, GrossFrequencyFaultDetected) {
  const TestPlan plan(fastTestConfig(), planSweep(), 0.2);
  // C halved: fn moves by sqrt(2) (about +41%) — outside a 20% band.
  const pll::PllConfig faulty =
      pll::applyFault(fastTestConfig(), {pll::FaultSpec::Kind::FilterCDrift, 0.5});
  const TestPlan::DutResult r = plan.screen(faulty);
  EXPECT_FALSE(r.verdict.pass);
}

TEST(TestPlan, DampingFaultDetected) {
  const TestPlan plan(fastTestConfig(), planSweep(), 0.2);
  // R2 tripled: damping roughly triples, peaking collapses.
  const pll::PllConfig faulty =
      pll::applyFault(fastTestConfig(), {pll::FaultSpec::Kind::FilterR2Drift, 3.0});
  const TestPlan::DutResult r = plan.screen(faulty);
  EXPECT_FALSE(r.verdict.pass);
}

TEST(TestPlan, FaultCoverageReport) {
  const TestPlan plan(fastTestConfig(), planSweep(), 0.2);
  const auto report = plan.faultCoverage(pll::standardFaultSet());
  EXPECT_TRUE(report.golden_passes);
  EXPECT_EQ(report.rows.size(), pll::standardFaultSet().size());
  // The transfer-function signature must catch the bulk of the parametric
  // fault set (the paper's DfT motivation).
  EXPECT_GE(report.coverage(), 0.7) << "coverage " << report.coverage();
}

TEST(TestPlan, CoverageEmptyFaultList) {
  const TestPlan plan(fastTestConfig(), planSweep(), 0.25);
  const auto report = plan.faultCoverage({});
  EXPECT_EQ(report.coverage(), 0.0);
  EXPECT_TRUE(report.rows.empty());
}


TEST(TestPlan, DividerCountFaultCaughtByNominalCheck) {
  // N = 11 instead of 10: fn only shifts by sqrt(10/11) (~5%, inside a 20%
  // band) but the absolute output frequency is 10% high — the nominal
  // check must flag it.
  const TestPlan plan(fastTestConfig(), planSweep(), 0.2);
  const pll::PllConfig faulty =
      pll::applyFault(fastTestConfig(), {pll::FaultSpec::Kind::DividerWrongN, 11.0});
  const TestPlan::DutResult r = plan.screen(faulty);
  EXPECT_FALSE(r.verdict.pass);
  bool nominal_flagged = false;
  for (const auto& f : r.verdict.failures)
    if (f.find("nominal output") != std::string::npos) nominal_flagged = true;
  EXPECT_TRUE(nominal_flagged);
}

TEST(TestPlan, GoldenNominalRecorded) {
  const TestPlan plan(fastTestConfig(), planSweep(), 0.25);
  EXPECT_NEAR(plan.goldenNominalHz(), fastTestConfig().nominalVcoHz(), 50.0);
}

}  // namespace
}  // namespace pllbist::core
