#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include "dsp/window.hpp"

#include <cmath>
#include <random>

#include "common/units.hpp"

namespace pllbist::dsp {
namespace {

TEST(NextPowerOfTwo, Values) {
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fftInPlace(data), std::invalid_argument);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fftInPlace(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcSignalConcentratesInBinZero) {
  std::vector<std::complex<double>> data(16, {2.0, 0.0});
  fftInPlace(data);
  EXPECT_NEAR(data[0].real(), 32.0, 1e-9);
  for (size_t k = 1; k < data.size(); ++k) EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9);
}

TEST(Fft, SingleToneLandsOnBin) {
  const size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < n; ++i)
    data[i] = {std::cos(kTwoPi * 5.0 * static_cast<double>(i) / n), 0.0};
  fftInPlace(data);
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[4]), 0.0, 1e-9);
}

TEST(Fft, MatchesNaiveDft) {
  const size_t n = 32;
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {dist(rng), dist(rng)};

  std::vector<std::complex<double>> naive(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (size_t i = 0; i < n; ++i)
      acc += x[i] * std::polar(1.0, -kTwoPi * static_cast<double>(k * i) / n);
    naive[k] = acc;
  }
  fftInPlace(x);
  for (size_t k = 0; k < n; ++k) EXPECT_NEAR(std::abs(x[k] - naive[k]), 0.0, 1e-9) << "k=" << k;
}

TEST(Fft, RoundTripInverse) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> x(128);
  for (auto& v : x) v = {dist(rng), dist(rng)};
  auto original = x;
  fftInPlace(x);
  fftInPlace(x, /*inverse=*/true);
  for (size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-10);
}

TEST(FftReal, ZeroPadsToPowerOfTwo) {
  std::vector<double> signal(100, 1.0);
  auto spec = fftReal(signal);
  EXPECT_EQ(spec.size(), 128u);
}

TEST(AmplitudeSpectrum, RecoversToneAmplitude) {
  // 3.0 * sin at exactly bin 8 of a 256-point record.
  const size_t n = 256;
  const double fs = 1000.0;
  const double f = 8.0 * fs / static_cast<double>(n);
  std::vector<double> signal(n);
  for (size_t i = 0; i < n; ++i)
    signal[i] = 3.0 * std::sin(kTwoPi * f * static_cast<double>(i) / fs);
  auto spec = amplitudeSpectrum(signal, fs);
  size_t best = 0;
  for (size_t k = 1; k < spec.size(); ++k)
    if (spec[k].amplitude > spec[best].amplitude) best = k;
  EXPECT_NEAR(spec[best].frequency_hz, f, 1e-9);
  EXPECT_NEAR(spec[best].amplitude, 3.0, 1e-9);
}

TEST(AmplitudeSpectrum, DcLevel) {
  std::vector<double> signal(64, 2.5);
  auto spec = amplitudeSpectrum(signal, 100.0);
  EXPECT_NEAR(spec[0].amplitude, 2.5, 1e-9);
}

TEST(AmplitudeSpectrum, RejectsBadRate) {
  EXPECT_THROW(amplitudeSpectrum({1.0, 2.0}, 0.0), std::invalid_argument);
}

TEST(AmplitudeSpectrum, EmptyInputEmptyOutput) {
  EXPECT_TRUE(amplitudeSpectrum({}, 100.0).empty());
}

// --- edge-of-spectrum and guard cases -------------------------------------

TEST(Fft, NyquistAlternationConcentratesInMiddleBin) {
  // x[n] = (-1)^n is the Nyquist tone: all energy lands in bin N/2, and the
  // bin value is exactly N (sum of (+1)^2 terms, no cancellation).
  constexpr size_t kN = 64;
  std::vector<std::complex<double>> data(kN);
  for (size_t i = 0; i < kN; ++i) data[i] = (i % 2 == 0) ? 1.0 : -1.0;
  fftInPlace(data);
  EXPECT_NEAR(std::abs(data[kN / 2]), static_cast<double>(kN), 1e-9);
  for (size_t k = 0; k < kN; ++k) {
    if (k == kN / 2) continue;
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << "bin " << k;
  }
}

TEST(AmplitudeSpectrum, NyquistBinUsesHalfScale) {
  // The single-sided scale doubles every interior bin but not DC or
  // Nyquist; an exact Nyquist alternation of amplitude A must read A, not
  // 2A. (A plain 2/N scale overshoots by exactly 2x here.)
  constexpr size_t kN = 128;
  constexpr double kAmp = 0.75, kFs = 1000.0;
  std::vector<double> x(kN);
  for (size_t i = 0; i < kN; ++i) x[i] = (i % 2 == 0) ? kAmp : -kAmp;
  const auto bins = amplitudeSpectrum(x, kFs);
  ASSERT_EQ(bins.size(), kN / 2 + 1);
  EXPECT_NEAR(bins.back().frequency_hz, kFs / 2.0, 1e-9);
  EXPECT_NEAR(bins.back().amplitude, kAmp, 1e-9);
  EXPECT_NEAR(bins.front().amplitude, 0.0, 1e-9);  // no DC in the alternation
}

TEST(Fft, NonPowerOfTwoGuardCoversInverseAndTrivialSizes) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fftInPlace(data, /*inverse=*/true), std::invalid_argument);
  // Size 1 is a (trivial) power of two: identity transform, no throw.
  std::vector<std::complex<double>> one = {{3.0, -4.0}};
  EXPECT_NO_THROW(fftInPlace(one));
  EXPECT_NEAR(one[0].real(), 3.0, 1e-12);
  EXPECT_NEAR(one[0].imag(), -4.0, 1e-12);
}

TEST(AmplitudeSpectrum, HannWindowBoundsOffBinLeakage) {
  // A tone landing exactly between two bins leaks everywhere with a
  // rectangular window (sidelobes fall off as 1/|k|); under a Hann window
  // the skirt drops fast enough that every bin further than 3 bins from
  // the tone stays below 1% of the tone amplitude. The rectangular skirt
  // violates that bound, which is what makes the windowed test meaningful.
  constexpr size_t kN = 256;
  constexpr double kFs = 256.0;  // bin spacing 1 Hz at n = 256
  const double f_tone = 32.5;    // exactly half-way between bins 32 and 33
  std::vector<double> x(kN);
  for (size_t i = 0; i < kN; ++i)
    x[i] = std::sin(kTwoPi * f_tone * static_cast<double>(i) / kFs);

  const std::vector<double> window = hannWindow(kN);
  const double gain = coherentGain(window);
  const auto rect = amplitudeSpectrum(x, kFs);
  auto windowed = amplitudeSpectrum(applyWindow(x, window), kFs);
  for (auto& b : windowed) b.amplitude /= gain;  // undo the window's coherent loss

  double max_far_rect = 0.0, max_far_hann = 0.0;
  for (size_t k = 0; k < windowed.size(); ++k) {
    const double dist = std::abs(static_cast<double>(k) - f_tone);
    if (dist <= 3.0) continue;
    max_far_rect = std::max(max_far_rect, rect[k].amplitude);
    max_far_hann = std::max(max_far_hann, windowed[k].amplitude);
  }
  EXPECT_LT(max_far_hann, 0.01);           // documented leakage bound
  EXPECT_GT(max_far_rect, max_far_hann);   // the window genuinely helps
  EXPECT_GT(max_far_rect, 0.01);           // and the bound is not vacuous
}

}  // namespace
}  // namespace pllbist::dsp
