#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/units.hpp"

namespace pllbist::dsp {
namespace {

TEST(NextPowerOfTwo, Values) {
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fftInPlace(data), std::invalid_argument);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fftInPlace(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcSignalConcentratesInBinZero) {
  std::vector<std::complex<double>> data(16, {2.0, 0.0});
  fftInPlace(data);
  EXPECT_NEAR(data[0].real(), 32.0, 1e-9);
  for (size_t k = 1; k < data.size(); ++k) EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9);
}

TEST(Fft, SingleToneLandsOnBin) {
  const size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < n; ++i)
    data[i] = {std::cos(kTwoPi * 5.0 * static_cast<double>(i) / n), 0.0};
  fftInPlace(data);
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[4]), 0.0, 1e-9);
}

TEST(Fft, MatchesNaiveDft) {
  const size_t n = 32;
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {dist(rng), dist(rng)};

  std::vector<std::complex<double>> naive(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (size_t i = 0; i < n; ++i)
      acc += x[i] * std::polar(1.0, -kTwoPi * static_cast<double>(k * i) / n);
    naive[k] = acc;
  }
  fftInPlace(x);
  for (size_t k = 0; k < n; ++k) EXPECT_NEAR(std::abs(x[k] - naive[k]), 0.0, 1e-9) << "k=" << k;
}

TEST(Fft, RoundTripInverse) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> x(128);
  for (auto& v : x) v = {dist(rng), dist(rng)};
  auto original = x;
  fftInPlace(x);
  fftInPlace(x, /*inverse=*/true);
  for (size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-10);
}

TEST(FftReal, ZeroPadsToPowerOfTwo) {
  std::vector<double> signal(100, 1.0);
  auto spec = fftReal(signal);
  EXPECT_EQ(spec.size(), 128u);
}

TEST(AmplitudeSpectrum, RecoversToneAmplitude) {
  // 3.0 * sin at exactly bin 8 of a 256-point record.
  const size_t n = 256;
  const double fs = 1000.0;
  const double f = 8.0 * fs / static_cast<double>(n);
  std::vector<double> signal(n);
  for (size_t i = 0; i < n; ++i)
    signal[i] = 3.0 * std::sin(kTwoPi * f * static_cast<double>(i) / fs);
  auto spec = amplitudeSpectrum(signal, fs);
  size_t best = 0;
  for (size_t k = 1; k < spec.size(); ++k)
    if (spec[k].amplitude > spec[best].amplitude) best = k;
  EXPECT_NEAR(spec[best].frequency_hz, f, 1e-9);
  EXPECT_NEAR(spec[best].amplitude, 3.0, 1e-9);
}

TEST(AmplitudeSpectrum, DcLevel) {
  std::vector<double> signal(64, 2.5);
  auto spec = amplitudeSpectrum(signal, 100.0);
  EXPECT_NEAR(spec[0].amplitude, 2.5, 1e-9);
}

TEST(AmplitudeSpectrum, RejectsBadRate) {
  EXPECT_THROW(amplitudeSpectrum({1.0, 2.0}, 0.0), std::invalid_argument);
}

TEST(AmplitudeSpectrum, EmptyInputEmptyOutput) {
  EXPECT_TRUE(amplitudeSpectrum({}, 100.0).empty());
}

}  // namespace
}  // namespace pllbist::dsp
