#include "dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pllbist::dsp {
namespace {

TEST(InterpolateAt, MidpointsAndClamping) {
  std::vector<double> t{0.0, 1.0, 2.0};
  std::vector<double> x{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(interpolateAt(t, x, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interpolateAt(t, x, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(interpolateAt(t, x, -1.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(interpolateAt(t, x, 5.0), 0.0);    // clamp high
  EXPECT_DOUBLE_EQ(interpolateAt(t, x, 1.0), 10.0);   // exact node
}

TEST(InterpolateAt, Validation) {
  EXPECT_THROW(interpolateAt({}, {}, 0.5), std::invalid_argument);
  EXPECT_THROW(interpolateAt({0.0, 1.0}, {0.0}, 0.5), std::invalid_argument);
}

TEST(ResampleUniform, RecoversLinearRamp) {
  std::vector<double> t{0.0, 0.5, 2.0};
  std::vector<double> x{0.0, 1.0, 4.0};  // x = 2t
  auto y = resampleUniform(t, x, 0.0, 0.25, 9);
  ASSERT_EQ(y.size(), 9u);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], 2.0 * 0.25 * static_cast<double>(i), 1e-12);
}

TEST(ResampleUniform, GridOutsideSpanThrows) {
  std::vector<double> t{0.0, 1.0};
  std::vector<double> x{0.0, 1.0};
  EXPECT_THROW(resampleUniform(t, x, 0.5, 0.2, 10), std::invalid_argument);
  EXPECT_THROW(resampleUniform(t, x, -0.1, 0.1, 5), std::invalid_argument);
  EXPECT_THROW(resampleUniform(t, x, 0.0, 0.0, 5), std::invalid_argument);
}

TEST(FrequencyFromEdges, UniformEdges) {
  std::vector<double> edges{0.0, 0.01, 0.02, 0.03};
  auto f = frequencyFromEdges(edges);
  ASSERT_EQ(f.size(), 3u);
  for (const auto& p : f) EXPECT_NEAR(p.value, 100.0, 1e-9);
  EXPECT_NEAR(f[0].time_s, 0.005, 1e-12);
}

TEST(FrequencyFromEdges, ChirpedEdges) {
  // Periods 10 ms then 5 ms -> 100 Hz then 200 Hz.
  auto f = frequencyFromEdges({0.0, 0.01, 0.015});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_NEAR(f[0].value, 100.0, 1e-9);
  EXPECT_NEAR(f[1].value, 200.0, 1e-9);
}

TEST(FrequencyFromEdges, DegenerateInputs) {
  EXPECT_TRUE(frequencyFromEdges({}).empty());
  EXPECT_TRUE(frequencyFromEdges({1.0}).empty());
  EXPECT_THROW(frequencyFromEdges({1.0, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace pllbist::dsp
