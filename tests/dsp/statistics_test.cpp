#include "dsp/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pllbist::dsp {
namespace {

const std::vector<double> kSample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Statistics, Mean) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(Statistics, Variance) { EXPECT_DOUBLE_EQ(variance(kSample), 4.0); }

TEST(Statistics, StandardDeviation) { EXPECT_DOUBLE_EQ(standardDeviation(kSample), 2.0); }

TEST(Statistics, Rms) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({-2.0, 2.0}), 2.0);
}

TEST(Statistics, MinMaxPeakToPeak) {
  EXPECT_DOUBLE_EQ(minValue(kSample), 2.0);
  EXPECT_DOUBLE_EQ(maxValue(kSample), 9.0);
  EXPECT_DOUBLE_EQ(peakToPeak(kSample), 7.0);
}

TEST(Statistics, ArgMaxArgMin) {
  std::vector<double> v{1.0, 5.0, 3.0, 5.0, 0.0};
  EXPECT_EQ(argMax(v), 1u);  // first occurrence
  EXPECT_EQ(argMin(v), 4u);
}

TEST(Statistics, SingleElement) {
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(mean(one), 7.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(peakToPeak(one), 0.0);
}

TEST(Statistics, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(variance(empty), std::invalid_argument);
  EXPECT_THROW(rms(empty), std::invalid_argument);
  EXPECT_THROW(minValue(empty), std::invalid_argument);
  EXPECT_THROW(maxValue(empty), std::invalid_argument);
  EXPECT_THROW(argMax(empty), std::invalid_argument);
  EXPECT_THROW(argMin(empty), std::invalid_argument);
}

}  // namespace
}  // namespace pllbist::dsp
