#include "dsp/tone.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/units.hpp"

namespace pllbist::dsp {
namespace {

std::vector<double> makeSine(double amp, double f, double phase, double offset, double fs,
                             size_t n) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i)
    out[i] = offset + amp * std::sin(kTwoPi * f * static_cast<double>(i) / fs + phase);
  return out;
}

TEST(Goertzel, MatchesDftBin) {
  const double fs = 1000.0;
  const size_t n = 200;
  const double f = 50.0;  // exactly 10 cycles in the record
  auto x = makeSine(2.0, f, 0.3, 0.0, fs, n);
  const auto g = goertzel(x, fs, f);
  // |X| for a sine of amplitude A on-bin = A*n/2.
  EXPECT_NEAR(std::abs(g), 2.0 * n / 2.0, 1e-6);
}

TEST(Goertzel, ZeroForAbsentTone) {
  const double fs = 1000.0;
  auto x = makeSine(1.0, 50.0, 0.0, 0.0, fs, 200);
  EXPECT_NEAR(std::abs(goertzel(x, fs, 125.0)), 0.0, 1e-6);  // orthogonal bin
}

TEST(Goertzel, RejectsBadRates) {
  EXPECT_THROW(goertzel({1.0}, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(goertzel({1.0}, 100.0, -1.0), std::invalid_argument);
}

TEST(FitSine, ExactRecovery) {
  const double fs = 5000.0, f = 87.0;
  auto x = makeSine(1.7, f, 0.9, 0.4, fs, 500);
  const ToneFit fit = fitSineUniform(x, fs, f);
  EXPECT_NEAR(fit.amplitude, 1.7, 1e-9);
  EXPECT_NEAR(fit.phase_rad, 0.9, 1e-9);
  EXPECT_NEAR(fit.offset, 0.4, 1e-9);
  EXPECT_NEAR(fit.residual_rms, 0.0, 1e-9);
}

TEST(FitSine, NegativePhaseRecovered) {
  const double fs = 5000.0, f = 87.0;
  auto x = makeSine(1.0, f, -2.5, 0.0, fs, 500);
  const ToneFit fit = fitSineUniform(x, fs, f);
  EXPECT_NEAR(fit.phase_rad, -2.5, 1e-9);
}

TEST(FitSine, RobustToAdditiveNoise) {
  const double fs = 5000.0, f = 87.0;
  auto x = makeSine(1.0, f, 0.5, 0.0, fs, 4000);
  std::mt19937 rng(42);
  std::normal_distribution<double> noise(0.0, 0.1);
  for (double& v : x) v += noise(rng);
  const ToneFit fit = fitSineUniform(x, fs, f);
  EXPECT_NEAR(fit.amplitude, 1.0, 0.01);
  EXPECT_NEAR(fit.phase_rad, 0.5, 0.01);
  EXPECT_NEAR(fit.residual_rms, 0.1, 0.02);
}

TEST(FitSine, IgnoresOrthogonalInterferer) {
  // Fit at f with a strong tone at 3f present: LS fit at a known frequency
  // over whole periods rejects it.
  const double fs = 6000.0, f = 50.0;
  const size_t n = 600;  // 5 whole periods of f
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = 0.8 * std::sin(kTwoPi * f * t + 1.0) + 2.0 * std::sin(kTwoPi * 3.0 * f * t);
  }
  const ToneFit fit = fitSineUniform(x, fs, f);
  EXPECT_NEAR(fit.amplitude, 0.8, 1e-6);
  EXPECT_NEAR(fit.phase_rad, 1.0, 1e-6);
}

TEST(FitSine, NonUniformSampling) {
  const double f = 10.0;
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> jitter(0.0, 0.3);
  std::vector<double> times, values;
  for (int i = 0; i < 300; ++i) {
    const double t = 0.001 * i + 0.0003 * jitter(rng);
    times.push_back(t);
    values.push_back(2.2 * std::sin(kTwoPi * f * t + 0.7) - 1.0);
  }
  const ToneFit fit = fitSine(times, values, f);
  EXPECT_NEAR(fit.amplitude, 2.2, 1e-9);
  EXPECT_NEAR(fit.phase_rad, 0.7, 1e-9);
  EXPECT_NEAR(fit.offset, -1.0, 1e-9);
}

TEST(FitSine, InputValidation) {
  EXPECT_THROW(fitSine({0.0, 1.0}, {0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(fitSine({0.0, 1.0}, {0.0, 1.0}, 1.0), std::invalid_argument);  // < 3 samples
  EXPECT_THROW(fitSineUniform({1.0, 2.0, 3.0}, 100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(fitSineUniform({1.0, 2.0, 3.0}, 0.0, 10.0), std::invalid_argument);
}

class FitPhaseSweep : public ::testing::TestWithParam<double> {};

TEST_P(FitPhaseSweep, PhaseRecoveredAcrossFullCircle) {
  const double phase = GetParam();
  const double fs = 8000.0, f = 123.0;
  auto x = makeSine(1.0, f, phase, 0.0, fs, 1000);
  const ToneFit fit = fitSineUniform(x, fs, f);
  // compare on the unit circle to avoid 2*pi ambiguity at +/-pi
  EXPECT_NEAR(std::cos(fit.phase_rad), std::cos(phase), 1e-9);
  EXPECT_NEAR(std::sin(fit.phase_rad), std::sin(phase), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Phases, FitPhaseSweep,
                         ::testing::Values(-3.0, -1.5, -0.5, 0.0, 0.5, 1.5, 3.0));

// --- edge-of-spectrum and guard cases -------------------------------------

TEST(Goertzel, DcBinIsThePlainSum) {
  // At f = 0 the correlation kernel is identically 1, so the Goertzel
  // recursion must collapse to a plain sum with no imaginary part.
  const std::vector<double> x = {1.0, -2.0, 3.5, 0.25, -1.75};
  const std::complex<double> dc = goertzel(x, 100.0, 0.0);
  EXPECT_NEAR(dc.real(), 1.0 - 2.0 + 3.5 + 0.25 - 1.75, 1e-12);
  EXPECT_NEAR(dc.imag(), 0.0, 1e-12);
}

TEST(Goertzel, NyquistBinIsTheAlternatingSum) {
  // At f = fs/2 the kernel is (-1)^n: the correlation is the alternating
  // sum, again purely real.
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::complex<double> ny = goertzel(x, 100.0, 50.0);
  EXPECT_NEAR(ny.real(), 1.0 - 2.0 + 3.0 - 4.0 + 5.0 - 6.0, 1e-9);
  EXPECT_NEAR(ny.imag(), 0.0, 1e-9);
}

TEST(Goertzel, MatchesNaiveDftBinInPhaseToo) {
  // Full complex agreement with the defining sum, not just magnitude.
  const double fs = 1000.0, f = 35.0;  // 7 cycles in 200 samples: on-bin
  const size_t n = 200;
  auto x = makeSine(1.3, f, 0.4, 0.2, fs, n);
  std::complex<double> dft = 0.0;
  for (size_t i = 0; i < n; ++i)
    dft += x[i] * std::exp(std::complex<double>(0.0, -kTwoPi * f * static_cast<double>(i) / fs));
  const std::complex<double> g = goertzel(x, fs, f);
  EXPECT_NEAR(g.real(), dft.real(), 1e-6);
  EXPECT_NEAR(g.imag(), dft.imag(), 1e-6);
}

TEST(Goertzel, EmptyInputIsZero) {
  const std::complex<double> z = goertzel({}, 100.0, 10.0);
  EXPECT_EQ(z.real(), 0.0);
  EXPECT_EQ(z.imag(), 0.0);
}

TEST(FitSine, RejectsNonFiniteFrequencyInputs) {
  const std::vector<double> t = {0.0, 0.1, 0.2, 0.3};
  const std::vector<double> v = {0.0, 1.0, 0.0, -1.0};
  EXPECT_THROW(fitSine(t, v, -2.5), std::invalid_argument);
  EXPECT_THROW(fitSine(t, v, 0.0), std::invalid_argument);
}

TEST(FitSine, ConstantSignalFitsAsPureOffset) {
  // A constant record contains no tone: the fit must put everything in the
  // offset and report (near) zero amplitude and residual rather than
  // failing on the (well-conditioned) normal equations.
  const double fs = 1000.0, f = 50.0;
  const std::vector<double> v(64, 2.5);
  const ToneFit fit = fitSineUniform(v, fs, f);
  EXPECT_NEAR(fit.offset, 2.5, 1e-9);
  EXPECT_NEAR(fit.amplitude, 0.0, 1e-9);
  EXPECT_NEAR(fit.residual_rms, 0.0, 1e-9);
}

}  // namespace
}  // namespace pllbist::dsp
