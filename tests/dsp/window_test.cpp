#include "dsp/window.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pllbist::dsp {
namespace {

TEST(Window, RectangularAllOnes) {
  auto w = rectangularWindow(8);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(coherentGain(w), 1.0);
}

TEST(Window, HannEndpointsZeroCenterOne) {
  auto w = hannWindow(9);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[4], 1.0, 1e-12);
}

TEST(Window, HannCoherentGainNearHalf) {
  EXPECT_NEAR(coherentGain(hannWindow(1024)), 0.5, 1e-3);
}

TEST(Window, HammingEndpoints) {
  auto w = hammingWindow(11);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w.back(), 0.08, 1e-12);
  EXPECT_NEAR(w[5], 1.0, 1e-12);
}

TEST(Window, BlackmanEndpointsNearZero) {
  auto w = blackmanWindow(11);
  EXPECT_NEAR(w.front(), 0.0, 1e-9);
  EXPECT_NEAR(w[5], 1.0, 1e-9);
}

TEST(Window, SymmetryProperty) {
  for (auto make : {hannWindow, hammingWindow, blackmanWindow}) {
    auto w = make(17);
    for (size_t i = 0; i < w.size(); ++i)
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
  }
}

TEST(Window, LengthOneIsFinite) {
  EXPECT_EQ(hannWindow(1).size(), 1u);
  EXPECT_FALSE(std::isnan(hannWindow(1)[0]));
}

TEST(Window, ZeroLengthThrows) {
  EXPECT_THROW(hannWindow(0), std::invalid_argument);
  EXPECT_THROW(rectangularWindow(0), std::invalid_argument);
}

TEST(Window, ApplyWindowElementwise) {
  std::vector<double> signal{1.0, 2.0, 3.0};
  std::vector<double> window{0.5, 1.0, 0.5};
  auto out = applyWindow(signal, window);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 1.5);
  EXPECT_THROW(applyWindow(signal, {1.0}), std::invalid_argument);
}

TEST(Window, CoherentGainEmptyThrows) {
  EXPECT_THROW(coherentGain({}), std::invalid_argument);
}

}  // namespace
}  // namespace pllbist::dsp
