#include <gtest/gtest.h>

#include <string>

#include "golden/differential.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace pllbist::golden {
namespace {

// Strip the documented timing fields and re-serialise canonically.
std::string canonicalWithoutTiming(const std::string& text) {
  obs::JsonValue root;
  const Status s = obs::parseJson(text, root);
  EXPECT_TRUE(s.ok()) << s.toString();
  obs::stripTimingFields(root);
  return root.dump();
}

// PR-2 guarantees the point farm is bit-identical across job counts; the
// differential layer must preserve that all the way into the serialised
// golden report. Everything except wall-clock timings — measured values,
// deltas, verdicts, digests — must match byte for byte.
TEST(GoldenDeterminism, JobsCountDoesNotChangeTheReport) {
  const SeededConfig device = seededRandomConfig(11);

  DifferentialOptions serial;
  serial.seed = 11;
  serial.jobs = 1;
  DifferentialOptions farmed = serial;
  farmed.jobs = 8;

  const DifferentialReport a = runDifferential(device.config, serial, "determinism");
  const DifferentialReport b = runDifferential(device.config, farmed, "determinism");

  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.compared, b.compared);
  EXPECT_EQ(a.config_digest, b.config_digest);

  // The raw documents differ in the jobs field and timings by design;
  // normalise jobs and strip timings, then require byte identity.
  obs::JsonValue ja, jb;
  ASSERT_TRUE(obs::parseJson(a.toJson(), ja).ok());
  ASSERT_TRUE(obs::parseJson(b.toJson(), jb).ok());
  ja.find("config")->find("jobs")->number = 0;
  jb.find("config")->find("jobs")->number = 0;
  obs::stripTimingFields(ja);
  obs::stripTimingFields(jb);
  EXPECT_EQ(ja.dump(), jb.dump());
}

// Same seed, same options: the whole pipeline is a pure function, so two
// runs serialise byte-identically once timing fields are stripped.
TEST(GoldenDeterminism, RepeatRunsAreByteIdentical) {
  const SeededConfig device = seededRandomConfig(17);
  DifferentialOptions options;
  options.seed = 17;
  const DifferentialReport a = runDifferential(device.config, options, "repeat");
  const DifferentialReport b = runDifferential(device.config, options, "repeat");
  EXPECT_EQ(canonicalWithoutTiming(a.toJson()), canonicalWithoutTiming(b.toJson()));
}

// Different seeds pick different devices, so the reports must differ — a
// guard against the seed silently not reaching the generator.
TEST(GoldenDeterminism, DifferentSeedsProduceDifferentReports) {
  DifferentialOptions o1, o2;
  o1.seed = 19;
  o2.seed = 23;
  const DifferentialReport a = runDifferential(seededRandomConfig(19).config, o1, "seeded");
  const DifferentialReport b = runDifferential(seededRandomConfig(23).config, o2, "seeded");
  EXPECT_NE(a.config_digest, b.config_digest);
  EXPECT_NE(canonicalWithoutTiming(a.toJson()), canonicalWithoutTiming(b.toJson()));
}

}  // namespace
}  // namespace pllbist::golden
