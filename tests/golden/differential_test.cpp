#include "golden/differential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "pll/config.hpp"

namespace pllbist::golden {
namespace {

TEST(ToleranceBands, DefaultsAreAscendingAndLookupWorks) {
  const ToleranceBands bands = ToleranceBands::defaults();
  ASSERT_GE(bands.bands.size(), 3u);
  double prev = 0.0;
  for (const ToleranceBand& b : bands.bands) {
    EXPECT_GT(b.f_over_fn_max, prev);
    EXPECT_GT(b.magnitude_db, 0.0);
    EXPECT_GT(b.phase_deg, 0.0);
    prev = b.f_over_fn_max;
  }
  // The in-band contract is the acceptance bound of the whole suite.
  const ToleranceBand* in_band = bands.bandFor(0.3);
  ASSERT_NE(in_band, nullptr);
  EXPECT_LE(in_band->magnitude_db, 1.0);
  EXPECT_LE(in_band->phase_deg, 5.0);
  // Beyond the last band: excluded.
  EXPECT_EQ(bands.bandFor(prev * 1.01), nullptr);
  // Band edges are inclusive.
  EXPECT_NE(bands.bandFor(prev), nullptr);
}

TEST(SeededRandomConfig, DeterministicAndSpansDampingRegimes) {
  std::set<std::string> pump_kinds;
  bool saw_underdamped = false, saw_overdamped = false;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const SeededConfig a = seededRandomConfig(seed);
    const SeededConfig b = seededRandomConfig(seed);
    EXPECT_EQ(a.fn_hz, b.fn_hz) << "seed " << seed;
    EXPECT_EQ(a.zeta, b.zeta) << "seed " << seed;
    EXPECT_GE(a.fn_hz, 120.0);
    EXPECT_LE(a.fn_hz, 420.0);
    EXPECT_GE(a.zeta, 0.3);
    EXPECT_LE(a.zeta, 1.5);
    if (a.zeta < 1.0 / std::sqrt(2.0)) saw_underdamped = true;
    if (a.zeta > 1.0) saw_overdamped = true;
    pump_kinds.insert(a.config.pump.kind == pll::PumpKind::Voltage4046 ? "voltage" : "current");
    EXPECT_NO_THROW(a.config.validate());
  }
  EXPECT_TRUE(saw_underdamped);
  EXPECT_TRUE(saw_overdamped);
  EXPECT_EQ(pump_kinds.size(), 2u);
}

// The acceptance gate of the PR: >= 25 seeded devices spanning under- and
// over-damped regimes and both pump kinds, each swept through the full
// simulator + BIST stack and held to the documented band tolerances
// against the analytical oracle.
class DifferentialSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSeeds, SweepAgreesWithOracleWithinBands) {
  const SeededConfig device = seededRandomConfig(GetParam());
  DifferentialOptions options;
  options.seed = GetParam();
  const DifferentialReport rep =
      runDifferential(device.config, options, "seed-" + std::to_string(GetParam()));

  EXPECT_TRUE(rep.sweep_status.ok()) << rep.sweep_status.toString();
  EXPECT_GT(rep.compared, 0);
  EXPECT_TRUE(rep.pass) << "device fn = " << device.fn_hz << " Hz, zeta = " << device.zeta
                        << ", max |d|dB = " << rep.max_abs_delta_db
                        << ", max |d|deg = " << rep.max_abs_delta_phase_deg;
  // In-band points carry the tight contract: the acceptance criterion of
  // +-1 dB / +-5 deg is enforced per point by pass above; double-check the
  // band labels were applied.
  for (const ComparisonPoint& p : rep.points) {
    if (p.f_over_fn <= 0.40) {
      EXPECT_EQ(p.band, "in-band");
      EXPECT_TRUE(p.compared) << "in-band point dropped at fm = " << p.fm_hz;
    }
  }

  // The emitted report conforms to its schema.
  const Status valid = obs::validateGoldenReportText(rep.toJson());
  EXPECT_TRUE(valid.ok()) << valid.toString();
}

INSTANTIATE_TEST_SUITE_P(GoldenSweep, DifferentialSeeds,
                         ::testing::Range<uint64_t>(1, 27),  // 26 seeded devices
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(Differential, ReportCarriesConfigIdentity) {
  const SeededConfig device = seededRandomConfig(7);
  DifferentialOptions options;
  options.seed = 7;
  const DifferentialReport rep = runDifferential(device.config, options, "identity");
  EXPECT_EQ(rep.device, "identity");
  EXPECT_NE(rep.config_digest, 0u);
  EXPECT_EQ(rep.seed, 7u);
  EXPECT_EQ(rep.points.size(), static_cast<size_t>(options.points));
  // Same device, different sweep seed: digest is a function of the device
  // and plan, not of the measured values.
  DifferentialOptions other = options;
  other.seed = 8;
  const DifferentialReport rep2 = runDifferential(device.config, other, "identity");
  EXPECT_NE(rep.config_digest, rep2.config_digest);  // jitter_seed is part of the plan
}

TEST(Differential, RejectsDegenerateOptions) {
  const pll::PllConfig config = pll::scaledTestConfig();
  DifferentialOptions options;
  options.points = 1;
  EXPECT_THROW(runDifferential(config, options), std::invalid_argument);
  options = {};
  options.f_min_over_fn = 0.0;
  EXPECT_THROW(runDifferential(config, options), std::invalid_argument);
  options = {};
  options.f_max_over_fn = options.f_min_over_fn;
  EXPECT_THROW(runDifferential(config, options), std::invalid_argument);
}

TEST(Differential, JsonRoundTripsThroughParser) {
  DifferentialOptions options;
  options.seed = 3;
  const DifferentialReport rep =
      runDifferential(seededRandomConfig(3).config, options, "roundtrip");
  const std::string text = rep.toJson();
  obs::JsonValue root;
  ASSERT_TRUE(parseJson(text, root).ok());
  ASSERT_TRUE(obs::validateGoldenReportJson(root).ok());
  // Canonical re-serialisation is stable: dump -> parse -> dump fixpoint.
  const std::string dumped = root.dump();
  obs::JsonValue again;
  ASSERT_TRUE(parseJson(dumped, again).ok());
  EXPECT_EQ(again.dump(), dumped);
}

}  // namespace
}  // namespace pllbist::golden
