#include "golden/linear_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "control/grid.hpp"
#include "pll/config.hpp"
#include "support/tolerance.hpp"

namespace pllbist::golden {
namespace {

using pllbist::testing::wrapDegrees;

TEST(GoldenParameters, VoltagePumpHitsRequestedResponse) {
  const pll::PllConfig config = pll::scaledTestConfig(200.0, 0.43);
  const GoldenParameters p = deriveParameters(config);
  EXPECT_NEAR(p.naturalFrequencyHz(), 200.0, 200.0 * 1e-9);
  EXPECT_NEAR(p.zeta, 0.43, 0.43 * 1e-9);
  EXPECT_GT(p.tau2_s, 0.0);
  EXPECT_GT(p.loop_gain_per_s, 0.0);
}

TEST(GoldenParameters, CurrentPumpHitsRequestedResponse) {
  const pll::PllConfig config = pll::scaledCurrentPumpConfig(150.0, 0.9);
  const GoldenParameters p = deriveParameters(config);
  EXPECT_NEAR(p.naturalFrequencyHz(), 150.0, 150.0 * 1e-9);
  EXPECT_NEAR(p.zeta, 0.9, 0.9 * 1e-9);
}

// The oracle re-derives (wn, zeta) from the raw electrical constants; the
// control layer solves the closed-loop denominator. Independent routes to
// the same numbers — a bug in either shows up here.
TEST(GoldenParameters, AgreesWithControlLayerSecondOrder) {
  for (const pll::PllConfig& config :
       {pll::scaledTestConfig(200.0, 0.43), pll::scaledTestConfig(320.0, 1.2),
        pll::scaledCurrentPumpConfig(180.0, 0.5), pll::referenceConfig()}) {
    const GoldenParameters p = deriveParameters(config);
    const control::SecondOrderParams so = config.secondOrder();
    EXPECT_NEAR(p.omega_n_rad_per_s, so.omega_n_rad_per_s, std::abs(so.omega_n_rad_per_s) * 1e-9);
    EXPECT_NEAR(p.zeta, so.zeta, std::abs(so.zeta) * 1e-9);
  }
}

TEST(GoldenParameters, ThrowsOnInvalidConfig) {
  pll::PllConfig config = pll::scaledTestConfig();
  config.divider_n = 0;
  EXPECT_THROW((void)deriveParameters(config), std::invalid_argument);
}

// Cross-check the whole curve against the polynomial machinery the rest of
// the repo uses. Agreement must be at numerical precision: both are exact
// closed forms of the same plant.
TEST(GoldenModel, MatchesCapacitorNodeTransferFunction) {
  const pll::PllConfig config = pll::scaledTestConfig(200.0, 0.43);
  const GoldenModel model(config);
  const control::TransferFunction tf = config.capacitorNodeTf();
  for (double fm : control::logspace(10.0, 2000.0, 25)) {
    const double w = hzToRadPerSec(fm);
    EXPECT_NEAR(model.magnitudeDb(fm), tf.magnitudeDbAt(w), 1e-9) << "fm = " << fm;
    EXPECT_NEAR(wrapDegrees(model.phaseDeg(fm) - tf.phaseDegAt(w)), 0.0, 1e-9) << "fm = " << fm;
  }
}

TEST(GoldenModel, MatchesDividedOutputTransferFunction) {
  const pll::PllConfig config = pll::scaledCurrentPumpConfig(200.0, 0.7);
  const GoldenModel model(config);
  const control::TransferFunction tf = config.closedLoopDividedTf();
  for (double fm : control::logspace(10.0, 2000.0, 25)) {
    const double w = hzToRadPerSec(fm);
    EXPECT_NEAR(model.magnitudeDb(fm, ResponseKind::DividedOutput), tf.magnitudeDbAt(w), 1e-9)
        << "fm = " << fm;
    EXPECT_NEAR(
        wrapDegrees(model.phaseDeg(fm, ResponseKind::DividedOutput) - tf.phaseDegAt(w)), 0.0,
        1e-9)
        << "fm = " << fm;
  }
}

TEST(GoldenModel, DcAnchorsAndNinetyDegreeCrossing) {
  const GoldenModel model(pll::scaledTestConfig(200.0, 0.43));
  EXPECT_NEAR(model.magnitudeDb(1e-3), 0.0, 1e-6);
  EXPECT_NEAR(model.phaseDeg(1e-3), 0.0, 1e-3);
  // The two-pole phase crosses exactly -90 degrees at fn.
  EXPECT_NEAR(model.phaseDeg(model.phase90CrossingHz()), -90.0, 1e-9);
}

TEST(GoldenModel, PeakingMatchesClosedForm) {
  const double zeta = 0.43;
  const GoldenModel model(pll::scaledTestConfig(200.0, zeta));
  ASSERT_TRUE(model.peakFrequencyHz().has_value());
  ASSERT_TRUE(model.peakingDb().has_value());
  const double fp = *model.peakFrequencyHz();
  EXPECT_NEAR(fp, 200.0 * std::sqrt(1.0 - 2.0 * zeta * zeta), 1e-6);
  // The analytic peak height 1/(2*zeta*sqrt(1-zeta^2)).
  const double expected_db = amplitudeToDb(1.0 / (2.0 * zeta * std::sqrt(1.0 - zeta * zeta)));
  EXPECT_NEAR(*model.peakingDb(), expected_db, 1e-9);
  // And the curve really is highest there.
  EXPECT_NEAR(model.magnitudeDb(fp), expected_db, 1e-9);
  EXPECT_LT(model.magnitudeDb(fp * 1.05), *model.peakingDb());
  EXPECT_LT(model.magnitudeDb(fp * 0.95), *model.peakingDb());
}

TEST(GoldenModel, NoPeakAboveCriticalFlatness) {
  const GoldenModel model(pll::scaledTestConfig(200.0, 0.8));  // zeta > 1/sqrt(2)
  EXPECT_FALSE(model.peakFrequencyHz().has_value());
  EXPECT_FALSE(model.peakingDb().has_value());
}

TEST(GoldenModel, BandwidthIsTheHalfPowerPoint) {
  for (double zeta : {0.35, 0.7071, 1.3}) {
    const GoldenModel model(pll::scaledTestConfig(200.0, zeta));
    const double bw = model.bandwidth3DbHz();
    EXPECT_GT(bw, 0.0);
    EXPECT_NEAR(model.magnitudeDb(bw), amplitudeToDb(1.0 / std::sqrt(2.0)), 1e-9)
        << "zeta = " << zeta;
  }
}

TEST(GoldenModel, StepResponseAllDampingRegimes) {
  for (double zeta : {0.3, 0.9999995, 1.0, 1.7}) {
    const GoldenModel model(pll::scaledTestConfig(200.0, zeta));
    const double tn = 1.0 / model.naturalFrequencyHz();
    EXPECT_NEAR(model.stepResponse(0.0), 0.0, 1e-12) << "zeta = " << zeta;
    EXPECT_NEAR(model.stepResponse(60.0 * tn), 1.0, 1e-6) << "zeta = " << zeta;
    // Sample a dense grid: the overshoot over the whole response matches
    // the closed-form first-overshoot fraction.
    double peak = 0.0;
    for (int i = 1; i <= 4000; ++i) {
      const double y = model.stepResponse(i * (20.0 * tn / 4000.0));
      if (y > peak) peak = y;
    }
    EXPECT_NEAR(peak - 1.0, model.stepOvershootFraction(), 2e-3) << "zeta = " << zeta;
  }
}

// The critically-damped closed form must join the under/overdamped branches
// continuously — a classic source of sign errors.
TEST(GoldenModel, StepResponseContinuousAcrossCriticalDamping) {
  const GoldenModel under(pll::scaledTestConfig(200.0, 0.999999));
  const GoldenModel critical(pll::scaledTestConfig(200.0, 1.0));
  const GoldenModel over(pll::scaledTestConfig(200.0, 1.000001));
  const double tn = 1.0 / 200.0;
  for (double t : {0.1 * tn, 0.5 * tn, tn, 3.0 * tn}) {
    EXPECT_NEAR(under.stepResponse(t), critical.stepResponse(t), 1e-4) << "t = " << t;
    EXPECT_NEAR(over.stepResponse(t), critical.stepResponse(t), 1e-4) << "t = " << t;
  }
}

TEST(GoldenModel, LockEstimatesAreOrderedAndPositive) {
  const GoldenModel model(pll::scaledTestConfig(200.0, 0.43));
  EXPECT_GT(model.lockInRangeHz(), 0.0);
  EXPECT_GT(model.pullOutRangeHz(), 0.0);
  // Fast capture is a subset of pull-out for any zeta > 0:
  // 2*zeta*wn < 1.8*wn*(zeta+1).
  EXPECT_LT(model.lockInRangeHz(), model.pullOutRangeHz());
  EXPECT_NEAR(model.lockInTimeS(), 1.0 / 200.0, 1e-12);
}

TEST(GoldenModel, CurveSamplesMatchPointEvaluation) {
  const GoldenModel model(pll::scaledTestConfig(250.0, 0.6));
  const std::vector<double> grid = control::logspace(50.0, 800.0, 7);
  const std::vector<GoldenPoint> curve = model.curve(grid, ResponseKind::DividedOutput);
  ASSERT_EQ(curve.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i].fm_hz, grid[i]);
    EXPECT_DOUBLE_EQ(curve[i].magnitude_db,
                     model.magnitudeDb(grid[i], ResponseKind::DividedOutput));
    EXPECT_DOUBLE_EQ(curve[i].phase_deg, model.phaseDeg(grid[i], ResponseKind::DividedOutput));
  }
}

TEST(GoldenModel, ResponseKindNames) {
  EXPECT_STREQ(to_string(ResponseKind::CapacitorNode), "capacitor-node");
  EXPECT_STREQ(to_string(ResponseKind::DividedOutput), "divided-output");
}

}  // namespace
}  // namespace pllbist::golden
