#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bist/controller.hpp"
#include "control/grid.hpp"
#include "golden/linear_model.hpp"
#include "pll/config.hpp"
#include "support/tolerance.hpp"

namespace pllbist::golden {
namespace {

// Metamorphic properties: instead of comparing against known-good outputs,
// each test transforms the *input* in a way whose effect on the output is
// known exactly, and checks the relation. These catch whole-pipeline sign
// and scaling errors that pointwise tolerances can absorb.

// Property 1: scaling Ip and C together by the same factor leaves wn
// untouched — wn = sqrt(Ip*Ko/(2*pi*N*C)), the factor cancels. (zeta moves
// with it: zeta = wn*R2*C/2 picks up the C scale.)
TEST(Metamorphic, PumpCurrentCapacitanceScalingLeavesNaturalFrequencyFixed) {
  const pll::PllConfig base = pll::scaledCurrentPumpConfig(220.0, 0.8);
  const GoldenParameters p0 = deriveParameters(base);
  for (double k : {0.5, 2.0, 8.0}) {
    pll::PllConfig scaled = base;
    scaled.pump.pump_current_a *= k;
    scaled.pump.c_farad *= k;
    const GoldenParameters p = deriveParameters(scaled);
    EXPECT_NEAR(p.omega_n_rad_per_s, p0.omega_n_rad_per_s, p0.omega_n_rad_per_s * 1e-12)
        << "k = " << k;
    EXPECT_NEAR(p.zeta, p0.zeta * k, p0.zeta * k * 1e-12) << "k = " << k;
  }
}

// Property 2: doubling the feedback divider halves the loop gain, so fn
// shifts by exactly 1/sqrt(2); the DC gain of the normalised closed loop
// stays 0 dB.
TEST(Metamorphic, DoublingDividerShiftsNaturalFrequencyBySqrtHalf) {
  for (const pll::PllConfig& base :
       {pll::scaledTestConfig(200.0, 0.43), pll::scaledCurrentPumpConfig(200.0, 0.43)}) {
    const GoldenParameters p0 = deriveParameters(base);
    pll::PllConfig doubled = base;
    doubled.divider_n *= 2;
    const GoldenParameters p = deriveParameters(doubled);
    EXPECT_NEAR(p.omega_n_rad_per_s, p0.omega_n_rad_per_s / std::sqrt(2.0),
                p0.omega_n_rad_per_s * 1e-12);
    const GoldenModel model(p);
    EXPECT_NEAR(model.magnitudeDb(1e-4), 0.0, 1e-6);
  }
}

// Property 3: the loop is linear in the stimulus, so halving the FM depth
// halves the measured held deviation and leaves the *normalised* transfer
// curve in place. Runs the real simulator + BIST stack.
TEST(Metamorphic, HalvingFmDepthHalvesMeasuredDeviation) {
  const pll::PllConfig config = pll::scaledTestConfig(200.0, 0.43);
  bist::SweepOptions options =
      bist::quickSweepOptions(config, bist::StimulusKind::MultiToneFsk, 3);
  options.modulation_frequencies_hz = {60.0, 110.0, 200.0};
  // Two quantisers would otherwise swamp the linearity check: the DCO
  // synthesises each FSK step as an integer division of the master clock
  // (step error ~ master/m^2), and the held-output counter resolves ~1
  // count per gate. Raise the master clock 10x and stretch the gate so
  // both stay well under the tolerance at either depth.
  options.deviation_hz = config.ref_frequency_hz * 0.02;
  options.master_clock_hz *= 10.0;
  options.sequencer.freq_gate_s *= 4.0;

  bist::SweepOptions halved = options;
  halved.deviation_hz = options.deviation_hz / 2.0;

  const bist::MeasuredResponse full = bist::BistController(config, options).run();
  const bist::MeasuredResponse half = bist::BistController(config, halved).run();
  ASSERT_EQ(full.points.size(), half.points.size());

  for (size_t i = 0; i < full.points.size(); ++i) {
    ASSERT_FALSE(full.points[i].timed_out);
    ASSERT_FALSE(half.points[i].timed_out);
    // Raw held deviations scale with the stimulus...
    const double ratio = full.points[i].deviation_hz / half.points[i].deviation_hz;
    EXPECT_NEAR(ratio, 2.0, 0.05) << "fm = " << full.points[i].modulation_hz;
  }
  // ...so the normalised curves coincide (the DC reference halves too).
  const control::BodeResponse bode_full = full.toBode();
  const control::BodeResponse bode_half = half.toBode();
  for (size_t i = 0; i < bode_full.size(); ++i) {
    EXPECT_DB_NEAR(bode_half.points()[i].magnitude_db, bode_full.points()[i].magnitude_db, 0.3)
        << "fm = " << full.points[i].modulation_hz;
  }
}

// Property 4: the normalised response depends only on (f/fn, zeta, tau2*fn).
// Scaling the parameter set by a power of two scales every intermediate by
// exact powers of two, so evaluation at the scaled frequency is not merely
// close — it is bit-identical.
TEST(Metamorphic, TimeAxisScalingIsFloatExact) {
  const GoldenParameters p0 = deriveParameters(pll::scaledTestConfig(200.0, 0.43));
  constexpr double kAlpha = 2.0;  // power of two: exact in binary floating point
  GoldenParameters scaled = p0;
  scaled.omega_n_rad_per_s = p0.omega_n_rad_per_s * kAlpha;
  scaled.tau2_s = p0.tau2_s / kAlpha;
  scaled.loop_gain_per_s = p0.loop_gain_per_s * kAlpha;

  const GoldenModel base(p0);
  const GoldenModel fast(scaled);
  for (ResponseKind kind : {ResponseKind::CapacitorNode, ResponseKind::DividedOutput}) {
    for (double fm : control::logspace(20.0, 2000.0, 13)) {
      EXPECT_EQ(fast.magnitudeDb(fm * kAlpha, kind), base.magnitudeDb(fm, kind))
          << to_string(kind) << " fm = " << fm;
      EXPECT_EQ(fast.phaseDeg(fm * kAlpha, kind), base.phaseDeg(fm, kind))
          << to_string(kind) << " fm = " << fm;
    }
  }
  // The time-domain closed forms scale reciprocally.
  const double tn = 1.0 / base.naturalFrequencyHz();
  for (double t : {0.1 * tn, 0.5 * tn, 2.0 * tn}) {
    EXPECT_EQ(fast.stepResponse(t / kAlpha), base.stepResponse(t)) << "t = " << t;
  }
}

}  // namespace
}  // namespace pllbist::golden
