#include "golden/phase_integrator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "golden/linear_model.hpp"
#include "pll/config.hpp"
#include "support/tolerance.hpp"

namespace pllbist::golden {
namespace {

// The two references share no code: the integrator works on the raw
// electrical ODEs, the model on the derived (wn, zeta, tau2). Both solve
// the same linear plant exactly, so agreement should be limited only by
// RK4 step error and the residual start-up transient — well under the
// band tolerances the BIST comparison later uses.
constexpr double kMagTolDb = 0.05;
constexpr double kPhaseTolDeg = 0.5;

TEST(PhaseIntegrator, MatchesOracleVoltagePumpCapacitorNode) {
  const pll::PllConfig config = pll::scaledTestConfig(200.0, 0.43);
  const GoldenModel model(config);
  for (double fm : {60.0, 150.0, 200.0, 340.0}) {
    const IntegratorPoint p = integratePoint(config, fm, 10.0, ResponseKind::CapacitorNode);
    EXPECT_DB_NEAR(p.magnitude_db, model.magnitudeDb(fm), kMagTolDb) << "fm = " << fm;
    EXPECT_PHASE_NEAR_DEG(p.phase_deg, model.phaseDeg(fm), kPhaseTolDeg) << "fm = " << fm;
  }
}

TEST(PhaseIntegrator, MatchesOracleVoltagePumpDividedOutput) {
  const pll::PllConfig config = pll::scaledTestConfig(200.0, 0.43);
  const GoldenModel model(config);
  for (double fm : {60.0, 200.0, 340.0}) {
    const IntegratorPoint p = integratePoint(config, fm, 10.0, ResponseKind::DividedOutput);
    EXPECT_DB_NEAR(p.magnitude_db, model.magnitudeDb(fm, ResponseKind::DividedOutput), kMagTolDb)
        << "fm = " << fm;
    EXPECT_PHASE_NEAR_DEG(p.phase_deg, model.phaseDeg(fm, ResponseKind::DividedOutput),
                          kPhaseTolDeg)
        << "fm = " << fm;
  }
}

TEST(PhaseIntegrator, MatchesOracleCurrentPumpBothKinds) {
  const pll::PllConfig config = pll::scaledCurrentPumpConfig(180.0, 0.9);
  const GoldenModel model(config);
  for (ResponseKind kind : {ResponseKind::CapacitorNode, ResponseKind::DividedOutput}) {
    for (double fm : {70.0, 180.0, 300.0}) {
      const IntegratorPoint p = integratePoint(config, fm, 10.0, kind);
      EXPECT_DB_NEAR(p.magnitude_db, model.magnitudeDb(fm, kind), kMagTolDb)
          << to_string(kind) << " fm = " << fm;
      EXPECT_PHASE_NEAR_DEG(p.phase_deg, model.phaseDeg(fm, kind), kPhaseTolDeg)
          << to_string(kind) << " fm = " << fm;
    }
  }
}

TEST(PhaseIntegrator, ResidualIsSmallRelativeToSignal) {
  const pll::PllConfig config = pll::scaledTestConfig(200.0, 0.6);
  const IntegratorPoint p = integratePoint(config, 150.0, 10.0);
  // The fitted signal amplitude is ~N*dev = 100 Hz; the linear loop's
  // response is a pure sine, so the fit residual must be tiny.
  EXPECT_GE(p.residual_rms, 0.0);
  EXPECT_LT(p.residual_rms, 1.0);
}

TEST(PhaseIntegrator, SweepPreservesOrderAndSize) {
  const pll::PllConfig config = pll::scaledTestConfig(200.0, 0.43);
  const std::vector<double> grid = {80.0, 160.0, 320.0};
  const std::vector<IntegratorPoint> pts = integrateSweep(config, grid, 10.0);
  ASSERT_EQ(pts.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) EXPECT_DOUBLE_EQ(pts[i].fm_hz, grid[i]);
  // Magnitude rolls off between the in-band point and the far point.
  EXPECT_GT(pts.front().magnitude_db, pts.back().magnitude_db);
}

TEST(PhaseIntegrator, RejectsBadArguments) {
  const pll::PllConfig config = pll::scaledTestConfig();
  EXPECT_THROW(integratePoint(config, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(integratePoint(config, 100.0, 0.0), std::invalid_argument);
  PhaseIntegratorOptions coarse;
  coarse.steps_per_period = 4;
  EXPECT_THROW(integratePoint(config, 100.0, 10.0, ResponseKind::CapacitorNode, coarse),
               std::invalid_argument);
}

}  // namespace
}  // namespace pllbist::golden
