#include <gtest/gtest.h>

#include <cmath>

#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "common/units.hpp"
#include "pll/config.hpp"

namespace pllbist {
namespace {

/// Paper-scale end-to-end reproduction guard: runs the Table 3 device with
/// the Table 3 stimulus (10-step multi-tone FSK from a 1 MHz DCO, +/-10 Hz
/// deviation) and asserts the Figure 10/11/12 anchors. Slower than the
/// module tests (~1 s) but pins the headline result in CI.
class ReferenceReproduction : public ::testing::Test {
 protected:
  static const bist::MeasuredResponse& measured() {
    static const bist::MeasuredResponse result = [] {
      const pll::PllConfig cfg = pll::referenceConfig();
      const pll::ReferenceStimulus stim = pll::referenceStimulus();
      bist::SweepOptions opt;
      opt.stimulus = bist::StimulusKind::MultiToneFsk;
      opt.fm_steps = stim.fm_steps;
      opt.deviation_hz = stim.max_deviation_hz;
      opt.master_clock_hz = stim.master_clock_hz;
      opt.modulation_frequencies_hz = bist::SweepOptions::defaultSweep(8.0, 10);
      bist::BistController controller(cfg, opt);
      return controller.run();
    }();
    return result;
  }
};

TEST_F(ReferenceReproduction, NominalAndReferenceCounts) {
  // 50 kHz carrier counted exactly; parked +10 Hz (DCO-quantised to
  // +10.1 Hz) appears as +505 Hz at the VCO (H(0) = 1).
  EXPECT_NEAR(measured().nominal_vco_hz, 50000.0, 2.0);
  EXPECT_NEAR(measured().static_reference_deviation_hz, 505.0, 15.0);
}

TEST_F(ReferenceReproduction, NoTimeouts) {
  for (const auto& p : measured().points) EXPECT_FALSE(p.timed_out) << p.modulation_hz;
}

TEST_F(ReferenceReproduction, MagnitudePeakAnchors) {
  // Figure 11: resonance near fn = 8 Hz. The capacitor-node response peaks
  // at fn*sqrt(1-2*zeta^2) = 6.35 Hz with +2.2 dB.
  const bist::ExtractedParameters p = bist::extractParameters(measured().toBode());
  EXPECT_GT(p.peak_frequency_hz, 5.3);
  EXPECT_LT(p.peak_frequency_hz, 7.5);
  EXPECT_GT(p.peaking_db, 1.5);
  EXPECT_LT(p.peaking_db, 3.3);
}

TEST_F(ReferenceReproduction, ExtractedLoopParametersMatchTable3) {
  const bist::ExtractedParameters p = bist::extractParameters(measured().toBode());
  ASSERT_TRUE(p.zeta.has_value());
  EXPECT_NEAR(*p.zeta, 0.43, 0.08);
  ASSERT_TRUE(p.natural_frequency_hz.has_value());
  EXPECT_NEAR(*p.natural_frequency_hz, 8.0, 1.0);
  ASSERT_TRUE(p.natural_frequency_from_phase_hz.has_value());
  EXPECT_NEAR(*p.natural_frequency_from_phase_hz, 8.0, 1.0);
}

TEST_F(ReferenceReproduction, PhaseAnchorsAtNaturalFrequency) {
  // Figure 12 discussion: the physical capture tracks the capacitor-node
  // curve, -90 degrees at fn (the paper's plotted eqn (4) curve reads -46;
  // see EXPERIMENTS.md for the systematic-difference analysis).
  const control::BodeResponse bode = measured().toBode();
  const double phase_at_fn = bode.phaseDegAt(hzToRadPerSec(8.0));
  EXPECT_NEAR(phase_at_fn, -90.0, 12.0);
  // Monotone decreasing through the band.
  for (size_t i = 1; i < bode.size(); ++i)
    EXPECT_LE(bode.points()[i].phase_deg, bode.points()[i - 1].phase_deg + 3.0);
}

TEST_F(ReferenceReproduction, MagnitudeTracksCapacitorTheoryThroughPeak) {
  const pll::PllConfig cfg = pll::referenceConfig();
  const control::TransferFunction cap = cfg.capacitorNodeTf();
  const control::BodeResponse bode = measured().toBode();
  for (const auto& p : bode.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    // Through the peak (<= 2*fn) the match is tight; above it the FSK
    // staircase and counter quantisation loosen it.
    const double tol = f <= 16.0 ? 1.6 : 3.5;
    if (f > 30.0) continue;
    EXPECT_NEAR(p.magnitude_db, cap.magnitudeDbAt(p.omega_rad_per_s), tol) << f;
  }
}

}  // namespace
}  // namespace pllbist
