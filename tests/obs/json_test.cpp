#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace pllbist::obs {
namespace {

TEST(Json, NumberRoundTripsShortest) {
  for (double v : {0.0, 1.0, -1.5, 0.1, 1e-300, 1e300, 3.141592653589793, 1.0 / 3.0}) {
    const std::string s = jsonNumber(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(jsonQuote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(jsonQuote(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
}

TEST(Json, WriterPlacesCommas) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.key("a").value(1);
  w.key("b").beginArray().value(true).value("x").null().endArray();
  w.key("c").beginObject().endObject();
  w.endObject();
  EXPECT_EQ(os.str(), R"({"a":1,"b":[true,"x",null],"c":{}})");
}

TEST(Json, ParseRoundTrip) {
  const std::string text = R"({"a":1.5,"b":[true,"x",null],"c":{"d":-2}})";
  JsonValue doc;
  ASSERT_TRUE(parseJson(text, doc).ok());
  EXPECT_EQ(doc.dump(), text);
  EXPECT_DOUBLE_EQ(doc.find("a")->number, 1.5);
  EXPECT_TRUE(doc.find("b")->array[0].boolean);
  EXPECT_TRUE(doc.find("b")->array[2].isNull());
  EXPECT_DOUBLE_EQ(doc.find("c")->find("d")->number, -2.0);
}

TEST(Json, ParseUnicodeEscapes) {
  JsonValue doc;
  // é -> 2-byte UTF-8, 中 -> 3-byte UTF-8.
  ASSERT_TRUE(parseJson("[\"A\\u00e9\\u4e2d\"]", doc).ok());
  EXPECT_EQ(doc.array[0].string, "A\xc3\xa9\xe4\xb8\xad");
}

TEST(Json, ParseErrorsNameOffset) {
  JsonValue doc;
  const Status s = parseJson("{\"a\":}", doc);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.context().find("offset"), std::string::npos);
  EXPECT_FALSE(parseJson("[1,2] garbage", doc).ok());
  EXPECT_FALSE(parseJson("", doc).ok());
  EXPECT_FALSE(parseJson("{\"a\":1,}", doc).ok());
}

TEST(Json, ParseDepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  JsonValue doc;
  EXPECT_FALSE(parseJson(deep, doc).ok());
}

TEST(Json, EraseRemovesMember) {
  JsonValue doc;
  ASSERT_TRUE(parseJson(R"({"a":1,"b":2})", doc).ok());
  EXPECT_TRUE(doc.erase("a"));
  EXPECT_FALSE(doc.erase("a"));
  EXPECT_EQ(doc.dump(), R"({"b":2})");
}

}  // namespace
}  // namespace pllbist::obs
