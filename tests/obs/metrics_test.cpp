#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

namespace pllbist::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  Counter c = reg.counter("test.counter");
  c.increment();
  c.add(41);
  const MetricsSnapshot snap = reg.snapshot();
  const CounterValue* v = snap.findCounter("test.counter");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 42u);
}

TEST(Metrics, DefaultConstructedHandlesAreNoops) {
  Counter c;
  Gauge g;
  Histogram h;
  c.increment();
  g.set(1.0);
  h.observe(1.0);  // must not crash
}

TEST(Metrics, ReRegistrationReturnsSameMetric) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  Counter a = reg.counter("test.same");
  Counter b = reg.counter("test.same");
  a.increment();
  b.increment();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.findCounter("test.same")->value, 2u);
  // Kind clash on an existing name is a programming error.
  EXPECT_THROW((void)reg.gauge("test.same"), std::invalid_argument);
}

TEST(Metrics, GaugeLastWriterWins) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  Gauge g = reg.gauge("test.gauge");
  g.set(1.5);
  g.set(-3.25);
  const MetricsSnapshot snap = reg.snapshot();
  const GaugeValue* v = snap.findGauge("test.gauge");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->ever_set);
  EXPECT_DOUBLE_EQ(v->value, -3.25);
}

TEST(Metrics, UnsetGaugeIsMarked) {
  MetricsRegistry reg;
  (void)reg.gauge("test.unset");
  const MetricsSnapshot snap = reg.snapshot();
  const GaugeValue* v = snap.findGauge("test.unset");
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->ever_set);
}

TEST(Metrics, HistogramBucketsAndStats) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  Histogram h = reg.histogram("test.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(5.0);    // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(500.0);  // overflow
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramValue* v = snap.findHistogram("test.hist");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->bounds.size(), 3u);
  ASSERT_EQ(v->buckets.size(), 4u);
  EXPECT_EQ(v->buckets[0], 1u);
  EXPECT_EQ(v->buckets[1], 1u);
  EXPECT_EQ(v->buckets[2], 1u);
  EXPECT_EQ(v->buckets[3], 1u);
  EXPECT_EQ(v->count, 4u);
  EXPECT_DOUBLE_EQ(v->sum, 555.5);
  EXPECT_DOUBLE_EQ(v->min, 0.5);
  EXPECT_DOUBLE_EQ(v->max, 500.0);
}

TEST(Metrics, HistogramQuantiles) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  Histogram h = reg.histogram("test.q", MetricsRegistry::latencyBucketsSeconds());
  for (int i = 0; i < 100; ++i) h.observe(0.015);  // all in the (0.01, 0.02] bucket
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramValue* v = snap.findHistogram("test.q");
  ASSERT_NE(v, nullptr);
  const double p50 = v->quantile(0.5);
  EXPECT_GE(p50, 0.01);
  EXPECT_LE(p50, 0.02);
  EXPECT_DOUBLE_EQ(v->quantile(1.0), 0.015);  // exact: clamped to observed max
  EXPECT_TRUE(std::isnan(HistogramValue{}.quantile(0.5)));
}

TEST(Metrics, HistogramReboundMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.histogram("test.bounds", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("test.bounds", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("test.unsorted", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("test.huge", std::vector<double>(kMaxHistogramBuckets + 1, 0.0)),
               std::invalid_argument);
}

TEST(Metrics, MultiThreadShardsMerge) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  Counter c = reg.counter("test.mt.counter");
  Histogram h = reg.histogram("test.mt.hist", {10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(static_cast<double>(t));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.findCounter("test.mt.counter")->value,
            static_cast<uint64_t>(kThreads) * kPerThread);
  const HistogramValue* v = snap.findHistogram("test.mt.hist");
  EXPECT_EQ(v->count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(v->min, 0.0);
  EXPECT_DOUBLE_EQ(v->max, kThreads - 1.0);
}

TEST(Metrics, ResetZeroesButKeepsDefinitions) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  Counter c = reg.counter("test.reset");
  Histogram h = reg.histogram("test.reset.h", {1.0});
  c.add(7);
  h.observe(0.5);
  reg.reset();
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.findCounter("test.reset")->value, 0u);
  EXPECT_EQ(snap.findHistogram("test.reset.h")->count, 0u);
  // Handles stay live after reset.
  c.increment();
  const MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(after.findCounter("test.reset")->value, 1u);
}

TEST(Metrics, SnapshotPreservesRegistrationOrder) {
  MetricsRegistry reg;
  (void)reg.counter("z.last");
  (void)reg.counter("a.first");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "z.last");
  EXPECT_EQ(snap.counters[1].name, "a.first");
}

TEST(Metrics, PrometheusExposition) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  MetricsRegistry reg;
  reg.counter("test_prom_counter").add(3);
  reg.gauge("test_prom_gauge").set(1.25);
  reg.histogram("test_prom_hist", {1.0}).observe(0.5);
  std::ostringstream os;
  reg.snapshot().writePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 1.25"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
}

}  // namespace
}  // namespace pllbist::obs
