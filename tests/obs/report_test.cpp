#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "bist/parallel_sweep.hpp"
#include "core/report_builder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "pll/config.hpp"

namespace pllbist {
namespace {

using obs::JsonValue;

// One small real sweep -> RunReport JSON, with the global registry scoped
// to this run (exactly what sweep_cli does).
std::string runAndReport(int jobs, int points = 3) {
  obs::MetricsRegistry::global().reset();
  const pll::PllConfig cfg = pll::scaledTestConfig();
  const bist::SweepOptions sweep =
      bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, points);
  bist::ParallelSweepOptions popt;
  popt.jobs = jobs;
  bist::ParallelSweep engine(cfg, sweep, popt);
  const bist::ResilientResponse result = engine.run();
  return core::buildRunReport("report_test", "fast", cfg, sweep, jobs, result).toJson();
}

TEST(RunReport, RealSweepReportValidates) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  const std::string text = runAndReport(/*jobs=*/2);
  EXPECT_TRUE(obs::validateRunReportText(text).ok()) << text;

  JsonValue doc;
  ASSERT_TRUE(obs::parseJson(text, doc).ok());
  EXPECT_EQ(doc.find("schema")->string, obs::kRunReportSchema);
  EXPECT_EQ(doc.find("points")->array.size(), 3u);
  // Re-homed kernel counters made it into the report.
  EXPECT_GT(doc.find("kernel")->find("processed")->number, 0.0);
  // No fault injector was attached, so the faults section is absent.
  EXPECT_EQ(doc.find("faults"), nullptr);
}

// Satellite 3: two identical seeded runs must serialise to identical JSON
// once the documented timing fields are stripped.
TEST(RunReport, DeterministicModuloTimingFields) {
  const std::string a = runAndReport(/*jobs=*/2);
  const std::string b = runAndReport(/*jobs=*/2);

  JsonValue da, db;
  ASSERT_TRUE(obs::parseJson(a, da).ok());
  ASSERT_TRUE(obs::parseJson(b, db).ok());
  obs::stripTimingFields(da);
  obs::stripTimingFields(db);
  EXPECT_EQ(da.dump(), db.dump());
}

// The jobs-count determinism contract extends to the report: measurement
// fields are identical for any worker count (only timing differs).
TEST(RunReport, JobsCountInvariantModuloTimingFields) {
  const std::string serial = runAndReport(/*jobs=*/1);
  const std::string farmed = runAndReport(/*jobs=*/3);

  JsonValue ds, df;
  ASSERT_TRUE(obs::parseJson(serial, ds).ok());
  ASSERT_TRUE(obs::parseJson(farmed, df).ok());
  obs::stripTimingFields(ds);
  obs::stripTimingFields(df);
  // jobs is an execution parameter, not a measurement: normalise it.
  ds.find("config")->find("jobs")->number = 0;
  df.find("config")->find("jobs")->number = 0;
  // The farm jobs gauge records the worker count; normalise it too.
  ds.erase("metrics");
  df.erase("metrics");
  EXPECT_EQ(ds.dump(), df.dump());
}

TEST(RunReport, StripTimingFieldsRemovesExactlyTheDocumentedPaths) {
  const std::string text = runAndReport(/*jobs=*/1);
  JsonValue doc;
  ASSERT_TRUE(obs::parseJson(text, doc).ok());

  // Before: timing fields are present.
  ASSERT_NE(doc.find("quality")->find("wall_time_s"), nullptr);
  ASSERT_NE(doc.find("points")->array[0].find("wall_time_s"), nullptr);
  bool saw_wall_metric = false;
  for (const JsonValue& h : doc.find("metrics")->find("histograms")->array)
    if (h.find("name")->string == "bist.sweep.point_wall_s") saw_wall_metric = true;
  ASSERT_TRUE(saw_wall_metric);

  obs::stripTimingFields(doc);
  EXPECT_EQ(doc.find("quality")->find("wall_time_s"), nullptr);
  for (const JsonValue& p : doc.find("points")->array)
    EXPECT_EQ(p.find("wall_time_s"), nullptr);
  for (const JsonValue& h : doc.find("metrics")->find("histograms")->array)
    EXPECT_NE(h.find("name")->string, "bist.sweep.point_wall_s");
  // Non-timing content survives.
  EXPECT_NE(doc.find("quality")->find("sim_time_s"), nullptr);
  EXPECT_NE(doc.find("metrics")->find("counters"), nullptr);
  // The stripped document still validates (timing fields are optional).
  EXPECT_TRUE(obs::validateRunReportJson(doc).ok());
}

TEST(RunReport, TimingFieldListIsTheDocumentedContract) {
  const std::vector<std::string>& fields = obs::runReportTimingFields();
  EXPECT_NE(std::find(fields.begin(), fields.end(), "quality.wall_time_s"), fields.end());
  EXPECT_NE(std::find(fields.begin(), fields.end(), "points[].wall_time_s"), fields.end());
}

TEST(RunReport, ConfigDigestSeparatesDevices) {
  const bist::SweepOptions sweep =
      bist::quickSweepOptions(pll::scaledTestConfig(), bist::StimulusKind::MultiToneFsk, 3);
  const std::string a = core::canonicalConfigString(pll::scaledTestConfig(), sweep);
  const std::string b = core::canonicalConfigString(pll::scaledTestConfig(150.0), sweep);
  EXPECT_EQ(obs::fnv1a64(a), obs::fnv1a64(core::canonicalConfigString(pll::scaledTestConfig(), sweep)));
  EXPECT_NE(obs::fnv1a64(a), obs::fnv1a64(b));
}

TEST(RunReport, ValidatorRejectsBrokenDocuments) {
  const std::string text = runAndReport(/*jobs=*/1);
  JsonValue doc;

  ASSERT_TRUE(obs::parseJson(text, doc).ok());
  doc.find("schema")->string = "other/1";
  EXPECT_FALSE(obs::validateRunReportJson(doc).ok());

  ASSERT_TRUE(obs::parseJson(text, doc).ok());
  doc.erase("kernel");
  EXPECT_FALSE(obs::validateRunReportJson(doc).ok());

  ASSERT_TRUE(obs::parseJson(text, doc).ok());
  doc.find("quality")->find("points_total")->number += 1;
  EXPECT_FALSE(obs::validateRunReportJson(doc).ok());

  ASSERT_TRUE(obs::parseJson(text, doc).ok());
  doc.find("config")->find("digest")->string = "not-hex";
  EXPECT_FALSE(obs::validateRunReportJson(doc).ok());
}

}  // namespace
}  // namespace pllbist
