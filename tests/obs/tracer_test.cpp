#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"

namespace pllbist::obs {
namespace {

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.begin("x"), 0u);
  t.end(0);
  t.instant("y");
  const Tracer::Scope s = t.beginScoped("z");
  EXPECT_EQ(s.id, 0u);
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, RecordsCompletedSpans) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  Tracer t;
  t.setEnabled(true);
  const uint64_t id = t.begin("outer");
  t.instant("marker");
  t.end(id);
  const auto records = t.records();
  ASSERT_EQ(records.size(), 2u);
  // Completion order: the instant landed before the span closed.
  EXPECT_EQ(records[0].name, "marker");
  EXPECT_TRUE(records[0].instant);
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_FALSE(records[1].instant);
  EXPECT_NE(records[1].id, 0u);
}

TEST(Tracer, ScopedSpansNestViaThreadLocalStack) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  Tracer t;
  t.setEnabled(true);
  const Tracer::Scope outer = t.beginScoped("outer");
  const Tracer::Scope inner = t.beginScoped("inner");
  // Manual spans parent under the innermost open scope without pushing.
  const uint64_t manual = t.begin("stage");
  t.end(manual);
  t.endScoped(inner.id);
  t.endScoped(outer.id);

  const auto records = t.records();
  ASSERT_EQ(records.size(), 3u);
  const SpanRecord& stage = records[0];
  const SpanRecord& in = records[1];
  const SpanRecord& out = records[2];
  EXPECT_EQ(stage.name, "stage");
  EXPECT_EQ(in.name, "inner");
  EXPECT_EQ(out.name, "outer");
  EXPECT_EQ(out.parent_id, 0u);
  EXPECT_EQ(in.parent_id, out.id);
  EXPECT_EQ(stage.parent_id, in.id);
}

TEST(Tracer, RingBufferKeepsMostRecent) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  Tracer t(/*capacity=*/4);
  t.setEnabled(true);
  for (int i = 0; i < 10; ++i) t.instant("i" + std::to_string(i));
  const auto records = t.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().name, "i6");  // oldest surviving
  EXPECT_EQ(records.back().name, "i9");
}

TEST(Tracer, ClearDropsRecords) {
  Tracer t;
  t.setEnabled(true);
  t.instant("a");
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, ChromeTraceIsValidJson) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out (PLLBIST_OBS=OFF)";
  Tracer t;
  t.setEnabled(true);
  const uint64_t id = t.begin("span.name");
  t.instant("marker");
  t.end(id);
  std::ostringstream os;
  t.writeChromeTrace(os);

  JsonValue doc;
  ASSERT_TRUE(parseJson(os.str(), doc).ok()) << os.str();
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_EQ(events->array.size(), 2u);
  bool saw_complete = false, saw_instant = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      saw_complete = true;
      EXPECT_EQ(e.find("name")->string, "span.name");
      EXPECT_NE(e.find("dur"), nullptr);
    }
    if (ph->string == "i") saw_instant = true;
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
}

TEST(Tracer, EndOfUnknownIdIsIgnored) {
  Tracer t;
  t.setEnabled(true);
  t.end(12345);  // never started; must not crash or record
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace pllbist::obs
