#include "pll/config.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "support/test_configs.hpp"

namespace pllbist::pll {
namespace {

TEST(ReferenceConfig, MatchesPaperAnchors) {
  const PllConfig cfg = referenceConfig();
  // Table 3 anchors: fn = 8 Hz, zeta = 0.43 by construction.
  const control::SecondOrderParams so = cfg.secondOrder();
  EXPECT_NEAR(radPerSecToHz(so.omega_n_rad_per_s), 8.0, 1e-6);
  EXPECT_NEAR(so.zeta, 0.43, 1e-9);
  // Kpd = Vdd/(4*pi) = 0.398 V/rad ("0.4 V/rad").
  EXPECT_NEAR(cfg.kpdVPerRad(), 0.398, 1e-3);
  // Reference divider chain: 1 kHz reference, N = 50, VCO nominal 50 kHz.
  EXPECT_DOUBLE_EQ(cfg.ref_frequency_hz, 1000.0);
  EXPECT_EQ(cfg.divider_n, 50);
  EXPECT_DOUBLE_EQ(cfg.nominalVcoHz(), 50e3);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ReferenceConfig, StimulusParameters) {
  const ReferenceStimulus stim = referenceStimulus();
  EXPECT_DOUBLE_EQ(stim.master_clock_hz, 1e6);
  EXPECT_DOUBLE_EQ(stim.max_deviation_hz, 10.0);
  EXPECT_EQ(stim.fm_steps, 10);
}

TEST(PllConfig, ClosedLoopUnityDcGain) {
  const PllConfig cfg = referenceConfig();
  EXPECT_NEAR(cfg.closedLoopDividedTf().dcGain(), 1.0, 1e-9);
  EXPECT_NEAR(cfg.capacitorNodeTf().dcGain(), 1.0, 1e-9);
  EXPECT_TRUE(cfg.closedLoopDividedTf().isStable());
}

TEST(PllConfig, LinearizedMatchesElectricalValues) {
  const PllConfig cfg = referenceConfig();
  const control::LoopParameters lp = cfg.linearized();
  EXPECT_DOUBLE_EQ(lp.r1_ohm, cfg.pump.r1_ohm);
  EXPECT_DOUBLE_EQ(lp.r2_ohm, cfg.pump.r2_ohm);
  EXPECT_DOUBLE_EQ(lp.c_farad, cfg.pump.c_farad);
  EXPECT_NEAR(lp.kvco_rad_per_s_per_v, kTwoPi * cfg.vco.gain_hz_per_v, 1e-9);
}

TEST(PllConfig, ValidationCatchesBadFields) {
  PllConfig cfg = referenceConfig();
  cfg.ref_frequency_hz = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = referenceConfig();
  cfg.divider_n = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PllConfig, CurrentPumpSecondOrderFormula) {
  PllConfig cfg = pllbist::testing::fastTestConfig();
  cfg.pump.kind = PumpKind::CurrentSteering;
  cfg.pump.pump_current_a = 100e-6;
  const control::SecondOrderParams so = cfg.secondOrder();
  const double kd = cfg.pump.pump_current_a / kTwoPi;
  const double k = kd * kTwoPi * cfg.vco.gain_hz_per_v;
  const double wn = std::sqrt(k / (cfg.divider_n * cfg.pump.c_farad));
  EXPECT_NEAR(so.omega_n_rad_per_s, wn, wn * 1e-9);
  EXPECT_NEAR(so.zeta, wn * cfg.pump.r2_ohm * cfg.pump.c_farad / 2.0, 1e-9);
}

TEST(PllConfig, CurrentPumpClosedLoopUnityDcGain) {
  PllConfig cfg = pllbist::testing::fastTestConfig();
  cfg.pump.kind = PumpKind::CurrentSteering;
  cfg.pump.pump_current_a = 100e-6;
  EXPECT_NEAR(cfg.closedLoopDividedTf().dcGain(), 1.0, 1e-9);
  EXPECT_TRUE(cfg.closedLoopDividedTf().isStable());
}

TEST(PllConfig, KpdThrowsForCurrentPump) {
  PllConfig cfg = pllbist::testing::fastTestConfig();
  cfg.pump.kind = PumpKind::CurrentSteering;
  cfg.pump.pump_current_a = 100e-6;
  EXPECT_THROW(cfg.kpdVPerRad(), std::domain_error);
  EXPECT_THROW(cfg.linearized(), std::domain_error);
}

TEST(PllConfig, CapacitorNodeIsPureTwoPole) {
  // The capacitor-node response has no finite zeros.
  const PllConfig cfg = referenceConfig();
  EXPECT_TRUE(cfg.capacitorNodeTf().zeros().empty());
  EXPECT_EQ(cfg.capacitorNodeTf().relativeDegree(), 2);
  // And the closed loop proper has exactly one (the filter zero).
  EXPECT_EQ(cfg.closedLoopDividedTf().zeros().size(), 1u);
}

}  // namespace
}  // namespace pllbist::pll
