#include "pll/cppll.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "control/second_order.hpp"
#include "pll/probes.hpp"
#include "pll/sources.hpp"
#include "sim/primitives.hpp"
#include "sim/trace.hpp"
#include "support/test_configs.hpp"

namespace pllbist::pll {
namespace {

using pllbist::testing::fastTestConfig;

/// Closed-loop bench: ideal reference source + DUT.
struct LoopBench {
  sim::Circuit c;
  sim::SignalId ext_ref;
  sim::SignalId stim;
  sim::SignalId marker;
  SineFmSource source;
  CpPll pll;

  explicit LoopBench(const PllConfig& cfg, double ref_hz)
      : ext_ref(c.addSignal("ext_ref")),
        stim(c.addSignal("stim")),
        marker(c.addSignal("marker")),
        source(c, stim, marker, makeSourceConfig(ref_hz)),
        pll(c, ext_ref, stim, cfg) {
    pll.setTestMode(true);
  }

  static SineFmSource::Config makeSourceConfig(double ref_hz) {
    SineFmSource::Config s;
    s.nominal_hz = ref_hz;
    return s;
  }
};

TEST(CpPll, AcquiresLockAndSettlesAtNTimesRef) {
  PllConfig cfg = fastTestConfig();
  cfg.pump.initial_vc_v = 2.0;  // start 25 kHz off target
  LoopBench b(cfg, cfg.ref_frequency_hz);
  LockDetector lock(b.c, b.pll.pfdUp(), b.pll.pfdDn(), 2e-6, 10);
  b.c.run(0.1);
  EXPECT_TRUE(lock.isLocked());
  EXPECT_NEAR(b.pll.vcoFrequencyNowHz(), cfg.nominalVcoHz(), cfg.nominalVcoHz() * 1e-3);
}

TEST(CpPll, LockTimeScalesWithNaturalFrequency) {
  PllConfig slow = fastTestConfig(100.0, 0.43);
  PllConfig fast = fastTestConfig(400.0, 0.43);
  slow.pump.initial_vc_v = fast.pump.initial_vc_v = 2.2;

  auto lockTime = [](const PllConfig& cfg) {
    LoopBench b(cfg, cfg.ref_frequency_hz);
    LockDetector lock(b.c, b.pll.pfdUp(), b.pll.pfdDn(), 2e-6, 10);
    b.c.run(0.5);
    EXPECT_TRUE(lock.isLocked());
    return lock.lockTime();
  };
  EXPECT_GT(lockTime(slow), lockTime(fast));
}

TEST(CpPll, StaticPhaseErrorNearZeroWhenLocked) {
  const PllConfig cfg = fastTestConfig();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  b.c.run(0.08);
  // After lock the PFD pulses collapse to dead-zone glitches.
  sim::EdgeRecorder up(b.c, b.pll.pfdUp());
  sim::EdgeRecorder dn(b.c, b.pll.pfdDn());
  b.c.run(0.1);
  auto widthBound = [](const sim::EdgeRecorder& rec) {
    double worst = 0.0;
    const size_t n = std::min(rec.risingEdges().size(), rec.fallingEdges().size());
    for (size_t i = 0; i < n; ++i)
      worst = std::max(worst, rec.fallingEdges()[i] - rec.risingEdges()[i]);
    return worst;
  };
  EXPECT_LT(widthBound(up), 3e-6);  // < 3% of the 100 us reference period
  EXPECT_LT(widthBound(dn), 3e-6);
}

TEST(CpPll, FrequencyStepResponseMatchesLinearModel) {
  // Step the reference by 1% and compare the VCO frequency trajectory
  // against the second-order step response (overshoot and settling).
  const PllConfig cfg = fastTestConfig();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  b.c.run(0.05);  // lock

  const double f_step = cfg.ref_frequency_hz * 0.01;
  b.source.setCarrier(cfg.ref_frequency_hz + f_step);

  sim::Trace trace("f_vco");
  AnalogProbe probe(b.c, [&] { return b.pll.vcoFrequencyNowHz(); }, trace, 1e-4, b.c.now());
  b.c.run(b.c.now() + 0.1);

  const double f0 = cfg.nominalVcoHz();
  const double f1 = f0 + f_step * cfg.divider_n;
  // Final value reached.
  EXPECT_NEAR(trace.values().back(), f1, f_step * cfg.divider_n * 0.02);

  // Overshoot close to the zeta = 0.43 prediction for the capacitor-node
  // response; the filter zero adds some extra overshoot, so allow headroom.
  double peak = f0;
  for (double v : trace.values()) peak = std::max(peak, v);
  const double overshoot = (peak - f1) / (f1 - f0);
  const double predicted = control::stepOvershootFraction(cfg.secondOrder().zeta);
  EXPECT_GT(overshoot, predicted * 0.5);
  EXPECT_LT(overshoot, predicted * 2.5);
}

TEST(CpPll, HoldFreezesVcoFrequency) {
  const PllConfig cfg = fastTestConfig();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  b.c.run(0.05);
  const double before = b.pll.vcoFrequencyNowHz();
  b.pll.setHold(true);
  // Push the reference around during hold: the loop must not care. A 1%
  // reference shift would drag the unheld loop by ~1000 Hz; the held loop
  // moves only by the one-off mux-switch transient (a partial pump pulse).
  b.source.setCarrier(cfg.ref_frequency_hz * 1.01);
  b.c.run(b.c.now() + 0.05);
  EXPECT_NEAR(b.pll.vcoFrequencyNowHz(), before, 50.0);
  EXPECT_TRUE(b.pll.holdAsserted());
}

TEST(CpPll, ReacquiresAfterHoldRelease) {
  const PllConfig cfg = fastTestConfig();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  b.c.run(0.05);
  b.pll.setHold(true);
  b.c.run(b.c.now() + 0.02);
  b.pll.setHold(false);
  LockDetector lock(b.c, b.pll.pfdUp(), b.pll.pfdDn(), 2e-6, 10);
  b.c.run(b.c.now() + 0.08);
  EXPECT_TRUE(lock.isLocked());
  EXPECT_NEAR(b.pll.vcoFrequencyNowHz(), cfg.nominalVcoHz(), cfg.nominalVcoHz() * 1e-3);
}

TEST(CpPll, TracksSlowFrequencyModulation) {
  // Modulate well inside the loop bandwidth: output deviation ~ N * input
  // deviation (|H| ~ 1).
  const PllConfig cfg = fastTestConfig();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  b.c.run(0.05);
  b.source.setModulation(20.0, 100.0);  // fm = fn/10, 1% deviation
  b.c.run(b.c.now() + 0.15);            // settle
  // Probe the capacitor-derived frequency: the instantaneous control node
  // carries +/-9.5 kHz pump-pulse ripple that a min/max sweep would pick
  // up; the capacitor voltage carries the loop-dynamics component only.
  sim::Trace trace("f_vco");
  AnalogProbe probe(
      b.c, [&] { return cfg.vco.frequencyAt(b.pll.filter().capVoltage(b.c.now())); }, trace,
      2e-4, b.c.now());
  b.c.run(b.c.now() + 0.1);  // two modulation periods
  double lo = 1e12, hi = 0.0;
  for (double v : trace.values()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double dev = (hi - lo) / 2.0;
  EXPECT_NEAR(dev, 100.0 * cfg.divider_n, 100.0 * cfg.divider_n * 0.15);
}

TEST(CpPll, PeakDetectionPrinciple) {
  // The physical claim behind the BIST (section 4): in sinusoidal steady
  // state the phase-error zero crossing coincides with the *capacitor
  // voltage* extremum. Verify against simulator ground truth.
  const PllConfig cfg = fastTestConfig();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  b.c.run(0.05);
  const double fm = 150.0;  // near fn where phase errors are large
  b.source.setModulation(fm, 100.0);
  b.c.run(b.c.now() + 5.0 / fm);

  // Record vc and the PFD activity over a few periods.
  sim::Trace vc("vc");
  AnalogProbe probe(b.c, [&] { return b.pll.filter().capVoltage(b.c.now()); }, vc, 2e-5,
                    b.c.now());
  sim::EdgeRecorder up(b.c, b.pll.pfdUp());
  b.c.run(b.c.now() + 3.0 / fm);

  // Find the vc maximum time.
  double t_peak = 0.0, v_peak = -1e9;
  for (size_t i = 0; i < vc.size(); ++i) {
    if (vc.values()[i] > v_peak) {
      v_peak = vc.values()[i];
      t_peak = vc.times()[i];
    }
  }
  // The last long UP pulse before t_peak must end within ~a reference
  // cycle of it (UP pulses stop when the error crosses zero).
  double last_up_before_peak = -1.0;
  for (double t : up.risingEdges())
    if (t < t_peak) last_up_before_peak = t;
  ASSERT_GT(last_up_before_peak, 0.0);
  EXPECT_NEAR(last_up_before_peak, t_peak, 2.5 / cfg.ref_frequency_hz);
}

TEST(CpPll, GroundTruthAccessorsConsistent) {
  const PllConfig cfg = fastTestConfig();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  b.c.run(0.05);
  const double v = b.pll.controlVoltageNow();
  EXPECT_NEAR(b.pll.vcoFrequencyNowHz(), cfg.vco.frequencyAt(v), 1e-9);
}


TEST(CpPll, NormalModeLocksToExternalReference) {
  // M1 in the normal position: the loop follows the external input through
  // the reference divider R (Figure 6's normal signal path).
  PllConfig cfg = fastTestConfig();
  cfg.ref_divider_r = 4;  // external input at 4 x 10 kHz
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");  // unused in normal mode
  sim::ClockSource ext_src(c, ext, 1.0 / (4.0 * cfg.ref_frequency_hz));
  CpPll pll(c, ext, stim, cfg);
  // test mode left OFF: M1 selects the divided external reference.
  LockDetector lock(c, pll.pfdUp(), pll.pfdDn(), 2e-6, 10);
  c.run(0.1);
  EXPECT_TRUE(lock.isLocked());
  EXPECT_NEAR(pll.vcoFrequencyNowHz(), cfg.nominalVcoHz(), cfg.nominalVcoHz() * 1e-3);
}

TEST(CpPll, TestModeSwitchesBetweenSources) {
  // Start in normal mode on a slightly-off external reference, then switch
  // to test mode with an on-frequency stimulus: the loop must retune.
  PllConfig cfg = fastTestConfig();
  sim::Circuit c;
  const auto ext = c.addSignal("ext");
  const auto stim = c.addSignal("stim");
  sim::ClockSource ext_src(c, ext, 1.0 / (cfg.ref_frequency_hz * 1.02));
  sim::ClockSource stim_src(c, stim, 1.0 / cfg.ref_frequency_hz);
  CpPll pll(c, ext, stim, cfg);
  c.run(0.08);
  EXPECT_NEAR(pll.vcoFrequencyNowHz(), cfg.nominalVcoHz() * 1.02, cfg.nominalVcoHz() * 5e-3);
  pll.setTestMode(true);
  c.run(c.now() + 0.08);
  EXPECT_NEAR(pll.vcoFrequencyNowHz(), cfg.nominalVcoHz(), cfg.nominalVcoHz() * 2e-3);
}

TEST(CpPll, RefDividerValidation) {
  PllConfig cfg = fastTestConfig();
  cfg.ref_divider_r = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

class LockSweep : public ::testing::TestWithParam<double> {};

TEST_P(LockSweep, LocksFromVariousInitialOffsets) {
  PllConfig cfg = fastTestConfig();
  cfg.pump.initial_vc_v = GetParam();
  LoopBench b(cfg, cfg.ref_frequency_hz);
  LockDetector lock(b.c, b.pll.pfdUp(), b.pll.pfdDn(), 2e-6, 10);
  b.c.run(0.4);
  EXPECT_TRUE(lock.isLocked()) << "initial vc " << GetParam();
  EXPECT_NEAR(b.pll.vcoFrequencyNowHz(), cfg.nominalVcoHz(), cfg.nominalVcoHz() * 2e-3);
}

INSTANTIATE_TEST_SUITE_P(InitialConditions, LockSweep,
                         ::testing::Values(1.0, 1.8, 2.2, 2.8, 3.5, 4.0));

}  // namespace
}  // namespace pllbist::pll
