#include <gtest/gtest.h>

#include <cmath>

#include "bist/analysis.hpp"
#include "bist/controller.hpp"
#include "bist/step_test.hpp"
#include "common/units.hpp"
#include "pll/config.hpp"
#include "pll/cppll.hpp"
#include "pll/probes.hpp"
#include "pll/sources.hpp"
#include "support/test_configs.hpp"

namespace pllbist::pll {
namespace {

/// Closed-loop behaviour of the classic current-steering CP-PLL (type-2
/// loop) — the integrated-PLL flavour, as opposed to the 4046-style
/// voltage pump the paper's board used. The BIST must work on both.

TEST(CurrentPumpConfig, SolvesRequestedResponse) {
  const PllConfig cfg = scaledCurrentPumpConfig(200.0, 0.43);
  const control::SecondOrderParams so = cfg.secondOrder();
  EXPECT_NEAR(radPerSecToHz(so.omega_n_rad_per_s), 200.0, 1e-6);
  EXPECT_NEAR(so.zeta, 0.43, 1e-9);
  EXPECT_EQ(cfg.pump.kind, PumpKind::CurrentSteering);
  EXPECT_TRUE(cfg.closedLoopDividedTf().isStable());
}

TEST(CurrentPumpConfig, RejectsBadTargets) {
  EXPECT_THROW(scaledCurrentPumpConfig(0.0, 0.43), std::invalid_argument);
  EXPECT_THROW(scaledCurrentPumpConfig(200.0, -0.1), std::invalid_argument);
}

struct CurrentLoopBench {
  sim::Circuit c;
  sim::SignalId ext, stim, mk;
  SineFmSource source;
  CpPll pll;

  explicit CurrentLoopBench(const PllConfig& cfg)
      : ext(c.addSignal("ext")),
        stim(c.addSignal("stim")),
        mk(c.addSignal("mk")),
        source(c, stim, mk, sourceConfig(cfg)),
        pll(c, ext, stim, cfg) {
    pll.setTestMode(true);
  }
  static SineFmSource::Config sourceConfig(const PllConfig& cfg) {
    SineFmSource::Config s;
    s.nominal_hz = cfg.ref_frequency_hz;
    return s;
  }
};

TEST(CurrentPumpLoop, LocksAtNTimesReference) {
  PllConfig cfg = scaledCurrentPumpConfig();
  cfg.pump.initial_vc_v = 2.1;  // start 20 kHz off
  CurrentLoopBench b(cfg);
  LockDetector lock(b.c, b.pll.pfdUp(), b.pll.pfdDn(), 2e-6, 10);
  b.c.run(0.2);
  EXPECT_TRUE(lock.isLocked());
  EXPECT_NEAR(b.pll.vcoFrequencyNowHz(), cfg.nominalVcoHz(), cfg.nominalVcoHz() * 1e-3);
}

TEST(CurrentPumpLoop, TypeTwoHasNoStaticPhaseError) {
  // A type-2 loop absorbs a VCO center offset with *zero* static phase
  // error (the integrator supplies the DC); pulses collapse to glitches.
  PllConfig cfg = scaledCurrentPumpConfig();
  cfg.vco.center_frequency_hz *= 1.05;  // needs a standing control offset
  CurrentLoopBench b(cfg);
  b.c.run(0.3);
  sim::EdgeRecorder up(b.c, b.pll.pfdUp());
  sim::EdgeRecorder dn(b.c, b.pll.pfdDn());
  b.c.run(0.35);
  auto worstWidth = [](const sim::EdgeRecorder& rec) {
    double worst = 0.0;
    const size_t n = std::min(rec.risingEdges().size(), rec.fallingEdges().size());
    for (size_t i = 0; i < n; ++i)
      worst = std::max(worst, rec.fallingEdges()[i] - rec.risingEdges()[i]);
    return worst;
  };
  EXPECT_LT(worstWidth(up), 2e-6);
  EXPECT_LT(worstWidth(dn), 2e-6);
  EXPECT_NEAR(b.pll.vcoFrequencyNowHz(), cfg.nominalVcoHz(), cfg.nominalVcoHz() * 1e-3);
}

TEST(CurrentPumpLoop, PumpMismatchCreatesStaticPhaseOffset) {
  // Classic CP defect: unequal up/down currents force the loop to park
  // with a compensating phase offset (wider pulses on one side).
  PllConfig cfg = scaledCurrentPumpConfig();
  cfg.pump.up_strength = 0.7;
  CurrentLoopBench b(cfg);
  b.c.run(0.3);
  sim::EdgeRecorder up(b.c, b.pll.pfdUp());
  sim::EdgeRecorder dn(b.c, b.pll.pfdDn());
  b.c.run(0.35);
  double up_total = 0.0, dn_total = 0.0;
  const size_t nu = std::min(up.risingEdges().size(), up.fallingEdges().size());
  for (size_t i = 0; i < nu; ++i) up_total += up.fallingEdges()[i] - up.risingEdges()[i];
  const size_t nd = std::min(dn.risingEdges().size(), dn.fallingEdges().size());
  for (size_t i = 0; i < nd; ++i) dn_total += dn.fallingEdges()[i] - dn.risingEdges()[i];
  // Charge balance: weak up pump needs more up time than down time.
  EXPECT_GT(up_total, 1.2 * dn_total);
}

TEST(CurrentPumpBist, SweepMatchesCapacitorNodeTheory) {
  const PllConfig cfg = scaledCurrentPumpConfig();
  bist::SweepOptions opt = bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 8);
  bist::BistController controller(cfg, opt);
  const bist::MeasuredResponse measured = controller.run();
  const control::BodeResponse bode = measured.toBode();
  const control::TransferFunction cap = cfg.capacitorNodeTf();
  int compared = 0;
  for (const control::BodePoint& p : bode.points()) {
    const double f = radPerSecToHz(p.omega_rad_per_s);
    if (f > 700.0) continue;
    EXPECT_NEAR(p.magnitude_db, cap.magnitudeDbAt(p.omega_rad_per_s), 2.5) << f;
    EXPECT_NEAR(p.phase_deg, cap.phaseDegAt(p.omega_rad_per_s), 25.0) << f;
    ++compared;
  }
  EXPECT_GE(compared, 5);
}

TEST(CurrentPumpBist, ExtractionRecoversDesign) {
  const PllConfig cfg = scaledCurrentPumpConfig(200.0, 0.43);
  bist::BistController controller(
      cfg, bist::quickSweepOptions(cfg, bist::StimulusKind::MultiToneFsk, 9));
  const bist::ExtractedParameters p = bist::extractParameters(controller.run().toBode());
  ASSERT_TRUE(p.zeta.has_value());
  ASSERT_TRUE(p.natural_frequency_hz.has_value());
  EXPECT_NEAR(*p.zeta, 0.43, 0.09);
  EXPECT_NEAR(*p.natural_frequency_hz, 200.0, 30.0);
}

TEST(CurrentPumpBist, StepTestWorks) {
  const PllConfig cfg = scaledCurrentPumpConfig();
  bist::StepTestOptions opt;
  opt.lock_wait_s = 0.05;
  opt.freq_gate_s = 0.05;
  opt.hold_to_gate_delay_s = 2e-4;
  const bist::StepTestResult r = bist::runStepTest(cfg, opt);
  ASSERT_FALSE(r.timed_out);
  ASSERT_TRUE(r.peak_detected);
  ASSERT_TRUE(r.zeta.has_value());
  EXPECT_NEAR(*r.zeta, 0.43, 0.12);
}

}  // namespace
}  // namespace pllbist::pll
