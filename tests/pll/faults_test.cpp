#include "pll/faults.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "support/test_configs.hpp"

namespace pllbist::pll {
namespace {

using pllbist::testing::fastTestConfig;

TEST(Faults, NoneLeavesConfigUntouched) {
  const PllConfig golden = fastTestConfig();
  const PllConfig same = applyFault(golden, {FaultSpec::Kind::None, 0.0});
  EXPECT_EQ(same.vco.gain_hz_per_v, golden.vco.gain_hz_per_v);
  EXPECT_EQ(same.pump.r2_ohm, golden.pump.r2_ohm);
}

TEST(Faults, VcoGainDriftScalesGain) {
  const PllConfig golden = fastTestConfig();
  const PllConfig faulty = applyFault(golden, {FaultSpec::Kind::VcoGainDrift, 0.5});
  EXPECT_DOUBLE_EQ(faulty.vco.gain_hz_per_v, golden.vco.gain_hz_per_v * 0.5);
}

TEST(Faults, VcoCenterDriftScalesCenter) {
  const PllConfig golden = fastTestConfig();
  const PllConfig faulty = applyFault(golden, {FaultSpec::Kind::VcoCenterDrift, 1.1});
  EXPECT_DOUBLE_EQ(faulty.vco.center_frequency_hz, golden.vco.center_frequency_hz * 1.1);
}

TEST(Faults, PumpStrengthFaults) {
  const PllConfig golden = fastTestConfig();
  EXPECT_DOUBLE_EQ(applyFault(golden, {FaultSpec::Kind::PumpUpWeak, 0.4}).pump.up_strength, 0.4);
  EXPECT_DOUBLE_EQ(applyFault(golden, {FaultSpec::Kind::PumpDownWeak, 0.3}).pump.down_strength,
                   0.3);
}

TEST(Faults, FilterComponentDrift) {
  const PllConfig golden = fastTestConfig();
  EXPECT_DOUBLE_EQ(applyFault(golden, {FaultSpec::Kind::FilterR2Drift, 2.0}).pump.r2_ohm,
                   golden.pump.r2_ohm * 2.0);
  EXPECT_DOUBLE_EQ(applyFault(golden, {FaultSpec::Kind::FilterCDrift, 0.5}).pump.c_farad,
                   golden.pump.c_farad * 0.5);
}

TEST(Faults, FilterLeakSetsResistance) {
  const PllConfig golden = fastTestConfig();
  const PllConfig faulty = applyFault(golden, {FaultSpec::Kind::FilterLeak, 2e6});
  EXPECT_DOUBLE_EQ(faulty.pump.leak_ohm, 2e6);
}

TEST(Faults, PfdDeadZoneScalesAllDelays) {
  const PllConfig golden = fastTestConfig();
  const PllConfig faulty = applyFault(golden, {FaultSpec::Kind::PfdDeadZone, 3.0});
  EXPECT_DOUBLE_EQ(faulty.pfd.and_delay_s, golden.pfd.and_delay_s * 3.0);
  EXPECT_DOUBLE_EQ(faulty.pfd.ff_reset_to_q_s, golden.pfd.ff_reset_to_q_s * 3.0);
  EXPECT_DOUBLE_EQ(faulty.pfd.ff_clk_to_q_s, golden.pfd.ff_clk_to_q_s * 3.0);
}

TEST(Faults, InvalidMagnitudesThrow) {
  const PllConfig golden = fastTestConfig();
  EXPECT_THROW(applyFault(golden, {FaultSpec::Kind::VcoGainDrift, 0.0}), std::invalid_argument);
  EXPECT_THROW(applyFault(golden, {FaultSpec::Kind::FilterLeak, -1.0}), std::invalid_argument);
  EXPECT_THROW(applyFault(golden, {FaultSpec::Kind::PumpUpWeak, -0.5}), std::invalid_argument);
}

TEST(Faults, DescriptionsAreInformative) {
  EXPECT_EQ(FaultSpec{}.describe(), "none");
  const FaultSpec f{FaultSpec::Kind::VcoGainDrift, 0.5};
  EXPECT_NE(f.describe().find("vco-gain-drift"), std::string::npos);
  EXPECT_NE(f.describe().find("0.5"), std::string::npos);
  EXPECT_EQ(to_string(FaultSpec::Kind::FilterLeak), "filter-leak");
}

TEST(Faults, StandardSetIsValidAndDiverse) {
  const PllConfig golden = fastTestConfig();
  const auto faults = standardFaultSet();
  EXPECT_GE(faults.size(), 6u);
  for (const FaultSpec& f : faults) {
    EXPECT_NE(f.kind, FaultSpec::Kind::None);
    EXPECT_NO_THROW(applyFault(golden, f)) << f.describe();
  }
}

TEST(Faults, FaultsShiftTheDesignedResponse) {
  // Each filter/VCO fault must move fn or zeta of the linearised model —
  // that is what makes it detectable by the transfer-function signature.
  const PllConfig golden = fastTestConfig();
  const auto base = golden.secondOrder();
  for (const FaultSpec& f : {FaultSpec{FaultSpec::Kind::VcoGainDrift, 0.5},
                             FaultSpec{FaultSpec::Kind::FilterCDrift, 0.5},
                             FaultSpec{FaultSpec::Kind::FilterR2Drift, 3.0}}) {
    const auto so = applyFault(golden, f).secondOrder();
    const double fn_shift = std::abs(so.omega_n_rad_per_s - base.omega_n_rad_per_s) /
                            base.omega_n_rad_per_s;
    const double zeta_shift = std::abs(so.zeta - base.zeta) / base.zeta;
    EXPECT_GT(fn_shift + zeta_shift, 0.15) << f.describe();
  }
}

}  // namespace
}  // namespace pllbist::pll
