#include "pll/pfd.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {
namespace {

/// Drives REF and FB as pulse trains with a fixed skew and reports the
/// recorded UP/DN pulse widths.
struct PfdBench {
  sim::Circuit c;
  sim::SignalId ref;
  sim::SignalId fb;
  Pfd pfd;
  sim::EdgeRecorder up_rec;
  sim::EdgeRecorder dn_rec;

  explicit PfdBench(const PfdDelays& d = PfdDelays{})
      : ref(c.addSignal("ref")),
        fb(c.addSignal("fb")),
        pfd(c, ref, fb, d),
        up_rec(c, pfd.up()),
        dn_rec(c, pfd.dn()) {}

  /// Schedule n reference cycles of the given period with fb skewed by
  /// `skew` (positive = fb lags = ref leads).
  void drive(int n, double period, double skew, double start = 1e-5) {
    for (int k = 0; k < n; ++k) {
      const double t = start + k * period;
      c.scheduleSet(ref, t, true);
      c.scheduleSet(ref, t + period / 2, false);
      c.scheduleSet(fb, t + skew, true);
      c.scheduleSet(fb, t + skew + period / 2, false);
    }
    c.run(start + (n + 1) * period);
  }

  static std::vector<double> widths(const sim::EdgeRecorder& rec) {
    std::vector<double> out;
    const size_t n = std::min(rec.risingEdges().size(), rec.fallingEdges().size());
    for (size_t i = 0; i < n; ++i) out.push_back(rec.fallingEdges()[i] - rec.risingEdges()[i]);
    return out;
  }
};

TEST(PfdDelays, Validation) {
  PfdDelays d;
  d.and_delay_s = 0.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = PfdDelays{};
  d.ff_clk_to_q_s = -1e-9;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  EXPECT_NO_THROW(PfdDelays{}.validate());
}

TEST(Pfd, RefLeadingProducesUpPulsesOfSkewWidth) {
  PfdBench b;
  const double skew = 3e-6;
  b.drive(10, 100e-6, skew);
  auto up = PfdBench::widths(b.up_rec);
  ASSERT_GE(up.size(), 5u);
  // UP pulse width ~ skew + reset path delay.
  for (size_t i = 1; i < up.size(); ++i) EXPECT_NEAR(up[i], skew, 20e-9) << i;
  // DN shows only dead-zone glitches.
  auto dn = PfdBench::widths(b.dn_rec);
  for (size_t i = 1; i < dn.size(); ++i) EXPECT_LT(dn[i], 20e-9) << i;
}

TEST(Pfd, FbLeadingProducesDnPulses) {
  PfdBench b;
  const double skew = -5e-6;  // fb leads
  b.drive(10, 100e-6, skew);
  auto dn = PfdBench::widths(b.dn_rec);
  ASSERT_GE(dn.size(), 5u);
  for (size_t i = 1; i < dn.size(); ++i) EXPECT_NEAR(dn[i], 5e-6, 20e-9) << i;
  auto up = PfdBench::widths(b.up_rec);
  for (size_t i = 1; i < up.size(); ++i) EXPECT_LT(up[i], 20e-9) << i;
}

TEST(Pfd, AlignedInputsEmitDeadZoneGlitchesOnBoth) {
  PfdBench b;
  b.drive(10, 100e-6, 0.0);
  auto up = PfdBench::widths(b.up_rec);
  auto dn = PfdBench::widths(b.dn_rec);
  ASSERT_GE(up.size(), 5u);
  ASSERT_GE(dn.size(), 5u);
  const PfdDelays d;
  for (size_t i = 1; i < up.size(); ++i) {
    EXPECT_GT(up[i], 0.0);
    EXPECT_LT(up[i], 4.0 * d.glitchWidth());
  }
  for (size_t i = 1; i < dn.size(); ++i) EXPECT_LT(dn[i], 4.0 * d.glitchWidth());
}

TEST(Pfd, GlitchWidthTracksDelays) {
  PfdDelays slow;
  slow.ff_clk_to_q_s = 20e-9;
  slow.and_delay_s = 15e-9;
  slow.ff_reset_to_q_s = 20e-9;
  PfdBench fast_bench;
  PfdBench slow_bench(slow);
  fast_bench.drive(6, 100e-6, 0.0);
  slow_bench.drive(6, 100e-6, 0.0);
  auto fast_up = PfdBench::widths(fast_bench.up_rec);
  auto slow_up = PfdBench::widths(slow_bench.up_rec);
  ASSERT_GE(fast_up.size(), 3u);
  ASSERT_GE(slow_up.size(), 3u);
  EXPECT_GT(slow_up[2], fast_up[2]);
}

TEST(Pfd, FrequencyDetection) {
  // REF at 12 kHz vs FB at 10 kHz: UP must dominate (frequency detector
  // behaviour, not just phase).
  PfdBench b;
  for (int k = 0; k < 60; ++k) {
    const double t = 1e-6 + k * (1.0 / 12e3);
    b.c.scheduleSet(b.ref, t, true);
    b.c.scheduleSet(b.ref, t + 0.5 / 12e3, false);
  }
  for (int k = 0; k < 50; ++k) {
    const double t = 1e-6 + k * (1.0 / 10e3);
    b.c.scheduleSet(b.fb, t, true);
    b.c.scheduleSet(b.fb, t + 0.5 / 10e3, false);
  }
  b.c.run(5.2e-3);
  double up_total = 0.0, dn_total = 0.0;
  for (double w : PfdBench::widths(b.up_rec)) up_total += w;
  for (double w : PfdBench::widths(b.dn_rec)) dn_total += w;
  EXPECT_GT(up_total, 5.0 * dn_total);
}

TEST(Pfd, ResetNetPulsesOncePerCycle) {
  PfdBench b;
  sim::EdgeRecorder rst(b.c, b.pfd.resetNet());
  b.drive(8, 100e-6, 2e-6);
  // One reset (dead-zone overlap) per reference cycle.
  EXPECT_NEAR(static_cast<double>(rst.risingEdges().size()), 8.0, 1.0);
}

TEST(Pfd, OutputsNeverBothHighForLong) {
  PfdBench b;
  b.drive(20, 50e-6, 7e-6);
  // Reconstruct overlap from edges: both high only during the glitch.
  // Simple check: every UP fall follows the corresponding DN rise by at
  // most the reset-path delay budget.
  const auto& up_fall = b.up_rec.fallingEdges();
  const auto& dn_rise = b.dn_rec.risingEdges();
  const size_t n = std::min(up_fall.size(), dn_rise.size());
  for (size_t i = 0; i < n; ++i) EXPECT_LT(up_fall[i] - dn_rise[i], 30e-9);
}

}  // namespace
}  // namespace pllbist::pll
