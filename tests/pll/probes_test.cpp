#include "pll/probes.hpp"

#include <gtest/gtest.h>

#include "sim/circuit.hpp"

namespace pllbist::pll {
namespace {

TEST(AnalogProbe, SamplesAtFixedInterval) {
  sim::Circuit c;
  sim::Trace trace("x");
  double value = 0.0;
  AnalogProbe probe(c, [&] { return value; }, trace, 0.1);
  c.scheduleCallback(0.35, [&](double) { value = 7.0; });
  c.run(1.0);
  ASSERT_GE(trace.size(), 10u);
  EXPECT_NEAR(trace.times()[1] - trace.times()[0], 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(trace.values()[0], 0.0);
  EXPECT_DOUBLE_EQ(trace.values()[5], 7.0);  // t = 0.5 after the change
}

TEST(AnalogProbe, StopEndsSampling) {
  sim::Circuit c;
  sim::Trace trace("x");
  AnalogProbe probe(c, [] { return 1.0; }, trace, 0.1);
  c.run(0.55);
  probe.stop();
  const size_t n = trace.size();
  c.run(2.0);
  EXPECT_EQ(trace.size(), n);
}

TEST(AnalogProbe, RejectsBadInterval) {
  sim::Circuit c;
  sim::Trace trace("x");
  EXPECT_THROW(AnalogProbe(c, [] { return 0.0; }, trace, 0.0), std::invalid_argument);
}

TEST(AnalogProbe, DelayedStart) {
  sim::Circuit c;
  sim::Trace trace("x");
  AnalogProbe probe(c, [] { return 1.0; }, trace, 0.1, 0.5);
  c.run(0.45);
  EXPECT_TRUE(trace.empty());
  c.run(1.0);
  EXPECT_FALSE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.times().front(), 0.5);
}

struct LockBench {
  sim::Circuit c;
  sim::SignalId up;
  sim::SignalId dn;
  LockBench() : up(c.addSignal("up")), dn(c.addSignal("dn")) {}

  void pulse(sim::SignalId sig, double t, double width) {
    c.scheduleSet(sig, t, true);
    c.scheduleSet(sig, t + width, false);
  }
};

TEST(LockDetector, LocksAfterConsecutiveNarrowPulses) {
  LockBench b;
  LockDetector det(b.c, b.up, b.dn, 1e-6, 5);
  for (int k = 0; k < 6; ++k) b.pulse(b.up, 1e-3 * k, 0.5e-6);
  b.c.run(0.01);
  EXPECT_TRUE(det.isLocked());
  EXPECT_GT(det.lockTime(), 0.0);
}

TEST(LockDetector, WidePulseResetsProgress) {
  LockBench b;
  LockDetector det(b.c, b.up, b.dn, 1e-6, 5);
  for (int k = 0; k < 4; ++k) b.pulse(b.up, 1e-3 * k, 0.5e-6);
  b.pulse(b.up, 4e-3, 10e-6);  // wide: unlock indicator
  for (int k = 5; k < 8; ++k) b.pulse(b.up, 1e-3 * k, 0.5e-6);
  b.c.run(0.01);
  EXPECT_FALSE(det.isLocked());  // only 3 consecutive after the reset
}

TEST(LockDetector, BothChannelsContribute) {
  LockBench b;
  LockDetector det(b.c, b.up, b.dn, 1e-6, 4);
  b.pulse(b.up, 1e-3, 0.5e-6);
  b.pulse(b.dn, 2e-3, 0.5e-6);
  b.pulse(b.up, 3e-3, 0.5e-6);
  b.pulse(b.dn, 4e-3, 0.5e-6);
  b.c.run(0.01);
  EXPECT_TRUE(det.isLocked());
}

TEST(LockDetector, ResetClearsState) {
  LockBench b;
  LockDetector det(b.c, b.up, b.dn, 1e-6, 2);
  b.pulse(b.up, 1e-3, 0.5e-6);
  b.pulse(b.up, 2e-3, 0.5e-6);
  b.c.run(0.01);
  EXPECT_TRUE(det.isLocked());
  det.reset();
  EXPECT_FALSE(det.isLocked());
}

TEST(LockDetector, Validation) {
  LockBench b;
  EXPECT_THROW(LockDetector(b.c, b.up, b.dn, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(LockDetector(b.c, b.up, b.dn, 1e-6, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pllbist::pll
