#include "pll/pump_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/circuit.hpp"

namespace pllbist::pll {
namespace {

struct Bench {
  sim::Circuit c;
  sim::SignalId up;
  sim::SignalId dn;

  Bench() : up(c.addSignal("up")), dn(c.addSignal("dn")) {}
};

PumpFilterConfig voltageConfig() {
  PumpFilterConfig cfg;
  cfg.kind = PumpKind::Voltage4046;
  cfg.vdd_v = 5.0;
  cfg.vss_v = 0.0;
  cfg.r1_ohm = 10e3;
  cfg.r2_ohm = 1e3;
  cfg.c_farad = 1e-6;
  cfg.initial_vc_v = 2.5;
  return cfg;
}

PumpFilterConfig currentConfig() {
  PumpFilterConfig cfg = voltageConfig();
  cfg.kind = PumpKind::CurrentSteering;
  cfg.pump_current_a = 100e-6;
  return cfg;
}

TEST(PumpFilterConfig, Validation) {
  PumpFilterConfig cfg = voltageConfig();
  cfg.vdd_v = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = voltageConfig();
  cfg.r2_ohm = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = voltageConfig();
  cfg.r1_ohm = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = currentConfig();
  cfg.pump_current_a = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = voltageConfig();
  cfg.initial_vc_v = 9.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = voltageConfig();
  cfg.leak_ohm = -5.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PumpFilter, HighZHoldsCapacitorVoltage) {
  Bench b;
  PumpFilter f(b.c, b.up, b.dn, voltageConfig());
  EXPECT_TRUE(f.isHighZ());
  EXPECT_DOUBLE_EQ(f.capVoltage(0.0), 2.5);
  b.c.run(1.0);
  EXPECT_DOUBLE_EQ(f.capVoltage(1.0), 2.5);
  EXPECT_DOUBLE_EQ(f.controlVoltage(1.0), 2.5);  // vy = vc when no current flows
}

TEST(PumpFilter, UpDriveChargesExponentiallyTowardVdd) {
  Bench b;
  const PumpFilterConfig cfg = voltageConfig();
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.up, 0.0, true);
  b.c.run(0.0);
  const double tau = (cfg.r1_ohm + cfg.r2_ohm) * cfg.c_farad;  // 11 ms
  b.c.run(tau);
  const double expected = 5.0 + (2.5 - 5.0) * std::exp(-1.0);
  EXPECT_NEAR(f.capVoltage(tau), expected, 1e-9);
  // Far beyond the time constant: settles at the rail.
  b.c.run(20.0 * tau);
  EXPECT_NEAR(f.capVoltage(20.0 * tau), 5.0, 1e-6);
}

TEST(PumpFilter, DownDriveDischargesTowardVss) {
  Bench b;
  const PumpFilterConfig cfg = voltageConfig();
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.dn, 0.0, true);
  const double tau = (cfg.r1_ohm + cfg.r2_ohm) * cfg.c_farad;
  b.c.run(tau);
  EXPECT_NEAR(f.capVoltage(tau), 2.5 * std::exp(-1.0), 1e-9);
}

TEST(PumpFilter, OutputNodeJumpsByR2DividerDuringDrive) {
  Bench b;
  const PumpFilterConfig cfg = voltageConfig();
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.up, 0.0, true);
  b.c.run(1e-6);  // vc barely moved
  const double vc = f.capVoltage(1e-6);
  const double vy = f.controlVoltage(1e-6);
  // vy - vc = (Vdd - vc) * R2/(R1+R2): the proportional (zero) path.
  EXPECT_NEAR(vy - vc, (5.0 - vc) * cfg.r2_ohm / (cfg.r1_ohm + cfg.r2_ohm), 1e-9);
}

TEST(PumpFilter, BothOnIsHighZForVoltageKind) {
  Bench b;
  PumpFilter f(b.c, b.up, b.dn, voltageConfig());
  b.c.scheduleSet(b.up, 0.0, true);
  b.c.scheduleSet(b.dn, 0.0, true);
  b.c.run(0.0);
  b.c.run(0.1);
  EXPECT_NEAR(f.capVoltage(0.1), 2.5, 1e-12);  // dead-zone overlap pumps nothing
}

TEST(PumpFilter, CurrentPumpRampsLinearly) {
  Bench b;
  const PumpFilterConfig cfg = currentConfig();
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.up, 0.0, true);
  const double slope = cfg.pump_current_a / cfg.c_farad;  // 100 V/s
  b.c.run(1e-3);
  EXPECT_NEAR(f.capVoltage(1e-3), 2.5 + slope * 1e-3, 1e-9);
  // Output node offset by I*R2 while pumping.
  EXPECT_NEAR(f.controlVoltage(1e-3) - f.capVoltage(1e-3), cfg.pump_current_a * cfg.r2_ohm, 1e-9);
}

TEST(PumpFilter, CurrentPumpDownRampsNegative) {
  Bench b;
  const PumpFilterConfig cfg = currentConfig();
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.dn, 0.0, true);
  b.c.run(1e-3);
  EXPECT_NEAR(f.capVoltage(1e-3), 2.5 - 0.1, 1e-9);
}

TEST(PumpFilter, CurrentPumpBothOnLeavesMismatchResidue) {
  Bench b;
  PumpFilterConfig cfg = currentConfig();
  cfg.up_strength = 1.0;
  cfg.down_strength = 0.8;  // classic up/down mismatch
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.up, 0.0, true);
  b.c.scheduleSet(b.dn, 0.0, true);
  b.c.run(1e-3);
  const double residue = cfg.pump_current_a * 0.2 / cfg.c_farad;  // 20 V/s up
  EXPECT_NEAR(f.capVoltage(1e-3), 2.5 + residue * 1e-3, 1e-9);
}

TEST(PumpFilter, DriveStrengthScalesVoltageKind) {
  Bench weak_bench, strong_bench;
  PumpFilterConfig weak_cfg = voltageConfig();
  weak_cfg.up_strength = 0.5;  // doubled effective R1
  PumpFilter weak(weak_bench.c, weak_bench.up, weak_bench.dn, weak_cfg);
  PumpFilter strong(strong_bench.c, strong_bench.up, strong_bench.dn, voltageConfig());
  weak_bench.c.scheduleSet(weak_bench.up, 0.0, true);
  strong_bench.c.scheduleSet(strong_bench.up, 0.0, true);
  weak_bench.c.run(1e-3);
  strong_bench.c.run(1e-3);
  EXPECT_LT(weak.capVoltage(1e-3), strong.capVoltage(1e-3));
}

TEST(PumpFilter, LeakageDischargesDuringHighZ) {
  Bench b;
  PumpFilterConfig cfg = voltageConfig();
  cfg.leak_ohm = 1e6;
  PumpFilter f(b.c, b.up, b.dn, cfg);
  const double tau = cfg.c_farad * (cfg.r2_ohm + cfg.leak_ohm);  // ~1.001 s
  b.c.run(tau);
  EXPECT_NEAR(f.capVoltage(tau), 2.5 * std::exp(-1.0), 1e-6);
}

TEST(PumpFilter, ClampsAtRails) {
  Bench b;
  const PumpFilterConfig cfg = currentConfig();  // ideal ramp would exceed vdd
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.up, 0.0, true);
  b.c.run(1.0);  // 100 V/s for 1 s >> rails
  EXPECT_DOUBLE_EQ(f.capVoltage(1.0), 5.0);
  b.c.scheduleSet(b.dn, 1.0, true);  // now both on; mismatch-free -> hold
  b.c.scheduleSet(b.up, 1.0, false); // then down only
  b.c.run(1.0);
  b.c.run(2.0);
  EXPECT_GE(f.capVoltage(2.0), 0.0);
}

TEST(PumpFilter, PulseTrainIntegratesNet) {
  // Equal up and down pulse widths from the same voltage -> near-zero net
  // change (by symmetry about mid-rail).
  Bench b;
  PumpFilter f(b.c, b.up, b.dn, voltageConfig());
  for (int k = 0; k < 10; ++k) {
    const double t0 = k * 1e-3;
    b.c.scheduleSet(b.up, t0, true);
    b.c.scheduleSet(b.up, t0 + 1e-5, false);
    b.c.scheduleSet(b.dn, t0 + 5e-4, true);
    b.c.scheduleSet(b.dn, t0 + 5e-4 + 1e-5, false);
  }
  b.c.run(10e-3);
  EXPECT_NEAR(f.capVoltage(10e-3), 2.5, 2e-3);
}


TEST(PumpFilter, CurrentPumpWithLeakSettlesAtIrDrop) {
  // Leaky node driven by a constant current: vc -> I/gl (exponential), the
  // general regime of the analytic model.
  Bench b;
  PumpFilterConfig cfg = currentConfig();
  cfg.leak_ohm = 20e3;  // I*Rl = 100uA * 20k = 2 V above vss
  PumpFilter f(b.c, b.up, b.dn, cfg);
  b.c.scheduleSet(b.up, 0.0, true);
  const double tau = cfg.c_farad * (cfg.r2_ohm + cfg.leak_ohm);
  b.c.run(10.0 * tau);
  EXPECT_NEAR(f.capVoltage(10.0 * tau), 2.0, 1e-3);
}

TEST(PumpFilter, DriveChangeListenersFire) {
  Bench b;
  PumpFilter f(b.c, b.up, b.dn, voltageConfig());
  int notifications = 0;
  f.onDriveChange([&](double) { ++notifications; });
  b.c.scheduleSet(b.up, 1e-3, true);
  b.c.scheduleSet(b.up, 2e-3, false);
  b.c.scheduleSet(b.dn, 3e-3, true);
  b.c.run(5e-3);
  EXPECT_EQ(notifications, 3);
}

}  // namespace
}  // namespace pllbist::pll
