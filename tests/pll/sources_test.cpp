#include "pll/sources.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/resample.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {
namespace {

struct SourceBench {
  sim::Circuit c;
  sim::SignalId out;
  sim::SignalId marker;

  SourceBench() : out(c.addSignal("out")), marker(c.addSignal("marker")) {}
};

SineFmSource::Config cwConfig(double f = 1000.0) {
  SineFmSource::Config cfg;
  cfg.nominal_hz = f;
  return cfg;
}

TEST(SineFmSource, ConfigValidation) {
  SineFmSource::Config cfg = cwConfig();
  cfg.nominal_hz = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = cwConfig();
  cfg.deviation_hz = 2000.0;  // >= nominal
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = cwConfig();
  cfg.modulation_hz = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = cwConfig();
  cfg.marker_pulse_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SineFmSource, UnmodulatedCarrierFrequency) {
  SourceBench b;
  SineFmSource src(b.c, b.out, b.marker, cwConfig(1000.0));
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.05);
  const auto& rises = rec.risingEdges();
  ASSERT_GE(rises.size(), 10u);
  EXPECT_NEAR(rises[5] - rises[4], 1e-3, 1e-9);
  EXPECT_TRUE(rec.fallingEdges().size() > 0);  // square wave, both edges
}

TEST(SineFmSource, ModulationSwingsInstantaneousFrequency) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(1000.0);
  cfg.deviation_hz = 100.0;
  cfg.modulation_hz = 10.0;
  SineFmSource src(b.c, b.out, b.marker, cfg);
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.5);
  auto freqs = dsp::frequencyFromEdges(rec.risingEdges());
  double lo = 1e12, hi = 0.0;
  for (const auto& p : freqs) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  EXPECT_NEAR(hi, 1100.0, 15.0);
  EXPECT_NEAR(lo, 900.0, 15.0);
}

TEST(SineFmSource, InstantaneousFrequencyFormula) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(1000.0);
  cfg.deviation_hz = 50.0;
  cfg.modulation_hz = 5.0;
  SineFmSource src(b.c, b.out, b.marker, cfg);
  // Peak at a quarter modulation period.
  EXPECT_NEAR(src.instantaneousFrequency(0.05), 1050.0, 1e-9);
  EXPECT_NEAR(src.instantaneousFrequency(0.15), 950.0, 1e-9);
  EXPECT_NEAR(src.instantaneousFrequency(0.2), 1000.0, 1e-6);
}

TEST(SineFmSource, PeakMarkersSpacedOneModulationPeriod) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(1000.0);
  cfg.deviation_hz = 100.0;
  cfg.modulation_hz = 20.0;
  SineFmSource src(b.c, b.out, b.marker, cfg);
  sim::EdgeRecorder rec(b.c, b.marker);
  b.c.run(0.5);
  const auto& rises = rec.risingEdges();
  ASSERT_GE(rises.size(), 5u);
  EXPECT_NEAR(rises[0], 0.25 / 20.0, 1e-9);  // first crest at T/4
  for (size_t i = 1; i < rises.size(); ++i)
    EXPECT_NEAR(rises[i] - rises[i - 1], 1.0 / 20.0, 1e-9);
}

TEST(SineFmSource, MarkerAlignsWithFrequencyCrest) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(2000.0);
  cfg.deviation_hz = 200.0;
  cfg.modulation_hz = 10.0;
  SineFmSource src(b.c, b.out, b.marker, cfg);
  sim::EdgeRecorder marker(b.c, b.marker);
  b.c.run(0.3);
  ASSERT_FALSE(marker.risingEdges().empty());
  for (double t : marker.risingEdges())
    EXPECT_NEAR(src.instantaneousFrequency(t), 2200.0, 1.0);
}

TEST(SineFmSource, SetModulationRestartsEpochAndMarkers) {
  SourceBench b;
  SineFmSource src(b.c, b.out, b.marker, cwConfig(1000.0));
  b.c.run(0.1);
  src.setModulation(50.0, 100.0);
  sim::EdgeRecorder marker(b.c, b.marker);
  b.c.run(0.1 + 0.1);
  ASSERT_GE(marker.risingEdges().size(), 2u);
  EXPECT_NEAR(marker.risingEdges()[0], 0.1 + 0.25 / 50.0, 1e-9);
}

TEST(SineFmSource, StopModulationSilencesMarkers) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(1000.0);
  cfg.deviation_hz = 100.0;
  cfg.modulation_hz = 20.0;
  SineFmSource src(b.c, b.out, b.marker, cfg);
  b.c.run(0.2);
  src.setModulation(0.0, 0.0);
  sim::EdgeRecorder marker(b.c, b.marker);
  b.c.run(0.4);
  EXPECT_TRUE(marker.risingEdges().empty());
}

TEST(SineFmSource, SetCarrierChangesFrequency) {
  SourceBench b;
  SineFmSource src(b.c, b.out, b.marker, cwConfig(1000.0));
  b.c.run(0.02);
  src.setCarrier(1500.0);
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.08);
  auto freqs = dsp::frequencyFromEdges(rec.risingEdges());
  ASSERT_FALSE(freqs.empty());
  EXPECT_NEAR(freqs.back().value, 1500.0, 5.0);
  EXPECT_THROW(src.setCarrier(-1.0), std::invalid_argument);
}

TEST(SineFmSource, SetModulationValidation) {
  SourceBench b;
  SineFmSource src(b.c, b.out, b.marker, cwConfig(1000.0));
  EXPECT_THROW(src.setModulation(-5.0, 10.0), std::invalid_argument);
  EXPECT_THROW(src.setModulation(5.0, 2000.0), std::invalid_argument);
}


TEST(SineFmSourceJitter, ConfigValidation) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(1000.0);
  cfg.edge_jitter_rms_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = cwConfig(1000.0);
  cfg.edge_jitter_rms_s = 1e-4;  // 10% of the period: too much
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.edge_jitter_rms_s = 1e-6;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SineFmSourceJitter, EdgeCountPreservedAndMeanPeriodUnchanged) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(1000.0);
  cfg.edge_jitter_rms_s = 5e-6;
  SineFmSource src(b.c, b.out, b.marker, cfg);
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(0.5);
  const auto& rises = rec.risingEdges();
  ASSERT_GE(rises.size(), 400u);  // no swallowed edges
  const double mean_period = (rises.back() - rises.front()) / (rises.size() - 1);
  EXPECT_NEAR(mean_period, 1e-3, 1e-6);  // jitter is non-accumulating
}

TEST(SineFmSourceJitter, PeriodSpreadMatchesInjectedRms) {
  SourceBench b;
  SineFmSource::Config cfg = cwConfig(1000.0);
  cfg.edge_jitter_rms_s = 5e-6;
  SineFmSource src(b.c, b.out, b.marker, cfg);
  sim::EdgeRecorder rec(b.c, b.out);
  b.c.run(1.0);
  std::vector<double> periods;
  for (size_t i = 1; i < rec.risingEdges().size(); ++i)
    periods.push_back(rec.risingEdges()[i] - rec.risingEdges()[i - 1]);
  double mean = 0.0;
  for (double v : periods) mean += v;
  mean /= periods.size();
  double var = 0.0;
  for (double v : periods) var += (v - mean) * (v - mean);
  var /= periods.size();
  // Period jitter of independent edge jitter: sigma_period = sqrt(2)*sigma.
  EXPECT_NEAR(std::sqrt(var), std::sqrt(2.0) * 5e-6, 1.5e-6);
}

TEST(SineFmSourceJitter, DeterministicPerSeed) {
  auto edges = [](unsigned seed) {
    SourceBench b;
    SineFmSource::Config cfg = cwConfig(1000.0);
    cfg.edge_jitter_rms_s = 5e-6;
    cfg.jitter_seed = seed;
    SineFmSource src(b.c, b.out, b.marker, cfg);
    sim::EdgeRecorder rec(b.c, b.out);
    b.c.run(0.05);
    return rec.risingEdges();
  };
  EXPECT_EQ(edges(7), edges(7));
  EXPECT_NE(edges(7), edges(8));
}

}  // namespace
}  // namespace pllbist::pll
