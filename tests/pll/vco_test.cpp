#include "pll/vco.hpp"

#include <gtest/gtest.h>

#include "pll/pump_filter.hpp"
#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::pll {
namespace {

VcoConfig vcoConfig() {
  VcoConfig cfg;
  cfg.center_frequency_hz = 100e3;
  cfg.gain_hz_per_v = 50e3;
  cfg.v_center_v = 2.5;
  cfg.min_frequency_hz = 10e3;
  cfg.max_frequency_hz = 200e3;
  return cfg;
}

PumpFilterConfig filterConfig(double initial_vc) {
  PumpFilterConfig cfg;
  cfg.kind = PumpKind::Voltage4046;
  cfg.r1_ohm = 10e3;
  cfg.r2_ohm = 1e3;
  cfg.c_farad = 1e-6;
  cfg.initial_vc_v = initial_vc;
  return cfg;
}

struct VcoBench {
  sim::Circuit c;
  sim::SignalId up, dn, out;
  PumpFilter filter;
  Vco vco;
  sim::EdgeRecorder rec;

  explicit VcoBench(double initial_vc = 2.5, VcoConfig vc = vcoConfig())
      : up(c.addSignal("up")),
        dn(c.addSignal("dn")),
        out(c.addSignal("out")),
        filter(c, up, dn, filterConfig(initial_vc)),
        vco(c, filter, out, vc),
        rec(c, out) {}

  double measuredFrequency(double from, double to) {
    int count = 0;
    double first = -1.0, last = -1.0;
    for (double t : rec.risingEdges()) {
      if (t < from || t > to) continue;
      if (first < 0.0) first = t;
      last = t;
      ++count;
    }
    if (count < 2) return 0.0;
    return (count - 1) / (last - first);
  }
};

TEST(VcoConfig, Validation) {
  VcoConfig cfg = vcoConfig();
  cfg.center_frequency_hz = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = vcoConfig();
  cfg.gain_hz_per_v = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = vcoConfig();
  cfg.max_frequency_hz = 5e3;  // below min
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(VcoConfig, TuningLawAndClamps) {
  const VcoConfig cfg = vcoConfig();
  EXPECT_DOUBLE_EQ(cfg.frequencyAt(2.5), 100e3);
  EXPECT_DOUBLE_EQ(cfg.frequencyAt(3.5), 150e3);
  EXPECT_DOUBLE_EQ(cfg.frequencyAt(1.5), 50e3);
  EXPECT_DOUBLE_EQ(cfg.frequencyAt(10.0), 200e3);   // clamp high
  EXPECT_DOUBLE_EQ(cfg.frequencyAt(-10.0), 10e3);   // clamp low
}

TEST(VcoConfig, DefaultMaxIsTwiceCenter) {
  VcoConfig cfg = vcoConfig();
  cfg.max_frequency_hz = 0.0;
  EXPECT_DOUBLE_EQ(cfg.frequencyAt(100.0), 200e3);
}

TEST(Vco, OscillatesAtCenterWithMidRailControl) {
  VcoBench b(2.5);
  b.c.run(10e-3);
  EXPECT_NEAR(b.measuredFrequency(1e-3, 10e-3), 100e3, 100.0);
  EXPECT_NEAR(b.vco.currentFrequencyHz(), 100e3, 1.0);
}

TEST(Vco, FrequencyFollowsControlVoltage) {
  VcoBench b(3.0);  // +0.5 V -> +25 kHz
  b.c.run(10e-3);
  EXPECT_NEAR(b.measuredFrequency(1e-3, 10e-3), 125e3, 150.0);
}

TEST(Vco, TracksChargingFilter) {
  VcoBench b(2.5);
  b.c.scheduleSet(b.up, 0.0, true);  // charge up; frequency must rise
  b.c.run(20e-3);
  const double early = b.measuredFrequency(0.0, 2e-3);
  const double late = b.measuredFrequency(18e-3, 20e-3);
  EXPECT_GT(late, early + 10e3);
}

TEST(Vco, SquareWaveDuty) {
  VcoBench b(2.5);
  b.c.run(5e-3);
  // Rising and falling edges alternate with half-period spacing.
  ASSERT_GE(b.rec.risingEdges().size(), 10u);
  ASSERT_GE(b.rec.fallingEdges().size(), 10u);
  const double half = b.rec.fallingEdges()[5] - b.rec.risingEdges()[5];
  EXPECT_NEAR(half, 0.5 / 100e3, 1e-7);
}

TEST(Vco, ClampsAtTuningRangeEdge) {
  VcoBench b(0.1);  // would be 100k - 2.4*50k < 0 without clamping
  b.c.run(5e-3);
  EXPECT_NEAR(b.measuredFrequency(1e-3, 5e-3), 10e3, 100.0);
}

}  // namespace
}  // namespace pllbist::pll
