#include "sim/circuit.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace pllbist::sim {
namespace {

TEST(Circuit, SignalCreationAndInitialValue) {
  Circuit c;
  SignalId a = c.addSignal("a");
  SignalId b = c.addSignal("b", true);
  EXPECT_FALSE(c.value(a));
  EXPECT_TRUE(c.value(b));
  EXPECT_EQ(c.signalName(a), "a");
  EXPECT_EQ(c.signalCount(), 2);
}

TEST(Circuit, InvalidIdThrows) {
  Circuit c;
  EXPECT_THROW(c.value(0), std::invalid_argument);
  SignalId a = c.addSignal("a");
  EXPECT_THROW(c.value(a + 1), std::invalid_argument);
  EXPECT_THROW(c.scheduleSet(-1, 0.0, true), std::invalid_argument);
}

TEST(Circuit, ScheduledSetDeliversInTimeOrder) {
  Circuit c;
  SignalId a = c.addSignal("a");
  std::vector<double> times;
  c.onChange(a, [&](double now, bool) { times.push_back(now); });
  c.scheduleSet(a, 3.0, false);  // no-op at 3.0 (already false after toggle below? -> ordering)
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  c.run(10.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(Circuit, UnchangedValueSwallowed) {
  Circuit c;
  SignalId a = c.addSignal("a");
  int changes = 0;
  c.onChange(a, [&](double, bool) { ++changes; });
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, true);  // swallowed
  c.run(5.0);
  EXPECT_EQ(changes, 1);
}

TEST(Circuit, SameTimeEventsKeepInsertionOrder) {
  Circuit c;
  std::vector<int> order;
  c.scheduleCallback(1.0, [&](double) { order.push_back(1); });
  c.scheduleCallback(1.0, [&](double) { order.push_back(2); });
  c.scheduleCallback(1.0, [&](double) { order.push_back(3); });
  c.run(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Circuit, EdgeCallbacksFilterPolarity) {
  Circuit c;
  SignalId a = c.addSignal("a");
  int rises = 0, falls = 0;
  c.onRisingEdge(a, [&](double) { ++rises; });
  c.onFallingEdge(a, [&](double) { ++falls; });
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  c.scheduleSet(a, 3.0, true);
  c.run(5.0);
  EXPECT_EQ(rises, 2);
  EXPECT_EQ(falls, 1);
}

TEST(Circuit, CallbackMaySchedule) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleCallback(1.0, [&](double now) { c.scheduleSet(a, now + 0.5, true); });
  c.run(2.0);
  EXPECT_TRUE(c.value(a));
}

TEST(Circuit, SchedulingInThePastAsserts) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.run(5.0);
  EXPECT_THROW(c.scheduleSet(a, 1.0, true), AssertionError);
}

TEST(Circuit, RunStopsAtBoundaryAndResumes) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 3.0, false);
  c.run(2.0);
  EXPECT_TRUE(c.value(a));
  c.run(4.0);
  EXPECT_FALSE(c.value(a));
}

TEST(Circuit, EventExactlyAtBoundaryIsProcessed) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 2.0, true);
  c.run(2.0);
  EXPECT_TRUE(c.value(a));
}

TEST(Circuit, RequestStopAbortsRun) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleCallback(1.0, [&](double) { c.requestStop(); });
  c.scheduleSet(a, 2.0, true);
  EXPECT_FALSE(c.run(5.0));
  EXPECT_FALSE(c.value(a));        // later event not yet delivered
  EXPECT_TRUE(c.run(5.0));         // resume
  EXPECT_TRUE(c.value(a));
}

TEST(Circuit, StepProcessesSingleEvent) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  EXPECT_TRUE(c.step());
  EXPECT_TRUE(c.value(a));
  EXPECT_TRUE(c.step());
  EXPECT_FALSE(c.value(a));
  EXPECT_FALSE(c.step());  // queue empty
}

TEST(Circuit, ProcessedEventCountGrows) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  c.run(3.0);
  EXPECT_EQ(c.processedEventCount(), 2u);
}

TEST(Circuit, SetNowDeliversAtCurrentTime) {
  Circuit c;
  SignalId a = c.addSignal("a");
  double seen = -1.0;
  c.onRisingEdge(a, [&](double now) { seen = now; });
  c.run(4.0);
  c.setNow(a, true);
  c.run(4.0);
  EXPECT_DOUBLE_EQ(seen, 4.0);
}

TEST(Circuit, ManyListenersAllFire) {
  Circuit c;
  SignalId a = c.addSignal("a");
  int count = 0;
  for (int i = 0; i < 10; ++i) c.onChange(a, [&](double, bool) { ++count; });
  c.scheduleSet(a, 1.0, true);
  c.run(2.0);
  EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace pllbist::sim
