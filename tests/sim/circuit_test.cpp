#include "sim/circuit.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace pllbist::sim {
namespace {

TEST(Circuit, SignalCreationAndInitialValue) {
  Circuit c;
  SignalId a = c.addSignal("a");
  SignalId b = c.addSignal("b", true);
  EXPECT_FALSE(c.value(a));
  EXPECT_TRUE(c.value(b));
  EXPECT_EQ(c.signalName(a), "a");
  EXPECT_EQ(c.signalCount(), 2);
}

TEST(Circuit, InvalidIdThrows) {
  Circuit c;
  EXPECT_THROW(c.value(0), std::invalid_argument);
  SignalId a = c.addSignal("a");
  EXPECT_THROW(c.value(a + 1), std::invalid_argument);
  EXPECT_THROW(c.scheduleSet(-1, 0.0, true), std::invalid_argument);
}

TEST(Circuit, ScheduledSetDeliversInTimeOrder) {
  Circuit c;
  SignalId a = c.addSignal("a");
  std::vector<double> times;
  c.onChange(a, [&](double now, bool) { times.push_back(now); });
  c.scheduleSet(a, 3.0, false);  // no-op at 3.0 (already false after toggle below? -> ordering)
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  c.run(10.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(Circuit, UnchangedValueSwallowed) {
  Circuit c;
  SignalId a = c.addSignal("a");
  int changes = 0;
  c.onChange(a, [&](double, bool) { ++changes; });
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, true);  // swallowed
  c.run(5.0);
  EXPECT_EQ(changes, 1);
}

TEST(Circuit, SameTimeEventsKeepInsertionOrder) {
  Circuit c;
  std::vector<int> order;
  c.scheduleCallback(1.0, [&](double) { order.push_back(1); });
  c.scheduleCallback(1.0, [&](double) { order.push_back(2); });
  c.scheduleCallback(1.0, [&](double) { order.push_back(3); });
  c.run(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Circuit, EdgeCallbacksFilterPolarity) {
  Circuit c;
  SignalId a = c.addSignal("a");
  int rises = 0, falls = 0;
  c.onRisingEdge(a, [&](double) { ++rises; });
  c.onFallingEdge(a, [&](double) { ++falls; });
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  c.scheduleSet(a, 3.0, true);
  c.run(5.0);
  EXPECT_EQ(rises, 2);
  EXPECT_EQ(falls, 1);
}

TEST(Circuit, CallbackMaySchedule) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleCallback(1.0, [&](double now) { c.scheduleSet(a, now + 0.5, true); });
  c.run(2.0);
  EXPECT_TRUE(c.value(a));
}

TEST(Circuit, SchedulingInThePastAsserts) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.run(5.0);
  EXPECT_THROW(c.scheduleSet(a, 1.0, true), AssertionError);
}

TEST(Circuit, RunStopsAtBoundaryAndResumes) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 3.0, false);
  c.run(2.0);
  EXPECT_TRUE(c.value(a));
  c.run(4.0);
  EXPECT_FALSE(c.value(a));
}

TEST(Circuit, EventExactlyAtBoundaryIsProcessed) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 2.0, true);
  c.run(2.0);
  EXPECT_TRUE(c.value(a));
}

TEST(Circuit, RequestStopAbortsRun) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleCallback(1.0, [&](double) { c.requestStop(); });
  c.scheduleSet(a, 2.0, true);
  EXPECT_FALSE(c.run(5.0));
  EXPECT_FALSE(c.value(a));        // later event not yet delivered
  EXPECT_TRUE(c.run(5.0));         // resume
  EXPECT_TRUE(c.value(a));
}

TEST(Circuit, StepProcessesSingleEvent) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  EXPECT_TRUE(c.step());
  EXPECT_TRUE(c.value(a));
  EXPECT_TRUE(c.step());
  EXPECT_FALSE(c.value(a));
  EXPECT_FALSE(c.step());  // queue empty
}

TEST(Circuit, ProcessedEventCountGrows) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  c.run(3.0);
  EXPECT_EQ(c.processedEventCount(), 2u);
}

TEST(Circuit, SetNowDeliversAtCurrentTime) {
  Circuit c;
  SignalId a = c.addSignal("a");
  double seen = -1.0;
  c.onRisingEdge(a, [&](double now) { seen = now; });
  c.run(4.0);
  c.setNow(a, true);
  c.run(4.0);
  EXPECT_DOUBLE_EQ(seen, 4.0);
}

TEST(Circuit, ManyListenersAllFire) {
  Circuit c;
  SignalId a = c.addSignal("a");
  int count = 0;
  for (int i = 0; i < 10; ++i) c.onChange(a, [&](double, bool) { ++count; });
  c.scheduleSet(a, 1.0, true);
  c.run(2.0);
  EXPECT_EQ(count, 10);
}

TEST(Circuit, MixedSameTimeEventsKeepGlobalInsertionOrder) {
  // The tie-break is the global schedule order, not per-kind: signal sets
  // and callbacks interleaved at one timestamp deliver exactly as enqueued.
  Circuit c;
  SignalId a = c.addSignal("a");
  SignalId b = c.addSignal("b");
  std::vector<int> order;
  c.onChange(a, [&](double, bool) { order.push_back(1); });
  c.onChange(b, [&](double, bool) { order.push_back(3); });
  c.scheduleSet(a, 1.0, true);
  c.scheduleCallback(1.0, [&](double) { order.push_back(2); });
  c.scheduleSet(b, 1.0, true);
  c.scheduleCallback(1.0, [&](double) { order.push_back(4); });
  c.run(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Circuit, SetNowDeliversBeforeLaterScheduledSameTimeEvent) {
  Circuit c;
  SignalId a = c.addSignal("a");
  SignalId b = c.addSignal("b");
  std::vector<char> order;
  c.onChange(a, [&](double, bool) { order.push_back('a'); });
  c.onChange(b, [&](double, bool) { order.push_back('b'); });
  c.run(4.0);
  c.setNow(a, true);                // enqueued first at t = 4
  c.scheduleSet(b, 4.0, true);      // same timestamp, scheduled after
  c.run(4.0);
  EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
}

TEST(Circuit, CallbackRegisteringCallbackMidDeliveryIsSafe) {
  // A change callback may grow the listener list of the very signal being
  // delivered (the vector is iterated by index, so this must not invalidate
  // the loop). The newly registered listener joins the fan-out of the
  // in-flight transition.
  Circuit c;
  SignalId a = c.addSignal("a");
  int late_calls = 0;
  c.onChange(a, [&](double, bool) {
    c.onChange(a, [&](double, bool) { ++late_calls; });
  });
  c.scheduleSet(a, 1.0, true);
  c.run(2.0);
  EXPECT_EQ(late_calls, 1);
  c.scheduleSet(a, 3.0, false);
  c.run(4.0);
  // The original registers another listener each change; both the first and
  // second late listeners see the second transition.
  EXPECT_EQ(late_calls, 1 + 2);
}

TEST(Circuit, DelayedEventIsNotInterceptedAgain) {
  // Regression: a persistent Delay rule used to chase its own re-enqueued
  // event forever (livelock) and double-count fault statistics. The
  // re-enqueued event is marked intercepted and delivered unconditionally.
  Circuit c;
  SignalId a = c.addSignal("a");
  int interceptor_calls = 0;
  std::vector<double> edge_times;
  c.onChange(a, [&](double now, bool) { edge_times.push_back(now); });
  c.setEventInterceptor([&](SignalId, double, bool) {
    ++interceptor_calls;
    Circuit::InterceptVerdict v;
    v.action = Circuit::InterceptVerdict::Action::Delay;
    v.delay_s = 0.25;
    return v;
  });
  c.scheduleSet(a, 1.0, true);
  c.run(5.0);
  EXPECT_EQ(interceptor_calls, 1);  // once per scheduled edge, not per hop
  ASSERT_EQ(edge_times.size(), 1u);
  EXPECT_DOUBLE_EQ(edge_times[0], 1.25);
  EXPECT_EQ(c.delayedEventCount(), 1u);
  EXPECT_EQ(c.deliveredEventCount(), 1u);
}

TEST(Circuit, EventCountersSplitByOutcome) {
  Circuit c;
  SignalId a = c.addSignal("a");
  SignalId b = c.addSignal("b");
  c.setEventInterceptor([&](SignalId id, double, bool) {
    Circuit::InterceptVerdict v;
    if (id == b) v.action = Circuit::InterceptVerdict::Action::Drop;
    return v;
  });
  c.scheduleCallback(0.5, [](double) {});  // delivered (pure callback)
  c.scheduleSet(a, 1.0, true);             // delivered (transition applied)
  c.scheduleSet(a, 2.0, true);             // swallowed (no change)
  c.scheduleSet(b, 3.0, true);             // dropped by interceptor
  c.run(5.0);
  EXPECT_EQ(c.deliveredEventCount(), 2u);
  EXPECT_EQ(c.swallowedEventCount(), 1u);
  EXPECT_EQ(c.droppedEventCount(), 1u);
  EXPECT_EQ(c.delayedEventCount(), 0u);
  EXPECT_EQ(c.processedEventCount(),
            c.deliveredEventCount() + c.droppedEventCount() + c.delayedEventCount() +
                c.swallowedEventCount());
  EXPECT_FALSE(c.value(b));  // the dropped edge never happened
}

TEST(Circuit, DelayedThenRedeliveredEventCountedInBothBuckets) {
  Circuit c;
  SignalId a = c.addSignal("a");
  bool first = true;
  c.setEventInterceptor([&](SignalId, double, bool) {
    Circuit::InterceptVerdict v;
    if (first) {
      first = false;
      v.action = Circuit::InterceptVerdict::Action::Delay;
      v.delay_s = 0.5;
    }
    return v;
  });
  c.scheduleSet(a, 1.0, true);
  c.run(3.0);
  // One dequeue postponed it (delayed), a second dequeue applied it
  // (delivered): two processed events for one scheduled edge.
  EXPECT_EQ(c.delayedEventCount(), 1u);
  EXPECT_EQ(c.deliveredEventCount(), 1u);
  EXPECT_EQ(c.processedEventCount(), 2u);
}

TEST(Circuit, StepHonoursPendingStopRequest) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.requestStop();
  EXPECT_FALSE(c.step());    // consumed the stop, processed nothing
  EXPECT_FALSE(c.value(a));
  EXPECT_TRUE(c.step());     // stop does not leak into the next call
  EXPECT_TRUE(c.value(a));
}

TEST(Circuit, StopRequestedWhileIdleDoesNotLeak) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleSet(a, 1.0, true);
  c.requestStop();
  EXPECT_FALSE(c.run(5.0));  // returns immediately, queue untouched
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  EXPECT_FALSE(c.value(a));
  EXPECT_TRUE(c.run(5.0));   // consumed: this run completes normally
  EXPECT_TRUE(c.value(a));
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
}

TEST(Circuit, StoppedRunKeepsNowAtLastDeliveredEvent) {
  Circuit c;
  SignalId a = c.addSignal("a");
  c.scheduleCallback(1.0, [&](double) { c.requestStop(); });
  c.scheduleSet(a, 2.0, true);
  EXPECT_FALSE(c.run(5.0));
  EXPECT_DOUBLE_EQ(c.now(), 1.0);  // not advanced to t_end on early return
  EXPECT_TRUE(c.run(5.0));
  EXPECT_TRUE(c.value(a));
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
}

}  // namespace
}  // namespace pllbist::sim
