#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::sim {
namespace {

/// Drop probability 1: the clock's edges never reach the net.
TEST(FaultInjector, DropAllEdgesFreezesSignal) {
  Circuit c;
  const SignalId clk = c.addSignal("clk");
  ClockSource source(c, clk, 1e-3);
  FaultInjector injector(c, 7);
  injector.dropEdges(clk, 1.0);
  int edges = 0;
  c.onChange(clk, [&](double, bool) { ++edges; });
  c.run(0.02);
  EXPECT_EQ(edges, 0);
  EXPECT_FALSE(c.value(clk));
  EXPECT_GT(injector.stats().dropped, 0u);
  EXPECT_EQ(injector.stats().dropped, injector.stats().considered);
}

/// Drop probability 0 is a pass-through: every edge delivered, none lost.
TEST(FaultInjector, ZeroProbabilityDeliversEverything) {
  Circuit c;
  const SignalId clk = c.addSignal("clk");
  ClockSource source(c, clk, 1e-3);
  FaultInjector injector(c, 7);
  injector.dropEdges(clk, 0.0);
  int edges = 0;
  c.onChange(clk, [&](double, bool) { ++edges; });
  c.run(0.02);
  EXPECT_GT(edges, 10);
  EXPECT_EQ(injector.stats().dropped, 0u);
  EXPECT_GT(injector.stats().considered, 0u);
}

/// The same (seed, rules, workload) triple replays bit-exactly; a different
/// seed picks a different subset of edges to kill.
TEST(FaultInjector, DropPatternIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Circuit c;
    const SignalId clk = c.addSignal("clk");
    ClockSource source(c, clk, 1e-3);
    FaultInjector injector(c, seed);
    injector.dropEdges(clk, 0.5);
    std::vector<double> edge_times;
    c.onChange(clk, [&](double now, bool) { edge_times.push_back(now); });
    c.run(0.1);
    return std::make_pair(edge_times, injector.stats().dropped);
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto other = run(43);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, other.first);
  // p = 0.5 over ~100 edges: both halves must be populated.
  EXPECT_GT(a.second, 10u);
  EXPECT_GT(a.first.size(), 10u);
}

/// A delayed edge is postponed by exactly the configured amount and is
/// delivered once at the postponed time without being re-intercepted.
TEST(FaultInjector, DelayPostponesAnEdgeOutOfItsWindow) {
  Circuit c;
  const SignalId sig = c.addSignal("sig");
  FaultInjector injector(c, 1);
  injector.delayEdges(sig, 1.0, 2e-3, 2e-3, 0.0, 2e-3);  // window [0, 2ms)
  c.scheduleSet(sig, 1e-3, true);
  std::vector<double> rises;
  c.onRisingEdge(sig, [&](double now) { rises.push_back(now); });
  c.run(0.01);
  ASSERT_EQ(rises.size(), 1u);
  EXPECT_DOUBLE_EQ(rises[0], 3e-3);  // 1 ms original + 2 ms delay
  EXPECT_EQ(injector.stats().delayed, 1u);
}

/// stickSignal freezes the net for the window and releases it afterwards.
TEST(FaultInjector, StickSignalFreezesThenReleases) {
  Circuit c;
  const SignalId clk = c.addSignal("clk");
  ClockSource source(c, clk, 1e-3);
  FaultInjector injector(c, 1);
  injector.stickSignal(clk, 2e-3, 6e-3);
  std::vector<double> edge_times;
  c.onChange(clk, [&](double now, bool) { edge_times.push_back(now); });
  c.run(0.01);
  ASSERT_FALSE(edge_times.empty());
  for (double t : edge_times) {
    EXPECT_TRUE(t < 2e-3 || t >= 6e-3) << "edge at " << t << " inside the stick window";
  }
  // The clock keeps toggling after the window closes.
  EXPECT_GE(edge_times.back(), 6e-3);
}

/// One glitch = one invert-restore pulse, visible as two transitions.
TEST(FaultInjector, GlitchInvertsThenRestores) {
  Circuit c;
  const SignalId sig = c.addSignal("sig");  // idle low
  FaultInjector injector(c, 1);
  injector.injectGlitch(sig, 1e-3, 1e-4);
  std::vector<std::pair<double, bool>> changes;
  c.onChange(sig, [&](double now, bool v) { changes.emplace_back(now, v); });
  c.run(0.01);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_DOUBLE_EQ(changes[0].first, 1e-3);
  EXPECT_TRUE(changes[0].second);
  EXPECT_DOUBLE_EQ(changes[1].first, 1.1e-3);
  EXPECT_FALSE(changes[1].second);
  EXPECT_EQ(injector.stats().glitches, 1u);
}

/// Glitch storms follow a seeded Poisson process: replayable, and the pulse
/// count scales with the window / mean-interval ratio.
TEST(FaultInjector, GlitchStormIsSeededAndBounded) {
  auto run = [](uint64_t seed) {
    Circuit c;
    const SignalId sig = c.addSignal("sig");
    FaultInjector injector(c, seed);
    injector.injectGlitchStorm(sig, 0.0, 0.1, 2e-3, 1e-4);
    c.run(0.2);
    return injector.stats().glitches;
  };
  const uint64_t a = run(5);
  EXPECT_EQ(a, run(5));
  // 100 ms window, 2 ms mean interval: expect on the order of 50 pulses.
  EXPECT_GT(a, 15u);
  EXPECT_LT(a, 150u);
}

/// One interceptor per circuit: a second injector is a logic error.
TEST(FaultInjector, SecondInjectorOnSameCircuitThrows) {
  Circuit c;
  FaultInjector first(c, 1);
  EXPECT_THROW(FaultInjector second(c, 2), std::logic_error);
}

/// Destroying the injector detaches it: edges flow again.
TEST(FaultInjector, DestructionDetachesInterceptor) {
  Circuit c;
  const SignalId clk = c.addSignal("clk");
  ClockSource source(c, clk, 1e-3);
  int edges = 0;  // must outlive the onChange registration below
  c.onChange(clk, [&](double, bool) { ++edges; });
  {
    FaultInjector injector(c, 1);
    injector.dropEdges(clk, 1.0);
    c.run(0.01);
    EXPECT_EQ(edges, 0);
  }
  EXPECT_FALSE(c.hasEventInterceptor());
  c.run(0.02);
  EXPECT_GT(edges, 5);
}

/// Invalid rule parameters are rejected up front.
TEST(FaultInjector, RejectsInvalidRuleParameters) {
  Circuit c;
  const SignalId sig = c.addSignal("sig");
  FaultInjector injector(c, 1);
  EXPECT_THROW(injector.dropEdges(sig, 1.5), std::invalid_argument);
  EXPECT_THROW(injector.delayEdges(sig, 0.5, 0.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(injector.delayEdges(sig, 0.5, 2e-3, 1e-3), std::invalid_argument);
  EXPECT_THROW(injector.injectGlitch(sig, 1e-3, 0.0), std::invalid_argument);
  EXPECT_THROW(injector.injectGlitchStorm(sig, 0.1, 0.0, 1e-3, 1e-4), std::invalid_argument);
}

}  // namespace
}  // namespace pllbist::sim
