#include "sim/primitives.hpp"

#include <gtest/gtest.h>

#include "sim/circuit.hpp"

namespace pllbist::sim {
namespace {

constexpr double kD = 1e-9;  // standard gate delay in these tests

TEST(Inverter, InvertsWithDelay) {
  Circuit c;
  SignalId in = c.addSignal("in");
  SignalId out = c.addSignal("out");
  Inverter inv(c, in, out, kD);
  c.run(1e-8);  // settle initial evaluation
  EXPECT_TRUE(c.value(out));
  c.scheduleSet(in, 1e-6, true);
  c.run(1e-6 + 0.5 * kD);
  EXPECT_TRUE(c.value(out));  // not yet propagated
  c.run(1e-6 + 2.0 * kD);
  EXPECT_FALSE(c.value(out));
}

TEST(Inverter, ZeroDelayRejected) {
  Circuit c;
  SignalId in = c.addSignal("in");
  SignalId out = c.addSignal("out");
  EXPECT_THROW(Inverter(c, in, out, 0.0), std::invalid_argument);
}

TEST(Buffer, PropagatesBothEdges) {
  Circuit c;
  SignalId in = c.addSignal("in");
  SignalId out = c.addSignal("out");
  Buffer buf(c, in, out, kD);
  c.scheduleSet(in, 1e-6, true);
  c.scheduleSet(in, 2e-6, false);
  c.run(3e-6);
  EXPECT_FALSE(c.value(out));
  EdgeRecorder rec(c, out);  // too late to see edges; just check final value
  EXPECT_FALSE(c.value(out));
}

TEST(AndGate, TruthTable) {
  Circuit c;
  SignalId a = c.addSignal("a");
  SignalId b = c.addSignal("b");
  SignalId out = c.addSignal("out");
  AndGate gate(c, a, b, out, kD);
  c.run(1e-8);
  EXPECT_FALSE(c.value(out));
  c.setNow(a, true);
  c.run(1e-8 + 2 * kD);
  EXPECT_FALSE(c.value(out));
  c.setNow(b, true);
  c.run(2e-8 + 4 * kD);
  EXPECT_TRUE(c.value(out));
  c.setNow(a, false);
  c.run(3e-8 + 6 * kD);
  EXPECT_FALSE(c.value(out));
}

TEST(OrGate, TruthTable) {
  Circuit c;
  SignalId a = c.addSignal("a");
  SignalId b = c.addSignal("b", true);
  SignalId out = c.addSignal("out");
  OrGate gate(c, a, b, out, kD);
  c.run(1e-8);
  EXPECT_TRUE(c.value(out));
  c.setNow(b, false);
  c.run(2e-8);
  EXPECT_FALSE(c.value(out));
}

TEST(Mux2, SelectsAndFollowsInputs) {
  Circuit c;
  SignalId a = c.addSignal("a", true);
  SignalId b = c.addSignal("b", false);
  SignalId sel = c.addSignal("sel", false);
  SignalId out = c.addSignal("out");
  Mux2 mux(c, a, b, sel, out, kD);
  c.run(1e-8);
  EXPECT_TRUE(c.value(out));   // sel=0 -> a
  c.setNow(sel, true);
  c.run(2e-8);
  EXPECT_FALSE(c.value(out));  // sel=1 -> b
  c.setNow(b, true);
  c.run(3e-8);
  EXPECT_TRUE(c.value(out));
}

TEST(DFlipFlop, CapturesOnRisingEdgeOnly) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  SignalId d = c.addSignal("d");
  SignalId q = c.addSignal("q");
  DFlipFlop ff(c, clk, d, q, kD);
  c.setNow(d, true);
  c.run(1e-7);
  EXPECT_FALSE(c.value(q));  // no clock yet
  c.scheduleSet(clk, 2e-7, true);
  c.run(3e-7);
  EXPECT_TRUE(c.value(q));
  // falling clock edge does nothing
  c.setNow(d, false);
  c.scheduleSet(clk, 4e-7, false);
  c.run(5e-7);
  EXPECT_TRUE(c.value(q));
}

TEST(DFlipFlop, AsyncResetClearsAndBlocksClocks) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  SignalId d = c.addSignal("d", true);
  SignalId q = c.addSignal("q");
  SignalId rst = c.addSignal("rst");
  DFlipFlop ff(c, clk, d, q, kD, rst, kD);
  c.scheduleSet(clk, 1e-7, true);
  c.run(2e-7);
  EXPECT_TRUE(c.value(q));
  c.setNow(rst, true);
  c.run(3e-7);
  EXPECT_FALSE(c.value(q));
  // clock while reset asserted is ignored
  c.scheduleSet(clk, 4e-7, false);
  c.scheduleSet(clk, 5e-7, true);
  c.run(6e-7);
  EXPECT_FALSE(c.value(q));
  // release reset; next edge captures again
  c.setNow(rst, false);
  c.scheduleSet(clk, 7e-7, false);
  c.scheduleSet(clk, 8e-7, true);
  c.run(9e-7);
  EXPECT_TRUE(c.value(q));
}

TEST(DLatch, TransparentWhileEnabled) {
  Circuit c;
  SignalId d = c.addSignal("d");
  SignalId en = c.addSignal("en");
  SignalId q = c.addSignal("q");
  DLatch latch(c, d, en, q, kD);
  c.setNow(en, true);
  c.setNow(d, true);
  c.run(1e-7);
  EXPECT_TRUE(c.value(q));
  c.setNow(d, false);
  c.run(2e-7);
  EXPECT_FALSE(c.value(q));  // follows while enabled
  c.setNow(en, false);
  c.run(3e-7);
  c.setNow(d, true);
  c.run(4e-7);
  EXPECT_FALSE(c.value(q));  // held
}

TEST(ClockSource, FrequencyAndStop) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  ClockSource src(c, clk, 1e-6);
  EdgeRecorder rec(c, clk);
  c.run(10.5e-6);
  // Toggles every 0.5us from t=0: rising at 0, 1us, 2us, ... -> 11 by 10.5us
  EXPECT_EQ(rec.risingEdges().size(), 11u);
  EXPECT_NEAR(rec.risingEdges()[1] - rec.risingEdges()[0], 1e-6, 1e-15);
  src.stop();
  const size_t count = rec.risingEdges().size();
  c.run(20e-6);
  EXPECT_EQ(rec.risingEdges().size(), count);
}

TEST(ToggleDivider, DividesByTwoTimesModulus) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  SignalId out = c.addSignal("out");
  ClockSource src(c, clk, 1e-6);
  ToggleDivider div(c, clk, out, 4, kD);
  EdgeRecorder rec(c, out);
  c.run(100e-6);
  // out toggles every 4 input rising edges -> period 8us.
  ASSERT_GE(rec.risingEdges().size(), 2u);
  EXPECT_NEAR(rec.risingEdges()[1] - rec.risingEdges()[0], 8e-6, 1e-12);
}

TEST(ToggleDivider, ModulusChangeLatchesAtBoundary) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  SignalId out = c.addSignal("out");
  ClockSource src(c, clk, 1e-6);
  ToggleDivider div(c, clk, out, 4, kD);
  EdgeRecorder rec(c, out);
  c.run(10e-6);
  div.setModulus(2);
  EXPECT_EQ(div.modulus(), 4);  // not yet latched
  c.run(60e-6);
  EXPECT_EQ(div.modulus(), 2);
  // Late periods should be 4us.
  const auto& rises = rec.risingEdges();
  ASSERT_GE(rises.size(), 4u);
  EXPECT_NEAR(rises.back() - rises[rises.size() - 2], 4e-6, 1e-12);
}

TEST(DivideByN, RisingEdgeSpacingIsNPeriods) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  SignalId out = c.addSignal("out");
  ClockSource src(c, clk, 1e-6);
  DivideByN div(c, clk, out, 5, kD);
  EdgeRecorder rec(c, out);
  c.run(40e-6);
  const auto& rises = rec.risingEdges();
  ASSERT_GE(rises.size(), 3u);
  EXPECT_NEAR(rises[1] - rises[0], 5e-6, 1e-12);
  EXPECT_NEAR(rises[2] - rises[1], 5e-6, 1e-12);
}

TEST(DivideByN, PassThroughForNOne) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  SignalId out = c.addSignal("out");
  ClockSource src(c, clk, 1e-6);
  DivideByN div(c, clk, out, 1, kD);
  EdgeRecorder rec(c, out);
  c.run(5.2e-6);
  EXPECT_EQ(rec.risingEdges().size(), 6u);  // 0,1,2,3,4,5 us
}

TEST(GatedCounter, CountsOnlyWhileRunning) {
  Circuit c;
  SignalId clk = c.addSignal("clk");
  ClockSource src(c, clk, 1e-6);
  GatedCounter counter(c, clk);
  c.run(5.5e-6);
  EXPECT_EQ(counter.count(), 0);  // never started
  counter.start();
  c.run(10.2e-6);  // rising edges at 6,7,8,9,10 us
  counter.stop();
  EXPECT_EQ(counter.count(), 5);
  c.run(20e-6);
  EXPECT_EQ(counter.count(), 5);  // frozen
  counter.start();                 // restart zeroes
  EXPECT_EQ(counter.count(), 0);
}

TEST(EdgeRecorder, TimestampsBothPolarities) {
  Circuit c;
  SignalId a = c.addSignal("a");
  EdgeRecorder rec(c, a);
  c.scheduleSet(a, 1.0, true);
  c.scheduleSet(a, 2.0, false);
  c.scheduleSet(a, 3.0, true);
  c.run(4.0);
  ASSERT_EQ(rec.risingEdges().size(), 2u);
  ASSERT_EQ(rec.fallingEdges().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.risingEdges()[0], 1.0);
  EXPECT_DOUBLE_EQ(rec.fallingEdges()[0], 2.0);
  rec.clear();
  EXPECT_TRUE(rec.risingEdges().empty());
}

}  // namespace
}  // namespace pllbist::sim
