#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "sim/circuit.hpp"
#include "sim/primitives.hpp"

namespace pllbist::sim {
namespace {

TEST(KernelStress, RandomScheduleDeliveredInTimeOrder) {
  Circuit c;
  const SignalId sig = c.addSignal("s");
  std::vector<double> delivered;
  c.onChange(sig, [&](double now, bool) { delivered.push_back(now); });

  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  bool value = false;
  std::vector<double> times;
  for (int i = 0; i < 5000; ++i) times.push_back(dist(rng));
  std::sort(times.begin(), times.end());
  // Shuffle the *insertion* order while keeping alternating values matched
  // to the sorted times (so every delivery is a change).
  std::vector<size_t> order(times.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<bool> values(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    value = !value;
    values[i] = value;
  }
  for (size_t idx : order) c.scheduleSet(sig, times[idx], values[idx]);

  c.run(2.0);
  ASSERT_EQ(delivered.size(), times.size());
  for (size_t i = 1; i < delivered.size(); ++i) EXPECT_GE(delivered[i], delivered[i - 1]);
}

TEST(KernelStress, ManyClockDomainsStayConsistent) {
  Circuit c;
  struct Domain {
    SignalId clk;
    std::unique_ptr<ClockSource> src;
    std::unique_ptr<GatedCounter> counter;
  };
  std::vector<Domain> domains;
  const double periods[] = {1e-6, 2.3e-6, 3.1e-6, 7.7e-6, 13e-6};
  for (double p : periods) {
    Domain d;
    d.clk = c.addSignal("clk");
    d.src = std::make_unique<ClockSource>(c, d.clk, p);
    d.counter = std::make_unique<GatedCounter>(c, d.clk);
    d.counter->start();
    domains.push_back(std::move(d));
  }
  const double t_end = 10e-3;
  c.run(t_end);
  for (size_t i = 0; i < domains.size(); ++i) {
    const double expected = t_end / periods[i];
    EXPECT_NEAR(static_cast<double>(domains[i].counter->count()), expected, 2.0) << i;
  }
}

TEST(KernelStress, DividerChainComposes) {
  // /2 then /5 must equal /10 in rising-edge spacing.
  Circuit c;
  const SignalId clk = c.addSignal("clk");
  const SignalId mid = c.addSignal("mid");
  const SignalId out_chain = c.addSignal("out_chain");
  const SignalId out_direct = c.addSignal("out_direct");
  ClockSource src(c, clk, 1e-6);
  DivideByN d2(c, clk, mid, 2, 1e-9);
  DivideByN d5(c, mid, out_chain, 5, 1e-9);
  DivideByN d10(c, clk, out_direct, 10, 1e-9);
  EdgeRecorder chain(c, out_chain);
  EdgeRecorder direct(c, out_direct);
  c.run(500e-6);
  ASSERT_GE(chain.risingEdges().size(), 10u);
  ASSERT_GE(direct.risingEdges().size(), 10u);
  const double chain_period = chain.risingEdges()[9] - chain.risingEdges()[8];
  const double direct_period = direct.risingEdges()[9] - direct.risingEdges()[8];
  EXPECT_NEAR(chain_period, direct_period, 1e-12);
  EXPECT_NEAR(chain_period, 10e-6, 1e-11);
}

TEST(KernelStress, DeepCombinationalChainPropagates) {
  Circuit c;
  const int depth = 64;
  std::vector<SignalId> nets{c.addSignal("in")};
  std::vector<std::unique_ptr<Inverter>> gates;
  for (int i = 0; i < depth; ++i) {
    nets.push_back(c.addSignal("n" + std::to_string(i)));
    gates.push_back(std::make_unique<Inverter>(c, nets[nets.size() - 2], nets.back(), 1e-9));
  }
  c.run(1e-6);  // settle initial X-propagation
  const bool settled = c.value(nets.back());
  c.scheduleSet(nets.front(), 2e-6, true);
  c.run(2e-6 + depth * 1e-9 + 1e-9);
  EXPECT_EQ(c.value(nets.back()), !settled);
}

TEST(KernelStress, InterleavedCallbacksAndSignals) {
  // Callbacks scheduling signals scheduling callbacks: the classic
  // re-entrancy pattern every behavioral block uses.
  Circuit c;
  const SignalId sig = c.addSignal("s");
  int hops = 0;
  std::function<void(double)> hop = [&](double now) {
    if (++hops >= 1000) return;
    c.scheduleSet(sig, now + 1e-9, !c.value(sig));
  };
  c.onChange(sig, [&](double now, bool) { hop(now); });
  c.scheduleSet(sig, 1e-9, true);
  c.run(1.0);
  EXPECT_EQ(hops, 1000);
}

TEST(KernelStress, MillionEventsComplete) {
  Circuit c;
  const SignalId clk = c.addSignal("clk");
  ClockSource src(c, clk, 2e-6);  // 1M events over 1 s
  GatedCounter counter(c, clk);
  counter.start();
  c.run(1.0);
  EXPECT_NEAR(static_cast<double>(counter.count()), 500000.0, 2.0);
  EXPECT_GE(c.processedEventCount(), 1000000u);
}

}  // namespace
}  // namespace pllbist::sim
