#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace pllbist::sim {
namespace {

TEST(Trace, AppendAndQuery) {
  Trace t("vctl");
  t.append(0.0, 1.0);
  t.append(1.0, 3.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(), "vctl");
  EXPECT_DOUBLE_EQ(t.at(0.5), 2.0);
}

TEST(Trace, NonMonotonicAppendAsserts) {
  Trace t("x");
  t.append(1.0, 0.0);
  EXPECT_THROW(t.append(0.5, 0.0), pllbist::AssertionError);
}

TEST(Trace, EqualTimestampsAllowed) {
  Trace t("x");
  t.append(1.0, 0.0);
  t.append(1.0, 5.0);  // zero-width step is legal (event boundary)
  EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, AfterDiscardsSettling) {
  Trace t("x");
  for (int i = 0; i < 10; ++i) t.append(static_cast<double>(i), static_cast<double>(i));
  Trace late = t.after(5.0);
  EXPECT_EQ(late.size(), 5u);
  EXPECT_DOUBLE_EQ(late.times().front(), 5.0);
}

TEST(Trace, ClearEmpties) {
  Trace t("x");
  t.append(0.0, 1.0);
  t.clear();
  EXPECT_TRUE(t.empty());
}

// Documented contract: sampling an empty trace yields NaN (no samples means
// no answer), never a throw — probes that recorded nothing stay queryable.
TEST(Trace, AtOnEmptyTraceReturnsNaN) {
  Trace t("empty");
  EXPECT_TRUE(std::isnan(t.at(0.0)));
  EXPECT_TRUE(std::isnan(t.at(-1.0)));
  t.append(1.0, 2.0);
  t.clear();
  EXPECT_TRUE(std::isnan(t.at(1.0)));
}

TEST(WriteTracesCsv, HeaderAndRows) {
  Trace a("a"), b("b");
  a.append(0.0, 1.0);
  a.append(1.0, 2.0);
  b.append(0.0, 5.0);
  std::ostringstream os;
  writeTracesCsv(os, {&a, &b});
  const std::string out = os.str();
  EXPECT_NE(out.find("t_a,a,t_b,b"), std::string::npos);
  EXPECT_NE(out.find("0,1,0,5"), std::string::npos);
  EXPECT_NE(out.find("1,2,,"), std::string::npos);  // short trace leaves blanks
}

TEST(WriteTracesCsv, NullTraceThrows) {
  std::ostringstream os;
  EXPECT_THROW(writeTracesCsv(os, {nullptr}), std::invalid_argument);
}

TEST(RenderAscii, ProducesGridOfRequestedSize) {
  Trace t("wave");
  for (int i = 0; i <= 100; ++i) t.append(i * 0.01, std::sin(i * 0.1));
  const std::string art = renderAscii(t, 40, 8);
  // header + 8 rows
  int lines = 0;
  for (char ch : art)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 9);
  EXPECT_NE(art.find("wave"), std::string::npos);
}

TEST(RenderAscii, EmptyTraceSafe) {
  Trace t("none");
  EXPECT_EQ(renderAscii(t), "(empty trace)\n");
}

}  // namespace
}  // namespace pllbist::sim
