#pragma once

#include "bist/controller.hpp"
#include "pll/config.hpp"

namespace pllbist::testing {

/// Fast-simulating PLL for tests: fref = 10 kHz, N = 10, fn = 200 Hz,
/// zeta = 0.43 (see pll::scaledTestConfig).
inline pll::PllConfig fastTestConfig(double fn_hz = 200.0, double zeta = 0.43) {
  return pll::scaledTestConfig(fn_hz, zeta);
}

/// Sweep options sized for fastTestConfig (short gates, few points).
inline bist::SweepOptions fastSweepOptions(bist::StimulusKind stimulus, int points = 8,
                                           double fn_hz = 200.0) {
  return bist::quickSweepOptions(fastTestConfig(fn_hz), stimulus, points);
}

}  // namespace pllbist::testing
